package ulixes_test

import (
	"strings"
	"testing"

	"ulixes"
	"ulixes/internal/cost"
	"ulixes/internal/rewrite"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

func openUniversity(t *testing.T) (*sitegen.University, *site.MemSite, *ulixes.System) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulixes.Open(ms, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		t.Fatal(err)
	}
	return u, ms, sys
}

func TestOpenCollectsStats(t *testing.T) {
	u, _, sys := openUniversity(t)
	if got := sys.Stats().SchemeCard(sitegen.CoursePage); got != float64(u.Params.Courses) {
		t.Errorf("crawled |CoursePage| = %v", got)
	}
}

func TestFacadeQuery(t *testing.T) {
	_, _, sys := openUniversity(t)
	ans, err := sys.Query("SELECT d.DName, d.Address FROM Dept d")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() != 3 {
		t.Errorf("departments = %d", ans.Result.Len())
	}
	q, err := ulixes.ParseQuery("SELECT d.DName, d.Address FROM Dept d")
	if err != nil {
		t.Fatal(err)
	}
	ans2, err := sys.QueryCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans2.Result.Equal(ans.Result) {
		t.Error("QueryCQ should agree with Query")
	}
}

func TestFacadeExplain(t *testing.T) {
	_, _, sys := openUniversity(t)
	out, err := sys.Explain("SELECT p.PName FROM Professor p")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chosen plan", "estimated cost", "candidate plans"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	if _, err := sys.Explain("not a query"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestFacadeOptions(t *testing.T) {
	_, _, sys := openUniversity(t)
	base, err := sys.Plan("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetOptions(ulixes.Options{DisableRules: rewrite.Rule6})
	ablated, err := sys.Plan("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Best.Cost <= base.Best.Cost {
		t.Errorf("ablation should cost more: %v vs %v", ablated.Best.Cost, base.Best.Cost)
	}
}

func TestFacadeMaterialize(t *testing.T) {
	u, _, sys := openUniversity(t)
	mv, err := sys.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if mv.Store().Len() != u.Instance.TotalPages() {
		t.Errorf("materialized %d pages", mv.Store().Len())
	}
	ans, err := mv.Query("SELECT p.PName FROM Professor p")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Downloads != 0 {
		t.Errorf("fresh view should not download, got %d", ans.Downloads)
	}
}

func TestOpenWithStats(t *testing.T) {
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := ulixes.OpenWithStats(ms, u.Scheme, view.UniversityView(u.Scheme), stats.CollectInstance(u.Instance))
	if _, err := sys.Query("SELECT p.PName FROM Professor p"); err != nil {
		t.Fatal(err)
	}
	// No crawl happened: the site saw only the single query's accesses.
	if ms.Counters().Gets() > 2 {
		t.Errorf("OpenWithStats should not crawl; site saw %d gets", ms.Counters().Gets())
	}
}

func TestLargeSiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large site")
	}
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{
		Depts: 10, Profs: 300, Courses: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := ulixes.OpenWithStats(ms, u.Scheme, view.UniversityView(u.Scheme), stats.CollectInstance(u.Instance))
	ans, err := sys.Query(`SELECT p.PName, p.Email
		FROM Professor p, ProfDept pd
		WHERE p.PName = pd.PName AND pd.DName = 'Computer Science'`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() != 30 {
		t.Errorf("CS professors = %d, want 30", ans.Result.Len())
	}
	// The chase plan touches ≈ 2 + 30 pages, not 300.
	if ans.PagesFetched > 60 {
		t.Errorf("pages fetched = %d; the optimizer should not scan all professors", ans.PagesFetched)
	}
}

func TestFacadeByteCostUnit(t *testing.T) {
	_, _, sys := openUniversity(t)
	pages, err := sys.Plan("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetOptions(ulixes.Options{Unit: cost.Bytes})
	bytes, err := sys.Plan("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	// The byte-weighted cost is in HTML bytes: orders of magnitude above
	// the page count, and the chosen plan still navigates the same path.
	if bytes.Best.Cost < 100*pages.Best.Cost {
		t.Errorf("byte cost %v should dwarf page cost %v", bytes.Best.Cost, pages.Best.Cost)
	}
}
