GO ?= go

.PHONY: build test race vet lint verify bench experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzers (see internal/lint).
lint:
	$(GO) run ./cmd/ulixes-vet ./...

# verify is the full gate: build + vet + lint + race-enabled tests.
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# experiments regenerates the tables of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/bench -markdown
