GO ?= go

.PHONY: build test race vet lint verify fuzz-smoke bench bench-json experiments chaos overload serve smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzers (see internal/lint).
lint:
	$(GO) run ./cmd/ulixes-vet ./...

# verify is the full gate: build + vet + lint + race-enabled tests.
verify:
	sh scripts/verify.sh

# fuzz-smoke runs each fuzz target briefly (seed corpus plus a short burst
# of generated inputs) so a regression in the lexer/tokenizer agreement or
# the entity-decoding inverse is caught without a long fuzzing session.
# Override FUZZTIME for longer local runs, e.g. FUZZTIME=30s.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/hypertext/ -run=NONE -fuzz=FuzzTokenize$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/hypertext/ -run=NONE -fuzz=FuzzLexer$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/hypertext/ -run=NONE -fuzz=FuzzUnescapeHTML$$ -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-json records the root benchmark suite as a labeled run in the
# committed trajectory file (ns/op, allocs, and the derived ns/page and
# bytes/tuple gate metrics). Override BENCH_LABEL to record e.g. "before".
BENCH_LABEL ?= after
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -merge BENCH_P1.json \
			-desc "root suite: go test -run=NONE -bench=. -benchmem -benchtime=3x ."

# experiments regenerates the tables of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/bench -markdown

# chaos runs the fault-injection suite under the race detector: the chaos
# server's determinism, the resilient fetch path, the site-health guard
# (breakers, bulkheads, hedging, stale serving), and the end-to-end
# degraded/retry acceptance scenarios.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/site/ -run 'Chaos|Fault|Retry|Degraded|Stall|Singleflight|Backoff|NotFound'
	$(GO) test -race ./internal/guard/
	$(GO) test -race ./internal/engine/ ./internal/pagecache/ ./internal/matview/ ./cmd/ulixesd/ -run 'Chaos|Breaker|Stale|Shed|Drain'
	$(GO) run ./cmd/bench -only P3
	$(GO) run ./cmd/bench -only P5

# overload runs the admission/deadline/memory-governance suite under the
# race detector, then the P8 overload experiment: 10x bursty arrivals on a
# chaotic site, asserting goodput, bounded sojourn, exact access accounting
# and a leak-free drain.
overload:
	$(GO) test -race ./internal/overload/
	$(GO) test -race ./cmd/ulixesd/ -run 'Queue|Deadline|Panic|Watch|Drain|Stats'
	$(GO) run ./cmd/bench -only P8

# serve starts the long-running query server over the shared page store.
serve:
	$(GO) run ./cmd/ulixesd

# smoke runs the query server's concurrent self-test (ephemeral port).
smoke:
	$(GO) run ./cmd/ulixesd -smoke
