// Command bench reproduces every experiment of the paper "Efficient
// Queries over Web Views" (see DESIGN.md for the index) and prints the
// resulting tables. With -markdown it emits the tables in the format used
// by EXPERIMENTS.md.
//
// Usage:
//
//	bench [-markdown] [-quick] [-only E1,E3,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ulixes/internal/exp"
	"ulixes/internal/sitegen"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit markdown tables (for EXPERIMENTS.md)")
	quick := flag.Bool("quick", false, "use smaller sites for a fast run")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	latency := flag.Duration("latency", 2*time.Millisecond, "simulated per-download RTT for P1")
	chaosSeed := flag.Uint64("chaos-seed", 1998, "fault-injection seed for P3")
	flag.Parse()

	univ := sitegen.PaperUniversityParams()
	bib := sitegen.DefaultBibliographyParams()
	if *quick {
		bib.Authors = 300
		bib.Confs = 10
		bib.DBConfs = 3
		bib.Years = 5
		bib.PapersPerEdition = 8
	}

	type runner struct {
		id  string
		run func() (*exp.Table, error)
	}
	runners := []runner{
		{"E1", func() (*exp.Table, error) { return exp.E1(bib) }},
		{"E2", func() (*exp.Table, error) { return exp.E2(univ) }},
		{"E2s", exp.E2Sweep},
		{"E3", func() (*exp.Table, error) { return exp.E3(univ) }},
		{"E3s", exp.E3Sweep},
		{"E4", func() (*exp.Table, error) { return exp.E4(univ, 8) }},
		{"E5", func() (*exp.Table, error) { return exp.E5(univ) }},
		{"A1", func() (*exp.Table, error) { return exp.A1(univ) }},
		{"A2", func() (*exp.Table, error) { return exp.A2(univ) }},
		{"A3", func() (*exp.Table, error) { return exp.A3(univ) }},
		{"X1", func() (*exp.Table, error) { return exp.X1(univ) }},
		{"P1", func() (*exp.Table, error) { return exp.P1(bib, *latency) }},
		{"P3", func() (*exp.Table, error) { return exp.P3(univ, nil, *chaosSeed) }},
		{"P4", func() (*exp.Table, error) { return exp.P4(univ) }},
		{"P5", func() (*exp.Table, error) { return exp.P5(univ) }},
		{"P6", func() (*exp.Table, error) { return exp.P6(univ) }},
		{"P7", func() (*exp.Table, error) { return exp.P7(univ) }},
		{"P8", func() (*exp.Table, error) { return exp.P8(univ) }},
	}

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		t, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}
}
