// Command webq runs conjunctive queries against a generated web site
// through the ulixes query system, printing the chosen navigation plan, its
// estimated cost, the measured page accesses and the answer.
//
// Usage:
//
//	webq [-site university|bibliography] [-explain] [-candidates] [-mat] 'SELECT …'
//	webq -site university -relations        # list the external view
//	webq -url http://host:8098 -scheme-file site.adm -views-file site.views 'SELECT …'
//
// With -mat the query runs against a materialized view (§8 of the paper),
// reporting light connections and downloads instead of page fetches. With
// -url the queries run against a real HTTP endpoint (for example one
// started with `sitegen -serve`), using scheme and view definitions loaded
// from the given files.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ulixes"
	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

func main() {
	siteName := flag.String("site", "university", "site to query: university or bibliography")
	courses := flag.Int("courses", 50, "university: number of courses")
	profs := flag.Int("profs", 20, "university: number of professors")
	depts := flag.Int("depts", 3, "university: number of departments")
	authors := flag.Int("authors", 500, "bibliography: number of authors")
	explain := flag.Bool("explain", false, "print the chosen plan as a tree")
	candidates := flag.Bool("candidates", false, "print all candidate plans with costs")
	mat := flag.Bool("mat", false, "query a materialized view instead of the live site")
	nav := flag.Bool("nav", false, "treat the argument as a Ulixes navigation expression, not a query")
	check := flag.Bool("check", false, "typecheck the plan statically and print diagnostics without executing")
	relations := flag.Bool("relations", false, "list the external relations and exit")
	baseURL := flag.String("url", "", "query a real HTTP endpoint instead of an in-memory site")
	schemeFile := flag.String("scheme-file", "", "ADM scheme file (required with -url)")
	viewsFile := flag.String("views-file", "", "view definition file (required with -url)")
	workers := flag.Int("workers", 0, "bound on concurrent page downloads (0 = default)")
	pipelined := flag.Bool("pipelined", false, "use the streaming parallel evaluator")
	retries := flag.Int("retries", 0, "retries per page fetch (exponential backoff with jitter)")
	timeout := flag.Duration("timeout", 0, "per-attempt fetch deadline (0 = none)")
	degraded := flag.Bool("degraded", false, "return partial answers when pages are unreachable")
	flag.Parse()

	var sys *ulixes.System
	var views *ulixes.Views
	var err error
	if *baseURL != "" {
		sys, views, err = openRemote(*baseURL, *schemeFile, *viewsFile)
	} else {
		sys, views, err = open(*siteName, *courses, *profs, *depts, *authors)
	}
	if err != nil {
		fail(err)
	}
	execOpts := ulixes.ExecOptions{
		Workers:   *workers,
		Pipelined: *pipelined,
		Retry:     site.RetryPolicy{MaxRetries: *retries, AttemptTimeout: *timeout},
		Degraded:  *degraded,
	}
	sys.SetExec(execOpts)
	if *relations {
		for _, name := range views.Names() {
			rel := views.Relation(name)
			fmt.Printf("%s(%s) — %d default navigation(s)\n", name, strings.Join(rel.Attrs, ", "), len(rel.Navs))
		}
		return
	}
	query := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if query == "" {
		fail(fmt.Errorf("no query given; try:\n  webq \"SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'\"\n  webq -nav \"ProfListPage / ProfList -> ToProf [Rank='Full']\""))
	}

	if *nav {
		expr, err := nalg.ParseNav(views.Scheme, query)
		if err != nil {
			fail(err)
		}
		if *check {
			checkPlan(expr, views.Scheme)
			return
		}
		fmt.Println(nalg.Explain(expr))
		rel, st, err := sys.ExecuteOpts(expr, execOpts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- %s\n", formatStats(st))
		printRelation(rel)
		return
	}

	if *check {
		res, err := sys.Plan(query)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- plan: %s\n", res.Best.Expr)
		checkPlan(res.Best.Expr, views.Scheme)
		return
	}

	if *explain || *candidates {
		out, err := sys.Explain(query)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		if !*candidates {
			return
		}
	}

	if *mat {
		mv, err := sys.Materialize()
		if err != nil {
			fail(err)
		}
		mv.SetExec(execOpts)
		ans, err := mv.Query(query)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- materialized view: %d light connections, %d downloads, %d updates applied\n",
			ans.LightConnections, ans.Downloads, ans.UpdatesApplied)
		printRelation(ans.Result)
		return
	}

	ans, err := sys.Query(query)
	if err != nil {
		fail(err)
	}
	fmt.Printf("-- plan cost: estimated %.1f, measured %d page accesses\n", ans.Plan.Cost, ans.PagesFetched)
	fmt.Printf("-- %s\n", formatStats(ans.Exec))
	printRelation(ans.Result)
}

// checkPlan prints the static diagnostics for a plan and exits non-zero if
// any were found (the -check mode: no page is ever accessed).
func checkPlan(expr nalg.Expr, ws *adm.Scheme) {
	diags := nalg.Check(expr, ws)
	if len(diags) == 0 {
		fmt.Println("plan typechecks: OK")
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "webq: %s\n", d)
	}
	os.Exit(1)
}

// formatStats renders the execution counters on one line.
func formatStats(st ulixes.ExecStats) string {
	s := fmt.Sprintf("%d pages, %.1f KB, %s wall, peak %d in-flight",
		st.Pages, float64(st.Bytes)/1024, st.Wall.Round(10*time.Microsecond), st.PeakInFlight)
	if st.Retries > 0 {
		s += fmt.Sprintf(", %d retries", st.Retries)
	}
	if st.Degraded {
		s += fmt.Sprintf(", DEGRADED (%d pages unreachable: %s)",
			len(st.FailedPages), strings.Join(st.FailedPages, ", "))
	}
	return s
}

// openRemote loads the scheme and views from files and targets a real HTTP
// endpoint serving the site (e.g. `sitegen -serve :8098`).
func openRemote(base, schemeFile, viewsFile string) (*ulixes.System, *ulixes.Views, error) {
	if schemeFile == "" || viewsFile == "" {
		return nil, nil, fmt.Errorf("-url requires -scheme-file and -views-file")
	}
	schemeSrc, err := os.ReadFile(schemeFile)
	if err != nil {
		return nil, nil, err
	}
	ws, err := adm.ParseScheme(string(schemeSrc))
	if err != nil {
		return nil, nil, err
	}
	viewSrc, err := os.ReadFile(viewsFile)
	if err != nil {
		return nil, nil, err
	}
	views, err := view.ParseViews(ws, string(viewSrc))
	if err != nil {
		return nil, nil, err
	}
	sys, err := ulixes.Open(&site.HTTPServer{Base: base}, ws, views)
	return sys, views, err
}

func open(name string, courses, profs, depts, authors int) (*ulixes.System, *ulixes.Views, error) {
	switch name {
	case "university":
		u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{
			Courses: courses, Profs: profs, Depts: depts,
		})
		if err != nil {
			return nil, nil, err
		}
		ms, err := site.NewMemSite(u.Instance, nil)
		if err != nil {
			return nil, nil, err
		}
		views := view.UniversityView(u.Scheme)
		sys, err := ulixes.Open(ms, u.Scheme, views)
		return sys, views, err
	case "bibliography":
		b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{Authors: authors})
		if err != nil {
			return nil, nil, err
		}
		ms, err := site.NewMemSite(b.Instance, nil)
		if err != nil {
			return nil, nil, err
		}
		views := view.BibliographyView(b.Scheme)
		sys, err := ulixes.Open(ms, b.Scheme, views)
		return sys, views, err
	default:
		return nil, nil, fmt.Errorf("unknown site %q (university or bibliography)", name)
	}
}

func printRelation(rel *ulixes.Relation) {
	tuples := rel.Sorted()
	if len(tuples) == 0 {
		fmt.Println("(empty result)")
		return
	}
	names := tuples[0].Names()
	fmt.Println(strings.Join(names, " | "))
	for _, t := range tuples {
		cells := make([]string, len(names))
		for i, n := range names {
			cells[i] = t.MustGet(n).String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d tuples)\n", len(tuples))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "webq:", err)
	os.Exit(1)
}
