// Command webq runs conjunctive queries against a generated web site
// through the ulixes query system, printing the chosen navigation plan, its
// estimated cost, the measured page accesses and the answer.
//
// Usage:
//
//	webq [-site university|bibliography] [-explain] [-candidates] [-mat] 'SELECT …'
//	webq -site university -relations        # list the external view
//	webq -url http://host:8098 -scheme-file site.adm -views-file site.views 'SELECT …'
//	webq -workload queries.txt              # run a whole file of queries
//
// With -mat the query runs against a materialized view (§8 of the paper),
// reporting light connections and downloads instead of page fetches. With
// -url the queries run against a real HTTP endpoint (for example one
// started with `sitegen -serve`), using scheme and view definitions loaded
// from the given files; 429/503 responses are waited out and retried up to
// -http-retries times, honoring the server's Retry-After hint, so a shed
// request delays one query instead of killing the run.
//
// With -workload the argument file holds one query per line (blank lines
// and # comments skipped). Every query runs even when earlier ones fail —
// each failure is reported and counted, and the exit status reflects
// whether any query failed, not the first one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ulixes"
	"ulixes/internal/adm"
	"ulixes/internal/guard"
	"ulixes/internal/nalg"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

func main() {
	siteName := flag.String("site", "university", "site to query: university or bibliography")
	courses := flag.Int("courses", 50, "university: number of courses")
	profs := flag.Int("profs", 20, "university: number of professors")
	depts := flag.Int("depts", 3, "university: number of departments")
	authors := flag.Int("authors", 500, "bibliography: number of authors")
	explain := flag.Bool("explain", false, "print the chosen plan as a tree")
	candidates := flag.Bool("candidates", false, "print all candidate plans with costs")
	mat := flag.Bool("mat", false, "query a materialized view instead of the live site")
	nav := flag.Bool("nav", false, "treat the argument as a Ulixes navigation expression, not a query")
	check := flag.Bool("check", false, "typecheck the plan statically and print diagnostics without executing")
	relations := flag.Bool("relations", false, "list the external relations and exit")
	baseURL := flag.String("url", "", "query a real HTTP endpoint instead of an in-memory site")
	schemeFile := flag.String("scheme-file", "", "ADM scheme file (required with -url)")
	viewsFile := flag.String("views-file", "", "view definition file (required with -url)")
	workers := flag.Int("workers", 0, "bound on concurrent page downloads (0 = default)")
	pipelined := flag.Bool("pipelined", false, "use the streaming parallel evaluator")
	retries := flag.Int("retries", 0, "retries per page fetch (exponential backoff with jitter)")
	timeout := flag.Duration("timeout", 0, "per-attempt fetch deadline (0 = none)")
	degraded := flag.Bool("degraded", false, "return partial answers when pages are unreachable")
	useGuard := flag.Bool("guard", true, "wrap the site in the per-host health guard (circuit breakers, bulkheads, hedging)")
	breakerThreshold := flag.Float64("breaker-threshold", guard.DefaultErrorThreshold, "EWMA error rate that opens a host's circuit breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", guard.DefaultOpenFor, "how long an open breaker rejects before probing")
	hostFetches := flag.Int("host-fetches", 0, "bulkhead: max concurrent fetches per host (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "issue a hedged GET if the first hasn't answered in this long (0 = off)")
	workloadFile := flag.String("workload", "", "file of queries, one per line; run all, continuing past failures")
	httpRetries := flag.Int("http-retries", 3, "with -url: extra attempts on 429/503, honoring Retry-After")
	flag.Parse()

	var server site.Server
	var ws *adm.Scheme
	var views *ulixes.Views
	var err error
	if *baseURL != "" {
		server, ws, views, err = openRemote(*baseURL, *schemeFile, *viewsFile, *httpRetries)
	} else {
		server, ws, views, err = open(*siteName, *courses, *profs, *depts, *authors)
	}
	if err != nil {
		fail(err)
	}
	if *useGuard {
		server = guard.New(server, guard.Config{
			ErrorThreshold: *breakerThreshold,
			OpenFor:        *breakerOpenFor,
			MaxPerHost:     *hostFetches,
			HedgeAfter:     *hedgeAfter,
		})
	}
	sys, err := ulixes.Open(server, ws, views)
	if err != nil {
		fail(err)
	}
	execOpts := ulixes.ExecOptions{
		Workers:   *workers,
		Pipelined: *pipelined,
		Retry:     site.RetryPolicy{MaxRetries: *retries, AttemptTimeout: *timeout},
		Degraded:  *degraded,
	}
	sys.SetExec(execOpts)
	if *relations {
		for _, name := range views.Names() {
			rel := views.Relation(name)
			fmt.Printf("%s(%s) — %d default navigation(s)\n", name, strings.Join(rel.Attrs, ", "), len(rel.Navs))
		}
		return
	}
	if *workloadFile != "" {
		runWorkload(sys, *workloadFile)
		return
	}

	query := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if query == "" {
		fail(fmt.Errorf("no query given; try:\n  webq \"SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'\"\n  webq -nav \"ProfListPage / ProfList -> ToProf [Rank='Full']\""))
	}

	if *nav {
		expr, err := nalg.ParseNav(views.Scheme, query)
		if err != nil {
			fail(err)
		}
		if *check {
			checkPlan(expr, views.Scheme)
			return
		}
		fmt.Println(nalg.Explain(expr))
		rel, st, err := sys.ExecuteOpts(expr, execOpts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- %s\n", formatStats(st))
		printRelation(rel)
		return
	}

	if *check {
		res, err := sys.Plan(query)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- plan: %s\n", res.Best.Expr)
		checkPlan(res.Best.Expr, views.Scheme)
		return
	}

	if *explain || *candidates {
		out, err := sys.Explain(query)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		if !*candidates {
			return
		}
	}

	if *mat {
		mv, err := sys.Materialize()
		if err != nil {
			fail(err)
		}
		mv.SetExec(execOpts)
		ans, err := mv.Query(query)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- materialized view: %d light connections, %d downloads, %d updates applied\n",
			ans.LightConnections, ans.Downloads, ans.UpdatesApplied)
		printRelation(ans.Result)
		return
	}

	ans, err := sys.Query(query)
	if err != nil {
		fail(err)
	}
	if ans.FromView {
		fmt.Printf("-- answered from materialized views (no plan built, no page accessed)\n")
	} else {
		fmt.Printf("-- plan cost: estimated %.1f, measured %d page accesses\n", ans.Plan.Cost, ans.PagesFetched)
	}
	fmt.Printf("-- %s\n", formatStats(ans.Exec))
	printRelation(ans.Result)
}

// runWorkload executes every query in the file (one per line, blank lines
// and # comments skipped). A failing query is reported and counted but
// never aborts the rest: with HTTPServer's Retry-After backoff upstream,
// transient overload delays a query, and only a genuine failure marks the
// line — the run always covers the whole file. Exits non-zero when any
// query failed.
func runWorkload(sys *ulixes.System, path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var ran, failed int
	for i, line := range strings.Split(string(src), "\n") {
		q := strings.TrimSpace(line)
		if q == "" || strings.HasPrefix(q, "#") {
			continue
		}
		ran++
		ans, err := sys.Query(q)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "webq: line %d: %v\n", i+1, err)
			continue
		}
		fmt.Printf("line %d: %d tuples -- %s\n", i+1, ans.Result.Len(), formatStats(ans.Exec))
	}
	fmt.Printf("workload: %d/%d queries succeeded\n", ran-failed, ran)
	if failed > 0 {
		os.Exit(1)
	}
}

// checkPlan prints the static diagnostics for a plan and exits non-zero if
// any were found (the -check mode: no page is ever accessed).
func checkPlan(expr nalg.Expr, ws *adm.Scheme) {
	diags := nalg.Check(expr, ws)
	if len(diags) == 0 {
		fmt.Println("plan typechecks: OK")
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "webq: %s\n", d)
	}
	os.Exit(1)
}

// formatStats renders the execution counters on one line.
func formatStats(st ulixes.ExecStats) string {
	s := fmt.Sprintf("%d pages, %.1f KB, %s wall, peak %d in-flight",
		st.Pages, float64(st.Bytes)/1024, st.Wall.Round(10*time.Microsecond), st.PeakInFlight)
	if st.AnsweredFromView {
		s += ", answered from view"
	}
	if st.Retries > 0 {
		s += fmt.Sprintf(", %d retries", st.Retries)
	}
	if st.Stale > 0 {
		s += fmt.Sprintf(", %d served stale", st.Stale)
	}
	if st.Hedges > 0 {
		s += fmt.Sprintf(", %d hedged (%d won)", st.Hedges, st.HedgeWins)
	}
	if st.BreakerFastFails > 0 {
		s += fmt.Sprintf(", %d breaker fast-fails", st.BreakerFastFails)
	}
	if st.PlanWall > 0 {
		if st.PlanCached {
			s += fmt.Sprintf(", plan cached (%s)", st.PlanWall.Round(10*time.Microsecond))
		} else {
			s += fmt.Sprintf(", planned in %s", st.PlanWall.Round(10*time.Microsecond))
		}
	}
	if st.Degraded {
		s += fmt.Sprintf(", DEGRADED (%d pages unreachable: %s)",
			len(st.FailedPages), strings.Join(st.FailedPages, ", "))
	}
	return s
}

// openRemote loads the scheme and views from files and targets a real HTTP
// endpoint serving the site (e.g. `sitegen -serve :8098`). It returns the
// raw server so main can layer the health guard before opening the system.
func openRemote(base, schemeFile, viewsFile string, retries int) (site.Server, *adm.Scheme, *ulixes.Views, error) {
	if schemeFile == "" || viewsFile == "" {
		return nil, nil, nil, fmt.Errorf("-url requires -scheme-file and -views-file")
	}
	schemeSrc, err := os.ReadFile(schemeFile)
	if err != nil {
		return nil, nil, nil, err
	}
	ws, err := adm.ParseScheme(string(schemeSrc))
	if err != nil {
		return nil, nil, nil, err
	}
	viewSrc, err := os.ReadFile(viewsFile)
	if err != nil {
		return nil, nil, nil, err
	}
	views, err := view.ParseViews(ws, string(viewSrc))
	if err != nil {
		return nil, nil, nil, err
	}
	return &site.HTTPServer{Base: base, Retries: retries}, ws, views, nil
}

func open(name string, courses, profs, depts, authors int) (site.Server, *adm.Scheme, *ulixes.Views, error) {
	switch name {
	case "university":
		u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{
			Courses: courses, Profs: profs, Depts: depts,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		ms, err := site.NewMemSite(u.Instance, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return ms, u.Scheme, view.UniversityView(u.Scheme), nil
	case "bibliography":
		b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{Authors: authors})
		if err != nil {
			return nil, nil, nil, err
		}
		ms, err := site.NewMemSite(b.Instance, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return ms, b.Scheme, view.BibliographyView(b.Scheme), nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown site %q (university or bibliography)", name)
	}
}

func printRelation(rel *ulixes.Relation) {
	tuples := rel.Sorted()
	if len(tuples) == 0 {
		fmt.Println("(empty result)")
		return
	}
	names := tuples[0].Names()
	fmt.Println(strings.Join(names, " | "))
	for _, t := range tuples {
		cells := make([]string, len(names))
		for i, n := range names {
			cells[i] = t.MustGet(n).String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d tuples)\n", len(tuples))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "webq:", err)
	os.Exit(1)
}
