// Command benchjson converts `go test -bench -benchmem` output into a JSON
// benchmark trajectory, deriving the hot-path gate metrics ns/page and
// bytes-allocated/tuple from the custom "pages" and "tuples" metrics the
// repo's benchmarks report.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem -benchtime=3x . | benchjson -label after -merge BENCH_P1.json
//
// With -merge the labeled run is appended to (or replaces, by label) the
// runs in an existing trajectory file, so a committed file accumulates
// before/after pairs across optimization work. Tuple counts are invariant
// across evaluator configurations (the answer is byte-identical by
// construction), so when an older run predates the "tuples" metric its
// bytes/tuple is derived from the tuple count of any newer run of the same
// benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: the standard ns/op, B/op and allocs/op
// plus every custom ReportMetric value, and the derived per-page and
// per-tuple figures when the inputs for them are present.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64            `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// NsPerPage is nsPerOp amortized over the "pages" metric: the cost of
	// the fetch→wrap→evaluate path per page accessed.
	NsPerPage float64 `json:"nsPerPage,omitempty"`
	// BytesPerTuple is bytesPerOp over the "tuples" metric: allocation
	// pressure per result row.
	BytesPerTuple float64 `json:"bytesPerTuple,omitempty"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	Label   string   `json:"label"`
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Trajectory is the committed file format: runs in the order they were
// recorded.
type Trajectory struct {
	Benchmarks string `json:"benchmarks"` // what was run, human-readable
	Runs       []Run  `json:"runs"`
}

func main() {
	label := flag.String("label", "run", "label for this run (e.g. before, after)")
	note := flag.String("note", "", "free-form note stored with the run")
	merge := flag.String("merge", "", "trajectory file to merge into (created if absent)")
	out := flag.String("out", "", "output file (default: the -merge file, else stdout)")
	desc := flag.String("desc", "", "trajectory description (set when creating a new file)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fail(err)
	}
	if len(results) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin"))
	}
	run := Run{Label: *label, Note: *note, Results: results}

	var traj Trajectory
	if *merge != "" {
		if raw, err := os.ReadFile(*merge); err == nil {
			if err := json.Unmarshal(raw, &traj); err != nil {
				fail(fmt.Errorf("%s: %w", *merge, err))
			}
		} else if !os.IsNotExist(err) {
			fail(err)
		}
	}
	if *desc != "" {
		traj.Benchmarks = *desc
	}
	// Replace a run with the same label in place; append otherwise.
	replaced := false
	for i := range traj.Runs {
		if traj.Runs[i].Label == run.Label {
			traj.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		traj.Runs = append(traj.Runs, run)
	}
	backfillTuples(&traj)

	enc, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	target := *out
	if target == "" {
		target = *merge
	}
	if target == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(target, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: %s: %d runs, %d results in %q\n", target, len(traj.Runs), len(run.Results), run.Label)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse extracts benchmark result lines. A line looks like:
//
//	BenchmarkName-8  20  618448 ns/op  19.00 pages  422074 B/op  3301 allocs/op
func parse(sc *bufio.Scanner) ([]Result, error) {
	var out []Result
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix, if numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		derive(&r)
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, sc.Err()
}

// derive fills NsPerPage and BytesPerTuple when their inputs are present.
func derive(r *Result) {
	if p := r.Metrics["pages"]; p > 0 && r.NsPerOp > 0 {
		r.NsPerPage = r.NsPerOp / p
	}
	if tp := r.Metrics["tuples"]; tp > 0 && r.BytesPerOp > 0 {
		r.BytesPerTuple = r.BytesPerOp / tp
	}
}

// backfillTuples derives bytes/tuple for runs recorded before the "tuples"
// metric existed, borrowing the tuple count from any other run of the same
// benchmark (tuple counts are invariant across runs of the same workload).
func backfillTuples(traj *Trajectory) {
	tuples := map[string]float64{}
	for _, run := range traj.Runs {
		for _, r := range run.Results {
			if tp := r.Metrics["tuples"]; tp > 0 {
				tuples[r.Name] = tp
			}
		}
	}
	for ri := range traj.Runs {
		for i := range traj.Runs[ri].Results {
			r := &traj.Runs[ri].Results[i]
			if r.BytesPerTuple == 0 && r.BytesPerOp > 0 {
				if tp := tuples[r.Name]; tp > 0 {
					r.BytesPerTuple = r.BytesPerOp / tp
				}
			}
		}
	}
}
