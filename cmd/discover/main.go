// Command discover crawls a generated site and performs the reverse-
// engineering step the paper assumes (§3 footnote 2): it verifies the
// constraints the scheme declares against the actual pages and mines the
// link and inclusion constraints that hold extensionally, flagging the
// undeclared ones as proposals for the site designer.
//
// Usage:
//
//	discover [-site university|bibliography] [-support N] [-undeclared]
package main

import (
	"flag"
	"fmt"
	"os"

	"ulixes/internal/adm"
	"ulixes/internal/discover"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
)

func main() {
	siteName := flag.String("site", "university", "site to analyze: university or bibliography")
	support := flag.Int("support", 2, "minimum witnessing occurrences for a mined constraint")
	undeclaredOnly := flag.Bool("undeclared", false, "show only constraints not already declared")
	flag.Parse()

	inst, err := crawl(*siteName)
	if err != nil {
		fail(err)
	}

	fmt.Println("-- verification of declared constraints --")
	checks, err := discover.Verify(inst)
	if err != nil {
		fail(err)
	}
	for _, v := range checks {
		status := "holds"
		if !v.Holds {
			status = fmt.Sprintf("VIOLATED ×%d (%s)", v.Violations, v.Example)
		}
		fmt.Printf("  [%s] %-70s %s\n", v.Kind, v.Constraint, status)
	}

	fmt.Println("\n-- mined constraints --")
	proposals, err := discover.Mine(inst, *support)
	if err != nil {
		fail(err)
	}
	for _, p := range proposals {
		if *undeclaredOnly && p.Declared {
			continue
		}
		fmt.Println("  " + p.String())
	}

	// Emit the undeclared proposals in the scheme language, ready to paste
	// into a scheme file.
	fmt.Println("\n-- scheme-language declarations for undeclared proposals --")
	for _, p := range proposals {
		if p.Declared {
			continue
		}
		if p.Link != nil {
			fmt.Printf("link-constraint via %s: %s = %s\n", p.Link.Link, p.Link.SrcAttr, p.Link.TgtAttr)
		} else {
			fmt.Printf("inclusion %s <= %s\n", p.Inclusion.Sub, p.Inclusion.Super)
		}
	}
}

func crawl(name string) (*adm.Instance, error) {
	var ms *site.MemSite
	var ws *adm.Scheme
	switch name {
	case "university":
		u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
		if err != nil {
			return nil, err
		}
		ws = u.Scheme
		if ms, err = site.NewMemSite(u.Instance, nil); err != nil {
			return nil, err
		}
	case "bibliography":
		b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{Authors: 200, Confs: 8, DBConfs: 3, Years: 4, PapersPerEdition: 5})
		if err != nil {
			return nil, err
		}
		ws = b.Scheme
		if ms, err = site.NewMemSite(b.Instance, nil); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown site %q", name)
	}
	return stats.Crawl(ms, ws)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "discover:", err)
	os.Exit(1)
}
