package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ulixes"
	"ulixes/internal/faults"
	"ulixes/internal/guard"
	"ulixes/internal/overload"
	"ulixes/internal/pagecache"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/standing"
	"ulixes/internal/view"
)

// leakCheck snapshots the goroutine count and returns a check that waits
// (with grace, for http keep-alive teardown) for the count to drain back to
// the baseline. Register it before the deferred ts.Close(), so the check
// runs after the server is fully shut down: a query goroutine that outlives
// its request — or a /watch stream pinned by a gone client — fails here.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s",
					runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// gateServer wraps a site and, when armed, blocks every GET until released
// — it lets a test hold a query in flight deterministically.
type gateServer struct {
	*site.MemSite
	mu      sync.Mutex
	gate    chan struct{}
	blocked chan struct{} // signaled once per blocked GET
}

func (g *gateServer) arm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gate = make(chan struct{})
	g.blocked = make(chan struct{}, 64)
}

func (g *gateServer) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
}

func (g *gateServer) Get(url string) (site.Page, error) {
	g.mu.Lock()
	gate, blocked := g.gate, g.blocked
	g.mu.Unlock()
	if gate != nil {
		blocked <- struct{}{}
		<-gate
	}
	return g.MemSite.Get(url) //lint:allow fetchgate test double forwarding to the wrapped site
}

// newTestServer builds a small university system over the given site
// wrapper with a shared store.
func newTestServer(t *testing.T, maxQueries, pageBudget int, wrap func(*site.MemSite) site.Server) *server {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 12, Profs: 6, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sv site.Server = ms
	if wrap != nil {
		sv = wrap(ms)
	}
	ledger := overload.NewLedger()
	cache := pagecache.New(sv, u.Scheme, pagecache.Config{
		DefaultTTL: pagecache.Forever,
		Clock:      site.LogicalClock(),
		Meter:      ledger.Account("pagecache"),
	})
	sys, err := ulixes.Open(ms, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetExec(ulixes.ExecOptions{Cache: cache, PageBudget: pageBudget})
	srv := newServer(sys, cache, maxQueries)
	srv.ledger = ledger
	return srv
}

func doQuery(t *testing.T, ts *httptest.Server, q string) (*http.Response, queryResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestSharedStoreAcrossQueries: the second query over the same relation
// costs zero downloads — every access is a cache hit, and the invariant
// access count matches the cold run.
func TestSharedStoreAcrossQueries(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	resp, cold := doQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query status %d", resp.StatusCode)
	}
	if cold.Stats.Pages == 0 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats %+v, want all downloads", cold.Stats)
	}
	resp, warm := doQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query status %d", resp.StatusCode)
	}
	if warm.Stats.Pages != 0 {
		t.Errorf("warm query downloaded %d pages, want 0", warm.Stats.Pages)
	}
	if warm.Stats.CacheHits != cold.Stats.Accesses {
		t.Errorf("warm hits %d, want %d (invariant accesses)", warm.Stats.CacheHits, cold.Stats.Accesses)
	}
	if len(warm.Rows) != len(cold.Rows) {
		t.Errorf("warm rows %d != cold rows %d", len(warm.Rows), len(cold.Rows))
	}
}

// TestAdmissionControl: with a single query slot, a second concurrent query
// is rejected immediately with 429 instead of queueing.
func TestAdmissionControl(t *testing.T) {
	var gs *gateServer
	srv := newTestServer(t, 1, 0, func(ms *site.MemSite) site.Server {
		gs = &gateServer{MemSite: ms}
		return gs
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	gs.arm()
	done := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		done <- resp.StatusCode
	}()
	// Wait until the in-flight query is provably blocked on a page fetch.
	select {
	case <-gs.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the site")
	}

	resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status %d, want 429", resp.StatusCode)
	}

	gs.release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated query finished with %d, want 200", code)
	}
	// The slot is free again.
	resp, _ = doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query status %d, want 200", resp.StatusCode)
	}
}

// TestPageBudgetRejectsQuery: a query whose plan needs more distinct pages
// than the per-query budget fails with 422 and a structured error.
func TestPageBudgetRejectsQuery(t *testing.T) {
	srv := newTestServer(t, 4, 2, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := doQuery(t, ts, "SELECT p.PName, p.Email FROM Professor p")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget query status %d, want 422", resp.StatusCode)
	}
}

// TestParseErrorIs400 and friends: client errors are 4xx, not 5xx.
func TestParseErrorIs400(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := doQuery(t, ts, "SELEKT nonsense")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage query status %d, want 400", resp.StatusCode)
	}
	resp, _ = doQuery(t, ts, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d, want 400", resp.StatusCode)
	}
}

// TestDrainRefusesNewQueries: draining flips /query and /healthz to 503
// while in-flight queries run to completion.
func TestDrainRefusesNewQueries(t *testing.T) {
	defer leakCheck(t)()
	var gs *gateServer
	srv := newTestServer(t, 4, 0, func(ms *site.MemSite) site.Server {
		gs = &gateServer{MemSite: ms}
		return gs
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	gs.arm()
	done := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		done <- resp.StatusCode
	}()
	select {
	case <-gs.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the site")
	}

	srv.drain()
	resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz") //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}

	// The in-flight query still completes.
	gs.release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight query finished with %d during drain, want 200", code)
	}
}

// TestSmokeWorkload runs the self-test end to end (ephemeral port). The
// smoke asserts plan-cache behavior, so the test mirrors the binary's
// default configuration and enables the cache.
func TestSmokeWorkload(t *testing.T) {
	srv := newTestServer(t, 8, 0, nil)
	srv.sys.EnablePlanCache(ulixes.PlanCacheConfig{})
	if err := runSmoke(srv); err != nil {
		t.Fatal(err)
	}
}

// headGate blocks every HEAD while armed — it holds a revalidating query in
// flight deterministically. It deliberately implements only the plain
// site.Server surface.
type headGate struct {
	inner   site.Server
	mu      sync.Mutex
	gate    chan struct{}
	blocked chan struct{}
}

func (h *headGate) arm() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gate = make(chan struct{})
	h.blocked = make(chan struct{}, 64)
}

func (h *headGate) release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gate != nil {
		close(h.gate)
		h.gate = nil
	}
}

func (h *headGate) Get(url string) (site.Page, error) {
	return h.inner.Get(url) //lint:allow fetchgate test double forwarding to the wrapped site
}

func (h *headGate) Head(url string) (site.Meta, error) {
	h.mu.Lock()
	gate, blocked := h.gate, h.blocked
	h.mu.Unlock()
	if gate != nil {
		blocked <- struct{}{}
		<-gate
	}
	return h.inner.Head(url) //lint:allow fetchgate test double forwarding to the wrapped site
}

// guardedFixture builds a university server whose fetches run through
// chaos → headGate → guard, on a shared manual clock, exactly as ulixesd
// wires the guard in front of the store and the engine.
func guardedFixture(t *testing.T) (*server, *faults.Server, *headGate, func(time.Duration)) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 12, Profs: 6, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Date(1998, time.March, 23, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	chaos := faults.New(ms, 7)
	hg := &headGate{inner: chaos}
	g := guard.New(hg, guard.Config{
		Clock: clock,
		// The statistics crawl and the warm query leave the EWMA near
		// zero, so exactly two failures (0.5, then 0.75) cross 0.6.
		ErrorThreshold: 0.6,
		OpenFor:        30 * time.Second,
	})
	cache := pagecache.New(g, u.Scheme, pagecache.Config{
		DefaultTTL: 10 * time.Second,
		Clock:      clock,
		Retry:      site.RetryPolicy{MaxRetries: 3, Seed: 7},
		Sleeper:    &site.InstantSleeper{},
	})
	sys, err := ulixes.Open(g, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetExec(ulixes.ExecOptions{Cache: cache})
	srv := newServer(sys, cache, 4)
	srv.guard = g
	return srv, chaos, hg, advance
}

// TestDrainCompletesDegradedQueriesAgainstFaultySite: queries in flight
// against a site that just went down are not lost by a graceful drain —
// the drain refuses new work immediately and the in-flight queries finish
// 200, degraded, answered from the store's expired copies.
func TestDrainCompletesDegradedQueriesAgainstFaultySite(t *testing.T) {
	defer leakCheck(t)()
	srv, chaos, hg, advance := guardedFixture(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	resp, warm := doQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK || warm.Degraded {
		t.Fatalf("warm query: status %d degraded %v", resp.StatusCode, warm.Degraded)
	}

	// Every lease expires and the origin goes down; the revalidating HEAD
	// of the next query blocks at the gate, provably in flight.
	advance(11 * time.Second)
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	hg.arm()
	type result struct {
		code int
		body queryResponse
	}
	done := make(chan result, 1)
	go func() {
		resp, body := doQuery(t, ts, q)
		done <- result{resp.StatusCode, body}
	}()
	select {
	case <-hg.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the site")
	}

	srv.drain()
	if resp, _ := doQuery(t, ts, q); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", resp.StatusCode)
	}

	// The in-flight query must complete within the drain deadline even
	// though its host is sick: two real failures trip the breaker and the
	// rest of the accesses degrade to the expired copies.
	hg.release()
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Fatalf("in-flight query finished with %d during drain, want 200", r.code)
		}
		if !r.body.Degraded || r.body.Stats.Stale != warm.Stats.Accesses {
			t.Fatalf("in-flight query stats %+v degraded=%v, want all %d accesses stale",
				r.body.Stats, r.body.Degraded, warm.Stats.Accesses)
		}
		if len(r.body.Rows) != len(warm.Rows) {
			t.Fatalf("degraded answer has %d rows, warm had %d", len(r.body.Rows), len(warm.Rows))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query lost: did not finish within the drain deadline")
	}
}

// TestLowPriorityShedWhileBreakerOpen: while any breaker is open, queries
// marked low priority are refused at admission with 503 (and counted), while
// normal-priority queries keep being served from the stale store. /healthz
// and /stats surface the open breaker.
func TestLowPriorityShedWhileBreakerOpen(t *testing.T) {
	srv, chaos, _, advance := guardedFixture(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	if resp, _ := doQuery(t, ts, q); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query status %d", resp.StatusCode)
	}

	// Low priority is admitted while healthy.
	resp, err := ts.Client().Get(ts.URL + "/query?priority=low&q=" + url.QueryEscape(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy low-priority query status %d, want 200", resp.StatusCode)
	}

	// The origin goes down; the next query trips the breaker and degrades.
	advance(11 * time.Second)
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	resp2, body := doQuery(t, ts, q)
	if resp2.StatusCode != http.StatusOK || !body.Degraded {
		t.Fatalf("sick-host query: status %d degraded %v, want degraded 200", resp2.StatusCode, body.Degraded)
	}

	// Low priority is now shed at admission; normal priority still served.
	req, err := http.NewRequest("GET", ts.URL+"/query?q="+url.QueryEscape(q), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Ulixes-Priority", "low")
	resp3, err := ts.Client().Do(req) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-priority query with open breaker: status %d, want 503", resp3.StatusCode)
	}
	if resp4, _ := doQuery(t, ts, q); resp4.StatusCode != http.StatusOK {
		t.Fatalf("normal-priority query with open breaker: status %d, want 200", resp4.StatusCode)
	}
	if got := srv.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// The open breaker is visible on /healthz and /stats.
	var health healthResponse
	if err := getTestJSON(t, ts, "/healthz", &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.BreakersOpen != 1 {
		t.Fatalf("healthz %+v, want degraded with one open breaker", health)
	}
	var st storeStats
	if err := getTestJSON(t, ts, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Hosts) != 1 || st.Hosts[0].State != guard.Open.String() {
		t.Fatalf("stats hosts %+v, want one open host", st.Hosts)
	}
	if st.Stale == 0 || st.BreakerFastFails == 0 || st.Shed != 1 {
		t.Fatalf("stats %+v, want stale, fast-fail and shed counters", st)
	}
}

// getTestJSON fetches one of the server's own JSON endpoints.
func getTestJSON(t *testing.T, ts *httptest.Server, path string, v any) error {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestQueueAdmissionQueuesThenServes: with a bounded queue configured, a
// request beyond the slot count waits its turn and is served — not 429'd —
// while a request beyond the queue bound is still rejected immediately.
func TestQueueAdmissionQueuesThenServes(t *testing.T) {
	defer leakCheck(t)()
	var gs *gateServer
	srv := newTestServer(t, 1, 0, func(ms *site.MemSite) site.Server {
		gs = &gateServer{MemSite: ms}
		return gs
	})
	srv.queue = overload.NewQueue(overload.QueueConfig{
		Slots: 1, MaxQueue: 1, MaxWait: 30 * time.Second,
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	gs.arm()
	first := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		first <- resp.StatusCode
	}()
	select {
	case <-gs.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached the site")
	}

	// The second query queues instead of failing.
	second := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		second <- resp.StatusCode
	}()
	waitQueued := time.Now().Add(10 * time.Second)
	for srv.queue.Depth() != 1 {
		if time.Now().After(waitQueued) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The third finds slot and queue full: immediate 429.
	resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third query status %d, want 429", resp.StatusCode)
	}

	gs.release()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first query status %d, want 200", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Fatalf("queued query status %d, want 200", code)
	}

	var st storeStats
	if err := getTestJSON(t, ts, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueDepth != 0 || st.QueueDropped != 1 || st.QueueAdmitted != 2 {
		t.Fatalf("queue stats depth=%d dropped=%d admitted=%d, want 0/1/2",
			st.QueueDepth, st.QueueDropped, st.QueueAdmitted)
	}
	if st.QueuePeakDepth != 1 {
		t.Fatalf("queue peak depth = %d, want 1", st.QueuePeakDepth)
	}
}

// TestDeadlineBudget: a client deadline that expires mid-query yields a
// partial (degraded-mode) answer marked deadlineExpired rather than an
// error; a malformed deadline is a 400.
func TestDeadlineBudget(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	resp, err := ts.Client().Get(ts.URL + "/query?deadline=banana&q=" + url.QueryEscape(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline status %d, want 400", resp.StatusCode)
	}

	// A deadline that has effectively already passed: the query still
	// answers (degraded execution tolerates the expired context) and the
	// response says the budget ran out.
	resp2, err := ts.Client().Get(ts.URL + "/query?deadline=1ns&q=" + url.QueryEscape(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("expired-deadline query status %d, want 200", resp2.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineExpired {
		t.Fatal("response should be marked deadlineExpired")
	}
	if got := srv.deadlineExpired.Load(); got != 1 {
		t.Fatalf("deadlineExpired counter = %d, want 1", got)
	}

	// A generous deadline leaves the answer untouched.
	resp3, body := doQuery(t, ts, q)
	if resp3.StatusCode != http.StatusOK || body.DeadlineExpired {
		t.Fatalf("generous deadline: status %d expired %v", resp3.StatusCode, body.DeadlineExpired)
	}
}

// TestPanicMiddlewareRecovers: a panicking handler becomes one 500 and a
// counter; a panic after the response was committed is swallowed without a
// second write. The server keeps serving either way.
func TestPanicMiddlewareRecovers(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)

	h := srv.protect(func(w http.ResponseWriter, r *http.Request) {
		panic("synthetic wrapper failure")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/query", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status %d, want 500", rec.Code)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	late := srv.protect(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("after commit")
	})
	rec2 := httptest.NewRecorder()
	late(rec2, httptest.NewRequest("GET", "/query", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("committed response rewritten to %d", rec2.Code)
	}
	if got := srv.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}

	// The real handler chain still works after recoveries.
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic query status %d, want 200", resp.StatusCode)
	}
}

// standingFixture wires a standing-query registry into a test server the
// way main does with -feed, answering through the shared system.
func standingFixture(t *testing.T) (*server, *standing.Registry) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 12, Profs: 6, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	cache := pagecache.New(ms, u.Scheme, pagecache.Config{
		DefaultTTL: pagecache.Forever,
		Clock:      site.LogicalClock(),
	})
	sys, err := ulixes.Open(ms, u.Scheme, views)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetExec(ulixes.ExecOptions{Cache: cache})
	srv := newServer(sys, cache, 4)
	reg := standing.New(standing.Config{
		Views: views,
		Answer: func(q *ulixes.Query) (*ulixes.Relation, error) {
			ans, err := sys.QueryCQ(q)
			if err != nil {
				return nil, err
			}
			return ans.Result, nil
		},
	})
	srv.standing = reg
	return srv, reg
}

// TestWatchSlowClientDisconnected: a /watch SSE write that cannot complete
// within the per-write deadline disconnects the stream and is counted, so a
// stalled subscriber cannot pin its goroutine and buffers forever.
func TestWatchSlowClientDisconnected(t *testing.T) {
	defer leakCheck(t)()
	srv, reg := standingFixture(t)
	// A deadline that is already past when armed: every write fails the
	// way a stalled client's writes do, without needing to fill socket
	// buffers in a test.
	srv.watchWrite = time.Nanosecond
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	id, err := reg.Subscribe("SELECT d.DName FROM Dept d")
	if err != nil {
		t.Fatal(err)
	}
	// The initial snapshot delta is waiting, so the stream tries to write
	// immediately and hits the expired deadline.
	resp, err := ts.Client().Get(ts.URL + "/watch?sse=1&after=0&id=" + strconv.Itoa(id)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.watchDropped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchDropped never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	// The buffered-delta bytes charged during the failed write were
	// refunded when the stream died.
	if got := srv.ledger.Account("watchBuffers").Bytes(); got != 0 {
		t.Fatalf("watchBuffers ledger = %d after disconnect, want 0", got)
	}
}

// TestStatsExposesOverloadSurface: /stats reports the admission queue, the
// deadline/panic counters and the per-subsystem memory ledger.
func TestStatsExposesOverloadSurface(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	if resp, _ := doQuery(t, ts, "SELECT p.PName FROM Professor p"); resp.StatusCode != http.StatusOK {
		t.Fatal("query failed")
	}
	var st storeStats
	if err := getTestJSON(t, ts, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueDepth != 0 || st.QueueAdmitted == 0 {
		t.Fatalf("queue stats %+v, want admitted > 0, depth 0", st)
	}
	if st.DeadlineExpired != 0 || st.PanicsRecovered != 0 {
		t.Fatalf("counters %+v, want zero deadline/panic", st)
	}
	if st.MemLedger["pagecache"] == 0 || st.MemBytes == 0 {
		t.Fatalf("memLedger %v (total %d), want pagecache bytes accounted", st.MemLedger, st.MemBytes)
	}
	if st.MemLedger["pagecache"] != st.EntryBytes {
		t.Fatalf("ledger pagecache %d != store bytes %d", st.MemLedger["pagecache"], st.EntryBytes)
	}
}
