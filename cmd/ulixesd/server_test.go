package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ulixes"
	"ulixes/internal/pagecache"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

// gateServer wraps a site and, when armed, blocks every GET until released
// — it lets a test hold a query in flight deterministically.
type gateServer struct {
	*site.MemSite
	mu      sync.Mutex
	gate    chan struct{}
	blocked chan struct{} // signaled once per blocked GET
}

func (g *gateServer) arm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gate = make(chan struct{})
	g.blocked = make(chan struct{}, 64)
}

func (g *gateServer) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
}

func (g *gateServer) Get(url string) (site.Page, error) {
	g.mu.Lock()
	gate, blocked := g.gate, g.blocked
	g.mu.Unlock()
	if gate != nil {
		blocked <- struct{}{}
		<-gate
	}
	return g.MemSite.Get(url) //lint:allow fetchgate test double forwarding to the wrapped site
}

// newTestServer builds a small university system over the given site
// wrapper with a shared store.
func newTestServer(t *testing.T, maxQueries, pageBudget int, wrap func(*site.MemSite) site.Server) *server {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 12, Profs: 6, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sv site.Server = ms
	if wrap != nil {
		sv = wrap(ms)
	}
	cache := pagecache.New(sv, u.Scheme, pagecache.Config{
		DefaultTTL: pagecache.Forever,
		Clock:      site.LogicalClock(),
	})
	sys, err := ulixes.Open(ms, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetExec(ulixes.ExecOptions{Cache: cache, PageBudget: pageBudget})
	return newServer(sys, cache, maxQueries)
}

func doQuery(t *testing.T, ts *httptest.Server, q string) (*http.Response, queryResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestSharedStoreAcrossQueries: the second query over the same relation
// costs zero downloads — every access is a cache hit, and the invariant
// access count matches the cold run.
func TestSharedStoreAcrossQueries(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	resp, cold := doQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query status %d", resp.StatusCode)
	}
	if cold.Stats.Pages == 0 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats %+v, want all downloads", cold.Stats)
	}
	resp, warm := doQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query status %d", resp.StatusCode)
	}
	if warm.Stats.Pages != 0 {
		t.Errorf("warm query downloaded %d pages, want 0", warm.Stats.Pages)
	}
	if warm.Stats.CacheHits != cold.Stats.Accesses {
		t.Errorf("warm hits %d, want %d (invariant accesses)", warm.Stats.CacheHits, cold.Stats.Accesses)
	}
	if len(warm.Rows) != len(cold.Rows) {
		t.Errorf("warm rows %d != cold rows %d", len(warm.Rows), len(cold.Rows))
	}
}

// TestAdmissionControl: with a single query slot, a second concurrent query
// is rejected immediately with 429 instead of queueing.
func TestAdmissionControl(t *testing.T) {
	var gs *gateServer
	srv := newTestServer(t, 1, 0, func(ms *site.MemSite) site.Server {
		gs = &gateServer{MemSite: ms}
		return gs
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	gs.arm()
	done := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		done <- resp.StatusCode
	}()
	// Wait until the in-flight query is provably blocked on a page fetch.
	select {
	case <-gs.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the site")
	}

	resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status %d, want 429", resp.StatusCode)
	}

	gs.release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated query finished with %d, want 200", code)
	}
	// The slot is free again.
	resp, _ = doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query status %d, want 200", resp.StatusCode)
	}
}

// TestPageBudgetRejectsQuery: a query whose plan needs more distinct pages
// than the per-query budget fails with 422 and a structured error.
func TestPageBudgetRejectsQuery(t *testing.T) {
	srv := newTestServer(t, 4, 2, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := doQuery(t, ts, "SELECT p.PName, p.Email FROM Professor p")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget query status %d, want 422", resp.StatusCode)
	}
}

// TestParseErrorIs400 and friends: client errors are 4xx, not 5xx.
func TestParseErrorIs400(t *testing.T) {
	srv := newTestServer(t, 4, 0, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := doQuery(t, ts, "SELEKT nonsense")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage query status %d, want 400", resp.StatusCode)
	}
	resp, _ = doQuery(t, ts, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d, want 400", resp.StatusCode)
	}
}

// TestDrainRefusesNewQueries: draining flips /query and /healthz to 503
// while in-flight queries run to completion.
func TestDrainRefusesNewQueries(t *testing.T) {
	var gs *gateServer
	srv := newTestServer(t, 4, 0, func(ms *site.MemSite) site.Server {
		gs = &gateServer{MemSite: ms}
		return gs
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	gs.arm()
	done := make(chan int, 1)
	go func() {
		resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
		done <- resp.StatusCode
	}()
	select {
	case <-gs.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the site")
	}

	srv.drain()
	resp, _ := doQuery(t, ts, "SELECT d.DName FROM Dept d")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz") //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}

	// The in-flight query still completes.
	gs.release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight query finished with %d during drain, want 200", code)
	}
}

// TestSmokeWorkload runs the self-test end to end (ephemeral port).
func TestSmokeWorkload(t *testing.T) {
	srv := newTestServer(t, 8, 0, nil)
	if err := runSmoke(srv); err != nil {
		t.Fatal(err)
	}
}
