// Command ulixesd is a long-running query server: many concurrent clients
// share one site, one optimizer and one cross-query page store, so pages
// downloaded for one query answer the next one for free (or for the price
// of a §8 light connection once their TTL expires).
//
// Usage:
//
//	ulixesd [-addr 127.0.0.1:8099] [-site university|bibliography]
//	        [-ttl 30s|forever] [-cache-bytes N] [-page-budget N]
//	        [-max-queries N] [-workers N] [-drain-timeout 10s]
//	        [-queue N] [-queue-wait 2s] [-capacity-pages N]
//	        [-deadline 0] [-deadline-max 0]
//	        [-guard] [-breaker-threshold 0.5] [-breaker-open-for 30s]
//	        [-host-fetches N] [-hedge-after 0]
//	        [-plan-cache] [-plan-cache-entries N] [-plan-drift 0.25]
//	        [-views-auto] [-views-budget N] [-views-horizon 5m]
//	        [-views-stale] [-views-every 50]
//	        [-feed off|hook|poll] [-feed-budget N] [-feed-interval 10s]
//	        [-watch-max N] [-ring-bytes N] [-watch-write-timeout 10s]
//	        [-mutate-seed N]
//
//	POST /query      query text in the body (or GET /query?q=…)
//	GET  /healthz    liveness (503 while draining; reports open breakers)
//	GET  /stats      shared-store, admission and per-host guard counters
//	POST /subscribe  register a standing query (body or ?q=…); returns its id
//	DELETE /subscribe?id=N   cancel a standing query
//	GET  /watch?id=N&after=M deltas with seq>M: long-poll JSON, SSE with &sse=1
//	POST /mutate?n=K apply K deterministic site mutations (university + -feed)
//
// Admission control is cost-aware and bounded: at most -max-queries queries
// run at once, up to -queue more wait FIFO, and a waiter whose sojourn
// exceeds -queue-wait is dropped (429, Retry-After) even if a slot frees —
// so queueing delay is bounded by construction, not by luck. With -queue 0
// (the default) excess requests are rejected immediately with 429, the
// historical behavior. With -capacity-pages, queries whose plan-cache page
// estimate exceeds the remaining capacity are refused at the door (429, or
// 422 when the estimate exceeds total capacity and could never fit) before
// they cost anything. Per-query deadline budgets bound latency the same
// way: a client's ?deadline= (clamped to -deadline-max) or the -deadline
// default turns into a context timeout plus degraded execution, so an
// expired query returns the partial answer it has (deadlineExpired in the
// response) instead of holding a slot. On SIGINT/SIGTERM the server stops
// admitting (503) and drains in-flight queries up to -drain-timeout.
//
// Memory is governed by one shared byte ledger: the page store, the
// standing-query delta rings (bounded by -ring-bytes, oldest dropped
// first), materialized view extents and /watch SSE buffers all report into
// it, and /stats exposes the per-subsystem bytes and peaks (memLedger).
// Slow /watch clients are disconnected after -watch-write-timeout per
// write rather than pinning buffers forever.
//
// With -guard (the default) every fetch runs through a per-host site-health
// guard: an EWMA-driven circuit breaker fast-fails requests to sick hosts
// (queries degrade to the store's expired copies instead of failing), a
// per-host bulkhead bounds in-flight fetches (-host-fetches), and slow GETs
// are hedged after -hedge-after (0 disables hedging). While any breaker is
// open, low-priority queries (header X-Ulixes-Priority: low or
// ?priority=low) are shed at admission with 503 so capacity goes to
// must-run work. Request deadlines and disconnects propagate end to end:
// the HTTP request context cancels the query's page fetches.
//
// With -plan-cache (the default) queries repeating an already-seen shape —
// the same query with different constants — skip Algorithm 1 entirely and
// reuse the cached typechecked, rewritten, cost-selected plan, specialized
// with the actual constants. Cached plans are invalidated when the site
// statistics drift past -plan-drift relative change. Per-query responses
// report planCached; /stats reports the hit/miss/invalidation counters.
//
// With -views-auto every query's canonicalized shape and measured cost is
// recorded, and every -views-every served queries a benefit-per-byte
// selector re-decides which view extents to materialize under -views-budget
// bytes. Queries a materialized view answers soundly (its binding pattern
// implied by the query's constants, within -views-horizon) skip navigation
// entirely and report fromView; anything else falls back to the live plan.
// /stats reports viewHits/viewMisses/viewBytes/selectorRuns and the backing
// store's maintenance counters.
//
// With -feed the server runs a push-based consistency pipeline (see
// internal/changefeed): page mutations become feed events that invalidate
// exactly the affected store entries, incrementally refresh exactly the
// changed materialized-view rows (with -views-auto), and re-answer exactly
// the standing queries whose footprint was touched. "hook" taps the
// in-process site's mutation hook (zero network traffic); "poll" sweeps
// every page with adaptive light connections every -feed-interval, at most
// -feed-budget HEADs per sweep. Standing queries are registered on
// /subscribe (at most -watch-max at once) and consumed on /watch as
// long-poll JSON or an SSE stream; /mutate applies a seeded, deterministic
// mutation workload to the university site so the pipeline can be exercised
// end to end. /stats reports the feed and standing-query ledgers.
//
// With -smoke the server starts on an ephemeral port, runs a deterministic
// multi-client workload against itself, checks every answer and the exact
// page-access accounting, and exits non-zero on any mismatch (used by
// scripts/verify.sh and CI).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ulixes"
	"ulixes/internal/changefeed"
	"ulixes/internal/cost"
	"ulixes/internal/guard"
	"ulixes/internal/overload"
	"ulixes/internal/pagecache"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/standing"
	"ulixes/internal/view"
	"ulixes/internal/vselect"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8099", "listen address")
	siteName := flag.String("site", "university", "site to serve: university or bibliography")
	courses := flag.Int("courses", 50, "university: number of courses")
	profs := flag.Int("profs", 20, "university: number of professors")
	depts := flag.Int("depts", 3, "university: number of departments")
	authors := flag.Int("authors", 500, "bibliography: number of authors")
	workers := flag.Int("workers", 0, "per-query bound on concurrent page downloads (0 = default)")
	maxQueries := flag.Int("max-queries", 8, "max in-flight queries; excess requests queue or get 429")
	queueLen := flag.Int("queue", 0, "admission queue length beyond -max-queries (0 = reject immediately)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max queue sojourn; overdue waiters are dropped with 429")
	capacityPages := flag.Float64("capacity-pages", 0, "estimated-page capacity across in-flight queries (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-query deadline when the client sends none (0 = none)")
	deadlineMax := flag.Duration("deadline-max", 0, "hard ceiling on any per-query deadline (0 = no ceiling)")
	pageBudget := flag.Int("page-budget", 0, "max distinct pages one query may access (0 = unlimited)")
	ttl := flag.String("ttl", "forever", "page TTL: a duration, 0 (revalidate every re-access) or forever")
	cacheBytes := flag.Int64("cache-bytes", 0, "shared store byte bound (0 = unbounded)")
	pipelined := flag.Bool("pipelined", true, "use the streaming parallel evaluator")
	retries := flag.Int("retries", 0, "retries per page fetch in the shared store")
	degraded := flag.Bool("degraded", false, "partial answers when pages are unreachable")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on shutdown")
	useGuard := flag.Bool("guard", true, "run fetches through the per-host site-health guard")
	breakerThreshold := flag.Float64("breaker-threshold", guard.DefaultErrorThreshold, "EWMA error rate that opens a host's circuit breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", guard.DefaultOpenFor, "how long an open breaker fast-fails before probing")
	hostFetches := flag.Int("host-fetches", 0, "per-host bulkhead: max in-flight fetches per host (0 = unbounded)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge straggler GETs after this delay (0 = no hedging)")
	planCache := flag.Bool("plan-cache", true, "cache prepared plans by query shape (constants parameterized out)")
	planCacheEntries := flag.Int("plan-cache-entries", 0, "max cached plan shapes (0 = default)")
	planDrift := flag.Float64("plan-drift", 0, "relative statistics drift that invalidates a cached plan (0 = default, negative = never)")
	viewsAuto := flag.Bool("views-auto", false, "record the workload and materialize the most beneficial views automatically")
	viewsBudget := flag.Int64("views-budget", 0, "storage budget in bytes for materialized view extents (0 = unlimited)")
	viewsHorizon := flag.Duration("views-horizon", 0, "freshness horizon: views older than this stop answering (0 = never expire)")
	viewsStale := flag.Bool("views-stale", false, "serve views past the freshness horizon instead of navigating live")
	viewsEvery := flag.Int("views-every", 50, "re-run view selection every N served queries")
	feedMode := flag.String("feed", "off", "push feed: off, hook (site mutation hook) or poll (adaptive HEAD sweeps)")
	feedBudget := flag.Int("feed-budget", 0, "poll feed: max light connections per sweep (0 = unlimited)")
	feedInterval := flag.Duration("feed-interval", 10*time.Second, "poll feed: sweep period and minimum per-URL check cadence")
	watchMax := flag.Int("watch-max", standing.DefaultMaxSubs, "max concurrent standing-query subscriptions")
	ringBytes := flag.Int("ring-bytes", 0, "per-subscription delta-ring byte bound; oldest dropped first (0 = count bound only)")
	watchWriteTimeout := flag.Duration("watch-write-timeout", defaultWatchWrite, "per-write /watch deadline; slow clients are disconnected (0 = none)")
	mutateSeed := flag.Int64("mutate-seed", 1, "seed for the /mutate mutation workload")
	smoke := flag.Bool("smoke", false, "self-test: serve on an ephemeral port, run a concurrent workload, exit")
	flag.Parse()

	ttlDur, err := parseTTL(*ttl)
	if err != nil {
		log.Fatalf("ulixesd: %v", err)
	}

	ms, ws, views, univ, err := buildSite(*siteName, *courses, *profs, *depts, *authors)
	if err != nil {
		log.Fatalf("ulixesd: %v", err)
	}
	// The guard composes transparently: it is simply the server the store
	// and the engine fetch through, so breakers, bulkheads and hedges apply
	// to every page access without further wiring.
	var server site.Server = ms
	var g *guard.Guard
	if *useGuard {
		g = guard.New(ms, guard.Config{
			ErrorThreshold: *breakerThreshold,
			OpenFor:        *breakerOpenFor,
			MaxPerHost:     *hostFetches,
			HedgeAfter:     *hedgeAfter,
		})
		server = g
	}
	// One ledger spans every byte-holding subsystem, so /stats can answer
	// "where is the memory" with a single consistent snapshot.
	ledger := overload.NewLedger()
	cache := pagecache.New(server, ws, pagecache.Config{
		MaxBytes:   *cacheBytes,
		DefaultTTL: ttlDur,
		Clock:      site.LogicalClock(),
		Retry:      site.RetryPolicy{MaxRetries: *retries},
		Workers:    *workers,
		Meter:      ledger.Account("pagecache"),
	})
	sys, err := ulixes.Open(server, ws, views)
	if err != nil {
		log.Fatalf("ulixesd: statistics crawl: %v", err)
	}
	sys.SetExec(ulixes.ExecOptions{
		Workers:    *workers,
		Pipelined:  *pipelined,
		Degraded:   *degraded,
		Cache:      cache,
		PageBudget: *pageBudget,
	})
	if *planCache {
		sys.EnablePlanCache(ulixes.PlanCacheConfig{
			MaxEntries:     *planCacheEntries,
			DriftThreshold: *planDrift,
		})
	}

	srv := newServer(sys, cache, *maxQueries)
	srv.guard = g
	srv.ledger = ledger
	srv.queue = overload.NewQueue(overload.QueueConfig{
		Slots:         *maxQueries,
		MaxQueue:      *queueLen,
		MaxWait:       *queueWait,
		CapacityPages: *capacityPages,
	})
	srv.deadlines = overload.DeadlineBudget{Default: *deadline, Max: *deadlineMax}
	srv.watchWrite = *watchWriteTimeout
	if *viewsAuto {
		// Workload-driven view answering: record every query's shape and
		// cost, and let the benefit/byte selector re-decide the materialized
		// view set as the workload drifts. The first selection crawls the
		// site into the backing store; until then every query misses to the
		// live planner.
		sys.EnableWorkload(0)
		sys.EnableViewAnswering(ulixes.ViewManagerConfig{
			Rewriter: ulixes.ViewRewriterConfig{Horizon: *viewsHorizon, AllowStale: *viewsStale},
			Budget:   *viewsBudget,
		})
		srv.selector = vselect.New(vselect.Config{
			Budget: *viewsBudget,
			Views:  views,
			Model:  &cost.Model{Scheme: ws, Stats: sys.Stats()},
		})
		srv.viewsEvery = *viewsEvery
		// Matview bytes are already tracked by the manager; the ledger polls
		// them as a gauge instead of double-charging every row mutation.
		ledger.Gauge("matview", func() int64 {
			if vm := sys.ViewManager(); vm != nil {
				return vm.Bytes()
			}
			return 0
		})
	}

	// Push-based consistency: one monitor, three sinks. Every observed page
	// mutation invalidates exactly the affected store entry, refreshes exactly
	// the changed materialized-view row, and re-answers exactly the standing
	// queries whose footprint it touches. The monitor and the view horizon
	// share wall time (vanswer stamps verifications with time.Now), unlike the
	// page store's logical TTL clock — the two ledgers never exchange instants.
	feedCtx, stopFeed := context.WithCancel(context.Background())
	defer stopFeed()
	var feedWG sync.WaitGroup
	if *feedMode != "off" {
		if *feedMode != "hook" && *feedMode != "poll" {
			log.Fatalf("ulixesd: bad -feed %q (off, hook or poll)", *feedMode)
		}
		mon := changefeed.New(server, changefeed.Config{
			Clock:       time.Now,
			Budget:      *feedBudget,
			MinInterval: *feedInterval,
		})
		// Sink 1: targeted page-store invalidation. A touch only bumps the
		// date, so the entry stays and the next access revalidates; anything
		// else drops the entry so the next access re-downloads.
		mon.Subscribe(changefeed.SinkFunc(func(ev changefeed.Event) {
			if ev.Kind == site.ChangeTouched {
				cache.MarkStale(ev.URL)
				return
			}
			cache.Invalidate(ev.URL)
		}))
		// Sink 2: incremental view maintenance. Each event re-wraps (or
		// drops) one page in the materialized store and rebuilds the applied
		// extents — no full crawl. In hook mode every mutation is observed,
		// so after applying one the whole extent is consistent through "now"
		// and the freshness horizon advances with it; in poll mode only a
		// clean full sweep proves that, via the sweep report below.
		if *viewsAuto {
			hooked := *feedMode == "hook"
			mon.Subscribe(changefeed.SinkFunc(func(ev changefeed.Event) {
				vm := sys.ViewManager()
				if vm == nil {
					return
				}
				if _, err := vm.ApplyChange(ev.URL, ev.Scheme, ev.Kind == site.ChangeRemoved); err != nil {
					log.Printf("ulixesd: feed: view refresh of %s: %v", ev.URL, err)
					return
				}
				if hooked {
					if at, ok := mon.VerifiedBound(); ok {
						vm.AdvanceHorizon(at)
					}
				}
			}))
			mon.SubscribeSweep(changefeed.SweepFunc(func(rep changefeed.SweepReport) {
				if !rep.Clean || rep.OldestVerified.IsZero() {
					return
				}
				if vm := sys.ViewManager(); vm != nil {
					vm.AdvanceHorizon(rep.OldestVerified)
				}
			}))
		}
		// Sink 3: standing queries, re-answered through the shared system so
		// deltas price in the plan cache, the page store and view answering.
		reg := standing.New(standing.Config{
			Views:        views,
			MaxSubs:      *watchMax,
			MaxRingBytes: *ringBytes,
			Meter:        ledger.Account("standingRings"),
			Clock:        time.Now,
			Answer: func(q *ulixes.Query) (*ulixes.Relation, error) {
				ans, err := sys.QueryCQ(q)
				if err != nil {
					return nil, err
				}
				return ans.Result, nil
			},
		})
		mon.Subscribe(reg)
		srv.feed = mon
		srv.standing = reg
		if univ != nil {
			srv.mutator = sitegen.NewMutator(univ, ms, *mutateSeed)
		}
		if *feedMode == "hook" {
			mon.AttachMemSite(ms)
		} else {
			mon.WatchMemSite(ms)
			feedWG.Add(1)
			go func() {
				defer feedWG.Done()
				_ = mon.Run(feedCtx, *feedInterval, nil) // returns on cancel
			}()
		}
	}

	if *smoke {
		err := runSmoke(srv)
		stopFeed()
		feedWG.Wait()
		if err != nil {
			log.Fatalf("ulixesd: smoke: %v", err)
		}
		fmt.Println("ulixesd: smoke OK")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ulixesd: %v", err)
	}
	hs := &http.Server{Handler: srv.handler()}
	go func() {
		log.Printf("ulixesd: serving %s on http://%s (max %d queries, ttl %s)",
			*siteName, ln.Addr(), *maxQueries, *ttl)
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("ulixesd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("ulixesd: draining (up to %s)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.drain()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatalf("ulixesd: drain: %v", err)
	}
	stopFeed()
	feedWG.Wait()       // stop the poll-mode sweeper
	srv.selectWG.Wait() // let an in-flight background view selection settle
	log.Printf("ulixesd: drained; %d queries served", srv.served.Load())
}

// parseTTL accepts a Go duration, "0" and the sentinel "forever".
func parseTTL(s string) (time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "forever", "inf":
		return pagecache.Forever, nil
	case "0":
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad -ttl %q: a duration, 0 or forever", s)
	}
	return d, nil
}

// buildSite generates one of the paper's sites in memory. The university
// comes back with its generator handle, so a /mutate driver can be seeded
// over it; the bibliography has no mutation workload (u is nil).
func buildSite(name string, courses, profs, depts, authors int) (*site.MemSite, *ulixes.Scheme, *ulixes.Views, *sitegen.University, error) {
	switch name {
	case "university":
		u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{
			Courses: courses, Profs: profs, Depts: depts,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ms, err := site.NewMemSite(u.Instance, nil)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return ms, u.Scheme, view.UniversityView(u.Scheme), u, nil
	case "bibliography":
		b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{Authors: authors})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ms, err := site.NewMemSite(b.Instance, nil)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return ms, b.Scheme, view.BibliographyView(b.Scheme), nil, nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("unknown site %q (university or bibliography)", name)
	}
}
