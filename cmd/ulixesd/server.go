package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ulixes"
	"ulixes/internal/changefeed"
	"ulixes/internal/engine"
	"ulixes/internal/guard"
	"ulixes/internal/overload"
	"ulixes/internal/pagecache"
	"ulixes/internal/sitegen"
	"ulixes/internal/standing"
	"ulixes/internal/vselect"
)

// server is the HTTP face of one shared query system. Admission runs
// through a cost-aware bounded queue (internal/overload): at most Slots
// queries run at once, up to -queue more wait FIFO bounded by -queue-wait
// sojourn (CoDel-style: overdue waiters are dropped even when a slot
// frees), and queries whose estimated page cost exceeds the remaining
// -capacity-pages are refused at the door. A draining flag refuses new work
// during graceful shutdown. When a site-health guard is attached,
// low-priority queries are shed at admission (503) while any host's breaker
// is open, so the remaining capacity goes to must-run work. Every handler
// runs under a recover middleware: a panic (a wrapper bug on hostile HTML)
// becomes one 500 and a counter, not a dead server.
type server struct {
	sys   *ulixes.System
	cache *pagecache.Cache
	guard *guard.Guard // nil when -guard=false

	// selector, when non-nil (-views-auto), re-decides the materialized
	// view set every viewsEvery served queries from the recorded workload;
	// selecting keeps concurrent re-decisions from stacking up.
	selector   *vselect.Selector
	viewsEvery int

	// feed and standing, when non-nil (-feed), are the push-consistency
	// pipeline: the monitor feeding mutation events and the standing-query
	// registry served by /subscribe and /watch. mutator (university sites
	// only) backs /mutate; mutMu serializes its steps.
	feed     *changefeed.Monitor
	standing *standing.Registry
	mutator  *sitegen.Mutator
	mutMu    sync.Mutex
	// watchCtx ends open /watch streams on drain: http.Server.Shutdown waits
	// for active requests, and a long-poll would otherwise hold it until the
	// drain deadline.
	watchCtx  context.Context
	stopWatch context.CancelFunc

	// queue is the admission layer; deadlines clamps per-query budgets
	// (?deadline= up to -deadline-max, -deadline when the client is
	// silent); ledger is the shared byte ledger /stats reports per
	// subsystem.
	queue     *overload.Queue
	deadlines overload.DeadlineBudget
	ledger    *overload.Ledger
	// watchWrite bounds each /watch write+flush: a client that stops
	// reading is disconnected (watchDropped) instead of pinning the
	// stream goroutine and its buffered deltas forever.
	watchWrite time.Duration

	draining        atomic.Bool
	inflight        atomic.Int64
	served          atomic.Int64
	rejected        atomic.Int64
	shed            atomic.Int64
	deadlineExpired atomic.Int64
	panics          atomic.Int64
	watchDropped    atomic.Int64
	selecting       atomic.Bool
	// selectWG tracks the in-flight background reselection, so shutdown and
	// tests can wait for it to settle.
	selectWG sync.WaitGroup

	mu sync.Mutex
	// totals accumulates every served query's ExecStats via ExecStats.Add,
	// so /stats can report the query-side cost ledger (the paper's C(E)
	// summed over the workload) next to the store's own counters.
	totals engine.ExecStats // guarded by mu
}

// defaultWatchWrite is the per-write /watch deadline when main does not
// configure one.
const defaultWatchWrite = 10 * time.Second

func newServer(sys *ulixes.System, cache *pagecache.Cache, maxQueries int) *server {
	if maxQueries < 1 {
		maxQueries = 1
	}
	// MaxQueue 0 preserves the historical instant-429 admission; main (and
	// tests) swap in a configured queue for bounded waiting.
	s := &server{
		sys:        sys,
		cache:      cache,
		queue:      overload.NewQueue(overload.QueueConfig{Slots: maxQueries}),
		ledger:     overload.NewLedger(),
		watchWrite: defaultWatchWrite,
	}
	s.watchCtx, s.stopWatch = context.WithCancel(context.Background())
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.protect(s.handleQuery))
	mux.HandleFunc("/healthz", s.protect(s.handleHealthz))
	mux.HandleFunc("/stats", s.protect(s.handleStats))
	mux.HandleFunc("/subscribe", s.protect(s.handleSubscribe))
	mux.HandleFunc("/watch", s.protect(s.handleWatch))
	mux.HandleFunc("/mutate", s.protect(s.handleMutate))
	return mux
}

// recoveringWriter tracks whether a handler already committed a response,
// so the recover middleware knows whether a 500 can still be written. It
// forwards Flush and exposes Unwrap so http.ResponseController reaches the
// underlying writer's write-deadline support.
type recoveringWriter struct {
	http.ResponseWriter
	wrote bool
}

func (rw *recoveringWriter) WriteHeader(code int) {
	rw.wrote = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoveringWriter) Write(b []byte) (int, error) {
	rw.wrote = true
	return rw.ResponseWriter.Write(b)
}

func (rw *recoveringWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// FlushError exists because ResponseController.Flush prefers it over plain
// Flush: without it the controller would stop at this wrapper's Flusher and
// swallow the underlying write error — exactly the error the /watch
// write-deadline machinery needs to see to disconnect a stalled client.
func (rw *recoveringWriter) FlushError() error {
	return http.NewResponseController(rw.ResponseWriter).Flush()
}

func (rw *recoveringWriter) Unwrap() http.ResponseWriter { return rw.ResponseWriter }

// protect is the panic-isolation middleware: a panic anywhere under a
// handler — most plausibly the wrapper choking on hostile HTML — is
// recovered into a 500 and a counter. One query dies; the server, its
// store, and every other in-flight query keep running. Deferred releases
// (admission tickets, inflight gauges) run normally during the unwind.
func (s *server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rw := &recoveringWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				log.Printf("ulixesd: recovered panic in %s: %v", r.URL.Path, p)
				if !rw.wrote {
					writeJSON(rw, http.StatusInternalServerError,
						errorResponse{Error: fmt.Sprintf("internal error: %v", p)})
				}
			}
		}()
		h(rw, r)
	}
}

// drain stops admitting queries; in-flight ones finish normally. Open
// /watch streams are ended so shutdown does not wait out their long-polls.
func (s *server) drain() {
	s.draining.Store(true)
	s.stopWatch()
}

// queryStats is the per-query accounting exposed to clients. Pages +
// CacheHits + Revalidations + Stale is the paper's distinct-access cost
// C(E), invariant across cold and warm stores; Pages alone is what this
// query actually cost the network.
type queryStats struct {
	Accesses         int     `json:"accesses"`
	Pages            int     `json:"pages"`
	CacheHits        int     `json:"cacheHits"`
	Revalidations    int     `json:"revalidations"`
	LightConnections int     `json:"lightConnections"`
	Bytes            int64   `json:"bytes"`
	WallMs           float64 `json:"wallMs"`
	Stale            int     `json:"stale,omitempty"`
	Hedges           int     `json:"hedges,omitempty"`
	BreakerFastFails int     `json:"breakerFastFails,omitempty"`
	// PlanCached reports that the plan came from the prepared-plan cache
	// (Algorithm 1 skipped); PlanMs is the time spent obtaining the plan
	// either way.
	PlanCached bool    `json:"planCached,omitempty"`
	PlanMs     float64 `json:"planMs"`
	// FromView reports that the answer came from materialized views: no
	// plan was built and no page was accessed.
	FromView bool `json:"fromView,omitempty"`
}

type queryFailure struct {
	URL     string `json:"url"`
	Error   string `json:"error"`
	Retries int    `json:"retries"`
}

type queryResponse struct {
	Plan          string     `json:"plan"`
	EstimatedCost float64    `json:"estimatedCost"`
	Columns       []string   `json:"columns"`
	Rows          [][]string `json:"rows"`
	Stats         queryStats `json:"stats"`
	Degraded      bool       `json:"degraded,omitempty"`
	// DeadlineExpired marks an answer cut short by the per-query deadline
	// budget: what was reached is returned, the rest is in Failures.
	DeadlineExpired bool           `json:"deadlineExpired,omitempty"`
	Failures        []queryFailure `json:"failures,omitempty"`
	StalePages      []string       `json:"stalePages,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// lowPriority reports whether the request marked itself sheddable, via the
// X-Ulixes-Priority header or the ?priority= query parameter.
func lowPriority(r *http.Request) bool {
	p := r.Header.Get("X-Ulixes-Priority")
	if p == "" {
		p = r.URL.Query().Get("priority")
	}
	return strings.EqualFold(strings.TrimSpace(p), "low")
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	// Load shedding: while any host's breaker is open the system is
	// degraded, so sheddable work is refused at admission rather than
	// spending bulkhead slots and stale serves on it.
	if s.guard != nil && lowPriority(r) && s.guard.AnyOpen() {
		s.shed.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "degraded: low-priority queries shed while a circuit breaker is open"})
		return
	}
	// Parse before admission: it is cheap, it rejects garbage without
	// spending a slot, and it gives the admission queue a shape to price.
	text, err := queryText(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	q, err := ulixes.ParseQuery(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	reqDeadline, err := durParam(r, "deadline")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad ?deadline=: want a Go duration like 500ms or 5s"})
		return
	}

	pri := overload.Normal
	if lowPriority(r) {
		pri = overload.Low
	}
	// The estimate is advisory: a never-seen shape prices as 0 ("unknown,
	// admit on slots alone"); a cached shape's plan cost gates it against
	// the page capacity the admitted set already holds.
	est, _ := s.sys.EstimatedPages(q)
	ticket, err := s.queue.Acquire(r.Context(), pri, est)
	if err != nil {
		s.refuse(w, err)
		return
	}
	defer ticket.Release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	ctx := r.Context()
	opts := s.sys.ExecOpts()
	if d := s.deadlines.Resolve(reqDeadline); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
		// A deadline implies degraded execution: at expiry the query
		// returns the pages it reached as a partial answer (the failures
		// listed per URL) instead of hanging or failing outright.
		opts.Degraded = true
	}
	ans, err := s.sys.QueryCQOptsCtx(ctx, q, opts)
	switch {
	case err == nil:
	case errors.Is(err, pagecache.ErrBudgetExceeded):
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	case ctx.Err() != nil && r.Context().Err() == nil:
		// The per-query budget expired (the client is still there): the
		// degraded evaluator could not salvage a partial answer in time.
		s.deadlineExpired.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: fmt.Sprintf("deadline exceeded: %v", err)})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	// A query that answered inside its budget but saw the deadline expire
	// mid-flight returns what it reached, marked: partial beats hung.
	expired := ctx.Err() != nil && r.Context().Err() == nil
	if expired {
		s.deadlineExpired.Add(1)
	}
	// The value returned by Add is this request's exact serial number;
	// re-reading the counter could skip the viewsEvery multiple when two
	// requests increment before either reads.
	s.maybeReselect(s.served.Add(1))

	st := ans.Exec
	s.mu.Lock()
	s.totals.Add(st)
	s.mu.Unlock()
	// A view answer never built a plan; Answer.Plan is nil on that path.
	planText, planCost := "(answered from materialized views)", 0.0
	if !ans.FromView {
		planText, planCost = ans.Plan.Expr.String(), ans.Plan.Cost
	}
	resp := queryResponse{
		Plan:          planText,
		EstimatedCost: planCost,
		Columns:       ans.Result.Names(),
		Stats: queryStats{
			Accesses:         st.Pages + st.CacheHits + st.Revalidations + st.Stale,
			Pages:            st.Pages,
			CacheHits:        st.CacheHits,
			Revalidations:    st.Revalidations,
			LightConnections: st.LightConnections,
			Bytes:            st.Bytes,
			WallMs:           float64(st.Wall) / float64(time.Millisecond),
			Stale:            st.Stale,
			Hedges:           st.Hedges,
			BreakerFastFails: st.BreakerFastFails,
			PlanCached:       st.PlanCached,
			PlanMs:           float64(st.PlanWall) / float64(time.Millisecond),
			FromView:         st.AnsweredFromView,
		},
		Degraded:        st.Degraded,
		DeadlineExpired: expired,
		StalePages:      st.StalePages,
	}
	for _, t := range ans.Result.Sorted() {
		row := make([]string, t.Arity())
		for i := range row {
			row[i] = t.At(i).String()
		}
		resp.Rows = append(resp.Rows, row)
	}
	for _, f := range st.Failures {
		resp.Failures = append(resp.Failures, queryFailure{
			URL: f.URL, Error: f.Err.Error(), Retries: f.Retries,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// refuse maps an admission error to its HTTP status: queue-full and
// no-capacity-now are retryable (429 with Retry-After), an overdue sojourn
// or a shed low-priority request is 503, a query too expensive to ever fit
// the configured capacity is 422, and a client that vanished while queued
// gets a best-effort 503 it will never read.
func (s *server) refuse(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, overload.ErrShed):
		s.shed.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, overload.ErrOverdue):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, overload.ErrTooExpensive):
		s.rejected.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	case errors.Is(err, overload.ErrQueueFull), errors.Is(err, overload.ErrNoCapacity):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	default: // context canceled/expired while queued
		s.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	}
}

// durParam reads an optional duration query parameter.
func durParam(r *http.Request, name string) (time.Duration, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	return time.ParseDuration(v)
}

// maybeReselect re-runs benefit-driven view selection every viewsEvery
// served queries (served is this request's exact serial number, so the
// multiple test is race-free). The work — including the initial
// materialization crawl and the pre-apply store revalidation, both of which
// touch the whole site — runs in a background goroutine, NOT on the request
// path: the triggering query's response and its admission slot are not held
// hostage to a crawl. At most one re-selection runs at a time; overlapping
// triggers are dropped, not queued — the next multiple tries again.
func (s *server) maybeReselect(served int64) {
	if s.selector == nil || s.viewsEvery <= 0 {
		return
	}
	if served%int64(s.viewsEvery) != 0 {
		return
	}
	rec, vm := s.sys.Workload(), s.sys.ViewManager()
	if rec == nil || vm == nil {
		return
	}
	if !s.selecting.CompareAndSwap(false, true) {
		return
	}
	s.selectWG.Add(1)
	go func() {
		defer s.selectWG.Done()
		defer s.selecting.Store(false)
		s.reselect(rec, vm)
	}()
}

// reselect is the background body of one selection run: snapshot the
// recorded workload, ask the drift gate whether the mix has shifted enough
// to matter, and if so revalidate the backing store and apply the new
// decision through the view manager (which enforces the storage budget on
// measured extent bytes).
func (s *server) reselect(rec *ulixes.WorkloadRecorder, vm *ulixes.ViewManager) {
	sums := rec.Snapshot()
	if !s.selector.ShouldRun(sums) {
		return
	}
	// Revalidate before re-deciding: extents built by Apply inherit the
	// store's last verification time, so without this pass a reselection
	// would re-serve the original crawl until it ages past -views-horizon.
	// The first selection has no store yet — its crawl is fresh by itself.
	if _, _, stale, err := vm.RefreshStore(); err != nil {
		log.Printf("ulixesd: view refresh: %v", err)
	} else if len(stale) > 0 {
		log.Printf("ulixesd: view refresh: %d pages unreachable, freshness horizon not renewed", len(stale))
	}
	d := s.selector.Decide(sums)
	kept, err := vm.Apply(d.Defs())
	if err != nil {
		log.Printf("ulixesd: view selection: %v", err)
		return
	}
	keys := make([]string, len(kept))
	for i, def := range kept {
		keys[i] = def.Key()
	}
	log.Printf("ulixesd: view selection run %d materialized %d views (%s), %d bytes",
		s.selector.Runs(), len(kept), strings.Join(keys, ", "), vm.Bytes())
}

// subscribeResponse acknowledges a standing-query registration: the id
// addresses /watch and DELETE /subscribe, the footprint is the set of
// page-schemes whose mutations re-answer the query.
type subscribeResponse struct {
	ID        int      `json:"id"`
	Query     string   `json:"query"`
	Footprint []string `json:"footprint"`
}

// handleSubscribe registers (POST) or cancels (DELETE ?id=) a standing
// query. The initial snapshot arrives as the subscription's first delta on
// /watch, so a client that subscribes and immediately watches from after=0
// misses nothing.
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.standing == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "push feed disabled; restart with -feed hook or -feed poll"})
		return
	}
	switch r.Method {
	case http.MethodDelete:
		id, err := intParam(r, "id", -1)
		if err != nil || id < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "DELETE /subscribe needs ?id=N"})
			return
		}
		if !s.standing.Unsubscribe(id) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown subscription %d", id)})
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"unsubscribed": id})
	case http.MethodPost:
		text, err := queryText(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		id, err := s.standing.Subscribe(text)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, subscribeResponse{
			ID: id, Query: text, Footprint: s.standing.Footprint(id),
		})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST to subscribe, DELETE ?id= to cancel"})
	}
}

// handleWatch delivers a subscription's deltas with seq > after. The default
// shape is one long-poll: block until at least one delta exists, return them
// all as a JSON array (the client acks by passing the last seq back). With
// ?sse=1 (or Accept: text/event-stream) the connection stays open and every
// delta is pushed as a server-sent event whose id is its seq, so a client
// that reconnects with after=<Last-Event-ID> — or a browser EventSource,
// which resends the id as the Last-Event-ID header — resumes exactly where
// it broke.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.standing == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "push feed disabled; restart with -feed hook or -feed poll"})
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil || id < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "GET /watch needs ?id=N"})
		return
	}
	after, err := intParam(r, "after", 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad ?after="})
		return
	}
	// An explicit ?after= wins; otherwise an EventSource reconnect's
	// Last-Event-ID header carries the last seq the client saw.
	if r.URL.Query().Get("after") == "" {
		if n, err := strconv.Atoi(r.Header.Get("Last-Event-ID")); err == nil && n > after {
			after = n
		}
	}
	// A drain ends the stream as if the client disconnected.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.watchCtx, cancel)()

	// Every write below runs under a per-write deadline: a client that
	// stops reading blocks the write until the deadline, is counted as
	// dropped, and the stream goroutine exits — it cannot pin the server
	// (or, via the buffered deltas it never drains, its memory) forever.
	rc := http.NewResponseController(w)
	armWrite := func() {
		if s.watchWrite > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.watchWrite))
		}
	}
	sse := r.URL.Query().Get("sse") != "" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !sse {
		ds, err := s.standing.Next(ctx, id, after)
		if err != nil {
			code := http.StatusNotFound
			if ctx.Err() != nil {
				code = http.StatusServiceUnavailable // drained or disconnected
			}
			armWrite()
			writeJSON(w, code, errorResponse{Error: err.Error()})
			return
		}
		armWrite()
		writeJSON(w, http.StatusOK, ds)
		return
	}

	if _, ok := w.(http.Flusher); !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	// watchBuf accounts the bytes sitting between us and a (possibly slow)
	// client for the duration of each write, so /stats memLedger shows
	// where stalled-subscriber memory is.
	watchBuf := s.ledger.Account("watchBuffers")
	send := func(payload string) bool {
		watchBuf.Add(int64(len(payload)))
		defer watchBuf.Add(-int64(len(payload)))
		armWrite()
		if _, err := io.WriteString(w, payload); err != nil {
			s.watchDropped.Add(1)
			return false
		}
		if err := rc.Flush(); err != nil {
			s.watchDropped.Add(1)
			return false
		}
		return true
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	armWrite()
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		// The client cannot even take the headers within the write
		// deadline: drop it now, before a delta is buffered for it.
		s.watchDropped.Add(1)
		return
	}
	for {
		ds, err := s.standing.Next(ctx, id, after)
		if err != nil {
			if ctx.Err() == nil {
				// Unsubscribed underneath the stream: tell the client before
				// closing, so it knows not to reconnect.
				send(fmt.Sprintf("event: gone\ndata: %s\n\n", err.Error()))
			}
			return
		}
		for _, d := range ds {
			b, err := json.Marshal(d)
			if err != nil {
				return
			}
			if !send(fmt.Sprintf("id: %d\nevent: delta\ndata: %s\n\n", d.Seq, b)) {
				return
			}
			after = d.Seq
		}
	}
}

// mutationResponse reports the applied steps of one /mutate call.
type mutationResponse struct {
	Op   string   `json:"op"`
	URLs []string `json:"urls"`
}

// handleMutate applies n deterministic mutation steps to the served site —
// the driver that lets clients (and the smoke test) exercise the push
// pipeline end to end. Only the university site has a mutation workload.
func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.mutator == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no mutation workload: requires -site university and -feed hook or poll"})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST /mutate?n=K"})
		return
	}
	n, err := intParam(r, "n", 1)
	if err != nil || n < 1 || n > 10000 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "?n= must be 1..10000"})
		return
	}
	s.mutMu.Lock()
	muts := s.mutator.Steps(n)
	s.mutMu.Unlock()
	out := make([]mutationResponse, len(muts))
	for i, m := range muts {
		out[i] = mutationResponse{Op: m.Op.String(), URLs: m.URLs}
	}
	writeJSON(w, http.StatusOK, out)
}

// intParam reads an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// healthResponse is the /healthz payload. The server stays alive (200)
// while breakers are open — queries degrade to stale serves rather than
// fail — but reports itself "degraded" with the affected hosts so probes
// and dashboards see the condition.
type healthResponse struct {
	Status       string            `json:"status"`
	BreakersOpen int               `json:"breakersOpen,omitempty"`
	Breakers     map[string]string `json:"breakers,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	resp := healthResponse{Status: "ok"}
	if s.guard != nil {
		for _, h := range s.guard.Snapshot() {
			if h.State == guard.Closed.String() {
				continue
			}
			if resp.Breakers == nil {
				resp.Breakers = make(map[string]string)
			}
			resp.Breakers[h.Host] = h.State
			if h.State == guard.Open.String() {
				resp.BreakersOpen++
			}
		}
		if resp.BreakersOpen > 0 {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeStats is the /stats payload: the shared store's global counters, the
// server's admission ledger, and (with the guard on) per-host breaker and
// bulkhead health.
type storeStats struct {
	Fetches          int   `json:"fetches"`
	Hits             int   `json:"hits"`
	Revalidations    int   `json:"revalidations"`
	LightConnections int   `json:"lightConnections"`
	Retries          int   `json:"retries"`
	Evictions        int   `json:"evictions"`
	BytesFetched     int64 `json:"bytesFetched"`
	EntryCount       int   `json:"entryCount"`
	EntryBytes       int64 `json:"entryBytes"`
	Inflight         int64 `json:"inflight"`
	Served           int64 `json:"served"`
	Rejected         int64 `json:"rejected"`
	Stale            int   `json:"stale,omitempty"`
	Hedges           int   `json:"hedges,omitempty"`
	BreakerFastFails int   `json:"breakerFastFails,omitempty"`
	Invalidations    int   `json:"invalidations,omitempty"`
	PushStale        int   `json:"pushStale,omitempty"`
	Shed             int64 `json:"shed,omitempty"`
	// Overload-resilience ledger: the admission queue's live depth and
	// drop totals, expired per-query deadline budgets, recovered panics
	// (handler middleware + wrapper), dropped slow /watch clients, and the
	// shared memory ledger by subsystem.
	QueueDepth        int                `json:"queueDepth"`
	QueueDropped      int                `json:"queueDropped"`
	QueueAdmitted     int                `json:"queueAdmitted,omitempty"`
	QueueSojournDrops int                `json:"queueSojournDropped,omitempty"`
	QueueCostRejected int                `json:"queueCostRejected,omitempty"`
	QueuePeakDepth    int                `json:"queuePeakDepth,omitempty"`
	DeadlineExpired   int64              `json:"deadlineExpired"`
	PanicsRecovered   int64              `json:"panicsRecovered"`
	WrapPanics        int                `json:"wrapPanics,omitempty"`
	WatchDropped      int64              `json:"watchDropped,omitempty"`
	MemLedger         map[string]int64   `json:"memLedger,omitempty"`
	MemBytes          int64              `json:"memBytes,omitempty"`
	PlanHits          uint64             `json:"planHits"`
	PlanMisses        uint64             `json:"planMisses"`
	PlanInvalidations uint64             `json:"planInvalidations,omitempty"`
	PlanEntries       int                `json:"planEntries"`
	ViewHits          int                `json:"viewHits,omitempty"`
	ViewMisses        int                `json:"viewMisses,omitempty"`
	ViewBytes         int64              `json:"viewBytes,omitempty"`
	SelectorRuns      int                `json:"selectorRuns,omitempty"`
	Matview           *matviewStats      `json:"matview,omitempty"`
	Feed              *feedStats         `json:"feed,omitempty"`
	Standing          *standingStats     `json:"standing,omitempty"`
	Totals            *queryTotals       `json:"queryTotals,omitempty"`
	Hosts             []guard.HostHealth `json:"hosts,omitempty"`
}

// feedStats is the change monitor's ledger (-feed): how many mutation
// events were pushed, by kind, and what poll-mode sweeps cost the network.
type feedStats struct {
	Events       int `json:"events"`
	Updates      int `json:"updates,omitempty"`
	Additions    int `json:"additions,omitempty"`
	Removals     int `json:"removals,omitempty"`
	Touches      int `json:"touches,omitempty"`
	Heads        int `json:"heads,omitempty"`
	Sweeps       int `json:"sweeps,omitempty"`
	CleanSweeps  int `json:"cleanSweeps,omitempty"`
	Deferred     int `json:"deferred,omitempty"`
	BreakerSkips int `json:"breakerSkips,omitempty"`
	Errors       int `json:"errors,omitempty"`
	Watched      int `json:"watched,omitempty"`
}

// standingStats is the standing-query registry's ledger (-feed): live and
// lifetime subscriptions, and the delta traffic pushed to watchers.
type standingStats struct {
	Live          int   `json:"live"`
	Subscribes    int   `json:"subscribes"`
	Unsubscribes  int   `json:"unsubscribes,omitempty"`
	Rejections    int   `json:"rejections,omitempty"`
	Events        int   `json:"events"`
	Reanswers     int   `json:"reanswers"`
	AnswerErrors  int   `json:"answerErrors,omitempty"`
	Deltas        int   `json:"deltas"`
	AddedTuples   int   `json:"addedTuples"`
	RemovedTuples int   `json:"removedTuples"`
	RingDropped   int   `json:"ringDropped,omitempty"`
	RingBytes     int64 `json:"ringBytes,omitempty"`
}

// matviewStats surfaces the backing materialized store's maintenance
// counters (§8's lazy-maintenance ledger, including stale serves under open
// breakers) once view answering has materialized anything.
type matviewStats struct {
	LightConnections int `json:"lightConnections"`
	Downloads        int `json:"downloads"`
	UpdatesApplied   int `json:"updatesApplied"`
	DeletionsApplied int `json:"deletionsApplied"`
	StaleServes      int `json:"staleServes,omitempty"`
}

// queryTotals is the sum of every served query's per-query stats — the
// workload-level view of the same cost ledger queryStats reports per
// request. Accesses is the summed distinct-access cost C(E).
type queryTotals struct {
	Accesses         int     `json:"accesses"`
	Pages            int     `json:"pages"`
	CacheHits        int     `json:"cacheHits"`
	Revalidations    int     `json:"revalidations"`
	LightConnections int     `json:"lightConnections"`
	Bytes            int64   `json:"bytes"`
	WallMs           float64 `json:"wallMs"`
	Stale            int     `json:"stale,omitempty"`
	Hedges           int     `json:"hedges,omitempty"`
	BreakerFastFails int     `json:"breakerFastFails,omitempty"`
	PlanMs           float64 `json:"planMs"`
	PeakInFlight     int     `json:"peakInFlight"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	out := storeStats{
		Fetches:          cs.Fetches,
		Hits:             cs.Hits,
		Revalidations:    cs.Revalidations,
		LightConnections: cs.LightConnections,
		Retries:          cs.Retries,
		Evictions:        cs.Evictions,
		BytesFetched:     cs.BytesFetched,
		EntryCount:       s.cache.Len(),
		EntryBytes:       s.cache.Bytes(),
		Inflight:         s.inflight.Load(),
		Served:           s.served.Load(),
		Rejected:         s.rejected.Load(),
		Stale:            cs.Stale,
		Hedges:           cs.Hedges,
		BreakerFastFails: cs.BreakerFastFails,
		Invalidations:    cs.Invalidations,
		PushStale:        cs.PushStale,
		Shed:             s.shed.Load(),
		WrapPanics:       cs.WrapPanics,
		DeadlineExpired:  s.deadlineExpired.Load(),
		PanicsRecovered:  s.panics.Load(),
		WatchDropped:     s.watchDropped.Load(),
	}
	qc := s.queue.Counters()
	out.QueueDepth = s.queue.Depth()
	out.QueueDropped = qc.Dropped()
	out.QueueAdmitted = qc.Admitted
	out.QueueSojournDrops = qc.SojournDropped
	out.QueueCostRejected = qc.CostRejected
	out.QueuePeakDepth = qc.PeakDepth
	if usages := s.ledger.Snapshot(); len(usages) > 0 {
		out.MemLedger = make(map[string]int64, len(usages))
		for _, u := range usages {
			out.MemLedger[u.Name] = u.Bytes
			out.MemBytes += u.Bytes
		}
	}
	if s.feed != nil {
		fc := s.feed.Counters()
		out.Feed = &feedStats{
			Events:       fc.Events,
			Updates:      fc.Updates,
			Additions:    fc.Additions,
			Removals:     fc.Removals,
			Touches:      fc.Touches,
			Heads:        fc.Heads,
			Sweeps:       fc.Sweeps,
			CleanSweeps:  fc.CleanSweeps,
			Deferred:     fc.Deferred,
			BreakerSkips: fc.BreakerSkips,
			Errors:       fc.Errors,
			Watched:      s.feed.Watched(),
		}
	}
	if s.standing != nil {
		sc := s.standing.Counters()
		out.Standing = &standingStats{
			Live:          s.standing.Len(),
			Subscribes:    sc.Subscribes,
			Unsubscribes:  sc.Unsubscribes,
			Rejections:    sc.Rejections,
			Events:        sc.Events,
			Reanswers:     sc.Reanswers,
			AnswerErrors:  sc.AnswerErrors,
			Deltas:        sc.Deltas,
			AddedTuples:   sc.AddedTuples,
			RemovedTuples: sc.RemovedTuples,
			RingDropped:   sc.RingDropped,
			RingBytes:     s.standing.RingBytes(),
		}
	}
	s.mu.Lock()
	tot := s.totals
	s.mu.Unlock()
	if served := s.served.Load(); served > 0 {
		out.Totals = &queryTotals{
			Accesses:         tot.Pages + tot.CacheHits + tot.Revalidations + tot.Stale,
			Pages:            tot.Pages,
			CacheHits:        tot.CacheHits,
			Revalidations:    tot.Revalidations,
			LightConnections: tot.LightConnections,
			Bytes:            tot.Bytes,
			WallMs:           float64(tot.Wall) / float64(time.Millisecond),
			Stale:            tot.Stale,
			Hedges:           tot.Hedges,
			BreakerFastFails: tot.BreakerFastFails,
			PlanMs:           float64(tot.PlanWall) / float64(time.Millisecond),
			PeakInFlight:     tot.PeakInFlight,
		}
	}
	if pc := s.sys.PlanCache(); pc != nil {
		pcs := pc.Counters()
		out.PlanHits = pcs.Hits
		out.PlanMisses = pcs.Misses
		out.PlanInvalidations = pcs.Invalidations
		out.PlanEntries = pcs.Entries
	}
	if vm := s.sys.ViewManager(); vm != nil {
		vc := vm.Counters()
		out.ViewHits = vc.Hits
		out.ViewMisses = vc.Misses
		out.ViewBytes = vm.Bytes()
		if vm.Store() != nil {
			mc := vm.StoreCounters()
			out.Matview = &matviewStats{
				LightConnections: mc.LightConnections,
				Downloads:        mc.Downloads,
				UpdatesApplied:   mc.UpdatesApplied,
				DeletionsApplied: mc.DeletionsApplied,
				StaleServes:      mc.StaleServes,
			}
		}
	}
	if s.selector != nil {
		out.SelectorRuns = s.selector.Runs()
	}
	if s.guard != nil {
		out.Hosts = s.guard.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// queryText extracts the query from ?q= or the request body.
func queryText(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if len(body) == 0 {
		return "", errors.New("no query: pass ?q=… or a request body")
	}
	return string(body), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
