package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ulixes"
	"ulixes/internal/pagecache"
)

// server is the HTTP face of one shared query system: a semaphore admits at
// most maxQueries concurrent queries (excess is rejected with 429, never
// queued), and a draining flag refuses new work during graceful shutdown.
type server struct {
	sys   *ulixes.System
	cache *pagecache.Cache

	sem      chan struct{}
	draining atomic.Bool
	inflight atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
}

func newServer(sys *ulixes.System, cache *pagecache.Cache, maxQueries int) *server {
	if maxQueries < 1 {
		maxQueries = 1
	}
	return &server{sys: sys, cache: cache, sem: make(chan struct{}, maxQueries)}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// drain stops admitting queries; in-flight ones finish normally.
func (s *server) drain() { s.draining.Store(true) }

// queryStats is the per-query accounting exposed to clients. Pages +
// CacheHits + Revalidations is the paper's distinct-access cost C(E),
// invariant across cold and warm stores; Pages alone is what this query
// actually cost the network.
type queryStats struct {
	Accesses         int     `json:"accesses"`
	Pages            int     `json:"pages"`
	CacheHits        int     `json:"cacheHits"`
	Revalidations    int     `json:"revalidations"`
	LightConnections int     `json:"lightConnections"`
	Bytes            int64   `json:"bytes"`
	WallMs           float64 `json:"wallMs"`
}

type queryFailure struct {
	URL     string `json:"url"`
	Error   string `json:"error"`
	Retries int    `json:"retries"`
}

type queryResponse struct {
	Plan          string         `json:"plan"`
	EstimatedCost float64        `json:"estimatedCost"`
	Columns       []string       `json:"columns"`
	Rows          [][]string     `json:"rows"`
	Stats         queryStats     `json:"stats"`
	Degraded      bool           `json:"degraded,omitempty"`
	Failures      []queryFailure `json:"failures,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "too many in-flight queries"})
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	text, err := queryText(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	q, err := ulixes.ParseQuery(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ans, err := s.sys.QueryCQ(q)
	switch {
	case err == nil:
	case errors.Is(err, pagecache.ErrBudgetExceeded):
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.served.Add(1)

	st := ans.Exec
	resp := queryResponse{
		Plan:          ans.Plan.Expr.String(),
		EstimatedCost: ans.Plan.Cost,
		Columns:       ans.Result.Names(),
		Stats: queryStats{
			Accesses:         st.Pages + st.CacheHits + st.Revalidations,
			Pages:            st.Pages,
			CacheHits:        st.CacheHits,
			Revalidations:    st.Revalidations,
			LightConnections: st.LightConnections,
			Bytes:            st.Bytes,
			WallMs:           float64(st.Wall) / float64(time.Millisecond),
		},
		Degraded: st.Degraded,
	}
	for _, t := range ans.Result.Sorted() {
		row := make([]string, t.Arity())
		for i := range row {
			row[i] = t.At(i).String()
		}
		resp.Rows = append(resp.Rows, row)
	}
	for _, f := range st.Failures {
		resp.Failures = append(resp.Failures, queryFailure{
			URL: f.URL, Error: f.Err.Error(), Retries: f.Retries,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// storeStats is the /stats payload: the shared store's global counters plus
// the server's admission ledger.
type storeStats struct {
	Fetches          int   `json:"fetches"`
	Hits             int   `json:"hits"`
	Revalidations    int   `json:"revalidations"`
	LightConnections int   `json:"lightConnections"`
	Retries          int   `json:"retries"`
	Evictions        int   `json:"evictions"`
	BytesFetched     int64 `json:"bytesFetched"`
	EntryCount       int   `json:"entryCount"`
	EntryBytes       int64 `json:"entryBytes"`
	Inflight         int64 `json:"inflight"`
	Served           int64 `json:"served"`
	Rejected         int64 `json:"rejected"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	writeJSON(w, http.StatusOK, storeStats{
		Fetches:          cs.Fetches,
		Hits:             cs.Hits,
		Revalidations:    cs.Revalidations,
		LightConnections: cs.LightConnections,
		Retries:          cs.Retries,
		Evictions:        cs.Evictions,
		BytesFetched:     cs.BytesFetched,
		EntryCount:       s.cache.Len(),
		EntryBytes:       s.cache.Bytes(),
		Inflight:         s.inflight.Load(),
		Served:           s.served.Load(),
		Rejected:         s.rejected.Load(),
	})
}

// queryText extracts the query from ?q= or the request body.
func queryText(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if len(body) == 0 {
		return "", errors.New("no query: pass ?q=… or a request body")
	}
	return string(body), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
