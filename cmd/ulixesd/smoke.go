package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"ulixes/internal/standing"
)

// smokeQuery touches several page-schemes through an index page, so the
// workload exercises follow-chains, not just an entry page.
const smokeQuery = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"

// runSmoke serves on an ephemeral port and runs a deterministic concurrent
// workload against the HTTP API: one cold query to learn the plan's
// distinct-access count D, then three concurrent warm queries. Every
// response must be 200 with exactly D accesses; the warm ones must cost the
// network zero page downloads (the shared store resolves every access as a
// hit or a revalidation); and the store's global fetch count must equal D.
func runSmoke(srv *server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	go hs.Serve(ln) //nolint:errcheck — torn down with the process
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var health struct{ Status string }
	if err := getJSON(base+"/healthz", http.StatusOK, &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Cold query: every access is a physical GET, so Pages == D.
	cold, err := runQuery(base, smokeQuery)
	if err != nil {
		return fmt.Errorf("cold query: %w", err)
	}
	d := cold.Stats.Accesses
	if d == 0 {
		return fmt.Errorf("cold query touched no pages; bad workload")
	}
	if cold.Stats.Pages != d || cold.Stats.CacheHits != 0 {
		return fmt.Errorf("cold query: %d GETs and %d hits over %d accesses, want all GETs",
			cold.Stats.Pages, cold.Stats.CacheHits, d)
	}
	if len(cold.Rows) == 0 {
		return fmt.Errorf("cold query returned no rows")
	}
	if cold.Stats.PlanCached {
		return fmt.Errorf("cold query reported a plan-cache hit")
	}

	// Three concurrent warm queries: same answer, same D, zero GETs.
	var wg sync.WaitGroup
	warm := make([]*queryResponse, 3)
	errs := make([]error, 3)
	for i := range warm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warm[i], errs[i] = runQuery(base, smokeQuery)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("warm query %d: %w", i, err)
		}
	}
	for i, r := range warm {
		if got := r.Stats.Accesses; got != d {
			return fmt.Errorf("warm query %d: %d accesses, want %d (invariant cost)", i, got, d)
		}
		if r.Stats.Pages != 0 {
			return fmt.Errorf("warm query %d: %d page downloads, want 0 (shared store)", i, r.Stats.Pages)
		}
		if got := r.Stats.CacheHits + r.Stats.Revalidations; got != d {
			return fmt.Errorf("warm query %d: %d hits+revalidations, want %d", i, got, d)
		}
		if len(r.Rows) != len(cold.Rows) {
			return fmt.Errorf("warm query %d: %d rows, cold run had %d", i, len(r.Rows), len(cold.Rows))
		}
		if !r.Stats.PlanCached {
			return fmt.Errorf("warm query %d: plan not served from the plan cache", i)
		}
		if r.Plan != cold.Plan {
			return fmt.Errorf("warm query %d: cached plan %q differs from cold plan %q", i, r.Plan, cold.Plan)
		}
	}

	var st storeStats
	if err := getJSON(base+"/stats", http.StatusOK, &st); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Fetches != d {
		return fmt.Errorf("store fetched %d pages for 4 queries, want exactly %d", st.Fetches, d)
	}
	if st.Served != 4 {
		return fmt.Errorf("served %d queries, want 4", st.Served)
	}
	if st.PlanHits != 3 || st.PlanMisses != 1 {
		return fmt.Errorf("plan cache: %d hits / %d misses, want 3 / 1", st.PlanHits, st.PlanMisses)
	}
	fmt.Printf("ulixesd: smoke: 4 queries, %d distinct accesses each, %d total GETs, %d hits, %d revalidations, %d plan-cache hits\n",
		d, st.Fetches, st.Hits, st.Revalidations, st.PlanHits)

	// With -feed on, also exercise the push pipeline end to end: subscribe a
	// standing query, stream its deltas over SSE, drive the site's mutation
	// workload, and check that exactly the right deltas arrive.
	if srv.standing != nil && srv.mutator != nil {
		if err := smokeFeed(base); err != nil {
			return fmt.Errorf("feed: %w", err)
		}
	}
	return nil
}

// smokeFeed subscribes a standing query over the professor pages, opens its
// SSE stream, applies deterministic mutations until one edits a rank, and
// requires the stream to deliver the initial snapshot and then exactly the
// one-added/one-removed delta that rank edit causes. It ends by checking the
// /stats ledgers and that unsubscribing closes the stream.
func smokeFeed(base string) error {
	sub, err := postSubscribe(base, "SELECT p.PName, p.Rank FROM Professor p")
	if err != nil {
		return err
	}
	if len(sub.Footprint) == 0 {
		return fmt.Errorf("subscription %d has an empty footprint", sub.ID)
	}

	// Open the SSE stream before mutating, so nothing can slip past it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/watch?id=%d&after=0&sse=1", base, sub.ID), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("watch: content-type %q, want text/event-stream", ct)
	}
	deltas := make(chan standing.Delta, 16)
	go func() {
		defer close(deltas)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var d standing.Delta
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d) == nil {
				deltas <- d
			}
		}
	}()
	next := func() (standing.Delta, error) {
		select {
		case d, ok := <-deltas:
			if !ok {
				return standing.Delta{}, fmt.Errorf("SSE stream closed early")
			}
			return d, nil
		case <-ctx.Done():
			return standing.Delta{}, fmt.Errorf("no delta within the deadline")
		}
	}

	// Seq 1 is the initial snapshot: every professor, nothing removed.
	d, err := next()
	if err != nil {
		return fmt.Errorf("initial snapshot: %w", err)
	}
	if d.Seq != 1 || len(d.Added) == 0 || len(d.Removed) != 0 {
		return fmt.Errorf("initial snapshot = seq %d, %d added, %d removed", d.Seq, len(d.Added), len(d.Removed))
	}
	profCount := len(d.Added)

	// The workload is deterministic, so walk it until a rank edit lands on
	// the subscription's footprint. Touches and course edits along the way
	// must not produce deltas — the answer is unchanged.
	edited := false
	for i := 0; i < 50 && !edited; i++ {
		muts, err := postMutate(base, 1)
		if err != nil {
			return err
		}
		for _, m := range muts {
			if m.Op == "edit-rank" {
				edited = true
			}
		}
	}
	if !edited {
		return fmt.Errorf("no edit-rank in 50 deterministic steps; workload mix changed?")
	}
	d, err = next()
	if err != nil {
		return fmt.Errorf("rank-edit delta: %w", err)
	}
	if d.Seq < 2 || len(d.Added) != 1 || len(d.Removed) != 1 {
		return fmt.Errorf("rank-edit delta = seq %d, %d added, %d removed; want exactly 1/1", d.Seq, len(d.Added), len(d.Removed))
	}

	var st storeStats
	if err := getJSON(base+"/stats", http.StatusOK, &st); err != nil {
		return err
	}
	if st.Feed == nil || st.Feed.Events == 0 {
		return fmt.Errorf("stats: no feed events after the mutation workload")
	}
	if st.Standing == nil || st.Standing.Live != 1 || st.Standing.Deltas < 2 {
		return fmt.Errorf("stats: standing ledger %+v, want 1 live sub and ≥2 deltas", st.Standing)
	}
	if st.Invalidations == 0 && st.PushStale == 0 {
		return fmt.Errorf("stats: mutations invalidated nothing in the page store")
	}

	// Unsubscribing must end the stream promptly.
	if err := deleteSubscribe(base, sub.ID); err != nil {
		return err
	}
	for {
		if _, ok := <-deltas; !ok {
			break
		}
	}
	fmt.Printf("ulixesd: smoke: feed: %d-prof snapshot then 1+/1- delta over SSE, %d feed events, %d invalidations\n",
		profCount, st.Feed.Events, st.Invalidations)
	return nil
}

// postSubscribe registers a standing query through the HTTP API.
func postSubscribe(base, q string) (*subscribeResponse, error) {
	resp, err := http.Post(base+"/subscribe", "text/plain", strings.NewReader(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("subscribe: status %d: %s", resp.StatusCode, body)
	}
	var out subscribeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// deleteSubscribe cancels a standing query through the HTTP API.
func deleteSubscribe(base string, id int) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscribe?id=%d", base, id), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("unsubscribe: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// postMutate applies n mutation-workload steps through the HTTP API.
func postMutate(base string, n int) ([]mutationResponse, error) {
	resp, err := http.Post(fmt.Sprintf("%s/mutate?n=%d", base, n), "", nil) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mutate: status %d: %s", resp.StatusCode, body)
	}
	var out []mutationResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// runQuery posts a query to the server's own API. This client talks to the
// query endpoint, not to a web site, so it is outside the fetch gate.
func runQuery(base, q string) (*queryResponse, error) {
	resp, err := http.Get(base + "/query?q=" + url.QueryEscape(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// getJSON fetches a JSON endpoint, enforcing the expected status.
func getJSON(u string, want int, v any) error {
	resp, err := http.Get(u) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}
