package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
)

// smokeQuery touches several page-schemes through an index page, so the
// workload exercises follow-chains, not just an entry page.
const smokeQuery = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"

// runSmoke serves on an ephemeral port and runs a deterministic concurrent
// workload against the HTTP API: one cold query to learn the plan's
// distinct-access count D, then three concurrent warm queries. Every
// response must be 200 with exactly D accesses; the warm ones must cost the
// network zero page downloads (the shared store resolves every access as a
// hit or a revalidation); and the store's global fetch count must equal D.
func runSmoke(srv *server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	go hs.Serve(ln) //nolint:errcheck — torn down with the process
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var health struct{ Status string }
	if err := getJSON(base+"/healthz", http.StatusOK, &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Cold query: every access is a physical GET, so Pages == D.
	cold, err := runQuery(base, smokeQuery)
	if err != nil {
		return fmt.Errorf("cold query: %w", err)
	}
	d := cold.Stats.Accesses
	if d == 0 {
		return fmt.Errorf("cold query touched no pages; bad workload")
	}
	if cold.Stats.Pages != d || cold.Stats.CacheHits != 0 {
		return fmt.Errorf("cold query: %d GETs and %d hits over %d accesses, want all GETs",
			cold.Stats.Pages, cold.Stats.CacheHits, d)
	}
	if len(cold.Rows) == 0 {
		return fmt.Errorf("cold query returned no rows")
	}
	if cold.Stats.PlanCached {
		return fmt.Errorf("cold query reported a plan-cache hit")
	}

	// Three concurrent warm queries: same answer, same D, zero GETs.
	var wg sync.WaitGroup
	warm := make([]*queryResponse, 3)
	errs := make([]error, 3)
	for i := range warm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warm[i], errs[i] = runQuery(base, smokeQuery)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("warm query %d: %w", i, err)
		}
	}
	for i, r := range warm {
		if got := r.Stats.Accesses; got != d {
			return fmt.Errorf("warm query %d: %d accesses, want %d (invariant cost)", i, got, d)
		}
		if r.Stats.Pages != 0 {
			return fmt.Errorf("warm query %d: %d page downloads, want 0 (shared store)", i, r.Stats.Pages)
		}
		if got := r.Stats.CacheHits + r.Stats.Revalidations; got != d {
			return fmt.Errorf("warm query %d: %d hits+revalidations, want %d", i, got, d)
		}
		if len(r.Rows) != len(cold.Rows) {
			return fmt.Errorf("warm query %d: %d rows, cold run had %d", i, len(r.Rows), len(cold.Rows))
		}
		if !r.Stats.PlanCached {
			return fmt.Errorf("warm query %d: plan not served from the plan cache", i)
		}
		if r.Plan != cold.Plan {
			return fmt.Errorf("warm query %d: cached plan %q differs from cold plan %q", i, r.Plan, cold.Plan)
		}
	}

	var st storeStats
	if err := getJSON(base+"/stats", http.StatusOK, &st); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Fetches != d {
		return fmt.Errorf("store fetched %d pages for 4 queries, want exactly %d", st.Fetches, d)
	}
	if st.Served != 4 {
		return fmt.Errorf("served %d queries, want 4", st.Served)
	}
	if st.PlanHits != 3 || st.PlanMisses != 1 {
		return fmt.Errorf("plan cache: %d hits / %d misses, want 3 / 1", st.PlanHits, st.PlanMisses)
	}
	fmt.Printf("ulixesd: smoke: 4 queries, %d distinct accesses each, %d total GETs, %d hits, %d revalidations, %d plan-cache hits\n",
		d, st.Fetches, st.Hits, st.Revalidations, st.PlanHits)
	return nil
}

// runQuery posts a query to the server's own API. This client talks to the
// query endpoint, not to a web site, so it is outside the fetch gate.
func runQuery(base, q string) (*queryResponse, error) {
	resp, err := http.Get(base + "/query?q=" + url.QueryEscape(q)) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// getJSON fetches a JSON endpoint, enforcing the expected status.
func getJSON(u string, want int, v any) error {
	resp, err := http.Get(u) //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}
