package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ulixes"
)

// comparable strips the timing fields (the only non-deterministic parts of
// a response) so two runs of the same workload can be compared byte for
// byte — answer rows, chosen plan, estimated cost and every access counter
// included.
func comparable(t *testing.T, r queryResponse) string {
	t.Helper()
	r.Stats.WallMs = 0
	r.Stats.PlanMs = 0
	r.Stats.PlanCached = false
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlanCacheWorkload replays a repeated-shape workload against two
// servers over identical sites — one with the prepared-plan cache, one
// without. Every response must be byte-identical (modulo timing), ≥90% of
// the cached server's queries must be plan-cache hits, and the hit/miss
// counters must surface on /stats.
func TestPlanCacheWorkload(t *testing.T) {
	cachedSrv := newTestServer(t, 4, 0, nil)
	cachedSrv.sys.EnablePlanCache(ulixes.PlanCacheConfig{})
	plainSrv := newTestServer(t, 4, 0, nil)

	cachedTS := httptest.NewServer(cachedSrv.handler())
	defer cachedTS.Close()
	plainTS := httptest.NewServer(plainSrv.handler())
	defer plainTS.Close()

	ranks := []string{"Full", "Associate", "Assistant"}
	var queries []string
	for i := 0; i < 15; i++ {
		rank := ranks[i%len(ranks)]
		queries = append(queries,
			fmt.Sprintf("SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = '%s'", rank),
			fmt.Sprintf("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = '%s'", rank),
		)
	}
	for i, q := range queries {
		resp, a := doQuery(t, cachedTS, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d (cached): status %d", i, resp.StatusCode)
		}
		resp, b := doQuery(t, plainTS, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d (plain): status %d", i, resp.StatusCode)
		}
		if got, want := comparable(t, a), comparable(t, b); got != want {
			t.Fatalf("query %d: responses differ\ncached: %s\nplain:  %s", i, got, want)
		}
		if wantCached := i >= 2; a.Stats.PlanCached != wantCached {
			t.Errorf("query %d: planCached = %v, want %v", i, a.Stats.PlanCached, wantCached)
		}
		if b.Stats.PlanCached {
			t.Errorf("query %d: cache-off server reported planCached", i)
		}
	}

	resp, err := cachedTS.Client().Get(cachedTS.URL + "/stats") //lint:allow fetchgate client of our own query API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st storeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	total := st.PlanHits + st.PlanMisses
	if total != uint64(len(queries)) {
		t.Fatalf("plan lookups = %d, want %d", total, len(queries))
	}
	if st.PlanMisses != 2 {
		t.Errorf("plan misses = %d, want 2 (one per shape)", st.PlanMisses)
	}
	if rate := float64(st.PlanHits) / float64(total); rate < 0.9 {
		t.Errorf("plan-cache hit rate %.2f < 0.90", rate)
	}
	if st.PlanEntries != 2 {
		t.Errorf("plan entries = %d, want 2", st.PlanEntries)
	}
}
