package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"ulixes"
	"ulixes/internal/pagecache"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
	"ulixes/internal/vselect"
)

// newViewsServer builds a test server with -views-auto semantics: workload
// recording, view answering, and a selector re-deciding every N queries.
func newViewsServer(t *testing.T, every int) *server {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 12, Profs: 6, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	cache := pagecache.New(ms, u.Scheme, pagecache.Config{
		DefaultTTL: 0, // revalidate on every re-access, so live queries keep costing
		Clock:      site.LogicalClock(),
	})
	sys, err := ulixes.Open(ms, u.Scheme, views)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetExec(ulixes.ExecOptions{Cache: cache})
	sys.EnableWorkload(0)
	sys.EnableViewAnswering(ulixes.ViewManagerConfig{})
	srv := newServer(sys, cache, 4)
	srv.selector = vselect.New(vselect.Config{Views: views})
	srv.viewsEvery = every
	return srv
}

// TestViewAnsweringEndToEnd drives the full -views-auto loop over HTTP: the
// early queries run live, the selector kicks in at the configured multiple,
// and later identical queries are answered from the materialized view with
// byte-identical rows, zero page accesses, and the new /stats counters.
func TestViewAnsweringEndToEnd(t *testing.T) {
	srv := newViewsServer(t, 3)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const q = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	var first, last queryResponse
	for i := 0; i < 6; i++ {
		resp, out := doQuery(t, ts, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			first = out
		}
		last = out
		if i == 2 {
			// The 3rd query triggers selection, which now runs in the
			// background (the triggering request's maybeReselect registers
			// it before responding); wait for it so later queries
			// deterministically see the materialized view.
			srv.selectWG.Wait()
		}
	}
	if first.Stats.FromView {
		t.Error("first query claims fromView before anything was materialized")
	}
	if !last.Stats.FromView {
		t.Fatal("last query still live; selector never materialized the view")
	}
	if last.Stats.Pages != 0 || last.Stats.Accesses != 0 {
		t.Errorf("view answer cost pages=%d accesses=%d, want 0/0", last.Stats.Pages, last.Stats.Accesses)
	}
	if last.Plan != "(answered from materialized views)" || last.EstimatedCost != 0 {
		t.Errorf("view answer plan %q cost %v", last.Plan, last.EstimatedCost)
	}
	if !reflect.DeepEqual(first.Columns, last.Columns) || !reflect.DeepEqual(first.Rows, last.Rows) {
		t.Errorf("view answer differs from live answer:\nlive %v %v\nview %v %v",
			first.Columns, first.Rows, last.Columns, last.Rows)
	}

	res, err := ts.Client().Get(ts.URL + "/stats") //lint:allow fetchgate client of our own stats API, not a page fetch
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st storeStats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ViewHits == 0 || st.ViewMisses == 0 {
		t.Errorf("viewHits=%d viewMisses=%d, want both > 0", st.ViewHits, st.ViewMisses)
	}
	if st.ViewBytes <= 0 {
		t.Errorf("viewBytes = %d, want > 0", st.ViewBytes)
	}
	if st.SelectorRuns == 0 {
		t.Error("selectorRuns = 0, want at least one decision")
	}
	if st.Matview == nil || st.Matview.Downloads == 0 {
		t.Errorf("matview counters %+v, want the materialization crawl visible", st.Matview)
	}
}
