// Command ulixes-vet runs the project's custom static analyzers over Go
// packages, in the style of go vet. With no arguments it checks ./...; any
// finding is printed as file:line:col and makes the command exit 1.
//
//	go run ./cmd/ulixes-vet ./...
//	go run ./cmd/ulixes-vet -list
//	go run ./cmd/ulixes-vet -json ./... > findings.json
//	go run ./cmd/ulixes-vet -only fetchgate,nowallclock ./internal/...
//
// Exit codes form the contract CI and scripts rely on:
//
//	0 — the analyzed packages are clean (no non-allowed findings)
//	1 — at least one finding was reported
//	2 — the tool could not run: bad flags, unknown analyzer, packages
//	    that fail to load or type-check
//
// With -json, findings are emitted to stdout as a single JSON array of
// {analyzer, file, line, col, message} objects (an empty array when clean);
// diagnostics about the run itself still go to stderr. The exit codes are
// unchanged, so `ulixes-vet -json || true` pipelines can parse findings
// without losing the pass/fail signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ulixes/internal/lint"
)

// jsonFinding is the -json wire form of one finding. It flattens
// token.Position so consumers need no knowledge of go/token.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ulixes-vet [-list] [-json] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n                 "))
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ulixes-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ulixes-vet: %v\n", err)
		os.Exit(2)
	}
	broken := false
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "ulixes-vet: %s: %v\n", p.PkgPath, e)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ulixes-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
