// Command ulixes-vet runs the project's custom static analyzers over Go
// packages, in the style of go vet. With no arguments it checks ./...; any
// finding is printed as file:line:col and makes the command exit 1.
//
//	go run ./cmd/ulixes-vet ./...
//	go run ./cmd/ulixes-vet -list
//	go run ./cmd/ulixes-vet -only fetchgate,nowallclock ./internal/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ulixes/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ulixes-vet [-list] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n             "))
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ulixes-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ulixes-vet: %v\n", err)
		os.Exit(2)
	}
	broken := false
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "ulixes-vet: %s: %v\n", p.PkgPath, e)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
