// Command sitegen generates a synthetic web site conforming to one of the
// ADM schemes studied in the paper and either serves it over real HTTP or
// dumps its HTML pages to a directory.
//
// Usage:
//
//	sitegen -site university -serve :8098     # serve over HTTP
//	sitegen -site bibliography -dump ./out    # write HTML files
//	sitegen -site university -scheme          # print the web scheme
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

func main() {
	siteName := flag.String("site", "university", "site to generate: university or bibliography")
	courses := flag.Int("courses", 50, "university: number of courses")
	profs := flag.Int("profs", 20, "university: number of professors")
	depts := flag.Int("depts", 3, "university: number of departments")
	authors := flag.Int("authors", 500, "bibliography: number of authors")
	serve := flag.String("serve", "", "address to serve the site on (e.g. :8098)")
	dump := flag.String("dump", "", "directory to write the HTML pages to")
	scheme := flag.Bool("scheme", false, "print the ADM web scheme and exit")
	flag.Parse()

	ws, ms, err := build(*siteName, *courses, *profs, *depts, *authors)
	if err != nil {
		fail(err)
	}
	if *scheme {
		fmt.Print(ws.Format())
		return
	}
	if *dump != "" {
		if err := dumpSite(ms, *dump); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d pages to %s\n", ms.Len(), *dump)
		return
	}
	if *serve != "" {
		fmt.Printf("serving %d pages on %s (GET /?u=<page-url>)\n", ms.Len(), *serve)
		fail(http.ListenAndServe(*serve, site.Handler(ms)))
	}
	fmt.Printf("generated %d pages; pass -serve, -dump or -scheme to do something with them\n", ms.Len())
}

func build(name string, courses, profs, depts, authors int) (*adm.Scheme, *site.MemSite, error) {
	switch name {
	case "university":
		u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{
			Courses: courses, Profs: profs, Depts: depts,
		})
		if err != nil {
			return nil, nil, err
		}
		ms, err := site.NewMemSite(u.Instance, nil)
		return u.Scheme, ms, err
	case "bibliography":
		b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{Authors: authors})
		if err != nil {
			return nil, nil, err
		}
		ms, err := site.NewMemSite(b.Instance, nil)
		return b.Scheme, ms, err
	default:
		return nil, nil, fmt.Errorf("unknown site %q", name)
	}
}

// dumpSite writes each page's HTML under dir, mapping URLs to file paths.
func dumpSite(ms *site.MemSite, dir string) error {
	for _, u := range ms.URLs() {
		p, err := ms.Get(u) //lint:allow fetchgate exporting the site to disk, not querying it
		if err != nil {
			return err
		}
		rel := strings.TrimPrefix(u, "http://")
		rel = strings.ReplaceAll(rel, "/", string(filepath.Separator))
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(p.HTML), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sitegen:", err)
	os.Exit(1)
}
