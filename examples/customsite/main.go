// Customsite: define your own web site and relational view entirely in the
// textual languages — the ADM scheme language, page data, and the view
// definition language — then serve it over real HTTP and query it.
//
//	go run ./examples/customsite
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"ulixes"
	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/view"
)

// The site scheme, in the language `sitegen -scheme` prints and
// adm.ParseScheme reads: a small bookstore.
const schemeText = `
page ShopPage {
  Name: text
  Genres: list of {
    Genre: text
    ToGenre: link GenrePage
  }
}

page GenrePage {
  Genre: text
  Books: list of {
    Title: text
    ToBook: link BookPage
  }
}

page BookPage {
  Title: text
  Author: text
  Genre: text
  Price: text
}

entry ShopPage "http://books.example/index.html"

# The genre name is repeated on every book page: a link constraint the
# optimizer can push selections through.
link-constraint via GenrePage.Books.ToBook: Genre = Genre
link-constraint via GenrePage.Books.ToBook: Books.Title = Title
link-constraint via ShopPage.Genres.ToGenre: Genres.Genre = Genre
`

// The relational view, in the view-definition language.
const viewText = `
relation Book(Title, Author, Genre, Price) {
  nav ShopPage / Genres -> ToGenre / Books -> ToBook
    map Title = BookPage.Title, Author = BookPage.Author, Genre = BookPage.Genre, Price = BookPage.Price
}
`

func main() {
	ws, err := adm.ParseScheme(schemeText)
	if err != nil {
		log.Fatal(err)
	}

	// Populate the instance programmatically (a real deployment would crawl
	// an existing site instead).
	inst := adm.NewInstance(ws)
	genres := map[string][]struct{ title, author, price string }{
		"databases": {
			{"A Relational Model", "E. Codd", "30"},
			{"Efficient Queries over Web Views", "Mecca, Mendelzon & Merialdo", "12"},
			{"Transaction Processing", "J. Gray", "55"},
		},
		"networking": {
			{"TCP Illustrated", "W. R. Stevens", "45"},
			{"Weaving the Web", "T. Berners-Lee", "20"},
		},
	}
	var genreEntries nested.ListValue
	bookID := 0
	for genre, books := range genres {
		genreURL := "http://books.example/genre/" + genre
		genreEntries = append(genreEntries,
			nested.T("Genre", nested.TextValue(genre), "ToGenre", nested.LinkValue(genreURL)))
		var bookEntries nested.ListValue
		for _, b := range books {
			bookURL := fmt.Sprintf("http://books.example/book/%d", bookID)
			bookID++
			bookEntries = append(bookEntries,
				nested.T("Title", nested.TextValue(b.title), "ToBook", nested.LinkValue(bookURL)))
			if err := inst.AddPage("BookPage", nested.T(
				adm.URLAttr, nested.LinkValue(bookURL),
				"Title", nested.TextValue(b.title),
				"Author", nested.TextValue(b.author),
				"Genre", nested.TextValue(genre),
				"Price", nested.TextValue(b.price),
			)); err != nil {
				log.Fatal(err)
			}
		}
		if err := inst.AddPage("GenrePage", nested.T(
			adm.URLAttr, nested.LinkValue(genreURL),
			"Genre", nested.TextValue(genre),
			"Books", bookEntries,
		)); err != nil {
			log.Fatal(err)
		}
	}
	if err := inst.AddPage("ShopPage", nested.T(
		adm.URLAttr, nested.LinkValue("http://books.example/index.html"),
		"Name", nested.TextValue("The Paper Bookstore"),
		"Genres", genreEntries,
	)); err != nil {
		log.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	// Serve the rendered HTML over a real HTTP socket and query through it.
	ms, err := site.NewMemSite(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := httptest.NewServer(site.Handler(ms))
	defer httpSrv.Close()
	fmt.Printf("serving %d pages at %s\n\n", ms.Len(), httpSrv.URL)

	views, err := view.ParseViews(ws, viewText)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ulixes.Open(&site.HTTPServer{Base: httpSrv.URL}, ws, views)
	if err != nil {
		log.Fatal(err)
	}

	ans, err := sys.Query("SELECT b.Title, b.Author FROM Book b WHERE b.Genre = 'databases'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("database books:")
	for _, t := range ans.Result.Sorted() {
		fmt.Printf("  %-36s %s\n", t.MustGet("Title"), t.MustGet("Author"))
	}
	// The genre selection was pushed to the shop page's anchors via the
	// link constraints, so only the databases genre and its books were
	// downloaded.
	fmt.Printf("\npages fetched: %d (estimate %.1f) — the networking genre was never visited\n",
		ans.PagesFetched, ans.Plan.Cost)
}
