// Quickstart: generate the paper's university web site (Figure 1), open a
// query system over it, and run a conjunctive query on the relational view.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ulixes"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

func main() {
	// 1. Generate the hypothetical university site of the paper's Figure 1
	//    at the sizes Example 7.2 quotes (50 courses, 20 professors,
	//    3 departments) and serve it from memory as HTML pages.
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		log.Fatal(err)
	}
	server, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open the query system: the relational external view of §5
	//    (Dept, Professor, Course, CourseInstructor, ProfDept) over the
	//    site, with statistics gathered by a one-off crawl.
	sys, err := ulixes.Open(server, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask a question in the conjunctive-query language. The optimizer
	//    picks a navigation plan; the engine walks the site and wraps the
	//    pages it downloads.
	const query = `SELECT p.PName, p.Email
		FROM Professor p, ProfDept pd
		WHERE p.PName = pd.PName AND pd.DName = 'Computer Science'`
	ans, err := sys.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Professors of the Computer Science department:")
	for _, t := range ans.Result.Sorted() {
		fmt.Printf("  %-12s %s\n", t.MustGet("PName"), t.MustGet("Email"))
	}
	fmt.Printf("\nplan cost: estimated %.1f page accesses, measured %d\n",
		ans.Plan.Cost, ans.PagesFetched)

	// 4. Show what the optimizer did.
	explain, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + explain)
}
