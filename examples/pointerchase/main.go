// Pointerchase: §7 of the paper head to head. Example 7.1's query is won
// by the pointer-join strategy (intersect two pointer sets, then navigate);
// Example 7.2's is won by pointer-chasing (follow links from the selective
// side). This example executes the paper's exact plans for both queries and
// shows the optimizer picking the right strategy each time.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"ulixes/internal/exp"
	"ulixes/internal/sitegen"
)

func main() {
	params := sitegen.PaperUniversityParams()
	fmt.Printf("university site: %d courses, %d professors, %d departments\n\n",
		params.Courses, params.Profs, params.Depts)

	e2, err := exp.E2(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e2)

	e3, err := exp.E3(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e3)

	// The crossover in one picture: sweep the site size and watch the two
	// strategies' costs diverge for Example 7.2's query.
	sweep, err := exp.E3Sweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sweep)
}
