// Matview: §8 of the paper. Materialize the university site locally, run a
// query (only light connections — no downloads), edit pages on the site,
// run the query again (downloads only the changed pages, maintaining the
// view as a side effect), delete a page and watch CheckMissing defer its
// cleanup to the off-line pass.
//
//	go run ./examples/matview
package main

import (
	"fmt"
	"log"

	"ulixes"
	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

func main() {
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		log.Fatal(err)
	}
	server, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ulixes.Open(server, u.Scheme, view.UniversityView(u.Scheme))
	if err != nil {
		log.Fatal(err)
	}

	// Materialize: one full crawl, then queries run locally.
	mv, err := sys.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d pages\n\n", mv.Store().Len())

	const query = "SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Full'"
	run := func(label string) *ulixes.MatAnswer {
		ans, err := mv.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %2d rows, %2d light connections, %2d downloads, %d updates applied\n",
			label, ans.Result.Len(), ans.LightConnections, ans.Downloads, ans.UpdatesApplied)
		return ans
	}

	run("fresh view:")

	// The site manager promotes a professor without telling anyone (§1:
	// "the site manager inserts, deletes and modifies pages without
	// notifying remote users").
	var victim string
	for _, t := range u.Instance.Relation(sitegen.ProfPage).Tuples() {
		if t.MustGet("Rank").String() == "Associate" {
			v, _ := t.Get(adm.URLAttr)
			victim = v.String()
			if err := server.UpdatePage(sitegen.ProfPage,
				t.With("Rank", nested.TextValue("Full"))); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	fmt.Printf("\nsite update: %s promoted to Full\n", victim)
	run("after update:")
	run("fresh again:")

	// Delete a professor and its list entry: the next query flags the stale
	// link as missing; the off-line pass removes the page from the view.
	listTup, _ := u.Instance.Page(sitegen.ProfListPage, sitegen.UnivProfListURL)
	lv, _ := listTup.Get("ProfList")
	entries := lv.(nested.ListValue)
	goneURL := entries[len(entries)-1].MustGet("ToProf").String()
	server.RemovePage(goneURL)
	var kept nested.ListValue
	for _, e := range entries {
		if e.MustGet("ToProf").String() != goneURL {
			kept = append(kept, e)
		}
	}
	if err := server.UpdatePage(sitegen.ProfListPage, listTup.With("ProfList", kept)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsite deletion: %s removed\n", goneURL)
	run("after deletion:")
	fmt.Printf("CheckMissing queue: %v\n", mv.Store().MissingQueue())
	deleted, err := mv.Store().ProcessMissing()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("off-line pass removed %d stale page(s); view now holds %d pages\n", deleted, mv.Store().Len())
}
