// Bibliography: the paper's Introduction example. A DBLP-like site offers
// four navigation paths to the facts behind "find all authors who had
// papers in the last three VLDB conferences"; this example executes all
// four and shows the orders-of-magnitude cost gap that motivates a query
// optimizer for web views.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"

	"ulixes"
	"ulixes/internal/exp"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/view"
)

func main() {
	params := sitegen.BibliographyParams{Authors: 800, Confs: 20, DBConfs: 5, Years: 8, PapersPerEdition: 15}

	// The E1 experiment runs the four access paths of the Introduction and
	// tabulates pages and bytes fetched by each.
	table, err := exp.E1(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	// The same question through the declarative interface: the optimizer
	// sees all four default navigations of the PaperAuthor relation
	// (Rule 1) and never considers visiting every author page.
	b, err := sitegen.GenerateBibliography(params)
	if err != nil {
		log.Fatal(err)
	}
	server, err := site.NewMemSite(b.Instance, nil)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ulixes.Open(server, b.Scheme, view.BibliographyView(b.Scheme))
	if err != nil {
		log.Fatal(err)
	}
	query := fmt.Sprintf(`SELECT pa.AuthorName, pa.PTitle
		FROM PaperAuthor pa
		WHERE pa.ConfName = 'VLDB' AND pa.Year = '%d'`, b.LastYear)
	ans, err := sys.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VLDB %d authors (declarative query): %d rows, %d pages fetched (estimate %.1f)\n",
		b.LastYear, ans.Result.Len(), ans.PagesFetched, ans.Plan.Cost)

	// Who edited VLDB two years ago? Thanks to the link-constraint
	// redundancy, the answer comes from the conference page alone — the
	// edition page itself is never downloaded.
	edQuery := fmt.Sprintf(`SELECT e.Editors
		FROM Edition e
		WHERE e.ConfName = 'VLDB' AND e.Year = '%d'`, b.LastYear-2)
	edAns, err := sys.Query(edQuery)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range edAns.Result.Sorted() {
		fmt.Printf("editors of VLDB %d: %s (%d pages fetched)\n",
			b.LastYear-2, t.MustGet("Editors"), edAns.PagesFetched)
	}
}
