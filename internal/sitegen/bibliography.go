package sitegen

import (
	"fmt"
	"math/rand"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Bibliography page-scheme names. The site models the Database and Logic
// Programming Bibliography the paper's Introduction reasons about: a home
// page linking to a list of all conferences, a smaller list of database
// conferences, per-conference pages with one edition per year, and an
// author list with per-author publication pages.
const (
	BibHomePage    = "BibHomePage"
	ConfListPage   = "ConfListPage"
	DBConfListPage = "DBConfListPage"
	ConfPage       = "ConfPage"
	ConfYearPage   = "ConfYearPage"
	AuthorListPage = "AuthorListPage"
	AuthorPage     = "AuthorPage"
)

// Bibliography entry-point URLs.
const (
	BibHomeURL       = "http://bib.example.org/index.html"
	BibConfListURL   = "http://bib.example.org/confs.html"
	BibDBConfListURL = "http://bib.example.org/db-confs.html"
	BibAuthorListURL = "http://bib.example.org/authors.html"
)

// BibliographyParams sizes the generated bibliography site. The real site
// had over 16,000 authors (§1); the default scales that down while keeping
// the orders-of-magnitude gap between access paths.
type BibliographyParams struct {
	Authors int
	// Confs is the total number of conference series; DBConfs of them are
	// database conferences (the smaller list the Introduction mentions).
	Confs   int
	DBConfs int
	// Years is the number of editions per conference series.
	Years int
	// PapersPerEdition is the number of papers in each conference edition.
	PapersPerEdition int
	// AuthorsPerPaper is the number of authors on each paper.
	AuthorsPerPaper int
	Seed            int64
}

// DefaultBibliographyParams gives a laptop-scale site that preserves the
// Introduction's cost ratios (authors ≫ conferences ≫ one conference).
func DefaultBibliographyParams() BibliographyParams {
	return BibliographyParams{
		Authors:          2000,
		Confs:            40,
		DBConfs:          8,
		Years:            10,
		PapersPerEdition: 25,
		AuthorsPerPaper:  2,
		Seed:             1998,
	}
}

// WithDefaults returns the parameters with zero fields replaced by the
// defaults the generator would use.
func (p BibliographyParams) WithDefaults() BibliographyParams { return p.withDefaults() }

func (p BibliographyParams) withDefaults() BibliographyParams {
	d := DefaultBibliographyParams()
	if p.Authors <= 0 {
		p.Authors = d.Authors
	}
	if p.Confs <= 0 {
		p.Confs = d.Confs
	}
	if p.DBConfs <= 0 || p.DBConfs > p.Confs {
		p.DBConfs = min(d.DBConfs, p.Confs)
	}
	if p.Years <= 0 {
		p.Years = d.Years
	}
	if p.PapersPerEdition <= 0 {
		p.PapersPerEdition = d.PapersPerEdition
	}
	if p.AuthorsPerPaper <= 0 {
		p.AuthorsPerPaper = d.AuthorsPerPaper
	}
	return p
}

// BibliographyScheme builds the web scheme of the bibliography site.
func BibliographyScheme() *adm.Scheme {
	s := adm.NewScheme()
	mustAdd := func(p *adm.PageScheme) {
		if err := s.AddPage(p); err != nil {
			panic(err)
		}
	}
	mustAdd(&adm.PageScheme{Name: BibHomePage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "ToConfList", Type: nested.Link(ConfListPage)},
		{Name: "ToDBConfList", Type: nested.Link(DBConfListPage)},
		{Name: "ToAuthorList", Type: nested.Link(AuthorListPage)},
		// The home page links directly to a few major conferences, e.g.
		// VLDB (access path 3 of the Introduction).
		{Name: "FeaturedConfs", Type: nested.List(
			nested.Field{Name: "ConfName", Type: nested.Text()},
			nested.Field{Name: "ToConf", Type: nested.Link(ConfPage)},
		)},
	}})
	confListAttrs := []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "ConfList", Type: nested.List(
			nested.Field{Name: "ConfName", Type: nested.Text()},
			nested.Field{Name: "ToConf", Type: nested.Link(ConfPage)},
		)},
	}
	mustAdd(&adm.PageScheme{Name: ConfListPage, Attrs: confListAttrs})
	mustAdd(&adm.PageScheme{Name: DBConfListPage, Attrs: confListAttrs})
	mustAdd(&adm.PageScheme{Name: ConfPage, Attrs: []nested.Field{
		{Name: "ConfName", Type: nested.Text()},
		{Name: "Area", Type: nested.Text()},
		// The per-conference page lists every edition with its year and
		// editors — the redundancy the paper exploits for "who edited
		// VLDB '96" without visiting the edition page.
		{Name: "Editions", Type: nested.List(
			nested.Field{Name: "Year", Type: nested.Text()},
			nested.Field{Name: "Editors", Type: nested.Text()},
			nested.Field{Name: "ToEdition", Type: nested.Link(ConfYearPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: ConfYearPage, Attrs: []nested.Field{
		{Name: "ConfName", Type: nested.Text()},
		{Name: "Year", Type: nested.Text()},
		{Name: "Editors", Type: nested.Text()},
		{Name: "Papers", Type: nested.List(
			nested.Field{Name: "PTitle", Type: nested.Text()},
			nested.Field{Name: "Authors", Type: nested.List(
				nested.Field{Name: "AuthorName", Type: nested.Text()},
				nested.Field{Name: "ToAuthor", Type: nested.Link(AuthorPage)},
			)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: AuthorListPage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "AuthorList", Type: nested.List(
			nested.Field{Name: "AuthorName", Type: nested.Text()},
			nested.Field{Name: "ToAuthor", Type: nested.Link(AuthorPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: AuthorPage, Attrs: []nested.Field{
		{Name: "AuthorName", Type: nested.Text()},
		{Name: "Publications", Type: nested.List(
			nested.Field{Name: "PTitle", Type: nested.Text()},
			nested.Field{Name: "ConfName", Type: nested.Text()},
			nested.Field{Name: "Year", Type: nested.Text()},
			nested.Field{Name: "ToEdition", Type: nested.Link(ConfYearPage)},
		)},
	}})

	s.AddEntryPoint(BibHomePage, BibHomeURL)
	s.AddEntryPoint(ConfListPage, BibConfListURL)
	s.AddEntryPoint(DBConfListPage, BibDBConfListURL)
	s.AddEntryPoint(AuthorListPage, BibAuthorListURL)

	ref := func(scheme, path string) adm.AttrRef {
		return adm.AttrRef{Scheme: scheme, Path: adm.ParsePath(path)}
	}
	lc := func(scheme, link, src, tgt string) {
		s.AddLinkConstraint(adm.LinkConstraint{
			Link:    ref(scheme, link),
			SrcAttr: adm.ParsePath(src),
			TgtAttr: tgt,
		})
	}
	lc(ConfListPage, "ConfList.ToConf", "ConfList.ConfName", "ConfName")
	lc(DBConfListPage, "ConfList.ToConf", "ConfList.ConfName", "ConfName")
	lc(BibHomePage, "FeaturedConfs.ToConf", "FeaturedConfs.ConfName", "ConfName")
	lc(ConfPage, "Editions.ToEdition", "Editions.Year", "Year")
	lc(ConfPage, "Editions.ToEdition", "Editions.Editors", "Editors")
	lc(ConfPage, "Editions.ToEdition", "ConfName", "ConfName")
	lc(AuthorListPage, "AuthorList.ToAuthor", "AuthorList.AuthorName", "AuthorName")
	lc(ConfYearPage, "Papers.Authors.ToAuthor", "Papers.Authors.AuthorName", "AuthorName")
	lc(AuthorPage, "Publications.ToEdition", "Publications.Year", "Year")
	lc(AuthorPage, "Publications.ToEdition", "Publications.ConfName", "ConfName")

	// Inclusions: the full conference list covers the DB list and the
	// featured links; the author list covers authors reachable from papers;
	// editions reachable from author pages are reachable from conferences.
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(DBConfListPage, "ConfList.ToConf"),
		Super: ref(ConfListPage, "ConfList.ToConf"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(BibHomePage, "FeaturedConfs.ToConf"),
		Super: ref(DBConfListPage, "ConfList.ToConf"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(BibHomePage, "FeaturedConfs.ToConf"),
		Super: ref(ConfListPage, "ConfList.ToConf"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(ConfYearPage, "Papers.Authors.ToAuthor"),
		Super: ref(AuthorListPage, "AuthorList.ToAuthor"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(AuthorPage, "Publications.ToEdition"),
		Super: ref(ConfPage, "Editions.ToEdition"),
	})
	if err := s.Validate(); err != nil {
		panic("sitegen: bibliography scheme invalid: " + err.Error())
	}
	return s
}

// Bibliography is a generated bibliography site.
type Bibliography struct {
	Params   BibliographyParams
	Scheme   *adm.Scheme
	Instance *adm.Instance
	// VLDBName is the conference series used by the Introduction's example
	// query ("authors with papers in the last three VLDB conferences").
	VLDBName string
	// LastYear is the most recent edition year.
	LastYear int
}

// ConfSeriesName returns the series name of conference i; conference 0 is
// VLDB and the first DBConfs series are database conferences.
func ConfSeriesName(i int) string {
	if i == 0 {
		return "VLDB"
	}
	return fmt.Sprintf("CONF-%02d", i)
}

func confURL(i int) string { return fmt.Sprintf("http://bib.example.org/conf/%d.html", i) }
func editionURL(c, y int) string {
	return fmt.Sprintf("http://bib.example.org/conf/%d/%d.html", c, y)
}
func authorURL(i int) string { return fmt.Sprintf("http://bib.example.org/author/%d.html", i) }

// AuthorName returns the display name of author i.
func AuthorName(i int) string { return fmt.Sprintf("Author %05d", i) }

// GenerateBibliography builds the full bibliography instance.
func GenerateBibliography(p BibliographyParams) (*Bibliography, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	scheme := BibliographyScheme()
	inst := adm.NewInstance(scheme)
	b := &Bibliography{Params: p, Scheme: scheme, Instance: inst, VLDBName: "VLDB"}
	firstYear := 1999 - p.Years
	b.LastYear = 1998

	type pub struct {
		title string
		conf  int
		year  int
	}
	pubsOf := make([][]pub, p.Authors)
	type paper struct {
		title   string
		authors []int
	}
	// Authorship is skewed, as in the real bibliography: each conference
	// series has a small core community contributing most papers year after
	// year, so queries like "authors in the last three VLDBs" have non-empty
	// answers; the rest of the slots go to the general population.
	community := p.Authors / p.Confs
	if community < 4 {
		community = min(4, p.Authors)
	}
	papers := make([][][]paper, p.Confs) // conf → year index → papers
	for c := 0; c < p.Confs; c++ {
		commStart := (c * community) % p.Authors
		papers[c] = make([][]paper, p.Years)
		for y := 0; y < p.Years; y++ {
			year := firstYear + y
			for k := 0; k < p.PapersPerEdition; k++ {
				title := fmt.Sprintf("%s'%d paper %d", ConfSeriesName(c), year%100, k)
				authors := make([]int, 0, p.AuthorsPerPaper)
				seen := make(map[int]bool)
				// The community leaders publish in every edition (the
				// prolific authors queries like the Introduction's target).
				if k < 2 {
					lead := (commStart + k) % p.Authors
					seen[lead] = true
					authors = append(authors, lead)
				}
				for len(authors) < p.AuthorsPerPaper {
					var a int
					if rng.Float64() < 0.7 {
						a = (commStart + rng.Intn(community)) % p.Authors
					} else {
						a = rng.Intn(p.Authors)
					}
					if !seen[a] {
						seen[a] = true
						authors = append(authors, a)
					}
				}
				papers[c][y] = append(papers[c][y], paper{title: title, authors: authors})
				for _, a := range authors {
					pubsOf[a] = append(pubsOf[a], pub{title: title, conf: c, year: year})
				}
			}
		}
	}

	text := func(s string) nested.Value { return nested.TextValue(s) }
	add := func(scheme string, t nested.Tuple) error { return inst.AddPage(scheme, t) }

	featured := nested.ListValue{
		nested.T("ConfName", text("VLDB"), "ToConf", nested.LinkValue(confURL(0))),
	}
	if err := add(BibHomePage, nested.T(
		adm.URLAttr, nested.LinkValue(BibHomeURL),
		"Title", text("Bibliography Home"),
		"ToConfList", nested.LinkValue(BibConfListURL),
		"ToDBConfList", nested.LinkValue(BibDBConfListURL),
		"ToAuthorList", nested.LinkValue(BibAuthorListURL),
		"FeaturedConfs", featured,
	)); err != nil {
		return nil, err
	}
	allConfs := make(nested.ListValue, p.Confs)
	for c := 0; c < p.Confs; c++ {
		allConfs[c] = nested.T("ConfName", text(ConfSeriesName(c)), "ToConf", nested.LinkValue(confURL(c)))
	}
	if err := add(ConfListPage, nested.T(
		adm.URLAttr, nested.LinkValue(BibConfListURL),
		"Title", text("All Conferences"),
		"ConfList", allConfs,
	)); err != nil {
		return nil, err
	}
	dbConfs := make(nested.ListValue, p.DBConfs)
	for c := 0; c < p.DBConfs; c++ {
		dbConfs[c] = nested.T("ConfName", text(ConfSeriesName(c)), "ToConf", nested.LinkValue(confURL(c)))
	}
	if err := add(DBConfListPage, nested.T(
		adm.URLAttr, nested.LinkValue(BibDBConfListURL),
		"Title", text("Database Conferences"),
		"ConfList", dbConfs,
	)); err != nil {
		return nil, err
	}
	authorList := make(nested.ListValue, p.Authors)
	for a := 0; a < p.Authors; a++ {
		authorList[a] = nested.T("AuthorName", text(AuthorName(a)), "ToAuthor", nested.LinkValue(authorURL(a)))
	}
	if err := add(AuthorListPage, nested.T(
		adm.URLAttr, nested.LinkValue(BibAuthorListURL),
		"Title", text("All Authors"),
		"AuthorList", authorList,
	)); err != nil {
		return nil, err
	}

	for c := 0; c < p.Confs; c++ {
		area := "Other"
		if c < p.DBConfs {
			area = "Databases"
		}
		editions := make(nested.ListValue, p.Years)
		for y := 0; y < p.Years; y++ {
			year := firstYear + y
			editions[y] = nested.T(
				"Year", text(fmt.Sprint(year)),
				"Editors", text(fmt.Sprintf("Editors of %s %d", ConfSeriesName(c), year)),
				"ToEdition", nested.LinkValue(editionURL(c, year)),
			)
		}
		if err := add(ConfPage, nested.T(
			adm.URLAttr, nested.LinkValue(confURL(c)),
			"ConfName", text(ConfSeriesName(c)),
			"Area", text(area),
			"Editions", editions,
		)); err != nil {
			return nil, err
		}
		for y := 0; y < p.Years; y++ {
			year := firstYear + y
			pl := make(nested.ListValue, len(papers[c][y]))
			for i, pp := range papers[c][y] {
				al := make(nested.ListValue, len(pp.authors))
				for j, a := range pp.authors {
					al[j] = nested.T("AuthorName", text(AuthorName(a)), "ToAuthor", nested.LinkValue(authorURL(a)))
				}
				pl[i] = nested.T("PTitle", text(pp.title), "Authors", al)
			}
			if err := add(ConfYearPage, nested.T(
				adm.URLAttr, nested.LinkValue(editionURL(c, year)),
				"ConfName", text(ConfSeriesName(c)),
				"Year", text(fmt.Sprint(year)),
				"Editors", text(fmt.Sprintf("Editors of %s %d", ConfSeriesName(c), year)),
				"Papers", pl,
			)); err != nil {
				return nil, err
			}
		}
	}
	for a := 0; a < p.Authors; a++ {
		pubs := make(nested.ListValue, len(pubsOf[a]))
		for i, pb := range pubsOf[a] {
			pubs[i] = nested.T(
				"PTitle", text(pb.title),
				"ConfName", text(ConfSeriesName(pb.conf)),
				"Year", text(fmt.Sprint(pb.year)),
				"ToEdition", nested.LinkValue(editionURL(pb.conf, pb.year)),
			)
		}
		if err := add(AuthorPage, nested.T(
			adm.URLAttr, nested.LinkValue(authorURL(a)),
			"AuthorName", text(AuthorName(a)),
			"Publications", pubs,
		)); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
