package sitegen

import (
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

func TestUniversitySchemeValid(t *testing.T) {
	s := UniversityScheme()
	if err := s.Validate(); err != nil {
		t.Fatalf("scheme invalid: %v", err)
	}
	if len(s.PageNames()) != 8 {
		t.Errorf("expected 8 page-schemes, got %d", len(s.PageNames()))
	}
	if len(s.Entry) != 4 {
		t.Errorf("expected 4 entry points, got %d", len(s.Entry))
	}
	// The paper's two headline link constraints must be present.
	if _, ok := s.LinkConstraintFor(adm.AttrRef{Scheme: ProfPage, Path: adm.ParsePath("ToDept")}); !ok {
		t.Error("missing link constraint ProfPage.DName = DeptPage.DName")
	}
	if _, ok := s.LinkConstraintFor(adm.AttrRef{Scheme: SessionPage, Path: adm.ParsePath("CourseList.ToCourse")}); !ok {
		t.Error("missing link constraint SessionPage.Session = CoursePage.Session")
	}
}

func TestUniversityInstanceSatisfiesConstraints(t *testing.T) {
	u, err := GenerateUniversity(PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Instance.Validate(); err != nil {
		t.Fatalf("generated instance violates constraints: %v", err)
	}
}

func TestUniversityCardinalities(t *testing.T) {
	p := PaperUniversityParams()
	u, err := GenerateUniversity(p)
	if err != nil {
		t.Fatal(err)
	}
	in := u.Instance
	cases := map[string]int{
		HomePage:        1,
		DeptListPage:    1,
		ProfListPage:    1,
		SessionListPage: 1,
		DeptPage:        p.Depts,
		ProfPage:        p.Profs,
		SessionPage:     len(p.Sessions),
		CoursePage:      p.Courses,
	}
	for scheme, want := range cases {
		if got := in.Relation(scheme).Len(); got != want {
			t.Errorf("|%s| = %d, want %d", scheme, got, want)
		}
	}
	if in.TotalPages() != 4+p.Depts+p.Profs+len(p.Sessions)+p.Courses {
		t.Errorf("TotalPages = %d", in.TotalPages())
	}
}

func TestUniversityDeterminism(t *testing.T) {
	a, err := GenerateUniversity(PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUniversity(PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range a.Scheme.PageNames() {
		if !a.Instance.Relation(scheme).Equal(b.Instance.Relation(scheme)) {
			t.Errorf("generation not deterministic for %s", scheme)
		}
	}
}

func TestUniversityStrictInclusion(t *testing.T) {
	u, err := GenerateUniversity(PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	// Some professors teach no courses, so the set of professors reachable
	// from course pages must be strictly smaller than the full list (§3.2).
	reachable := make(map[string]bool)
	for _, tup := range u.Instance.Relation(CoursePage).Tuples() {
		for _, v := range adm.PathValues(tup, adm.ParsePath("ToProf")) {
			reachable[v.String()] = true
		}
	}
	if len(reachable) >= u.Params.Profs {
		t.Errorf("inclusion should be strict: %d reachable of %d profs", len(reachable), u.Params.Profs)
	}
}

func TestUniversitySessionDistribution(t *testing.T) {
	p := PaperUniversityParams()
	u, err := GenerateUniversity(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, tup := range u.Instance.Relation(CoursePage).Tuples() {
		counts[tup.MustGet("Session").String()]++
	}
	// Round-robin assignment: each session holds ≈ Courses/Sessions.
	for _, s := range p.Sessions {
		if counts[s] < p.Courses/len(p.Sessions) {
			t.Errorf("session %s has %d courses, want ≥ %d", s, counts[s], p.Courses/len(p.Sessions))
		}
	}
	types := make(map[string]int)
	for _, tup := range u.Instance.Relation(CoursePage).Tuples() {
		types[tup.MustGet("Type").String()]++
	}
	if types["Graduate"] != p.Courses/2 {
		t.Errorf("graduate courses = %d, want %d (selectivity 1/2 per Example 7.2)", types["Graduate"], p.Courses/2)
	}
}

func TestUniversityDefaults(t *testing.T) {
	u, err := GenerateUniversity(UniversityParams{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Params.Depts != 3 || u.Params.Profs != 20 || u.Params.Courses != 50 {
		t.Errorf("defaults = %+v", u.Params)
	}
	if err := u.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBibliographySchemeValid(t *testing.T) {
	s := BibliographyScheme()
	if err := s.Validate(); err != nil {
		t.Fatalf("scheme invalid: %v", err)
	}
	if len(s.Entry) != 4 {
		t.Errorf("expected 4 entry points, got %d", len(s.Entry))
	}
}

func TestBibliographyInstanceSatisfiesConstraints(t *testing.T) {
	// Small instance for validation cost.
	b, err := GenerateBibliography(BibliographyParams{
		Authors: 60, Confs: 6, DBConfs: 2, Years: 3, PapersPerEdition: 4, AuthorsPerPaper: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Instance.Validate(); err != nil {
		t.Fatalf("generated instance violates constraints: %v", err)
	}
}

func TestBibliographyCardinalities(t *testing.T) {
	p := BibliographyParams{Authors: 50, Confs: 5, DBConfs: 2, Years: 4, PapersPerEdition: 3, AuthorsPerPaper: 2, Seed: 7}
	b, err := GenerateBibliography(p)
	if err != nil {
		t.Fatal(err)
	}
	in := b.Instance
	if got := in.Relation(AuthorPage).Len(); got != p.Authors {
		t.Errorf("|AuthorPage| = %d, want %d", got, p.Authors)
	}
	if got := in.Relation(ConfPage).Len(); got != p.Confs {
		t.Errorf("|ConfPage| = %d, want %d", got, p.Confs)
	}
	if got := in.Relation(ConfYearPage).Len(); got != p.Confs*p.Years {
		t.Errorf("|ConfYearPage| = %d, want %d", got, p.Confs*p.Years)
	}
	// Every author page lists only real publications; papers per edition.
	var ed nested.Tuple
	for _, tup := range in.Relation(ConfYearPage).Tuples() {
		ed = tup
		break
	}
	lv, _ := ed.Get("Papers")
	if len(lv.(nested.ListValue)) != p.PapersPerEdition {
		t.Errorf("papers per edition = %d, want %d", len(lv.(nested.ListValue)), p.PapersPerEdition)
	}
}

func TestBibliographyVLDBPresent(t *testing.T) {
	b, err := GenerateBibliography(BibliographyParams{
		Authors: 30, Confs: 4, DBConfs: 2, Years: 3, PapersPerEdition: 2, AuthorsPerPaper: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tup := range b.Instance.Relation(ConfPage).Tuples() {
		if tup.MustGet("ConfName").String() == "VLDB" {
			found = true
			if tup.MustGet("Area").String() != "Databases" {
				t.Error("VLDB should be a database conference")
			}
		}
	}
	if !found {
		t.Error("VLDB series missing")
	}
	if ConfSeriesName(0) != "VLDB" || ConfSeriesName(3) != "CONF-03" {
		t.Error("series naming wrong")
	}
}

func TestBibliographyDefaultsClamp(t *testing.T) {
	p := BibliographyParams{Confs: 3, DBConfs: 10}.withDefaults()
	if p.DBConfs > p.Confs {
		t.Errorf("DBConfs must be clamped to Confs: %+v", p)
	}
	if p.Authors != DefaultBibliographyParams().Authors {
		t.Error("zero Authors should default")
	}
}

func TestNameHelpers(t *testing.T) {
	if DeptName(0) != "Computer Science" {
		t.Errorf("DeptName(0) = %q", DeptName(0))
	}
	if DeptName(99) != "Department 99" {
		t.Errorf("DeptName(99) = %q", DeptName(99))
	}
	if ProfName(3) != "Prof. 003" {
		t.Errorf("ProfName(3) = %q", ProfName(3))
	}
	if CourseName(12) != "Course 012" {
		t.Errorf("CourseName(12) = %q", CourseName(12))
	}
	if AuthorName(7) != "Author 00007" {
		t.Errorf("AuthorName(7) = %q", AuthorName(7))
	}
}

func TestSchemesFormatRoundTrip(t *testing.T) {
	for name, ws := range map[string]*adm.Scheme{
		"university":   UniversityScheme(),
		"bibliography": BibliographyScheme(),
	} {
		back, err := adm.ParseScheme(ws.Format())
		if err != nil {
			t.Errorf("%s: formatted scheme does not re-parse: %v", name, err)
			continue
		}
		if !ws.Equal(back) {
			t.Errorf("%s: scheme text round trip changed the scheme", name)
		}
	}
}
