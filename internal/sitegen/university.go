// Package sitegen builds deterministic synthetic web sites conforming to
// the ADM schemes studied in the paper: the hypothetical university site of
// Figure 1 and a DBLP-like bibliography site modeled on the Introduction's
// example. The generators substitute for the real 1997/98 sites the authors
// experimented on; topology, constraints and fan-outs follow the paper.
package sitegen

import (
	"fmt"
	"math/rand"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// University page-scheme names (Figure 1).
const (
	HomePage        = "HomePage"
	DeptListPage    = "DeptListPage"
	ProfListPage    = "ProfListPage"
	SessionListPage = "SessionListPage"
	DeptPage        = "DeptPage"
	ProfPage        = "ProfPage"
	SessionPage     = "SessionPage"
	CoursePage      = "CoursePage"
)

// University entry-point URLs.
const (
	UnivHomeURL        = "http://univ.example.edu/index.html"
	UnivDeptListURL    = "http://univ.example.edu/depts.html"
	UnivProfListURL    = "http://univ.example.edu/profs.html"
	UnivSessionListURL = "http://univ.example.edu/sessions.html"
)

// UniversityParams sizes the generated university site. Example 7.2 of the
// paper quotes costs for 50 courses, 20 professors and 3 departments; see
// PaperUniversityParams.
type UniversityParams struct {
	Depts    int
	Profs    int
	Courses  int
	Sessions []string
	// NonTeachingFrac is the fraction of professors who teach no course,
	// making the inclusion CoursePage.ToProf ⊆ ProfListPage.ProfList.ToProf
	// strict, as the paper observes (§3.2).
	NonTeachingFrac float64
	// Seed drives the deterministic pseudo-random attribute assignment.
	Seed int64
}

// PaperUniversityParams are the sizes quoted in Example 7.2: 50 courses,
// 20 professors, 3 departments.
func PaperUniversityParams() UniversityParams {
	return UniversityParams{
		Depts:           3,
		Profs:           20,
		Courses:         50,
		Sessions:        []string{"Fall", "Winter", "Summer"},
		NonTeachingFrac: 0.2,
		Seed:            1998,
	}
}

// WithDefaults returns the parameters with zero fields replaced by the
// defaults the generator would use.
func (p UniversityParams) WithDefaults() UniversityParams { return p.withDefaults() }

func (p UniversityParams) withDefaults() UniversityParams {
	if p.Depts <= 0 {
		p.Depts = 3
	}
	if p.Profs <= 0 {
		p.Profs = 20
	}
	if p.Courses <= 0 {
		p.Courses = 50
	}
	if len(p.Sessions) == 0 {
		p.Sessions = []string{"Fall", "Winter", "Summer"}
	}
	if p.NonTeachingFrac < 0 || p.NonTeachingFrac >= 1 {
		p.NonTeachingFrac = 0.2
	}
	return p
}

// UniversityScheme builds the web scheme of Figure 1: eight page-schemes,
// four entry points, and the link and inclusion constraints the paper
// declares for the site.
func UniversityScheme() *adm.Scheme {
	s := adm.NewScheme()
	mustAdd := func(p *adm.PageScheme) {
		if err := s.AddPage(p); err != nil {
			panic(err)
		}
	}
	mustAdd(&adm.PageScheme{Name: HomePage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "ToDeptList", Type: nested.Link(DeptListPage)},
		{Name: "ToProfList", Type: nested.Link(ProfListPage)},
		{Name: "ToSessionList", Type: nested.Link(SessionListPage)},
	}})
	mustAdd(&adm.PageScheme{Name: DeptListPage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "DeptList", Type: nested.List(
			nested.Field{Name: "DeptName", Type: nested.Text()},
			nested.Field{Name: "ToDept", Type: nested.Link(DeptPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: ProfListPage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "ProfList", Type: nested.List(
			nested.Field{Name: "ProfName", Type: nested.Text()},
			nested.Field{Name: "ToProf", Type: nested.Link(ProfPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: SessionListPage, Attrs: []nested.Field{
		{Name: "Title", Type: nested.Text()},
		{Name: "SesList", Type: nested.List(
			nested.Field{Name: "Session", Type: nested.Text()},
			nested.Field{Name: "ToSes", Type: nested.Link(SessionPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: DeptPage, Attrs: []nested.Field{
		{Name: "DName", Type: nested.Text()},
		{Name: "Address", Type: nested.Text()},
		{Name: "ProfList", Type: nested.List(
			nested.Field{Name: "ProfName", Type: nested.Text()},
			nested.Field{Name: "ToProf", Type: nested.Link(ProfPage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: ProfPage, Attrs: []nested.Field{
		{Name: "Name", Type: nested.Text()},
		{Name: "Rank", Type: nested.Text()},
		{Name: "Email", Type: nested.Text()},
		{Name: "DName", Type: nested.Text()},
		{Name: "ToDept", Type: nested.Link(DeptPage)},
		{Name: "CourseList", Type: nested.List(
			nested.Field{Name: "CName", Type: nested.Text()},
			nested.Field{Name: "ToCourse", Type: nested.Link(CoursePage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: SessionPage, Attrs: []nested.Field{
		{Name: "Session", Type: nested.Text()},
		{Name: "CourseList", Type: nested.List(
			nested.Field{Name: "CName", Type: nested.Text()},
			nested.Field{Name: "ToCourse", Type: nested.Link(CoursePage)},
		)},
	}})
	mustAdd(&adm.PageScheme{Name: CoursePage, Attrs: []nested.Field{
		{Name: "CName", Type: nested.Text()},
		{Name: "Session", Type: nested.Text()},
		{Name: "Description", Type: nested.Text()},
		{Name: "Type", Type: nested.Text()},
		{Name: "ProfName", Type: nested.Text()},
		{Name: "ToProf", Type: nested.Link(ProfPage)},
	}})

	s.AddEntryPoint(HomePage, UnivHomeURL)
	s.AddEntryPoint(DeptListPage, UnivDeptListURL)
	s.AddEntryPoint(ProfListPage, UnivProfListURL)
	s.AddEntryPoint(SessionListPage, UnivSessionListURL)

	ref := func(scheme, path string) adm.AttrRef {
		return adm.AttrRef{Scheme: scheme, Path: adm.ParsePath(path)}
	}
	// Link constraints (§3.2): redundant attributes along links. The two
	// spelled out in the paper, plus the anchor redundancies Figure 1 shows.
	lc := func(scheme, link, src, tgt string) {
		s.AddLinkConstraint(adm.LinkConstraint{
			Link:    ref(scheme, link),
			SrcAttr: adm.ParsePath(src),
			TgtAttr: tgt,
		})
	}
	lc(ProfPage, "ToDept", "DName", "DName")                     // ProfPage.DName = DeptPage.DName
	lc(SessionPage, "CourseList.ToCourse", "Session", "Session") // SessionPage.Session = CoursePage.Session
	lc(SessionPage, "CourseList.ToCourse", "CourseList.CName", "CName")
	lc(ProfPage, "CourseList.ToCourse", "CourseList.CName", "CName")
	lc(CoursePage, "ToProf", "ProfName", "Name") // CoursePage.ProfName = ProfPage.Name
	lc(DeptListPage, "DeptList.ToDept", "DeptList.DeptName", "DName")
	lc(ProfListPage, "ProfList.ToProf", "ProfList.ProfName", "Name")
	lc(DeptPage, "ProfList.ToProf", "ProfList.ProfName", "Name")
	lc(SessionListPage, "SesList.ToSes", "SesList.Session", "Session")

	// Inclusion constraints (§3.2): the list pages reach everything; the
	// embedded paths reach subsets.
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(CoursePage, "ToProf"),
		Super: ref(ProfListPage, "ProfList.ToProf"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(DeptPage, "ProfList.ToProf"),
		Super: ref(ProfListPage, "ProfList.ToProf"),
	})
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(ProfPage, "CourseList.ToCourse"),
		Super: ref(SessionPage, "CourseList.ToCourse"),
	})
	// Every professor's department link appears in the department list, and
	// vice versa every listed department is some professor's department
	// only in one direction: list covers all.
	s.AddInclusion(adm.InclusionConstraint{
		Sub:   ref(ProfPage, "ToDept"),
		Super: ref(DeptListPage, "DeptList.ToDept"),
	})
	if err := s.Validate(); err != nil {
		panic("sitegen: university scheme invalid: " + err.Error())
	}
	return s
}

// University is a generated university site: the scheme, the instance, and
// the generation bookkeeping useful to tests and benchmarks.
type University struct {
	Params   UniversityParams
	Scheme   *adm.Scheme
	Instance *adm.Instance

	// DeptOf maps professor index to department index.
	DeptOf []int
	// InstructorOf maps course index to professor index.
	InstructorOf []int
	// SessionOf maps course index to session index.
	SessionOf []int
	// RankOf maps professor index to rank.
	RankOf []string
	// TypeOf maps course index to course type.
	TypeOf []string
}

// Deterministic attribute vocabularies.
var (
	ranks       = []string{"Full", "Associate", "Assistant"}
	courseTypes = []string{"Graduate", "Undergraduate"}
	deptNames   = []string{
		"Computer Science", "Mathematics", "Physics", "Chemistry", "Biology",
		"Philosophy", "History", "Economics", "Linguistics", "Statistics",
	}
)

// DeptName returns the display name of department i.
func DeptName(i int) string {
	if i < len(deptNames) {
		return deptNames[i]
	}
	return fmt.Sprintf("Department %d", i)
}

// ProfName returns the display name of professor i.
func ProfName(i int) string { return fmt.Sprintf("Prof. %03d", i) }

// CourseName returns the display name of course i.
func CourseName(i int) string { return fmt.Sprintf("Course %03d", i) }

// URL builders for university pages.
func deptURL(i int) string    { return fmt.Sprintf("http://univ.example.edu/dept/%d.html", i) }
func profURL(i int) string    { return fmt.Sprintf("http://univ.example.edu/prof/%d.html", i) }
func courseURL(i int) string  { return fmt.Sprintf("http://univ.example.edu/course/%d.html", i) }
func sessionURL(i int) string { return fmt.Sprintf("http://univ.example.edu/session/%d.html", i) }

// GenerateUniversity builds the full site instance. The generator is
// deterministic for a given parameter set (including Seed).
func GenerateUniversity(p UniversityParams) (*University, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	scheme := UniversityScheme()
	inst := adm.NewInstance(scheme)
	u := &University{Params: p, Scheme: scheme, Instance: inst}

	// Assignments. Professors with index ≥ teaching count teach nothing.
	teaching := p.Profs - int(float64(p.Profs)*p.NonTeachingFrac)
	if teaching < 1 {
		teaching = 1
	}
	u.DeptOf = make([]int, p.Profs)
	u.RankOf = make([]string, p.Profs)
	for i := 0; i < p.Profs; i++ {
		u.DeptOf[i] = i % p.Depts
		u.RankOf[i] = ranks[i%len(ranks)]
	}
	u.InstructorOf = make([]int, p.Courses)
	u.SessionOf = make([]int, p.Courses)
	u.TypeOf = make([]string, p.Courses)
	for i := 0; i < p.Courses; i++ {
		u.InstructorOf[i] = rng.Intn(teaching)
		u.SessionOf[i] = i % len(p.Sessions)
		u.TypeOf[i] = courseTypes[i%len(courseTypes)]
	}

	coursesOf := make([][]int, p.Profs)
	for c, prof := range u.InstructorOf {
		coursesOf[prof] = append(coursesOf[prof], c)
	}
	profsOf := make([][]int, p.Depts)
	for pr, d := range u.DeptOf {
		profsOf[d] = append(profsOf[d], pr)
	}
	coursesIn := make([][]int, len(p.Sessions))
	for c, sidx := range u.SessionOf {
		coursesIn[sidx] = append(coursesIn[sidx], c)
	}

	text := func(s string) nested.Value { return nested.TextValue(s) }

	// Entry points.
	add := func(scheme string, t nested.Tuple) error { return inst.AddPage(scheme, t) }
	if err := add(HomePage, nested.T(
		adm.URLAttr, nested.LinkValue(UnivHomeURL),
		"Title", text("University Home"),
		"ToDeptList", nested.LinkValue(UnivDeptListURL),
		"ToProfList", nested.LinkValue(UnivProfListURL),
		"ToSessionList", nested.LinkValue(UnivSessionListURL),
	)); err != nil {
		return nil, err
	}
	deptList := make(nested.ListValue, p.Depts)
	for i := 0; i < p.Depts; i++ {
		deptList[i] = nested.T("DeptName", text(DeptName(i)), "ToDept", nested.LinkValue(deptURL(i)))
	}
	if err := add(DeptListPage, nested.T(
		adm.URLAttr, nested.LinkValue(UnivDeptListURL),
		"Title", text("Departments"),
		"DeptList", deptList,
	)); err != nil {
		return nil, err
	}
	profList := make(nested.ListValue, p.Profs)
	for i := 0; i < p.Profs; i++ {
		profList[i] = nested.T("ProfName", text(ProfName(i)), "ToProf", nested.LinkValue(profURL(i)))
	}
	if err := add(ProfListPage, nested.T(
		adm.URLAttr, nested.LinkValue(UnivProfListURL),
		"Title", text("Professors"),
		"ProfList", profList,
	)); err != nil {
		return nil, err
	}
	sesList := make(nested.ListValue, len(p.Sessions))
	for i, name := range p.Sessions {
		sesList[i] = nested.T("Session", text(name), "ToSes", nested.LinkValue(sessionURL(i)))
	}
	if err := add(SessionListPage, nested.T(
		adm.URLAttr, nested.LinkValue(UnivSessionListURL),
		"Title", text("Sessions"),
		"SesList", sesList,
	)); err != nil {
		return nil, err
	}

	// Department pages.
	for d := 0; d < p.Depts; d++ {
		members := make(nested.ListValue, len(profsOf[d]))
		for i, pr := range profsOf[d] {
			members[i] = nested.T("ProfName", text(ProfName(pr)), "ToProf", nested.LinkValue(profURL(pr)))
		}
		if err := add(DeptPage, nested.T(
			adm.URLAttr, nested.LinkValue(deptURL(d)),
			"DName", text(DeptName(d)),
			"Address", text(fmt.Sprintf("%d Campus Road", 100+d)),
			"ProfList", members,
		)); err != nil {
			return nil, err
		}
	}
	// Professor pages.
	for pr := 0; pr < p.Profs; pr++ {
		cl := make(nested.ListValue, len(coursesOf[pr]))
		for i, c := range coursesOf[pr] {
			cl[i] = nested.T("CName", text(CourseName(c)), "ToCourse", nested.LinkValue(courseURL(c)))
		}
		if err := add(ProfPage, nested.T(
			adm.URLAttr, nested.LinkValue(profURL(pr)),
			"Name", text(ProfName(pr)),
			"Rank", text(u.RankOf[pr]),
			"Email", text(fmt.Sprintf("prof%03d@univ.example.edu", pr)),
			"DName", text(DeptName(u.DeptOf[pr])),
			"ToDept", nested.LinkValue(deptURL(u.DeptOf[pr])),
			"CourseList", cl,
		)); err != nil {
			return nil, err
		}
	}
	// Session pages.
	for sidx, name := range p.Sessions {
		cl := make(nested.ListValue, len(coursesIn[sidx]))
		for i, c := range coursesIn[sidx] {
			cl[i] = nested.T("CName", text(CourseName(c)), "ToCourse", nested.LinkValue(courseURL(c)))
		}
		if err := add(SessionPage, nested.T(
			adm.URLAttr, nested.LinkValue(sessionURL(sidx)),
			"Session", text(name),
			"CourseList", cl,
		)); err != nil {
			return nil, err
		}
	}
	// Course pages.
	for c := 0; c < p.Courses; c++ {
		pr := u.InstructorOf[c]
		if err := add(CoursePage, nested.T(
			adm.URLAttr, nested.LinkValue(courseURL(c)),
			"CName", text(CourseName(c)),
			"Session", text(p.Sessions[u.SessionOf[c]]),
			"Description", text(fmt.Sprintf("Description of course %03d.", c)),
			"Type", text(u.TypeOf[c]),
			"ProfName", text(ProfName(pr)),
			"ToProf", nested.LinkValue(profURL(pr)),
		)); err != nil {
			return nil, err
		}
	}
	return u, nil
}
