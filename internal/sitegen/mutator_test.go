package sitegen

import (
	"reflect"
	"strings"
	"testing"

	"ulixes/internal/site"
)

func mutatorFixture(t *testing.T, seed int64, ops ...MutOp) (*University, *site.MemSite, *Mutator) {
	t.Helper()
	u, err := GenerateUniversity(PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, ms, NewMutator(u, ms, seed, ops...)
}

// TestMutatorDeterministic: same university, same seed, same op mix — the
// exact same mutation sequence and final site state, the property that lets
// experiments replay one site history against several configurations.
func TestMutatorDeterministic(t *testing.T) {
	ops := []MutOp{OpEditRank, OpEditCourse, OpTouch, OpRemoveCourse, OpRestoreCourse}
	_, ms1, m1 := mutatorFixture(t, 42, ops...)
	_, ms2, m2 := mutatorFixture(t, 42, ops...)
	s1 := m1.Steps(150)
	s2 := m2.Steps(150)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same-seeded mutators diverged")
	}
	urls1, urls2 := ms1.URLs(), ms2.URLs()
	if !reflect.DeepEqual(urls1, urls2) {
		t.Fatal("site URL sets diverged")
	}
	for _, u := range urls1 {
		p1, err1 := ms1.Get(u) //lint:allow fetchgate comparing raw fake-site state, not querying
		p2, err2 := ms2.Get(u) //lint:allow fetchgate comparing raw fake-site state, not querying
		if err1 != nil || err2 != nil {
			t.Fatalf("get %s: %v %v", u, err1, err2)
		}
		if p1.HTML != p2.HTML {
			t.Fatalf("page %s diverged", u)
		}
	}

	// A different seed takes a different path.
	_, _, m3 := mutatorFixture(t, 43, ops...)
	if reflect.DeepEqual(s1, m3.Steps(150)) {
		t.Fatal("differently-seeded mutators coincided")
	}
}

// TestMutatorKeepsSiteConsistent: after heavy structural churn every course
// link on professor and session pages resolves, and every active course is
// listed exactly where it should be.
func TestMutatorKeepsSiteConsistent(t *testing.T) {
	u, ms, m := mutatorFixture(t, 7, OpRemoveCourse, OpRestoreCourse, OpEditRank, OpEditCourse)
	m.Steps(200)
	if m.ActiveCourses() == 0 {
		t.Fatal("all courses vanished")
	}
	active := 0
	for c := 0; c < u.Params.Courses; c++ {
		url := courseURL(c)
		_, err := ms.Get(url) //lint:allow fetchgate probing raw fake-site state, not querying
		prof := profURL(u.InstructorOf[c])
		pp, perr := ms.Get(prof) //lint:allow fetchgate probing raw fake-site state, not querying
		if perr != nil {
			t.Fatal(perr)
		}
		listed := strings.Contains(pp.HTML, url)
		if err == nil {
			active++
			if !listed {
				t.Fatalf("active course %d missing from its instructor's page", c)
			}
		} else if listed {
			t.Fatalf("removed course %d still listed on %s", c, prof)
		}
	}
	if active != m.ActiveCourses() {
		t.Fatalf("mutator counts %d active courses, site has %d", m.ActiveCourses(), active)
	}
}
