package sitegen

import (
	"fmt"
	"math/rand"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// MutableSite is the mutation surface of site.MemSite the driver needs,
// declared here so sitegen stays independent of the site package.
type MutableSite interface {
	UpdatePage(scheme string, tup nested.Tuple) error
	RemovePage(url string) bool
	Touch(url string) bool
}

// MutOp names one kind of site mutation the driver can apply.
type MutOp int

// Mutation kinds. Experiments pick the mix: pull-vs-push comparisons use
// content edits and touches (every page keeps existing, so TTL-only
// configurations never 404); structural churn adds removals and restores.
const (
	// OpEditRank cycles a professor's rank — a content edit that changes
	// the answer of rank-bound queries.
	OpEditRank MutOp = iota
	// OpEditCourse bumps a course's description revision — a content edit
	// no standard query projects, i.e. pure maintenance traffic.
	OpEditCourse
	// OpTouch bumps a page's Last-Modified without changing its content.
	OpTouch
	// OpRemoveCourse unlists and deletes an active course page, updating
	// the instructor's and the session's course lists consistently.
	OpRemoveCourse
	// OpRestoreCourse re-adds a previously removed course and re-lists it.
	OpRestoreCourse
)

// String renders the op name.
func (o MutOp) String() string {
	switch o {
	case OpEditRank:
		return "edit-rank"
	case OpEditCourse:
		return "edit-course"
	case OpTouch:
		return "touch"
	case OpRemoveCourse:
		return "remove-course"
	case OpRestoreCourse:
		return "restore-course"
	default:
		return fmt.Sprintf("MutOp(%d)", int(o))
	}
}

// Mutation reports one applied step: the op and the page URLs it updated,
// removed or touched, in application order.
type Mutation struct {
	Op   MutOp
	URLs []string
}

// Mutator applies a deterministic, seeded stream of consistent mutations to
// a generated university living in a MutableSite: every edit keeps the
// site's cross-page invariants (course lists on professor and session pages
// always match the course pages that exist), so queries over the mutated
// site remain well-defined at every step. Two mutators built from
// same-seeded universities with the same seed and op mix produce the exact
// same state sequence — the basis for comparing pull and push configurations
// against identical site histories.
type Mutator struct {
	u   *University
	ms  MutableSite
	rng *rand.Rand
	ops []MutOp

	pages   map[string]pageState // url → current scheme + tuple
	rankIdx []int                // current rank index per professor
	rev     []int                // description revision per course
	active  []bool               // course currently on the site
	removed []int                // removed course indices, restore pool
}

type pageState struct {
	scheme string
	tup    nested.Tuple
}

// NewMutator builds a driver over the university and its site. The op list
// picks the mutation mix (uniform over the list, duplicates weight); an
// empty list defaults to content-only churn: edit-rank, edit-course, touch.
func NewMutator(u *University, ms MutableSite, seed int64, ops ...MutOp) *Mutator {
	if len(ops) == 0 {
		ops = []MutOp{OpEditRank, OpEditCourse, OpTouch}
	}
	m := &Mutator{
		u:       u,
		ms:      ms,
		rng:     rand.New(rand.NewSource(seed)),
		ops:     append([]MutOp(nil), ops...),
		pages:   make(map[string]pageState),
		rankIdx: make([]int, u.Params.Profs),
		rev:     make([]int, u.Params.Courses),
		active:  make([]bool, u.Params.Courses),
	}
	for _, scheme := range []string{
		HomePage, DeptListPage, ProfListPage, SessionListPage,
		DeptPage, ProfPage, SessionPage, CoursePage,
	} {
		for _, tup := range u.Instance.Relation(scheme).Tuples() {
			m.pages[tup.MustGet(adm.URLAttr).String()] = pageState{scheme, tup}
		}
	}
	for i, r := range u.RankOf {
		for j, name := range ranks {
			if name == r {
				m.rankIdx[i] = j
			}
		}
	}
	for c := range m.active {
		m.active[c] = true
	}
	return m
}

// Step applies one mutation and reports it. Ops that are momentarily
// impossible (restore with nothing removed, remove with one course left)
// deterministically degrade to their counterpart, then to a course edit, so
// Step always makes progress.
func (m *Mutator) Step() Mutation {
	op := m.ops[m.rng.Intn(len(m.ops))]
	switch op {
	case OpRestoreCourse:
		if len(m.removed) == 0 {
			op = OpRemoveCourse
		}
	}
	if op == OpRemoveCourse && m.activeCount() <= 1 {
		op = OpEditCourse
	}
	switch op {
	case OpEditRank:
		return m.editRank()
	case OpEditCourse:
		return m.editCourse()
	case OpTouch:
		return m.touch()
	case OpRemoveCourse:
		return m.removeCourse()
	default:
		return m.restoreCourse()
	}
}

// Steps applies n mutations and returns them.
func (m *Mutator) Steps(n int) []Mutation {
	out := make([]Mutation, n)
	for i := range out {
		out[i] = m.Step()
	}
	return out
}

// ActiveCourses returns how many course pages currently exist.
func (m *Mutator) ActiveCourses() int { return m.activeCount() }

func (m *Mutator) activeCount() int {
	n := 0
	for _, a := range m.active {
		if a {
			n++
		}
	}
	return n
}

func (m *Mutator) pickActive() int {
	idx := m.rng.Intn(m.activeCount())
	for c, a := range m.active {
		if !a {
			continue
		}
		if idx == 0 {
			return c
		}
		idx--
	}
	panic("sitegen: no active course")
}

// update rewrites one tracked page both locally and on the site.
func (m *Mutator) update(url string, tup nested.Tuple) {
	ps := m.pages[url]
	ps.tup = tup
	m.pages[url] = ps
	if err := m.ms.UpdatePage(ps.scheme, tup); err != nil {
		panic(fmt.Sprintf("sitegen: mutator update of %s: %v", url, err))
	}
}

func (m *Mutator) editRank() Mutation {
	i := m.rng.Intn(m.u.Params.Profs)
	m.rankIdx[i] = (m.rankIdx[i] + 1) % len(ranks)
	url := profURL(i)
	m.update(url, m.pages[url].tup.With("Rank", nested.TextValue(ranks[m.rankIdx[i]])))
	return Mutation{Op: OpEditRank, URLs: []string{url}}
}

func (m *Mutator) editCourse() Mutation {
	c := m.pickActive()
	m.rev[c]++
	url := courseURL(c)
	desc := fmt.Sprintf("Description of course %03d (rev %d).", c, m.rev[c])
	m.update(url, m.pages[url].tup.With("Description", nested.TextValue(desc)))
	return Mutation{Op: OpEditCourse, URLs: []string{url}}
}

func (m *Mutator) touch() Mutation {
	var url string
	if n := m.u.Params.Profs; m.rng.Intn(2) == 0 {
		url = profURL(m.rng.Intn(n))
	} else {
		url = courseURL(m.pickActive())
	}
	m.ms.Touch(url)
	return Mutation{Op: OpTouch, URLs: []string{url}}
}

// dropCourseEntry filters a CourseList down to entries not linking to url.
func dropCourseEntry(list nested.Value, url string) nested.ListValue {
	lv, _ := list.(nested.ListValue)
	out := make(nested.ListValue, 0, len(lv))
	for _, e := range lv {
		if e.MustGet("ToCourse").String() != url {
			out = append(out, e)
		}
	}
	return out
}

func (m *Mutator) removeCourse() Mutation {
	c := m.pickActive()
	url := courseURL(c)
	profPage := profURL(m.u.InstructorOf[c])
	sesPage := sessionURL(m.u.SessionOf[c])

	pt := m.pages[profPage].tup
	pl, _ := pt.Get("CourseList")
	m.update(profPage, pt.With("CourseList", dropCourseEntry(pl, url)))

	st := m.pages[sesPage].tup
	sl, _ := st.Get("CourseList")
	m.update(sesPage, st.With("CourseList", dropCourseEntry(sl, url)))

	m.ms.RemovePage(url)
	m.active[c] = false
	m.removed = append(m.removed, c)
	return Mutation{Op: OpRemoveCourse, URLs: []string{profPage, sesPage, url}}
}

func (m *Mutator) restoreCourse() Mutation {
	idx := m.rng.Intn(len(m.removed))
	c := m.removed[idx]
	m.removed = append(m.removed[:idx], m.removed[idx+1:]...)
	url := courseURL(c)
	// Re-add the page first so the re-listed link never dangles.
	m.update(url, m.pages[url].tup)
	entry := nested.T("CName", nested.TextValue(CourseName(c)), "ToCourse", nested.LinkValue(url))

	profPage := profURL(m.u.InstructorOf[c])
	pt := m.pages[profPage].tup
	pl, _ := pt.Get("CourseList")
	m.update(profPage, pt.With("CourseList", append(append(nested.ListValue{}, pl.(nested.ListValue)...), entry)))

	sesPage := sessionURL(m.u.SessionOf[c])
	st := m.pages[sesPage].tup
	sl, _ := st.Get("CourseList")
	m.update(sesPage, st.With("CourseList", append(append(nested.ListValue{}, sl.(nested.ListValue)...), entry)))

	m.active[c] = true
	return Mutation{Op: OpRestoreCourse, URLs: []string{url, profPage, sesPage}}
}
