package vanswer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ulixes/internal/cq"
	"ulixes/internal/engine"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// manualClock is a mutex-protected settable time source.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fixture builds the paper-sized university site, a live engine over it, and
// a view manager sharing the same site and registry.
func fixture(t *testing.T, cfg ManagerConfig) (*site.MemSite, *engine.Engine, *Manager) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	eng := engine.New(views, ms, stats.CollectInstance(u.Instance))
	return ms, eng, NewManager(ms, views, cfg)
}

func parse(t *testing.T, src string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAnswerByteIdentical pins the central soundness claim: for every query
// shape the rewriter accepts, the answer is byte-identical to what the live
// plan computes — same tuples, same column names, same set semantics.
func TestAnswerByteIdentical(t *testing.T) {
	_, eng, m := fixture(t, ManagerConfig{})
	defs := []Def{
		{Relation: "Professor"},
		{Relation: "Course"},
		{Relation: "CourseInstructor"},
		{Relation: "Dept"},
	}
	kept, err := m.Apply(defs)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(defs) {
		t.Fatalf("applied %d of %d definitions", len(kept), len(defs))
	}
	queries := []string{
		"SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'",
		"SELECT p.PName, p.Email FROM Professor p",
		"SELECT * FROM Dept d",
		"SELECT * FROM Professor p WHERE p.Rank = 'Associate'",
		"SELECT c.CName, c.Session FROM Course c WHERE c.Session = 'Fall'",
		"SELECT p.PName AS Who, p.Rank FROM Professor p",
		"SELECT ci.CName, p.Email FROM CourseInstructor ci, Professor p WHERE ci.PName = p.PName AND p.Rank = 'Full'",
		"SELECT * FROM CourseInstructor ci, Professor p WHERE ci.PName = p.PName",
	}
	for _, src := range queries {
		q := parse(t, src)
		rel, ok, err := m.TryAnswer(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !ok {
			t.Fatalf("%s: rewriter declined, want a view answer", src)
		}
		live, err := eng.QueryCQ(parse(t, src))
		if err != nil {
			t.Fatalf("%s: live: %v", src, err)
		}
		if got, want := rel.String(), live.Result.String(); got != want {
			t.Errorf("%s:\nview answer:\n%s\nlive answer:\n%s", src, got, want)
		}
	}
	c := m.Counters()
	if c.Hits != len(queries) || c.Misses != 0 {
		t.Errorf("counters %+v, want %d hits and no misses", c, len(queries))
	}
}

// TestWeakerBindingPatternRejected is the unsound-rewrite case the paper's
// containment condition guards against: a view bound to Rank='Full' holds
// only the full professors, so it must NOT answer an unbound professor scan
// or a query bound to a different rank — both must fall back to the live
// plan. A query the binding pattern IS implied by is answered, and
// byte-identically.
func TestWeakerBindingPatternRejected(t *testing.T) {
	_, eng, m := fixture(t, ManagerConfig{})
	if _, err := m.Apply([]Def{{Relation: "Professor", Bindings: []Binding{{Attr: "Rank", Val: "Full"}}}}); err != nil {
		t.Fatal(err)
	}
	eng.ViewAnswers = m

	for _, src := range []string{
		"SELECT p.PName FROM Professor p",
		"SELECT p.PName FROM Professor p WHERE p.Rank = 'Assistant'",
	} {
		q := parse(t, src)
		if _, ok, err := m.TryAnswer(q); ok || err != nil {
			t.Fatalf("%s: ok=%v err=%v, want a sound decline", src, ok, err)
		}
		// The engine falls back to the live plan and navigates.
		ans, err := eng.QueryCQ(parse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if ans.FromView || ans.Exec.AnsweredFromView {
			t.Fatalf("%s: answered from an unsound view", src)
		}
		if ans.Exec.Pages == 0 {
			t.Fatalf("%s: live fallback downloaded nothing", src)
		}
	}
	c := m.Counters()
	if c.BindingRejections < 2 {
		t.Errorf("BindingRejections = %d, want >= 2", c.BindingRejections)
	}
	if c.Hits != 0 {
		t.Errorf("Hits = %d, want 0", c.Hits)
	}

	// The implied case still works, and matches the live answer.
	src := "SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'"
	rel, ok, err := m.TryAnswer(parse(t, src))
	if err != nil || !ok {
		t.Fatalf("bound query: ok=%v err=%v", ok, err)
	}
	live, err := eng.QueryCQ(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.String() != live.Result.String() {
		t.Error("bound-view answer differs from the live answer")
	}
}

// TestStalePastHorizonRejected: a view older than the freshness horizon is
// unusable — the query falls back to the live plan — unless stale serving is
// explicitly allowed.
func TestStalePastHorizonRejected(t *testing.T) {
	clock := newManualClock()
	_, eng, m := fixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	eng.ViewAnswers = m
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"

	// Within the horizon the view answers.
	if _, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil {
		t.Fatalf("fresh view: ok=%v err=%v", ok, err)
	}

	// Past the horizon it must not.
	clock.Advance(2 * time.Hour)
	if _, ok, err := m.TryAnswer(parse(t, src)); ok || err != nil {
		t.Fatalf("stale view: ok=%v err=%v, want a decline", ok, err)
	}
	c := m.Counters()
	if c.StaleRejections != 1 || c.StaleAllowed != 0 {
		t.Errorf("counters %+v, want exactly 1 stale rejection", c)
	}
	ans, err := eng.QueryCQ(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if ans.FromView || ans.Exec.Pages == 0 {
		t.Errorf("stale fallback: FromView=%v pages=%d, want a live execution", ans.FromView, ans.Exec.Pages)
	}

	// A refresh renews the horizon: the same view answers again.
	if _, _, _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil {
		t.Fatalf("refreshed view: ok=%v err=%v", ok, err)
	}
}

// TestReapplyDoesNotRenewHorizon pins the guarantee behind -views-horizon:
// rebuilding extents from a never-revalidated store must NOT renew the
// freshness horizon — otherwise a periodic reselection would keep serving
// the original crawl as fresh forever. Only an actual store revalidation
// advances the clock.
func TestReapplyDoesNotRenewHorizon(t *testing.T) {
	clock := newManualClock()
	_, _, m := fixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	defs := []Def{{Relation: "Professor"}}
	if _, err := m.Apply(defs); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	clock.Advance(2 * time.Hour)

	// Re-applying the same decision rebuilds the extent, but from the same
	// unrevalidated crawl: still past the horizon.
	if _, err := m.Apply(defs); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); ok || err != nil {
		t.Fatalf("re-applied stale view answered: ok=%v err=%v, want a decline", ok, err)
	}

	// A store revalidation, by contrast, renews the horizon for the next Apply.
	if _, _, stale, err := m.RefreshStore(); err != nil || len(stale) > 0 {
		t.Fatalf("refresh store: stale=%v err=%v", stale, err)
	}
	if _, err := m.Apply(defs); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil {
		t.Fatalf("revalidated view: ok=%v err=%v, want an answer", ok, err)
	}
}

// flakyHead wraps a site server, failing HEAD for chosen URLs — the
// unreachable-page case of a refresh pass.
type flakyHead struct {
	site.Server
	mu   sync.Mutex
	fail map[string]bool
}

func (s *flakyHead) setFail(url string, bad bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail == nil {
		s.fail = make(map[string]bool)
	}
	s.fail[url] = bad
}

func (s *flakyHead) Head(url string) (site.Meta, error) {
	s.mu.Lock()
	bad := s.fail[url]
	s.mu.Unlock()
	if bad {
		return site.Meta{}, errors.New("flaky head")
	}
	return s.Server.Head(url) //lint:allow fetchgate test fault injector delegating to the wrapped server
}

// TestPartialRefreshKeepsHorizon: a refresh pass that left pages unverified
// (source unreachable) must not advance the verification clock — those pages
// are only as fresh as the previous full pass, so the rebuilt extents stay
// past the horizon until a pass verifies everything.
func TestPartialRefreshKeepsHorizon(t *testing.T) {
	clock := newManualClock()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHead{Server: ms}
	m := NewManager(fh, view.UniversityView(u.Scheme), ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"

	// Break one materialized page's HEAD and age past the horizon: the
	// refresh reports the page stale and must not renew the horizon.
	url := m.Store().Snapshot().URLs()[0]
	fh.setFail(url, true)
	clock.Advance(2 * time.Hour)
	if _, _, stale, err := m.Refresh(); err != nil || len(stale) == 0 {
		t.Fatalf("partial refresh: stale=%v err=%v, want stale pages and no error", stale, err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); ok || err != nil {
		t.Fatalf("partially refreshed view answered: ok=%v err=%v, want a decline", ok, err)
	}

	// Once the page is reachable again, a full pass renews the horizon.
	fh.setFail(url, false)
	if _, _, stale, err := m.Refresh(); err != nil || len(stale) != 0 {
		t.Fatalf("full refresh: stale=%v err=%v", stale, err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil {
		t.Fatalf("fully refreshed view: ok=%v err=%v, want an answer", ok, err)
	}
}

// TestAllowStaleServesPastHorizon: with AllowStale the stale view answers
// anyway and the serve is counted, mirroring §8's availability-over-freshness
// stance under an open breaker.
func TestAllowStaleServesPastHorizon(t *testing.T) {
	clock := newManualClock()
	_, eng, m := fixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, AllowStale: true, Clock: clock.Now},
	})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	rel, ok, err := m.TryAnswer(parse(t, src))
	if !ok || err != nil {
		t.Fatalf("stale-allowed: ok=%v err=%v", ok, err)
	}
	live, err := eng.QueryCQ(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.String() != live.Result.String() {
		t.Error("stale answer differs from live (site unchanged, so it must not)")
	}
	c := m.Counters()
	if c.StaleAllowed != 1 || c.Hits != 1 || c.StaleRejections != 0 {
		t.Errorf("counters %+v, want 1 stale-allowed hit", c)
	}
}

// TestPartialCoverageDeclines: a join query where only one atom has a view
// must fall back entirely — vanswer never mixes stored and live tuples.
func TestPartialCoverageDeclines(t *testing.T) {
	_, _, m := fixture(t, ManagerConfig{})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	q := parse(t, "SELECT ci.CName FROM CourseInstructor ci, Professor p WHERE ci.PName = p.PName")
	if _, ok, err := m.TryAnswer(q); ok || err != nil {
		t.Fatalf("ok=%v err=%v, want a decline (CourseInstructor has no view)", ok, err)
	}
	if c := m.Counters(); c.Misses != 1 {
		t.Errorf("Misses = %d, want 1", c.Misses)
	}
}

// TestBudgetSkipsOversizedExtents: the manager enforces the storage budget on
// measured extent bytes — a definition that does not fit is skipped, not
// truncated.
func TestBudgetSkipsOversizedExtents(t *testing.T) {
	_, _, m := fixture(t, ManagerConfig{Budget: 1})
	kept, err := m.Apply([]Def{{Relation: "Professor"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 0 {
		t.Fatalf("kept %v under a 1-byte budget, want nothing", kept)
	}
	if m.Bytes() != 0 {
		t.Errorf("Bytes() = %d, want 0", m.Bytes())
	}
	if _, ok, _ := m.TryAnswer(parse(t, "SELECT p.PName FROM Professor p")); ok {
		t.Error("answered from a view the budget should have excluded")
	}
}

// TestApplyRejectsUnknownDefinitions: unknown relations and attributes are
// configuration errors, reported rather than silently dropped.
func TestApplyRejectsUnknownDefinitions(t *testing.T) {
	_, _, m := fixture(t, ManagerConfig{})
	if _, err := m.Apply([]Def{{Relation: "Nonexistent"}}); err == nil {
		t.Error("unknown relation: want an error")
	}
	if _, err := m.Apply([]Def{{Relation: "Professor", Bindings: []Binding{{Attr: "Salary", Val: "1"}}}}); err == nil {
		t.Error("unknown attribute: want an error")
	}
}

// TestTightestBindingPreferred: with both the unbound extent and a bound one
// available, a query implying the binding is served from the smaller bound
// extent (same answer, less storage scanned).
func TestTightestBindingPreferred(t *testing.T) {
	_, eng, m := fixture(t, ManagerConfig{})
	full := Def{Relation: "Professor", Bindings: []Binding{{Attr: "Rank", Val: "Full"}}}
	if _, err := m.Apply([]Def{{Relation: "Professor"}, full}); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	rel, ok, err := m.TryAnswer(parse(t, src))
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	live, err := eng.QueryCQ(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.String() != live.Result.String() {
		t.Error("bound-extent answer differs from live")
	}
	// The unbound scan is still answerable (from the unbound extent).
	if _, ok, err := m.TryAnswer(parse(t, "SELECT p.PName FROM Professor p")); !ok || err != nil {
		t.Fatalf("unbound: ok=%v err=%v", ok, err)
	}
}
