package vanswer

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/cq"
	"ulixes/internal/matview"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/view"
)

// ManagerConfig tunes the manager.
type ManagerConfig struct {
	// Rewriter is the freshness/stale policy passed through to the
	// rewriter.
	Rewriter Config
	// Budget caps the summed extent bytes of the applied views; 0 means
	// unlimited. Apply keeps the given order (callers pass candidates best
	// first) and skips views that would exceed the budget.
	Budget int64
	// Schemes, when non-empty, scopes the backing matview store to those
	// page-schemes (§8's "views over portions of the Web"); nil materializes
	// the whole site.
	Schemes []string
}

// Manager owns the machinery behind view answering: a lazily created
// matview.Store (the §8 materialization, crawled on first use), the extents
// it derives from store snapshots — one per applied view definition — and
// the Rewriter serving queries from them. It executes the selector's
// materialize/drop decisions and the refresh path.
type Manager struct {
	server site.Server
	scheme *adm.Scheme
	views  *view.Registry
	cfg    ManagerConfig
	rw     *Rewriter

	mu      sync.Mutex
	store   *matview.Store // created on first Apply; guarded by mu
	applied []Def          // current view definitions, in benefit order; guarded by mu
}

// NewManager creates a manager with no materialized views: every query
// misses until Apply installs some.
func NewManager(server site.Server, views *view.Registry, cfg ManagerConfig) *Manager {
	return &Manager{
		server: server,
		scheme: views.Scheme,
		views:  views,
		cfg:    cfg,
		rw:     NewRewriter(views, cfg.Rewriter),
	}
}

// TryAnswer implements the engine's view-answering hook.
func (m *Manager) TryAnswer(q *cq.Query) (*nested.Relation, bool, error) {
	return m.rw.TryAnswer(q)
}

// Counters returns the rewriter's decision counters.
func (m *Manager) Counters() Counters { return m.rw.Counters() }

// Bytes returns the summed storage footprint of the current extents.
func (m *Manager) Bytes() int64 { return m.rw.Bytes() }

// Applied returns the currently applied view definitions.
func (m *Manager) Applied() []Def {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Def(nil), m.applied...)
}

// Store exposes the backing matview store (nil before the first Apply), for
// maintenance counters and tests.
func (m *Manager) Store() *matview.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// StoreCounters returns the backing store's maintenance counters (zero
// before the first Apply).
func (m *Manager) StoreCounters() matview.Counters {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return matview.Counters{}
	}
	return st.Counters()
}

func (m *Manager) now() time.Time {
	if m.cfg.Rewriter.Clock != nil {
		return m.cfg.Rewriter.Clock()
	}
	return time.Now()
}

// ensureStore crawls the site into the backing store on first use.
func (m *Manager) ensureStore() (*matview.Store, error) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st != nil {
		return st, nil
	}
	st, err := matview.MaterializeSchemes(m.server, m.scheme, m.cfg.Schemes)
	if err != nil {
		return nil, fmt.Errorf("vanswer: materialization crawl: %w", err)
	}
	m.mu.Lock()
	if m.store == nil {
		m.store = st
	}
	st = m.store
	m.mu.Unlock()
	return st, nil
}

// normalize sorts a definition's bindings (canonical form) and validates it
// against the registry.
func (m *Manager) normalize(d Def) (Def, error) {
	rel := m.views.Relation(d.Relation)
	if rel == nil {
		return Def{}, fmt.Errorf("vanswer: unknown external relation %q", d.Relation)
	}
	attrs := make(map[string]bool, len(rel.Attrs))
	for _, a := range rel.Attrs {
		attrs[a] = true
	}
	out := Def{Relation: d.Relation, Bindings: append([]Binding(nil), d.Bindings...)}
	for _, b := range out.Bindings {
		if !attrs[b.Attr] {
			return Def{}, fmt.Errorf("vanswer: relation %q has no attribute %q", d.Relation, b.Attr)
		}
	}
	sort.Slice(out.Bindings, func(i, j int) bool { return out.Bindings[i].Attr < out.Bindings[j].Attr })
	return out, nil
}

// buildExtent computes one view's extent from a store snapshot: the
// relation's first default navigation evaluated purely locally, projected
// and renamed to the external attributes, then filtered by the binding
// pattern. No network is touched; an *matview.ErrNotMaterialized error
// means the snapshot does not cover the navigation.
func (m *Manager) buildExtent(sn *matview.Snapshot, d Def) (*View, error) {
	rel := m.views.Relation(d.Relation)
	nav := rel.Navs[0]
	raw, err := nalg.Eval(nav.Expr, m.scheme, sn.Source())
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	cols := make([]string, len(rel.Attrs))
	ren := make(map[string]string, len(rel.Attrs))
	for i, a := range rel.Attrs {
		cols[i] = nav.ColMap[a]
		ren[nav.ColMap[a]] = a
	}
	ext, err := raw.Project(dedupCols(cols))
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	ext, err = ext.Rename(ren)
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	for _, b := range d.Bindings {
		ext, err = ext.Select(nested.Eq(b.Attr, b.Val))
		if err != nil {
			return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
		}
	}
	var bytes int64
	for _, t := range ext.Tuples() {
		bytes += int64(len(t.Key()))
	}
	return &View{Def: d, Rel: ext, RefreshedAt: m.now(), Bytes: bytes}, nil
}

// Apply installs a new desired view set, in the given (best-first) order:
// the site is crawled into the backing store if this is the first call,
// each definition's extent is built from one consistent snapshot, and
// definitions whose ACTUAL extent bytes would exceed the budget are
// skipped — the budget is enforced on measured bytes, not estimates.
// Previously applied views not in the new set are dropped. It returns the
// definitions actually materialized.
func (m *Manager) Apply(defs []Def) ([]Def, error) {
	st, err := m.ensureStore()
	if err != nil {
		return nil, err
	}
	sn := st.Snapshot()
	var views []*View
	var kept []Def
	var total int64
	for _, d := range defs {
		nd, err := m.normalize(d)
		if err != nil {
			return nil, err
		}
		v, err := m.buildExtent(sn, nd)
		if err != nil {
			return nil, err
		}
		if m.cfg.Budget > 0 && total+v.Bytes > m.cfg.Budget {
			continue
		}
		total += v.Bytes
		views = append(views, v)
		kept = append(kept, nd)
	}
	m.rw.SetAll(views)
	m.mu.Lock()
	m.applied = kept
	m.mu.Unlock()
	return kept, nil
}

// Refresh runs the store's full consistency pass (§8's periodic refresh:
// one light connection per page, downloads only for changed pages) and
// rebuilds every applied extent from the refreshed snapshot, renewing the
// freshness horizon. It returns the store's refresh report.
func (m *Manager) Refresh() (updated, deleted int, stale []string, err error) {
	m.mu.Lock()
	st := m.store
	defs := append([]Def(nil), m.applied...)
	m.mu.Unlock()
	if st == nil {
		return 0, 0, nil, nil // nothing materialized yet
	}
	updated, deleted, stale, err = st.Refresh()
	if err != nil {
		return updated, deleted, stale, err
	}
	_, err = m.Apply(defs)
	return updated, deleted, stale, err
}
