package vanswer

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/cq"
	"ulixes/internal/matview"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/view"
)

// ManagerConfig tunes the manager.
type ManagerConfig struct {
	// Rewriter is the freshness/stale policy passed through to the
	// rewriter.
	Rewriter Config
	// Budget caps the summed extent bytes of the applied views; 0 means
	// unlimited. Apply keeps the given order (callers pass candidates best
	// first) and skips views that would exceed the budget.
	Budget int64
	// Schemes, when non-empty, scopes the backing matview store to those
	// page-schemes (§8's "views over portions of the Web"); nil materializes
	// the whole site.
	Schemes []string
}

// Manager owns the machinery behind view answering: a lazily created
// matview.Store (the §8 materialization, crawled on first use), the extents
// it derives from store snapshots — one per applied view definition — and
// the Rewriter serving queries from them. It executes the selector's
// materialize/drop decisions and the refresh path.
type Manager struct {
	server site.Server
	scheme *adm.Scheme
	views  *view.Registry
	cfg    ManagerConfig
	rw     *Rewriter

	// applyMu serializes Apply, Refresh and RefreshStore end to end, so the
	// served view set and the applied record always reflect one decision —
	// concurrent callers cannot interleave extent building with SetAll.
	applyMu sync.Mutex

	mu      sync.Mutex
	store   *matview.Store // created on first Apply; guarded by mu
	applied []Def          // current view definitions, in benefit order; guarded by mu
	// verifiedAt is the last instant every stored page is known to have been
	// verified against the live site: the initial materialization crawl, then
	// each fully successful Refresh. Extents are stamped with it, so merely
	// re-applying a view set does NOT renew the freshness horizon. guarded by mu
	verifiedAt time.Time
}

// NewManager creates a manager with no materialized views: every query
// misses until Apply installs some.
func NewManager(server site.Server, views *view.Registry, cfg ManagerConfig) *Manager {
	return &Manager{
		server: server,
		scheme: views.Scheme,
		views:  views,
		cfg:    cfg,
		rw:     NewRewriter(views, cfg.Rewriter),
	}
}

// TryAnswer implements the engine's view-answering hook.
func (m *Manager) TryAnswer(q *cq.Query) (*nested.Relation, bool, error) {
	return m.rw.TryAnswer(q)
}

// Counters returns the rewriter's decision counters.
func (m *Manager) Counters() Counters { return m.rw.Counters() }

// Bytes returns the summed storage footprint of the current extents.
func (m *Manager) Bytes() int64 { return m.rw.Bytes() }

// Applied returns the currently applied view definitions.
func (m *Manager) Applied() []Def {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Def(nil), m.applied...)
}

// Store exposes the backing matview store (nil before the first Apply), for
// maintenance counters and tests.
func (m *Manager) Store() *matview.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// StoreCounters returns the backing store's maintenance counters (zero
// before the first Apply).
func (m *Manager) StoreCounters() matview.Counters {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return matview.Counters{}
	}
	return st.Counters()
}

func (m *Manager) now() time.Time {
	if m.cfg.Rewriter.Clock != nil {
		return m.cfg.Rewriter.Clock()
	}
	return time.Now()
}

// ensureStore crawls the site into the backing store on first use.
func (m *Manager) ensureStore() (*matview.Store, error) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st != nil {
		return st, nil
	}
	at := m.now()
	st, err := matview.MaterializeSchemes(m.server, m.scheme, m.cfg.Schemes)
	if err != nil {
		return nil, fmt.Errorf("vanswer: materialization crawl: %w", err)
	}
	m.mu.Lock()
	if m.store == nil {
		m.store = st
		// Every page was just downloaded: verified no earlier than the
		// instant the crawl started.
		m.verifiedAt = at
	}
	st = m.store
	m.mu.Unlock()
	return st, nil
}

// normalize sorts a definition's bindings (canonical form) and validates it
// against the registry.
func (m *Manager) normalize(d Def) (Def, error) {
	rel := m.views.Relation(d.Relation)
	if rel == nil {
		return Def{}, fmt.Errorf("vanswer: unknown external relation %q", d.Relation)
	}
	attrs := make(map[string]bool, len(rel.Attrs))
	for _, a := range rel.Attrs {
		attrs[a] = true
	}
	out := Def{Relation: d.Relation, Bindings: append([]Binding(nil), d.Bindings...)}
	for _, b := range out.Bindings {
		if !attrs[b.Attr] {
			return Def{}, fmt.Errorf("vanswer: relation %q has no attribute %q", d.Relation, b.Attr)
		}
	}
	sort.Slice(out.Bindings, func(i, j int) bool { return out.Bindings[i].Attr < out.Bindings[j].Attr })
	return out, nil
}

// buildExtent computes one view's extent from a store snapshot: the
// relation's first default navigation evaluated purely locally, projected
// and renamed to the external attributes, then filtered by the binding
// pattern. No network is touched; an *matview.ErrNotMaterialized error
// means the snapshot does not cover the navigation. refreshedAt is the
// snapshot's verification bound, NOT the build time: rebuilding an extent
// from unrevalidated pages must not renew the freshness horizon.
func (m *Manager) buildExtent(sn *matview.Snapshot, d Def, refreshedAt time.Time) (*View, error) {
	rel := m.views.Relation(d.Relation)
	nav := rel.Navs[0]
	raw, err := nalg.Eval(nav.Expr, m.scheme, sn.Source())
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	cols := make([]string, len(rel.Attrs))
	ren := make(map[string]string, len(rel.Attrs))
	for i, a := range rel.Attrs {
		cols[i] = nav.ColMap[a]
		ren[nav.ColMap[a]] = a
	}
	ext, err := raw.Project(dedupCols(cols))
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	ext, err = ext.Rename(ren)
	if err != nil {
		return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
	}
	for _, b := range d.Bindings {
		ext, err = ext.Select(nested.Eq(b.Attr, b.Val))
		if err != nil {
			return nil, fmt.Errorf("vanswer: extent of %s: %w", d.Key(), err)
		}
	}
	var bytes int64
	for _, t := range ext.Tuples() {
		bytes += int64(len(t.Key()))
	}
	return &View{Def: d, Rel: ext, RefreshedAt: refreshedAt, Bytes: bytes}, nil
}

// Apply installs a new desired view set, in the given (best-first) order:
// the site is crawled into the backing store if this is the first call,
// each definition's extent is built from one consistent snapshot, and
// definitions whose ACTUAL extent bytes would exceed the budget are
// skipped — the budget is enforced on measured bytes, not estimates.
// Previously applied views not in the new set are dropped. It returns the
// definitions actually materialized.
//
// Extents are stamped with the store's last verification time, not the
// call time: Apply rebuilds from whatever the store holds, so only a
// Refresh (or the initial crawl) renews the freshness horizon — re-applying
// a never-revalidated store keeps aging toward the horizon.
func (m *Manager) Apply(defs []Def) ([]Def, error) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.applyLocked(defs)
}

// applyLocked is Apply's body; callers hold applyMu.
func (m *Manager) applyLocked(defs []Def) ([]Def, error) {
	st, err := m.ensureStore()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	refreshedAt := m.verifiedAt
	m.mu.Unlock()
	sn := st.Snapshot()
	var views []*View
	var kept []Def
	var total int64
	for _, d := range defs {
		nd, err := m.normalize(d)
		if err != nil {
			return nil, err
		}
		v, err := m.buildExtent(sn, nd, refreshedAt)
		if err != nil {
			return nil, err
		}
		if m.cfg.Budget > 0 && total+v.Bytes > m.cfg.Budget {
			continue
		}
		total += v.Bytes
		views = append(views, v)
		kept = append(kept, nd)
	}
	m.rw.SetAll(views)
	m.mu.Lock()
	m.applied = kept
	m.mu.Unlock()
	return kept, nil
}

// ApplyChange applies one push-feed event to the materialization: the
// touched page alone is re-verified (or its row dropped, for removals), and
// when the local row actually changed the applied extents are rebuilt from
// the new snapshot. The freshness horizon is deliberately NOT renewed — one
// page being fresh says nothing about the rest; only a clean full sweep
// (AdvanceHorizon) or a full Refresh moves it. A nil store (nothing
// materialized yet) is a no-op. It reports whether the materialization
// changed.
func (m *Manager) ApplyChange(url, scheme string, removed bool) (bool, error) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.mu.Lock()
	st := m.store
	defs := append([]Def(nil), m.applied...)
	m.mu.Unlock()
	if st == nil {
		return false, nil
	}
	var changed bool
	var err error
	if removed {
		changed = st.RemoveURL(url)
	} else {
		changed, err = st.RefreshURL(url, scheme)
	}
	if err != nil || !changed {
		return changed, err
	}
	_, aerr := m.applyLocked(defs)
	return true, aerr
}

// AdvanceHorizon records that every stored page was verified against the
// live site no earlier than at — the push feed's clean-sweep (or hook-mode
// verified-bound) signal. The freshness horizon renews and every current
// extent is restamped WITHOUT rebuilding: targeted ApplyChange calls already
// kept the rows current, so renewal is a metadata update, not a crawl.
// Instants not after the current bound are still forwarded to the rewriter
// (restamping is monotonic per view) but cannot move the bound backwards.
func (m *Manager) AdvanceHorizon(at time.Time) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.mu.Lock()
	if at.After(m.verifiedAt) {
		m.verifiedAt = at
	}
	m.mu.Unlock()
	m.rw.AdvanceRefreshed(at)
}

// RefreshStore runs the store's full consistency pass (§8's periodic
// refresh: one light connection per page, downloads only for changed pages)
// WITHOUT rebuilding extents — callers about to Apply a new view set use it
// to revalidate first, so the extents they build count as fresh. The
// verification clock advances only when every page was actually verified
// (no error, no stale leftovers); a partial pass keeps the old bound, since
// the unverified pages are only as fresh as the previous one. A nil store
// (nothing materialized yet) is a no-op.
func (m *Manager) RefreshStore() (updated, deleted int, stale []string, err error) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.refreshStoreLocked()
}

// refreshStoreLocked is RefreshStore's body; callers hold applyMu.
func (m *Manager) refreshStoreLocked() (updated, deleted int, stale []string, err error) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return 0, 0, nil, nil // nothing materialized yet
	}
	at := m.now() // every page is verified no earlier than the pass's start
	updated, deleted, stale, err = st.Refresh()
	if err != nil || len(stale) > 0 {
		return updated, deleted, stale, err
	}
	m.mu.Lock()
	m.verifiedAt = at
	m.mu.Unlock()
	return updated, deleted, stale, nil
}

// Refresh revalidates the store (RefreshStore) and rebuilds every applied
// extent from the refreshed snapshot, renewing the freshness horizon when
// the pass verified everything. It returns the store's refresh report.
func (m *Manager) Refresh() (updated, deleted int, stale []string, err error) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.mu.Lock()
	st := m.store
	defs := append([]Def(nil), m.applied...)
	m.mu.Unlock()
	if st == nil {
		return 0, 0, nil, nil // nothing materialized yet
	}
	updated, deleted, stale, err = m.refreshStoreLocked()
	if err != nil {
		return updated, deleted, stale, err
	}
	_, err = m.applyLocked(defs)
	return updated, deleted, stale, err
}
