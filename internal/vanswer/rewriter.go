// Package vanswer answers conjunctive queries from materialized views
// instead of navigating the live site — the missing half of §8: the store
// materializes, vanswer makes queries actually use it.
//
// A view here is the stored extent of one external relation, optionally
// under a binding pattern (a set of constant selections baked into the
// extent, à la Romero et al., "Equivalent Rewritings on Path Views with
// Binding Patterns": a NALG follow-chain is exactly a path view whose
// binding pattern is the selection pushed into it). The rewriter decides,
// per query atom, whether some stored view covers it soundly:
//
//   - the view's binding pattern must be a subset of the query's constant
//     selections on that atom (a view bound to Rank='Full' holds only the
//     full professors — it cannot answer an unbound professor scan, which
//     is the classic unsound-containment case);
//   - the view must be within its freshness horizon (stale views are
//     unusable unless stale-serving is explicitly allowed);
//   - every atom must be covered — vanswer never mixes stored and live
//     tuples inside one query, so the answer is exactly what the live plan
//     would compute over the materialized site state.
//
// Residual predicates (the query constants beyond the binding pattern, and
// all join conditions) are evaluated locally on the stored tuples. When no
// sound rewrite exists the caller falls back to the live NALG plan; the
// rewriter only ever *declines*, it never guesses.
package vanswer

import (
	"fmt"
	"sync"
	"time"

	"ulixes/internal/cq"
	"ulixes/internal/nested"
	"ulixes/internal/view"
)

// Binding is one constant selection of a view's binding pattern: the extent
// holds only tuples with Attr = Val.
type Binding struct {
	Attr string
	Val  string
}

// Def identifies a view: an external relation plus an optional binding
// pattern. Bindings are normalized (sorted by attribute) by the manager.
type Def struct {
	Relation string
	Bindings []Binding
}

// Key renders the definition canonically, for maps and display:
// "Professor[Rank='Full']".
func (d Def) Key() string {
	s := d.Relation
	if len(d.Bindings) > 0 {
		s += "["
		for i, b := range d.Bindings {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%s='%s'", b.Attr, b.Val)
		}
		s += "]"
	}
	return s
}

// View is one materialized view: the definition plus its stored extent
// (columns are the relation's external attributes), the refresh timestamp
// the freshness horizon is measured against, and the extent's storage cost.
type View struct {
	Def
	// Rel is the extent; its columns are the relation's external attributes.
	Rel *nested.Relation
	// RefreshedAt is when the extent was last built or refreshed.
	RefreshedAt time.Time
	// Bytes is the extent's storage footprint (summed canonical tuple
	// encodings).
	Bytes int64
}

// Counters tallies the rewriter's decisions. The statsexhaustive analyzer
// holds Add to covering every field.
type Counters struct {
	// Hits is the number of queries answered from views.
	Hits int
	// Misses is the number of queries that fell back to the live plan.
	Misses int
	// BindingRejections counts candidate views rejected because their
	// binding pattern was not implied by the query (the unsound-rewrite
	// case).
	BindingRejections int
	// StaleRejections counts candidate views rejected for being past the
	// freshness horizon.
	StaleRejections int
	// StaleAllowed counts queries answered from views past the horizon
	// because stale serving was explicitly allowed.
	StaleAllowed int
}

// Add folds another rewriter's counters into c.
func (c *Counters) Add(o Counters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.BindingRejections += o.BindingRejections
	c.StaleRejections += o.StaleRejections
	c.StaleAllowed += o.StaleAllowed
}

// Config tunes the rewriter.
type Config struct {
	// Horizon is the freshness horizon: a view whose RefreshedAt is older
	// than this is unusable. 0 means no horizon (views never expire).
	Horizon time.Duration
	// AllowStale serves views past the horizon anyway (counted in
	// Counters.StaleAllowed), for callers that prefer a fast degraded
	// answer over live navigation.
	AllowStale bool
	// Clock overrides the time source (nil means time.Now), so freshness
	// tests are deterministic.
	Clock func() time.Time
}

// Rewriter holds the current set of materialized views and answers queries
// from them. It is safe for concurrent use: TryAnswer reads an immutable
// view set snapshot, and Set/Drop replace entries under the lock.
type Rewriter struct {
	views *view.Registry
	cfg   Config

	mu       sync.Mutex
	byRel    map[string][]*View // guarded by mu
	counters Counters           // guarded by mu
}

// NewRewriter creates a rewriter over the external-view registry with no
// materialized views.
func NewRewriter(reg *view.Registry, cfg Config) *Rewriter {
	return &Rewriter{views: reg, cfg: cfg, byRel: make(map[string][]*View)}
}

func (r *Rewriter) now() time.Time {
	if r.cfg.Clock != nil {
		return r.cfg.Clock()
	}
	return time.Now()
}

// SetAll replaces the whole view set (the selector emits complete desired
// sets; drops are implicit).
func (r *Rewriter) SetAll(views []*View) {
	byRel := make(map[string][]*View)
	for _, v := range views {
		byRel[v.Relation] = append(byRel[v.Relation], v)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byRel = byRel
}

// AdvanceRefreshed restamps every current view as refreshed no earlier than
// the given instant — the push feed's clean-sweep signal: every stored page
// was just verified against the site, so the extents are exactly as fresh as
// a full Refresh would have made them, without rebuilding anything. Fresh
// View values and slices are installed rather than mutating the current ones
// in place, because TryAnswer iterates its candidate slice outside the lock.
func (r *Rewriter) AdvanceRefreshed(at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byRel := make(map[string][]*View, len(r.byRel))
	for rel, vs := range r.byRel {
		nvs := make([]*View, len(vs))
		for i, v := range vs {
			nv := *v
			if at.After(nv.RefreshedAt) {
				nv.RefreshedAt = at
			}
			nvs[i] = &nv
		}
		byRel[rel] = nvs
	}
	r.byRel = byRel
}

// Views returns the current views, grouped by relation (shared slices; do
// not mutate).
func (r *Rewriter) Views() []*View {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*View
	for _, vs := range r.byRel {
		out = append(out, vs...)
	}
	return out
}

// Bytes returns the summed storage footprint of the current views.
func (r *Rewriter) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, vs := range r.byRel {
		for _, v := range vs {
			total += v.Bytes
		}
	}
	return total
}

// Counters returns a snapshot of the decision counters.
func (r *Rewriter) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// expandStar mirrors the optimizer's star expansion exactly (same order,
// same collision-suffix rule), so a view-answered SELECT * has the same
// output columns as the live plan.
func (r *Rewriter) expandStar(q *cq.Query) (*cq.Query, error) {
	if !q.Star {
		return q, nil
	}
	counts := make(map[string]int)
	for _, atom := range q.From {
		rel := r.views.Relation(atom.Relation)
		if rel == nil {
			return nil, fmt.Errorf("vanswer: unknown external relation %q", atom.Relation)
		}
		for _, a := range rel.Attrs {
			counts[a]++
		}
	}
	out := *q
	out.Star = false
	for _, atom := range q.From {
		rel := r.views.Relation(atom.Relation)
		for _, a := range rel.Attrs {
			col := cq.OutCol{Attr: cq.AttrUse{Atom: atom.EffAlias(), Attr: a}}
			if counts[a] > 1 {
				col.As = atom.EffAlias() + "_" + a
			}
			out.Select = append(out.Select, col)
		}
	}
	return &out, nil
}

// usable picks the best current view for one atom given the query's
// constant selections on it: the freshest-possible view whose binding
// pattern is implied by the constants, preferring the most tightly bound
// extent (smallest storage scanned). It reports why candidates were
// rejected so the counters explain misses.
func (r *Rewriter) usable(relation string, consts map[string]string, now time.Time) (v *View, bindingRejected, staleRejected int, staleUsed bool) {
	r.mu.Lock()
	candidates := r.byRel[relation]
	r.mu.Unlock()
	var bestStale *View
	for _, c := range candidates {
		implied := true
		for _, b := range c.Bindings {
			if consts[b.Attr] != b.Val {
				implied = false
				break
			}
		}
		if !implied {
			bindingRejected++
			continue
		}
		fresh := r.cfg.Horizon <= 0 || now.Sub(c.RefreshedAt) <= r.cfg.Horizon
		if !fresh {
			if r.cfg.AllowStale {
				if bestStale == nil || len(c.Bindings) > len(bestStale.Bindings) {
					bestStale = c
				}
			} else {
				staleRejected++
			}
			continue
		}
		if v == nil || len(c.Bindings) > len(v.Bindings) {
			v = c
		}
	}
	if v == nil && bestStale != nil {
		return bestStale, bindingRejected, staleRejected, true
	}
	return v, bindingRejected, staleRejected, false
}

// TryAnswer attempts to answer the query from the current views. ok=false
// means no sound rewrite exists (or the query shape is not supported) and
// the caller must run the live plan; an error means the rewrite was chosen
// but local evaluation failed (callers should also fall back). The returned
// relation is byte-identical to what the live plan would produce over the
// materialized site state: same columns, same names, same set semantics.
func (r *Rewriter) TryAnswer(q *cq.Query) (*nested.Relation, bool, error) {
	if err := q.Validate(); err != nil {
		return r.miss(Counters{}) // let the live path report the error
	}
	q, err := r.expandStar(q)
	if err != nil {
		return r.miss(Counters{})
	}
	now := r.now()

	// Per-atom constant selections (alias → attr → value). A contradictory
	// pair of constants on one attribute makes the query's answer empty
	// either way, but the binding-implication test below needs one value per
	// attribute — decline and let the live plan handle it.
	constsOf := make(map[string]map[string]string, len(q.From))
	for _, a := range q.From {
		constsOf[a.EffAlias()] = make(map[string]string)
	}
	for _, c := range q.Consts {
		m := constsOf[c.Attr.Atom]
		if prev, dup := m[c.Attr.Attr]; dup && prev != c.Val {
			return r.miss(Counters{})
		}
		m[c.Attr.Attr] = c.Val
	}

	// Choose a view per atom; every atom must be covered.
	chosen := make([]*View, len(q.From))
	var tally Counters
	for i, a := range q.From {
		v, br, sr, staleUsed := r.usable(a.Relation, constsOf[a.EffAlias()], now)
		tally.BindingRejections += br
		tally.StaleRejections += sr
		if staleUsed {
			tally.StaleAllowed++
		}
		if v == nil {
			return r.miss(tally)
		}
		chosen[i] = v
	}

	rel, err := r.evaluate(q, chosen)
	if err != nil {
		_, _, _ = r.miss(tally)
		return nil, false, err
	}
	tally.Hits = 1
	r.mu.Lock()
	r.counters.Add(tally)
	r.mu.Unlock()
	return rel, true, nil
}

// miss records a fallback decision (plus any per-candidate rejection tally)
// and returns the standard decline triple.
func (r *Rewriter) miss(tally Counters) (*nested.Relation, bool, error) {
	tally.Misses = 1
	r.mu.Lock()
	r.counters.Add(tally)
	r.mu.Unlock()
	return nil, false, nil
}

// evaluate runs the rewritten query locally: per-atom selections on the
// stored extents, a left-deep join in FROM order, then the projection and
// rename the optimizer's translation would apply — mirrored exactly so the
// result is byte-identical to live execution.
func (r *Rewriter) evaluate(q *cq.Query, chosen []*View) (*nested.Relation, error) {
	aliasIdx := make(map[string]int, len(q.From))
	for i, a := range q.From {
		aliasIdx[a.EffAlias()] = i
	}
	// Per-atom plans: qualify extent columns with the atom alias, apply the
	// query's constant selections (a superset of the view's binding pattern
	// — re-applying bound constants is a no-op) and same-atom join
	// predicates.
	parts := make([]*nested.Relation, len(q.From))
	for i, a := range q.From {
		alias := a.EffAlias()
		ext := r.views.Relation(a.Relation)
		if ext == nil {
			return nil, fmt.Errorf("vanswer: unknown external relation %q", a.Relation)
		}
		ren := make(map[string]string, len(ext.Attrs))
		for _, attr := range ext.Attrs {
			ren[attr] = alias + "." + attr
		}
		rel, err := chosen[i].Rel.Rename(ren)
		if err != nil {
			return nil, err
		}
		for _, c := range q.Consts {
			if c.Attr.Atom != alias {
				continue
			}
			rel, err = rel.Select(nested.Eq(alias+"."+c.Attr.Attr, c.Val))
			if err != nil {
				return nil, err
			}
		}
		for _, j := range q.Joins {
			if j.Left.Atom != alias || j.Right.Atom != alias {
				continue
			}
			rel, err = rel.Select(nested.AttrPred{
				Left:  alias + "." + j.Left.Attr,
				Op:    nested.OpEq,
				Right: alias + "." + j.Right.Attr,
			})
			if err != nil {
				return nil, err
			}
		}
		parts[i] = rel
	}
	// Left-deep join in FROM order. A cross-atom condition applies when its
	// later atom joins in; the hash join handles the rest.
	joined := parts[0]
	for i := 1; i < len(parts); i++ {
		var conds []nested.EqCond
		for _, j := range q.Joins {
			li, ri := aliasIdx[j.Left.Atom], aliasIdx[j.Right.Atom]
			l, rr := j.Left, j.Right
			if li == ri {
				continue
			}
			if ri < li {
				li, ri = ri, li
				l, rr = rr, l
			}
			if ri != i {
				continue
			}
			conds = append(conds, nested.EqCond{
				Left:  l.Atom + "." + l.Attr,
				Right: rr.Atom + "." + rr.Attr,
			})
		}
		var err error
		joined, err = joined.Join(parts[i], conds)
		if err != nil {
			return nil, err
		}
	}
	// Final projection and rename, mirroring the optimizer's translation:
	// project the (deduplicated) source columns, then rename to the output
	// names. Two outputs projecting the same source attribute under
	// different names is the same error the optimizer reports — decline so
	// the live path surfaces it.
	cols := make([]string, len(q.Select))
	ren := make(map[string]string, len(q.Select))
	for i, out := range q.Select {
		col := out.Attr.Atom + "." + out.Attr.Attr
		cols[i] = col
		if col != out.EffName() {
			if prev, dup := ren[col]; dup && prev != out.EffName() {
				return nil, fmt.Errorf("vanswer: output columns %q and %q project the same source attribute %s", prev, out.EffName(), out.Attr)
			}
			ren[col] = out.EffName()
		}
	}
	out, err := joined.Project(dedupCols(cols))
	if err != nil {
		return nil, err
	}
	if len(ren) > 0 {
		out, err = out.Rename(ren)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func dedupCols(cols []string) []string {
	seen := make(map[string]bool, len(cols))
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
