package vanswer

import (
	"testing"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/engine"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// pushFixture is fixture plus the generated university, so tests can look up
// instance tuples to mutate.
func pushFixture(t *testing.T, cfg ManagerConfig) (*sitegen.University, *site.MemSite, *engine.Engine, *Manager) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	eng := engine.New(views, ms, stats.CollectInstance(u.Instance))
	return u, ms, eng, NewManager(ms, views, cfg)
}

// profPage returns the i-th professor's page URL and instance tuple.
func profPage(t *testing.T, u *sitegen.University, i int) (string, nested.Tuple) {
	t.Helper()
	for _, tup := range u.Instance.Relation(sitegen.ProfPage).Tuples() {
		if tup.MustGet("Name").String() == sitegen.ProfName(i) {
			return tup.MustGet(adm.URLAttr).String(), tup
		}
	}
	t.Fatalf("prof %d not found", i)
	return "", nested.Tuple{}
}

// TestApplyChangeRefreshesOnlyTouchedRow pins the incremental maintenance
// path: a push event re-verifies one page and rebuilds the applied extents,
// so the next view answer reflects the mutation — at the cost of a single
// download, without a full crawl.
func TestApplyChangeRefreshesOnlyTouchedRow(t *testing.T) {
	clock := newManualClock()
	u, ms, eng, m := pushFixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Emeritus'"
	if rel, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil || rel.Len() != 0 {
		t.Fatalf("pre-mutation: ok=%v err=%v, want an empty fresh answer", ok, err)
	}

	// Promote professor 0 on the live site and push the event.
	url, tup := profPage(t, u, 0)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	before := m.StoreCounters()
	changed, err := m.ApplyChange(url, sitegen.ProfPage, false)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("ApplyChange reported no change for a mutated page")
	}
	after := m.StoreCounters()
	if d := after.Downloads - before.Downloads; d != 1 {
		t.Fatalf("ApplyChange cost %d downloads, want 1", d)
	}

	// The rebuilt extent answers with the new tuple, byte-identical to live.
	rel, ok, err := m.TryAnswer(parse(t, src))
	if !ok || err != nil {
		t.Fatalf("post-mutation: ok=%v err=%v", ok, err)
	}
	live, err := eng.QueryCQ(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if live.Result.Len() != 1 {
		t.Fatalf("live answer has %d tuples, want 1", live.Result.Len())
	}
	if rel.String() != live.Result.String() {
		t.Fatalf("view answer diverged from live:\nview %s\nlive %s", rel, live.Result)
	}
}

// TestApplyChangeKeepsHorizon: one page being fresh says nothing about the
// rest — targeted refreshes must not renew the freshness horizon. A clean
// full sweep (AdvanceHorizon) renews it without rebuilding extents.
func TestApplyChangeKeepsHorizon(t *testing.T) {
	clock := newManualClock()
	u, ms, _, m := pushFixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
	clock.Advance(2 * time.Hour)

	url, tup := profPage(t, u, 0)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyChange(url, sitegen.ProfPage, false); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.TryAnswer(parse(t, src)); ok || err != nil {
		t.Fatalf("post-ApplyChange: ok=%v err=%v, want a stale decline", ok, err)
	}

	// A clean full sweep, by contrast, renews the horizon in place.
	m.AdvanceHorizon(clock.Now())
	if _, ok, err := m.TryAnswer(parse(t, src)); !ok || err != nil {
		t.Fatalf("post-AdvanceHorizon: ok=%v err=%v, want an answer", ok, err)
	}
}

// TestApplyChangeRemovalDropsTuples: a Removed event deletes the page's row
// and the rebuilt extent loses exactly that page's tuple.
func TestApplyChangeRemovalDropsTuples(t *testing.T) {
	u, ms, _, m := pushFixture(t, ManagerConfig{})
	if _, err := m.Apply([]Def{{Relation: "Professor"}}); err != nil {
		t.Fatal(err)
	}
	src := "SELECT p.PName FROM Professor p"
	rel, ok, err := m.TryAnswer(parse(t, src))
	if !ok || err != nil {
		t.Fatal(err)
	}
	before := rel.Len()

	// Remove a professor page AND its list entry, then push both events the
	// feed would deliver: the list page changed, the professor page is gone.
	url, _ := profPage(t, u, 1)
	ms.RemovePage(url)
	listTup, _ := u.Instance.Page(sitegen.ProfListPage, sitegen.UnivProfListURL)
	lv, _ := listTup.Get("ProfList")
	var newList nested.ListValue
	for _, e := range lv.(nested.ListValue) {
		if e.MustGet("ToProf").String() != url {
			newList = append(newList, e)
		}
	}
	if err := ms.UpdatePage(sitegen.ProfListPage, listTup.With("ProfList", newList)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyChange(sitegen.UnivProfListURL, sitegen.ProfListPage, false); err != nil {
		t.Fatal(err)
	}
	changed, err := m.ApplyChange(url, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("ApplyChange reported no change for a removal")
	}
	rel, ok, err = m.TryAnswer(parse(t, src))
	if !ok || err != nil {
		t.Fatal(err)
	}
	if rel.Len() != before-1 {
		t.Fatalf("post-removal answer has %d tuples, want %d", rel.Len(), before-1)
	}
	if _, ok := m.Store().Page(url); ok {
		t.Fatal("removed page still materialized")
	}
}

// TestAdvanceHorizonBeforeApplyIsSafe: pushing at a manager with no store or
// views must be a no-op, not a panic.
func TestAdvanceHorizonBeforeApplyIsSafe(t *testing.T) {
	clock := newManualClock()
	_, _, _, m := pushFixture(t, ManagerConfig{
		Rewriter: Config{Horizon: time.Hour, Clock: clock.Now},
	})
	m.AdvanceHorizon(clock.Now())
	if changed, err := m.ApplyChange("http://univ.example.edu/x.html", sitegen.ProfPage, false); changed || err != nil {
		t.Fatalf("ApplyChange before Apply: changed=%v err=%v, want a no-op", changed, err)
	}
}
