package rewrite

import (
	"strings"
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

func univRewriter(t *testing.T) (*sitegen.University, *Rewriter) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	return u, &Rewriter{WS: u.Scheme, Rules: AllRules}
}

// containsPlan reports whether any expression in the set renders to a
// string containing every given fragment.
func containsPlan(plans []nalg.Expr, fragments ...string) bool {
	for _, p := range plans {
		s := p.String()
		all := true
		for _, f := range fragments {
			if !strings.Contains(s, f) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func TestSplitCol(t *testing.T) {
	a, r, ok := splitCol("ProfPage.CourseList.ToCourse")
	if !ok || a != "ProfPage" || r != "CourseList.ToCourse" {
		t.Errorf("splitCol = %q %q %v", a, r, ok)
	}
	if _, _, ok := splitCol("NoDot"); ok {
		t.Error("splitCol of unqualified name should fail")
	}
	if _, _, ok := splitCol(".x"); ok {
		t.Error("empty alias should fail")
	}
	if _, _, ok := splitCol("x."); ok {
		t.Error("empty path should fail")
	}
}

func TestChainOf(t *testing.T) {
	u, _ := univRewriter(t)
	e := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	steps, ok := chainOf(e)
	if !ok || len(steps) != 4 {
		t.Fatalf("chainOf = %v %v", steps, ok)
	}
	if steps[0].kind != 'e' || steps[1].kind != 'u' || steps[2].kind != 'f' || steps[3].kind != 'u' {
		t.Errorf("step kinds wrong: %+v", steps)
	}
	if steps[2].target != sitegen.ProfPage || steps[2].relPath != "ProfList.ToProf" {
		t.Errorf("follow step = %+v", steps[2])
	}
	// Non-chains are rejected.
	sel := &nalg.Select{In: e, Pred: nested.Eq("ProfPage.Rank", "Full")}
	if _, ok := chainOf(sel); ok {
		t.Error("selection should break chain shape")
	}
}

func TestPrefixMatch(t *testing.T) {
	u, _ := univRewriter(t)
	long, _ := chainOf(nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild())
	short, _ := chainOf(nalg.FromAlias(u.Scheme, sitegen.ProfListPage, "plp2").Unnest("ProfList").FollowAs("ToProf", "pp2").MustBuild())
	m, ok := prefixMatch(long, short)
	if !ok {
		t.Fatal("prefix should match modulo aliases")
	}
	if m["pp2"] != "ProfPage" || m["plp2"] != "ProfListPage" {
		t.Errorf("alias map = %v", m)
	}
	// Not a prefix the other way.
	if _, ok := prefixMatch(short, long); ok {
		t.Error("longer chain cannot be a prefix of shorter")
	}
	other, _ := chainOf(nalg.From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").MustBuild())
	if _, ok := prefixMatch(long, other); ok {
		t.Error("different chains should not match")
	}
}

func TestCoversExtent(t *testing.T) {
	u, _ := univRewriter(t)
	if !coversExtent(u.Scheme, refOf("ProfListPage", "ProfList.ToProf")) {
		t.Error("ProfListPage covers professors")
	}
	if coversExtent(u.Scheme, refOf("CoursePage", "ToProf")) {
		t.Error("CoursePage.ToProf reaches only teaching professors")
	}
	if !coversExtent(u.Scheme, refOf("SessionPage", "CourseList.ToCourse")) {
		t.Error("SessionPage covers courses")
	}
	if coversExtent(u.Scheme, refOf("ProfPage", "CourseList.ToCourse")) {
		t.Error("ProfPage.CourseList does not cover courses")
	}
	if coversExtent(u.Scheme, refOf("ProfPage", "Name")) {
		t.Error("non-link attr cannot cover")
	}
}

func TestCoveringChain(t *testing.T) {
	u, _ := univRewriter(t)
	good := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").Unnest("CourseList").MustBuild()
	if !coveringChain(u.Scheme, good) {
		t.Error("session path should be covering")
	}
	// A chain through CoursePage.ToProf misses non-teaching professors.
	bad := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").
		Unnest("CourseList").Follow("ToCourse").Follow("ToProf").MustBuild()
	if coveringChain(u.Scheme, bad) {
		t.Error("path through courses should not be covering for professors")
	}
	// Selections break chain purity.
	sel := &nalg.Select{In: good, Pred: nested.Eq("SessionPage.Session", "Fall")}
	if coveringChain(u.Scheme, sel) {
		t.Error("selection should break covering-chain shape")
	}
}

func TestInstantiateAliases(t *testing.T) {
	u, _ := univRewriter(t)
	e := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	inst, aliasMap := InstantiateAliases(e, "a1")
	if aliasMap["ProfPage"] != "a1$ProfPage" {
		t.Errorf("alias map = %v", aliasMap)
	}
	sch, err := nalg.InferSchema(inst, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Has("a1$ProfPage.Name") || !sch.Has("a1$ProfListPage.ProfList.ProfName") {
		t.Errorf("instantiated schema = %s", sch)
	}
	// Two instantiations can be joined without collisions.
	inst2, _ := InstantiateAliases(e, "a2")
	j := &nalg.Join{L: inst, R: inst2, Conds: []nested.EqCond{{Left: "a1$ProfPage.Name", Right: "a2$ProfPage.Name"}}}
	if _, err := nalg.InferSchema(j, u.Scheme); err != nil {
		t.Errorf("join of instantiations should type-check: %v", err)
	}
}

func refOf(s, p string) adm.AttrRef { return adm.AttrRef{Scheme: s, Path: adm.ParsePath(p)} }

func TestRule3DropsUnnest(t *testing.T) {
	u, rw := univRewriter(t)
	e := &nalg.Project{
		In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		Cols: []string{"ProfListPage.Title"},
	}
	res := rw.rule3(e)
	if len(res) != 1 {
		t.Fatalf("rule3 results = %d", len(res))
	}
	if strings.Contains(res[0].e.String(), "◦") {
		t.Errorf("unnest should be gone: %s", res[0].e)
	}
	// Projection using promoted columns: rule must not fire.
	e2 := &nalg.Project{
		In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		Cols: []string{"ProfListPage.ProfList.ProfName"},
	}
	if len(rw.rule3(e2)) != 0 {
		t.Error("rule3 fired despite promoted column in projection")
	}
}

func TestRule4CollapsesRepeatedNavigation(t *testing.T) {
	u, rw := univRewriter(t)
	// Professor nav and CourseInstructor nav share the prefix
	// ProfListPage◦ProfList→ProfPage (Example 7.1 step 1b).
	profNav, _ := InstantiateAliases(
		nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(), "p")
	ciNav, _ := InstantiateAliases(
		nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild(), "ci")
	j := &nalg.Join{L: profNav, R: ciNav, Conds: []nested.EqCond{{
		Left: "p$ProfPage.Name", Right: "ci$ProfPage.Name",
	}}}
	res := rw.rule4(j)
	if len(res) != 1 {
		t.Fatalf("rule4 results = %d", len(res))
	}
	if !nalg.Equal(res[0].e, ciNav) {
		t.Errorf("rule4 should keep the longer chain:\n got %s\nwant %s", res[0].e, ciNav)
	}
	// The column map redirects the short side's columns.
	if res[0].colmap["p$ProfPage.Rank"] != "ci$ProfPage.Rank" {
		t.Errorf("colmap = %v", res[0].colmap)
	}
	// Join on non-corresponding columns must not collapse.
	j2 := &nalg.Join{L: profNav, R: ciNav, Conds: []nested.EqCond{{
		Left: "p$ProfPage.Name", Right: "ci$ProfPage.Email",
	}}}
	if len(rw.rule4(j2)) != 0 {
		t.Error("rule4 fired on mismatched condition")
	}
}

func TestRule4SymmetricOrientation(t *testing.T) {
	u, rw := univRewriter(t)
	shorter, _ := InstantiateAliases(
		nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(), "p")
	longer, _ := InstantiateAliases(
		nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild(), "ci")
	// Longer on the left this time.
	j := &nalg.Join{L: longer, R: shorter, Conds: []nested.EqCond{{
		Left: "ci$ProfPage.Name", Right: "p$ProfPage.Name",
	}}}
	res := rw.rule4(j)
	if len(res) != 1 || !nalg.Equal(res[0].e, longer) {
		t.Fatalf("rule4 should collapse with follow on the left too: %v", res)
	}
}

func TestRule5DropsNavigation(t *testing.T) {
	u, rw := univRewriter(t)
	e := &nalg.Project{
		In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
		Cols: []string{"ProfListPage.ProfList.ProfName"},
	}
	res := rw.rule5(e)
	if len(res) != 1 {
		t.Fatalf("rule5 results = %d", len(res))
	}
	if strings.Contains(res[0].e.String(), "→") {
		t.Errorf("navigation should be gone: %s", res[0].e)
	}
	// Projection on target columns: must not fire.
	e2 := &nalg.Project{
		In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
		Cols: []string{"ProfPage.Name"},
	}
	if len(rw.rule5(e2)) != 0 {
		t.Error("rule5 fired despite projected target column")
	}
}

func TestRule6ConstraintPush(t *testing.T) {
	u, rw := univRewriter(t)
	// σ SessionPage.Session='Fall' over →ToSes: link constraint
	// SessionListPage.SesList.Session = SessionPage.Session lets the
	// selection move before the navigation.
	nav := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
	sel := &nalg.Select{In: nav, Pred: nested.Eq("SessionPage.Session", "Fall")}
	res := rw.rule6(sel)
	found := false
	for _, r := range res {
		if strings.Contains(r.e.String(), "σ[SessionListPage.SesList.Session='Fall']") &&
			strings.Index(r.e.String(), "σ") < strings.Index(r.e.String(), "→") {
			found = true
		}
	}
	if !found {
		t.Errorf("constraint-based push missing from %d results", len(res))
	}
}

func TestRule6PlainCommutations(t *testing.T) {
	u, rw := univRewriter(t)
	nav := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
	// Predicate on pre-navigation columns commutes below the follow.
	sel := &nalg.Select{In: nav, Pred: nested.Eq("SessionListPage.SesList.Session", "Fall")}
	res := rw.rule6(sel)
	if len(res) == 0 {
		t.Fatal("plain commutation should fire")
	}
	// Push through unnest.
	un := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").MustBuild()
	selU := &nalg.Select{In: un, Pred: nested.Eq("SessionListPage.Title", "Sessions")}
	if len(rw.rule6(selU)) == 0 {
		t.Error("push through unnest should fire")
	}
	// Push into join sides.
	l := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	r := nalg.From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").MustBuild()
	j := &nalg.Join{L: l, R: r, Conds: []nested.EqCond{{Left: "ProfListPage.ProfList.ProfName", Right: "DeptListPage.DeptList.DeptName"}}}
	selJ := &nalg.Select{In: j, Pred: nested.Eq("DeptListPage.DeptList.DeptName", "Computer Science")}
	resJ := rw.rule6(selJ)
	pushed := false
	for _, rr := range resJ {
		if jj, ok := rr.e.(*nalg.Join); ok {
			if _, isSel := jj.R.(*nalg.Select); isSel {
				pushed = true
			}
		}
	}
	if !pushed {
		t.Error("selection should push into the right join side")
	}
	// Selections commute with each other.
	ss := &nalg.Select{In: &nalg.Select{In: un, Pred: nested.Eq("SessionListPage.Title", "Sessions")}, Pred: nested.Eq("SessionListPage.SesList.Session", "Fall")}
	if len(rw.rule6(ss)) == 0 {
		t.Error("selections should commute")
	}
	// Selection pushes through projection when columns survive.
	pr := &nalg.Project{In: un, Cols: []string{"SessionListPage.SesList.Session", "SessionListPage.SesList.ToSes"}}
	sp := &nalg.Select{In: pr, Pred: nested.Eq("SessionListPage.SesList.Session", "Fall")}
	if len(rw.rule6(sp)) == 0 {
		t.Error("selection should push through projection")
	}
}

func TestRule7RewritesProjection(t *testing.T) {
	u, rw := univRewriter(t)
	// π ProfName over the professor navigation: the anchor in the list page
	// equals the name in the professor page.
	nav := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	p := &nalg.Project{In: nav, Cols: []string{"ProfPage.Name"}}
	res := rw.rule7(p)
	if len(res) != 1 {
		t.Fatalf("rule7 results = %d", len(res))
	}
	out := res[0].e.String()
	if !strings.Contains(out, "π[ProfListPage.ProfList.ProfName]") {
		t.Errorf("projection should use the anchor: %s", out)
	}
	if !strings.Contains(out, "ρ[ProfListPage.ProfList.ProfName→ProfPage.Name]") {
		t.Errorf("output name should be preserved by a rename: %s", out)
	}
}

func TestRule8PointerJoin(t *testing.T) {
	u, rw := univRewriter(t)
	// Example 7.1, step 1b → 1c: join course lists before navigating.
	left := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	right := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
	j := &nalg.Join{L: left, R: right, Conds: []nested.EqCond{{
		Left:  "ProfPage.CourseList.CName",
		Right: "CoursePage.CName",
	}}}
	res := rw.rule8(j)
	if len(res) != 1 {
		t.Fatalf("rule8 results = %d", len(res))
	}
	out, ok := res[0].e.(*nalg.Follow)
	if !ok {
		t.Fatalf("rule8 should produce a follow over a join: %s", res[0].e)
	}
	inner, ok := out.In.(*nalg.Join)
	if !ok {
		t.Fatalf("inner should be a join: %s", out.In)
	}
	// The inner join now equates the two pointer sets.
	cond := inner.Conds[len(inner.Conds)-1]
	if !(cond.Left == "ProfPage.CourseList.ToCourse" && cond.Right == "SessionPage.CourseList.ToCourse") &&
		!(cond.Right == "ProfPage.CourseList.ToCourse" && cond.Left == "SessionPage.CourseList.ToCourse") {
		t.Errorf("inner join should be on pointers: %v", inner.Conds)
	}
}

func TestRule8ViaURL(t *testing.T) {
	u, rw := univRewriter(t)
	// Condition directly on the URL of the followed page.
	left := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	right := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
	j := &nalg.Join{L: left, R: right, Conds: []nested.EqCond{{
		Left:  "ProfPage.CourseList.ToCourse",
		Right: "CoursePage.URL",
	}}}
	if len(rw.rule8(j)) == 0 {
		t.Error("rule8 should fire on URL comparison")
	}
}

func TestRule9PointerChase(t *testing.T) {
	u, rw := univRewriter(t)
	// Example 7.2 flavor: professors of the CS department joined against
	// the full professor navigation; the dept's pointers are included in
	// the list's pointers, so the join becomes a chase from the dept page.
	full := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	dept := nalg.From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild()
	j := &nalg.Join{L: full, R: dept, Conds: []nested.EqCond{{
		Left:  "ProfPage.Name",
		Right: "DeptPage.ProfList.ProfName",
	}}}
	res := rw.rule9(j)
	if len(res) != 1 {
		t.Fatalf("rule9 results = %d", len(res))
	}
	f, ok := res[0].e.(*nalg.Follow)
	if !ok {
		t.Fatalf("rule9 should produce a follow: %s", res[0].e)
	}
	if f.Link != "DeptPage.ProfList.ToProf" || f.Target != sitegen.ProfPage {
		t.Errorf("chase link = %s → %s", f.Link, f.Target)
	}
	if !nalg.Equal(f.In, dept) {
		t.Errorf("chase should start from the dept navigation: %s", f.In)
	}
}

func TestRule9RequiresInclusion(t *testing.T) {
	u, rw := univRewriter(t)
	// Inverted: the dept navigation does NOT include the full list, so the
	// full list cannot be chased from it.
	full := nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	dept := nalg.From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild()
	_ = full
	// Join in which the followed side is the dept path: chasing would use
	// ProfListPage pointers, requiring ProfList ⊆ DeptPage.ProfList, which
	// does not hold.
	deptFollow := &nalg.Follow{In: dept, Link: "DeptPage.ProfList.ToProf", Target: sitegen.ProfPage}
	list := nalg.FromAlias(u.Scheme, sitegen.ProfListPage, "plp2").Unnest("ProfList").MustBuild()
	j := &nalg.Join{L: deptFollow, R: list, Conds: []nested.EqCond{{
		Left:  "ProfPage.Name",
		Right: "plp2$ProfListPage.ProfList.ProfName",
	}}}
	_ = j
	// plp2$... alias isn't right; build instantiated version instead.
	inst, _ := InstantiateAliases(nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(), "x")
	j2 := &nalg.Join{L: deptFollow, R: inst, Conds: []nested.EqCond{{
		Left:  "ProfPage.Name",
		Right: "x$ProfListPage.ProfList.ProfName",
	}}}
	if len(rw.rule9(j2)) != 0 {
		t.Error("rule9 must not fire without the inclusion constraint")
	}
	// Rule 8 still applies there.
	if len(rw.rule8(j2)) == 0 {
		t.Error("rule8 should fire regardless of inclusion")
	}
}

func TestRule9RequiresCoveringChain(t *testing.T) {
	u, rw := univRewriter(t)
	// The followed side contains a selection: not a pure covering chain, so
	// dropping it would be unsound.
	restricted := &nalg.Select{
		In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		Pred: nested.Eq("ProfListPage.ProfList.ProfName", "Prof. 001"),
	}
	follow := &nalg.Follow{In: restricted, Link: "ProfListPage.ProfList.ToProf", Target: sitegen.ProfPage}
	dept := nalg.From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild()
	j := &nalg.Join{L: follow, R: dept, Conds: []nested.EqCond{{
		Left:  "ProfPage.Name",
		Right: "DeptPage.ProfList.ProfName",
	}}}
	if len(rw.rule9(j)) != 0 {
		t.Error("rule9 must not fire when the covering side is restricted")
	}
}

func TestExpandDedupAndValidate(t *testing.T) {
	u, rw := univRewriter(t)
	nav := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
	sel := &nalg.Select{In: nav, Pred: nested.Eq("SessionPage.Session", "Fall")}
	plans := rw.Expand([]nalg.Expr{sel}, 0)
	if len(plans) < 2 {
		t.Fatalf("expected several variants, got %d", len(plans))
	}
	seen := make(map[string]bool)
	for _, p := range plans {
		if seen[p.String()] {
			t.Error("duplicate plan in expansion")
		}
		seen[p.String()] = true
		if _, err := nalg.InferSchema(p, u.Scheme); err != nil {
			t.Errorf("invalid plan survived: %v", err)
		}
	}
	// The pushed variant must be present.
	if !containsPlan(plans, "σ[SessionListPage.SesList.Session='Fall']") {
		t.Error("pushed selection variant missing")
	}
}

func TestExpandRespectsLimit(t *testing.T) {
	u, rw := univRewriter(t)
	nav := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
	sel := &nalg.Select{In: nav, Pred: nested.Eq("SessionPage.Session", "Fall")}
	plans := rw.Expand([]nalg.Expr{sel}, 2)
	if len(plans) > 2 {
		t.Errorf("limit ignored: %d plans", len(plans))
	}
}

func TestExpandDisabledRules(t *testing.T) {
	u, _ := univRewriter(t)
	rw := &Rewriter{WS: u.Scheme, Rules: 0}
	nav := nalg.From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
	sel := &nalg.Select{In: nav, Pred: nested.Eq("SessionPage.Session", "Fall")}
	plans := rw.Expand([]nalg.Expr{sel}, 0)
	if len(plans) != 1 {
		t.Errorf("no rules enabled should yield only the seed, got %d", len(plans))
	}
}

func TestSubstCols(t *testing.T) {
	u, _ := univRewriter(t)
	e := &nalg.Select{
		In: &nalg.Project{
			In:   nalg.From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
			Cols: []string{"ProfListPage.ProfList.ProfName"},
		},
		Pred: nested.Eq("ProfListPage.ProfList.ProfName", "x"),
	}
	m := map[string]string{"ProfListPage.ProfList.ProfName": "Other.Name"}
	out := substCols(e, m)
	s := out.String()
	if strings.Contains(s, "ProfListPage.ProfList.ProfName") {
		t.Errorf("substitution incomplete: %s", s)
	}
	if !strings.Contains(s, "Other.Name") {
		t.Errorf("substitution missing: %s", s)
	}
	// Empty map is identity (same pointer).
	if substCols(e, nil) != e {
		t.Error("empty substitution should be identity")
	}
}

func TestRuleHas(t *testing.T) {
	r := Rule6 | Rule8
	if !r.Has(Rule6) || !r.Has(Rule8) || r.Has(Rule9) {
		t.Error("Rule.Has wrong")
	}
	if !AllRules.Has(Rule3) || !AllRules.Has(Rule9) {
		t.Error("AllRules incomplete")
	}
}
