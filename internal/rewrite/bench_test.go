package rewrite

import (
	"testing"

	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

// BenchmarkExpandSelectionPush measures the enumeration of selection-push
// variants over a mid-size plan.
func BenchmarkExpandSelectionPush(b *testing.B) {
	ws := sitegen.UniversityScheme()
	nav := nalg.From(ws, sitegen.SessionListPage).
		Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
	seed := &nalg.Select{In: nav, Pred: nested.Eq("CoursePage.Session", "Fall")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := &Rewriter{WS: ws, Rules: Rule6}
		plans := rw.Expand([]nalg.Expr{seed}, 0)
		if len(plans) < 2 {
			b.Fatal("expansion produced too few plans")
		}
	}
}

// BenchmarkRulePointerMatch measures the Rule 8/9 pattern matcher on the
// Example 7.1 join.
func BenchmarkRulePointerMatch(b *testing.B) {
	ws := sitegen.UniversityScheme()
	left := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	right := nalg.From(ws, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
	j := &nalg.Join{L: left, R: right, Conds: []nested.EqCond{{
		Left:  "ProfPage.CourseList.CName",
		Right: "CoursePage.CName",
	}}}
	rw := &Rewriter{WS: ws, Rules: AllRules}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rw.rule8(j)) == 0 || len(rw.rule9(j)) == 0 {
			b.Fatal("rules did not fire")
		}
	}
}

// BenchmarkCanonKey measures plan canonicalization, the dedup hot path.
func BenchmarkCanonKey(b *testing.B) {
	ws := sitegen.UniversityScheme()
	nav := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").Follow("ToCourse").MustBuild()
	inst, _ := InstantiateAliases(nav, "atom")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CanonKey(inst)
	}
}
