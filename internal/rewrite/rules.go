package rewrite

import (
	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
)

// Rule identifies one of the paper's rewriting rules (plus the standard
// commutations the paper folds into selection/projection pushing).
type Rule uint

// The rule inventory. Rule 1 (default navigation) is applied by the
// optimizer during query translation; Rule 2 (link-constraint join as
// navigation) is subsumed by Rules 8/9 in computable plans.
const (
	// Rule3 removes an unnest under a projection that uses none of the
	// promoted columns: π_X(R ◦ A) = π_X(R).
	Rule3 Rule = 1 << iota
	// Rule4 eliminates repeated navigations: a join of two navigations
	// where one is a prefix of the other collapses to the longer one.
	Rule4
	// Rule5 removes an unreferenced navigation under a projection when the
	// link is non-optional: π_X(R1 →L R2) = π_X(R1) with X ⊆ attrs(R1).
	Rule5
	// Rule6 pushes selections down, including through navigations using
	// link constraints: σ_{B=v}(R1 →L R2) = σ_{A=v}(R1) →L R2.
	Rule6
	// Rule7 rewrites projected target attributes to their link-constraint
	// sources: π_B(R1 →L R2) = ρ(π_A(R1 →L R2)), enabling Rule 5.
	Rule7
	// Rule8 is the pointer-join rewrite:
	// (R1 →L R3) ⋈_{R3.B=R2.A} R2 = (R1 ⋈_{R1.L=R2.L'} R2) →L R3.
	Rule8
	// Rule9 is the pointer-chase rewrite:
	// π_X((R1 →L R3) ⋈_{R3.B=R2.A} R2) = π_X(R2 →L' R3), valid when
	// R2.L' ⊆ R1.L and R1 is a covering navigation.
	Rule9
	// RulePushJoin commutes a join below a navigation operator of one of
	// its sides when the conditions do not touch that operator's output:
	// (R ◦ A) ⋈ S = (R ⋈ S) ◦ A and (R →L P) ⋈ S = (R ⋈ S) →L P.
	// The paper folds these standard commutations into its "push joins"
	// phase; they expose the patterns Rules 8 and 9 fire on.
	RulePushJoin
)

// AllRules enables every rewriting rule.
const AllRules = Rule3 | Rule4 | Rule5 | Rule6 | Rule7 | Rule8 | Rule9 | RulePushJoin

// Has reports whether the set contains the rule.
func (r Rule) Has(x Rule) bool { return r&x != 0 }

// result is one outcome of firing a rule at a node: the replacement
// subtree, plus a column substitution the enclosing operators must apply
// (non-empty when the rewrite renames or removes column producers).
type result struct {
	e      nalg.Expr
	colmap map[string]string
	rule   Rule
	// pre is the scheme precondition the rule relied on; nil for purely
	// structural rewrites. Every result is re-validated against it before
	// being emitted (see validated in precond.go).
	pre *Precondition
}

// Rewriter applies the rule set against a web scheme.
type Rewriter struct {
	WS    *adm.Scheme
	Rules Rule
	// RecordAudit enables the application audit trail returned by Audit.
	RecordAudit bool

	// schemas caches inference results by node identity. Rewrites share
	// subtrees, so the cache hit rate is high during enumeration. A nil
	// entry records an inference failure.
	schemas map[nalg.Expr]*nalg.Schema
	// audit is the recorded rule applications (RecordAudit only).
	audit []Application
}

// schema is InferSchema that tolerates failure (rules simply don't fire)
// and memoizes by node identity, recursing through the cache so a subtree
// shared by thousands of candidate plans is inferred once.
func (rw *Rewriter) schema(e nalg.Expr) *nalg.Schema {
	if rw.schemas == nil {
		rw.schemas = make(map[nalg.Expr]*nalg.Schema)
	}
	if s, ok := rw.schemas[e]; ok {
		return s
	}
	kids := e.Children()
	schemas := make([]*nalg.Schema, len(kids))
	ok := true
	for i, k := range kids {
		if schemas[i] = rw.schema(k); schemas[i] == nil {
			ok = false
			break
		}
	}
	var s *nalg.Schema
	if ok {
		var err error
		s, err = nalg.InferNode(e, rw.WS, schemas)
		if err != nil {
			s = nil
		}
	}
	rw.schemas[e] = s
	return s
}

// ruleResults returns every rewrite the enabled rules produce at this node.
func (rw *Rewriter) ruleResults(e nalg.Expr) []result {
	var out []result
	if rw.Rules.Has(Rule3) {
		out = append(out, rw.rule3(e)...)
	}
	if rw.Rules.Has(Rule4) {
		out = append(out, rw.rule4(e)...)
	}
	if rw.Rules.Has(Rule5) {
		out = append(out, rw.rule5(e)...)
	}
	if rw.Rules.Has(Rule6) {
		out = append(out, rw.rule6(e)...)
	}
	if rw.Rules.Has(Rule7) {
		out = append(out, rw.rule7(e)...)
	}
	if rw.Rules.Has(Rule8) {
		out = append(out, rw.rule8(e)...)
	}
	if rw.Rules.Has(Rule9) {
		out = append(out, rw.rule9(e)...)
	}
	if rw.Rules.Has(RulePushJoin) {
		out = append(out, rw.pushJoin(e)...)
	}
	return rw.validated(e, out)
}

// pushJoin commutes a join below an Unnest or Follow on either side, when
// no join condition references what the operator produces (the promoted
// list fields, or the followed page's columns). Tuples dropped by the
// navigation (null links, empty lists) are dropped on both sides of the
// equation, so the commutation is exact.
func (rw *Rewriter) pushJoin(e nalg.Expr) []result {
	j, ok := e.(*nalg.Join)
	if !ok {
		return nil
	}
	var out []result
	condCols := make([]string, 0, len(j.Conds)*2)
	for _, c := range j.Conds {
		condCols = append(condCols, c.Left, c.Right)
	}
	referencesAny := func(inner *nalg.Schema, produced func(string) bool) bool {
		for _, col := range condCols {
			if produced(col) {
				return true
			}
		}
		_ = inner
		return false
	}
	push := func(side nalg.Expr, left bool) {
		switch x := side.(type) {
		case *nalg.Unnest:
			promoted := func(col string) bool {
				return len(col) > len(x.Attr) && col[:len(x.Attr)+1] == x.Attr+"."
			}
			if referencesAny(nil, promoted) {
				return
			}
			var inner *nalg.Join
			if left {
				inner = &nalg.Join{L: x.In, R: j.R, Conds: j.Conds}
			} else {
				inner = &nalg.Join{L: j.L, R: x.In, Conds: j.Conds}
			}
			out = append(out, result{e: &nalg.Unnest{In: inner, Attr: x.Attr}, rule: RulePushJoin})
		case *nalg.Follow:
			alias := x.EffAlias()
			produced := func(col string) bool {
				a, _, ok := splitCol(col)
				return ok && a == alias
			}
			if referencesAny(nil, produced) {
				return
			}
			var inner *nalg.Join
			if left {
				inner = &nalg.Join{L: x.In, R: j.R, Conds: j.Conds}
			} else {
				inner = &nalg.Join{L: j.L, R: x.In, Conds: j.Conds}
			}
			out = append(out, result{e: &nalg.Follow{In: inner, Link: x.Link, Target: x.Target, Alias: x.Alias}, rule: RulePushJoin})
		}
	}
	push(j.L, true)
	push(j.R, false)
	return out
}

// rule3: π_X(R ◦ A) = π_X(R) when no projected column is promoted by the
// unnest.
func (rw *Rewriter) rule3(e nalg.Expr) []result {
	p, ok := e.(*nalg.Project)
	if !ok {
		return nil
	}
	u, ok := p.In.(*nalg.Unnest)
	if !ok {
		return nil
	}
	inner := rw.schema(u.In)
	if inner == nil {
		return nil
	}
	for _, c := range p.Cols {
		if !inner.Has(c) {
			return nil // column produced by the unnest
		}
	}
	return []result{{e: &nalg.Project{In: u.In, Cols: p.Cols}, rule: Rule3}}
}

// rule4: Join(E1, E2, conds) where one side's navigation chain is a prefix
// of the other's and every condition equates corresponding columns of the
// shared prefix collapses to the longer chain. The merged side's columns
// are substituted throughout the enclosing expression.
//
// Soundness note: the paper states R ⋈_Y R = R for any non-nested Y; under
// set semantics this requires Y to determine the navigation tuple, which
// holds for the key-like attributes (names, URLs, anchors) the default
// navigations join on. The correspondence check below enforces that both
// sides reference the *same* attribute of the shared navigation.
func (rw *Rewriter) rule4(e nalg.Expr) []result {
	j, ok := e.(*nalg.Join)
	if !ok || len(j.Conds) == 0 {
		return nil
	}
	ls, ok1 := chainOf(j.L)
	rs, ok2 := chainOf(j.R)
	if !ok1 || !ok2 {
		return nil
	}
	try := func(long nalg.Expr, longSteps []step, short nalg.Expr, shortSteps []step, shortIsRight bool) []result {
		aliasMap, ok := prefixMatch(longSteps, shortSteps)
		if !ok {
			return nil
		}
		shortSch := rw.schema(short)
		longSch := rw.schema(long)
		if shortSch == nil || longSch == nil {
			return nil
		}
		colmap := aliasColMap(shortSch, aliasMap)
		// Every condition must equate a shared-prefix column with its
		// mapped counterpart.
		for _, c := range j.Conds {
			l, r := c.Left, c.Right
			if shortIsRight {
				// left col belongs to long, right col to short
				if realiasCol(r, aliasMap) != l {
					return nil
				}
			} else {
				if realiasCol(l, aliasMap) != r {
					return nil
				}
			}
		}
		return []result{{e: long, colmap: colmap, rule: Rule4}}
	}
	if res := try(j.L, ls, j.R, rs, true); res != nil {
		return res
	}
	return try(j.R, rs, j.L, ls, false)
}

// rule5: π_X(R1 →L R2) = π_X(R1) when no projected column comes from the
// followed page and the link is non-optional (every tuple of R1 navigates
// somewhere, so dropping the navigation loses nothing).
func (rw *Rewriter) rule5(e nalg.Expr) []result {
	p, ok := e.(*nalg.Project)
	if !ok {
		return nil
	}
	f, ok := p.In.(*nalg.Follow)
	if !ok {
		return nil
	}
	inner := rw.schema(f.In)
	if inner == nil {
		return nil
	}
	link, ok := inner.Col(f.Link)
	if !ok || link.Optional {
		return nil
	}
	for _, c := range p.Cols {
		if !inner.Has(c) {
			return nil
		}
	}
	linkRef := link.Ref()
	return []result{{
		e:    &nalg.Project{In: f.In, Cols: p.Cols},
		rule: Rule5,
		pre:  &Precondition{Rule: Rule5, NonOptionalLink: &linkRef},
	}}
}

// rule6 pushes selections down: through projections, joins, unnests and
// navigations (plain commutation when the predicate's columns exist below;
// link-constraint translation σ_{B=v}(R1 →L R2) = σ_{A=v}(R1) →L R2 when
// they do not).
func (rw *Rewriter) rule6(e nalg.Expr) []result {
	s, ok := e.(*nalg.Select)
	if !ok {
		return nil
	}
	var out []result
	attrs := s.Pred.Attrs(nil)
	switch in := s.In.(type) {
	case *nalg.Select:
		// Commute two selections (lets a pushable one reach its operator).
		out = append(out, result{
			e:    &nalg.Select{In: &nalg.Select{In: in.In, Pred: s.Pred}, Pred: in.Pred},
			rule: Rule6,
		})
	case *nalg.Project:
		if inner := rw.schema(in.In); inner != nil && hasAll(inner, attrs) {
			out = append(out, result{
				e:    &nalg.Project{In: &nalg.Select{In: in.In, Pred: s.Pred}, Cols: in.Cols},
				rule: Rule6,
			})
		}
	case *nalg.Unnest:
		if inner := rw.schema(in.In); inner != nil && hasAll(inner, attrs) {
			out = append(out, result{
				e:    &nalg.Unnest{In: &nalg.Select{In: in.In, Pred: s.Pred}, Attr: in.Attr},
				rule: Rule6,
			})
		}
	case *nalg.Join:
		if ls := rw.schema(in.L); ls != nil && hasAll(ls, attrs) {
			out = append(out, result{
				e:    &nalg.Join{L: &nalg.Select{In: in.L, Pred: s.Pred}, R: in.R, Conds: in.Conds},
				rule: Rule6,
			})
		}
		if rs := rw.schema(in.R); rs != nil && hasAll(rs, attrs) {
			out = append(out, result{
				e:    &nalg.Join{L: in.L, R: &nalg.Select{In: in.R, Pred: s.Pred}, Conds: in.Conds},
				rule: Rule6,
			})
		}
	case *nalg.Follow:
		if inner := rw.schema(in.In); inner != nil {
			if hasAll(inner, attrs) {
				// Plain commutation: the predicate doesn't need the page.
				out = append(out, result{
					e:    &nalg.Follow{In: &nalg.Select{In: in.In, Pred: s.Pred}, Link: in.Link, Target: in.Target, Alias: in.Alias},
					rule: Rule6,
				})
			} else if cp, ok := s.Pred.(nested.ConstPred); ok && cp.Op == nested.OpEq {
				// Link-constraint translation (Rule 6 proper).
				if srcCol, lc, ok := rw.constraintSource(in, cp.Attr); ok {
					out = append(out, result{
						e: &nalg.Follow{
							In:     &nalg.Select{In: in.In, Pred: nested.ConstPred{Attr: srcCol, Op: nested.OpEq, Val: cp.Val}},
							Link:   in.Link,
							Target: in.Target,
							Alias:  in.Alias,
						},
						rule: Rule6,
						pre:  &Precondition{Rule: Rule6, Constraint: &lc},
					})
				}
			}
		}
	}
	return out
}

// constraintSource resolves a selection on a followed page's attribute
// (column "alias.B") to the equivalent source column before the follow,
// using the link constraint attached to the followed link. It returns the
// source column name in the follow's input schema along with the constraint
// relied on, which the caller records as the rewrite's precondition.
func (rw *Rewriter) constraintSource(f *nalg.Follow, col string) (string, adm.LinkConstraint, bool) {
	alias, rel, ok := splitCol(col)
	if !ok || alias != f.EffAlias() {
		return "", adm.LinkConstraint{}, false
	}
	inner := rw.schema(f.In)
	if inner == nil {
		return "", adm.LinkConstraint{}, false
	}
	linkCol, ok := inner.Col(f.Link)
	if !ok {
		return "", adm.LinkConstraint{}, false
	}
	c, ok := rw.WS.LinkConstraintFor(linkCol.Ref())
	if !ok || c.TgtAttr != rel {
		return "", adm.LinkConstraint{}, false
	}
	// The source attribute's column is the link owner's alias + SrcAttr.
	srcCol := linkCol.Alias + "." + c.SrcAttr.String()
	if !inner.Has(srcCol) {
		return "", adm.LinkConstraint{}, false
	}
	return srcCol, c, true
}

// rule7: π_{...,B,...}(R1 →L R2) where B is a target attribute with link
// constraint A = B rewrites the projected column to the source A, renaming
// the output back to B's name. With all target columns rewritten, Rule 5
// can then drop the navigation.
func (rw *Rewriter) rule7(e nalg.Expr) []result {
	p, ok := e.(*nalg.Project)
	if !ok {
		return nil
	}
	f, ok := p.In.(*nalg.Follow)
	if !ok {
		return nil
	}
	var out []result
	for i, col := range p.Cols {
		srcCol, lc, ok := rw.constraintSource(f, col)
		if !ok || srcCol == col {
			continue
		}
		cols := append([]string(nil), p.Cols...)
		cols[i] = srcCol
		if containsDup(cols) {
			continue
		}
		out = append(out, result{
			e: &nalg.Rename{
				In:  &nalg.Project{In: f, Cols: cols},
				Map: map[string]string{srcCol: col},
			},
			rule: Rule7,
			pre:  &Precondition{Rule: Rule7, Constraint: &lc},
		})
	}
	return out
}

func containsDup(cols []string) bool {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if seen[c] {
			return true
		}
		seen[c] = true
	}
	return false
}

func hasAll(s *nalg.Schema, attrs []string) bool {
	for _, a := range attrs {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// pointerPattern captures the shared shape of Rules 8 and 9: a join whose
// one side is a navigation R1 →L R3 and whose conditions compare columns of
// the followed page R3 with columns of the other side R2 that carry (via a
// link constraint or directly via the URL) pointers L' to R3.
type pointerPattern struct {
	j *nalg.Join
	// f is the Follow side (R1 →L R3); other is R2.
	f     *nalg.Follow
	other nalg.Expr
	// followLeft reports whether f is the join's left operand.
	followLeft bool
	// l1Col is R1's link column; l2Col is R2's pointer column to R3.
	l1Col, l2Col nalg.Col
	// lc is the link constraint that matched the pointer column, when the
	// anchor form applied (nil for a direct URL comparison).
	lc *adm.LinkConstraint
	// otherConds are the conditions not consumed by the rewrite.
	otherConds []nested.EqCond
}

// matchPointer recognizes the Rule 8/9 pattern at a join node. Every
// condition referencing the followed page must resolve to the same pointer
// column of the other side.
func (rw *Rewriter) matchPointer(e nalg.Expr) []pointerPattern {
	j, ok := e.(*nalg.Join)
	if !ok || len(j.Conds) == 0 {
		return nil
	}
	var out []pointerPattern
	try := func(f *nalg.Follow, other nalg.Expr, followLeft bool) {
		fSch := rw.schema(f)
		oSch := rw.schema(other)
		if fSch == nil || oSch == nil {
			return
		}
		inner := rw.schema(f.In)
		if inner == nil {
			return
		}
		l1Col, ok := inner.Col(f.Link)
		if !ok {
			return
		}
		tAlias := f.EffAlias()
		var l2 *nalg.Col
		var l2c *adm.LinkConstraint
		var rest []nested.EqCond
		for _, c := range j.Conds {
			// Normalize so tCol is the followed-page column.
			tName, oName := c.Left, c.Right
			if !followLeft {
				tName, oName = c.Right, c.Left
			}
			tAliasOf, tRel, okT := splitCol(tName)
			if !okT || tAliasOf != tAlias {
				// Condition not on the followed page: keep as-is, unless it
				// references the follow side's earlier columns (fine).
				rest = append(rest, c)
				continue
			}
			oCol, ok := oSch.Col(oName)
			if !ok {
				return
			}
			cand, lc, ok := rw.pointerColFor(oSch, oCol, tRel, f.Target)
			if !ok {
				return
			}
			if l2 != nil && l2.Name != cand.Name {
				return // conditions disagree on the pointer column
			}
			l2, l2c = &cand, lc
		}
		if l2 == nil {
			return
		}
		out = append(out, pointerPattern{
			j: j, f: f, other: other, followLeft: followLeft,
			l1Col: l1Col, l2Col: *l2, lc: l2c, otherConds: rest,
		})
	}
	if f, ok := j.L.(*nalg.Follow); ok {
		try(f, j.R, true)
	}
	if f, ok := j.R.(*nalg.Follow); ok {
		try(f, j.L, false)
	}
	return out
}

// pointerColFor resolves a join condition R3.B = R2.A to R2's pointer
// column L' such that following L' lands on pages where B = A, i.e. either
// A is itself a link to R3's scheme compared against R3.URL, or A is the
// anchor of a link constraint A = B on some link L' of R2. In the anchor
// case the constraint is returned so the caller can record it as the
// rewrite's precondition.
func (rw *Rewriter) pointerColFor(oSch *nalg.Schema, oCol nalg.Col, tRel, target string) (nalg.Col, *adm.LinkConstraint, bool) {
	// Case 1: direct URL comparison.
	if tRel == adm.URLAttr && oCol.Type.Kind == nested.KindLink && oCol.Type.Target == target {
		return oCol, nil, true
	}
	// Case 2: anchor comparison via a link constraint. Find a link column
	// of the same alias whose constraint says SrcAttr = oCol's path and
	// TgtAttr = tRel.
	if oCol.Scheme == "" {
		return nalg.Col{}, nil, false
	}
	for _, cand := range oSch.Cols {
		if cand.Alias != oCol.Alias || cand.Type.Kind != nested.KindLink || cand.Type.Target != target {
			continue
		}
		lc, ok := rw.WS.LinkConstraintFor(cand.Ref())
		if !ok {
			continue
		}
		if lc.TgtAttr == tRel && lc.SrcAttr.Equal(oCol.Path) {
			return cand, &lc, true
		}
	}
	return nalg.Col{}, nil, false
}

// rule8 (pointer join): join the two pointer sets before navigating:
// (R1 →L R3) ⋈_{R3.B=R2.A} R2 = (R1 ⋈_{R1.L=R2.L'} R2) →L R3.
func (rw *Rewriter) rule8(e nalg.Expr) []result {
	var out []result
	for _, m := range rw.matchPointer(e) {
		conds := append([]nested.EqCond(nil), m.otherConds...)
		var inner *nalg.Join
		if m.followLeft {
			conds = append(conds, nested.EqCond{Left: m.l1Col.Name, Right: m.l2Col.Name})
			inner = &nalg.Join{L: m.f.In, R: m.other, Conds: conds}
		} else {
			conds = append(conds, nested.EqCond{Left: m.l2Col.Name, Right: m.l1Col.Name})
			inner = &nalg.Join{L: m.other, R: m.f.In, Conds: conds}
		}
		out = append(out, result{
			e:    &nalg.Follow{In: inner, Link: m.f.Link, Target: m.f.Target, Alias: m.f.Alias},
			rule: Rule8,
			pre:  &Precondition{Rule: Rule8, Constraint: m.lc},
		})
	}
	return out
}

// rule9 (pointer chase): when R2's pointers are included in R1's
// (R2.L' ⊆ R1.L) and R1 is a covering selection-free navigation, the join
// is computed by simply chasing R2's links:
// π_X((R1 →L R3) ⋈_{R3.B=R2.A} R2) = π_X(R2 →L' R3).
// The enclosing expression must not reference R1's columns; the enumerator
// validates candidates by re-type-checking the whole tree.
func (rw *Rewriter) rule9(e nalg.Expr) []result {
	var out []result
	for _, m := range rw.matchPointer(e) {
		if len(m.otherConds) != 0 {
			continue
		}
		if !coveringChain(rw.WS, m.f.In) {
			continue
		}
		if !rw.WS.IncludedIn(m.l2Col.Ref(), m.l1Col.Ref()) {
			continue
		}
		sub, super := m.l2Col.Ref(), m.l1Col.Ref()
		out = append(out, result{
			e:    &nalg.Follow{In: m.other, Link: m.l2Col.Name, Target: m.f.Target, Alias: m.f.Alias},
			rule: Rule9,
			pre: &Precondition{
				Rule:          Rule9,
				Constraint:    m.lc,
				IncludedSub:   &sub,
				IncludedSuper: &super,
				Covering:      m.f.In,
			},
		})
	}
	return out
}
