package rewrite

import (
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
)

// step is one element of a pure navigation chain: an entry scan, an unnest,
// or a follow. Chains are the normal form of default navigations right
// after Rule 1; Rules 4 and 9 reason about them.
type step struct {
	kind byte // 'e' entry, 'u' unnest, 'f' follow
	// entry: scheme and URL.
	scheme string
	url    string
	// unnest/follow: the attribute path relative to the owning alias.
	relPath string
	// owner is the alias the attribute belongs to (unnest/follow).
	owner string
	// follow: target scheme.
	target string
	// alias introduced by the step (entry and follow steps).
	alias string
}

// sig is the alias-independent signature of a step, used to detect repeated
// navigations (Rule 4).
func (s step) sig() string {
	switch s.kind {
	case 'e':
		return "e:" + s.scheme + "@" + s.url
	case 'u':
		return "u:" + s.relPath
	default:
		return "f:" + s.relPath + ">" + s.target
	}
}

// chainOf decomposes a pure navigation chain (an EntryScan with only Unnest
// and Follow applied) into its steps, entry first. It reports ok=false for
// any other expression shape.
func chainOf(e nalg.Expr) (steps []step, ok bool) {
	switch x := e.(type) {
	case *nalg.EntryScan:
		return []step{{kind: 'e', scheme: x.Scheme, url: x.URL, alias: x.EffAlias()}}, true
	case *nalg.Unnest:
		in, ok := chainOf(x.In)
		if !ok {
			return nil, false
		}
		owner, rel, ok := splitCol(x.Attr)
		if !ok {
			return nil, false
		}
		return append(in, step{kind: 'u', relPath: rel, owner: owner}), true
	case *nalg.Follow:
		in, ok := chainOf(x.In)
		if !ok {
			return nil, false
		}
		owner, rel, ok := splitCol(x.Link)
		if !ok {
			return nil, false
		}
		return append(in, step{kind: 'f', relPath: rel, owner: owner, target: x.Target, alias: x.EffAlias()}), true
	default:
		return nil, false
	}
}

// splitCol splits a qualified column "alias.path.parts" into its alias and
// relative path. Aliases never contain dots.
func splitCol(col string) (alias, rel string, ok bool) {
	i := strings.IndexByte(col, '.')
	if i <= 0 || i == len(col)-1 {
		return "", "", false
	}
	return col[:i], col[i+1:], true
}

// prefixMatch reports whether the signature of short is a prefix of the
// signature of long, and if so returns the alias mapping from short's
// aliases to long's over the shared prefix.
func prefixMatch(long, short []step) (map[string]string, bool) {
	if len(short) > len(long) {
		return nil, false
	}
	aliasMap := make(map[string]string)
	for i, s := range short {
		l := long[i]
		if s.sig() != l.sig() {
			return nil, false
		}
		if s.kind == 'e' || s.kind == 'f' {
			aliasMap[s.alias] = l.alias
		}
	}
	return aliasMap, true
}

// aliasColMap expands an alias mapping into a full column substitution map
// over a schema: every column "a.rest" with a ∈ aliasMap maps to
// "aliasMap[a].rest".
func aliasColMap(sch *nalg.Schema, aliasMap map[string]string) map[string]string {
	m := make(map[string]string)
	for _, c := range sch.Cols {
		alias, rel, ok := splitCol(c.Name)
		if !ok {
			continue
		}
		if nn, ok := aliasMap[alias]; ok && nn != alias {
			m[c.Name] = nn + "." + rel
		}
	}
	return m
}

// CoversExtent reports whether navigating the link attribute ref reaches
// every reachable page of its target scheme (see coversExtent). Exported
// for default-navigation inference.
func CoversExtent(ws *adm.Scheme, ref adm.AttrRef) bool { return coversExtent(ws, ref) }

// CoveringChain reports whether a pure, selection-free navigation chain
// reaches the full extent of every page-scheme it traverses. Exported for
// default-navigation inference (§5: "by inference over inclusion
// constraints, the system might be able to select default navigations").
func CoveringChain(ws *adm.Scheme, e nalg.Expr) bool { return coveringChain(ws, e) }

// coversExtent reports whether navigating the link attribute ref reaches
// every reachable page of its target scheme: every other link attribute
// with the same target must be included in ref via the declared inclusion
// constraints. This is the soundness condition under which Rule 9 may drop
// the covering side of a join.
func coversExtent(ws *adm.Scheme, ref adm.AttrRef) bool {
	tgt, err := ws.LinkTarget(ref)
	if err != nil {
		return false
	}
	for _, other := range ws.Links() {
		ot, err := ws.LinkTarget(other)
		if err != nil || ot != tgt {
			continue
		}
		if !ws.IncludedIn(other, ref) {
			return false
		}
	}
	return true
}

// coveringChain reports whether a pure, selection-free navigation chain
// reaches the full extent of every page-scheme it traverses: every follow
// step's link attribute must cover its target's extent.
func coveringChain(ws *adm.Scheme, e nalg.Expr) bool {
	steps, ok := chainOf(e)
	if !ok {
		return false
	}
	// Track the page-scheme each alias scans so follow steps can be given
	// provenance without re-inferring schemas.
	schemeOf := make(map[string]string)
	pathOf := make(map[string]adm.Path) // alias -> unnest prefix consumed so far
	for _, s := range steps {
		switch s.kind {
		case 'e':
			schemeOf[s.alias] = s.scheme
		case 'u':
			// relPath is the full path of the list within the owner scheme.
			pathOf[s.owner] = adm.ParsePath(s.relPath)
		case 'f':
			owner, ok := schemeOf[s.owner]
			if !ok {
				return false
			}
			ref := adm.AttrRef{Scheme: owner, Path: adm.ParsePath(s.relPath)}
			if !coversExtent(ws, ref) {
				return false
			}
			schemeOf[s.alias] = s.target
		}
	}
	return true
}

// InstantiateAliases clones a navigation chain (optionally containing
// selections), prefixing every alias with "atom$" so the same default
// navigation can appear several times in one query without column
// collisions. It returns the rewritten expression together with the alias
// map applied.
func InstantiateAliases(e nalg.Expr, atom string) (nalg.Expr, map[string]string) {
	aliasMap := make(map[string]string)
	nalg.Walk(e, func(n nalg.Expr) {
		switch x := n.(type) {
		case *nalg.EntryScan:
			aliasMap[x.EffAlias()] = atom + "$" + x.EffAlias()
		case *nalg.Follow:
			aliasMap[x.EffAlias()] = atom + "$" + x.EffAlias()
		}
	})
	return realias(e, aliasMap), aliasMap
}

// realiasCol rewrites a qualified column under an alias map.
func realiasCol(name string, aliasMap map[string]string) string {
	if alias, rel, ok := splitCol(name); ok {
		if nn, ok := aliasMap[alias]; ok {
			return nn + "." + rel
		}
	}
	return name
}

// realias rewrites scan/follow aliases and all column references of a
// navigation expression under an alias map.
func realias(e nalg.Expr, aliasMap map[string]string) nalg.Expr {
	col := func(name string) string { return realiasCol(name, aliasMap) }
	switch x := e.(type) {
	case *nalg.EntryScan:
		a := x.EffAlias()
		if nn, ok := aliasMap[a]; ok {
			a = nn
		}
		return &nalg.EntryScan{Scheme: x.Scheme, URL: x.URL, Alias: a}
	case *nalg.Unnest:
		return &nalg.Unnest{In: realias(x.In, aliasMap), Attr: col(x.Attr)}
	case *nalg.Follow:
		a := x.EffAlias()
		if nn, ok := aliasMap[a]; ok {
			a = nn
		}
		return &nalg.Follow{In: realias(x.In, aliasMap), Link: col(x.Link), Target: x.Target, Alias: a}
	case *nalg.Select:
		return &nalg.Select{In: realias(x.In, aliasMap), Pred: substPredFn(x.Pred, col)}
	case *nalg.Project:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = col(c)
		}
		return &nalg.Project{In: realias(x.In, aliasMap), Cols: cols}
	case *nalg.Join:
		conds := make([]nested.EqCond, len(x.Conds))
		for i, c := range x.Conds {
			conds[i] = nested.EqCond{Left: col(c.Left), Right: col(c.Right)}
		}
		return &nalg.Join{L: realias(x.L, aliasMap), R: realias(x.R, aliasMap), Conds: conds}
	case *nalg.Rename:
		nm := make(map[string]string, len(x.Map))
		for old, nn := range x.Map {
			nm[col(old)] = nn
		}
		return &nalg.Rename{In: realias(x.In, aliasMap), Map: nm}
	default:
		return e
	}
}
