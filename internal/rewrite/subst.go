// Package rewrite implements the NALG rewriting rules of §6.1 of the paper
// (Rules 1–9) and the bounded exhaustive plan enumeration that Algorithm 1
// drives. Rules are whole-tree transformations: a rule fires at a node and
// may carry a column-substitution map that the enumerator applies to all
// enclosing operators (needed when a rewrite merges two navigations and one
// set of column names disappears).
package rewrite

import (
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
)

// substPred rewrites the column names a predicate references.
func substPred(p nested.Predicate, m map[string]string) nested.Predicate {
	switch q := p.(type) {
	case nested.ConstPred:
		if nn, ok := m[q.Attr]; ok {
			q.Attr = nn
		}
		return q
	case nested.AttrPred:
		if nn, ok := m[q.Left]; ok {
			q.Left = nn
		}
		if nn, ok := m[q.Right]; ok {
			q.Right = nn
		}
		return q
	case nested.AndPred:
		out := make(nested.AndPred, len(q))
		for i, sub := range q {
			out[i] = substPred(sub, m)
		}
		return out
	default:
		return p
	}
}

// substPredFn rewrites predicate column references through a function.
func substPredFn(p nested.Predicate, get func(string) string) nested.Predicate {
	switch q := p.(type) {
	case nested.ConstPred:
		q.Attr = get(q.Attr)
		return q
	case nested.AttrPred:
		q.Left = get(q.Left)
		q.Right = get(q.Right)
		return q
	case nested.AndPred:
		out := make(nested.AndPred, len(q))
		for i, sub := range q {
			out[i] = substPredFn(sub, get)
		}
		return out
	default:
		return p
	}
}

// substCols rewrites every column reference in an expression tree according
// to the map. It renames references only — aliases embedded in scans stay
// untouched, so it must only be used with maps produced by rules that
// eliminate the mapped columns' producer.
func substCols(e nalg.Expr, m map[string]string) nalg.Expr {
	if len(m) == 0 {
		return e
	}
	get := func(name string) string {
		if nn, ok := m[name]; ok {
			return nn
		}
		return name
	}
	switch x := e.(type) {
	case *nalg.ExtScan, *nalg.EntryScan:
		return e
	case *nalg.Unnest:
		return &nalg.Unnest{In: substCols(x.In, m), Attr: get(x.Attr)}
	case *nalg.Follow:
		return &nalg.Follow{In: substCols(x.In, m), Link: get(x.Link), Target: x.Target, Alias: x.Alias}
	case *nalg.Select:
		return &nalg.Select{In: substCols(x.In, m), Pred: substPred(x.Pred, m)}
	case *nalg.Project:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = get(c)
		}
		return &nalg.Project{In: substCols(x.In, m), Cols: cols}
	case *nalg.Join:
		conds := make([]nested.EqCond, len(x.Conds))
		for i, c := range x.Conds {
			conds[i] = nested.EqCond{Left: get(c.Left), Right: get(c.Right)}
		}
		return &nalg.Join{L: substCols(x.L, m), R: substCols(x.R, m), Conds: conds}
	case *nalg.Rename:
		nm := make(map[string]string, len(x.Map))
		for old, nn := range x.Map {
			nm[get(old)] = nn
		}
		return &nalg.Rename{In: substCols(x.In, m), Map: nm}
	default:
		return e
	}
}

// substNode rewrites the column references of a single node (not its
// children), plugging in the given children. It is the shallow counterpart
// of substCols used by the enumerator when a child rewrite carries a column
// map upward.
func substNode(e nalg.Expr, kids []nalg.Expr, m map[string]string) nalg.Expr {
	get := func(name string) string {
		if nn, ok := m[name]; ok {
			return nn
		}
		return name
	}
	switch x := e.(type) {
	case *nalg.Unnest:
		return &nalg.Unnest{In: kids[0], Attr: get(x.Attr)}
	case *nalg.Follow:
		return &nalg.Follow{In: kids[0], Link: get(x.Link), Target: x.Target, Alias: x.Alias}
	case *nalg.Select:
		return &nalg.Select{In: kids[0], Pred: substPred(x.Pred, m)}
	case *nalg.Project:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = get(c)
		}
		return &nalg.Project{In: kids[0], Cols: cols}
	case *nalg.Join:
		conds := make([]nested.EqCond, len(x.Conds))
		for i, c := range x.Conds {
			conds[i] = nested.EqCond{Left: get(c.Left), Right: get(c.Right)}
		}
		return &nalg.Join{L: kids[0], R: kids[1], Conds: conds}
	case *nalg.Rename:
		nm := make(map[string]string, len(x.Map))
		for old, nn := range x.Map {
			nm[get(old)] = nn
		}
		return &nalg.Rename{In: kids[0], Map: nm}
	default:
		return e
	}
}
