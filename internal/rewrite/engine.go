package rewrite

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ulixes/internal/nalg"
)

var aliasToken = regexp.MustCompile(`[A-Za-z0-9_]+\$[A-Za-z0-9_]+`)

// CanonKey renders an expression with instance aliases normalized to their
// order of first appearance. Plans that differ only in which atom's aliases
// survived a Rule 4 merge compute the same relation, so enumeration
// deduplicates on this key rather than the raw rendering.
func CanonKey(e nalg.Expr) string {
	s := e.String()
	if !strings.Contains(s, "$") {
		return s
	}
	next := 0
	seen := make(map[string]string)
	return aliasToken.ReplaceAllStringFunc(s, func(tok string) string {
		i := strings.IndexByte(tok, '$')
		atom, scheme := tok[:i], tok[i+1:]
		nn, ok := seen[atom]
		if !ok {
			nn = "a" + strconv.Itoa(next)
			next++
			seen[atom] = nn
		}
		return nn + "$" + scheme
	})
}

// DefaultMaxPlans bounds the plan set each expansion phase may produce.
// Conjunctive queries over a handful of external relations stay well under
// it; the bound is a safety valve against rule interactions.
const DefaultMaxPlans = 4096

// variants returns every whole-tree rewrite obtained by firing one enabled
// rule at one node of e. Column maps carried by a rewrite are applied to
// all enclosing operators on the way back up.
func (rw *Rewriter) variants(e nalg.Expr) []nalg.Expr {
	var out []nalg.Expr
	for _, r := range rw.ruleResults(e) {
		out = append(out, r.e)
	}
	kids := e.Children()
	for i, kid := range kids {
		for _, r := range rw.variantsWithMap(kid) {
			newKids := make([]nalg.Expr, len(kids))
			copy(newKids, kids)
			newKids[i] = r.e
			out = append(out, substNode(e, newKids, r.colmap))
		}
	}
	return out
}

// variantsWithMap is variants keeping the column maps, for recursion.
func (rw *Rewriter) variantsWithMap(e nalg.Expr) []result {
	out := rw.ruleResults(e)
	kids := e.Children()
	for i, kid := range kids {
		for _, r := range rw.variantsWithMap(kid) {
			newKids := make([]nalg.Expr, len(kids))
			copy(newKids, kids)
			newKids[i] = r.e
			out = append(out, result{e: substNode(e, newKids, r.colmap), colmap: r.colmap, rule: r.rule})
		}
	}
	return out
}

// Expand computes the closure of the seed expressions under the enabled
// rules, keeping only candidates that still type-check against the scheme.
// The result is deterministic (sorted by canonical rendering) and bounded
// by maxPlans.
func (rw *Rewriter) Expand(seeds []nalg.Expr, maxPlans int) []nalg.Expr {
	if maxPlans <= 0 {
		maxPlans = DefaultMaxPlans
	}
	seen := make(map[string]bool)
	var all []nalg.Expr
	var queue []nalg.Expr
	push := func(e nalg.Expr) {
		if rw.schema(e) == nil {
			return
		}
		k := CanonKey(e)
		if seen[k] {
			return
		}
		seen[k] = true
		all = append(all, e)
		queue = append(queue, e)
	}
	for _, s := range seeds {
		push(s)
	}
	for len(queue) > 0 && len(all) < maxPlans {
		cur := queue[0]
		queue = queue[1:]
		for _, v := range rw.variants(cur) {
			if len(all) >= maxPlans {
				break
			}
			push(v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].String() < all[j].String() })
	return all
}
