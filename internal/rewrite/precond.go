package rewrite

import (
	"fmt"
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
)

// ruleNames maps each single rule to its display name.
var ruleNames = []struct {
	r    Rule
	name string
}{
	{Rule3, "Rule 3"},
	{Rule4, "Rule 4"},
	{Rule5, "Rule 5"},
	{Rule6, "Rule 6"},
	{Rule7, "Rule 7"},
	{Rule8, "Rule 8"},
	{Rule9, "Rule 9"},
	{RulePushJoin, "push-join"},
}

// String renders a rule set, e.g. "Rule 6" or "Rule 3|Rule 5".
func (r Rule) String() string {
	var parts []string
	for _, rn := range ruleNames {
		if r.Has(rn.r) {
			parts = append(parts, rn.name)
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Rule(%#x)", uint(r))
	}
	return strings.Join(parts, "|")
}

// Precondition records the scheme facts one rule application relied on, so
// the application can be re-validated independently of the matching code
// that produced it. Structural rules (3, 4, push-join) depend only on plan
// shape, which the plan typechecker re-establishes; the constraint-driven
// rules record here exactly what they read off the scheme:
//
//   - Rule 5 drops a navigation because the link is declared non-optional;
//   - Rules 6 and 7 translate across a link via a declared link constraint;
//   - Rule 8's anchor form matches the pointer column via a link constraint;
//   - Rule 9 additionally needs the pointer inclusion L' ⊆ L and a
//     selection-free covering navigation on the dropped side.
//
// All fields are optional; a zero Precondition validates trivially.
type Precondition struct {
	// Rule is the rule that fired.
	Rule Rule
	// Constraint is the link constraint the rewrite translated across, as
	// read from the scheme at match time.
	Constraint *adm.LinkConstraint
	// NonOptionalLink is the link attribute that must be declared
	// non-optional for the navigation to be droppable (Rule 5).
	NonOptionalLink *adm.AttrRef
	// IncludedSub ⊆ IncludedSuper is the pointer-inclusion the chase
	// relies on (Rule 9).
	IncludedSub, IncludedSuper *adm.AttrRef
	// Covering is the selection-free covering navigation whose extent the
	// chase drops (Rule 9).
	Covering nalg.Expr
}

// Validate re-checks every recorded fact against the scheme. It returns nil
// when the scheme still supports the rewrite; the error names the first
// fact that no longer holds.
func (p *Precondition) Validate(ws *adm.Scheme) error {
	if p == nil {
		return nil
	}
	if c := p.Constraint; c != nil {
		got, ok := ws.LinkConstraintFor(c.Link)
		if !ok {
			return fmt.Errorf("rewrite: %s relied on link constraint %s, which the scheme does not declare", p.Rule, c)
		}
		if !got.SrcAttr.Equal(c.SrcAttr) || got.TgtAttr != c.TgtAttr {
			return fmt.Errorf("rewrite: %s relied on link constraint %s, but the scheme declares %s", p.Rule, c, got)
		}
	}
	if ref := p.NonOptionalLink; ref != nil {
		f, err := ws.ResolveField(ref.Scheme, ref.Path)
		if err != nil {
			return fmt.Errorf("rewrite: %s relied on link %s: %v", p.Rule, ref, err)
		}
		if f.Type.Kind != nested.KindLink {
			return fmt.Errorf("rewrite: %s relied on %s being a link, but it is %s", p.Rule, ref, f.Type)
		}
		if f.Optional {
			return fmt.Errorf("rewrite: %s relied on link %s being non-optional, but the scheme declares it optional", p.Rule, ref)
		}
	}
	if p.IncludedSub != nil && p.IncludedSuper != nil {
		if !ws.IncludedIn(*p.IncludedSub, *p.IncludedSuper) {
			return fmt.Errorf("rewrite: %s relied on the inclusion %s ⊆ %s, which the scheme does not imply", p.Rule, p.IncludedSub, p.IncludedSuper)
		}
	}
	if p.Covering != nil && !coveringChain(ws, p.Covering) {
		return fmt.Errorf("rewrite: %s relied on %s being a covering navigation", p.Rule, p.Covering)
	}
	return nil
}

// Application is the audit record of one rule firing: the site it fired at,
// what it produced, and the precondition it relied on (validated at
// application time).
type Application struct {
	// Rule is the rule that fired.
	Rule Rule
	// From is the node the rule matched; To is its replacement.
	From, To nalg.Expr
	// Pre is the recorded precondition; nil for purely structural rules.
	Pre *Precondition
}

// validated filters rule results to those whose precondition still holds
// against the scheme, recording the audit trail when enabled. Rules only
// emit rewrites they just established, so a validation failure here means
// the matching code and the recorded precondition disagree — a rule bug;
// the rewrite is dropped rather than propagated.
func (rw *Rewriter) validated(at nalg.Expr, results []result) []result {
	out := results[:0]
	for _, r := range results {
		if err := r.pre.Validate(rw.WS); err != nil {
			continue
		}
		if rw.RecordAudit {
			rw.audit = append(rw.audit, Application{Rule: r.rule, From: at, To: r.e, Pre: r.pre})
		}
		out = append(out, r)
	}
	return out
}

// Audit returns the applications recorded since the rewriter was created.
// Recording is off unless RecordAudit is set (enumeration fires rules tens
// of thousands of times).
func (rw *Rewriter) Audit() []Application { return rw.audit }
