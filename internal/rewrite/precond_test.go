package rewrite

import (
	"strings"
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

// dropLinkConstraint removes the link constraint on the given attribute.
func dropLinkConstraint(ws *adm.Scheme, ref adm.AttrRef) {
	kept := ws.LinkCs[:0]
	for _, c := range ws.LinkCs {
		if !(c.Link.Scheme == ref.Scheme && c.Link.Path.Equal(ref.Path)) {
			kept = append(kept, c)
		}
	}
	ws.LinkCs = kept
}

// dropInclusion removes the inclusion constraint sub ⊆ super.
func dropInclusion(ws *adm.Scheme, sub, super adm.AttrRef) {
	kept := ws.InclCs[:0]
	for _, c := range ws.InclCs {
		if !(c.Sub.Scheme == sub.Scheme && c.Sub.Path.Equal(sub.Path) &&
			c.Super.Scheme == super.Scheme && c.Super.Path.Equal(super.Path)) {
			kept = append(kept, c)
		}
	}
	ws.InclCs = kept
}

// markOptional flags the attribute at the path as optional in place.
func markOptional(t *testing.T, ws *adm.Scheme, scheme string, path adm.Path) {
	t.Helper()
	fields := ws.Page(scheme).Attrs
	for i, step := range path {
		for j := range fields {
			if fields[j].Name != step {
				continue
			}
			if i == len(path)-1 {
				fields[j].Optional = true
				return
			}
			fields = fields[j].Type.Elem
			break
		}
	}
	t.Fatalf("markOptional: %s.%s not found", scheme, path)
}

func ref(scheme, path string) adm.AttrRef {
	return adm.AttrRef{Scheme: scheme, Path: adm.ParsePath(path)}
}

// TestRulesRequirePreconditions removes, for each constraint-driven rule,
// exactly the scheme fact the rule relies on, and requires the rule to stop
// firing on a plan it fires on under the full scheme.
func TestRulesRequirePreconditions(t *testing.T) {
	type tc struct {
		name string
		// plan builds the expression the rule fires at.
		plan func(ws *adm.Scheme) nalg.Expr
		// fire runs the rule and reports how many rewrites it produced.
		fire func(rw *Rewriter, e nalg.Expr) int
		// weaken removes the precondition from the scheme.
		weaken func(t *testing.T, ws *adm.Scheme)
	}
	cases := []tc{
		{
			name: "rule5-needs-non-optional-link",
			plan: func(ws *adm.Scheme) nalg.Expr {
				return &nalg.Project{
					In:   nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
					Cols: []string{"ProfListPage.ProfList.ProfName"},
				}
			},
			fire: func(rw *Rewriter, e nalg.Expr) int { return len(rw.rule5(e)) },
			weaken: func(t *testing.T, ws *adm.Scheme) {
				markOptional(t, ws, sitegen.ProfListPage, adm.ParsePath("ProfList.ToProf"))
			},
		},
		{
			name: "rule6-needs-link-constraint",
			plan: func(ws *adm.Scheme) nalg.Expr {
				nav := nalg.From(ws, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild()
				return &nalg.Select{In: nav, Pred: nested.Eq("SessionPage.Session", "Fall")}
			},
			fire: func(rw *Rewriter, e nalg.Expr) int { return len(rw.rule6(e)) },
			weaken: func(t *testing.T, ws *adm.Scheme) {
				dropLinkConstraint(ws, ref(sitegen.SessionListPage, "SesList.ToSes"))
			},
		},
		{
			name: "rule7-needs-link-constraint",
			plan: func(ws *adm.Scheme) nalg.Expr {
				return &nalg.Project{
					In:   nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
					Cols: []string{"ProfPage.Name"},
				}
			},
			fire: func(rw *Rewriter, e nalg.Expr) int { return len(rw.rule7(e)) },
			weaken: func(t *testing.T, ws *adm.Scheme) {
				dropLinkConstraint(ws, ref(sitegen.ProfListPage, "ProfList.ToProf"))
			},
		},
		{
			name: "rule8-anchor-needs-link-constraint",
			plan: func(ws *adm.Scheme) nalg.Expr {
				left := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
				right := nalg.From(ws, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
				return &nalg.Join{L: left, R: right, Conds: []nested.EqCond{{
					Left:  "ProfPage.CourseList.CName",
					Right: "CoursePage.CName",
				}}}
			},
			fire: func(rw *Rewriter, e nalg.Expr) int { return len(rw.rule8(e)) },
			weaken: func(t *testing.T, ws *adm.Scheme) {
				dropLinkConstraint(ws, ref(sitegen.ProfPage, "CourseList.ToCourse"))
			},
		},
		{
			name: "rule9-needs-inclusion",
			plan: func(ws *adm.Scheme) nalg.Expr {
				full := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
				dept := nalg.From(ws, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild()
				return &nalg.Join{L: full, R: dept, Conds: []nested.EqCond{{
					Left:  "ProfPage.Name",
					Right: "DeptPage.ProfList.ProfName",
				}}}
			},
			fire: func(rw *Rewriter, e nalg.Expr) int { return len(rw.rule9(e)) },
			weaken: func(t *testing.T, ws *adm.Scheme) {
				dropInclusion(ws,
					ref(sitegen.DeptPage, "ProfList.ToProf"),
					ref(sitegen.ProfListPage, "ProfList.ToProf"))
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			full := sitegen.UniversityScheme()
			rw := &Rewriter{WS: full, Rules: AllRules}
			e := c.plan(full)
			if c.fire(rw, e) == 0 {
				t.Fatal("rule should fire under the full scheme")
			}

			weak := sitegen.UniversityScheme()
			c.weaken(t, weak)
			rwWeak := &Rewriter{WS: weak, Rules: AllRules}
			if n := c.fire(rwWeak, c.plan(weak)); n != 0 {
				t.Errorf("rule fired %d times without its precondition", n)
			}
		})
	}
}

// TestPreconditionValidate records preconditions under the full scheme via
// the audit trail and requires Validate to reject each one against the
// scheme with the relied-on fact removed.
func TestPreconditionValidate(t *testing.T) {
	full := sitegen.UniversityScheme()
	rw := &Rewriter{WS: full, Rules: AllRules, RecordAudit: true}

	// Fire Rule 5, Rule 6 and Rule 9 through the public entry point.
	nav5 := &nalg.Project{
		In:   nalg.From(full, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
		Cols: []string{"ProfListPage.ProfList.ProfName"},
	}
	sel6 := &nalg.Select{
		In:   nalg.From(full, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").MustBuild(),
		Pred: nested.Eq("SessionPage.Session", "Fall"),
	}
	join9 := &nalg.Join{
		L: nalg.From(full, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
		R: nalg.From(full, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild(),
		Conds: []nested.EqCond{{
			Left:  "ProfPage.Name",
			Right: "DeptPage.ProfList.ProfName",
		}},
	}
	rw.Expand([]nalg.Expr{nav5, sel6, join9}, 64)

	byRule := make(map[Rule]*Precondition)
	for _, a := range rw.Audit() {
		if a.Pre != nil && byRule[a.Rule] == nil {
			byRule[a.Rule] = a.Pre
		}
	}
	for _, r := range []Rule{Rule5, Rule6, Rule9} {
		if byRule[r] == nil {
			t.Fatalf("no audited application of %s", r)
		}
	}

	weaken := map[Rule]func(*adm.Scheme){
		Rule5: func(ws *adm.Scheme) {
			markOptional(t, ws, sitegen.ProfListPage, adm.ParsePath("ProfList.ToProf"))
		},
		Rule6: func(ws *adm.Scheme) {
			dropLinkConstraint(ws, ref(sitegen.SessionListPage, "SesList.ToSes"))
		},
		Rule9: func(ws *adm.Scheme) {
			dropInclusion(ws,
				ref(sitegen.DeptPage, "ProfList.ToProf"),
				ref(sitegen.ProfListPage, "ProfList.ToProf"))
		},
	}
	for r, pre := range byRule {
		if err := pre.Validate(full); err != nil {
			t.Errorf("%s precondition should validate against the full scheme: %v", r, err)
		}
		w, ok := weaken[r]
		if !ok {
			continue
		}
		ws := sitegen.UniversityScheme()
		w(ws)
		if err := byRule[r].Validate(ws); err == nil {
			t.Errorf("%s precondition should fail against the weakened scheme", r)
		} else if !strings.Contains(err.Error(), "relied on") {
			t.Errorf("%s: unexpected error wording: %v", r, err)
		}
	}

	// A covering precondition over a restricted navigation must fail.
	restricted := &Precondition{
		Rule: Rule9,
		Covering: &nalg.Select{
			In:   nalg.From(full, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
			Pred: nested.Eq("ProfListPage.ProfList.ProfName", "x"),
		},
	}
	if restricted.Validate(full) == nil {
		t.Error("selection inside the covering navigation should fail validation")
	}
}
