package nalg

import (
	"context"
	"errors"
	"fmt"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
)

// Source supplies pages during evaluation. The virtual-view engine backs it
// with a network fetcher; the materialized-view engine backs it with the
// local store plus the URLCheck protocol of §8.
//
// The pipelined evaluator (EvalWithOptions) calls EntryPage and FollowPages
// from concurrent goroutines; implementations must be safe for concurrent
// use and must keep their measured access counts deterministic under
// concurrency (per-URL deduplication / singleflight).
type Source interface {
	// EntryPage returns the single page of an entry point.
	EntryPage(scheme, url string) (nested.Tuple, error)
	// FollowPages returns the pages of the named scheme at the given URLs.
	// A URL whose page no longer exists may be silently omitted (the link
	// dangles and the navigation join simply produces nothing for it).
	FollowPages(scheme string, urls []string) ([]nested.Tuple, error)
}

// FetcherSource adapts a site.PageSource — a per-query site.Fetcher
// downloading over the (simulated) network, or a pagecache.Session drawing
// from the shared cross-query store — to the Source interface.
type FetcherSource struct {
	F site.PageSource
	// Ctx, when non-nil, bounds every page access the source issues: the
	// caller's request deadline and cancellation propagate through the
	// evaluator down to the fetch layer.
	Ctx context.Context
}

func (s FetcherSource) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background() //lint:allow noctxbg context-free Source compatibility
}

// EntryPage implements Source.
func (s FetcherSource) EntryPage(scheme, url string) (nested.Tuple, error) {
	return s.F.FetchCtx(s.context(), scheme, url)
}

// FollowPages implements Source.
func (s FetcherSource) FollowPages(scheme string, urls []string) ([]nested.Tuple, error) {
	return s.F.FetchAllCtx(s.context(), scheme, urls)
}

// qualifyPage renames a page tuple's attributes to alias-qualified column
// names. Stages that qualify many pages share one nested.Qualifier so the
// qualified names slice is computed once per page shape.
func qualifyPage(t nested.Tuple, alias string) nested.Tuple {
	return nested.NewQualifier(alias).Apply(t)
}

// Eval evaluates a computable expression against a page source. The
// expression must type-check against the web scheme; evaluation reports an
// error otherwise.
func Eval(e Expr, ws *adm.Scheme, src Source) (*nested.Relation, error) {
	if _, err := InferSchema(e, ws); err != nil {
		return nil, err
	}
	return eval(e, ws, src)
}

func eval(e Expr, ws *adm.Scheme, src Source) (*nested.Relation, error) {
	switch x := e.(type) {
	case *ExtScan:
		return nil, fmt.Errorf("nalg: cannot evaluate external relation %q", x.Relation)

	case *EntryScan:
		t, err := src.EntryPage(x.Scheme, x.URL)
		if err != nil {
			return nil, fmt.Errorf("nalg: entry point %s: %w", x.Scheme, err)
		}
		rel := nested.NewRelation(nil)
		rel.Insert(qualifyPage(t, x.EffAlias()))
		return rel, nil

	case *Unnest:
		in, err := eval(x.In, ws, src)
		if err != nil {
			return nil, err
		}
		return in.Unnest(x.Attr)

	case *Follow:
		in, err := eval(x.In, ws, src)
		if err != nil {
			return nil, err
		}
		return evalFollow(x, in, src)

	case *Select:
		in, err := eval(x.In, ws, src)
		if err != nil {
			return nil, err
		}
		return in.Select(x.Pred)

	case *Project:
		in, err := eval(x.In, ws, src)
		if err != nil {
			return nil, err
		}
		return in.Project(x.Cols)

	case *Join:
		l, err := eval(x.L, ws, src)
		if err != nil {
			return nil, err
		}
		r, err := eval(x.R, ws, src)
		if err != nil {
			return nil, err
		}
		return l.Join(r, x.Conds)

	case *Rename:
		in, err := eval(x.In, ws, src)
		if err != nil {
			return nil, err
		}
		return in.Rename(x.Map)

	default:
		return nil, fmt.Errorf("nalg: unknown expression node %T", e)
	}
}

// degradedFollow reports whether a FollowPages error is a graceful partial
// result (the fetcher's degraded mode): the reachable pages were returned
// and the unreachable URLs simply dangle, exactly like links to pages that
// no longer exist. The fetcher has already recorded the failures for
// ExecStats, so evaluation proceeds on what arrived.
func degradedFollow(err error) bool {
	var pe *site.PartialError
	return errors.As(err, &pe)
}

// evalFollow expands each input tuple with the page its link column points
// to: the distinct link URLs are fetched (this is where network cost is
// paid), and the input is joined with the fetched pages on link = URL.
func evalFollow(x *Follow, in *nested.Relation, src Source) (*nested.Relation, error) {
	urlVals, err := in.DistinctValues(x.Link)
	if err != nil {
		return nil, err
	}
	urls := make([]string, len(urlVals))
	for i, v := range urlVals {
		urls[i] = v.String()
	}
	pages, err := src.FollowPages(x.Target, urls)
	if err != nil && !degradedFollow(err) {
		return nil, fmt.Errorf("nalg: follow %s: %w", x.Link, err)
	}
	qual := nested.NewQualifier(x.EffAlias())
	byURL := make(map[string]nested.Tuple, len(pages))
	for _, p := range pages {
		u, ok := p.Get(adm.URLAttr)
		if !ok || u.IsNull() {
			return nil, fmt.Errorf("nalg: follow %s: target page without URL", x.Link)
		}
		byURL[u.String()] = qual.Apply(p)
	}
	out := nested.NewRelation(nil)
	for _, t := range in.Tuples() {
		lv, ok := t.Get(x.Link)
		if !ok {
			return nil, fmt.Errorf("nalg: follow: no column %q", x.Link)
		}
		if lv.IsNull() {
			continue
		}
		page, ok := byURL[lv.String()]
		if !ok {
			continue // dangling link: navigation yields nothing for it
		}
		joined, err := t.Concat(page)
		if err != nil {
			return nil, err
		}
		out.Insert(joined)
	}
	return out, nil
}
