package nalg

import (
	"fmt"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Builder constructs the linear navigations the paper writes as
//
//	ProfListPage ◦ ProfList →ToProf ProfPage ◦ CourseList →ToCourse CoursePage
//
// tracking the current qualification prefix so attribute names can be given
// relative to the navigation position, exactly as in the paper's notation.
type Builder struct {
	ws     *adm.Scheme
	e      Expr
	prefix string
	err    error
}

// From starts a navigation at an entry point. The entry page's columns are
// qualified by the page-scheme name.
func From(ws *adm.Scheme, scheme string) *Builder {
	ep, ok := ws.EntryPoint(scheme)
	if !ok {
		return &Builder{ws: ws, err: fmt.Errorf("nalg: %q is not an entry point", scheme)}
	}
	return &Builder{
		ws:     ws,
		e:      &EntryScan{Scheme: scheme, URL: ep.URL},
		prefix: scheme,
	}
}

// FromAlias starts a navigation at an entry point under an explicit alias.
func FromAlias(ws *adm.Scheme, scheme, alias string) *Builder {
	ep, ok := ws.EntryPoint(scheme)
	if !ok {
		return &Builder{ws: ws, err: fmt.Errorf("nalg: %q is not an entry point", scheme)}
	}
	return &Builder{
		ws:     ws,
		e:      &EntryScan{Scheme: scheme, URL: ep.URL, Alias: alias},
		prefix: alias,
	}
}

// Unnest applies ◦ to the list attribute named relative to the current
// position (e.g. "ProfList" right after From, or a nested list after a
// previous Unnest).
func (b *Builder) Unnest(attr string) *Builder {
	if b.err != nil {
		return b
	}
	col := b.prefix + "." + attr
	b.e = &Unnest{In: b.e, Attr: col}
	b.prefix = col
	return b
}

// Follow applies → to the link attribute named relative to the current
// position. The target's columns are qualified by the target scheme name.
func (b *Builder) Follow(link string) *Builder { return b.FollowAs(link, "") }

// FollowAs is Follow with an explicit alias for the target page's columns,
// needed when the same page-scheme occurs twice in a plan.
func (b *Builder) FollowAs(link, alias string) *Builder {
	if b.err != nil {
		return b
	}
	col := b.prefix + "." + link
	sch, err := InferSchema(b.e, b.ws)
	if err != nil {
		b.err = err
		return b
	}
	c, ok := sch.Col(col)
	if !ok {
		b.err = fmt.Errorf("nalg: no link attribute %q at the current position", col)
		return b
	}
	if c.Type.Kind != nested.KindLink {
		b.err = fmt.Errorf("nalg: attribute %q is not a link", col)
		return b
	}
	f := &Follow{In: b.e, Link: col, Target: c.Type.Target, Alias: alias}
	b.e = f
	b.prefix = f.EffAlias()
	return b
}

// Where applies a selection with a predicate over fully qualified column
// names.
func (b *Builder) Where(pred nested.Predicate) *Builder {
	if b.err != nil {
		return b
	}
	b.e = &Select{In: b.e, Pred: pred}
	return b
}

// WhereEq applies σ[attr = 'val'] with attr named relative to the current
// position.
func (b *Builder) WhereEq(attr, val string) *Builder {
	if b.err != nil {
		return b
	}
	b.e = &Select{In: b.e, Pred: nested.Eq(b.prefix+"."+attr, val)}
	return b
}

// Project applies a projection on fully qualified column names.
func (b *Builder) Project(cols ...string) *Builder {
	if b.err != nil {
		return b
	}
	b.e = &Project{In: b.e, Cols: cols}
	return b
}

// Prefix returns the current qualification prefix (the alias of the page
// the navigation currently sits on, or the list path inside it).
func (b *Builder) Prefix() string { return b.prefix }

// Build returns the constructed expression, type-checked against the
// scheme.
func (b *Builder) Build() (Expr, error) {
	if b.err != nil {
		return nil, b.err
	}
	if _, err := InferSchema(b.e, b.ws); err != nil {
		return nil, err
	}
	return b.e, nil
}

// MustBuild is Build that panics on error, for statically known
// navigations in views, tests and examples.
func (b *Builder) MustBuild() Expr {
	e, err := b.Build()
	if err != nil {
		panic(err)
	}
	return e
}
