package nalg

import (
	"fmt"
	"strings"
	"unicode"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// ParseNav parses the textual navigation language (an ASCII rendering of
// the paper's Ulixes expressions) into a NALG expression:
//
//	ProfListPage / ProfList -> ToProf [Rank='Full'] / CourseList -> ToCourse
//
// Grammar:
//
//	nav    := ENTRY step*
//	step   := '/' IDENT                 unnest the list attribute (◦)
//	        | '->' IDENT ('as' IDENT)?  follow the link attribute (→)
//	        | '[' attr '=' STRING ']'   selection σ
//	attr   := IDENT ('.' IDENT)*        relative to the position, or fully
//	                                    qualified ("Alias.Attr.Path")
//
// Selections resolve the attribute first relative to the current position
// (the page the navigation sits on), then as a fully qualified column.
func ParseNav(ws *adm.Scheme, src string) (Expr, error) {
	toks, err := lexNav(src)
	if err != nil {
		return nil, err
	}
	p := &navParser{toks: toks, ws: ws}
	return p.parse()
}

type navTokKind int

const (
	navIdent navTokKind = iota
	navString
	navPunct // / -> [ ] = .
	navEOF
)

type navToken struct {
	kind navTokKind
	text string
	pos  int
}

func lexNav(src string) ([]navToken, error) {
	var toks []navToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, navToken{kind: navPunct, text: "->", pos: i})
			i += 2
		case strings.HasPrefix(src[i:], "→"):
			toks = append(toks, navToken{kind: navPunct, text: "->", pos: i})
			i += len("→")
		case strings.HasPrefix(src[i:], "◦"):
			toks = append(toks, navToken{kind: navPunct, text: "/", pos: i})
			i += len("◦")
		case c == '/' || c == '[' || c == ']' || c == '=' || c == '.':
			toks = append(toks, navToken{kind: navPunct, text: string(c), pos: i})
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("nalg: unterminated string at offset %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					j++
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, navToken{kind: navString, text: sb.String(), pos: i})
			i = j
		case isNavIdentByte(c):
			j := i
			for j < len(src) && isNavIdentByte(src[j]) {
				j++
			}
			toks = append(toks, navToken{kind: navIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("nalg: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, navToken{kind: navEOF, pos: len(src)})
	return toks, nil
}

func isNavIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '$'
}

type navParser struct {
	toks []navToken
	i    int
	ws   *adm.Scheme
}

func (p *navParser) cur() navToken { return p.toks[p.i] }
func (p *navParser) advance()      { p.i++ }

func (p *navParser) errf(format string, args ...any) error {
	return fmt.Errorf("nalg: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *navParser) ident() (string, error) {
	if p.cur().kind != navIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	t := p.cur().text
	p.advance()
	return t, nil
}

func (p *navParser) punct(s string) bool {
	if p.cur().kind == navPunct && p.cur().text == s {
		p.advance()
		return true
	}
	return false
}

// dottedName parses IDENT ('.' IDENT)*.
func (p *navParser) dottedName() (string, error) {
	head, err := p.ident()
	if err != nil {
		return "", err
	}
	parts := []string{head}
	for p.punct(".") {
		next, err := p.ident()
		if err != nil {
			return "", err
		}
		parts = append(parts, next)
	}
	return strings.Join(parts, "."), nil
}

func (p *navParser) parse() (Expr, error) {
	entry, err := p.ident()
	if err != nil {
		return nil, err
	}
	b := From(p.ws, entry)
	for {
		switch {
		case p.punct("/"):
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			b = b.Unnest(attr)
		case p.punct("->"):
			link, err := p.ident()
			if err != nil {
				return nil, err
			}
			alias := ""
			if p.cur().kind == navIdent && strings.EqualFold(p.cur().text, "as") {
				p.advance()
				alias, err = p.ident()
				if err != nil {
					return nil, err
				}
			}
			b = b.FollowAs(link, alias)
		case p.punct("["):
			name, err := p.dottedName()
			if err != nil {
				return nil, err
			}
			if !p.punct("=") {
				return nil, p.errf("expected '=' in selection")
			}
			if p.cur().kind != navString {
				return nil, p.errf("expected quoted constant in selection")
			}
			val := p.cur().text
			p.advance()
			if !p.punct("]") {
				return nil, p.errf("expected ']'")
			}
			col, err := p.resolveAttr(b, name)
			if err != nil {
				return nil, err
			}
			b = b.Where(nested.Eq(col, val))
		default:
			if p.cur().kind != navEOF {
				return nil, p.errf("unexpected %q", p.cur().text)
			}
			return b.Build()
		}
	}
}

// resolveAttr resolves a selection attribute: first relative to the
// navigation's current position, then as a fully qualified column.
func (p *navParser) resolveAttr(b *Builder, name string) (string, error) {
	expr, err := b.Build()
	if err != nil {
		return "", err
	}
	sch, err := InferSchema(expr, p.ws)
	if err != nil {
		return "", err
	}
	if rel := b.Prefix() + "." + name; sch.Has(rel) {
		return rel, nil
	}
	if sch.Has(name) {
		return name, nil
	}
	return "", fmt.Errorf("nalg: no attribute %q at the current position (columns: %s)", name, strings.Join(sch.Names(), ", "))
}
