package nalg

import (
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

// hasKind reports whether some diagnostic has the given kind.
func hasKind(diags []Diagnostic, k DiagKind) bool {
	for _, d := range diags {
		if d.Kind == k {
			return true
		}
	}
	return false
}

// unknownExpr exercises the checker's catch-all arm.
type unknownExpr struct{}

func (unknownExpr) Children() []Expr { return nil }
func (unknownExpr) String() string   { return "?" }

// TestCheckRejections hand-builds one ill-typed plan per diagnostic kind
// and requires Check to report exactly that kind (possibly among others).
func TestCheckRejections(t *testing.T) {
	u, _, _ := fixture(t)
	ws := u.Scheme
	profs := From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()

	cases := []struct {
		name string
		e    Expr
		kind DiagKind
	}{
		{"ext-scan-leaf", &Join{L: &ExtScan{Relation: "Professor"}, R: profs}, DiagNotComputable},
		{"unknown-scheme", &EntryScan{Scheme: "NoSuchPage"}, DiagUnknownScheme},
		{"not-entry-point", &EntryScan{Scheme: sitegen.ProfPage}, DiagNotEntryPoint},
		{"entry-url-mismatch", &EntryScan{Scheme: sitegen.ProfListPage, URL: "http://univ.example.edu/elsewhere.html"}, DiagEntryURLMismatch},
		{"unknown-column", &Unnest{In: &EntryScan{Scheme: sitegen.ProfListPage}, Attr: "ProfListPage.NoSuchList"}, DiagUnknownColumn},
		{"unnest-non-list", &Unnest{In: &EntryScan{Scheme: sitegen.ProfListPage}, Attr: "ProfListPage.Title"}, DiagNotList},
		{"follow-non-link", &Follow{In: &EntryScan{Scheme: sitegen.ProfListPage}, Link: "ProfListPage.Title", Target: sitegen.ProfPage}, DiagNotLink},
		{"follow-wrong-target", &Follow{
			In:     &Unnest{In: &EntryScan{Scheme: sitegen.ProfListPage}, Attr: "ProfListPage.ProfList"},
			Link:   "ProfListPage.ProfList.ToProf",
			Target: sitegen.DeptPage,
		}, DiagLinkTargetMismatch},
		{"select-multi-valued", &Select{
			In:   &EntryScan{Scheme: sitegen.ProfListPage},
			Pred: nested.Eq("ProfListPage.ProfList", "x"),
		}, DiagNotMono},
		{"follow-duplicate-alias", &Follow{In: profs, Link: "ProfPage.ToDept", Target: sitegen.DeptPage, Alias: "ProfPage"}, DiagDuplicateColumn},
		{"empty-projection", &Project{In: profs, Cols: nil}, DiagEmptyProjection},
		{"unknown-node", unknownExpr{}, DiagUnknownNode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := Check(tc.e, ws)
			if !hasKind(diags, tc.kind) {
				t.Fatalf("Check(%s) = %v, want a %s diagnostic", tc.e, diags, tc.kind)
			}
		})
	}
}

// TestCheckRecovers requires the checker to keep going past a failure and
// report independent errors from separate branches of the same plan.
func TestCheckRecovers(t *testing.T) {
	u, _, _ := fixture(t)
	bad := &Join{
		L: &Unnest{In: &EntryScan{Scheme: sitegen.ProfListPage}, Attr: "ProfListPage.Title"}, // not a list
		R: &EntryScan{Scheme: sitegen.ProfPage},                                              // not an entry point
	}
	diags := Check(bad, u.Scheme)
	if !hasKind(diags, DiagNotList) || !hasKind(diags, DiagNotEntryPoint) {
		t.Fatalf("Check should report both branches, got %v", diags)
	}
}

// TestCheckAcceptsValidPlans requires Check to agree with InferSchema on
// well-typed plans, including aliases, renames, joins and selections.
func TestCheckAcceptsValidPlans(t *testing.T) {
	u, _, _ := fixture(t)
	ws := u.Scheme
	profs := From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	courses := &Follow{
		In:     &Unnest{In: profs, Attr: "ProfPage.CourseList"},
		Link:   "ProfPage.CourseList.ToCourse",
		Target: sitegen.CoursePage,
	}
	plans := []Expr{
		profs,
		courses,
		&Select{In: courses, Pred: nested.Eq("CoursePage.Session", "Fall")},
		&Project{In: profs, Cols: []string{"ProfPage.Name", "ProfPage.Email"}},
		&Rename{In: profs, Map: map[string]string{"ProfPage.Name": "Professor.Name"}},
		&Join{
			L: From(ws, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
			R: From(ws, sitegen.DeptListPage).Unnest("DeptList").MustBuild(),
		},
	}
	for _, p := range plans {
		if diags := Check(p, ws); len(diags) != 0 {
			t.Errorf("Check(%s) = %v, want clean", p, diags)
		}
		if _, err := InferSchema(p, ws); err != nil {
			t.Errorf("InferSchema(%s): %v", p, err)
		}
	}
}

// TestCheckCols requires the provenance validator to reject a column whose
// recorded origin does not resolve, and one whose declared type conflicts.
func TestCheckCols(t *testing.T) {
	u, _, _ := fixture(t)
	ws := u.Scheme
	bad := []Col{
		{Name: "ProfPage.Ghost", Type: nested.Text(), Scheme: sitegen.ProfPage, Path: adm.Path{"Ghost"}},
		{Name: "ProfPage.Name", Type: nested.Link(sitegen.DeptPage), Scheme: sitegen.ProfPage, Path: adm.Path{"Name"}},
	}
	diags := CheckCols(bad, ws)
	if len(diags) != 2 || !hasKind(diags, DiagBadProvenance) {
		t.Fatalf("CheckCols = %v, want two bad-provenance diagnostics", diags)
	}
	good := []Col{
		{Name: "ProfPage.Name", Type: nested.Text(), Scheme: sitegen.ProfPage, Path: adm.Path{"Name"}},
		{Name: "x", Type: nested.Text()}, // no provenance: nothing to validate
	}
	if diags := CheckCols(good, ws); len(diags) != 0 {
		t.Fatalf("CheckCols(good) = %v, want clean", diags)
	}
}
