package nalg

import (
	"strings"
	"testing"

	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

func TestParseNavLinear(t *testing.T) {
	u, _, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "ProfListPage / ProfList -> ToProf")
	if err != nil {
		t.Fatal(err)
	}
	want := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	if !Equal(e, want) {
		t.Errorf("parsed %s, want %s", e, want)
	}
}

func TestParseNavUnicodeOperators(t *testing.T) {
	u, _, _ := fixture(t)
	ascii, err := ParseNav(u.Scheme, "ProfListPage / ProfList -> ToProf")
	if err != nil {
		t.Fatal(err)
	}
	uni, err := ParseNav(u.Scheme, "ProfListPage ◦ ProfList → ToProf")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ascii, uni) {
		t.Errorf("unicode operators should parse identically:\n%s\n%s", ascii, uni)
	}
}

func TestParseNavSelectionRelative(t *testing.T) {
	u, _, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "ProfListPage / ProfList -> ToProf [Rank='Full'] / CourseList -> ToCourse")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	if !strings.Contains(s, "σ[ProfPage.Rank='Full']") {
		t.Errorf("relative selection not resolved: %s", s)
	}
	if !strings.Contains(s, "→[ToCourse]CoursePage") {
		t.Errorf("navigation after selection missing: %s", s)
	}
}

func TestParseNavSelectionQualified(t *testing.T) {
	u, _, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "SessionListPage / SesList [SessionListPage.SesList.Session='Fall'] -> ToSes")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "σ[SessionListPage.SesList.Session='Fall']") {
		t.Errorf("qualified selection wrong: %s", e)
	}
	// Relative form resolves to the same expression.
	e2, err := ParseNav(u.Scheme, "SessionListPage / SesList [Session='Fall'] -> ToSes")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, e2) {
		t.Errorf("relative and qualified selections should agree:\n%s\n%s", e, e2)
	}
}

func TestParseNavAlias(t *testing.T) {
	u, _, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "ProfListPage / ProfList -> ToProf as p2")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := InferSchema(e, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Has("p2.Name") {
		t.Errorf("alias not applied: %s", sch)
	}
}

func TestParseNavQuotedEscapes(t *testing.T) {
	u, _, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "ProfListPage / ProfList [ProfName='O''Hara']")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "O'Hara") {
		t.Errorf("escape not handled: %s", e)
	}
}

func TestParseNavErrors(t *testing.T) {
	u, _, _ := fixture(t)
	for _, src := range []string{
		"",
		"NoSuchPage",
		"ProfListPage /",
		"ProfListPage ->",
		"ProfListPage / ProfList -> Nope",
		"ProfListPage / Nope",
		"ProfListPage [",
		"ProfListPage [Title]",
		"ProfListPage [Title=]",
		"ProfListPage [Title='x'",
		"ProfListPage [Nope='x']",
		"ProfListPage / ProfList -> ToProf as",
		"ProfListPage junk",
		"ProfListPage ['unterminated",
		"ProfListPage @",
	} {
		if _, err := ParseNav(u.Scheme, src); err == nil {
			t.Errorf("ParseNav(%q) should fail", src)
		}
	}
}

// TestParseNavExecutes runs a parsed navigation end to end.
func TestParseNavExecutes(t *testing.T) {
	u, ms, _ := fixture(t)
	e, err := ParseNav(u.Scheme, "SessionListPage / SesList [Session='Fall'] -> ToSes / CourseList -> ToCourse")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Eval(e, u.Scheme, FetcherSource{F: site.NewFetcher(ms, u.Scheme)})
	if err != nil {
		t.Fatal(err)
	}
	fall := 0
	for _, s := range u.SessionOf {
		if u.Params.Sessions[s] == "Fall" {
			fall++
		}
	}
	if rel.Len() != fall {
		t.Errorf("fall courses = %d, want %d", rel.Len(), fall)
	}
}

// TestParseNavRoundTripPaperNotation checks the parser accepts the rendered
// form of simple chains (modulo the follow-link annotation).
func TestParseNavDeterministic(t *testing.T) {
	u, _, _ := fixture(t)
	a, err := ParseNav(u.Scheme, "DeptListPage/DeptList->ToDept/ProfList->ToProf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNav(u.Scheme, "DeptListPage / DeptList -> ToDept / ProfList -> ToProf")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Error("whitespace should not matter")
	}
}
