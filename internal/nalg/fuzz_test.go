package nalg

import (
	"testing"

	"ulixes/internal/sitegen"
)

// FuzzParseNav checks the navigation parser never panics and that accepted
// navigations type-check against the scheme they were parsed with.
func FuzzParseNav(f *testing.F) {
	for _, seed := range []string{
		"ProfListPage / ProfList -> ToProf",
		"ProfListPage / ProfList -> ToProf as p2 [Rank='Full']",
		"SessionListPage / SesList [Session='Fall'] -> ToSes / CourseList -> ToCourse",
		"ProfListPage ◦ ProfList → ToProf",
		"HomePage -> ToDeptList",
		"Nope / X",
		"",
	} {
		f.Add(seed)
	}
	ws := sitegen.UniversityScheme()
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseNav(ws, src)
		if err != nil {
			return
		}
		if _, err := InferSchema(e, ws); err != nil {
			t.Fatalf("accepted navigation does not type-check: %q: %v", src, err)
		}
		if !Computable(e) {
			t.Fatalf("accepted navigation not computable: %q", src)
		}
	})
}
