package nalg

import (
	"fmt"
	"sync"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Pipelined-evaluation defaults.
const (
	// DefaultWorkers bounds the concurrent follow-link fetch tasks of one
	// pipelined evaluation.
	DefaultWorkers = 8
	// DefaultBatchSize is the tuple granularity of the streams: smaller
	// batches pipeline more aggressively, larger batches amortize overhead.
	DefaultBatchSize = 64
)

// EvalOptions tunes plan evaluation.
type EvalOptions struct {
	// Pipelined selects the streaming parallel evaluator: operators are
	// connected by tuple-batch channels, Follow issues prefetches as soon
	// as input batches arrive, and Join branches run concurrently. The
	// result relation and the number of page accesses are identical to the
	// sequential evaluator's — parallelism only changes wall time.
	Pipelined bool
	// Workers bounds the number of in-flight follow-link fetch tasks
	// (0 means DefaultWorkers). The page-level connection bound lives in
	// the fetcher; this knob only caps pipeline fan-out.
	Workers int
	// BatchSize is the tuple-batch granularity (0 means DefaultBatchSize).
	BatchSize int
	// EstimateCard optionally estimates the output cardinality of a
	// subplan (from site statistics). The pipelined hash join builds on
	// the side with the smaller estimate; without an estimator it builds
	// on the right operand.
	EstimateCard func(Expr) (float64, bool)
}

// EvalWithOptions evaluates a computable expression against a page source,
// either with the sequential evaluator or the pipelined one. Both return
// the same relation (as a set of tuples) and perform the same set of page
// accesses; the pipelined evaluator overlaps fetching, wrapping and local
// computation. A Source used with the pipelined evaluator must tolerate
// concurrent EntryPage/FollowPages calls.
func EvalWithOptions(e Expr, ws *adm.Scheme, src Source, opts EvalOptions) (*nested.Relation, error) {
	if !opts.Pipelined {
		return Eval(e, ws, src)
	}
	if _, err := InferSchema(e, ws); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	p := &pipeline{
		ws:   ws,
		src:  src,
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
		done: make(chan struct{}),
	}
	out := p.node(e)
	rel := nested.NewRelation(nil)
	for batch := range out {
		for _, t := range batch {
			rel.Insert(t)
		}
	}
	p.wg.Wait()
	if p.err != nil {
		return nil, p.err
	}
	return rel, nil
}

// pipeline is one running dataflow evaluation: a tree of goroutines
// connected by tuple-batch channels, with first-error-wins propagation.
type pipeline struct {
	ws   *adm.Scheme
	src  Source
	opts EvalOptions
	sem  chan struct{} // bounds concurrent follow fetch tasks
	done chan struct{} // closed on the first failure
	once sync.Once
	err  error
	wg   sync.WaitGroup
}

// fail records the first error and unblocks every stage.
func (p *pipeline) fail(err error) {
	p.once.Do(func() {
		p.err = err
		close(p.done)
	})
}

func (p *pipeline) spawn(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

// emit sends one batch downstream, aborting if the pipeline failed. It
// reports whether the send happened.
func (p *pipeline) emit(out chan<- []nested.Tuple, batch []nested.Tuple) bool {
	if len(batch) == 0 {
		return true
	}
	select {
	case out <- batch:
		return true
	case <-p.done:
		return false
	}
}

// emitChunks re-batches and sends a tuple slice downstream. Re-batching is
// what creates pipeline parallelism after expanding operators: an Unnest
// blowing one page into hundreds of tuples yields several batches, so a
// downstream Follow can have several fetch tasks in flight.
func (p *pipeline) emitChunks(out chan<- []nested.Tuple, tuples []nested.Tuple) bool {
	n := p.opts.BatchSize
	for len(tuples) > 0 {
		k := n
		if k > len(tuples) {
			k = len(tuples)
		}
		if !p.emit(out, tuples[:k:k]) {
			return false
		}
		tuples = tuples[k:]
	}
	return true
}

// node compiles an expression into a running stage producing tuple batches.
func (p *pipeline) node(e Expr) <-chan []nested.Tuple {
	out := make(chan []nested.Tuple)
	switch x := e.(type) {
	case *ExtScan:
		p.spawn(func() {
			defer close(out)
			p.fail(fmt.Errorf("nalg: cannot evaluate external relation %q", x.Relation))
		})

	case *EntryScan:
		p.spawn(func() {
			defer close(out)
			t, err := p.src.EntryPage(x.Scheme, x.URL)
			if err != nil {
				p.fail(fmt.Errorf("nalg: entry point %s: %w", x.Scheme, err))
				return
			}
			p.emit(out, []nested.Tuple{qualifyPage(t, x.EffAlias())})
		})

	case *Unnest, *Select, *Project, *Rename:
		in := p.node(localInput(e))
		op := localOp(e)
		p.spawn(func() {
			defer close(out)
			for batch := range in {
				res, err := op(batch)
				if err != nil {
					p.fail(err)
					return
				}
				if !p.emitChunks(out, res) {
					return
				}
			}
		})

	case *Follow:
		p.followNode(x, out)

	case *Join:
		p.joinNode(x, out)

	default:
		p.spawn(func() {
			defer close(out)
			p.fail(fmt.Errorf("nalg: unknown expression node %T", e))
		})
	}
	return out
}

// localInput returns the operand of a unary local operator.
func localInput(e Expr) Expr {
	switch x := e.(type) {
	case *Unnest:
		return x.In
	case *Select:
		return x.In
	case *Project:
		return x.In
	case *Rename:
		return x.In
	}
	panic("nalg: not a local operator")
}

// localOp compiles a tuple-at-a-time operator into a batch transform.
// These operators distribute over union, so applying them batch by batch
// and deduping once at the sink computes the same set as the sequential
// evaluator; intra-batch duplicates are harmless for the same reason, so
// no relation (with its per-tuple canonical keys) is materialized per
// batch. Per-stage state — the Unnester's shared output names, the
// Renamer's renamed names — lives in the returned closure, which the
// single stage goroutine owns.
func localOp(e Expr) func(batch []nested.Tuple) ([]nested.Tuple, error) {
	switch x := e.(type) {
	case *Unnest:
		var u nested.Unnester
		return func(batch []nested.Tuple) ([]nested.Tuple, error) {
			var out []nested.Tuple
			var err error
			for _, t := range batch {
				out, err = u.Unnest(t, x.Attr, out)
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		}
	case *Select:
		return func(batch []nested.Tuple) ([]nested.Tuple, error) {
			out := make([]nested.Tuple, 0, len(batch))
			for _, t := range batch {
				ok, err := x.Pred.Eval(t)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, t)
				}
			}
			return out, nil
		}
	case *Project:
		return func(batch []nested.Tuple) ([]nested.Tuple, error) {
			out := make([]nested.Tuple, 0, len(batch))
			for _, t := range batch {
				pt, err := t.Project(x.Cols)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
			return out, nil
		}
	case *Rename:
		r := nested.NewRenamer(x.Map)
		return func(batch []nested.Tuple) ([]nested.Tuple, error) {
			out := make([]nested.Tuple, 0, len(batch))
			for _, t := range batch {
				out = append(out, r.Apply(t))
			}
			return out, nil
		}
	default:
		return func([]nested.Tuple) ([]nested.Tuple, error) {
			return nil, fmt.Errorf("nalg: not a local operator: %T", e)
		}
	}
}

// pageMap is the shared URL → qualified page tuple map a Follow stage's
// fetch tasks fill and its joiner reads.
type pageMap struct {
	mu sync.Mutex
	m  map[string]nested.Tuple
}

func (pm *pageMap) set(url string, t nested.Tuple) {
	pm.mu.Lock()
	pm.m[url] = t
	pm.mu.Unlock()
}

func (pm *pageMap) get(url string) (nested.Tuple, bool) {
	pm.mu.Lock()
	t, ok := pm.m[url]
	pm.mu.Unlock()
	return t, ok
}

// followTask is one batch moving through a Follow stage: its page fetch
// runs asynchronously; the joiner consumes tasks in order, so when task i
// is joined every URL first seen in batches 0..i has been resolved.
type followTask struct {
	batch   []nested.Tuple
	fetched chan struct{}
}

// followNode streams the follow-link operator: as input batches arrive,
// the distinct not-yet-seen link URLs are prefetched concurrently (bounded
// by the pipeline's worker semaphore) while earlier batches are being
// joined with their target pages.
func (p *pipeline) followNode(x *Follow, out chan<- []nested.Tuple) {
	in := p.node(x.In)
	tasks := make(chan *followTask, p.opts.Workers)
	pages := &pageMap{m: make(map[string]nested.Tuple)}
	// One qualifier for the whole stage: concurrent fetch tasks share the
	// alias-qualified names slice instead of renaming page by page.
	qual := nested.NewQualifier(x.EffAlias())

	// Producer: dedup link URLs across batches and launch fetch tasks.
	p.spawn(func() {
		defer close(tasks)
		seen := make(map[string]bool)
		for batch := range in {
			var urls []string
			for _, t := range batch {
				lv, ok := t.Get(x.Link)
				if !ok {
					p.fail(fmt.Errorf("nalg: follow: no column %q", x.Link))
					return
				}
				if lv.IsNull() {
					continue
				}
				if u := lv.String(); !seen[u] {
					seen[u] = true
					urls = append(urls, u)
				}
			}
			ft := &followTask{batch: batch, fetched: make(chan struct{})}
			p.spawn(func() { p.fetchTask(x, urls, pages, qual, ft) })
			select {
			case tasks <- ft:
			case <-p.done:
				return
			}
		}
	})

	// Joiner: in task order, wait for the task's pages and emit the
	// navigation join of its batch.
	p.spawn(func() {
		defer close(out)
		for ft := range tasks {
			select {
			case <-ft.fetched:
			case <-p.done:
				return
			}
			joined, err := joinFollowBatch(x, ft.batch, pages)
			if err != nil {
				p.fail(err)
				return
			}
			if !p.emitChunks(out, joined) {
				return
			}
		}
	})
}

// fetchTask resolves one batch's new URLs into the shared page map.
func (p *pipeline) fetchTask(x *Follow, urls []string, pages *pageMap, qual *nested.Qualifier, ft *followTask) {
	defer close(ft.fetched)
	if len(urls) == 0 {
		return
	}
	select {
	case p.sem <- struct{}{}:
	case <-p.done:
		return
	}
	defer func() { <-p.sem }()
	got, err := p.src.FollowPages(x.Target, urls)
	if err != nil && !degradedFollow(err) {
		p.fail(fmt.Errorf("nalg: follow %s: %w", x.Link, err))
		return
	}
	for _, pg := range got {
		u, ok := pg.Get(adm.URLAttr)
		if !ok || u.IsNull() {
			p.fail(fmt.Errorf("nalg: follow %s: target page without URL", x.Link))
			return
		}
		pages.set(u.String(), qual.Apply(pg))
	}
}

// joinFollowBatch expands each tuple of a batch with its target page,
// exactly as the sequential evalFollow does.
func joinFollowBatch(x *Follow, batch []nested.Tuple, pages *pageMap) ([]nested.Tuple, error) {
	var out []nested.Tuple
	for _, t := range batch {
		lv, ok := t.Get(x.Link)
		if !ok {
			return nil, fmt.Errorf("nalg: follow: no column %q", x.Link)
		}
		if lv.IsNull() {
			continue
		}
		page, ok := pages.get(lv.String())
		if !ok {
			continue // dangling link: navigation yields nothing for it
		}
		joined, err := t.Concat(page)
		if err != nil {
			return nil, err
		}
		out = append(out, joined)
	}
	return out, nil
}

// joinNode evaluates both operands concurrently — their page fetches
// overlap — hashing the build side incrementally as its batches arrive.
// Probe batches arriving early are buffered; once the build side is
// exhausted they stream through the hash table and out.
func (p *pipeline) joinNode(x *Join, out chan<- []nested.Tuple) {
	lin := p.node(x.L)
	rin := p.node(x.R)
	p.spawn(func() {
		defer close(out)
		buildLeft := p.chooseBuildLeft(x)
		h := nested.NewHashJoiner(x.Conds, buildLeft)
		build, probe := rin, lin
		if buildLeft {
			build, probe = lin, rin
		}
		// Drain both sides at once so neither subtree ever stalls on a
		// full channel; probe batches queue until the hash table is
		// complete.
		var queued [][]nested.Tuple
		probeOpen := true
		for build != nil {
			select {
			case b, ok := <-build:
				if !ok {
					build = nil
					continue
				}
				for _, t := range b {
					if err := h.Build(t); err != nil {
						p.fail(err)
						return
					}
				}
			case b, ok := <-probe:
				if !ok {
					probeOpen = false
					probe = nil
					continue
				}
				queued = append(queued, b)
			case <-p.done:
				return
			}
		}
		probeBatch := func(b []nested.Tuple) bool {
			var res []nested.Tuple
			var err error
			for _, t := range b {
				res, err = h.ProbeAppend(t, res)
				if err != nil {
					p.fail(err)
					return false
				}
			}
			return p.emitChunks(out, res)
		}
		for _, b := range queued {
			if !probeBatch(b) {
				return
			}
		}
		if probeOpen {
			for b := range probe {
				if !probeBatch(b) {
					return
				}
			}
		}
	})
}

// chooseBuildLeft picks the hash-join build side from estimated
// cardinalities when available (the smaller estimated side), defaulting to
// the right operand like Relation.Join's tie-break.
func (p *pipeline) chooseBuildLeft(x *Join) bool {
	if p.opts.EstimateCard == nil {
		return false
	}
	lc, lok := p.opts.EstimateCard(x.L)
	rc, rok := p.opts.EstimateCard(x.R)
	return lok && rok && lc < rc
}
