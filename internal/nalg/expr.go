// Package nalg implements the Navigational Algebra of §4 of "Efficient
// Queries over Web Views": the classical selection / projection / join
// operators plus two navigational primitives — unnest page (◦), which
// navigates inside the nested structure of a page, and follow link (→),
// which navigates between pages. Expressions are typed against an ADM web
// scheme, printable as the paper's query plans, and evaluable against a page
// source (a remote site or a materialized store).
package nalg

import (
	"strings"
	"sync/atomic"

	"ulixes/internal/nested"
)

// strCache memoizes a node's rendering. Expressions are immutable and
// rewrites share subtrees, so rendering each node once makes whole-plan
// canonicalization cheap during enumeration.
type strCache struct {
	p atomic.Pointer[string]
}

func (c *strCache) get(build func() string) string {
	if s := c.p.Load(); s != nil {
		return *s
	}
	s := build()
	c.p.Store(&s)
	return s
}

// Expr is a navigational algebra expression. Implementations are immutable;
// rewrites build new trees sharing subexpressions.
type Expr interface {
	// Children returns the operand expressions.
	Children() []Expr
	// String renders the expression in the paper's infix notation.
	String() string
}

// ExtScan is a leaf standing for an external relation of the relational
// view (§5). It is not computable: Rule 1 (default navigation) must replace
// it with a navigational expression before evaluation.
type ExtScan struct {
	// Relation is the external relation name, e.g. "Professor".
	Relation string
}

// Children implements Expr.
func (e *ExtScan) Children() []Expr { return nil }

// String implements Expr.
func (e *ExtScan) String() string { return e.Relation }

// EntryScan is a leaf reading the single page of an entry point (§3.1).
// Its alias qualifies the column names of the page attributes.
type EntryScan struct {
	// Scheme is the entry point's page-scheme name.
	Scheme string
	// URL is the entry point's known URL.
	URL string
	// Alias qualifies output columns; defaults to Scheme when empty.
	Alias string

	str strCache
}

// EffAlias returns the alias, defaulting to the scheme name.
func (e *EntryScan) EffAlias() string {
	if e.Alias != "" {
		return e.Alias
	}
	return e.Scheme
}

// Children implements Expr.
func (e *EntryScan) Children() []Expr { return nil }

// String implements Expr.
func (e *EntryScan) String() string {
	return e.str.get(func() string {
		if e.Alias != "" && e.Alias != e.Scheme {
			return e.Scheme + "[" + e.Alias + "]"
		}
		return e.Scheme
	})
}

// Unnest is the unnest-page operator R ◦ A: it navigates inside a page by
// flattening the list-valued column Attr, promoting element fields to
// columns named Attr + "." + field.
type Unnest struct {
	In Expr
	// Attr is the qualified list column, e.g. "ProfListPage.ProfList".
	Attr string

	str strCache
}

// Children implements Expr.
func (e *Unnest) Children() []Expr { return []Expr{e.In} }

// String implements Expr.
func (e *Unnest) String() string {
	return e.str.get(func() string {
		return parenthesize(e.In) + "◦" + shortAttr(e.Attr)
	})
}

// Follow is the follow-link operator R →L P: it expands each input tuple
// with the target page its link column references, i.e. the join
// R ⋈_{R.L = P.URL} P (§4).
type Follow struct {
	In Expr
	// Link is the qualified link column, e.g. "ProfListPage.ProfList.ToProf".
	Link string
	// Target is the target page-scheme name.
	Target string
	// Alias qualifies the target page's columns; defaults to Target.
	Alias string

	str strCache
}

// EffAlias returns the target alias, defaulting to the target scheme name.
func (e *Follow) EffAlias() string {
	if e.Alias != "" {
		return e.Alias
	}
	return e.Target
}

// Children implements Expr.
func (e *Follow) Children() []Expr { return []Expr{e.In} }

// String implements Expr.
func (e *Follow) String() string {
	return e.str.get(func() string {
		tgt := e.Target
		if e.Alias != "" && e.Alias != e.Target {
			tgt = e.Target + "[" + e.Alias + "]"
		}
		return parenthesize(e.In) + "→[" + shortAttr(e.Link) + "]" + tgt
	})
}

// Select is the selection operator σ_pred(R).
type Select struct {
	In   Expr
	Pred nested.Predicate

	str strCache
}

// Children implements Expr.
func (e *Select) Children() []Expr { return []Expr{e.In} }

// String implements Expr.
func (e *Select) String() string {
	return e.str.get(func() string {
		return "σ[" + e.Pred.String() + "](" + e.In.String() + ")"
	})
}

// Project is the projection operator π_cols(R), with set semantics.
type Project struct {
	In   Expr
	Cols []string

	str strCache
}

// Children implements Expr.
func (e *Project) Children() []Expr { return []Expr{e.In} }

// String implements Expr.
func (e *Project) String() string {
	return e.str.get(func() string {
		return "π[" + strings.Join(e.Cols, ",") + "](" + e.In.String() + ")"
	})
}

// Join is the equi-join L ⋈_conds R.
type Join struct {
	L, R  Expr
	Conds []nested.EqCond

	str strCache
}

// Children implements Expr.
func (e *Join) Children() []Expr { return []Expr{e.L, e.R} }

// String implements Expr.
func (e *Join) String() string {
	return e.str.get(func() string {
		conds := make([]string, len(e.Conds))
		for i, c := range e.Conds {
			conds[i] = c.String()
		}
		return "(" + e.L.String() + " ⋈[" + strings.Join(conds, ",") + "] " + e.R.String() + ")"
	})
}

// Rename renames output columns; it is used to map navigation columns to
// the attribute names of external relations.
type Rename struct {
	In Expr
	// Map is old column name → new name.
	Map map[string]string

	str strCache
}

// Children implements Expr.
func (e *Rename) Children() []Expr { return []Expr{e.In} }

// String implements Expr.
func (e *Rename) String() string {
	return e.str.get(func() string {
		pairs := make([]string, 0, len(e.Map))
		for _, old := range sortedKeys(e.Map) {
			pairs = append(pairs, old+"→"+e.Map[old])
		}
		return "ρ[" + strings.Join(pairs, ",") + "](" + e.In.String() + ")"
	})
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *EntryScan, *ExtScan, *Unnest, *Follow:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// shortAttr keeps only the final attribute name for display: the paper
// writes R →ToCourse P, not R →R.CourseList.ToCourse P.
func shortAttr(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// Equal reports structural equality of two expressions via their canonical
// rendering.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// Walk visits the expression tree depth-first, parents after children.
func Walk(e Expr, visit func(Expr)) {
	for _, c := range e.Children() {
		Walk(c, visit)
	}
	visit(e)
}

// Leaves returns the leaf nodes of the expression in left-to-right order.
func Leaves(e Expr) []Expr {
	var out []Expr
	Walk(e, func(x Expr) {
		if len(x.Children()) == 0 {
			out = append(out, x)
		}
	})
	return out
}

// Computable reports whether every leaf of the expression is an entry-point
// scan (§4: "in order to be computable, all navigational paths involved in
// a query must start from an entry point").
func Computable(e Expr) bool {
	for _, l := range Leaves(e) {
		if _, ok := l.(*EntryScan); !ok {
			return false
		}
	}
	return true
}
