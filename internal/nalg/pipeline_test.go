package nalg

import (
	"errors"
	"strings"
	"testing"

	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

// pipelinePlans are plan shapes covering every pipelined operator: entry
// scan, unnest, select, project, rename, deep follow chains and joins of
// two navigation paths.
func pipelinePlans(t *testing.T, u *sitegen.University) map[string]Expr {
	t.Helper()
	ws := u.Scheme
	deep := From(ws, sitegen.DeptListPage).
		Unnest("DeptList").
		Where(nested.Eq("DeptListPage.DeptList.DeptName", "Computer Science")).
		Follow("ToDept").
		Unnest("ProfList").
		Follow("ToProf").
		Unnest("CourseList").
		Follow("ToCourse").
		Project("CoursePage.CName", "CoursePage.Description").
		MustBuild()
	profs := From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	depts := From(ws, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").MustBuild()
	join := &Join{L: profs, R: depts, Conds: []nested.EqCond{{Left: "ProfPage.DName", Right: "DeptPage.DName"}}}
	renamed := &Rename{
		In:  From(ws, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		Map: map[string]string{"ProfListPage.ProfList.ProfName": "Name"},
	}
	return map[string]Expr{
		"entry only":    From(ws, sitegen.ProfListPage).MustBuild(),
		"unnest":        From(ws, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		"follow":        From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild(),
		"deep chain":    deep,
		"join of paths": join,
		"rename":        renamed,
	}
}

// TestPipelinedMatchesSequential is the core equivalence property: for
// every plan shape and worker count, the pipelined evaluator returns the
// same relation and performs the same number of page accesses as the
// sequential evaluator.
func TestPipelinedMatchesSequential(t *testing.T) {
	u, ms, _ := fixture(t)
	for name, e := range pipelinePlans(t, u) {
		f := site.NewFetcher(ms, u.Scheme)
		want, err := Eval(e, u.Scheme, FetcherSource{F: f})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		wantPages := f.PagesFetched()
		for _, workers := range []int{1, 4, 16} {
			for _, batch := range []int{1, 3, 64} {
				pf := site.NewFetcher(ms, u.Scheme)
				pf.SetWorkers(workers)
				got, err := EvalWithOptions(e, u.Scheme, FetcherSource{F: pf},
					EvalOptions{Pipelined: true, Workers: workers, BatchSize: batch})
				if err != nil {
					t.Fatalf("%s w=%d b=%d: pipelined: %v", name, workers, batch, err)
				}
				if got.String() != want.String() {
					t.Errorf("%s w=%d b=%d: pipelined answer differs\ngot:  %s\nwant: %s",
						name, workers, batch, got, want)
				}
				if pf.PagesFetched() != wantPages {
					t.Errorf("%s w=%d b=%d: pipelined fetched %d pages, sequential %d",
						name, workers, batch, pf.PagesFetched(), wantPages)
				}
			}
		}
	}
}

// TestPipelinedNotPipelinedFallback verifies EvalWithOptions without
// Pipelined is exactly Eval.
func TestPipelinedNotPipelinedFallback(t *testing.T) {
	u, _, src := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	seq, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalWithOptions(e, u.Scheme, src, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != seq.String() {
		t.Error("non-pipelined options should use the sequential evaluator")
	}
}

// TestPipelinedRejectsExtScan checks error propagation from a leaf stage.
func TestPipelinedRejectsExtScan(t *testing.T) {
	u, ms, _ := fixture(t)
	profs := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	j := &Join{L: &ExtScan{Relation: "Professor"}, R: profs}
	f := site.NewFetcher(ms, u.Scheme)
	_, err := EvalWithOptions(j, u.Scheme, FetcherSource{F: f},
		EvalOptions{Pipelined: true})
	if err == nil || !strings.Contains(err.Error(), "external") {
		t.Errorf("err = %v, want external-relation failure", err)
	}
}

// brokenServer fails GETs on URLs of one page-scheme, so errors surface
// mid-stream inside a Follow stage.
type brokenServer struct {
	*site.MemSite
	badPrefix string
}

var errBroken = errors.New("broken page")

func (s *brokenServer) Get(url string) (site.Page, error) {
	if strings.Contains(url, s.badPrefix) {
		return site.Page{}, errBroken
	}
	return s.MemSite.Get(url) //lint:allow fetchgate fault-injecting Server double delegates
}

// TestPipelinedErrorPropagation injects fetch failures deep in a follow
// chain and requires the evaluation to fail fast rather than hang or
// return a partial answer.
func TestPipelinedErrorPropagation(t *testing.T) {
	u, ms, _ := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	srv := &brokenServer{MemSite: ms, badPrefix: "prof"}
	f := site.NewFetcher(srv, u.Scheme)
	f.SetWorkers(4)
	_, err := EvalWithOptions(e, u.Scheme, FetcherSource{F: f},
		EvalOptions{Pipelined: true, Workers: 4, BatchSize: 2})
	if !errors.Is(err, errBroken) {
		t.Errorf("err = %v, want the injected fetch failure", err)
	}
}

// TestPipelinedDeterministicAcrossRuns re-runs a pipelined evaluation and
// expects identical rendered results every time (set semantics hide the
// nondeterministic arrival order).
func TestPipelinedDeterministicAcrossRuns(t *testing.T) {
	u, ms, _ := fixture(t)
	e := pipelinePlans(t, u)["deep chain"]
	var first string
	for i := 0; i < 5; i++ {
		f := site.NewFetcher(ms, u.Scheme)
		rel, err := EvalWithOptions(e, u.Scheme, FetcherSource{F: f},
			EvalOptions{Pipelined: true, Workers: 8, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rel.String()
		} else if rel.String() != first {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}
