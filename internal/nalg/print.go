package nalg

import (
	"fmt"
	"strings"
)

// Explain renders the expression as an indented query-plan tree in the
// style of the paper's Figures 2–4 (leaves at the bottom are page accesses;
// upward edges are navigations).
func Explain(e Expr) string {
	var sb strings.Builder
	explain(&sb, e, "", true)
	return sb.String()
}

func nodeLabel(e Expr) string {
	switch x := e.(type) {
	case *ExtScan:
		return "ext " + x.Relation
	case *EntryScan:
		return fmt.Sprintf("entry %s @ %s", x.String(), x.URL)
	case *Unnest:
		return "◦ " + shortAttr(x.Attr)
	case *Follow:
		tgt := x.Target
		if x.Alias != "" && x.Alias != x.Target {
			tgt += "[" + x.Alias + "]"
		}
		return fmt.Sprintf("→ %s (%s)", shortAttr(x.Link), tgt)
	case *Select:
		return "σ " + x.Pred.String()
	case *Project:
		return "π " + strings.Join(x.Cols, ", ")
	case *Join:
		conds := make([]string, len(x.Conds))
		for i, c := range x.Conds {
			conds[i] = c.String()
		}
		return "⋈ " + strings.Join(conds, ", ")
	case *Rename:
		pairs := make([]string, 0, len(x.Map))
		for _, old := range sortedKeys(x.Map) {
			pairs = append(pairs, old+"→"+x.Map[old])
		}
		return "ρ " + strings.Join(pairs, ", ")
	default:
		return fmt.Sprintf("%T", e)
	}
}

func explain(sb *strings.Builder, e Expr, prefix string, last bool) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if prefix == "" && last {
		connector = ""
		childPrefix = "   "
	}
	sb.WriteString(prefix)
	sb.WriteString(connector)
	sb.WriteString(nodeLabel(e))
	sb.WriteByte('\n')
	kids := e.Children()
	for i, k := range kids {
		explain(sb, k, childPrefix, i == len(kids)-1)
	}
}
