package nalg

import (
	"fmt"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// DiagKind classifies a static plan diagnostic.
type DiagKind int

const (
	// DiagNotComputable: an ExtScan leaf remains — the plan still references
	// an external relation and cannot be evaluated (§4: every navigational
	// path must start from an entry point).
	DiagNotComputable DiagKind = iota
	// DiagUnknownScheme: a scan or follow names a page-scheme the web
	// scheme does not declare.
	DiagUnknownScheme
	// DiagNotEntryPoint: an EntryScan reads a page-scheme with no declared
	// entry point.
	DiagNotEntryPoint
	// DiagEntryURLMismatch: an EntryScan's URL differs from the scheme's
	// declared entry-point URL.
	DiagEntryURLMismatch
	// DiagUnknownColumn: an operator references a column its input does not
	// produce.
	DiagUnknownColumn
	// DiagNotList: unnest applied to a non-list column.
	DiagNotList
	// DiagNotLink: follow applied to a non-link column.
	DiagNotLink
	// DiagLinkTargetMismatch: a follow's stated target page-scheme differs
	// from the link's declared target.
	DiagLinkTargetMismatch
	// DiagBadProvenance: a column's recorded origin (scheme, path) does not
	// resolve in the web scheme, or resolves to a conflicting type.
	DiagBadProvenance
	// DiagNotMono: a selection or join predicate reads a multi-valued
	// column.
	DiagNotMono
	// DiagDuplicateColumn: a follow, join or rename would produce two
	// columns with the same name.
	DiagDuplicateColumn
	// DiagEmptyProjection: a projection with no columns.
	DiagEmptyProjection
	// DiagUnknownNode: an Expr implementation the checker does not know.
	DiagUnknownNode
)

var diagKindNames = map[DiagKind]string{
	DiagNotComputable:      "not-computable",
	DiagUnknownScheme:      "unknown-scheme",
	DiagNotEntryPoint:      "not-entry-point",
	DiagEntryURLMismatch:   "entry-url-mismatch",
	DiagUnknownColumn:      "unknown-column",
	DiagNotList:            "not-list",
	DiagNotLink:            "not-link",
	DiagLinkTargetMismatch: "link-target-mismatch",
	DiagBadProvenance:      "bad-provenance",
	DiagNotMono:            "not-mono",
	DiagDuplicateColumn:    "duplicate-column",
	DiagEmptyProjection:    "empty-projection",
	DiagUnknownNode:        "unknown-node",
}

// String implements fmt.Stringer.
func (k DiagKind) String() string {
	if s, ok := diagKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("DiagKind(%d)", int(k))
}

// Diagnostic is one static typing error found in a plan.
type Diagnostic struct {
	// Kind classifies the error.
	Kind DiagKind
	// Node is the offending expression node.
	Node Expr
	// Msg is the human-readable explanation.
	Msg string
}

// String implements fmt.Stringer.
func (d Diagnostic) String() string {
	if d.Node == nil {
		return fmt.Sprintf("%s: %s", d.Kind, d.Msg)
	}
	return fmt.Sprintf("%s: %s (in %s)", d.Kind, d.Msg, d.Node)
}

// Check statically typechecks a plan against a web scheme, without any page
// access. Unlike InferSchema, which stops at the first error, Check
// accumulates every diagnostic it can establish, recovering where an
// operator's input schema is still known. Beyond the schema-inference
// checks it also re-validates column provenance: the (scheme, path) origin
// recorded on each navigated column must resolve in the ADM scheme to a
// declaration agreeing with the plan — so a plan produced by a buggy
// rewrite that, say, retargets a follow past its declared link is rejected
// here rather than by a wrong answer at runtime.
//
// A nil result means the plan is well-typed; engines use that as the
// pre-execution gate.
func Check(e Expr, ws *adm.Scheme) []Diagnostic {
	c := &checker{ws: ws}
	c.check(e)
	return c.diags
}

type checker struct {
	ws    *adm.Scheme
	diags []Diagnostic
}

func (c *checker) errf(kind DiagKind, node Expr, format string, args ...interface{}) {
	c.diags = append(c.diags, Diagnostic{Kind: kind, Node: node, Msg: fmt.Sprintf(format, args...)})
}

// check computes the schema of e, accumulating diagnostics. It returns nil
// when the schema could not be established; callers skip the checks that
// need it and keep going elsewhere.
func (c *checker) check(e Expr) *Schema {
	switch x := e.(type) {
	case *ExtScan:
		c.errf(DiagNotComputable, e, "external relation %q is not computable; apply Rule 1 (default navigation) first", x.Relation)
		return nil

	case *EntryScan:
		ps := c.ws.Page(x.Scheme)
		if ps == nil {
			c.errf(DiagUnknownScheme, e, "unknown page-scheme %q", x.Scheme)
			return nil
		}
		ep, ok := c.ws.EntryPoint(x.Scheme)
		if !ok {
			c.errf(DiagNotEntryPoint, e, "page-scheme %q is not an entry point", x.Scheme)
		} else if x.URL != "" && x.URL != ep.URL {
			c.errf(DiagEntryURLMismatch, e, "entry scan of %q at %q, but the scheme declares %q", x.Scheme, x.URL, ep.URL)
		}
		return &Schema{Cols: pageCols(ps, x.EffAlias())}

	case *Unnest:
		in := c.check(x.In)
		if in == nil {
			return nil
		}
		col, ok := in.Col(x.Attr)
		if !ok {
			c.errf(DiagUnknownColumn, e, "unnest: no column %q in %s", x.Attr, in)
			return nil
		}
		if col.Type.Kind != nested.KindList {
			c.errf(DiagNotList, e, "unnest: column %q is not a list (type %s)", x.Attr, col.Type)
			return nil
		}
		c.checkProvenance(e, col)
		var cols []Col
		for _, keep := range in.Cols {
			if keep.Name != x.Attr {
				cols = append(cols, keep)
			}
		}
		for _, f := range col.Type.Elem {
			cols = append(cols, Col{
				Name:     x.Attr + "." + f.Name,
				Type:     f.Type,
				Scheme:   col.Scheme,
				Path:     append(append(adm.Path(nil), col.Path...), f.Name),
				Alias:    col.Alias,
				Optional: f.Optional,
			})
		}
		return &Schema{Cols: cols}

	case *Follow:
		in := c.check(x.In)
		if in == nil {
			return nil
		}
		col, ok := in.Col(x.Link)
		if !ok {
			c.errf(DiagUnknownColumn, e, "follow: no column %q in %s", x.Link, in)
			return nil
		}
		if col.Type.Kind != nested.KindLink {
			c.errf(DiagNotLink, e, "follow: column %q is not a link (type %s)", x.Link, col.Type)
			return nil
		}
		if col.Type.Target != x.Target {
			c.errf(DiagLinkTargetMismatch, e, "follow: link %q targets %q, expression says %q", x.Link, col.Type.Target, x.Target)
		}
		// Re-resolve the link's declared target from its recorded origin:
		// a rewrite bug that retargets a follow shows up here even when the
		// in-schema link type was rewritten consistently.
		if col.Scheme != "" && len(col.Path) > 0 {
			if declared, err := c.ws.LinkTarget(col.Ref()); err != nil {
				c.errf(DiagBadProvenance, e, "follow: link %q: %v", x.Link, err)
			} else if declared != x.Target {
				c.errf(DiagLinkTargetMismatch, e, "follow: link %q is declared to target %q, expression says %q", x.Link, declared, x.Target)
			}
		}
		ps := c.ws.Page(x.Target)
		if ps == nil {
			c.errf(DiagUnknownScheme, e, "follow: unknown target page-scheme %q", x.Target)
			return nil
		}
		cols := append([]Col(nil), in.Cols...)
		for _, pc := range pageCols(ps, x.EffAlias()) {
			for _, existing := range cols {
				if existing.Name == pc.Name {
					c.errf(DiagDuplicateColumn, e, "follow: column %q already present; use a distinct alias", pc.Name)
				}
			}
			cols = append(cols, pc)
		}
		return &Schema{Cols: cols}

	case *Select:
		in := c.check(x.In)
		if in == nil {
			return nil
		}
		for _, a := range x.Pred.Attrs(nil) {
			col, ok := in.Col(a)
			if !ok {
				c.errf(DiagUnknownColumn, e, "select: no column %q in %s", a, in)
				continue
			}
			if !col.Type.Mono() {
				c.errf(DiagNotMono, e, "select: column %q is not mono-valued", a)
			}
		}
		return in

	case *Project:
		if len(x.Cols) == 0 {
			c.errf(DiagEmptyProjection, e, "empty projection")
		}
		in := c.check(x.In)
		if in == nil {
			return nil
		}
		var cols []Col
		for _, name := range x.Cols {
			col, ok := in.Col(name)
			if !ok {
				c.errf(DiagUnknownColumn, e, "project: no column %q in %s", name, in)
				continue
			}
			cols = append(cols, col)
		}
		return &Schema{Cols: cols}

	case *Join:
		l, r := c.check(x.L), c.check(x.R)
		for _, cond := range x.Conds {
			var lc, rc Col
			lok, rok := false, false
			if l != nil {
				if lc, lok = l.Col(cond.Left); !lok {
					c.errf(DiagUnknownColumn, e, "join: no column %q on the left", cond.Left)
				}
			}
			if r != nil {
				if rc, rok = r.Col(cond.Right); !rok {
					c.errf(DiagUnknownColumn, e, "join: no column %q on the right", cond.Right)
				}
			}
			if lok && !lc.Type.Mono() {
				c.errf(DiagNotMono, e, "join: condition %s on multi-valued column %q", cond, cond.Left)
			}
			if rok && !rc.Type.Mono() {
				c.errf(DiagNotMono, e, "join: condition %s on multi-valued column %q", cond, cond.Right)
			}
		}
		if l == nil || r == nil {
			return nil
		}
		cols := append([]Col(nil), l.Cols...)
		for _, rc := range r.Cols {
			for _, existing := range cols {
				if existing.Name == rc.Name {
					c.errf(DiagDuplicateColumn, e, "join: column %q on both sides; use distinct aliases", rc.Name)
				}
			}
			cols = append(cols, rc)
		}
		return &Schema{Cols: cols}

	case *Rename:
		in := c.check(x.In)
		if in == nil {
			return nil
		}
		for old := range x.Map {
			if !in.Has(old) {
				c.errf(DiagUnknownColumn, e, "rename: no column %q in %s", old, in)
			}
		}
		cols := make([]Col, len(in.Cols))
		seen := make(map[string]bool, len(in.Cols))
		for i, col := range in.Cols {
			if nn, ok := x.Map[col.Name]; ok {
				col.Name = nn
			}
			if seen[col.Name] {
				c.errf(DiagDuplicateColumn, e, "rename: duplicate output column %q", col.Name)
			}
			seen[col.Name] = true
			cols[i] = col
		}
		return &Schema{Cols: cols}

	default:
		c.errf(DiagUnknownNode, e, "unknown expression node %T", e)
		return nil
	}
}

// CheckCols validates recorded column provenance against the web scheme:
// every column with an origin must resolve to a declaration of the same
// type. Check applies this to the schemas it infers itself; the rewrite
// engine applies it to the column maps its rules build by hand, where a
// buggy rule really can record an origin the scheme does not declare.
func CheckCols(cols []Col, ws *adm.Scheme) []Diagnostic {
	c := &checker{ws: ws}
	for _, col := range cols {
		c.checkProvenance(nil, col)
	}
	return c.diags
}

// checkProvenance re-resolves a navigated column's recorded (scheme, path)
// origin against the web scheme and compares the declared type with the one
// the plan carries.
func (c *checker) checkProvenance(node Expr, col Col) {
	if col.Scheme == "" || len(col.Path) == 0 {
		return
	}
	declared, err := c.ws.ResolvePath(col.Scheme, col.Path)
	if err != nil {
		c.errf(DiagBadProvenance, node, "column %q: %v", col.Name, err)
		return
	}
	if !declared.Equal(col.Type) {
		c.errf(DiagBadProvenance, node, "column %q carries type %s but %s declares %s", col.Name, col.Type, col.Ref(), declared)
	}
}
