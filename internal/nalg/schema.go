package nalg

import (
	"fmt"
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Col describes one output column of an expression, with provenance back to
// the ADM scheme. Provenance is what lets the rewrite rules look up link and
// inclusion constraints for a column, and the cost model look up statistics.
type Col struct {
	// Name is the qualified column name, e.g. "ProfPage.Name" or
	// "DeptPage.ProfList.ToProf".
	Name string
	// Type is the column's web type.
	Type nested.Type
	// Scheme is the page-scheme the column originates from; empty for
	// columns with no page provenance.
	Scheme string
	// Path is the attribute path within the origin scheme.
	Path adm.Path
	// Alias is the scan/follow alias that produced the column.
	Alias string
	// Optional reports whether the column may hold nulls.
	Optional bool
}

// Ref returns the ADM attribute reference of the column's origin.
func (c Col) Ref() adm.AttrRef { return adm.AttrRef{Scheme: c.Scheme, Path: c.Path} }

// Schema is the ordered output description of an expression.
type Schema struct {
	Cols []Col
}

// Col returns the named column and whether it exists.
func (s *Schema) Col(name string) (Col, bool) {
	for _, c := range s.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return Col{}, false
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool {
	_, ok := s.Col(name)
	return ok
}

// String renders the schema as a column list.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + ": " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// pageCols builds the columns of a page-scheme scanned under an alias.
func pageCols(scheme *adm.PageScheme, alias string) []Col {
	cols := make([]Col, 0, len(scheme.Attrs)+1)
	cols = append(cols, Col{
		Name:   alias + "." + adm.URLAttr,
		Type:   nested.Link(scheme.Name),
		Scheme: scheme.Name,
		Path:   adm.Path{adm.URLAttr},
		Alias:  alias,
	})
	for _, f := range scheme.Attrs {
		cols = append(cols, Col{
			Name:     alias + "." + f.Name,
			Type:     f.Type,
			Scheme:   scheme.Name,
			Path:     adm.Path{f.Name},
			Alias:    alias,
			Optional: f.Optional,
		})
	}
	return cols
}

// InferSchema computes the output schema of an expression against a web
// scheme, validating operator applicability along the way (unknown columns,
// unnest of non-lists, follow of non-links, join column collisions, …).
// ExtScan leaves have no inferable schema and are rejected: the caller must
// substitute default navigations first.
func InferSchema(e Expr, ws *adm.Scheme) (*Schema, error) {
	kids := e.Children()
	schemas := make([]*Schema, len(kids))
	for i, k := range kids {
		s, err := InferSchema(k, ws)
		if err != nil {
			return nil, err
		}
		schemas[i] = s
	}
	return InferNode(e, ws, schemas)
}

// InferNode computes the output schema of a single node given the already
// inferred schemas of its children (in Children() order). It lets callers
// that enumerate many overlapping plans memoize inference per subtree.
func InferNode(e Expr, ws *adm.Scheme, kids []*Schema) (*Schema, error) {
	child := func(i int) *Schema { return kids[i] }
	switch x := e.(type) {
	case *ExtScan:
		return nil, fmt.Errorf("nalg: external relation %q has no navigational schema (apply Rule 1 first)", x.Relation)

	case *EntryScan:
		ps := ws.Page(x.Scheme)
		if ps == nil {
			return nil, fmt.Errorf("nalg: unknown page-scheme %q", x.Scheme)
		}
		if _, ok := ws.EntryPoint(x.Scheme); !ok {
			return nil, fmt.Errorf("nalg: page-scheme %q is not an entry point", x.Scheme)
		}
		return &Schema{Cols: pageCols(ps, x.EffAlias())}, nil

	case *Unnest:
		in := child(0)
		col, ok := in.Col(x.Attr)
		if !ok {
			return nil, fmt.Errorf("nalg: unnest: no column %q in %s", x.Attr, in)
		}
		if col.Type.Kind != nested.KindList {
			return nil, fmt.Errorf("nalg: unnest: column %q is not a list (type %s)", x.Attr, col.Type)
		}
		var cols []Col
		for _, c := range in.Cols {
			if c.Name != x.Attr {
				cols = append(cols, c)
			}
		}
		for _, f := range col.Type.Elem {
			cols = append(cols, Col{
				Name:     x.Attr + "." + f.Name,
				Type:     f.Type,
				Scheme:   col.Scheme,
				Path:     append(append(adm.Path(nil), col.Path...), f.Name),
				Alias:    col.Alias,
				Optional: f.Optional,
			})
		}
		return &Schema{Cols: cols}, nil

	case *Follow:
		in := child(0)
		col, ok := in.Col(x.Link)
		if !ok {
			return nil, fmt.Errorf("nalg: follow: no column %q in %s", x.Link, in)
		}
		if col.Type.Kind != nested.KindLink {
			return nil, fmt.Errorf("nalg: follow: column %q is not a link (type %s)", x.Link, col.Type)
		}
		if col.Type.Target != x.Target {
			return nil, fmt.Errorf("nalg: follow: link %q targets %q, expression says %q", x.Link, col.Type.Target, x.Target)
		}
		ps := ws.Page(x.Target)
		if ps == nil {
			return nil, fmt.Errorf("nalg: follow: unknown target page-scheme %q", x.Target)
		}
		cols := append([]Col(nil), in.Cols...)
		for _, c := range pageCols(ps, x.EffAlias()) {
			for _, existing := range cols {
				if existing.Name == c.Name {
					return nil, fmt.Errorf("nalg: follow: column %q already present; use a distinct alias", c.Name)
				}
			}
			cols = append(cols, c)
		}
		return &Schema{Cols: cols}, nil

	case *Select:
		in := child(0)
		for _, a := range x.Pred.Attrs(nil) {
			c, ok := in.Col(a)
			if !ok {
				return nil, fmt.Errorf("nalg: select: no column %q in %s", a, in)
			}
			if !c.Type.Mono() {
				return nil, fmt.Errorf("nalg: select: column %q is not mono-valued", a)
			}
		}
		return in, nil

	case *Project:
		in := child(0)
		if len(x.Cols) == 0 {
			return nil, fmt.Errorf("nalg: empty projection")
		}
		cols := make([]Col, len(x.Cols))
		for i, name := range x.Cols {
			c, ok := in.Col(name)
			if !ok {
				return nil, fmt.Errorf("nalg: project: no column %q in %s", name, in)
			}
			cols[i] = c
		}
		return &Schema{Cols: cols}, nil

	case *Join:
		l, r := child(0), child(1)
		for _, c := range x.Conds {
			lc, ok := l.Col(c.Left)
			if !ok {
				return nil, fmt.Errorf("nalg: join: no column %q on the left", c.Left)
			}
			rc, ok := r.Col(c.Right)
			if !ok {
				return nil, fmt.Errorf("nalg: join: no column %q on the right", c.Right)
			}
			if !lc.Type.Mono() || !rc.Type.Mono() {
				return nil, fmt.Errorf("nalg: join: condition %s on multi-valued column", c)
			}
		}
		cols := append([]Col(nil), l.Cols...)
		for _, c := range r.Cols {
			for _, existing := range cols {
				if existing.Name == c.Name {
					return nil, fmt.Errorf("nalg: join: column %q on both sides; use distinct aliases", c.Name)
				}
			}
			cols = append(cols, c)
		}
		return &Schema{Cols: cols}, nil

	case *Rename:
		in := child(0)
		cols := make([]Col, len(in.Cols))
		seen := make(map[string]bool, len(in.Cols))
		for i, c := range in.Cols {
			if nn, ok := x.Map[c.Name]; ok {
				c.Name = nn
			}
			if seen[c.Name] {
				return nil, fmt.Errorf("nalg: rename: duplicate output column %q", c.Name)
			}
			seen[c.Name] = true
			cols[i] = c
		}
		for old := range x.Map {
			if !in.Has(old) {
				return nil, fmt.Errorf("nalg: rename: no column %q in %s", old, in)
			}
		}
		return &Schema{Cols: cols}, nil

	default:
		return nil, fmt.Errorf("nalg: unknown expression node %T", e)
	}
}
