package nalg

import (
	"strings"
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

// fixture builds the paper-sized university site with a fetcher source.
func fixture(t *testing.T) (*sitegen.University, *site.MemSite, Source) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, ms, FetcherSource{F: site.NewFetcher(ms, u.Scheme)}
}

func TestExprStrings(t *testing.T) {
	u, _, _ := fixture(t)
	// Expression 1 of the paper: ProfListPage ◦ ProfList → ProfPage.
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	want := "ProfListPage◦ProfList→[ToProf]ProfPage"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	sel := &Select{In: e, Pred: nested.Eq("ProfPage.DName", "Computer Science")}
	proj := &Project{In: sel, Cols: []string{"ProfPage.Name", "ProfPage.Email"}}
	if !strings.Contains(proj.String(), "π[ProfPage.Name,ProfPage.Email]") {
		t.Errorf("projection rendering: %s", proj)
	}
	if !strings.Contains(sel.String(), "σ[ProfPage.DName='Computer Science']") {
		t.Errorf("selection rendering: %s", sel)
	}
}

func TestComputable(t *testing.T) {
	u, _, _ := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	if !Computable(e) {
		t.Error("entry-rooted navigation should be computable")
	}
	ext := &Join{L: &ExtScan{Relation: "Professor"}, R: e, Conds: nil}
	if Computable(ext) {
		t.Error("expression with external leaf should not be computable")
	}
	if len(Leaves(ext)) != 2 {
		t.Error("leaves miscounted")
	}
}

func TestEqualAndWalk(t *testing.T) {
	u, _, _ := fixture(t)
	a := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	b := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	c := From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").MustBuild()
	if !Equal(a, b) || Equal(a, c) {
		t.Error("Equal wrong")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("Equal nil handling wrong")
	}
	n := 0
	Walk(a, func(Expr) { n++ })
	if n != 2 {
		t.Errorf("walk visited %d nodes", n)
	}
}

func TestInferSchemaEntry(t *testing.T) {
	u, _, _ := fixture(t)
	e := &EntryScan{Scheme: sitegen.ProfListPage, URL: sitegen.UnivProfListURL}
	s, err := InferSchema(e, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("ProfListPage.URL") || !s.Has("ProfListPage.ProfList") {
		t.Errorf("schema = %s", s)
	}
	col, _ := s.Col("ProfListPage.ProfList")
	if col.Type.Kind != nested.KindList || col.Scheme != sitegen.ProfListPage {
		t.Errorf("ProfList col = %+v", col)
	}
	// Non-entry scheme rejected.
	if _, err := InferSchema(&EntryScan{Scheme: sitegen.ProfPage, URL: "u"}, u.Scheme); err == nil {
		t.Error("EntryScan of non-entry scheme should fail")
	}
	if _, err := InferSchema(&EntryScan{Scheme: "Nope", URL: "u"}, u.Scheme); err == nil {
		t.Error("unknown scheme should fail")
	}
	if _, err := InferSchema(&ExtScan{Relation: "R"}, u.Scheme); err == nil {
		t.Error("ExtScan should have no schema")
	}
}

func TestInferSchemaNavigation(t *testing.T) {
	u, _, _ := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	s, err := InferSchema(e, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ProfListPage.URL",
		"ProfListPage.ProfList.ProfName",
		"ProfListPage.ProfList.ToProf",
		"ProfPage.URL",
		"ProfPage.Name",
		"ProfPage.CourseList",
	} {
		if !s.Has(want) {
			t.Errorf("schema missing %q: %s", want, s)
		}
	}
	if s.Has("ProfListPage.ProfList") {
		t.Error("unnested list column should be gone")
	}
	// Provenance of the promoted link column.
	col, _ := s.Col("ProfListPage.ProfList.ToProf")
	if col.Scheme != sitegen.ProfListPage || col.Path.String() != "ProfList.ToProf" {
		t.Errorf("provenance = %+v", col)
	}
	if col.Ref().String() != "ProfListPage.ProfList.ToProf" {
		t.Errorf("Ref = %s", col.Ref())
	}
}

func TestInferSchemaErrors(t *testing.T) {
	u, _, _ := fixture(t)
	entry := &EntryScan{Scheme: sitegen.ProfListPage, URL: sitegen.UnivProfListURL}
	cases := []Expr{
		&Unnest{In: entry, Attr: "ProfListPage.Missing"},
		&Unnest{In: entry, Attr: "ProfListPage.Title"},
		&Follow{In: entry, Link: "ProfListPage.Missing", Target: sitegen.ProfPage},
		&Follow{In: entry, Link: "ProfListPage.Title", Target: sitegen.ProfPage},
		&Follow{In: &Unnest{In: entry, Attr: "ProfListPage.ProfList"}, Link: "ProfListPage.ProfList.ToProf", Target: sitegen.DeptPage},
		&Select{In: entry, Pred: nested.Eq("Missing", "x")},
		&Select{In: entry, Pred: nested.Eq("ProfListPage.ProfList", "x")},
		&Project{In: entry, Cols: []string{"Missing"}},
		&Project{In: entry, Cols: nil},
		&Join{L: entry, R: entry, Conds: nil}, // column collision
		&Rename{In: entry, Map: map[string]string{"Missing": "X"}},
		&Rename{In: entry, Map: map[string]string{"ProfListPage.URL": "ProfListPage.Title"}},
	}
	for i, e := range cases {
		if _, err := InferSchema(e, u.Scheme); err == nil {
			t.Errorf("case %d (%s): expected schema error", i, e)
		}
	}
}

func TestInferSchemaJoin(t *testing.T) {
	u, _, _ := fixture(t)
	l := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	r := From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").MustBuild()
	j := &Join{L: l, R: r, Conds: []nested.EqCond{{Left: "ProfListPage.ProfList.ProfName", Right: "DeptListPage.DeptList.DeptName"}}}
	s, err := InferSchema(j, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cols) != 8 {
		t.Errorf("join schema = %s", s)
	}
	bad := &Join{L: l, R: r, Conds: []nested.EqCond{{Left: "Missing", Right: "DeptListPage.DeptList.DeptName"}}}
	if _, err := InferSchema(bad, u.Scheme); err == nil {
		t.Error("bad join condition should fail")
	}
	bad2 := &Join{L: l, R: r, Conds: []nested.EqCond{{Left: "ProfListPage.ProfList.ProfName", Right: "Missing"}}}
	if _, err := InferSchema(bad2, u.Scheme); err == nil {
		t.Error("bad right condition should fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	u, _, _ := fixture(t)
	if _, err := From(u.Scheme, sitegen.ProfPage).Build(); err == nil {
		t.Error("From non-entry should fail")
	}
	if _, err := FromAlias(u.Scheme, sitegen.ProfPage, "X").Build(); err == nil {
		t.Error("FromAlias non-entry should fail")
	}
	if _, err := From(u.Scheme, sitegen.ProfListPage).Follow("Nope").Build(); err == nil {
		t.Error("Follow of missing attribute should fail")
	}
	if _, err := From(u.Scheme, sitegen.ProfListPage).Follow("Title").Build(); err == nil {
		t.Error("Follow of non-link should fail")
	}
	// Errors propagate through subsequent calls.
	b := From(u.Scheme, sitegen.ProfPage).Unnest("X").Follow("Y").Where(nested.Eq("A", "b")).WhereEq("A", "b").Project("C")
	if _, err := b.Build(); err == nil {
		t.Error("chained error should surface at Build")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBuild should panic on error")
			}
		}()
		From(u.Scheme, sitegen.ProfPage).MustBuild()
	}()
}

func TestBuilderPrefixTracking(t *testing.T) {
	u, _, _ := fixture(t)
	b := From(u.Scheme, sitegen.SessionListPage).Unnest("SesList")
	if b.Prefix() != "SessionListPage.SesList" {
		t.Errorf("prefix = %q", b.Prefix())
	}
	b = b.Follow("ToSes")
	if b.Prefix() != "SessionPage" {
		t.Errorf("prefix = %q", b.Prefix())
	}
	b = b.FollowAs("", "")
	_ = b
}

func TestEvalEntryScan(t *testing.T) {
	u, _, src := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).MustBuild()
	rel, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("entry relation len = %d", rel.Len())
	}
	tup := rel.Tuples()[0]
	if _, ok := tup.Get("ProfListPage.URL"); !ok {
		t.Errorf("columns not qualified: %v", tup.Names())
	}
}

func TestEvalUnnestCardinality(t *testing.T) {
	u, _, src := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild()
	rel, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != u.Params.Profs {
		t.Errorf("unnest len = %d, want %d", rel.Len(), u.Params.Profs)
	}
}

// TestEvalExpression2 reproduces the paper's Expression (2): name and email
// of professors in the Computer Science department.
func TestEvalExpression2(t *testing.T) {
	u, ms, src := fixture(t)
	e := From(u.Scheme, sitegen.ProfListPage).
		Unnest("ProfList").
		Follow("ToProf").
		Where(nested.Eq("ProfPage.DName", "Computer Science")).
		Project("ProfPage.Name", "ProfPage.Email").
		MustBuild()
	rel, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the instance.
	want := 0
	for i := 0; i < u.Params.Profs; i++ {
		if u.DeptOf[i] == 0 { // dept 0 is Computer Science
			want++
		}
	}
	if rel.Len() != want {
		t.Errorf("CS professors = %d, want %d", rel.Len(), want)
	}
	// Cost: 1 entry + all professor pages (selection is downstream of the
	// navigation in this unoptimized expression).
	if got := ms.Counters().Gets(); got != 1+u.Params.Profs {
		t.Errorf("page accesses = %d, want %d", got, 1+u.Params.Profs)
	}
}

// TestEvalFigure2Plan evaluates the query plan of Figure 2: name and
// description of all courses held by members of the CS department.
func TestEvalFigure2Plan(t *testing.T) {
	u, _, src := fixture(t)
	e := From(u.Scheme, sitegen.DeptListPage).
		Unnest("DeptList").
		Where(nested.Eq("DeptListPage.DeptList.DeptName", "Computer Science")).
		Follow("ToDept").
		Unnest("ProfList").
		Follow("ToProf").
		Unnest("CourseList").
		Follow("ToCourse").
		Project("CoursePage.CName", "CoursePage.Description").
		MustBuild()
	rel, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for c := 0; c < u.Params.Courses; c++ {
		if u.DeptOf[u.InstructorOf[c]] == 0 {
			want++
		}
	}
	if rel.Len() != want {
		t.Errorf("CS courses = %d, want %d", rel.Len(), want)
	}
}

func TestEvalJoinOfTwoPaths(t *testing.T) {
	u, _, src := fixture(t)
	// Professors joined with their department row via DName.
	profs := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	depts := From(u.Scheme, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").MustBuild()
	j := &Join{L: profs, R: depts, Conds: []nested.EqCond{{Left: "ProfPage.DName", Right: "DeptPage.DName"}}}
	rel, err := Eval(j, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != u.Params.Profs {
		t.Errorf("join len = %d, want %d (each prof matches its dept)", rel.Len(), u.Params.Profs)
	}
}

func TestEvalFollowSkipsNullLinks(t *testing.T) {
	// A scheme with an optional link: tuples with null links are dropped by
	// navigation rather than erroring.
	ws := adm.NewScheme()
	if err := ws.AddPage(&adm.PageScheme{Name: "A", Attrs: []nested.Field{
		{Name: "Next", Type: nested.Link("B"), Optional: true},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddPage(&adm.PageScheme{Name: "B", Attrs: []nested.Field{
		{Name: "V", Type: nested.Text()},
	}}); err != nil {
		t.Fatal(err)
	}
	ws.AddEntryPoint("A", "urlA")
	in := adm.NewInstance(ws)
	if err := in.AddPage("A", nested.T(adm.URLAttr, nested.LinkValue("urlA"), "Next", nested.Null)); err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := From(ws, "A").Follow("Next").MustBuild()
	rel, err := Eval(e, ws, FetcherSource{F: site.NewFetcher(ms, ws)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Errorf("null link should navigate to nothing, got %d tuples", rel.Len())
	}
}

func TestEvalRename(t *testing.T) {
	u, _, src := fixture(t)
	e := &Rename{
		In: From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").MustBuild(),
		Map: map[string]string{
			"ProfListPage.ProfList.ProfName": "PName",
		},
	}
	rel, err := Eval(e, u.Scheme, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rel.Tuples()[0].Get("PName"); !ok {
		t.Error("rename not applied")
	}
}

func TestEvalRejectsExtScan(t *testing.T) {
	u, _, src := fixture(t)
	if _, err := Eval(&ExtScan{Relation: "R"}, u.Scheme, src); err == nil {
		t.Error("Eval of ExtScan should fail")
	}
}

func TestEvalEntryError(t *testing.T) {
	u, _, src := fixture(t)
	e := &EntryScan{Scheme: sitegen.ProfListPage, URL: "http://ghost/"}
	if _, err := Eval(e, u.Scheme, src); err == nil {
		t.Error("Eval with bad entry URL should fail")
	}
}

func TestExplainShapes(t *testing.T) {
	u, _, _ := fixture(t)
	left := From(u.Scheme, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	right := From(u.Scheme, sitegen.SessionListPage).Unnest("SesList").
		Where(nested.Eq("SessionListPage.SesList.Session", "Fall")).
		Follow("ToSes").Unnest("CourseList").MustBuild()
	j := &Join{L: left, R: right, Conds: []nested.EqCond{{
		Left:  "ProfPage.CourseList.ToCourse",
		Right: "SessionPage.CourseList.ToCourse",
	}}}
	plan := &Project{
		In:   &Follow{In: j, Link: "SessionPage.CourseList.ToCourse", Target: sitegen.CoursePage},
		Cols: []string{"CoursePage.CName", "CoursePage.Description"},
	}
	out := Explain(plan)
	for _, want := range []string{"π CoursePage.CName", "⋈", "→ ToCourse (CoursePage)", "entry ProfListPage", "entry SessionListPage", "◦ SesList", "σ "} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Both join branches must appear with tree connectors.
	if !strings.Contains(out, "├─") || !strings.Contains(out, "└─") {
		t.Errorf("explain should use tree connectors:\n%s", out)
	}
	// Rename and ext labels.
	r := &Rename{In: &ExtScan{Relation: "Professor"}, Map: map[string]string{"A": "B"}}
	if !strings.Contains(Explain(r), "ρ A→B") || !strings.Contains(Explain(r), "ext Professor") {
		t.Errorf("explain rename/ext wrong:\n%s", Explain(r))
	}
}

func TestEvalDeterministicAcrossRuns(t *testing.T) {
	u, _, _ := fixture(t)
	build := func() (*nested.Relation, error) {
		ums, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
		if err != nil {
			return nil, err
		}
		ms, err := site.NewMemSite(ums.Instance, nil)
		if err != nil {
			return nil, err
		}
		e := From(u.Scheme, sitegen.SessionListPage).
			Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").
			Project("CoursePage.CName", "CoursePage.Type").
			MustBuild()
		return Eval(e, u.Scheme, FetcherSource{F: site.NewFetcher(ms, u.Scheme)})
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("evaluation not deterministic")
	}
	if a.Len() != 50 {
		t.Errorf("all courses = %d", a.Len())
	}
}
