// Package plancache caches prepared query plans across queries of the same
// shape. Algorithm 1 — translate, rewrite under Rules 1–9, cost, select —
// is by far the most expensive in-process step of a warm query, yet its
// outcome does not depend on the constant values of the query's selections:
// the cost model charges a constant selection the selectivity 1/c_A of its
// *attribute*, whatever the constant. So the cache keys plans by the
// query's canonicalized shape (constants parameterized out), optimizes the
// parameterized query once, and specializes the cached plan by
// substituting the actual constants back — a pure tree rebuild, orders of
// magnitude cheaper than re-planning.
//
// Cached plans embed the site statistics they were costed against. Before
// reuse the current statistics are compared with the entry's snapshot;
// entries whose statistics drifted past a configurable relative threshold
// are invalidated and re-planned, since the cost ranking that selected the
// plan may no longer hold.
package plancache

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/optimizer"
	"ulixes/internal/stats"
)

// Defaults for Config's zero values.
const (
	DefaultMaxEntries     = 256
	DefaultDriftThreshold = 0.25
)

// Config tunes the cache.
type Config struct {
	// MaxEntries bounds the number of cached plan shapes; the least
	// recently used entry is evicted beyond it (0 = DefaultMaxEntries).
	MaxEntries int
	// DriftThreshold is the maximum relative statistics drift (see
	// stats.DriftFrom) a cached plan survives; entries past it are
	// invalidated (0 = DefaultDriftThreshold; negative disables
	// invalidation).
	DriftThreshold float64
}

// Counters are the cache's cumulative observability counters.
type Counters struct {
	// Hits counts queries answered from a cached plan (specialization
	// only — no parse, typecheck, rewrite or costing).
	Hits uint64
	// Misses counts queries that ran the full optimizer (first sight of a
	// shape, post-invalidation re-planning, or an uncacheable query).
	Misses uint64
	// Invalidations counts entries dropped because statistics drifted
	// past the threshold.
	Invalidations uint64
	// Entries is the current number of cached shapes.
	Entries int
}

type entry struct {
	res     *optimizer.Result
	snap    stats.Snapshot
	lastUse uint64
}

// Cache is a prepared-plan cache. It is safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry // guarded by mu
	clock   uint64            // logical LRU clock; guarded by mu
	hits    uint64            // guarded by mu
	misses  uint64            // guarded by mu
	invals  uint64            // guarded by mu
}

// New creates a cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	return &Cache{cfg: cfg, entries: make(map[string]*entry)}
}

// Counters returns a snapshot of the cache's counters.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{Hits: c.hits, Misses: c.misses, Invalidations: c.invals, Entries: len(c.entries)}
}

// Peek returns the estimated page cost of the cached plan for q's shape,
// without optimizing on a miss, counting a hit, or refreshing LRU order.
// Admission control uses it as a free advisory estimate before deciding
// whether the query fits the remaining capacity: a shape the cache has
// never planned returns ok=false and the caller treats the cost as
// unknown. Drift is deliberately not re-checked here — a slightly stale
// estimate is still the right order of magnitude for a capacity gate, and
// Prepare re-validates before the plan actually runs.
func (c *Cache) Peek(q *cq.Query, scope string) (cost float64, ok bool) {
	canon, _, okc := Canonicalize(q)
	if !okc {
		return 0, false
	}
	key := scope + "\n" + canon.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return 0, false
	}
	return e.res.Best.Cost, true
}

// Prepare returns an optimizer result for q: from the cache when a plan
// for q's shape is present and its statistics snapshot has not drifted,
// otherwise by running optimize on the parameterized shape and caching the
// outcome. cached reports a hit — the full planning pipeline was skipped.
// scope distinguishes plans produced under different optimizer options.
func (c *Cache) Prepare(q *cq.Query, st *stats.Stats, scope string, optimize func(*cq.Query) (*optimizer.Result, error)) (res *optimizer.Result, cached bool, err error) {
	canon, params, ok := Canonicalize(q)
	if !ok {
		// A constant collides with the sentinel alphabet; plan directly.
		r, err := optimize(q)
		return r, false, err
	}
	key := scope + "\n" + canon.String()

	c.mu.Lock()
	e := c.entries[key]
	if e != nil && c.cfg.DriftThreshold >= 0 && st != nil && st.DriftFrom(e.snap) > c.cfg.DriftThreshold {
		delete(c.entries, key)
		c.invals++
		e = nil
	}
	if e != nil {
		c.hits++
		c.clock++
		e.lastUse = c.clock
		r := e.res
		c.mu.Unlock()
		return specializeResult(r, params), true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Optimize the parameterized shape, so the cached trees carry the
	// sentinels and any constants can be substituted on later hits.
	r, err := optimize(canon)
	if err != nil {
		return nil, false, err
	}
	var snap stats.Snapshot
	if st != nil {
		snap = st.Snapshot()
	}
	c.mu.Lock()
	c.clock++
	c.entries[key] = &entry{res: r, snap: snap, lastUse: c.clock}
	for len(c.entries) > c.cfg.MaxEntries {
		var lruKey string
		var lru uint64
		first := true
		for k, e := range c.entries {
			if first || e.lastUse < lru {
				lruKey, lru, first = k, e.lastUse, false
			}
		}
		delete(c.entries, lruKey)
	}
	c.mu.Unlock()
	return specializeResult(r, params), false, nil
}

// sentinel returns the placeholder value for the i-th constant. The NUL
// framing cannot appear in parsed query text, so placeholders never
// collide with real constants (Canonicalize still verifies).
func sentinel(i int) string {
	return "\x00?" + strconv.Itoa(i) + "\x00"
}

// sentinelIndex reports whether s is a placeholder and for which ordinal.
func sentinelIndex(s string) (int, bool) {
	if len(s) < 4 || s[0] != '\x00' || s[1] != '?' || s[len(s)-1] != '\x00' {
		return 0, false
	}
	n, err := strconv.Atoi(s[2 : len(s)-1])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Canonicalize parameterizes a query's shape: each constant selection
// value is replaced with an ordinal placeholder and returned in params.
// ok is false when a constant contains the placeholder alphabet (NUL),
// in which case the query must bypass the cache.
func Canonicalize(q *cq.Query) (canon *cq.Query, params []string, ok bool) {
	out := *q
	out.Consts = make([]cq.ConstSel, len(q.Consts))
	params = make([]string, len(q.Consts))
	for i, cs := range q.Consts {
		if strings.ContainsRune(cs.Val, '\x00') {
			return nil, nil, false
		}
		params[i] = cs.Val
		cs.Val = sentinel(i)
		out.Consts[i] = cs
	}
	return &out, params, true
}

// specializeResult substitutes the actual constants into every candidate
// of a cached (parameterized) result, re-sorting with the optimizer's
// comparator so tie-breaks match what planning the concrete query would
// have produced. The cached trees are never mutated: substitution rebuilds
// the spine above each changed node and shares everything else.
func specializeResult(r *optimizer.Result, params []string) *optimizer.Result {
	if len(params) == 0 {
		return r
	}
	cands := make([]optimizer.Plan, len(r.Candidates))
	for i, p := range r.Candidates {
		p.Expr = substExpr(p.Expr, params)
		cands[i] = p
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		return cands[i].Expr.String() < cands[j].Expr.String()
	})
	return &optimizer.Result{Best: cands[0], Candidates: cands, PlansConsidered: r.PlansConsidered}
}

// substExpr returns e with placeholder constants replaced by their
// parameter values, sharing unchanged subtrees.
func substExpr(e nalg.Expr, params []string) nalg.Expr {
	switch x := e.(type) {
	case *nalg.Select:
		in := substExpr(x.In, params)
		pred, changed := substPred(x.Pred, params)
		if in == x.In && !changed {
			return e
		}
		return &nalg.Select{In: in, Pred: pred}
	case *nalg.Project:
		if in := substExpr(x.In, params); in != x.In {
			return &nalg.Project{In: in, Cols: x.Cols}
		}
	case *nalg.Rename:
		if in := substExpr(x.In, params); in != x.In {
			return &nalg.Rename{In: in, Map: x.Map}
		}
	case *nalg.Unnest:
		if in := substExpr(x.In, params); in != x.In {
			return &nalg.Unnest{In: in, Attr: x.Attr}
		}
	case *nalg.Follow:
		if in := substExpr(x.In, params); in != x.In {
			return &nalg.Follow{In: in, Link: x.Link, Target: x.Target, Alias: x.Alias}
		}
	case *nalg.Join:
		l, r := substExpr(x.L, params), substExpr(x.R, params)
		if l != x.L || r != x.R {
			return &nalg.Join{L: l, R: r, Conds: x.Conds}
		}
	}
	return e
}

// substPred rebuilds a predicate with placeholders replaced; changed
// reports whether any substitution happened.
func substPred(p nested.Predicate, params []string) (nested.Predicate, bool) {
	switch q := p.(type) {
	case nested.ConstPred:
		tv, ok := q.Val.(nested.TextValue)
		if !ok {
			return p, false
		}
		i, ok := sentinelIndex(string(tv))
		if !ok || i >= len(params) {
			return p, false
		}
		q.Val = nested.TextValue(params[i])
		return q, true
	case nested.AndPred:
		out := make(nested.AndPred, len(q))
		changed := false
		for i, sub := range q {
			s, ch := substPred(sub, params)
			out[i] = s
			changed = changed || ch
		}
		if !changed {
			return p, false
		}
		return out, true
	default:
		return p, false
	}
}
