package plancache

import (
	"fmt"
	"testing"

	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/optimizer"
	"ulixes/internal/stats"
)

func parse(t *testing.T, src string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSentinelRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 7, 42, 1000} {
		s := sentinel(i)
		got, ok := sentinelIndex(s)
		if !ok || got != i {
			t.Errorf("sentinelIndex(sentinel(%d)) = %d, %v", i, got, ok)
		}
	}
	for _, s := range []string{"", "Full", "\x00?", "\x00?x\x00", "?3", "\x00?3"} {
		if _, ok := sentinelIndex(s); ok {
			t.Errorf("sentinelIndex(%q) unexpectedly ok", s)
		}
	}
}

func TestCanonicalize(t *testing.T) {
	q := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full' AND p.Email = 'x@y'")
	canon, params, ok := Canonicalize(q)
	if !ok {
		t.Fatal("Canonicalize not ok")
	}
	if len(params) != 2 || params[0] != "Full" || params[1] != "x@y" {
		t.Fatalf("params = %v", params)
	}
	for i, cs := range canon.Consts {
		if n, ok := sentinelIndex(cs.Val); !ok || n != i {
			t.Errorf("const %d = %q, want sentinel %d", i, cs.Val, i)
		}
	}
	// The original query is untouched.
	if q.Consts[0].Val != "Full" || q.Consts[1].Val != "x@y" {
		t.Fatalf("Canonicalize mutated its argument: %v", q.Consts)
	}
	// Two queries differing only in constants canonicalize identically.
	q2 := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Assistant' AND p.Email = 'a@b'")
	canon2, _, _ := Canonicalize(q2)
	if canon.String() != canon2.String() {
		t.Errorf("canonical forms differ:\n%s\n%s", canon, canon2)
	}
	// Queries with different shapes do not.
	q3 := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'")
	canon3, _, _ := Canonicalize(q3)
	if canon.String() == canon3.String() {
		t.Error("different shapes canonicalized to the same form")
	}
}

func TestCanonicalizeNULBypass(t *testing.T) {
	q := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'")
	q.Consts[0].Val = "evil\x00value"
	if _, _, ok := Canonicalize(q); ok {
		t.Fatal("Canonicalize accepted a NUL-bearing constant")
	}
	// Prepare must still answer, bypassing the cache.
	c := New(Config{})
	res, cached, err := c.Prepare(q, stats.New(), "", fakeOptimize(nil))
	if err != nil || cached || res == nil {
		t.Fatalf("bypass Prepare = (%v, %v, %v)", res, cached, err)
	}
	if n := c.Counters(); n.Entries != 0 || n.Hits != 0 {
		t.Fatalf("bypass should not populate the cache: %+v", n)
	}
}

// fakeOptimize returns an optimize function producing a one-candidate
// result whose plan selects the query's first constant, and records the
// queries it was called with.
func fakeOptimize(calls *[]string) func(*cq.Query) (*optimizer.Result, error) {
	return func(q *cq.Query) (*optimizer.Result, error) {
		if calls != nil {
			*calls = append(*calls, q.String())
		}
		val := "none"
		if len(q.Consts) > 0 {
			val = q.Consts[0].Val
		}
		expr := nalg.Expr(&nalg.Select{
			In:   &nalg.EntryScan{Scheme: "P", URL: "u", Alias: "p"},
			Pred: nested.ConstPred{Attr: "p.A", Op: nested.OpEq, Val: nested.TextValue(val)},
		})
		p := optimizer.Plan{Expr: expr, Cost: 1}
		return &optimizer.Result{Best: p, Candidates: []optimizer.Plan{p}, PlansConsidered: 1}, nil
	}
}

func TestPrepareHitSpecializes(t *testing.T) {
	c := New(Config{})
	st := stats.New()
	var calls []string
	opt := fakeOptimize(&calls)

	q1 := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'")
	r1, cached, err := c.Prepare(q1, st, "scope", opt)
	if err != nil || cached {
		t.Fatalf("first Prepare: cached=%v err=%v", cached, err)
	}
	q2 := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Assistant'")
	r2, cached, err := c.Prepare(q2, st, "scope", opt)
	if err != nil || !cached {
		t.Fatalf("second Prepare: cached=%v err=%v", cached, err)
	}
	if len(calls) != 1 {
		t.Fatalf("optimize ran %d times, want 1", len(calls))
	}
	// Each result carries its own constant, not the sentinel.
	wantConst := func(r *optimizer.Result, want string) {
		t.Helper()
		sel := r.Best.Expr.(*nalg.Select)
		got := string(sel.Pred.(nested.ConstPred).Val.(nested.TextValue))
		if got != want {
			t.Errorf("specialized constant = %q, want %q", got, want)
		}
	}
	wantConst(r1, "Full")
	wantConst(r2, "Assistant")
	if n := c.Counters(); n.Hits != 1 || n.Misses != 1 || n.Entries != 1 {
		t.Fatalf("counters = %+v", n)
	}
	// A different scope misses even for the same shape.
	if _, cached, _ := c.Prepare(q1, st, "other-scope", opt); cached {
		t.Fatal("scope change should miss")
	}
}

func TestPrepareDriftInvalidation(t *testing.T) {
	c := New(Config{DriftThreshold: 0.25})
	st := stats.New()
	st.Card["P"] = 100
	q := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'")
	opt := fakeOptimize(nil)

	if _, cached, _ := c.Prepare(q, st, "", opt); cached {
		t.Fatal("cold Prepare hit")
	}
	st.Card["P"] = 110 // 10% drift: under threshold
	if _, cached, _ := c.Prepare(q, st, "", opt); !cached {
		t.Fatal("10% drift should still hit")
	}
	st.Card["P"] = 200 // 100% drift vs snapshot at 100
	if _, cached, _ := c.Prepare(q, st, "", opt); cached {
		t.Fatal("100% drift should invalidate")
	}
	if n := c.Counters(); n.Invalidations != 1 || n.Misses != 2 || n.Hits != 1 {
		t.Fatalf("counters = %+v", n)
	}
	// Negative threshold disables invalidation entirely.
	c2 := New(Config{DriftThreshold: -1})
	st2 := stats.New()
	st2.Card["P"] = 100
	c2.Prepare(q, st2, "", opt)
	st2.Card["P"] = 1e9
	if _, cached, _ := c2.Prepare(q, st2, "", opt); !cached {
		t.Fatal("negative threshold should never invalidate")
	}
}

func TestPrepareLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	st := stats.New()
	opt := fakeOptimize(nil)
	shape := func(i int) *cq.Query {
		return parse(t, fmt.Sprintf("SELECT p.A%d FROM Professor p", i))
	}
	c.Prepare(shape(1), st, "", opt)
	c.Prepare(shape(2), st, "", opt)
	c.Prepare(shape(1), st, "", opt) // touch 1: 2 is now LRU
	c.Prepare(shape(3), st, "", opt) // evicts 2
	if n := c.Counters(); n.Entries != 2 {
		t.Fatalf("entries = %d, want 2", n.Entries)
	}
	if _, cached, _ := c.Prepare(shape(1), st, "", opt); !cached {
		t.Fatal("shape 1 should have survived eviction")
	}
	if _, cached, _ := c.Prepare(shape(2), st, "", opt); cached {
		t.Fatal("shape 2 should have been evicted")
	}
}

func TestSubstExprSharesUnchangedSubtrees(t *testing.T) {
	scan := &nalg.EntryScan{Scheme: "P", URL: "u", Alias: "p"}
	inner := nalg.Expr(&nalg.Project{In: scan, Cols: []string{"p.A"}})
	sel := &nalg.Select{
		In:   inner,
		Pred: nested.ConstPred{Attr: "p.A", Op: nested.OpEq, Val: nested.TextValue(sentinel(0))},
	}
	out := substExpr(sel, []string{"Full"})
	got := out.(*nalg.Select)
	if got == sel {
		t.Fatal("substExpr returned the cached node despite a substitution")
	}
	if got.In != inner {
		t.Error("unchanged subtree was rebuilt instead of shared")
	}
	if v := string(got.Pred.(nested.ConstPred).Val.(nested.TextValue)); v != "Full" {
		t.Errorf("substituted value = %q", v)
	}
	// The cached tree is untouched.
	if v := string(sel.Pred.(nested.ConstPred).Val.(nested.TextValue)); v != sentinel(0) {
		t.Errorf("cached tree mutated: %q", v)
	}
	// No sentinel anywhere: identical expression returned as-is.
	if substExpr(inner, []string{"Full"}) != inner {
		t.Error("sentinel-free tree should be returned unchanged")
	}
}
