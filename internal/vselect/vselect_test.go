package vselect

import (
	"testing"

	"ulixes/internal/cost"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/vanswer"
	"ulixes/internal/view"
	"ulixes/internal/workload"
)

func registry(t *testing.T) (*view.Registry, *cost.Model) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	model := &cost.Model{Scheme: u.Scheme, Stats: stats.CollectInstance(u.Instance)}
	return views, model
}

func shape(name string, rels []string, freq, livePages int) workload.ShapeSummary {
	return workload.ShapeSummary{Shape: name, Relations: rels, Freq: freq, LivePages: livePages}
}

// TestGreedyPacksBudgetByBenefitPerByte: the hot shape's relation is chosen
// first; a budget covering one candidate excludes the rest.
func TestGreedyPacksBudgetByBenefitPerByte(t *testing.T) {
	views, _ := registry(t)
	s := New(Config{Views: views, Budget: 100 * DefaultTupleBytes})
	d := s.Decide([]workload.ShapeSummary{
		shape("profs", []string{"Professor"}, 10, 100), // benefit 100
		shape("depts", []string{"Dept"}, 1, 2),         // benefit 2
	})
	if len(d.Select) != 1 {
		t.Fatalf("selected %d candidates, want 1 under the budget", len(d.Select))
	}
	if d.Select[0].Def.Relation != "Professor" {
		t.Errorf("selected %s, want Professor (higher benefit per byte)", d.Select[0].Def.Key())
	}
	if d.TotalEstBytes != d.Select[0].EstBytes || d.TotalEstBytes > 100*DefaultTupleBytes {
		t.Errorf("TotalEstBytes = %d", d.TotalEstBytes)
	}
	// Without a budget both make it.
	d = New(Config{Views: views}).Decide([]workload.ShapeSummary{
		shape("profs", []string{"Professor"}, 10, 100),
		shape("depts", []string{"Dept"}, 1, 2),
	})
	if len(d.Select) != 2 {
		t.Errorf("unlimited budget selected %d, want 2", len(d.Select))
	}
}

// TestBoundCandidateWinsForSkewedConstants: when one binding dominates a
// single-relation shape, the bound variant's smaller footprint beats the
// unbound extent per byte — and only one view per relation survives.
func TestBoundCandidateWinsForSkewedConstants(t *testing.T) {
	views, _ := registry(t)
	sum := workload.ShapeSummary{
		Shape:      "profs-by-rank",
		Relations:  []string{"Professor"},
		ConstAttrs: []string{"Professor.Rank"},
		Freq:       10,
		LivePages:  100,
		Bindings: []workload.BindingCount{
			{Consts: []string{"Full"}, Freq: 8},
			{Consts: []string{"Assistant"}, Freq: 2},
		},
	}
	d := New(Config{Views: views}).Decide([]workload.ShapeSummary{sum})
	if len(d.Select) != 1 {
		t.Fatalf("selected %d, want 1 (one view per relation)", len(d.Select))
	}
	got := d.Select[0].Def
	want := vanswer.Def{Relation: "Professor", Bindings: []vanswer.Binding{{Attr: "Rank", Val: "Full"}}}
	if got.Key() != want.Key() {
		t.Errorf("selected %s, want %s", got.Key(), want.Key())
	}
}

// TestJoinShapeYieldsBothRelations: a two-atom shape proposes (and under no
// budget, selects) the unbound extent of each relation it touches.
func TestJoinShapeYieldsBothRelations(t *testing.T) {
	views, _ := registry(t)
	d := New(Config{Views: views}).Decide([]workload.ShapeSummary{
		shape("join", []string{"CourseInstructor", "Professor"}, 5, 200),
	})
	if len(d.Select) != 2 {
		t.Fatalf("selected %d, want both join relations", len(d.Select))
	}
	got := map[string]bool{}
	for _, c := range d.Select {
		got[c.Def.Relation] = true
	}
	if !got["CourseInstructor"] || !got["Professor"] {
		t.Errorf("selected %v", got)
	}
}

// TestAntiThrash: once a shape is fully view-answered its recorded live cost
// is zero — the model's cold estimate keeps the benefit visible so the
// selector does not drop the view it just materialized.
func TestAntiThrash(t *testing.T) {
	views, model := registry(t)
	allFromView := workload.ShapeSummary{
		Shape:     "profs",
		Relations: []string{"Professor"},
		Freq:      10,
		FromView:  10, // no live samples at all
	}
	// Without a model there is no signal: nothing selected.
	if d := New(Config{Views: views}).Decide([]workload.ShapeSummary{allFromView}); len(d.Select) != 0 {
		t.Fatalf("modelless selector chose %d candidates from a zero-cost workload", len(d.Select))
	}
	// With the model the cold estimate stands in and the view is kept.
	d := New(Config{Views: views, Model: model}).Decide([]workload.ShapeSummary{allFromView})
	if len(d.Select) != 1 || d.Select[0].Def.Relation != "Professor" {
		t.Fatalf("model-backed selection = %+v, want the Professor view kept", d.Select)
	}
}

// TestRefreshChargeCanKillACandidate: a view whose refresh traffic exceeds
// the workload's savings is not worth keeping.
func TestRefreshChargeCanKillACandidate(t *testing.T) {
	views, model := registry(t)
	barely := shape("depts", []string{"Dept"}, 1, 1) // benefit 1 page
	if d := New(Config{Views: views}).Decide([]workload.ShapeSummary{barely}); len(d.Select) != 1 {
		t.Fatalf("chargeless selection dropped a positive-benefit candidate")
	}
	// A full change rate makes the refresh as expensive as a cold crawl of
	// the extent — far more than the single page the workload would save.
	d := New(Config{Views: views, Model: model, ChangeRate: 1}).Decide([]workload.ShapeSummary{barely})
	if len(d.Select) != 0 {
		t.Errorf("selected %+v, want nothing (refresh costs more than it saves)", d.Select)
	}
}

// TestDriftGate: selection runs once, then stays quiet while the workload's
// frequency vector is stable, and re-triggers after it drifts.
func TestDriftGate(t *testing.T) {
	views, _ := registry(t)
	s := New(Config{Views: views})
	stable := []workload.ShapeSummary{shape("profs", []string{"Professor"}, 10, 100)}

	if s.ShouldRun(nil) {
		t.Error("empty workload: ShouldRun = true, want false (below MinSamples)")
	}
	if !s.ShouldRun(stable) {
		t.Fatal("first run: ShouldRun = false, want true")
	}
	s.Decide(stable)
	if s.Runs() != 1 {
		t.Fatalf("Runs = %d, want 1", s.Runs())
	}
	if s.ShouldRun(stable) {
		t.Error("unchanged workload: ShouldRun = true, want false")
	}
	drifted := []workload.ShapeSummary{
		shape("profs", []string{"Professor"}, 2, 20),
		shape("courses", []string{"Course"}, 12, 40),
	}
	if !s.ShouldRun(drifted) {
		t.Error("drifted workload: ShouldRun = false, want true")
	}
	// A negative threshold pins selection to the first run only.
	pinned := New(Config{Views: views, DriftThreshold: -1})
	pinned.Decide(stable)
	if pinned.ShouldRun(drifted) {
		t.Error("DriftThreshold < 0: ShouldRun = true after the first run")
	}
}

// TestDeterministic: the same summaries always produce the same decision.
func TestDeterministic(t *testing.T) {
	views, model := registry(t)
	sums := []workload.ShapeSummary{
		shape("a", []string{"Professor"}, 10, 100),
		shape("b", []string{"Dept"}, 10, 100),
		shape("c", []string{"Course"}, 10, 100),
	}
	first := New(Config{Views: views, Model: model}).Decide(sums)
	for i := 0; i < 5; i++ {
		again := New(Config{Views: views, Model: model}).Decide(sums)
		if len(again.Select) != len(first.Select) {
			t.Fatalf("run %d: %d selected, first run had %d", i, len(again.Select), len(first.Select))
		}
		for j := range again.Select {
			if again.Select[j].Def.Key() != first.Select[j].Def.Key() {
				t.Fatalf("run %d: position %d is %s, first run had %s", i, j, again.Select[j].Def.Key(), first.Select[j].Def.Key())
			}
		}
	}
}
