// Package vselect chooses which views to materialize, following the
// benefit-driven selection of "View Selection in Semantic Web Databases":
// under a storage budget, greedily pick the candidates with the highest
// benefit per byte, where benefit is the navigation cost the recorded
// workload would stop paying and the charge is the view's refresh traffic
// (cost.Model's warm estimate — one light connection per page plus a
// download per changed page).
//
// Candidates come from the workload recorder: the unbound extent of every
// external relation the workload touches, plus bound variants (extents
// filtered by a binding pattern) for single-relation shapes whose constant
// selections repeat. The selector is deterministic — same summaries, same
// decision — and re-runs only when the workload's shape-frequency vector
// has drifted past a threshold, so a stable workload never thrashes the
// store.
package vselect

import (
	"sort"
	"strings"
	"sync"

	"ulixes/internal/cost"
	"ulixes/internal/vanswer"
	"ulixes/internal/view"
	"ulixes/internal/workload"
)

// DefaultTupleBytes is the per-tuple storage estimate used to predict an
// extent's footprint before it is built (the manager enforces the budget on
// measured bytes afterwards).
const DefaultTupleBytes = 64

// DefaultDriftThreshold re-runs selection when the workload's relative
// frequency drift reaches one half.
const DefaultDriftThreshold = 0.5

// Config tunes the selector.
type Config struct {
	// Budget is the storage budget in bytes (0 = unlimited); candidates are
	// admitted greedily by benefit per byte until it is exhausted.
	Budget int64
	// Views is the external-view registry (navigation expressions for cost
	// estimates, attribute validation for bindings).
	Views *view.Registry
	// Model, when non-nil, refines the decision: estimated extent
	// cardinalities predict storage, and warm refresh traffic is charged
	// against each candidate's benefit.
	Model *cost.Model
	// ChangeRate is the expected fraction of pages changed between
	// refreshes, for the warm refresh charge.
	ChangeRate float64
	// TupleBytes overrides the per-tuple storage estimate
	// (DefaultTupleBytes when 0).
	TupleBytes int64
	// DriftThreshold overrides when ShouldRun re-triggers
	// (DefaultDriftThreshold when 0; negative = only the first run).
	DriftThreshold float64
	// MinSamples is the minimum number of recorded samples before the
	// selector produces any candidates (default 1).
	MinSamples int
}

// Candidate is one scored view definition.
type Candidate struct {
	Def vanswer.Def
	// Benefit is the live pages the recorded workload would have saved,
	// minus the estimated refresh charge.
	Benefit float64
	// EstBytes is the predicted extent footprint.
	EstBytes int64
}

// Decision is the selector's output: the definitions to materialize, best
// first (the manager applies them in order under its measured-byte budget).
type Decision struct {
	Select []Candidate
	// TotalEstBytes is the summed predicted footprint of Select.
	TotalEstBytes int64
}

// Defs returns just the ordered definitions.
func (d Decision) Defs() []vanswer.Def {
	out := make([]vanswer.Def, len(d.Select))
	for i, c := range d.Select {
		out[i] = c.Def
	}
	return out
}

// Selector is a deterministic, drift-gated greedy selector. Safe for
// concurrent use.
type Selector struct {
	cfg Config

	mu       sync.Mutex
	lastFreq map[string]int // shape → freq at the last Decide; guarded by mu
	runs     int            // guarded by mu
}

// New creates a selector.
func New(cfg Config) *Selector {
	if cfg.TupleBytes == 0 {
		cfg.TupleBytes = DefaultTupleBytes
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 1
	}
	return &Selector{cfg: cfg}
}

// Runs returns how many times Decide has produced a decision.
func (s *Selector) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// ShouldRun reports whether selection is due: it has never run, or the
// workload's shape-frequency vector has drifted (relative L1 distance) past
// the threshold since the last decision.
func (s *Selector) ShouldRun(summaries []workload.ShapeSummary) bool {
	total := 0
	cur := make(map[string]int, len(summaries))
	for _, sum := range summaries {
		cur[sum.Shape] = sum.Freq
		total += sum.Freq
	}
	if total < s.cfg.MinSamples {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastFreq == nil {
		return true
	}
	if s.cfg.DriftThreshold < 0 {
		return false
	}
	l1 := 0
	for shape, f := range cur {
		d := f - s.lastFreq[shape]
		if d < 0 {
			d = -d
		}
		l1 += d
	}
	for shape, f := range s.lastFreq {
		if _, ok := cur[shape]; !ok {
			l1 += f
		}
	}
	return float64(l1) >= s.cfg.DriftThreshold*float64(total)
}

// perQueryPages estimates what one live execution of the shape costs: the
// measured average over its live samples when there are any, else the cost
// model's cold estimate of its relations' navigations. The fallback keeps a
// shape's benefit visible after its queries start hitting views (their
// recorded live cost drops to zero — without it, selection would thrash:
// materialize, starve the signal, drop, repeat).
func (s *Selector) perQueryPages(sum workload.ShapeSummary) float64 {
	live := sum.Freq - sum.FromView
	if live > 0 {
		return float64(sum.LivePages) / float64(live)
	}
	if s.cfg.Model == nil {
		return 0
	}
	total := 0.0
	for _, rel := range sum.Relations {
		ext := s.cfg.Views.Relation(rel)
		if ext == nil {
			continue
		}
		if c, err := s.cfg.Model.Cost(ext.Navs[0].Expr); err == nil {
			total += c
		}
	}
	return total
}

// refreshCharge estimates one refresh pass's traffic for a relation's
// extent (warm estimate: light connections count a small fraction of a
// download, changed pages a whole one). Without a model the charge is zero.
func (s *Selector) refreshCharge(relation string) float64 {
	if s.cfg.Model == nil {
		return 0
	}
	ext := s.cfg.Views.Relation(relation)
	if ext == nil {
		return 0
	}
	w, err := s.cfg.Model.Warm(ext.Navs[0].Expr, s.cfg.ChangeRate)
	if err != nil {
		return 0
	}
	// A light connection is far cheaper than a download; charge it at a
	// tenth of a page.
	return 0.1*w.LightConnections + w.Downloads
}

// estBytes predicts an extent's footprint from the model's cardinality
// estimate (falling back to a nominal 100 tuples), scaled down for bound
// variants by the number of distinct binding vectors observed.
func (s *Selector) estBytes(relation string, distinctBindings int) int64 {
	card := 100.0
	if s.cfg.Model != nil {
		if ext := s.cfg.Views.Relation(relation); ext != nil {
			if est, err := s.cfg.Model.Estimate(ext.Navs[0].Expr); err == nil && est.Card > 0 {
				card = est.Card
			}
		}
	}
	if distinctBindings > 1 {
		card /= float64(distinctBindings)
	}
	b := int64(card * float64(s.cfg.TupleBytes))
	if b < 1 {
		b = 1
	}
	return b
}

// Decide scores the candidates against the summaries and greedily packs the
// budget by benefit per byte, keeping at most one view per relation (the
// best-scoring binding pattern, or the unbound extent). The frequency
// vector is remembered for the drift trigger.
func (s *Selector) Decide(summaries []workload.ShapeSummary) Decision {
	type cand struct {
		Candidate
		score float64
	}
	byKey := make(map[string]*cand)
	var order []string
	add := func(d vanswer.Def, benefit float64, estBytes int64) {
		key := d.Key()
		c, ok := byKey[key]
		if !ok {
			c = &cand{Candidate: Candidate{Def: d, EstBytes: estBytes}}
			byKey[key] = c
			order = append(order, key)
		}
		c.Benefit += benefit
	}
	for _, sum := range summaries {
		per := s.perQueryPages(sum)
		if per <= 0 || len(sum.Relations) == 0 {
			continue
		}
		// Unbound candidates: every relation of the shape gets an even
		// share of the shape's recurring cost.
		share := float64(sum.Freq) * per / float64(len(sum.Relations))
		for _, rel := range sum.Relations {
			add(vanswer.Def{Relation: rel}, share, s.estBytes(rel, 1))
		}
		// Bound candidates: single-relation shapes with constants — the
		// extent filtered to the observed binding vectors.
		if len(sum.Relations) != 1 || len(sum.ConstAttrs) == 0 {
			continue
		}
		rel := sum.Relations[0]
		prefix := rel + "."
		for _, bc := range sum.Bindings {
			if len(bc.Consts) != len(sum.ConstAttrs) {
				continue
			}
			d := vanswer.Def{Relation: rel}
			ok := true
			for i, attr := range sum.ConstAttrs {
				if !strings.HasPrefix(attr, prefix) {
					ok = false
					break
				}
				d.Bindings = append(d.Bindings, vanswer.Binding{
					Attr: strings.TrimPrefix(attr, prefix),
					Val:  bc.Consts[i],
				})
			}
			if !ok {
				continue
			}
			add(d, float64(bc.Freq)*per, s.estBytes(rel, len(sum.Bindings)))
		}
	}

	cands := make([]*cand, 0, len(order))
	for _, key := range order {
		c := byKey[key]
		c.Benefit -= s.refreshCharge(c.Def.Relation)
		if c.Benefit <= 0 {
			continue
		}
		c.score = c.Benefit / float64(c.EstBytes)
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].Def.Key() < cands[j].Def.Key()
	})

	var d Decision
	taken := make(map[string]bool)
	for _, c := range cands {
		if taken[c.Def.Relation] {
			continue
		}
		if s.cfg.Budget > 0 && d.TotalEstBytes+c.EstBytes > s.cfg.Budget {
			continue
		}
		taken[c.Def.Relation] = true
		d.Select = append(d.Select, c.Candidate)
		d.TotalEstBytes += c.EstBytes
	}

	s.mu.Lock()
	s.lastFreq = make(map[string]int, len(summaries))
	for _, sum := range summaries {
		s.lastFreq[sum.Shape] = sum.Freq
	}
	s.runs++
	s.mu.Unlock()
	return d
}
