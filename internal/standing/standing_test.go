package standing

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/changefeed"
	"ulixes/internal/cq"
	"ulixes/internal/engine"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// fixture wires the full push pipeline: university site → hook-mode change
// feed → standing registry answering through a live engine.
func fixture(t *testing.T, cfg Config) (*sitegen.University, *site.MemSite, *Registry, *changefeed.Monitor) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	eng := engine.New(views, ms, stats.CollectInstance(u.Instance))
	if cfg.Views == nil {
		cfg.Views = views
	}
	if cfg.Answer == nil {
		cfg.Answer = func(q *cq.Query) (*nested.Relation, error) {
			ans, err := eng.QueryCQ(q)
			if err != nil {
				return nil, err
			}
			return ans.Result, nil
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = site.LogicalClock()
	}
	reg := New(cfg)
	mon := changefeed.New(ms, changefeed.Config{Clock: cfg.Clock})
	mon.AttachMemSite(ms)
	mon.Subscribe(reg)
	return u, ms, reg, mon
}

func profTuple(t *testing.T, u *sitegen.University, i int) (string, nested.Tuple) {
	t.Helper()
	for _, tup := range u.Instance.Relation(sitegen.ProfPage).Tuples() {
		if tup.MustGet("Name").String() == sitegen.ProfName(i) {
			return tup.MustGet(adm.URLAttr).String(), tup
		}
	}
	t.Fatalf("prof %d not found", i)
	return "", nested.Tuple{}
}

// TestDeltasFollowMutations pins the end-to-end contract: a mutation on the
// query's footprint yields exactly the added/removed answer tuples a fresh
// query would show, in sequence order.
func TestDeltasFollowMutations(t *testing.T) {
	u, ms, reg, _ := fixture(t, Config{})
	id, err := reg.Subscribe("SELECT p.PName FROM Professor p WHERE p.Rank = 'Emeritus'")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Initial snapshot: seq 1, empty (nobody is emeritus yet).
	ds, err := reg.Next(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Seq != 1 || len(ds[0].Added) != 0 || len(ds[0].Removed) != 0 {
		t.Fatalf("initial deltas = %+v, want one empty snapshot", ds)
	}

	// Promote professor 3: one delta, one added tuple.
	_, tup := profTuple(t, u, 3)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	ds, err = reg.Next(ctx, id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Seq != 2 {
		t.Fatalf("post-promotion deltas = %+v", ds)
	}
	if len(ds[0].Added) != 1 || !strings.Contains(ds[0].Added[0], sitegen.ProfName(3)) || len(ds[0].Removed) != 0 {
		t.Fatalf("promotion delta = %+v, want exactly Prof. 003 added", ds[0])
	}

	// Demote them again: the same tuple leaves the answer.
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Assistant"))); err != nil {
		t.Fatal(err)
	}
	ds, err = reg.Next(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Seq != 3 || len(ds[0].Removed) != 1 || len(ds[0].Added) != 0 {
		t.Fatalf("demotion delta = %+v, want exactly one removal", ds)
	}
	if ds[0].Removed[0] != "" && !strings.Contains(ds[0].Removed[0], sitegen.ProfName(3)) {
		t.Fatalf("removed tuple = %q", ds[0].Removed[0])
	}

	// A catch-up reader sees the whole history.
	all, err := reg.Next(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("full history has %d deltas, want 3", len(all))
	}
}

// TestMultiClientSameDeltas: two subscriptions of the same query receive
// byte-identical delta streams, and concurrent blocked readers all wake.
func TestMultiClientSameDeltas(t *testing.T) {
	u, ms, reg, _ := fixture(t, Config{})
	src := "SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Emeritus'"
	id1, err := reg.Subscribe(src)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := reg.Subscribe(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Three clients block BEFORE the mutation: two on sub 1, one on sub 2.
	type got struct {
		ds  []Delta
		err error
	}
	results := make([]got, 3)
	var wg sync.WaitGroup
	for i, c := range []struct{ id, after int }{{id1, 1}, {id1, 1}, {id2, 1}} {
		wg.Add(1)
		go func(slot int, id, after int) {
			defer wg.Done()
			ds, err := reg.Next(ctx, id, after)
			results[slot] = got{ds, err}
		}(i, c.id, c.after)
	}
	// Give the readers a moment to block, then mutate twice.
	time.Sleep(50 * time.Millisecond)
	_, tup := profTuple(t, u, 0)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if len(r.ds) != 1 || r.ds[0].Seq != 2 {
			t.Fatalf("client %d deltas = %+v", i, r.ds)
		}
	}
	if !reflect.DeepEqual(results[0].ds, results[1].ds) || !reflect.DeepEqual(results[0].ds[0].Added, results[2].ds[0].Added) {
		t.Fatalf("clients diverged: %+v vs %+v vs %+v", results[0].ds, results[1].ds, results[2].ds)
	}
}

// TestFootprintScopesReanswers: events off the query's footprint must not
// trigger re-evaluation.
func TestFootprintScopesReanswers(t *testing.T) {
	u, ms, reg, _ := fixture(t, Config{})
	id, err := reg.Subscribe("SELECT p.PName FROM Professor p")
	if err != nil {
		t.Fatal(err)
	}
	fp := reg.Footprint(id)
	want := []string{sitegen.ProfListPage, sitegen.ProfPage}
	if !reflect.DeepEqual(fp, want) {
		t.Fatalf("footprint = %v, want %v", fp, want)
	}
	before := reg.Counters()

	// Mutate a course page: off-footprint, no re-answer.
	var courseTup nested.Tuple
	for _, tup := range u.Instance.Relation(sitegen.CoursePage).Tuples() {
		courseTup = tup
		break
	}
	if err := ms.UpdatePage(sitegen.CoursePage, courseTup.With("Description", nested.TextValue("x"))); err != nil {
		t.Fatal(err)
	}
	after := reg.Counters()
	if after.Reanswers != before.Reanswers {
		t.Fatalf("off-footprint event re-answered: %+v -> %+v", before, after)
	}
	if after.Events != before.Events+1 {
		t.Fatalf("event not counted: %+v -> %+v", before, after)
	}
}

// TestMaxSubsRejected: the cap refuses further subscriptions and counts the
// rejection.
func TestMaxSubsRejected(t *testing.T) {
	_, _, reg, _ := fixture(t, Config{MaxSubs: 1})
	if _, err := reg.Subscribe("SELECT p.PName FROM Professor p"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Subscribe("SELECT p.PName FROM Professor p"); err == nil {
		t.Fatal("second subscription should be rejected")
	}
	if _, err := reg.Subscribe("SELEC nonsense"); err == nil {
		t.Fatal("unparsable query should be rejected")
	}
	c := reg.Counters()
	if c.Subscribes != 1 || c.Rejections != 2 {
		t.Fatalf("counters %+v, want 1 subscribe / 2 rejections", c)
	}
}

// TestUnsubscribeWakesBlockedNext: cancellation must not strand a long-poll.
func TestUnsubscribeWakesBlockedNext(t *testing.T) {
	_, _, reg, _ := fixture(t, Config{})
	id, err := reg.Subscribe("SELECT p.PName FROM Professor p")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := reg.Next(ctx, id, 1) // seq 1 already consumed: blocks
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if !reg.Unsubscribe(id) {
		t.Fatal("Unsubscribe found nothing")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked Next returned nil after unsubscribe")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Next never woke")
	}
	if reg.Unsubscribe(id) {
		t.Fatal("second Unsubscribe should report false")
	}
}

// TestCountersAdd pins Add as a straight field-wise sum.
func TestCountersAdd(t *testing.T) {
	total := Counters{Subscribes: 1, Events: 2}
	total.Add(Counters{
		Subscribes:    1,
		Unsubscribes:  2,
		Rejections:    3,
		Events:        4,
		Reanswers:     5,
		AnswerErrors:  6,
		Deltas:        7,
		AddedTuples:   8,
		RemovedTuples: 9,
	})
	want := Counters{
		Subscribes:    2,
		Unsubscribes:  2,
		Rejections:    3,
		Events:        6,
		Reanswers:     5,
		AnswerErrors:  6,
		Deltas:        7,
		AddedTuples:   8,
		RemovedTuples: 9,
	}
	if !reflect.DeepEqual(total, want) {
		t.Fatalf("Add result mismatch:\n got %+v\nwant %+v", total, want)
	}
}

// ringMeter accumulates ByteMeter charges from the registry.
type ringMeter struct {
	mu sync.Mutex
	n  int64
}

func (m *ringMeter) Add(d int64) {
	m.mu.Lock()
	m.n += d
	m.mu.Unlock()
}

func (m *ringMeter) Load() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// TestRingByteBoundDropsOldest: once a subscription's retained deltas
// exceed MaxRingBytes, the oldest are dropped (never the newest), the drop
// is counted, and the meter balance tracks the retained bytes exactly —
// through trimming and through unsubscribe.
func TestRingByteBoundDropsOldest(t *testing.T) {
	m := &ringMeter{}
	u, ms, reg, _ := fixture(t, Config{MaxRingBytes: 160, Meter: m})
	id, err := reg.Subscribe("SELECT p.PName FROM Professor p WHERE p.Rank = 'Emeritus'")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Each promotion/demotion round pushes two deltas of ~70-80 bytes, so
	// a handful of rounds far exceeds the 160-byte bound.
	_, tup := profTuple(t, u, 3)
	for i := 0; i < 4; i++ {
		if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
			t.Fatal(err)
		}
		if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Assistant"))); err != nil {
			t.Fatal(err)
		}
	}

	ds, err := reg.Next(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 || len(ds) >= 9 {
		t.Fatalf("retained %d deltas, want a trimmed non-empty suffix of 9", len(ds))
	}
	if ds[0].Seq == 1 {
		t.Fatal("oldest delta survived past the byte bound")
	}
	if last := ds[len(ds)-1].Seq; last != 9 {
		t.Fatalf("newest retained seq = %d, want 9", last)
	}
	var retained int
	for _, d := range ds {
		retained += deltaBytes(d)
	}
	if int64(retained) != reg.RingBytes() {
		t.Fatalf("RingBytes() = %d, deltas sum to %d", reg.RingBytes(), retained)
	}
	if got := m.Load(); got != reg.RingBytes() {
		t.Fatalf("meter %d != RingBytes %d", got, reg.RingBytes())
	}
	dropped := reg.Counters().RingDropped
	if dropped != 9-len(ds) {
		t.Fatalf("RingDropped = %d, want %d", dropped, 9-len(ds))
	}

	// Unsubscribe refunds everything.
	if !reg.Unsubscribe(id) {
		t.Fatal("Unsubscribe failed")
	}
	if got := m.Load(); got != 0 {
		t.Fatalf("meter %d after unsubscribe, want 0", got)
	}
	if got := reg.RingBytes(); got != 0 {
		t.Fatalf("RingBytes %d after unsubscribe, want 0", got)
	}
}

// TestRingByteBoundKeepsNewest: a single delta larger than the bound is
// still retained — the bound trims history, it cannot make a subscription
// lose its latest update.
func TestRingByteBoundKeepsNewest(t *testing.T) {
	u, ms, reg, _ := fixture(t, Config{MaxRingBytes: 1})
	id, err := reg.Subscribe("SELECT p.PName FROM Professor p WHERE p.Rank = 'Emeritus'")
	if err != nil {
		t.Fatal(err)
	}
	_, tup := profTuple(t, u, 5)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	ds, err := reg.Next(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Seq != 2 || len(ds[0].Added) != 1 {
		t.Fatalf("retained deltas = %+v, want exactly the newest", ds)
	}
}
