// Package standing implements standing (continuous) queries over the push
// feed: a client registers a conjunctive query once, the registry derives
// the set of page-schemes the query's navigations can touch (its footprint),
// and whenever a change-feed event lands on that footprint the query is
// re-answered and the difference — added and removed answer tuples — is
// pushed to the subscriber as a delta. Clients consume deltas with a
// long-poll Next (ulixesd wraps it in SSE), acknowledging by sequence
// number, so a slow client misses nothing the ring still holds.
//
// The registry never guesses: deltas are computed by re-running the full
// query through the configured AnswerFunc (the engine's live plan or the
// view-answering path), so every pushed tuple is exactly what a fresh query
// would return at that instant.
package standing

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ulixes/internal/changefeed"
	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/view"
)

// AnswerFunc computes the current answer of a standing query. It must be
// safe for concurrent use (the registry serializes per subscription, not
// globally).
type AnswerFunc func(q *cq.Query) (*nested.Relation, error)

// DefaultMaxSubs bounds concurrent subscriptions when Config.MaxSubs is 0.
const DefaultMaxSubs = 64

// DefaultRing is how many deltas a subscription retains for slow consumers.
const DefaultRing = 64

// Config wires a registry.
type Config struct {
	// Views resolves external relations to their navigations, for
	// footprint derivation.
	Views *view.Registry
	// Answer re-answers queries; required.
	Answer AnswerFunc
	// MaxSubs caps concurrent subscriptions (0 = DefaultMaxSubs).
	MaxSubs int
	// Ring caps retained deltas per subscription (0 = DefaultRing).
	Ring int
	// MaxRingBytes caps the retained delta bytes per subscription (0 =
	// unbounded). When a slow consumer lets deltas pile up past the cap,
	// the oldest are dropped (Counters.RingDropped) — bounded memory
	// instead of one stalled watcher pinning the process. The newest delta
	// always survives, so a late consumer still learns the current state.
	MaxRingBytes int
	// Meter, when non-nil, is charged every subscription's retained ring
	// bytes — the registry's row in a process-wide memory ledger (see
	// internal/overload.Ledger).
	Meter ByteMeter
	// Clock stamps deltas; nil defaults to the deterministic logical clock.
	Clock site.Clock
}

// ByteMeter is the minimal ledger-account surface the registry charges;
// satisfied by overload.Account without importing it.
type ByteMeter interface {
	// Add charges (positive) or refunds (negative) retained bytes.
	Add(delta int64)
}

// Counters tallies the registry's activity. The statsexhaustive analyzer
// holds Add to covering every field.
type Counters struct {
	// Subscribes counts accepted subscriptions.
	Subscribes int
	// Unsubscribes counts explicit cancellations.
	Unsubscribes int
	// Rejections counts subscriptions refused (parse error, unknown
	// relation, or the MaxSubs cap).
	Rejections int
	// Events counts feed events delivered to the registry.
	Events int
	// Reanswers counts query re-evaluations triggered by footprint hits.
	Reanswers int
	// AnswerErrors counts re-evaluations that failed (the previous answer
	// is kept; the next footprint hit retries).
	AnswerErrors int
	// Deltas counts pushed deltas (non-empty diffs plus each initial
	// snapshot).
	Deltas int
	// AddedTuples and RemovedTuples total the tuple-level churn pushed.
	AddedTuples   int
	RemovedTuples int
	// RingDropped counts deltas dropped from rings before any client
	// consumed them — the count bound or MaxRingBytes trimming the oldest
	// entries under a slow consumer.
	RingDropped int
}

// Add folds another registry's counters into c.
func (c *Counters) Add(o Counters) {
	c.Subscribes += o.Subscribes
	c.Unsubscribes += o.Unsubscribes
	c.Rejections += o.Rejections
	c.Events += o.Events
	c.Reanswers += o.Reanswers
	c.AnswerErrors += o.AnswerErrors
	c.Deltas += o.Deltas
	c.AddedTuples += o.AddedTuples
	c.RemovedTuples += o.RemovedTuples
	c.RingDropped += o.RingDropped
}

// Delta is one pushed difference. Added and Removed hold canonical tuple
// renderings, sorted, so two clients of the same subscription see
// byte-identical deltas. Seq starts at 1 (the initial snapshot, all Added)
// and increases by 1 per pushed delta.
type Delta struct {
	Seq     int       `json:"seq"`
	At      time.Time `json:"at"`
	Added   []string  `json:"added,omitempty"`
	Removed []string  `json:"removed,omitempty"`
}

// SubInfo describes one live subscription.
type SubInfo struct {
	ID        int      `json:"id"`
	Query     string   `json:"query"`
	Footprint []string `json:"footprint"`
	Seq       int      `json:"seq"`
}

type sub struct {
	id        int
	text      string
	query     *cq.Query
	footprint map[string]bool

	// amu serializes re-answers of this subscription (the answer runs
	// outside the registry lock — it may navigate the site).
	amu sync.Mutex

	// cur is the current answer (canonical tuple renderings). Only reanswer
	// touches it, so amu is its guard; the write additionally holds the
	// registry's mu so seq and the delta ring move atomically with it.
	cur map[string]bool // guarded by amu

	// The registry's mu guards the remaining fields.
	seq       int           // guarded by Registry.mu
	deltas    []Delta       // guarded by Registry.mu
	ringBytes int           // retained delta bytes of this ring; guarded by Registry.mu
	notify    chan struct{} // closed and replaced when a delta arrives; guarded by Registry.mu
}

// Registry holds the live subscriptions. It implements changefeed.Sink, so
// wiring it is one AddSink call.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	subs     map[int]*sub // guarded by mu
	nextID   int          // guarded by mu
	counters Counters     // guarded by mu
}

// New creates a registry. Answer and Views are required.
func New(cfg Config) *Registry {
	if cfg.MaxSubs <= 0 {
		cfg.MaxSubs = DefaultMaxSubs
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	if cfg.Clock == nil {
		cfg.Clock = site.LogicalClock()
	}
	return &Registry{cfg: cfg, subs: make(map[int]*sub)}
}

// Counters returns a snapshot of the activity counters.
func (r *Registry) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// Len returns the number of live subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Subs lists the live subscriptions, ordered by ID.
func (r *Registry) Subs() []SubInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SubInfo, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, SubInfo{ID: s.id, Query: s.text, Footprint: setToSorted(s.footprint), Seq: s.seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Footprint returns the page-schemes a subscription watches, sorted.
func (r *Registry) Footprint(id int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.subs[id]
	if s == nil {
		return nil
	}
	return setToSorted(s.footprint)
}

func setToSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// footprintOf derives the page-schemes any navigation of any relation in
// the query can touch: every EntryScan scheme and every Follow target,
// across ALL default navigations (the optimizer may pick any of them).
func (r *Registry) footprintOf(q *cq.Query) (map[string]bool, error) {
	fp := make(map[string]bool)
	for _, atom := range q.From {
		rel := r.cfg.Views.Relation(atom.Relation)
		if rel == nil {
			return nil, fmt.Errorf("standing: unknown external relation %q", atom.Relation)
		}
		for _, nav := range rel.Navs {
			collectSchemes(nav.Expr, fp)
		}
	}
	return fp, nil
}

func collectSchemes(e nalg.Expr, fp map[string]bool) {
	switch x := e.(type) {
	case *nalg.EntryScan:
		fp[x.Scheme] = true
	case *nalg.Follow:
		fp[x.Target] = true
	}
	for _, c := range e.Children() {
		collectSchemes(c, fp)
	}
}

// Subscribe registers a standing query. The returned ID addresses Next and
// Unsubscribe; the initial snapshot arrives as delta Seq 1 (all tuples
// Added, possibly empty), so clients start from Next(ctx, id, 0).
func (r *Registry) Subscribe(src string) (int, error) {
	reject := func(err error) (int, error) {
		r.mu.Lock()
		r.counters.Rejections++
		r.mu.Unlock()
		return 0, err
	}
	q, err := cq.Parse(src)
	if err != nil {
		return reject(fmt.Errorf("standing: %w", err))
	}
	if err := q.Validate(); err != nil {
		return reject(fmt.Errorf("standing: %w", err))
	}
	fp, err := r.footprintOf(q)
	if err != nil {
		return reject(err)
	}
	r.mu.Lock()
	if len(r.subs) >= r.cfg.MaxSubs {
		r.counters.Rejections++
		r.mu.Unlock()
		return 0, fmt.Errorf("standing: subscription limit (%d) reached", r.cfg.MaxSubs)
	}
	r.nextID++
	s := &sub{
		id:        r.nextID,
		text:      src,
		query:     q,
		footprint: fp,
		cur:       make(map[string]bool),
		notify:    make(chan struct{}),
	}
	r.subs[s.id] = s
	r.counters.Subscribes++
	r.mu.Unlock()
	// The initial snapshot is a forced delta: even an empty answer is
	// pushed, acknowledging the subscription.
	r.reanswer(s, true)
	return s.id, nil
}

// Unsubscribe cancels a subscription, waking any blocked Next callers (they
// return an unknown-subscription error).
func (r *Registry) Unsubscribe(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return false
	}
	delete(r.subs, id)
	r.counters.Unsubscribes++
	if r.cfg.Meter != nil {
		r.cfg.Meter.Add(-int64(s.ringBytes))
	}
	s.ringBytes = 0
	close(s.notify)
	return true
}

// RingBytes returns the retained delta bytes across all live rings.
func (r *Registry) RingBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, s := range r.subs {
		total += int64(s.ringBytes)
	}
	return total
}

// OnChange implements changefeed.Sink: events landing on a subscription's
// footprint trigger its re-answer. Touched subscriptions are processed in ID
// order, so concurrent clients observe deltas in a deterministic order.
func (r *Registry) OnChange(ev changefeed.Event) {
	r.mu.Lock()
	r.counters.Events++
	var touched []*sub
	for _, s := range r.subs {
		if s.footprint[ev.Scheme] {
			touched = append(touched, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(touched, func(i, j int) bool { return touched[i].id < touched[j].id })
	for _, s := range touched {
		r.reanswer(s, false)
	}
}

// reanswer re-runs one subscription's query and pushes the diff. force
// pushes a delta even when the diff is empty (the initial snapshot).
func (r *Registry) reanswer(s *sub, force bool) {
	s.amu.Lock()
	defer s.amu.Unlock()
	r.mu.Lock()
	r.counters.Reanswers++
	r.mu.Unlock()
	rel, err := r.cfg.Answer(s.query)
	if err != nil {
		// Keep the previous answer; the next footprint hit retries.
		r.mu.Lock()
		r.counters.AnswerErrors++
		r.mu.Unlock()
		return
	}
	next := make(map[string]bool, rel.Len())
	for _, t := range rel.Tuples() {
		next[t.String()] = true
	}
	var added, removed []string
	for k := range next {
		if !s.cur[k] {
			added = append(added, k)
		}
	}
	for k := range s.cur {
		if !next[k] {
			removed = append(removed, k)
		}
	}
	if len(added) == 0 && len(removed) == 0 && !force {
		return
	}
	sort.Strings(added)
	sort.Strings(removed)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subs[s.id] != s {
		return // unsubscribed while answering
	}
	s.cur = next
	s.seq++
	d := Delta{Seq: s.seq, At: r.cfg.Clock(), Added: added, Removed: removed}
	s.deltas = append(s.deltas, d)
	s.ringBytes += deltaBytes(d)
	if r.cfg.Meter != nil {
		r.cfg.Meter.Add(int64(deltaBytes(d)))
	}
	r.trimLocked(s)
	r.counters.Deltas++
	r.counters.AddedTuples += len(added)
	r.counters.RemovedTuples += len(removed)
	close(s.notify)
	s.notify = make(chan struct{})
}

// deltaBytes approximates one delta's retained footprint: its tuple strings
// plus a fixed per-delta overhead for Seq, At and the slice headers.
func deltaBytes(d Delta) int {
	n := 48
	for _, s := range d.Added {
		n += len(s)
	}
	for _, s := range d.Removed {
		n += len(s)
	}
	return n
}

// trimLocked drops a ring's oldest deltas past the count bound and, when
// MaxRingBytes is set, past the byte bound — but never the newest delta, so
// even a hopelessly slow consumer still sees the latest state when it
// returns. Dropped deltas count into Counters.RingDropped and are refunded
// from the meter. Callers hold Registry.mu.
func (r *Registry) trimLocked(s *sub) {
	drop := 0
	bytes := s.ringBytes
	for len(s.deltas)-drop > r.cfg.Ring {
		bytes -= deltaBytes(s.deltas[drop])
		drop++
	}
	for r.cfg.MaxRingBytes > 0 && len(s.deltas)-drop > 1 && bytes > r.cfg.MaxRingBytes {
		bytes -= deltaBytes(s.deltas[drop])
		drop++
	}
	if drop == 0 {
		return
	}
	freed := s.ringBytes - bytes
	s.deltas = append([]Delta(nil), s.deltas[drop:]...)
	s.ringBytes = bytes
	if r.cfg.Meter != nil {
		r.cfg.Meter.Add(-int64(freed))
	}
	r.counters.RingDropped += drop
}

// Next returns the subscription's deltas with Seq > after, blocking until at
// least one is available or the context ends. A canceled context returns the
// context error; an unknown (or meanwhile-unsubscribed) ID returns an error
// immediately.
func (r *Registry) Next(ctx context.Context, id, after int) ([]Delta, error) {
	for {
		r.mu.Lock()
		s, ok := r.subs[id]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("standing: unknown subscription %d", id)
		}
		var out []Delta
		for _, d := range s.deltas {
			if d.Seq > after {
				out = append(out, d)
			}
		}
		if len(out) > 0 {
			r.mu.Unlock()
			return out, nil
		}
		ch := s.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
