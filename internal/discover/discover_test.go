package discover

import (
	"strings"
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

func univInstance(t *testing.T) *adm.Instance {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	return u.Instance
}

func TestVerifyAllDeclaredConstraintsHold(t *testing.T) {
	in := univInstance(t)
	checks, err := Verify(in)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := len(in.Scheme.LinkCs) + len(in.Scheme.InclCs)
	if len(checks) != wantCount {
		t.Fatalf("checks = %d, want %d", len(checks), wantCount)
	}
	for _, v := range checks {
		if !v.Holds {
			t.Errorf("declared constraint violated: %s (%s)", v.Constraint, v.Example)
		}
		if v.Violations != 0 || v.Example != "" {
			t.Errorf("clean constraint should have no violations: %+v", v)
		}
	}
}

func TestVerifyDetectsBrokenAnchor(t *testing.T) {
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Depts: 2, Profs: 4, Courses: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := u.Instance
	// Corrupt one professor page's DName: the ProfPage.DName = DeptPage.DName
	// constraint must be reported as violated.
	var victim nested.Tuple
	for _, tup := range in.Relation(sitegen.ProfPage).Tuples() {
		victim = tup
		break
	}
	broken := adm.NewInstance(in.Scheme)
	for _, name := range in.Scheme.PageNames() {
		for _, tup := range in.Relation(name).Tuples() {
			if name == sitegen.ProfPage && tup.Equal(victim) {
				tup = tup.With("DName", nested.TextValue("Wrong Department"))
			}
			if err := broken.AddPage(name, tup); err != nil {
				t.Fatal(err)
			}
		}
	}
	checks, err := Verify(broken)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range checks {
		if strings.Contains(v.Constraint, "ProfPage.DName") && !v.Holds {
			found = true
			if v.Violations != 1 {
				t.Errorf("violations = %d, want 1", v.Violations)
			}
			if !strings.Contains(v.Example, "Wrong Department") {
				t.Errorf("example = %q", v.Example)
			}
		}
	}
	if !found {
		t.Error("broken anchor not detected")
	}
}

func TestVerifyDetectsBrokenInclusion(t *testing.T) {
	// Build a small scheme/instance directly where the inclusion fails.
	ws := adm.NewScheme()
	if err := ws.AddPage(&adm.PageScheme{Name: "A", Attrs: []nested.Field{
		{Name: "L", Type: nested.Link("T")},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddPage(&adm.PageScheme{Name: "B", Attrs: []nested.Field{
		{Name: "L", Type: nested.Link("T"), Optional: true},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddPage(&adm.PageScheme{Name: "T"}); err != nil {
		t.Fatal(err)
	}
	ws.AddInclusion(adm.InclusionConstraint{
		Sub:   adm.AttrRef{Scheme: "A", Path: adm.ParsePath("L")},
		Super: adm.AttrRef{Scheme: "B", Path: adm.ParsePath("L")},
	})
	in := adm.NewInstance(ws)
	if err := in.AddPage("T", nested.T(adm.URLAttr, nested.LinkValue("t1"))); err != nil {
		t.Fatal(err)
	}
	if err := in.AddPage("A", nested.T(adm.URLAttr, nested.LinkValue("a1"), "L", nested.LinkValue("t1"))); err != nil {
		t.Fatal(err)
	}
	if err := in.AddPage("B", nested.T(adm.URLAttr, nested.LinkValue("b1"), "L", nested.Null)); err != nil {
		t.Fatal(err)
	}
	checks, err := Verify(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || checks[0].Holds {
		t.Errorf("inclusion violation not detected: %+v", checks)
	}
}

func TestMineRediscoverDeclared(t *testing.T) {
	in := univInstance(t)
	proposals, err := Mine(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	declaredLink := 0
	declaredIncl := 0
	for _, p := range proposals {
		if p.Declared {
			if p.Kind == "link" {
				declaredLink++
			} else {
				declaredIncl++
			}
		}
		if p.Support < 2 {
			t.Errorf("proposal below support threshold: %s", p)
		}
	}
	if declaredLink != len(in.Scheme.LinkCs) {
		t.Errorf("mined %d of %d declared link constraints", declaredLink, len(in.Scheme.LinkCs))
	}
	if declaredIncl != len(in.Scheme.InclCs) {
		t.Errorf("mined %d of %d declared inclusions", declaredIncl, len(in.Scheme.InclCs))
	}
}

func TestMineFindsUndeclaredTruths(t *testing.T) {
	in := univInstance(t)
	proposals, err := MineInclusions(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every course has exactly one instructor, so the professors' course
	// lists cover all courses too: an extensional equivalence the scheme
	// does not declare.
	found := false
	for _, p := range proposals {
		if p.Inclusion.String() == "SessionPage.CourseList.ToCourse ⊆ ProfPage.CourseList.ToCourse" {
			found = true
			if p.Declared {
				t.Error("this direction is not declared in the scheme")
			}
		}
	}
	if !found {
		t.Error("extensional inverse inclusion not mined")
	}
}

func TestMineRespectsViolations(t *testing.T) {
	in := univInstance(t)
	proposals, err := MineInclusions(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proposals {
		// CoursePage.ToProf reaches only teaching professors, so the full
		// professor list is NOT included in it.
		if p.Inclusion.String() == "ProfListPage.ProfList.ToProf ⊆ CoursePage.ToProf" {
			t.Error("false inclusion mined")
		}
	}
}

func TestMineLinkConstraintsNoFalsePositives(t *testing.T) {
	in := univInstance(t)
	proposals, err := MineLinkConstraints(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every mined link constraint must verify cleanly.
	for _, p := range proposals {
		ws := in.Scheme
		tgt, err := ws.LinkTarget(p.Link.Link)
		if err != nil {
			t.Fatal(err)
		}
		idx := indexByURL(in, tgt)
		support, holds, err := checkLinkPair(in, p.Link.Link, p.Link.SrcAttr, p.Link.TgtAttr, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !holds || support != p.Support {
			t.Errorf("mined constraint does not re-verify: %s", p)
		}
	}
	// A constraint that is false must not be proposed: Email ≠ Name.
	for _, p := range proposals {
		if p.Link.Link.String() == "ProfListPage.ProfList.ToProf" && p.Link.TgtAttr == "Email" {
			t.Errorf("false link constraint mined: %s", p)
		}
	}
}

func TestMineSupportThreshold(t *testing.T) {
	in := univInstance(t)
	low, err := MineInclusions(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MineInclusions(in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) >= len(low) {
		t.Errorf("higher support threshold should prune: %d vs %d", len(high), len(low))
	}
}

func TestSourceCandidates(t *testing.T) {
	ws := sitegen.UniversityScheme()
	ps := ws.Page(sitegen.ProfPage)
	cands := sourceCandidates(ps, adm.ParsePath("CourseList.ToCourse"))
	var names []string
	for _, c := range cands {
		names = append(names, c.String())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"Name", "Rank", "DName", "CourseList.CName"} {
		if !strings.Contains(joined, want) {
			t.Errorf("candidates missing %s: %v", want, names)
		}
	}
	// The link itself is excluded.
	for _, c := range cands {
		if c.String() == "CourseList.ToCourse" {
			t.Error("link itself should not be a source candidate")
		}
	}
}

func TestProposalString(t *testing.T) {
	lc := adm.LinkConstraint{
		Link:    adm.AttrRef{Scheme: "S", Path: adm.ParsePath("L")},
		SrcAttr: adm.ParsePath("A"),
		TgtAttr: "B",
	}
	p := Proposal{Kind: "link", Link: &lc, Support: 7, Declared: true}
	if !strings.Contains(p.String(), "support 7") || !strings.Contains(p.String(), "(declared)") {
		t.Errorf("proposal string = %q", p.String())
	}
	ic := adm.InclusionConstraint{
		Sub:   adm.AttrRef{Scheme: "S", Path: adm.ParsePath("L")},
		Super: adm.AttrRef{Scheme: "T", Path: adm.ParsePath("M")},
	}
	p2 := Proposal{Kind: "inclusion", Inclusion: &ic, Support: 3}
	if strings.Contains(p2.String(), "declared") {
		t.Errorf("undeclared proposal string = %q", p2.String())
	}
}

func TestMineBibliography(t *testing.T) {
	b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{
		Authors: 60, Confs: 5, DBConfs: 2, Years: 3, PapersPerEdition: 3, AuthorsPerPaper: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Support threshold 1: the home page features a single conference, so
	// its constraints have support 1.
	proposals, err := Mine(b.Instance, 1)
	if err != nil {
		t.Fatal(err)
	}
	declared := 0
	for _, p := range proposals {
		if p.Declared {
			declared++
		}
	}
	if declared != len(b.Scheme.LinkCs)+len(b.Scheme.InclCs) {
		t.Errorf("mined %d declared constraints, scheme has %d",
			declared, len(b.Scheme.LinkCs)+len(b.Scheme.InclCs))
	}
}
