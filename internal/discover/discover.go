// Package discover implements the reverse-engineering step the paper
// assumes precedes querying (§3, footnote 2: the scheme "is not the
// product of a forward engineering phase, but rather of a reverse
// engineering phase … conducted by a human designer, with the help of a
// number of tools which semi-automatically analyze the Web"; §3.2's
// footnote suggests a WebSQL-like tool "to verify different paths leading
// to the same page-scheme and check inclusions between sets of links").
//
// Given a crawled site instance, the package verifies the constraints a
// scheme declares and mines the link and inclusion constraints that hold
// extensionally, proposing the ones not yet declared.
package discover

import (
	"fmt"
	"sort"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Verification reports whether one declared constraint holds on the
// instance.
type Verification struct {
	// Kind is "link" or "inclusion".
	Kind string
	// Constraint is the constraint's rendering.
	Constraint string
	// Holds reports whether no violation was found.
	Holds bool
	// Violations counts the violating occurrences.
	Violations int
	// Example describes the first violation, if any.
	Example string
}

// Verify checks every declared link and inclusion constraint of the
// instance's scheme against the instance, one report per constraint.
func Verify(in *adm.Instance) ([]Verification, error) {
	var out []Verification
	for _, c := range in.Scheme.LinkCs {
		v, err := verifyLink(in, c)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	for _, c := range in.Scheme.InclCs {
		v := verifyInclusion(in, c)
		out = append(out, v)
	}
	return out, nil
}

func verifyLink(in *adm.Instance, c adm.LinkConstraint) (Verification, error) {
	v := Verification{Kind: "link", Constraint: c.String(), Holds: true}
	tgt, err := in.Scheme.LinkTarget(c.Link)
	if err != nil {
		return Verification{}, err
	}
	idx := indexByURL(in, tgt)
	for _, t := range in.Relation(c.Link.Scheme).Tuples() {
		pairs, err := adm.LinkAnchorPairs(t, c.Link.Path, c.SrcAttr)
		if err != nil {
			return Verification{}, fmt.Errorf("discover: %s: %v", c, err)
		}
		for _, pr := range pairs {
			anchor, link := pr[0], pr[1]
			tgtTuple, ok := idx[link.String()]
			if !ok {
				v.Holds = false
				v.Violations++
				if v.Example == "" {
					v.Example = fmt.Sprintf("dangling link %s", link)
				}
				continue
			}
			tv, _ := tgtTuple.Get(c.TgtAttr)
			if !adm.ScalarEqual(anchor, tv) {
				v.Holds = false
				v.Violations++
				if v.Example == "" {
					v.Example = fmt.Sprintf("%v ≠ %v at %s", anchor, tv, link)
				}
			}
		}
	}
	return v, nil
}

func verifyInclusion(in *adm.Instance, c adm.InclusionConstraint) Verification {
	v := Verification{Kind: "inclusion", Constraint: c.String(), Holds: true}
	super := linkSet(in, c.Super)
	for _, t := range in.Relation(c.Sub.Scheme).Tuples() {
		for _, val := range adm.PathValues(t, c.Sub.Path) {
			if !super[val.String()] {
				v.Holds = false
				v.Violations++
				if v.Example == "" {
					v.Example = fmt.Sprintf("%s not reachable via %s", val, c.Super)
				}
			}
		}
	}
	return v
}

func indexByURL(in *adm.Instance, scheme string) map[string]nested.Tuple {
	idx := make(map[string]nested.Tuple)
	for _, t := range in.Relation(scheme).Tuples() {
		if u, ok := t.Get(adm.URLAttr); ok && !u.IsNull() {
			idx[u.String()] = t
		}
	}
	return idx
}

func linkSet(in *adm.Instance, ref adm.AttrRef) map[string]bool {
	set := make(map[string]bool)
	for _, t := range in.Relation(ref.Scheme).Tuples() {
		for _, v := range adm.PathValues(t, ref.Path) {
			set[v.String()] = true
		}
	}
	return set
}

// Proposal is one mined constraint with its support (the number of
// witnessing occurrences) and whether the scheme already declares it.
type Proposal struct {
	// Kind is "link" or "inclusion".
	Kind string
	// Link is set for link-constraint proposals.
	Link *adm.LinkConstraint
	// Inclusion is set for inclusion proposals.
	Inclusion *adm.InclusionConstraint
	// Support counts the occurrences that witness the constraint.
	Support int
	// Declared reports whether the scheme already carries the constraint.
	Declared bool
}

// String renders the proposal.
func (p Proposal) String() string {
	tag := ""
	if p.Declared {
		tag = " (declared)"
	}
	if p.Link != nil {
		return fmt.Sprintf("link-constraint %s [support %d]%s", p.Link, p.Support, tag)
	}
	return fmt.Sprintf("inclusion %s [support %d]%s", p.Inclusion, p.Support, tag)
}

// MineLinkConstraints finds every anchor redundancy that holds on the
// instance: for each link attribute L from S to T, each mono-valued source
// attribute A in L's scope and each mono-valued target attribute B of T
// such that A = B across all occurrences (with at least minSupport
// occurrences). The URL/reference identity (§3.3: "implicit in the notion
// of reference") is excluded.
func MineLinkConstraints(in *adm.Instance, minSupport int) ([]Proposal, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	ws := in.Scheme
	var out []Proposal
	for _, link := range ws.Links() {
		tgt, err := ws.LinkTarget(link)
		if err != nil {
			return nil, err
		}
		idx := indexByURL(in, tgt)
		tgtAttrs := monoTopAttrs(ws.Page(tgt))
		for _, src := range sourceCandidates(ws.Page(link.Scheme), link.Path) {
			for _, tgtAttr := range tgtAttrs {
				support, holds, err := checkLinkPair(in, link, src, tgtAttr, idx)
				if err != nil {
					return nil, err
				}
				if !holds || support < minSupport {
					continue
				}
				c := adm.LinkConstraint{Link: link, SrcAttr: src, TgtAttr: tgtAttr}
				_, declared := declaredLink(ws, c)
				out = append(out, Proposal{Kind: "link", Link: &c, Support: support, Declared: declared})
			}
		}
	}
	sortProposals(out)
	return out, nil
}

func declaredLink(ws *adm.Scheme, c adm.LinkConstraint) (adm.LinkConstraint, bool) {
	for _, d := range ws.LinkCs {
		if d.Link.Scheme == c.Link.Scheme && d.Link.Path.Equal(c.Link.Path) &&
			d.SrcAttr.Equal(c.SrcAttr) && d.TgtAttr == c.TgtAttr {
			return d, true
		}
	}
	return adm.LinkConstraint{}, false
}

// sourceCandidates enumerates the mono-valued attribute paths in scope of a
// link: attributes at each ancestor level of the link's path, including the
// siblings inside the same innermost list.
func sourceCandidates(ps *adm.PageScheme, link adm.Path) []adm.Path {
	var out []adm.Path
	fields := ps.Attrs
	prefix := adm.Path{}
	// Walk down the link path, collecting mono attrs at every level.
	for depth := 0; ; depth++ {
		for _, f := range fields {
			if f.Type.Mono() {
				p := append(append(adm.Path{}, prefix...), f.Name)
				// Exclude the link itself.
				if !p.Equal(link) {
					out = append(out, p)
				}
			}
		}
		if depth >= len(link)-1 {
			break
		}
		step := link[depth]
		var next []nested.Field
		for _, f := range fields {
			if f.Name == step && f.Type.Kind == nested.KindList {
				next = f.Type.Elem
			}
		}
		if next == nil {
			break
		}
		fields = next
		prefix = append(prefix, step)
	}
	return out
}

func monoTopAttrs(ps *adm.PageScheme) []string {
	var out []string
	for _, f := range ps.Attrs {
		if f.Type.Mono() {
			out = append(out, f.Name)
		}
	}
	return out
}

func checkLinkPair(in *adm.Instance, link adm.AttrRef, src adm.Path, tgtAttr string, idx map[string]nested.Tuple) (int, bool, error) {
	support := 0
	for _, t := range in.Relation(link.Scheme).Tuples() {
		pairs, err := adm.LinkAnchorPairs(t, link.Path, src)
		if err != nil {
			// An anchor that is not single-valued in scope simply
			// disqualifies the candidate.
			return 0, false, nil
		}
		for _, pr := range pairs {
			anchor, lv := pr[0], pr[1]
			tgtTuple, ok := idx[lv.String()]
			if !ok {
				return 0, false, nil
			}
			tv, _ := tgtTuple.Get(tgtAttr)
			if anchor.IsNull() || tv == nil || tv.IsNull() {
				continue
			}
			if !adm.ScalarEqual(anchor, tv) {
				return 0, false, nil
			}
			support++
		}
	}
	return support, true, nil
}

// MineInclusions finds every containment between two link attributes with
// the same target that holds on the instance. Reflexive containments are
// skipped; both directions of an equivalence are reported.
func MineInclusions(in *adm.Instance, minSupport int) ([]Proposal, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	ws := in.Scheme
	links := ws.Links()
	sets := make([]map[string]bool, len(links))
	targets := make([]string, len(links))
	for i, ref := range links {
		tgt, err := ws.LinkTarget(ref)
		if err != nil {
			return nil, err
		}
		targets[i] = tgt
		sets[i] = linkSet(in, ref)
	}
	var out []Proposal
	for i, sub := range links {
		for j, super := range links {
			if i == j || targets[i] != targets[j] {
				continue
			}
			if len(sets[i]) < minSupport {
				continue
			}
			contained := true
			for v := range sets[i] {
				if !sets[j][v] {
					contained = false
					break
				}
			}
			if !contained {
				continue
			}
			c := adm.InclusionConstraint{Sub: sub, Super: super}
			out = append(out, Proposal{
				Kind:      "inclusion",
				Inclusion: &c,
				Support:   len(sets[i]),
				Declared:  declaredInclusion(ws, c),
			})
		}
	}
	sortProposals(out)
	return out, nil
}

func declaredInclusion(ws *adm.Scheme, c adm.InclusionConstraint) bool {
	for _, d := range ws.InclCs {
		if d.Sub.Scheme == c.Sub.Scheme && d.Sub.Path.Equal(c.Sub.Path) &&
			d.Super.Scheme == c.Super.Scheme && d.Super.Path.Equal(c.Super.Path) {
			return true
		}
	}
	return false
}

func sortProposals(out []Proposal) {
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
}

// Mine runs both miners and returns all proposals.
func Mine(in *adm.Instance, minSupport int) ([]Proposal, error) {
	lcs, err := MineLinkConstraints(in, minSupport)
	if err != nil {
		return nil, err
	}
	incls, err := MineInclusions(in, minSupport)
	if err != nil {
		return nil, err
	}
	return append(lcs, incls...), nil
}
