// Package optimizer implements Algorithm 1 of §6.3 of the paper: it
// translates a conjunctive query over the external view into a computable
// navigational-algebra expression, derives candidate execution plans with
// the rewriting rules, estimates each plan's network cost, and selects the
// cheapest.
//
// Phases (following the paper):
//
//  1. translate the query into a relational algebra expression over
//     external relations;
//  2. replace each external relation with its default navigations in all
//     possible ways (Rule 1);
//  3. eliminate repeated navigations (Rule 4);
//  4. push and prune joins (Rules 8 and 9);
//  5. push selections (Rule 6);
//  6. push projections (Rule 7);
//  7. eliminate unnecessary navigations (Rules 3 and 5);
//  8. cost every derived plan and pick the minimum.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"ulixes/internal/cost"
	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/rewrite"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// Options tunes the optimizer.
type Options struct {
	// Rules is the enabled rewriting-rule set; rewrite.AllRules if zero
	// value is not desired use DisableRules.
	Rules rewrite.Rule
	// DisableRules removes rules from the default set (for ablations).
	DisableRules rewrite.Rule
	// MaxPlans bounds each expansion phase.
	MaxPlans int
	// BeamWidth bounds the plan set carried between phases (cheapest
	// first); DefaultBeamWidth when zero.
	BeamWidth int
	// Unit selects the cost unit: page downloads (default, the paper's
	// model) or HTML bytes (§6.2's footnote refinement).
	Unit cost.Unit
}

// DefaultBeamWidth is the number of cheapest plans carried from one
// rewriting phase to the next.
const DefaultBeamWidth = 256

// trimToBeam keeps the `beam` cheapest plans (ties broken by rendering for
// determinism). Plans that fail to cost are dropped.
func trimToBeam(plans []nalg.Expr, model *cost.Model, beam int) []nalg.Expr {
	if len(plans) <= beam {
		return plans
	}
	type scored struct {
		e nalg.Expr
		c float64
	}
	out := make([]scored, 0, len(plans))
	for _, p := range plans {
		est, err := model.Estimate(p)
		if err != nil {
			continue
		}
		out = append(out, scored{e: p, c: est.Cost})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].c != out[j].c {
			return out[i].c < out[j].c
		}
		return out[i].e.String() < out[j].e.String()
	})
	if len(out) > beam {
		out = out[:beam]
	}
	trimmed := make([]nalg.Expr, len(out))
	for i, s := range out {
		trimmed[i] = s.e
	}
	return trimmed
}

func (o Options) rules() rewrite.Rule {
	r := o.Rules
	if r == 0 {
		r = rewrite.AllRules
	}
	return r &^ o.DisableRules
}

// Plan is one costed candidate execution plan.
type Plan struct {
	Expr nalg.Expr
	// Cost is the estimated number of network accesses C(E).
	Cost float64
	// Card is the estimated output cardinality.
	Card float64
}

// Result is the outcome of optimization: the chosen plan and every
// candidate considered, cheapest first.
type Result struct {
	Best       Plan
	Candidates []Plan
	// PlansConsidered counts candidates surviving each phase's validation.
	PlansConsidered int
}

// Optimizer selects navigation plans for conjunctive queries.
type Optimizer struct {
	Views *view.Registry
	Stats *stats.Stats
	Opts  Options
}

// New creates an optimizer over a view registry and site statistics.
func New(views *view.Registry, st *stats.Stats) *Optimizer {
	return &Optimizer{Views: views, Stats: st}
}

// Model returns a cost model over the optimizer's scheme and statistics,
// for estimating explicitly constructed plans.
func (o *Optimizer) Model() *cost.Model {
	return &cost.Model{Scheme: o.Views.Scheme, Stats: o.Stats, Unit: o.Opts.Unit}
}

// expandStar rewrites SELECT * into the explicit attribute list: every
// attribute of every atom, in FROM order, prefixed with the atom alias when
// the bare name would collide.
func (o *Optimizer) expandStar(q *cq.Query) (*cq.Query, error) {
	if !q.Star {
		return q, nil
	}
	counts := make(map[string]int)
	for _, atom := range q.From {
		rel := o.Views.Relation(atom.Relation)
		if rel == nil {
			return nil, fmt.Errorf("optimizer: unknown external relation %q", atom.Relation)
		}
		for _, a := range rel.Attrs {
			counts[a]++
		}
	}
	out := *q
	out.Star = false
	for _, atom := range q.From {
		rel := o.Views.Relation(atom.Relation)
		for _, a := range rel.Attrs {
			col := cq.OutCol{Attr: cq.AttrUse{Atom: atom.EffAlias(), Attr: a}}
			if counts[a] > 1 {
				col.As = atom.EffAlias() + "_" + a
			}
			out.Select = append(out.Select, col)
		}
	}
	return &out, nil
}

// Optimize runs Algorithm 1 on a conjunctive query.
func (o *Optimizer) Optimize(q *cq.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q, err := o.expandStar(q)
	if err != nil {
		return nil, err
	}
	seeds, err := o.translate(q)
	if err != nil {
		return nil, err
	}
	ws := o.Views.Scheme
	rules := o.Opts.rules()
	maxPlans := o.Opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = rewrite.DefaultMaxPlans
	}

	// Phases 3–7 of Algorithm 1. Each phase expands the plan set under one
	// group of rules; between phases the set is trimmed to the cheapest
	// plans (a beam), since the expansion is otherwise exponential in the
	// number of rule application sites.
	phases := []rewrite.Rule{
		rules & rewrite.Rule4,
		rules & (rewrite.Rule8 | rewrite.Rule9 | rewrite.RulePushJoin),
		rules & rewrite.Rule6,
		rules & rewrite.Rule7,
		rules & (rewrite.Rule3 | rewrite.Rule5),
	}
	model := &cost.Model{Scheme: ws, Stats: o.Stats, Unit: o.Opts.Unit}
	beam := o.Opts.BeamWidth
	if beam <= 0 {
		beam = DefaultBeamWidth
	}
	plans := seeds
	considered := len(seeds)
	for _, phase := range phases {
		if phase == 0 {
			continue
		}
		rw := &rewrite.Rewriter{WS: ws, Rules: phase}
		plans = rw.Expand(plans, maxPlans)
		considered += len(plans)
		plans = trimToBeam(plans, model, beam)
	}
	var cands []Plan
	for _, p := range plans {
		if !nalg.Computable(p) {
			continue
		}
		est, err := model.Estimate(p)
		if err != nil {
			continue
		}
		cands = append(cands, Plan{Expr: p, Cost: est.Cost, Card: est.Card})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimizer: no computable plan for query %s", q)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		return cands[i].Expr.String() < cands[j].Expr.String()
	})
	return &Result{Best: cands[0], Candidates: cands, PlansConsidered: considered}, nil
}

// translate performs phases 1–2: it builds, for every combination of
// default navigations of the query's atoms, the expression
//
//	ρ_out(π_out(σ_consts(nav_1 ⋈ … ⋈ nav_k)))
//
// with all aliases instantiated per atom so repeated relations don't
// collide. Constant selections are emitted as separate σ nodes so Rule 6
// can push each independently.
// instNav is a default navigation instantiated for one query atom.
type instNav struct {
	expr   nalg.Expr
	colMap map[string]string // external attr -> instantiated column
}

func (o *Optimizer) translate(q *cq.Query) ([]nalg.Expr, error) {
	perAtom := make([][]instNav, len(q.From))
	for i, atom := range q.From {
		rel := o.Views.Relation(atom.Relation)
		if rel == nil {
			return nil, fmt.Errorf("optimizer: unknown external relation %q", atom.Relation)
		}
		for _, nav := range rel.Navs {
			inst, aliasMap := rewrite.InstantiateAliases(nav.Expr, atom.EffAlias())
			cm := make(map[string]string, len(nav.ColMap))
			for attr, col := range nav.ColMap {
				cm[attr] = realiasColName(col, aliasMap)
			}
			perAtom[i] = append(perAtom[i], instNav{expr: inst, colMap: cm})
		}
	}
	// Cartesian product over navigation choices.
	var combos [][]instNav
	var rec func(i int, cur []instNav)
	rec = func(i int, cur []instNav) {
		if i == len(perAtom) {
			combos = append(combos, append([]instNav(nil), cur...))
			return
		}
		for _, nav := range perAtom[i] {
			rec(i+1, append(cur, nav))
		}
	}
	rec(0, nil)

	aliasIdx := make(map[string]int, len(q.From))
	for i, a := range q.From {
		aliasIdx[a.EffAlias()] = i
	}
	colOf := func(combo []instNav, u cq.AttrUse) (string, error) {
		i, ok := aliasIdx[u.Atom]
		if !ok {
			return "", fmt.Errorf("optimizer: unknown alias %q", u.Atom)
		}
		col, ok := combo[i].colMap[u.Attr]
		if !ok {
			return "", fmt.Errorf("optimizer: relation %q has no attribute %q", q.From[i].Relation, u.Attr)
		}
		return col, nil
	}

	// Which plans the rules can derive depends on which atoms sit adjacent
	// in the left-deep join tree (the paper rewrites "in all possible
	// ways"), so enumerate atom orders up to a modest arity and fall back
	// to the written order beyond it.
	orders := permutations(len(q.From), 3)

	var seeds []nalg.Expr
	seen := make(map[string]bool)
	for _, combo := range combos {
		for _, order := range orders {
			expr := combo[order[0]].expr
			placed := map[int]bool{order[0]: true}
			for _, idx := range order[1:] {
				// Attach the join conditions connecting atom idx to the
				// atoms already placed.
				var conds []nested.EqCond
				for _, j := range q.Joins {
					li, lok := aliasIdx[j.Left.Atom]
					ri, rok := aliasIdx[j.Right.Atom]
					if !lok || !rok {
						return nil, fmt.Errorf("optimizer: join references unknown alias")
					}
					var earlier, current cq.AttrUse
					switch {
					case placed[li] && ri == idx:
						earlier, current = j.Left, j.Right
					case placed[ri] && li == idx:
						earlier, current = j.Right, j.Left
					default:
						continue
					}
					lc, err := colOf(combo, earlier)
					if err != nil {
						return nil, err
					}
					rc, err := colOf(combo, current)
					if err != nil {
						return nil, err
					}
					conds = append(conds, nested.EqCond{Left: lc, Right: rc})
				}
				expr = &nalg.Join{L: expr, R: combo[idx].expr, Conds: conds}
				placed[idx] = true
			}
			top, err := o.finish(q, combo, expr, colOf)
			if err != nil {
				return nil, err
			}
			if k := rewrite.CanonKey(top); !seen[k] {
				seen[k] = true
				seeds = append(seeds, top)
			}
		}
	}
	return seeds, nil
}

// permutations returns the atom orders to try: all n! permutations up to
// maxArity atoms, and a reduced deterministic family beyond it (every
// rotation of the written order, forward and reversed — 2n orders), since
// the factorial set becomes prohibitive while adjacency variety is what the
// rewrite rules actually need.
func permutations(n, maxArity int) [][]int {
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	if n <= 1 {
		return [][]int{ident}
	}
	if n > maxArity {
		// Pair-first family: one order per ordered atom pair, placing the
		// pair at the bottom of the left-deep tree (where Rules 4 and 9
		// fire on chain operands) and the rest in written order — n(n−1)
		// orders instead of n!.
		var out [][]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				ord := []int{i, j}
				for k := 0; k < n; k++ {
					if k != i && k != j {
						ord = append(ord, k)
					}
				}
				out = append(out, ord)
			}
		}
		return out
	}
	var out [][]int
	var rec func(cur, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, ident)
	return out
}

// finish stacks the intra-atom checks, constant selections, final
// projection and output renaming on top of a join tree.
func (o *Optimizer) finish(q *cq.Query, combo []instNav, expr nalg.Expr, colOf func([]instNav, cq.AttrUse) (string, error)) (nalg.Expr, error) {
	aliasIdx := make(map[string]int, len(q.From))
	for i, a := range q.From {
		aliasIdx[a.EffAlias()] = i
	}
	{
		// Joins whose both sides live on the same atom become selections.
		for _, j := range q.Joins {
			li, ri := aliasIdx[j.Left.Atom], aliasIdx[j.Right.Atom]
			if li != ri {
				continue
			}
			lc, err := colOf(combo, j.Left)
			if err != nil {
				return nil, err
			}
			rc, err := colOf(combo, j.Right)
			if err != nil {
				return nil, err
			}
			expr = &nalg.Select{In: expr, Pred: nested.AttrPred{Left: lc, Op: nested.OpEq, Right: rc}}
		}
	}
	for _, c := range q.Consts {
		col, err := colOf(combo, c.Attr)
		if err != nil {
			return nil, err
		}
		expr = &nalg.Select{In: expr, Pred: nested.Eq(col, c.Val)}
	}
	cols := make([]string, len(q.Select))
	ren := make(map[string]string, len(q.Select))
	for i, out := range q.Select {
		col, err := colOf(combo, out.Attr)
		if err != nil {
			return nil, err
		}
		cols[i] = col
		if col != out.EffName() {
			if prev, dup := ren[col]; dup && prev != out.EffName() {
				return nil, fmt.Errorf("optimizer: output columns %q and %q project the same source attribute %s", prev, out.EffName(), out.Attr)
			}
			ren[col] = out.EffName()
		}
	}
	var top nalg.Expr = &nalg.Project{In: expr, Cols: dedupCols(cols)}
	if len(ren) > 0 {
		top = &nalg.Rename{In: top, Map: ren}
	}
	if _, err := nalg.InferSchema(top, o.Views.Scheme); err != nil {
		return nil, fmt.Errorf("optimizer: translated plan does not type-check: %v", err)
	}
	return top, nil
}

func dedupCols(cols []string) []string {
	seen := make(map[string]bool, len(cols))
	out := cols[:0]
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func realiasColName(col string, aliasMap map[string]string) string {
	for old, nn := range aliasMap {
		prefix := old + "."
		if len(col) > len(prefix) && col[:len(prefix)] == prefix {
			return nn + "." + col[len(prefix):]
		}
	}
	return col
}

// MeasuredVsEstimated compares an estimate with a measurement, for the
// cost-model-accuracy experiments.
func MeasuredVsEstimated(estimated float64, measured int) float64 {
	if measured == 0 {
		return math.Inf(1)
	}
	return estimated / float64(measured)
}
