package optimizer

import (
	"testing"
	"time"
)

// TestFiveAtomQuery exercises the widest query the university view admits:
// all five external relations joined, with selections. The optimizer must
// stay within its bounds (permutation enumeration caps at 5 atoms) and
// produce a computable plan in reasonable time.
func TestFiveAtomQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("wide query")
	}
	_, o := univOptimizer(t)
	q := mustParse(t, `SELECT p.PName, d.Address, c.CName
		FROM Professor p, ProfDept pd, Dept d, CourseInstructor ci, Course c
		WHERE p.PName = pd.PName AND pd.DName = d.DName
		  AND p.PName = ci.PName AND ci.CName = c.CName
		  AND c.Type = 'Graduate' AND d.DName = 'Computer Science'`)
	start := time.Now()
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 90*time.Second {
		t.Errorf("optimization took %v", elapsed)
	}
	if res.Best.Cost <= 0 {
		t.Errorf("cost = %v", res.Best.Cost)
	}
	// The plan must beat the naive full-navigation bound: downloading all
	// professors AND all courses AND all departments (≈ 77 pages).
	if res.Best.Cost >= 77 {
		t.Errorf("five-atom plan cost %v did not improve on naive navigation", res.Best.Cost)
	}
	t.Logf("five-atom query: cost %.1f, %d candidates, %v", res.Best.Cost, len(res.Candidates), elapsed)
}
