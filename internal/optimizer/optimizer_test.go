package optimizer

import (
	"math"
	"strings"
	"testing"

	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/rewrite"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

func univOptimizer(t *testing.T) (*sitegen.University, *Optimizer) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	views := view.UniversityView(u.Scheme)
	return u, New(views, stats.CollectInstance(u.Instance))
}

func mustParse(t *testing.T, src string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSingleRelationQuery(t *testing.T) {
	_, o := univOptimizer(t)
	q := mustParse(t, "SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !nalg.Computable(res.Best.Expr) {
		t.Error("best plan not computable")
	}
	// Rank is only on professor pages: every professor page must be read.
	if res.Best.Cost < 20 || res.Best.Cost > 22 {
		t.Errorf("cost = %v, want ≈ 21 (entry + all professors)", res.Best.Cost)
	}
}

// TestProjectionOnlyQueryUsesAnchors: asking only for professor names
// should be answered from the list page alone (Rules 7+5), cost 1.
func TestProjectionOnlyQueryUsesAnchors(t *testing.T) {
	_, o := univOptimizer(t)
	q := mustParse(t, "SELECT p.PName FROM Professor p")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != 1 {
		t.Errorf("cost = %v, want 1 (answer from the anchors of the list page)", res.Best.Cost)
	}
	if strings.Contains(res.Best.Expr.String(), "→[") {
		t.Errorf("best plan should not navigate: %s", res.Best.Expr)
	}
}

// TestSelectionPushedThroughConstraint: courses in the fall session — the
// selection moves to the session list anchors, so only the fall session
// page and its courses are downloaded.
func TestSelectionPushedThroughConstraint(t *testing.T) {
	u, o := univOptimizer(t)
	q := mustParse(t, "SELECT c.CName, c.Description FROM Course c WHERE c.Session = 'Fall'")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Entry (1) + fall session page (1) + fall courses (|C|/3).
	want := 2 + float64(u.Params.Courses)/3
	if math.Abs(res.Best.Cost-want) > 1.0 {
		t.Errorf("cost = %v, want ≈ %v", res.Best.Cost, want)
	}
	s := res.Best.Expr.String()
	if !strings.Contains(s, "σ[c$SessionListPage.SesList.Session='Fall']") {
		t.Errorf("selection should sit on the session list: %s", s)
	}
}

// TestExample71PointerJoinWins reproduces Example 7.1: "Name and
// Description of courses taught by full professors in the fall session".
// The optimizer must produce both the pointer-join plan (1d) and the
// pointer-chase plan (2d) and pick the pointer-join one.
func TestExample71PointerJoinWins(t *testing.T) {
	_, o := univOptimizer(t)
	q := mustParse(t, `SELECT c.CName, c.Description
		FROM Professor p, CourseInstructor ci, Course c
		WHERE p.PName = ci.PName AND ci.CName = c.CName
		  AND c.Session = 'Fall' AND p.Rank = 'Full'`)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Expr.String()
	// The winning plan joins the two pointer sets before navigating to the
	// course pages (Rule 8): the final navigation is over the join.
	if !strings.Contains(best, "⋈") {
		t.Errorf("pointer-join plan expected, got: %s", best)
	}
	// Both strategies must be among the candidates.
	var hasChase bool
	for _, c := range res.Candidates {
		s := c.Expr.String()
		// Pointer-chase: no join at all — courses chased from professors.
		if !strings.Contains(s, "⋈") && strings.Contains(s, "→[ToCourse]") {
			hasChase = true
		}
	}
	if !hasChase {
		t.Error("pointer-chase candidate missing from the plan set")
	}
	// The chosen plan is at least as cheap as every candidate.
	for _, c := range res.Candidates {
		if res.Best.Cost > c.Cost+1e-9 {
			t.Errorf("best (%v) more expensive than candidate (%v): %s", res.Best.Cost, c.Cost, c.Expr)
		}
	}
}

// TestExample72PointerChaseWins reproduces Example 7.2: "Name and Email of
// professors in the CS department who teach graduate courses". Here the
// pointer-chase plan is the winner (cost ≈ 25 at the paper's sizes versus
// well over 50 for the pointer-join plan).
func TestExample72PointerChaseWins(t *testing.T) {
	u, o := univOptimizer(t)
	q := mustParse(t, `SELECT p.PName, p.Email
		FROM Course c, CourseInstructor ci, Professor p, ProfDept pd
		WHERE c.CName = ci.CName AND ci.PName = p.PName AND p.PName = pd.PName
		  AND pd.DName = 'Computer Science' AND c.Type = 'Graduate'`)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: pointer-chase ≈ 2 + |Prof|/|Dept| + |Course|/|Dept| ≈ 25.
	chaseCost := 2 + float64(u.Params.Profs)/float64(u.Params.Depts) + float64(u.Params.Courses)/float64(u.Params.Depts)
	if res.Best.Cost > chaseCost+2 {
		t.Errorf("best cost = %v, want ≤ ≈%v (pointer chase)", res.Best.Cost, chaseCost)
	}
	// A pointer-join candidate costing over 50 must exist (it downloads
	// all course pages).
	foundExpensiveJoin := false
	for _, c := range res.Candidates {
		if strings.Contains(c.Expr.String(), "⋈") && c.Cost > 50 {
			foundExpensiveJoin = true
			break
		}
	}
	if !foundExpensiveJoin {
		t.Error("expensive pointer-join candidate missing")
	}
}

func TestSelfJoinDistinctAliases(t *testing.T) {
	// Two atoms over the same relation: professors sharing a department.
	_, o := univOptimizer(t)
	q := mustParse(t, `SELECT a.PName, b.PName AS Other
		FROM ProfDept a, ProfDept b
		WHERE a.DName = b.DName AND a.PName = 'Prof. 000'`)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !nalg.Computable(res.Best.Expr) {
		t.Error("self-join plan not computable")
	}
}

func TestOptimizeErrors(t *testing.T) {
	_, o := univOptimizer(t)
	if _, err := o.Optimize(mustParse(t, "SELECT x.Nope FROM Professor x")); err == nil {
		t.Error("unknown attribute should fail")
	}
	q := &cq.Query{} // invalid
	if _, err := o.Optimize(q); err == nil {
		t.Error("invalid query should fail")
	}
	bad := mustParse(t, "SELECT x.A FROM Unknown x")
	if _, err := o.Optimize(bad); err == nil {
		t.Error("unknown relation should fail")
	}
	dup := mustParse(t, "SELECT p.PName AS A, p.PName AS B FROM Professor p")
	if _, err := o.Optimize(dup); err == nil {
		t.Error("two outputs over one source column should fail")
	}
}

func TestAblationDisablePointerChase(t *testing.T) {
	u, o := univOptimizer(t)
	o.Opts.DisableRules = rewrite.Rule9
	q := mustParse(t, `SELECT p.PName, p.Email
		FROM Course c, CourseInstructor ci, Professor p, ProfDept pd
		WHERE c.CName = ci.CName AND ci.PName = p.PName AND p.PName = pd.PName
		  AND pd.DName = 'Computer Science' AND c.Type = 'Graduate'`)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Without Rule 9, the plan must navigate all courses via the session
	// pages somewhere, so it costs more than the chase plan would.
	chaseCost := 2 + float64(u.Params.Profs)/float64(u.Params.Depts) + float64(u.Params.Courses)/float64(u.Params.Depts)
	if res.Best.Cost <= chaseCost {
		t.Errorf("without Rule 9 cost should exceed %v, got %v", chaseCost, res.Best.Cost)
	}
}

func TestAblationDisableSelectionPush(t *testing.T) {
	_, o := univOptimizer(t)
	qSrc := "SELECT c.CName FROM Course c WHERE c.Session = 'Fall'"
	with, err := o.Optimize(mustParse(t, qSrc))
	if err != nil {
		t.Fatal(err)
	}
	o.Opts.DisableRules = rewrite.Rule6
	without, err := o.Optimize(mustParse(t, qSrc))
	if err != nil {
		t.Fatal(err)
	}
	if without.Best.Cost <= with.Best.Cost {
		t.Errorf("selection pushing should reduce cost: with=%v without=%v", with.Best.Cost, without.Best.Cost)
	}
}

func TestOptionsRules(t *testing.T) {
	o := Options{}
	if o.rules() != rewrite.AllRules {
		t.Error("default rules should be all")
	}
	o.DisableRules = rewrite.Rule9
	if o.rules().Has(rewrite.Rule9) {
		t.Error("disabled rule still present")
	}
	o = Options{Rules: rewrite.Rule6}
	if o.rules() != rewrite.Rule6 {
		t.Error("explicit rules ignored")
	}
}

func TestMeasuredVsEstimated(t *testing.T) {
	if MeasuredVsEstimated(10, 5) != 2 {
		t.Error("ratio wrong")
	}
	if !math.IsInf(MeasuredVsEstimated(10, 0), 1) {
		t.Error("zero measurement should give +Inf")
	}
}

func TestCandidatesSortedByCost(t *testing.T) {
	_, o := univOptimizer(t)
	q := mustParse(t, "SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].Cost > res.Candidates[i].Cost {
			t.Error("candidates not sorted by cost")
			break
		}
	}
	if res.PlansConsidered < len(res.Candidates) {
		t.Error("considered count should be at least the surviving candidates")
	}
}

func TestSelectStarSingleAtom(t *testing.T) {
	u, o := univOptimizer(t)
	res, err := o.Optimize(mustParse(t, "SELECT * FROM Professor p WHERE p.Rank = 'Full'"))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := nalg.InferSchema(res.Best.Expr, o.Views.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PName", "Rank", "Email"} {
		if !sch.Has(want) {
			t.Errorf("star expansion missing %q: %v", want, sch.Names())
		}
	}
	_ = u
}

func TestSelectStarJoinDisambiguates(t *testing.T) {
	_, o := univOptimizer(t)
	// Professor and ProfDept both carry PName: star must disambiguate.
	res, err := o.Optimize(mustParse(t, `SELECT * FROM Professor p, ProfDept pd WHERE p.PName = pd.PName`))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := nalg.InferSchema(res.Best.Expr, o.Views.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Has("p_PName") || !sch.Has("pd_PName") {
		t.Errorf("star should alias colliding attributes: %v", sch.Names())
	}
}

func TestSelectStarUnknownRelation(t *testing.T) {
	_, o := univOptimizer(t)
	if _, err := o.Optimize(mustParse(t, "SELECT * FROM Unknown u")); err == nil {
		t.Error("star over unknown relation should fail")
	}
}
