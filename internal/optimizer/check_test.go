package optimizer

import (
	"testing"

	"ulixes/internal/nalg"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

func bibOptimizer(t *testing.T) *Optimizer {
	t.Helper()
	b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{
		Authors: 60, Confs: 6, DBConfs: 2, Years: 3, PapersPerEdition: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(view.BibliographyView(b.Scheme), stats.CollectInstance(b.Instance))
}

// TestAllCandidatesTypecheck is the optimizer/typechecker agreement
// property: every plan the enumeration produces — not just the chosen one —
// must pass the static plan checker, carry provenance that re-resolves
// against the scheme, and produce exactly the output columns of the best
// plan. The rewrites explore wildly different navigations; this pins down
// that none of them changes what the query returns.
func TestAllCandidatesTypecheck(t *testing.T) {
	_, univ := univOptimizer(t)
	bib := bibOptimizer(t)
	cases := []struct {
		name    string
		opt     *Optimizer
		queries []string
	}{
		{"university", univ, []string{
			"SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'",
			"SELECT p.PName FROM Professor p",
			"SELECT c.CName, c.Session FROM Course c WHERE c.Session = 'Fall'",
			"SELECT p.PName, ci.CName FROM Professor p, CourseInstructor ci WHERE p.PName = ci.PName",
			"SELECT ci.CName FROM CourseInstructor ci, ProfDept pd WHERE ci.PName = pd.PName AND pd.DName = 'Department 01'",
		}},
		{"bibliography", bib, []string{
			"SELECT c.ConfName FROM Conference c WHERE c.Area = 'Databases'",
			"SELECT e.Editors FROM Edition e WHERE e.ConfName = 'Conf. 01' AND e.Year = '1996'",
			"SELECT pa.PTitle FROM PaperAuthor pa WHERE pa.AuthorName = 'Author 001'",
		}},
	}
	for _, site := range cases {
		t.Run(site.name, func(t *testing.T) {
			ws := site.opt.Views.Scheme
			for _, src := range site.queries {
				res, err := site.opt.Optimize(mustParse(t, src))
				if err != nil {
					t.Errorf("%s: %v", src, err)
					continue
				}
				bestSchema, err := nalg.InferSchema(res.Best.Expr, ws)
				if err != nil {
					t.Errorf("%s: best plan schema: %v", src, err)
					continue
				}
				want := bestSchema.Names()
				for _, cand := range res.Candidates {
					if diags := nalg.Check(cand.Expr, ws); len(diags) != 0 {
						t.Errorf("%s: candidate %s: %v", src, cand.Expr, diags)
						continue
					}
					sch, err := nalg.InferSchema(cand.Expr, ws)
					if err != nil {
						t.Errorf("%s: candidate %s: %v", src, cand.Expr, err)
						continue
					}
					if diags := nalg.CheckCols(sch.Cols, ws); len(diags) != 0 {
						t.Errorf("%s: candidate %s: provenance: %v", src, cand.Expr, diags)
					}
					got := sch.Names()
					if len(got) != len(want) {
						t.Errorf("%s: candidate %s has columns %v, best has %v", src, cand.Expr, got, want)
						continue
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s: candidate %s has columns %v, best has %v", src, cand.Expr, got, want)
							break
						}
					}
				}
			}
		})
	}
}
