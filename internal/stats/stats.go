// Package stats implements the quantitative site parameters of §6.2 of the
// paper: page-scheme cardinalities |P|, average list fan-outs |L|, distinct
// attribute counts c_A and join selectivities. The paper assumes they "have
// been initially estimated exploring the site by means of a tool such as
// WebSQL"; here a crawler walks the simulated site once (downloading and
// wrapping every reachable page) and derives them exactly.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
)

// Stats holds the collected parameters, keyed by scheme name and by
// "Scheme.Attr.Path" strings.
type Stats struct {
	// Card is |P|: the number of pages per page-scheme.
	Card map[string]float64
	// Fanout is |L|: the average number of elements of a list attribute per
	// occurrence of its parent, keyed by attribute reference
	// ("DeptPage.ProfList").
	Fanout map[string]float64
	// Distinct is c_A: the number of distinct non-null values of an
	// attribute path across the page-relation, keyed by attribute
	// reference ("CoursePage.Session", "DeptPage.ProfList.ToProf").
	Distinct map[string]float64
	// Occurrences is |μ_A(P)|: the total number of value occurrences of an
	// attribute path across the page-relation (equals Card for top-level
	// mono-valued attributes).
	Occurrences map[string]float64
	// JoinSel optionally overrides the estimated join selectivity for a
	// column pair, keyed by "Ref1|Ref2" with the two refs sorted.
	JoinSel map[string]float64
	// PageBytes is the average HTML size of a page per page-scheme, for
	// the byte-weighted cost model (§6.2 footnote: page sizes can refine
	// the cost model). Zero when unknown.
	PageBytes map[string]float64
}

// New returns empty statistics.
func New() *Stats {
	return &Stats{
		Card:        make(map[string]float64),
		Fanout:      make(map[string]float64),
		Distinct:    make(map[string]float64),
		Occurrences: make(map[string]float64),
		JoinSel:     make(map[string]float64),
		PageBytes:   make(map[string]float64),
	}
}

// SchemeCard returns |P| for a page-scheme, defaulting to 1.
func (s *Stats) SchemeCard(scheme string) float64 {
	if v, ok := s.Card[scheme]; ok {
		return v
	}
	return 1
}

// AvgPageBytes returns the average page size of a page-scheme in bytes,
// defaulting to 1 so the byte-weighted cost degrades to page counting when
// sizes are unknown.
func (s *Stats) AvgPageBytes(scheme string) float64 {
	if v, ok := s.PageBytes[scheme]; ok && v > 0 {
		return v
	}
	return 1
}

// FanoutOf returns |L| for a list attribute reference, defaulting to 1.
func (s *Stats) FanoutOf(ref adm.AttrRef) float64 {
	if v, ok := s.Fanout[ref.String()]; ok {
		return v
	}
	return 1
}

// DistinctOf returns c_A for an attribute reference; when unknown it falls
// back to the total occurrence count, then to 1.
func (s *Stats) DistinctOf(ref adm.AttrRef) float64 {
	if v, ok := s.Distinct[ref.String()]; ok {
		return v
	}
	if v, ok := s.Occurrences[ref.String()]; ok {
		return v
	}
	return 1
}

// Selectivity returns s_A = 1/c_A for an attribute reference (§6.2 (e)).
func (s *Stats) Selectivity(ref adm.AttrRef) float64 {
	d := s.DistinctOf(ref)
	if d <= 0 {
		return 1
	}
	return 1 / d
}

// SetJoinSel overrides the join selectivity for a pair of attribute
// references (§6.2 (d)).
func (s *Stats) SetJoinSel(a, b adm.AttrRef, sel float64) {
	s.JoinSel[joinKey(a, b)] = sel
}

// JoinSelectivity returns the override for a pair, if set.
func (s *Stats) JoinSelectivity(a, b adm.AttrRef) (float64, bool) {
	v, ok := s.JoinSel[joinKey(a, b)]
	return v, ok
}

func joinKey(a, b adm.AttrRef) string {
	ka, kb := a.String(), b.String()
	if ka > kb {
		ka, kb = kb, ka
	}
	return ka + "|" + kb
}

// Snapshot is a frozen copy of the statistics, taken when a derived
// artifact (a cached plan) is produced, so later drift can be measured.
type Snapshot struct {
	maps []map[string]float64
}

// Snapshot captures the current statistics.
func (s *Stats) Snapshot() Snapshot {
	src := []map[string]float64{s.Card, s.Fanout, s.Distinct, s.Occurrences, s.JoinSel, s.PageBytes}
	out := make([]map[string]float64, len(src))
	for i, m := range src {
		c := make(map[string]float64, len(m))
		for k, v := range m {
			c[k] = v
		}
		out[i] = c
	}
	return Snapshot{maps: out}
}

// DriftFrom returns the maximum relative change of any parameter since the
// snapshot: |new−old| / max(|old|, 1), with parameters present on only one
// side compared against zero. A plan cache invalidates entries whose
// snapshot has drifted past its threshold, since the cost ranking that
// selected the plan may no longer hold.
func (s *Stats) DriftFrom(snap Snapshot) float64 {
	cur := []map[string]float64{s.Card, s.Fanout, s.Distinct, s.Occurrences, s.JoinSel, s.PageBytes}
	if len(snap.maps) != len(cur) {
		return math.Inf(1)
	}
	drift := 0.0
	rel := func(old, new float64) float64 {
		d := math.Abs(new - old)
		if d == 0 {
			return 0
		}
		den := math.Abs(old)
		if den < 1 {
			den = 1
		}
		return d / den
	}
	for i, m := range cur {
		old := snap.maps[i]
		for k, v := range m {
			if r := rel(old[k], v); r > drift {
				drift = r
			}
		}
		for k, v := range old {
			if _, ok := m[k]; !ok {
				if r := rel(v, 0); r > drift {
					drift = r
				}
			}
		}
	}
	return drift
}

// CollectInstance derives exact statistics from an ADM instance. It is the
// offline equivalent of crawling the site.
func CollectInstance(in *adm.Instance) *Stats {
	s := New()
	for _, name := range in.Scheme.PageNames() {
		rel := in.Relation(name)
		s.Card[name] = float64(rel.Len())
		ps := in.Scheme.Page(name)
		collectFields(s, name, nil, ps.Attrs, rel.Tuples(), float64(rel.Len()))
	}
	return s
}

// collectFields accumulates occurrence/distinct/fanout statistics for every
// attribute path of a page-scheme. parentOcc is the number of occurrences
// of the parent path (pages for top level, list elements below).
func collectFields(s *Stats, scheme string, prefix adm.Path, fields []nested.Field, tuples []nested.Tuple, parentOcc float64) {
	for _, f := range fields {
		path := append(append(adm.Path(nil), prefix...), f.Name)
		ref := adm.AttrRef{Scheme: scheme, Path: path}
		key := ref.String()
		switch f.Type.Kind {
		case nested.KindList:
			var elems []nested.Tuple
			total := 0.0
			for _, t := range tuples {
				for _, v := range collectPathLists(t, path) {
					total += float64(len(v))
					elems = append(elems, v...)
				}
			}
			s.Occurrences[key] = total
			if parentOcc > 0 {
				s.Fanout[key] = total / parentOcc
			}
			// Element tuples are indexed relative to the page tuple set, so
			// recurse with the flattened elements and the element paths.
			collectElemFields(s, scheme, path, f.Type.Elem, elems)
		default:
			seen := make(map[string]bool)
			occ := 0.0
			for _, t := range tuples {
				for _, v := range adm.PathValues(t, path) {
					occ++
					seen[nested.ValueKey(v)] = true
				}
			}
			s.Occurrences[key] = occ
			s.Distinct[key] = float64(len(seen))
		}
	}
}

// collectElemFields handles attributes nested inside list elements, where
// the "tuples" are the flattened element tuples and paths are relative to
// the page.
func collectElemFields(s *Stats, scheme string, prefix adm.Path, fields []nested.Field, elems []nested.Tuple) {
	for _, f := range fields {
		path := append(append(adm.Path(nil), prefix...), f.Name)
		ref := adm.AttrRef{Scheme: scheme, Path: path}
		key := ref.String()
		switch f.Type.Kind {
		case nested.KindList:
			var sub []nested.Tuple
			total := 0.0
			for _, e := range elems {
				v, ok := e.Get(f.Name)
				if !ok || v.IsNull() {
					continue
				}
				lv := v.(nested.ListValue)
				total += float64(len(lv))
				sub = append(sub, lv...)
			}
			s.Occurrences[key] = total
			if n := float64(len(elems)); n > 0 {
				s.Fanout[key] = total / n
			}
			collectElemFields(s, scheme, path, f.Type.Elem, sub)
		default:
			seen := make(map[string]bool)
			occ := 0.0
			for _, e := range elems {
				v, ok := e.Get(f.Name)
				if !ok || v.IsNull() {
					continue
				}
				occ++
				seen[nested.ValueKey(v)] = true
			}
			s.Occurrences[key] = occ
			s.Distinct[key] = float64(len(seen))
		}
	}
}

// collectPathLists returns the list values found at a list-typed path of a
// page tuple (descending through enclosing lists).
func collectPathLists(t nested.Tuple, path adm.Path) []nested.ListValue {
	v, ok := t.Get(path[0])
	if !ok || v.IsNull() {
		return nil
	}
	if len(path) == 1 {
		if lv, ok := v.(nested.ListValue); ok {
			return []nested.ListValue{lv}
		}
		return nil
	}
	lv, ok := v.(nested.ListValue)
	if !ok {
		return nil
	}
	var out []nested.ListValue
	for _, e := range lv {
		out = append(out, collectPathLists(e, path[1:])...)
	}
	return out
}

// String renders the statistics in a stable, human-readable form.
func (s *Stats) String() string {
	var sb strings.Builder
	schemes := make([]string, 0, len(s.Card))
	for k := range s.Card {
		schemes = append(schemes, k)
	}
	sort.Strings(schemes)
	for _, k := range schemes {
		fmt.Fprintf(&sb, "|%s| = %.0f\n", k, s.Card[k])
	}
	keys := make([]string, 0, len(s.Fanout))
	for k := range s.Fanout {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "fanout(%s) = %.2f\n", k, s.Fanout[k])
	}
	keys = keys[:0]
	for k := range s.Distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "distinct(%s) = %.0f\n", k, s.Distinct[k])
	}
	return sb.String()
}
