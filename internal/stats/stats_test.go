package stats

import (
	"math"
	"strings"
	"testing"

	"ulixes/internal/adm"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

func ref(s, p string) adm.AttrRef { return adm.AttrRef{Scheme: s, Path: adm.ParsePath(p)} }

func paperStats(t *testing.T) (*sitegen.University, *Stats) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	return u, CollectInstance(u.Instance)
}

func TestCollectCardinalities(t *testing.T) {
	u, s := paperStats(t)
	if s.SchemeCard(sitegen.CoursePage) != float64(u.Params.Courses) {
		t.Errorf("|CoursePage| = %v", s.SchemeCard(sitegen.CoursePage))
	}
	if s.SchemeCard(sitegen.ProfPage) != float64(u.Params.Profs) {
		t.Errorf("|ProfPage| = %v", s.SchemeCard(sitegen.ProfPage))
	}
	if s.SchemeCard(sitegen.DeptPage) != float64(u.Params.Depts) {
		t.Errorf("|DeptPage| = %v", s.SchemeCard(sitegen.DeptPage))
	}
	if s.SchemeCard("Unknown") != 1 {
		t.Error("unknown scheme should default to 1")
	}
}

func TestCollectFanouts(t *testing.T) {
	u, s := paperStats(t)
	// ProfListPage has one page listing all professors.
	if got := s.FanoutOf(ref(sitegen.ProfListPage, "ProfList")); got != float64(u.Params.Profs) {
		t.Errorf("fanout(ProfListPage.ProfList) = %v", got)
	}
	// DeptPage.ProfList averages Profs/Depts.
	want := float64(u.Params.Profs) / float64(u.Params.Depts)
	if got := s.FanoutOf(ref(sitegen.DeptPage, "ProfList")); math.Abs(got-want) > 1e-9 {
		t.Errorf("fanout(DeptPage.ProfList) = %v, want %v", got, want)
	}
	// ProfPage.CourseList totals all courses over all profs.
	want = float64(u.Params.Courses) / float64(u.Params.Profs)
	if got := s.FanoutOf(ref(sitegen.ProfPage, "CourseList")); math.Abs(got-want) > 1e-9 {
		t.Errorf("fanout(ProfPage.CourseList) = %v, want %v", got, want)
	}
	// Unknown fanout defaults to 1.
	if s.FanoutOf(ref("X", "Y")) != 1 {
		t.Error("unknown fanout should default to 1")
	}
}

func TestCollectDistincts(t *testing.T) {
	u, s := paperStats(t)
	if got := s.DistinctOf(ref(sitegen.CoursePage, "Session")); got != float64(len(u.Params.Sessions)) {
		t.Errorf("c(CoursePage.Session) = %v", got)
	}
	if got := s.DistinctOf(ref(sitegen.CoursePage, "Type")); got != 2 {
		t.Errorf("c(CoursePage.Type) = %v", got)
	}
	if got := s.DistinctOf(ref(sitegen.ProfPage, "DName")); got != float64(u.Params.Depts) {
		t.Errorf("c(ProfPage.DName) = %v", got)
	}
	// Nested distinct: the links in DeptPage.ProfList cover all professors.
	if got := s.DistinctOf(ref(sitegen.DeptPage, "ProfList.ToProf")); got != float64(u.Params.Profs) {
		t.Errorf("c(DeptPage.ProfList.ToProf) = %v", got)
	}
	// Unknown attr defaults to 1.
	if s.DistinctOf(ref("X", "Y")) != 1 {
		t.Error("unknown distinct should default to 1")
	}
}

func TestSelectivity(t *testing.T) {
	u, s := paperStats(t)
	want := 1 / float64(len(u.Params.Sessions))
	if got := s.Selectivity(ref(sitegen.CoursePage, "Session")); math.Abs(got-want) > 1e-9 {
		t.Errorf("s(Session) = %v, want %v", got, want)
	}
	// Zero-distinct edge: selectivity defends against division by zero.
	s2 := New()
	s2.Distinct["X.Y"] = 0
	if s2.Selectivity(ref("X", "Y")) != 1 {
		t.Error("zero distinct should give selectivity 1")
	}
}

func TestOccurrences(t *testing.T) {
	u, s := paperStats(t)
	// Total course-list entries across professors equals total courses.
	key := ref(sitegen.ProfPage, "CourseList").String()
	if got := s.Occurrences[key]; got != float64(u.Params.Courses) {
		t.Errorf("occurrences(ProfPage.CourseList) = %v", got)
	}
}

func TestJoinSelOverride(t *testing.T) {
	s := New()
	a, b := ref("A", "L"), ref("B", "L")
	if _, ok := s.JoinSelectivity(a, b); ok {
		t.Error("no override expected")
	}
	s.SetJoinSel(a, b, 0.25)
	if v, ok := s.JoinSelectivity(b, a); !ok || v != 0.25 {
		t.Error("override should be symmetric in argument order")
	}
}

func TestStatsString(t *testing.T) {
	_, s := paperStats(t)
	out := s.String()
	for _, want := range []string{"|CoursePage| = 50", "fanout(", "distinct("} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q", want)
		}
	}
}

func TestCrawlReconstructsInstance(t *testing.T) {
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Crawl(ms, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range u.Scheme.PageNames() {
		if !inst.Relation(name).Equal(u.Instance.Relation(name)) {
			t.Errorf("crawled %s differs from ground truth", name)
		}
	}
	// Crawl downloads each page exactly once.
	if got := ms.Counters().Gets(); got != u.Instance.TotalPages() {
		t.Errorf("crawl cost = %d, want %d", got, u.Instance.TotalPages())
	}
}

func TestCollectSiteMatchesInstanceStats(t *testing.T) {
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	crawled, pages, err := CollectSite(ms, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if pages != u.Instance.TotalPages() {
		t.Errorf("pages = %d", pages)
	}
	direct := CollectInstance(u.Instance)
	for k, v := range direct.Card {
		if crawled.Card[k] != v {
			t.Errorf("card %s: crawled %v, direct %v", k, crawled.Card[k], v)
		}
	}
	for k, v := range direct.Distinct {
		if crawled.Distinct[k] != v {
			t.Errorf("distinct %s: crawled %v, direct %v", k, crawled.Distinct[k], v)
		}
	}
	for k, v := range direct.Fanout {
		if math.Abs(crawled.Fanout[k]-v) > 1e-9 {
			t.Errorf("fanout %s: crawled %v, direct %v", k, crawled.Fanout[k], v)
		}
	}
}

func TestCrawlFailsOnBrokenSite(t *testing.T) {
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Depts: 2, Profs: 4, Courses: 6})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a professor page: the crawl hits a dangling link.
	for _, url := range ms.URLs() {
		if scheme, _ := ms.SchemeOf(url); scheme == sitegen.ProfPage {
			ms.RemovePage(url)
			break
		}
	}
	if _, err := Crawl(ms, u.Scheme); err == nil {
		t.Error("crawl over dangling link should fail")
	}
}

func TestCrawlBibliography(t *testing.T) {
	b, err := sitegen.GenerateBibliography(sitegen.BibliographyParams{
		Authors: 30, Confs: 4, DBConfs: 2, Years: 2, PapersPerEdition: 2, AuthorsPerPaper: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(b.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Crawl(ms, b.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if inst.TotalPages() != b.Instance.TotalPages() {
		t.Errorf("crawled %d pages, want %d", inst.TotalPages(), b.Instance.TotalPages())
	}
}
