package stats

import (
	"fmt"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
)

// Crawl walks the whole site breadth-first from its entry points,
// downloading and wrapping every reachable page, and returns the
// reconstructed ADM instance. It substitutes for the WebSQL exploration the
// paper assumes for statistics gathering, and is also used to bootstrap the
// materialized view of §8.
//
// Pages are classified by the scheme of the link that reaches them: entry
// points have declared schemes, and every link attribute declares its
// target page-scheme.
func Crawl(server site.Server, ws *adm.Scheme) (*adm.Instance, error) {
	inst, _, err := CrawlWithSizes(server, ws)
	return inst, err
}

// CrawlWithSizes is Crawl, additionally returning the average HTML page
// size per page-scheme (for the byte-weighted cost model).
func CrawlWithSizes(server site.Server, ws *adm.Scheme) (*adm.Instance, map[string]float64, error) {
	f := site.NewFetcher(server, ws)
	inst := adm.NewInstance(ws)
	type item struct{ scheme, url string }
	var queue []item
	seen := make(map[string]bool)
	for _, ep := range ws.Entry {
		queue = append(queue, item{ep.Scheme, ep.URL})
		seen[ep.URL] = true
	}
	links := ws.Links()
	bytesBy := make(map[string]float64)
	countBy := make(map[string]float64)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		tup, err := f.Fetch(cur.scheme, cur.url)
		if err != nil {
			return nil, nil, fmt.Errorf("stats: crawl %s (%s): %w", cur.url, cur.scheme, err)
		}
		if err := inst.AddPage(cur.scheme, tup); err != nil {
			return nil, nil, err
		}
		if n, ok := f.SizeOf(cur.url); ok {
			bytesBy[cur.scheme] += float64(n)
			countBy[cur.scheme]++
		}
		for _, ref := range links {
			if ref.Scheme != cur.scheme {
				continue
			}
			tgt, err := ws.LinkTarget(ref)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range adm.PathValues(tup, ref.Path) {
				if _, ok := v.(nested.LinkValue); !ok {
					continue
				}
				u := v.String()
				if !seen[u] {
					seen[u] = true
					queue = append(queue, item{tgt, u})
				}
			}
		}
	}
	avg := make(map[string]float64, len(bytesBy))
	for scheme, total := range bytesBy {
		avg[scheme] = total / countBy[scheme]
	}
	return inst, avg, nil
}

// CollectSite crawls the site and derives its statistics in one step,
// returning both the statistics and the number of pages downloaded (the
// cost of the exploration, which the paper amortizes by updating statistics
// "on a regular basis").
func CollectSite(server site.Server, ws *adm.Scheme) (*Stats, int, error) {
	inst, sizes, err := CrawlWithSizes(server, ws)
	if err != nil {
		return nil, 0, err
	}
	st := CollectInstance(inst)
	st.PageBytes = sizes
	return st, inst.TotalPages(), nil
}
