package view

import (
	"strings"
	"testing"

	"ulixes/internal/nalg"
	"ulixes/internal/sitegen"
)

const universityViewText = `
# The external view of §5, declared textually.
relation Dept(DName, Address) {
  nav DeptListPage / DeptList -> ToDept
    map DName = DeptPage.DName, Address = DeptPage.Address
}

relation Professor(PName, Rank, Email) {
  nav ProfListPage / ProfList -> ToProf
    map PName = ProfPage.Name, Rank = ProfPage.Rank, Email = ProfPage.Email
}

relation CourseInstructor(CName, PName) {
  nav ProfListPage / ProfList -> ToProf / CourseList
    map CName = ProfPage.CourseList.CName, PName = ProfPage.Name
  nav SessionListPage / SesList -> ToSes / CourseList -> ToCourse
    map CName = CoursePage.CName, PName = CoursePage.ProfName
}
`

func TestParseViewsBasics(t *testing.T) {
	ws := sitegen.UniversityScheme()
	r, err := ParseViews(ws, universityViewText)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names()) != 3 {
		t.Fatalf("relations = %v", r.Names())
	}
	ci := r.Relation("CourseInstructor")
	if len(ci.Navs) != 2 {
		t.Fatalf("CourseInstructor navs = %d", len(ci.Navs))
	}
	if ci.Navs[1].ColMap["PName"] != "CoursePage.ProfName" {
		t.Errorf("colmap = %v", ci.Navs[1].ColMap)
	}
	// Parsed navigations match the programmatic view's.
	prog := UniversityView(ws)
	if !nalg.Equal(r.Relation("Professor").Navs[0].Expr, prog.Relation("Professor").Navs[0].Expr) {
		t.Errorf("parsed Professor nav differs:\n%s\n%s",
			r.Relation("Professor").Navs[0].Expr, prog.Relation("Professor").Navs[0].Expr)
	}
}

func TestParseViewsWithSelectionAndAlias(t *testing.T) {
	ws := sitegen.UniversityScheme()
	src := `relation FullProf(PName) {
		nav ProfListPage / ProfList -> ToProf as fp [Rank='Full']
		  map PName = fp.Name
	}`
	r, err := ParseViews(ws, src)
	if err != nil {
		t.Fatal(err)
	}
	nav := r.Relation("FullProf").Navs[0]
	if !strings.Contains(nav.Expr.String(), "σ[fp.Rank='Full']") {
		t.Errorf("selection/alias lost: %s", nav.Expr)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	ws := sitegen.UniversityScheme()
	prog := UniversityView(ws)
	text := prog.Format()
	back, err := ParseViews(ws, text)
	if err != nil {
		t.Fatalf("formatted view does not re-parse: %v\n%s", err, text)
	}
	if len(back.Names()) != len(prog.Names()) {
		t.Fatalf("relations differ: %v vs %v", back.Names(), prog.Names())
	}
	for _, name := range prog.Names() {
		a, b := prog.Relation(name), back.Relation(name)
		if len(a.Navs) != len(b.Navs) {
			t.Errorf("%s: navs %d vs %d", name, len(a.Navs), len(b.Navs))
			continue
		}
		for i := range a.Navs {
			if !nalg.Equal(a.Navs[i].Expr, b.Navs[i].Expr) {
				t.Errorf("%s nav %d differs:\n%s\n%s", name, i, a.Navs[i].Expr, b.Navs[i].Expr)
			}
		}
	}
}

func TestBibliographyViewRoundTrip(t *testing.T) {
	ws := sitegen.BibliographyScheme()
	prog := BibliographyView(ws)
	back, err := ParseViews(ws, prog.Format())
	if err != nil {
		t.Fatalf("bibliography view does not round trip: %v", err)
	}
	if len(back.Names()) != len(prog.Names()) {
		t.Errorf("relations = %v", back.Names())
	}
}

func TestParseViewsErrors(t *testing.T) {
	ws := sitegen.UniversityScheme()
	cases := []string{
		`banana`,
		`relation`,
		`relation R`,
		`relation R(`,
		`relation R()`,
		`relation R(A`,
		`relation R(A) {`,
		`relation R(A) { banana }`,
		`relation R(A) { nav NoSuchPage map A = X.Y }`,
		`relation R(A) { nav ProfListPage / ProfList map A }`,
		`relation R(A) { nav ProfListPage / ProfList map A = }`,
		`relation R(A) { nav ProfListPage / ProfList map A = unqualified }`,
		`relation R(A) { nav ProfListPage / ProfList map A = Ghost.Col }`,
		`relation R(A) { nav ProfListPage / ProfList map B = ProfListPage.Title }`, // attr A unmapped
		`relation R(A) { nav ProfListPage [ProfName='x map A = ProfListPage.Title }`,
	}
	for _, src := range cases {
		if _, err := ParseViews(ws, src); err == nil {
			t.Errorf("ParseViews(%q) should fail", src)
		}
	}
}

// TestParsedViewDrivesOptimizer runs a query through a registry built from
// text and checks it behaves identically to the programmatic registry.
func TestParsedViewDrivesOptimizer(t *testing.T) {
	ws := sitegen.UniversityScheme()
	parsed, err := ParseViews(ws, universityViewText)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Relation("Professor") == nil {
		t.Fatal("Professor missing")
	}
	// The registry validates navigations eagerly; reaching here with two
	// multi-nav relations is the integration point the optimizer needs.
	for _, name := range parsed.Names() {
		for i, nav := range parsed.Relation(name).Navs {
			if !nalg.Computable(nav.Expr) {
				t.Errorf("%s nav %d not computable", name, i)
			}
		}
	}
}
