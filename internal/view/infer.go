package view

import (
	"fmt"
	"sort"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/rewrite"
)

// InferNavigations derives, by inference over the inclusion constraints,
// every *covering* navigation from an entry point to the given page-scheme
// — §5's suggestion that "the system might be able to select default
// navigations among all possible navigations in the scheme" instead of
// having the designer write them. A navigation qualifies when every follow
// step's link attribute covers its target's extent (all other links to the
// same target are included in it), so executing it materializes the full
// page-relation.
//
// Chains are explored breadth-first up to maxDepth follow steps (default 4
// when zero); results are returned shortest first, ties broken by
// rendering.
func InferNavigations(ws *adm.Scheme, target string, maxDepth int) ([]nalg.Expr, error) {
	if ws.Page(target) == nil {
		return nil, fmt.Errorf("view: unknown page-scheme %q", target)
	}
	if maxDepth <= 0 {
		maxDepth = 4
	}
	type state struct {
		expr nalg.Expr
		// scheme is the page-scheme the chain currently sits on.
		scheme string
		// alias is the current page's alias.
		alias string
		depth int
	}
	var out []nalg.Expr
	var queue []state
	for _, ep := range ws.Entry {
		e := &nalg.EntryScan{Scheme: ep.Scheme, URL: ep.URL}
		if ep.Scheme == target {
			out = append(out, e)
		}
		queue = append(queue, state{expr: e, scheme: ep.Scheme, alias: ep.Scheme, depth: 0})
	}
	// aliasFor disambiguates when a scheme repeats along one chain (rare;
	// cycles are cut by the depth bound).
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= maxDepth {
			continue
		}
		// Every covering link of the current scheme extends the chain.
		for _, ref := range linkRefsOf(ws, cur.scheme) {
			tgt, err := ws.LinkTarget(ref)
			if err != nil {
				return nil, err
			}
			if !rewrite.CoversExtent(ws, ref) {
				continue
			}
			ext, err := extendChain(ws, cur.expr, cur.alias, ref, tgt)
			if err != nil {
				// Alias collision (scheme revisited): skip this extension.
				continue
			}
			if tgt == target {
				out = append(out, ext.expr)
			}
			queue = append(queue, state{expr: ext.expr, scheme: tgt, alias: ext.alias, depth: cur.depth + 1})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := chainLen(out[i]), chainLen(out[j])
		if li != lj {
			return li < lj
		}
		return out[i].String() < out[j].String()
	})
	return out, nil
}

// linkRefsOf returns the link attribute references declared by one scheme.
func linkRefsOf(ws *adm.Scheme, scheme string) []adm.AttrRef {
	var out []adm.AttrRef
	for _, ref := range ws.Links() {
		if ref.Scheme == scheme {
			out = append(out, ref)
		}
	}
	return out
}

type extended struct {
	expr  nalg.Expr
	alias string
}

// extendChain appends the unnests and follow needed to traverse the link
// attribute ref from the current position.
func extendChain(ws *adm.Scheme, e nalg.Expr, alias string, ref adm.AttrRef, target string) (extended, error) {
	col := alias
	// Unnest every list level enclosing the link.
	for i := 0; i < len(ref.Path)-1; i++ {
		col = col + "." + ref.Path[i]
		e = &nalg.Unnest{In: e, Attr: col}
	}
	link := col + "." + ref.Path.Leaf()
	f := &nalg.Follow{In: e, Link: link, Target: target}
	if _, err := nalg.InferSchema(f, ws); err != nil {
		return extended{}, err
	}
	return extended{expr: f, alias: f.EffAlias()}, nil
}

func chainLen(e nalg.Expr) int {
	n := 0
	nalg.Walk(e, func(nalg.Expr) { n++ })
	return n
}

// AutoRelation builds an external relation whose default navigations are
// inferred with InferNavigations. attrMap maps each external attribute to a
// mono-valued attribute name of the target page-scheme.
func AutoRelation(ws *adm.Scheme, name, target string, attrMap map[string]string, maxDepth int) (*ExternalRelation, error) {
	navs, err := InferNavigations(ws, target, maxDepth)
	if err != nil {
		return nil, err
	}
	if len(navs) == 0 {
		return nil, fmt.Errorf("view: no covering navigation reaches %q", target)
	}
	attrs := make([]string, 0, len(attrMap))
	for a := range attrMap {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		ty, err := ws.ResolvePath(target, adm.Path{attrMap[a]})
		if err != nil {
			return nil, fmt.Errorf("view: relation %s: %v", name, err)
		}
		if ty.Kind == nested.KindList {
			return nil, fmt.Errorf("view: relation %s: attribute %q maps to a list", name, a)
		}
	}
	rel := &ExternalRelation{Name: name, Attrs: attrs}
	for _, nav := range navs {
		// The navigation ends on the target's alias: find it from the
		// schema (the last follow's alias, or the entry alias).
		tgtAlias := targetAlias(nav, target)
		cm := make(map[string]string, len(attrMap))
		for a, attr := range attrMap {
			cm[a] = tgtAlias + "." + attr
		}
		rel.Navs = append(rel.Navs, Navigation{Expr: nav, ColMap: cm})
	}
	return rel, nil
}

func targetAlias(e nalg.Expr, target string) string {
	switch x := e.(type) {
	case *nalg.EntryScan:
		return x.EffAlias()
	case *nalg.Follow:
		if x.Target == target {
			return x.EffAlias()
		}
	}
	return target
}
