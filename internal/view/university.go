package view

import (
	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/sitegen"
)

// UniversityView builds the external view of §5 over the university site:
//
//	Dept(DName, Address)
//	Professor(PName, Rank, Email)
//	Course(CName, Session, Description, Type)
//	CourseInstructor(CName, PName)      — two default navigations
//	ProfDept(PName, DName)              — two default navigations
func UniversityView(ws *adm.Scheme) *Registry {
	r := NewRegistry(ws)

	deptNav := nalg.From(ws, sitegen.DeptListPage).Unnest("DeptList").Follow("ToDept").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "Dept",
		Attrs: []string{"DName", "Address"},
		Navs: []Navigation{{
			Expr: deptNav,
			ColMap: map[string]string{
				"DName":   "DeptPage.DName",
				"Address": "DeptPage.Address",
			},
		}},
	})

	profNav := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "Professor",
		Attrs: []string{"PName", "Rank", "Email"},
		Navs: []Navigation{{
			Expr: profNav,
			ColMap: map[string]string{
				"PName": "ProfPage.Name",
				"Rank":  "ProfPage.Rank",
				"Email": "ProfPage.Email",
			},
		}},
	})

	courseNav := nalg.From(ws, sitegen.SessionListPage).
		Unnest("SesList").Follow("ToSes").Unnest("CourseList").Follow("ToCourse").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "Course",
		Attrs: []string{"CName", "Session", "Description", "Type"},
		Navs: []Navigation{{
			Expr: courseNav,
			ColMap: map[string]string{
				"CName":       "CoursePage.CName",
				"Session":     "CoursePage.Session",
				"Description": "CoursePage.Description",
				"Type":        "CoursePage.Type",
			},
		}},
	})

	// CourseInstructor has two default navigations (§5 item 4): through the
	// professors' course lists, or through the session/course pages.
	ciProfNav := nalg.From(ws, sitegen.ProfListPage).
		Unnest("ProfList").Follow("ToProf").Unnest("CourseList").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "CourseInstructor",
		Attrs: []string{"CName", "PName"},
		Navs: []Navigation{
			{
				Expr: ciProfNav,
				ColMap: map[string]string{
					"CName": "ProfPage.CourseList.CName",
					"PName": "ProfPage.Name",
				},
			},
			{
				Expr: courseNav,
				ColMap: map[string]string{
					"CName": "CoursePage.CName",
					"PName": "CoursePage.ProfName",
				},
			},
		},
	})

	// ProfDept also has two (§5 item 5): through professor pages, or
	// through department member lists.
	pdDeptNav := nalg.From(ws, sitegen.DeptListPage).
		Unnest("DeptList").Follow("ToDept").Unnest("ProfList").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "ProfDept",
		Attrs: []string{"PName", "DName"},
		Navs: []Navigation{
			{
				Expr: profNav,
				ColMap: map[string]string{
					"PName": "ProfPage.Name",
					"DName": "ProfPage.DName",
				},
			},
			{
				Expr: pdDeptNav,
				ColMap: map[string]string{
					"PName": "DeptPage.ProfList.ProfName",
					"DName": "DeptPage.DName",
				},
			},
		},
	})

	return r
}
