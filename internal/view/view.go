// Package view implements the relational views of §5 of the paper: external
// relations exposed to the user, each associated with one or more default
// navigations — computable NALG expressions whose execution materializes the
// relation's extent — together with the column mapping from navigation
// output to external attribute names.
package view

import (
	"fmt"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
)

// Navigation is one default navigation of an external relation.
type Navigation struct {
	// Expr is the navigation, a computable NALG expression without final
	// projection (the optimizer projects as late or early as the rules
	// allow).
	Expr nalg.Expr
	// ColMap maps each external attribute to the qualified navigation
	// column holding it.
	ColMap map[string]string
}

// ExternalRelation is one relation of the external view.
type ExternalRelation struct {
	Name string
	// Attrs are the external attribute names in declaration order.
	Attrs []string
	// Navs are the default navigations (Rule 1 replaces the relation with
	// any of them).
	Navs []Navigation
}

// Registry is the set of external relations offered over one web scheme.
type Registry struct {
	Scheme    *adm.Scheme
	relations map[string]*ExternalRelation
	order     []string
}

// NewRegistry creates an empty registry over a web scheme.
func NewRegistry(ws *adm.Scheme) *Registry {
	return &Registry{Scheme: ws, relations: make(map[string]*ExternalRelation)}
}

// Add registers an external relation, validating each navigation: the
// expression must be computable, type-check against the scheme, and expose
// every mapped column.
func (r *Registry) Add(rel *ExternalRelation) error {
	if rel.Name == "" {
		return fmt.Errorf("view: relation with empty name")
	}
	if _, dup := r.relations[rel.Name]; dup {
		return fmt.Errorf("view: duplicate relation %q", rel.Name)
	}
	if len(rel.Attrs) == 0 {
		return fmt.Errorf("view: relation %q has no attributes", rel.Name)
	}
	if len(rel.Navs) == 0 {
		return fmt.Errorf("view: relation %q has no default navigation", rel.Name)
	}
	for i, nav := range rel.Navs {
		if !nalg.Computable(nav.Expr) {
			return fmt.Errorf("view: %s navigation %d is not computable", rel.Name, i)
		}
		sch, err := nalg.InferSchema(nav.Expr, r.Scheme)
		if err != nil {
			return fmt.Errorf("view: %s navigation %d: %v", rel.Name, i, err)
		}
		for _, a := range rel.Attrs {
			col, ok := nav.ColMap[a]
			if !ok {
				return fmt.Errorf("view: %s navigation %d does not map attribute %q", rel.Name, i, a)
			}
			if !sch.Has(col) {
				return fmt.Errorf("view: %s navigation %d maps %q to missing column %q", rel.Name, i, a, col)
			}
		}
	}
	r.relations[rel.Name] = rel
	r.order = append(r.order, rel.Name)
	return nil
}

// MustAdd is Add that panics on error, for the statically known site views.
func (r *Registry) MustAdd(rel *ExternalRelation) {
	if err := r.Add(rel); err != nil {
		panic(err)
	}
}

// Relation returns the named external relation, or nil.
func (r *Registry) Relation(name string) *ExternalRelation { return r.relations[name] }

// Names returns the relation names in registration order.
func (r *Registry) Names() []string { return r.order }
