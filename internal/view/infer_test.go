package view_test

import (
	"strings"
	"testing"

	"ulixes/internal/engine"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/rewrite"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

func TestInferNavigationsProfessors(t *testing.T) {
	ws := sitegen.UniversityScheme()
	navs, err := view.InferNavigations(ws, sitegen.ProfPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(navs) == 0 {
		t.Fatal("no navigation inferred for ProfPage")
	}
	// The shortest inferred navigation is the designer's default of §5.
	want := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").Follow("ToProf").MustBuild()
	if !nalg.Equal(navs[0], want) {
		t.Errorf("first navigation = %s, want %s", navs[0], want)
	}
	// No inferred navigation goes through course pages: CoursePage.ToProf
	// does not cover the professors (non-teaching professors are
	// unreachable), exactly §5's warning.
	for _, nav := range navs {
		if strings.Contains(nav.String(), "CoursePage") {
			t.Errorf("non-covering navigation inferred: %s", nav)
		}
		if !rewrite.CoveringChain(ws, nav) {
			t.Errorf("inferred navigation is not covering: %s", nav)
		}
	}
	// The department path is not covering either (DeptPage.ProfList.ToProf
	// has no inclusion from the full list).
	for _, nav := range navs {
		if strings.Contains(nav.String(), "DeptPage") {
			t.Errorf("department path should not be inferred as covering: %s", nav)
		}
	}
}

func TestInferNavigationsCourses(t *testing.T) {
	ws := sitegen.UniversityScheme()
	navs, err := view.InferNavigations(ws, sitegen.CoursePage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(navs) == 0 {
		t.Fatal("no navigation inferred for CoursePage")
	}
	want := nalg.From(ws, sitegen.SessionListPage).Unnest("SesList").Follow("ToSes").
		Unnest("CourseList").Follow("ToCourse").MustBuild()
	if !nalg.Equal(navs[0], want) {
		t.Errorf("first navigation = %s, want %s", navs[0], want)
	}
	for _, nav := range navs {
		if strings.Contains(nav.String(), "ProfPage") {
			t.Errorf("professor path does not cover all courses: %s", nav)
		}
	}
}

func TestInferNavigationsEntryPointItself(t *testing.T) {
	ws := sitegen.UniversityScheme()
	navs, err := view.InferNavigations(ws, sitegen.ProfListPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(navs) == 0 {
		t.Fatal("entry point should be reachable trivially")
	}
	if _, ok := navs[0].(*nalg.EntryScan); !ok {
		t.Errorf("shortest navigation to an entry point should be its scan: %s", navs[0])
	}
}

func TestInferNavigationsUnknownScheme(t *testing.T) {
	ws := sitegen.UniversityScheme()
	if _, err := view.InferNavigations(ws, "Ghost", 0); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestInferNavigationsDepthBound(t *testing.T) {
	ws := sitegen.UniversityScheme()
	// Depth 1 cannot reach CoursePage (needs two follows).
	navs, err := view.InferNavigations(ws, sitegen.CoursePage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(navs) != 0 {
		t.Errorf("depth 1 should not reach courses: %v", navs)
	}
}

func TestAutoRelationMatchesManualView(t *testing.T) {
	ws := sitegen.UniversityScheme()
	rel, err := view.AutoRelation(ws, "Professor", sitegen.ProfPage, map[string]string{
		"PName": "Name",
		"Rank":  "Rank",
		"Email": "Email",
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := view.NewRegistry(ws)
	if err := r.Add(rel); err != nil {
		t.Fatalf("inferred relation does not register: %v", err)
	}
	// Run a query through the inferred view and compare with the manual one.
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.CollectInstance(u.Instance)
	autoEng := engine.New(r, ms, st)
	manualEng := engine.New(view.UniversityView(ws), ms, st)
	const q = "SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'"
	a, err := autoEng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := manualEng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var _ *nested.Relation = a.Result
	if !a.Result.Equal(m.Result) {
		t.Error("inferred view disagrees with the designer's view")
	}
}

func TestAutoRelationErrors(t *testing.T) {
	ws := sitegen.UniversityScheme()
	if _, err := view.AutoRelation(ws, "R", "Ghost", map[string]string{"A": "B"}, 0); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := view.AutoRelation(ws, "R", sitegen.ProfPage, map[string]string{"A": "Ghost"}, 0); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := view.AutoRelation(ws, "R", sitegen.ProfPage, map[string]string{"A": "CourseList"}, 0); err == nil {
		t.Error("list attribute should fail")
	}
}
