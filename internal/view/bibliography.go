package view

import (
	"ulixes/internal/adm"
	"ulixes/internal/nalg"
	"ulixes/internal/sitegen"
)

// BibliographyView builds the external view over the bibliography site.
//
// PaperAuthor has two default navigations — through the full conference
// list and through the author list. The Introduction's other two access
// paths (the smaller database-conference list and the home page's direct
// VLDB link) are *not* valid default navigations: they do not cover the
// relation's extent (a non-database conference's papers are unreachable
// through them), exactly the situation §5 warns about ("it is not
// guaranteed that all courses may be reached using this path"). The
// experiment exp.E1 runs those two paths as explicit plans for the
// VLDB-restricted query, where the restriction makes them correct.
func BibliographyView(ws *adm.Scheme) *Registry {
	r := NewRegistry(ws)

	confNav := nalg.From(ws, sitegen.ConfListPage).Unnest("ConfList").Follow("ToConf").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "Conference",
		Attrs: []string{"ConfName", "Area"},
		Navs: []Navigation{{
			Expr: confNav,
			ColMap: map[string]string{
				"ConfName": "ConfPage.ConfName",
				"Area":     "ConfPage.Area",
			},
		}},
	})

	// Edition(ConfName, Year, Editors): answerable from the per-conference
	// page alone thanks to the link-constraint redundancy (the paper's
	// "who edited VLDB '96" example).
	editionNav := nalg.From(ws, sitegen.ConfListPage).
		Unnest("ConfList").Follow("ToConf").Unnest("Editions").MustBuild()
	r.MustAdd(&ExternalRelation{
		Name:  "Edition",
		Attrs: []string{"ConfName", "Year", "Editors"},
		Navs: []Navigation{{
			Expr: editionNav,
			ColMap: map[string]string{
				"ConfName": "ConfPage.ConfName",
				"Year":     "ConfPage.Editions.Year",
				"Editors":  "ConfPage.Editions.Editors",
			},
		}},
	})

	// The covering access paths to paper/author facts.
	paNav := func(b *nalg.Builder) nalg.Expr {
		return b.Follow("ToConf").
			Unnest("Editions").
			Follow("ToEdition").
			Unnest("Papers").
			Unnest("Authors").
			MustBuild()
	}
	viaAllConfs := paNav(nalg.From(ws, sitegen.ConfListPage).Unnest("ConfList"))
	viaAuthors := nalg.From(ws, sitegen.AuthorListPage).
		Unnest("AuthorList").
		Follow("ToAuthor").
		Unnest("Publications").
		MustBuild()

	confYearCols := map[string]string{
		"ConfName":   "ConfYearPage.ConfName",
		"Year":       "ConfYearPage.Year",
		"PTitle":     "ConfYearPage.Papers.PTitle",
		"AuthorName": "ConfYearPage.Papers.Authors.AuthorName",
	}
	r.MustAdd(&ExternalRelation{
		Name:  "PaperAuthor",
		Attrs: []string{"ConfName", "Year", "PTitle", "AuthorName"},
		Navs: []Navigation{
			{Expr: viaAllConfs, ColMap: confYearCols},
			{Expr: viaAuthors, ColMap: map[string]string{
				"ConfName":   "AuthorPage.Publications.ConfName",
				"Year":       "AuthorPage.Publications.Year",
				"PTitle":     "AuthorPage.Publications.PTitle",
				"AuthorName": "AuthorPage.AuthorName",
			}},
		},
	})

	return r
}
