package view

import (
	"testing"

	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/sitegen"
)

func TestUniversityViewRegistry(t *testing.T) {
	ws := sitegen.UniversityScheme()
	r := UniversityView(ws)
	wantRels := []string{"Dept", "Professor", "Course", "CourseInstructor", "ProfDept"}
	if len(r.Names()) != len(wantRels) {
		t.Fatalf("relations = %v", r.Names())
	}
	for _, name := range wantRels {
		if r.Relation(name) == nil {
			t.Errorf("relation %s missing", name)
		}
	}
	// The paper gives CourseInstructor and ProfDept two default navigations
	// each (§5 items 4–5).
	if got := len(r.Relation("CourseInstructor").Navs); got != 2 {
		t.Errorf("CourseInstructor navs = %d, want 2", got)
	}
	if got := len(r.Relation("ProfDept").Navs); got != 2 {
		t.Errorf("ProfDept navs = %d, want 2", got)
	}
	if got := len(r.Relation("Dept").Navs); got != 1 {
		t.Errorf("Dept navs = %d, want 1", got)
	}
}

func TestBibliographyViewRegistry(t *testing.T) {
	ws := sitegen.BibliographyScheme()
	r := BibliographyView(ws)
	// Only the two covering paths qualify as default navigations; the
	// Introduction's other two access paths miss non-database conferences
	// (see the package comment on BibliographyView).
	if got := len(r.Relation("PaperAuthor").Navs); got != 2 {
		t.Errorf("PaperAuthor navs = %d, want 2 (the covering paths)", got)
	}
	if r.Relation("Conference") == nil || r.Relation("Edition") == nil {
		t.Error("Conference/Edition relations missing")
	}
}

func TestRegistryValidation(t *testing.T) {
	ws := sitegen.UniversityScheme()
	r := NewRegistry(ws)
	nav := nalg.From(ws, sitegen.ProfListPage).Unnest("ProfList").MustBuild()

	if err := r.Add(&ExternalRelation{Name: "", Attrs: []string{"A"}, Navs: []Navigation{{Expr: nav}}}); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := r.Add(&ExternalRelation{Name: "R", Attrs: nil, Navs: []Navigation{{Expr: nav}}}); err == nil {
		t.Error("no attributes should be rejected")
	}
	if err := r.Add(&ExternalRelation{Name: "R", Attrs: []string{"A"}, Navs: nil}); err == nil {
		t.Error("no navigations should be rejected")
	}
	// Unmapped attribute.
	if err := r.Add(&ExternalRelation{Name: "R", Attrs: []string{"A"},
		Navs: []Navigation{{Expr: nav, ColMap: map[string]string{}}}}); err == nil {
		t.Error("unmapped attribute should be rejected")
	}
	// Mapped to missing column.
	if err := r.Add(&ExternalRelation{Name: "R", Attrs: []string{"A"},
		Navs: []Navigation{{Expr: nav, ColMap: map[string]string{"A": "Ghost.Col"}}}}); err == nil {
		t.Error("mapping to missing column should be rejected")
	}
	// Non-computable navigation.
	ext := &nalg.ExtScan{Relation: "X"}
	if err := r.Add(&ExternalRelation{Name: "R", Attrs: []string{"A"},
		Navs: []Navigation{{Expr: ext, ColMap: map[string]string{"A": "X.A"}}}}); err == nil {
		t.Error("non-computable navigation should be rejected")
	}
	// Valid, then duplicate.
	good := &ExternalRelation{Name: "R", Attrs: []string{"A"},
		Navs: []Navigation{{Expr: nav, ColMap: map[string]string{"A": "ProfListPage.ProfList.ProfName"}}}}
	if err := r.Add(good); err != nil {
		t.Fatalf("valid relation rejected: %v", err)
	}
	if err := r.Add(good); err == nil {
		t.Error("duplicate relation should be rejected")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAdd should panic on error")
			}
		}()
		r.MustAdd(good)
	}()
}

func TestNavigationsTypeCheckAgainstScheme(t *testing.T) {
	ws := sitegen.UniversityScheme()
	r := UniversityView(ws)
	for _, name := range r.Names() {
		rel := r.Relation(name)
		for i, nav := range rel.Navs {
			sch, err := nalg.InferSchema(nav.Expr, ws)
			if err != nil {
				t.Errorf("%s nav %d: %v", name, i, err)
				continue
			}
			for attr, col := range nav.ColMap {
				c, ok := sch.Col(col)
				if !ok {
					t.Errorf("%s nav %d: attr %s maps to missing %s", name, i, attr, col)
					continue
				}
				if c.Type.Kind == nested.KindList {
					t.Errorf("%s nav %d: attr %s maps to a list column", name, i, attr)
				}
			}
		}
	}
}
