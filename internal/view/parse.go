package view

import (
	"fmt"
	"sort"
	"strings"

	"ulixes/internal/adm"
	"ulixes/internal/nalg"
)

// ParseViews parses the textual view-definition language into a Registry:
//
//	relation Professor(PName, Rank, Email) {
//	  nav ProfListPage / ProfList -> ToProf
//	    map PName = ProfPage.Name, Rank = ProfPage.Rank, Email = ProfPage.Email
//	}
//
//	relation CourseInstructor(CName, PName) {
//	  nav ProfListPage / ProfList -> ToProf / CourseList
//	    map CName = ProfPage.CourseList.CName, PName = ProfPage.Name
//	  nav SessionListPage / SesList -> ToSes / CourseList -> ToCourse
//	    map CName = CoursePage.CName, PName = CoursePage.ProfName
//	}
//
// Each nav clause is a Ulixes navigation (see nalg.ParseNav); each map
// clause binds every declared attribute to a navigation column. Line
// comments start with '#'. Every navigation is validated against the
// scheme.
func ParseViews(ws *adm.Scheme, src string) (*Registry, error) {
	r := NewRegistry(ws)
	s := &viewScanner{src: stripComments(src)}
	for {
		s.skipSpace()
		if s.eof() {
			return r, nil
		}
		if err := s.keyword("relation"); err != nil {
			return nil, err
		}
		rel, err := parseRelation(ws, s)
		if err != nil {
			return nil, err
		}
		if err := r.Add(rel); err != nil {
			return nil, err
		}
	}
}

func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		if j := strings.IndexByte(l, '#'); j >= 0 && !strings.Contains(l[:j], "'") {
			lines[i] = l[:j]
		}
	}
	return strings.Join(lines, "\n")
}

// viewScanner is a lightweight word scanner; the nav clauses are handed to
// nalg.ParseNav as raw text.
type viewScanner struct {
	src string
	i   int
}

func (s *viewScanner) eof() bool { return s.i >= len(s.src) }

func (s *viewScanner) skipSpace() {
	for s.i < len(s.src) && (s.src[s.i] == ' ' || s.src[s.i] == '\t' || s.src[s.i] == '\n' || s.src[s.i] == '\r') {
		s.i++
	}
}

func (s *viewScanner) errf(format string, args ...any) error {
	line := 1 + strings.Count(s.src[:min(s.i, len(s.src))], "\n")
	return fmt.Errorf("view: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (s *viewScanner) ident() (string, error) {
	s.skipSpace()
	start := s.i
	for s.i < len(s.src) && isWordByte(s.src[s.i]) {
		s.i++
	}
	if s.i == start {
		return "", s.errf("expected identifier")
	}
	return s.src[start:s.i], nil
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (s *viewScanner) keyword(kw string) error {
	save := s.i
	w, err := s.ident()
	if err != nil || w != kw {
		s.i = save
		return s.errf("expected %q", kw)
	}
	return nil
}

func (s *viewScanner) peekKeyword(kw string) bool {
	save := s.i
	w, err := s.ident()
	s.i = save
	return err == nil && w == kw
}

func (s *viewScanner) punct(c byte) error {
	s.skipSpace()
	if s.eof() || s.src[s.i] != c {
		return s.errf("expected %q", string(c))
	}
	s.i++
	return nil
}

func (s *viewScanner) tryPunct(c byte) bool {
	s.skipSpace()
	if !s.eof() && s.src[s.i] == c {
		s.i++
		return true
	}
	return false
}

// rawUntilWord captures raw text up to (not including) the next occurrence
// of one of the stop words at word boundaries outside quotes, or up to a
// stop byte.
func (s *viewScanner) rawUntilWord(stopWords []string, stopByte byte) (string, error) {
	start := s.i
	inQuote := false
	for s.i < len(s.src) {
		c := s.src[s.i]
		if c == '\'' {
			inQuote = !inQuote
			s.i++
			continue
		}
		if inQuote {
			s.i++
			continue
		}
		if c == stopByte {
			return s.src[start:s.i], nil
		}
		if isWordByte(c) && (s.i == 0 || !isWordByte(s.src[s.i-1])) {
			j := s.i
			for j < len(s.src) && isWordByte(s.src[j]) {
				j++
			}
			word := s.src[s.i:j]
			for _, stop := range stopWords {
				if word == stop {
					return s.src[start:s.i], nil
				}
			}
			s.i = j
			continue
		}
		s.i++
	}
	if inQuote {
		return "", s.errf("unterminated string")
	}
	return s.src[start:s.i], nil
}

func parseRelation(ws *adm.Scheme, s *viewScanner) (*ExternalRelation, error) {
	name, err := s.ident()
	if err != nil {
		return nil, err
	}
	if err := s.punct('('); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		a, err := s.ident()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		if s.tryPunct(')') {
			break
		}
		if err := s.punct(','); err != nil {
			return nil, err
		}
	}
	if err := s.punct('{'); err != nil {
		return nil, err
	}
	rel := &ExternalRelation{Name: name, Attrs: attrs}
	for {
		s.skipSpace()
		if s.tryPunct('}') {
			return rel, nil
		}
		if err := s.keyword("nav"); err != nil {
			return nil, err
		}
		navText, err := s.rawUntilWord([]string{"map"}, '}')
		if err != nil {
			return nil, err
		}
		if err := s.keyword("map"); err != nil {
			return nil, err
		}
		expr, err := nalg.ParseNav(ws, strings.TrimSpace(navText))
		if err != nil {
			return nil, fmt.Errorf("view: relation %s: %w", name, err)
		}
		colMap := make(map[string]string)
		for {
			attr, err := s.ident()
			if err != nil {
				return nil, err
			}
			if err := s.punct('='); err != nil {
				return nil, err
			}
			col, err := s.dottedCol()
			if err != nil {
				return nil, err
			}
			colMap[attr] = col
			if !s.tryPunct(',') {
				break
			}
		}
		rel.Navs = append(rel.Navs, Navigation{Expr: expr, ColMap: colMap})
		if !s.peekKeyword("nav") {
			if err := s.punct('}'); err != nil {
				return nil, err
			}
			return rel, nil
		}
	}
}

// dottedCol parses a qualified column name IDENT ('.' IDENT)+.
func (s *viewScanner) dottedCol() (string, error) {
	head, err := s.ident()
	if err != nil {
		return "", err
	}
	parts := []string{head}
	for {
		save := s.i
		s.skipSpace()
		if s.eof() || s.src[s.i] != '.' {
			s.i = save
			break
		}
		s.i++
		next, err := s.ident()
		if err != nil {
			return "", err
		}
		parts = append(parts, next)
	}
	if len(parts) < 2 {
		return "", s.errf("expected qualified column (Alias.Attr), found %q", head)
	}
	return strings.Join(parts, "."), nil
}

// Format renders the registry in the view-definition language.
func (r *Registry) Format() string {
	var sb strings.Builder
	for _, name := range r.order {
		rel := r.relations[name]
		fmt.Fprintf(&sb, "relation %s(%s) {\n", rel.Name, strings.Join(rel.Attrs, ", "))
		for _, nav := range rel.Navs {
			fmt.Fprintf(&sb, "  nav %s\n", navText(nav.Expr))
			attrs := make([]string, 0, len(nav.ColMap))
			for a := range nav.ColMap {
				attrs = append(attrs, a)
			}
			sort.Strings(attrs)
			pairs := make([]string, len(attrs))
			for i, a := range attrs {
				pairs[i] = a + " = " + nav.ColMap[a]
			}
			fmt.Fprintf(&sb, "    map %s\n", strings.Join(pairs, ", "))
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// navText renders a pure navigation chain in the textual navigation
// language. Only the Entry/Unnest/Follow/Select shapes default navigations
// use are supported; anything else falls back to the plan rendering (which
// ParseNav will reject, surfacing the issue at parse time).
func navText(e nalg.Expr) string {
	switch x := e.(type) {
	case *nalg.EntryScan:
		return x.Scheme
	case *nalg.Unnest:
		return navText(x.In) + " / " + lastSeg(x.Attr)
	case *nalg.Follow:
		out := navText(x.In) + " -> " + lastSeg(x.Link)
		if x.Alias != "" && x.Alias != x.Target {
			out += " as " + x.Alias
		}
		return out
	case *nalg.Select:
		return navText(x.In) + " [" + x.Pred.String() + "]"
	default:
		return e.String()
	}
}

func lastSeg(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
