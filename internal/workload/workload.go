// Package workload records the query workload a running system actually
// serves: which conjunctive-query shapes arrive, how often, with which
// constants, and what each execution cost. The record is the input to
// benefit-driven view selection ("View Selection in Semantic Web
// Databases"): a view is only worth materializing if the workload keeps
// paying for the navigation it would replace.
//
// Shapes reuse the prepared-plan cache's canonicalization: constants are
// parameterized out with NUL-framed placeholders, so "Rank='Full'" and
// "Rank='Assistant'" are the same shape with different bindings. The
// concrete constants are kept per sample — bound views (views with binding
// patterns) need them.
package workload

import (
	"sort"
	"strings"
	"sync"
	"time"

	"ulixes/internal/cq"
	"ulixes/internal/plancache"
)

// DefaultCapacity is the ring size when a Recorder is built with none: large
// enough to cover the recent workload a selector should react to, small
// enough that an unbounded query stream cannot grow the server's memory.
const DefaultCapacity = 1024

// Sample is one recorded query execution.
type Sample struct {
	// Shape is the canonicalized query text: constants replaced by ordinal
	// placeholders, so equal shapes differ only in bindings.
	Shape string
	// Relations are the external relations the query's FROM clause touches,
	// in atom order (with repeats for self-joins).
	Relations []string
	// Consts are the concrete constant values, in the query's constant
	// order — the bindings that, paired with the shape, reproduce the query.
	Consts []string
	// ConstAttrs are the attribute names the constants select on
	// (relation-qualified, "Professor.Rank"), aligned with Consts.
	ConstAttrs []string
	// Pages is the measured number of live page downloads.
	Pages int
	// Accesses is the measured distinct-access count C(E) — downloads plus
	// cache hits, revalidations and stale serves.
	Accesses int
	// Wall is the measured execution time.
	Wall time.Duration
	// FromView reports that the query was answered from a materialized
	// view (and therefore cost no navigation at all).
	FromView bool
}

// Stats counts the recorder's traffic. The statsexhaustive analyzer holds
// Add to covering every field.
//
//lint:exhaustive Stats
type Stats struct {
	// Recorded is the number of samples accepted.
	Recorded int
	// Evicted is the number of samples the ring overwrote.
	Evicted int
	// Dropped is the number of queries that could not be canonicalized
	// (constants containing the placeholder alphabet) and were not recorded.
	Dropped int
}

// Add folds another recorder's counters into s.
func (s *Stats) Add(o Stats) {
	s.Recorded += o.Recorded
	s.Evicted += o.Evicted
	s.Dropped += o.Dropped
}

// Recorder is a fixed-capacity ring of recent query samples. It is safe for
// concurrent use; recording is O(1) and never blocks on anything but the
// recorder's own mutex.
type Recorder struct {
	mu    sync.Mutex
	ring  []Sample // guarded by mu
	next  int      // guarded by mu
	stats Stats    // guarded by mu
}

// NewRecorder creates a recorder holding the most recent capacity samples
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Sample, 0, capacity)}
}

// Observed is the measured cost of one execution, as reported by the engine.
type Observed struct {
	Pages    int
	Accesses int
	Wall     time.Duration
	FromView bool
}

// Record canonicalizes the query and appends a sample, evicting the oldest
// when the ring is full. Queries whose constants cannot be parameterized
// (NUL bytes) are counted in Stats.Dropped and skipped.
func (r *Recorder) Record(q *cq.Query, obs Observed) {
	canon, params, ok := plancache.Canonicalize(q)
	if !ok {
		r.mu.Lock()
		r.stats.Dropped++
		r.mu.Unlock()
		return
	}
	rels := make([]string, len(q.From))
	for i, a := range q.From {
		rels[i] = a.Relation
	}
	attrs := make([]string, len(q.Consts))
	for i, c := range q.Consts {
		rel := c.Attr.Atom
		if a, found := q.Atom(c.Attr.Atom); found {
			rel = a.Relation
		}
		attrs[i] = rel + "." + c.Attr.Attr
	}
	s := Sample{
		Shape:      canon.String(),
		Relations:  rels,
		Consts:     params,
		ConstAttrs: attrs,
		Pages:      obs.Pages,
		Accesses:   obs.Accesses,
		Wall:       obs.Wall,
		FromView:   obs.FromView,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Recorded++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
		return
	}
	r.ring[r.next] = s
	r.next = (r.next + 1) % cap(r.ring)
	r.stats.Evicted++
}

// Len returns the number of samples currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Stats returns a snapshot of the recorder's counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// BindingCount is one concrete constant vector of a shape with its
// occurrence count.
type BindingCount struct {
	// Consts is the constant vector, aligned with the shape's placeholders.
	Consts []string
	// Freq is how many held samples used it.
	Freq int
}

// ShapeSummary aggregates the held samples of one query shape.
type ShapeSummary struct {
	// Shape is the canonicalized query text.
	Shape string
	// Relations are the external relations the shape's FROM clause touches.
	Relations []string
	// ConstAttrs are the relation-qualified attributes the shape's
	// constants select on.
	ConstAttrs []string
	// Freq is the number of held samples of this shape.
	Freq int
	// LivePages is the summed live download count of the shape's samples
	// that were NOT answered from a view — the navigation cost the workload
	// keeps paying.
	LivePages int
	// Accesses is the summed distinct-access count across all samples.
	Accesses int
	// Wall is the summed execution time across all samples.
	Wall time.Duration
	// FromView is how many of the samples were answered from a view.
	FromView int
	// Bindings are the shape's concrete constant vectors by descending
	// frequency (ties broken by the vector's text, for determinism).
	Bindings []BindingCount
}

// Snapshot aggregates the held samples per shape, most frequent first (ties
// broken by shape text). It is the selector's input.
func (r *Recorder) Snapshot() []ShapeSummary {
	r.mu.Lock()
	samples := make([]Sample, len(r.ring))
	copy(samples, r.ring)
	r.mu.Unlock()

	byShape := make(map[string]*ShapeSummary)
	bindings := make(map[string]map[string]*BindingCount)
	var order []string
	for _, s := range samples {
		sum, ok := byShape[s.Shape]
		if !ok {
			sum = &ShapeSummary{Shape: s.Shape, Relations: s.Relations, ConstAttrs: s.ConstAttrs}
			byShape[s.Shape] = sum
			bindings[s.Shape] = make(map[string]*BindingCount)
			order = append(order, s.Shape)
		}
		sum.Freq++
		sum.Accesses += s.Accesses
		sum.Wall += s.Wall
		if s.FromView {
			sum.FromView++
		} else {
			sum.LivePages += s.Pages
		}
		key := strings.Join(s.Consts, "\x00")
		bc, ok := bindings[s.Shape][key]
		if !ok {
			bc = &BindingCount{Consts: s.Consts}
			bindings[s.Shape][key] = bc
		}
		bc.Freq++
	}
	out := make([]ShapeSummary, 0, len(order))
	for _, shape := range order {
		sum := byShape[shape]
		for _, bc := range bindings[shape] {
			sum.Bindings = append(sum.Bindings, *bc)
		}
		sort.Slice(sum.Bindings, func(i, j int) bool {
			if sum.Bindings[i].Freq != sum.Bindings[j].Freq {
				return sum.Bindings[i].Freq > sum.Bindings[j].Freq
			}
			return strings.Join(sum.Bindings[i].Consts, "\x00") < strings.Join(sum.Bindings[j].Consts, "\x00")
		})
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}
