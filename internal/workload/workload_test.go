package workload

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"ulixes/internal/cq"
)

func parse(t *testing.T, src string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestShapesAggregateAcrossConstants: queries differing only in constants are
// one shape with per-binding counts, and the summary is ordered by frequency.
func TestShapesAggregateAcrossConstants(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 3; i++ {
		r.Record(parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"), Observed{Pages: 10, Accesses: 12, Wall: time.Millisecond})
	}
	r.Record(parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Assistant'"), Observed{Pages: 10, Accesses: 10})
	r.Record(parse(t, "SELECT d.DName FROM Dept d"), Observed{Pages: 2, Accesses: 2})

	sums := r.Snapshot()
	if len(sums) != 2 {
		t.Fatalf("got %d shapes, want 2", len(sums))
	}
	prof := sums[0]
	if prof.Freq != 4 {
		t.Fatalf("most frequent shape has freq %d, want 4", prof.Freq)
	}
	if !reflect.DeepEqual(prof.Relations, []string{"Professor"}) {
		t.Errorf("Relations = %v", prof.Relations)
	}
	if !reflect.DeepEqual(prof.ConstAttrs, []string{"Professor.Rank"}) {
		t.Errorf("ConstAttrs = %v", prof.ConstAttrs)
	}
	if prof.LivePages != 40 || prof.Accesses != 46 || prof.Wall != 3*time.Millisecond {
		t.Errorf("cost aggregation: pages=%d accesses=%d wall=%v", prof.LivePages, prof.Accesses, prof.Wall)
	}
	wantBindings := []BindingCount{
		{Consts: []string{"Full"}, Freq: 3},
		{Consts: []string{"Assistant"}, Freq: 1},
	}
	if !reflect.DeepEqual(prof.Bindings, wantBindings) {
		t.Errorf("Bindings = %+v, want %+v", prof.Bindings, wantBindings)
	}
	if sums[1].Freq != 1 || len(sums[1].ConstAttrs) != 0 {
		t.Errorf("second shape: %+v", sums[1])
	}
}

// TestFromViewSamplesExcludedFromLivePages: view-answered executions count
// toward frequency but not toward the live navigation cost — the benefit
// signal the selector divides by live executions only.
func TestFromViewSamplesExcludedFromLivePages(t *testing.T) {
	r := NewRecorder(0)
	q := "SELECT p.PName FROM Professor p"
	r.Record(parse(t, q), Observed{Pages: 20, Accesses: 20})
	r.Record(parse(t, q), Observed{Pages: 0, Accesses: 0, FromView: true})
	r.Record(parse(t, q), Observed{Pages: 0, Accesses: 0, FromView: true})

	sums := r.Snapshot()
	if len(sums) != 1 {
		t.Fatalf("got %d shapes, want 1", len(sums))
	}
	s := sums[0]
	if s.Freq != 3 || s.FromView != 2 || s.LivePages != 20 {
		t.Errorf("freq=%d fromView=%d livePages=%d, want 3/2/20", s.Freq, s.FromView, s.LivePages)
	}
}

// TestRingEvictsOldest: the ring keeps only the most recent capacity samples
// and counts evictions.
func TestRingEvictsOldest(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(parse(t, fmt.Sprintf("SELECT p.PName FROM Professor p WHERE p.Rank = 'R%d'", i)), Observed{Pages: 1})
	}
	if r.Len() != 2 {
		t.Fatalf("ring holds %d, want 2", r.Len())
	}
	st := r.Stats()
	if st.Recorded != 5 || st.Evicted != 3 || st.Dropped != 0 {
		t.Errorf("stats %+v, want 5 recorded / 3 evicted", st)
	}
	// Only the newest two bindings survive.
	sums := r.Snapshot()
	if len(sums) != 1 || sums[0].Freq != 2 {
		t.Fatalf("snapshot %+v", sums)
	}
	got := map[string]bool{}
	for _, b := range sums[0].Bindings {
		got[b.Consts[0]] = true
	}
	if !got["R3"] || !got["R4"] {
		t.Errorf("surviving bindings %v, want R3 and R4", got)
	}
}

// TestUncanonicalizableDropped: constants containing the placeholder
// alphabet (NUL) cannot be parameterized; such queries are dropped, not
// mis-bucketed.
func TestUncanonicalizableDropped(t *testing.T) {
	r := NewRecorder(0)
	q := parse(t, "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'")
	q.Consts[0].Val = "evil\x00value"
	r.Record(q, Observed{Pages: 1})
	st := r.Stats()
	if st.Dropped != 1 || st.Recorded != 0 {
		t.Errorf("stats %+v, want 1 dropped, 0 recorded", st)
	}
	if r.Len() != 0 {
		t.Errorf("ring holds %d, want 0", r.Len())
	}
}

// TestStatsAddCoversEveryField: the Add folding the analyzer pins.
func TestStatsAddCoversEveryField(t *testing.T) {
	s := Stats{Recorded: 1, Evicted: 2, Dropped: 3}
	s.Add(Stats{Recorded: 10, Evicted: 20, Dropped: 30})
	if want := (Stats{Recorded: 11, Evicted: 22, Dropped: 33}); s != want {
		t.Errorf("got %+v, want %+v", s, want)
	}
}
