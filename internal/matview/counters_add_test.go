package matview

import (
	"reflect"
	"testing"
)

// TestCountersAdd pins Counters.Add as a straight field-wise sum, so
// maintenance counters from several stores can be rolled up. statsexhaustive
// keeps the field list complete; this test keeps the fold additive.
func TestCountersAdd(t *testing.T) {
	total := Counters{
		LightConnections: 1,
		Downloads:        2,
	}
	total.Add(Counters{
		LightConnections: 3,
		Downloads:        4,
		UpdatesApplied:   5,
		DeletionsApplied: 6,
		StaleServes:      7,
	})
	want := Counters{
		LightConnections: 4,
		Downloads:        6,
		UpdatesApplied:   5,
		DeletionsApplied: 6,
		StaleServes:      7,
	}
	if !reflect.DeepEqual(total, want) {
		t.Errorf("Add result mismatch:\n got %+v\nwant %+v", total, want)
	}
}
