package matview

import (
	"errors"
	"testing"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/faults"
	"ulixes/internal/guard"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

// TestRefreshURLRewrapsOnlyChangedPage pins the targeted-refresh cost model:
// a push event for one changed page costs exactly one light connection plus
// one download, and touches no other row.
func TestRefreshURLRewrapsOnlyChangedPage(t *testing.T) {
	u, ms, store, _ := fixture(t)
	url := profPageURL(t, u, 0)
	otherURL := profPageURL(t, u, 1)
	otherBefore, _ := store.Page(otherURL)

	tup, _ := u.Instance.Page(sitegen.ProfPage, url)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	store.ResetCounters()

	changed, err := store.RefreshURL(url, "")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("RefreshURL reported no change for a mutated page")
	}
	c := store.Counters()
	if c.LightConnections != 1 || c.Downloads != 1 || c.UpdatesApplied != 1 || c.DeletionsApplied != 0 {
		t.Fatalf("counters %+v, want exactly one check and one download", c)
	}
	p, ok := store.Page(url)
	if !ok {
		t.Fatal("refreshed page missing from store")
	}
	if got := p.Tuple.MustGet("Rank").String(); got != "Emeritus" {
		t.Fatalf("stored rank = %q, want the pushed update", got)
	}
	if otherAfter, _ := store.Page(otherURL); otherAfter != otherBefore {
		t.Fatal("an untouched page's row was replaced")
	}

	// Refreshing an unchanged page verifies (one light connection) without
	// downloading and reports no change.
	changed, err = store.RefreshURL(url, "")
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("RefreshURL reported a change for an unchanged page")
	}
	c = store.Counters()
	if c.LightConnections != 2 || c.Downloads != 1 {
		t.Fatalf("counters after no-op refresh %+v", c)
	}
}

// TestRefreshURLMaterializesNewPage: an Added event for a URL the store has
// never seen downloads and stores it (scheme supplied by the feed).
func TestRefreshURLMaterializesNewPage(t *testing.T) {
	_, ms, store, _ := fixture(t)
	url := "http://univ.example.edu/prof/999.html"
	extra := nested.T(
		adm.URLAttr, nested.LinkValue(url),
		"Name", nested.TextValue("Prof. 999"),
		"Rank", nested.TextValue("Full"),
		"Email", nested.TextValue("p999@univ.example.edu"),
		"DName", nested.TextValue(sitegen.DeptName(0)),
		"ToDept", nested.LinkValue("http://univ.example.edu/dept/0.html"),
		"CourseList", nested.ListValue{},
	)
	if err := ms.UpdatePage(sitegen.ProfPage, extra); err != nil {
		t.Fatal(err)
	}
	store.ResetCounters()

	changed, err := store.RefreshURL(url, sitegen.ProfPage)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("RefreshURL reported no change for a brand-new page")
	}
	if _, ok := store.Page(url); !ok {
		t.Fatal("new page not materialized")
	}
	// Without a stored row and without a feed-supplied scheme the refresh
	// cannot proceed.
	if _, err := store.RefreshURL("http://univ.example/nowhere", ""); err == nil {
		t.Fatal("RefreshURL of an unknown URL without a scheme should fail")
	}
}

// TestRemoveURLDropsRow: a Removed event deletes the materialized row
// directly — no probe, the feed already observed the deletion.
func TestRemoveURLDropsRow(t *testing.T) {
	u, ms, store, _ := fixture(t)
	url := profPageURL(t, u, 2)
	heads := ms.Counters().Heads()
	if !store.RemoveURL(url) {
		t.Fatal("RemoveURL found nothing")
	}
	if _, ok := store.Page(url); ok {
		t.Fatal("row still present after RemoveURL")
	}
	if store.RemoveURL(url) {
		t.Fatal("second RemoveURL should report false")
	}
	if ms.Counters().Heads() != heads {
		t.Fatal("RemoveURL must not touch the network")
	}
	if c := store.Counters(); c.DeletionsApplied != 1 {
		t.Fatalf("counters %+v, want one deletion", c)
	}
}

// TestRefreshURLBreakerKeepsStaleRow drives the targeted refresh into the
// PR-8 stale-serve path: with the origin's breaker open the row is kept and
// the deferral surfaces as site.ErrBreakerOpen, so feed wiring knows the
// verification did not happen.
func TestRefreshURLBreakerKeepsStaleRow(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	clock := site.LogicalClock()
	chaos := faults.New(ms, 7)
	g := guard.New(chaos, guard.Config{
		Clock:          clock,
		MinSamples:     3,
		ErrorThreshold: 0.6,
		OpenFor:        30 * time.Second,
	})
	store, err := Materialize(g, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	url := profPageURL(t, u, 0)
	before, _ := store.Page(url)
	store.ResetCounters()

	// Two real failures trip the breaker (same EWMA arithmetic as the
	// URLCheck stale-serve test).
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	for i := 0; i < 2; i++ {
		if _, err := store.RefreshURL(url, ""); err == nil {
			t.Fatalf("refresh %d: expected a transient failure", i)
		}
	}
	_, err = store.RefreshURL(url, "")
	if !errors.Is(err, site.ErrBreakerOpen) {
		t.Fatalf("breaker-open refresh error = %v, want ErrBreakerOpen", err)
	}
	p, ok := store.Page(url)
	if !ok || !p.Tuple.Equal(before.Tuple) {
		t.Fatal("stale row must survive a deferred refresh")
	}
	if c := store.Counters(); c.StaleServes != 1 || c.Downloads != 0 {
		t.Fatalf("counters %+v, want one stale serve and no downloads", c)
	}
}
