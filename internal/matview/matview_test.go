package matview

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/faults"
	"ulixes/internal/guard"
	"ulixes/internal/nested"
	"ulixes/internal/pagecache"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// fixtureParts builds the paper-sized university site without materializing.
func fixtureParts(t *testing.T) (*sitegen.University, *site.MemSite, *Store, *Engine) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, ms, nil, nil
}

// fixture materializes the paper-sized university site and returns all the
// pieces experiments need.
func fixture(t *testing.T) (*sitegen.University, *site.MemSite, *Store, *Engine) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.PaperUniversityParams())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Materialize(ms, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(view.UniversityView(u.Scheme), store, stats.CollectInstance(u.Instance))
	return u, ms, store, eng
}

func TestMaterializeStoresWholesite(t *testing.T) {
	u, _, store, _ := fixture(t)
	if store.Len() != u.Instance.TotalPages() {
		t.Errorf("store holds %d pages, want %d", store.Len(), u.Instance.TotalPages())
	}
	c := store.Counters()
	if c.Downloads != u.Instance.TotalPages() {
		t.Errorf("initial downloads = %d", c.Downloads)
	}
	p, ok := store.Page(sitegen.UnivProfListURL)
	if !ok || p.Scheme != sitegen.ProfListPage || p.AccessDate.IsZero() {
		t.Errorf("stored page = %+v %v", p, ok)
	}
}

func TestQueryOnFreshViewUsesOnlyLightConnections(t *testing.T) {
	_, ms, store, eng := fixture(t)
	store.ResetCounters()
	ms.Counters().Reset()
	ans, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Downloads != 0 {
		t.Errorf("no page changed, downloads = %d", ans.Downloads)
	}
	if ans.LightConnections == 0 {
		t.Error("evaluation should verify pages with light connections")
	}
	// §8: the number of light connections is ≈ C(E), the plan's estimated
	// page-access cost.
	if float64(ans.LightConnections) > ans.Plan.Cost+1 {
		t.Errorf("light connections = %d exceed C(E) = %v", ans.LightConnections, ans.Plan.Cost)
	}
	// The site itself saw only HEADs, no GETs.
	if ms.Counters().Gets() != 0 {
		t.Errorf("site saw %d downloads", ms.Counters().Gets())
	}
	if ms.Counters().Heads() != ans.LightConnections {
		t.Errorf("site heads = %d, engine counted %d", ms.Counters().Heads(), ans.LightConnections)
	}
}

func TestQueryAnswerMatchesVirtual(t *testing.T) {
	u, _, _, eng := fixture(t)
	ans, err := eng.Query("SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Full'")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range u.RankOf {
		if r == "Full" {
			want++
		}
	}
	if ans.Result.Len() != want {
		t.Errorf("answer size = %d, want %d", ans.Result.Len(), want)
	}
}

func TestUpdateDetectedAndApplied(t *testing.T) {
	u, ms, store, eng := fixture(t)
	// Change a professor's rank on the site.
	url := profPageURL(t, u, 0)
	tup, _ := u.Instance.Page(sitegen.ProfPage, url)
	tup = tup.With("Rank", nested.TextValue("Emeritus"))
	if err := ms.UpdatePage(sitegen.ProfPage, tup); err != nil {
		t.Fatal(err)
	}
	store.ResetCounters()
	ans, err := eng.Query("SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Emeritus'")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() != 1 {
		t.Errorf("updated professor not found: %d tuples", ans.Result.Len())
	}
	if ans.Downloads != 1 {
		t.Errorf("downloads = %d, want 1 (only the changed page)", ans.Downloads)
	}
	if ans.UpdatesApplied != 1 {
		t.Errorf("updates applied = %d", ans.UpdatesApplied)
	}
	// Second query: view is fresh again — zero downloads.
	ans2, err := eng.Query("SELECT p.PName, p.Rank FROM Professor p WHERE p.Rank = 'Emeritus'")
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Downloads != 0 {
		t.Errorf("second query downloads = %d, want 0", ans2.Downloads)
	}
}

func profPageURL(t *testing.T, u *sitegen.University, i int) string {
	t.Helper()
	for _, tup := range u.Instance.Relation(sitegen.ProfPage).Tuples() {
		if tup.MustGet("Name").String() == sitegen.ProfName(i) {
			v, _ := tup.Get(adm.URLAttr)
			return v.String()
		}
	}
	t.Fatalf("prof %d not found", i)
	return ""
}

func TestInsertedPageDiscoveredViaNewLink(t *testing.T) {
	u, ms, store, eng := fixture(t)
	// Insert a new professor page and link it from the professor list:
	// the next query navigating the list must pick both up.
	newURL := "http://univ.example.edu/prof/999.html"
	newProf := nested.T(
		adm.URLAttr, nested.LinkValue(newURL),
		"Name", nested.TextValue("Prof. 999"),
		"Rank", nested.TextValue("Full"),
		"Email", nested.TextValue("p999@univ.example.edu"),
		"DName", nested.TextValue(sitegen.DeptName(0)),
		"ToDept", nested.LinkValue("http://univ.example.edu/dept/0.html"),
		"CourseList", nested.ListValue{},
	)
	if err := ms.UpdatePage(sitegen.ProfPage, newProf); err != nil {
		t.Fatal(err)
	}
	listTup, _ := u.Instance.Page(sitegen.ProfListPage, sitegen.UnivProfListURL)
	lv, _ := listTup.Get("ProfList")
	newList := append(append(nested.ListValue{}, lv.(nested.ListValue)...),
		nested.T("ProfName", nested.TextValue("Prof. 999"), "ToProf", nested.LinkValue(newURL)))
	if err := ms.UpdatePage(sitegen.ProfListPage, listTup.With("ProfList", newList)); err != nil {
		t.Fatal(err)
	}
	store.ResetCounters()
	ans, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.PName = 'Prof. 999'")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() != 1 {
		t.Fatalf("new professor not found (%d tuples)", ans.Result.Len())
	}
	// Two downloads: the updated list page and the brand-new prof page.
	if ans.Downloads != 2 {
		t.Errorf("downloads = %d, want 2", ans.Downloads)
	}
	if _, ok := store.Page(newURL); !ok {
		t.Error("new page should now be materialized")
	}
}

func TestDeletedPageQueuedAndProcessed(t *testing.T) {
	u, ms, store, eng := fixture(t)
	// Remove a professor page AND its list entry: the updated list page
	// marks the old link missing; the page is not consulted during the
	// query; ProcessMissing later removes it from the view.
	victim := profPageURL(t, u, 1)
	ms.RemovePage(victim)
	listTup, _ := u.Instance.Page(sitegen.ProfListPage, sitegen.UnivProfListURL)
	lv, _ := listTup.Get("ProfList")
	var newList nested.ListValue
	for _, e := range lv.(nested.ListValue) {
		if e.MustGet("ToProf").String() != victim {
			newList = append(newList, e)
		}
	}
	if err := ms.UpdatePage(sitegen.ProfListPage, listTup.With("ProfList", newList)); err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Query("SELECT p.PName, p.Email FROM Professor p")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() != u.Params.Profs-1 {
		t.Errorf("answer size = %d, want %d", ans.Result.Len(), u.Params.Profs-1)
	}
	// The stale URL sits in CheckMissing until the off-line pass.
	if got := store.MissingQueue(); len(got) != 1 || got[0] != victim {
		t.Errorf("missing queue = %v", got)
	}
	if _, ok := store.Page(victim); !ok {
		t.Error("victim should still be materialized before ProcessMissing")
	}
	deleted, err := store.ProcessMissing()
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Errorf("ProcessMissing deleted %d, want 1", deleted)
	}
	if _, ok := store.Page(victim); ok {
		t.Error("victim should be gone after ProcessMissing")
	}
	if len(store.MissingQueue()) != 0 {
		t.Error("queue should be drained")
	}
}

func TestProcessMissingKeepsLivePages(t *testing.T) {
	u, _, store, _ := fixture(t)
	// Queue a URL whose page still exists (e.g. linked from elsewhere).
	store.mu.Lock()
	store.missing[profPageURL(t, u, 2)] = true
	store.mu.Unlock()
	deleted, err := store.ProcessMissing()
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Error("live page must not be deleted")
	}
}

func TestEntryPointDeletedFails(t *testing.T) {
	_, ms, _, eng := fixture(t)
	ms.RemovePage(sitegen.UnivProfListURL)
	if _, err := eng.Query("SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"); err == nil {
		t.Error("query via deleted entry point should fail")
	}
}

func TestStatusLifecycle(t *testing.T) {
	u, _, store, eng := fixture(t)
	if store.StatusOf(sitegen.UnivProfListURL) != StatusNone {
		t.Error("initial status should be none")
	}
	if _, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'"); err != nil {
		t.Fatal(err)
	}
	if store.StatusOf(sitegen.UnivProfListURL) != StatusChecked {
		t.Error("entry point should be checked after the query")
	}
	_ = u
	// A new evaluation resets the flags.
	store.BeginEvaluation()
	if store.StatusOf(sitegen.UnivProfListURL) != StatusNone {
		t.Error("BeginEvaluation should reset flags")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusNone: "none", StatusChecked: "checked", StatusNew: "new",
		StatusMissing: "missing", Status(9): "Status(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestCheckedPagesNotRecheckedWithinQuery(t *testing.T) {
	_, ms, store, eng := fixture(t)
	store.ResetCounters()
	ms.Counters().Reset()
	// A query whose plan visits professor pages twice would re-check; the
	// status flags prevent duplicate light connections within one query.
	if _, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'"); err != nil {
		t.Fatal(err)
	}
	heads := ms.Counters().Heads()
	// Each involved page checked at most once.
	if heads > store.Len() {
		t.Errorf("heads = %d exceed page count", heads)
	}
}

func TestRefreshFullView(t *testing.T) {
	u, ms, store, _ := fixture(t)
	// Update two pages and delete one (removing its list entry so the
	// instance stays consistent is unnecessary for Refresh).
	url0 := profPageURL(t, u, 0)
	tup, _ := u.Instance.Page(sitegen.ProfPage, url0)
	ms.UpdatePage(sitegen.ProfPage, tup.With("Email", nested.TextValue("changed@univ.example.edu")))
	ms.Touch(sitegen.UnivHomeURL)
	victim := profPageURL(t, u, 3)
	ms.RemovePage(victim)

	updated, deleted, stale, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if updated != 2 {
		t.Errorf("refresh updated = %d, want 2", updated)
	}
	if deleted != 1 {
		t.Errorf("refresh deleted = %d, want 1", deleted)
	}
	if len(stale) != 0 {
		t.Errorf("refresh stale = %v, want none on a healthy site", stale)
	}
	if _, ok := store.Page(victim); ok {
		t.Error("refresh should remove deleted pages")
	}
}

func TestLazyMaintenanceCostScalesWithUpdates(t *testing.T) {
	u, ms, store, eng := fixture(t)
	query := "SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'"
	// Touch an increasing number of professor pages; downloads per query
	// must track the number of touched pages involved in the plan.
	prev := -1
	for _, n := range []int{0, 3, 7} {
		for i := 0; i < n; i++ {
			tup, _ := u.Instance.Page(sitegen.ProfPage, profPageURL(t, u, i))
			ms.UpdatePage(sitegen.ProfPage, tup) // re-render bumps Last-Modified
		}
		store.ResetCounters()
		ans, err := eng.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Downloads < prev {
			t.Errorf("downloads should grow with update count: %d after %d updates", ans.Downloads, n)
		}
		if n == 0 && ans.Downloads != 0 {
			t.Errorf("no updates but %d downloads", ans.Downloads)
		}
		if n > 0 && ans.Downloads != n {
			t.Errorf("downloads = %d, want %d (one per updated page)", ans.Downloads, n)
		}
		prev = ans.Downloads
	}
}

func TestConcurrentMaterializedQueries(t *testing.T) {
	_, _, _, eng := fixture(t)
	// Algorithm 3 evaluations share the store; concurrent queries must not
	// race (run with -race in CI).
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'")
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFollowPagesSkipsCheckedButGone(t *testing.T) {
	u, ms, store, _ := fixture(t)
	// Mark a URL checked, then remove it from the store: FollowPages must
	// skip it without re-checking.
	victim := profPageURL(t, u, 5)
	store.BeginEvaluation()
	if _, _, err := store.URLCheck(victim, sitegen.ProfPage); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	delete(store.pages, victim)
	store.mu.Unlock()
	heads := ms.Counters().Heads()
	tuples, err := store.FollowPages(sitegen.ProfPage, []string{victim})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Errorf("checked-but-gone page should be skipped: %v", tuples)
	}
	if ms.Counters().Heads() != heads {
		t.Error("checked page must not be re-checked")
	}
}

func TestURLCheckNewStatusDownloadsDirectly(t *testing.T) {
	u, ms, store, _ := fixture(t)
	url := profPageURL(t, u, 6)
	store.BeginEvaluation()
	store.mu.Lock()
	store.status[url] = StatusNew
	delete(store.pages, url)
	store.mu.Unlock()
	heads := ms.Counters().Heads()
	tup, exists, err := store.URLCheck(url, sitegen.ProfPage)
	if err != nil || !exists {
		t.Fatalf("URLCheck: %v %v", exists, err)
	}
	if _, ok := tup.Get("Name"); !ok {
		t.Error("downloaded tuple malformed")
	}
	// Function 2 line 1–2: status new skips the light connection.
	if ms.Counters().Heads() != heads {
		t.Error("new pages are downloaded without a light connection")
	}
	// The page that appeared-and-vanished path.
	ghost := "http://univ.example.edu/prof/404.html"
	store.mu.Lock()
	store.status[ghost] = StatusNew
	store.mu.Unlock()
	_, exists, err = store.URLCheck(ghost, sitegen.ProfPage)
	if err != nil || exists {
		t.Errorf("vanished new page: exists=%v err=%v", exists, err)
	}
}

// downServer wraps a server and makes one URL unreachable (both GET and
// HEAD fail with a non-404 error) — a source host that is down, not a page
// that was deleted.
type downServer struct {
	site.Server
	mu   sync.Mutex
	down string
}

var errHostDown = errors.New("connection refused (injected)")

func (s *downServer) setDown(url string) {
	s.mu.Lock()
	s.down = url
	s.mu.Unlock()
}

func (s *downServer) unreachable(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return url == s.down
}

func (s *downServer) Get(url string) (site.Page, error) {
	if s.unreachable(url) {
		return site.Page{}, errHostDown
	}
	return s.Server.Get(url) //lint:allow fetchgate the fault wrapper sits under the counted fetcher
}

func (s *downServer) Head(url string) (site.Meta, error) {
	if s.unreachable(url) {
		return site.Meta{}, errHostDown
	}
	return s.Server.Head(url) //lint:allow fetchgate the fault wrapper sits under the counted fetcher
}

// TestRefreshToleratesUnreachablePages: a full-view refresh over a source
// that is partially down keeps the stale rows (the view stays answerable),
// reports their URLs, and a later refresh picks them up once the source
// heals.
func TestRefreshToleratesUnreachablePages(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	srv := &downServer{Server: ms}
	store, err := Materialize(srv, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}

	victim := profPageURL(t, u, 2)
	ms.RemovePage(profPageURL(t, u, 5))
	srv.setDown(victim)

	updated, deleted, stale, err := store.Refresh()
	if err != nil {
		t.Fatalf("refresh over a partially-down source: %v", err)
	}
	if deleted != 1 {
		t.Errorf("deleted = %d, want 1 (the removed page is a clean 404)", deleted)
	}
	if len(stale) != 1 || stale[0] != victim {
		t.Errorf("stale = %v, want [%s]", stale, victim)
	}
	if _, ok := store.Page(victim); !ok {
		t.Error("unreachable page must keep its stale row")
	}
	_ = updated

	srv.setDown("")
	_, deleted, stale, err = store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("stale after heal = %v, want none", stale)
	}
	if deleted != 0 {
		t.Errorf("deleted after heal = %d, want 0", deleted)
	}
	if _, ok := store.Page(victim); !ok {
		t.Error("healed page should still be materialized")
	}
}

// TestLiveSourceSharesPages routes the live fetches of a partial store's
// non-materialized schemes through a shared cross-query page store: the
// second query's pages come from the store instead of the network, and the
// accounting moves to the source (the store's Downloads counter keeps
// covering only maintenance traffic).
func TestLiveSourceSharesPages(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	store, err := MaterializeSchemes(ms, u.Scheme, []string{
		sitegen.ProfListPage, sitegen.ProfPage,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(view.UniversityView(u.Scheme), store, stats.CollectInstance(u.Instance))
	cache := pagecache.New(ms, u.Scheme, pagecache.Config{
		DefaultTTL: pagecache.Forever,
		Clock:      site.LogicalClock(),
	})

	const query = "SELECT c.CName FROM Course c WHERE c.Session = 'Fall'"
	s1 := cache.NewSession(pagecache.SessionOptions{})
	store.SetLiveSource(s1)
	a1, err := eng.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.Stats()
	if st1.Fetches == 0 {
		t.Fatal("out-of-portion query fetched nothing through the live source")
	}
	if a1.Downloads != 0 {
		t.Errorf("store counted %d Downloads for source-served fetches, want 0", a1.Downloads)
	}

	gets := ms.Counters().Gets()
	s2 := cache.NewSession(pagecache.SessionOptions{})
	store.SetLiveSource(s2)
	a2, err := eng.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Result.Equal(a1.Result) {
		t.Error("shared-store answer differs between queries")
	}
	st2 := s2.Stats()
	if st2.Fetches != 0 || st2.CacheHits != st1.Fetches {
		t.Errorf("second query: %d fetches, %d hits; want 0 and %d", st2.Fetches, st2.CacheHits, st1.Fetches)
	}
	if got := ms.Counters().Gets(); got != gets {
		t.Errorf("second query cost %d GETs, want 0 (shared store)", got-gets)
	}
}

// TestStaleServeWhenBreakerOpen drives lazy maintenance through a sick
// origin behind the site-health guard: once the breaker opens, URLCheck
// serves the stored copy without confirmation (counted as a StaleServe)
// instead of failing, and resumes verified checks after the site heals.
func TestStaleServeWhenBreakerOpen(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	var now struct {
		mu sync.Mutex
		t  time.Time
	}
	now.t = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		now.mu.Lock()
		defer now.mu.Unlock()
		return now.t
	}
	advance := func(d time.Duration) {
		now.mu.Lock()
		now.t = now.t.Add(d)
		now.mu.Unlock()
	}
	chaos := faults.New(ms, 7)
	// Materialize itself runs through the guard and leaves its EWMA near
	// zero, so with Alpha = 0.5 the error rate after one failure is 0.5 and
	// after two is 0.75: a 0.6 threshold deterministically needs exactly
	// two real failures to trip.
	g := guard.New(chaos, guard.Config{
		Clock:          clock,
		MinSamples:     3,
		ErrorThreshold: 0.6,
		OpenFor:        30 * time.Second,
	})
	store, err := Materialize(g, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := store.Page(sitegen.UnivProfListURL)
	if !ok {
		t.Fatal("prof list not materialized")
	}
	store.ResetCounters()
	store.BeginEvaluation()

	// The origin goes down hard: the first two checks fail for real and
	// trip the breaker.
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	for i := 0; i < 2; i++ {
		if _, _, err := store.URLCheck(sitegen.UnivProfListURL, sitegen.ProfListPage); err == nil {
			t.Fatalf("check %d: expected a transient failure", i)
		}
	}
	if got := g.StateOf(guard.HostOf(sitegen.UnivProfListURL)); got != guard.Open {
		t.Fatalf("breaker state %v, want Open", got)
	}

	// With the breaker open the check is answered from the stored copy.
	tup, exists, err := store.URLCheck(sitegen.UnivProfListURL, sitegen.ProfListPage)
	if err != nil || !exists {
		t.Fatalf("stale check: exists=%v err=%v", exists, err)
	}
	if !tup.Equal(stored.Tuple) {
		t.Fatal("stale check returned a different tuple than the stored copy")
	}
	c := store.Counters()
	if c.StaleServes != 1 || c.LightConnections != 2 || c.Downloads != 0 {
		t.Fatalf("counters %+v, want 1 stale serve, 2 light connections, 0 downloads", c)
	}

	// The site heals and the open window lapses: the half-open probe
	// verifies the page with a real light connection again.
	chaos.SetRules()
	advance(31 * time.Second)
	if _, exists, err := store.URLCheck(sitegen.UnivProfListURL, sitegen.ProfListPage); err != nil || !exists {
		t.Fatalf("recovered check: exists=%v err=%v", exists, err)
	}
	c = store.Counters()
	if c.StaleServes != 1 || c.LightConnections != 3 || c.Downloads != 0 {
		t.Fatalf("post-recovery counters %+v, want 3 light connections and no new stale serves", c)
	}
}
