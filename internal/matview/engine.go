package matview

import (
	"fmt"

	"ulixes/internal/cq"
	"ulixes/internal/nalg"
	"ulixes/internal/nested"
	"ulixes/internal/optimizer"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// Engine answers queries over a materialized view (Algorithm 3): plans are
// selected with Algorithm 1 exactly as for virtual views, then evaluated on
// the local store, verifying each involved page with a light connection and
// downloading only pages that actually changed.
type Engine struct {
	Views *view.Registry
	Store *Store
	Opt   *optimizer.Optimizer
	// Exec tunes plan evaluation (pipelined execution, worker bound). The
	// store's singleflight guarantees the same light connections and
	// downloads under any setting.
	Exec nalg.EvalOptions
}

// New creates a materialized-view engine over a store.
func New(views *view.Registry, store *Store, st *stats.Stats) *Engine {
	return &Engine{Views: views, Store: store, Opt: optimizer.New(views, st)}
}

// Answer is the result of a materialized query, with the maintenance
// traffic it generated.
type Answer struct {
	Result *nested.Relation
	Plan   optimizer.Plan
	// LightConnections and Downloads are the network accesses this query
	// performed: §8 predicts C(E) light connections plus one download per
	// page updated since the last access.
	LightConnections int
	Downloads        int
	// UpdatesApplied and DeletionsApplied report the maintenance performed
	// as a side effect of the query.
	UpdatesApplied   int
	DeletionsApplied int
}

// Query parses, optimizes and evaluates a conjunctive query on the
// materialized view.
func (e *Engine) Query(src string) (*Answer, error) {
	q, err := cq.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.QueryCQ(q)
}

// QueryCQ optimizes and evaluates a parsed query on the materialized view.
func (e *Engine) QueryCQ(q *cq.Query) (*Answer, error) {
	res, err := e.Opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	rel, ctr, err := e.Execute(res.Best.Expr)
	if err != nil {
		return nil, err
	}
	return &Answer{
		Result:           rel,
		Plan:             res.Best,
		LightConnections: ctr.LightConnections,
		Downloads:        ctr.Downloads,
		UpdatesApplied:   ctr.UpdatesApplied,
		DeletionsApplied: ctr.DeletionsApplied,
	}, nil
}

// Execute evaluates a computable plan against the store per Algorithm 3 and
// returns the answer along with the maintenance counters for this query.
// Like the virtual-view engine, it gates execution on the static plan
// typechecker: an ill-typed plan never reaches the store.
func (e *Engine) Execute(expr nalg.Expr) (*nested.Relation, Counters, error) {
	if diags := nalg.Check(expr, e.Views.Scheme); len(diags) > 0 {
		return nil, Counters{}, fmt.Errorf("matview: plan is ill-typed (%d diagnostics): %s", len(diags), diags[0])
	}
	e.Store.BeginEvaluation()
	before := e.Store.Counters()
	rel, err := nalg.EvalWithOptions(expr, e.Views.Scheme, e.Store, e.Exec)
	if err != nil {
		return nil, Counters{}, err
	}
	after := e.Store.Counters()
	return rel, Counters{
		LightConnections: after.LightConnections - before.LightConnections,
		Downloads:        after.Downloads - before.Downloads,
		UpdatesApplied:   after.UpdatesApplied - before.UpdatesApplied,
		DeletionsApplied: after.DeletionsApplied - before.DeletionsApplied,
	}, nil
}
