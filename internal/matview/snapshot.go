package matview

import (
	"fmt"
	"sort"
	"time"

	"ulixes/internal/nested"
)

// Snapshot is an immutable copy of the store's materialized state at one
// instant: every stored page keyed by URL, taken under the store lock so a
// consumer (the view-answering layer) can evaluate navigations against it
// without racing concurrent maintenance. Page tuples are shared, not deep
// copied — stored tuples are never mutated in place, only replaced.
type Snapshot struct {
	pages map[string]StoredPage
}

// Snapshot returns the current materialized state. Callers iterate and look
// up pages freely; the snapshot never changes after it is taken.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]StoredPage, len(s.pages))
	for u, p := range s.pages {
		out[u] = *p
	}
	return &Snapshot{pages: out}
}

// Len returns the number of pages in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.pages) }

// Page looks up one page by URL.
func (sn *Snapshot) Page(url string) (StoredPage, bool) {
	p, ok := sn.pages[url]
	return p, ok
}

// URLs returns the snapshot's URLs in sorted order.
func (sn *Snapshot) URLs() []string {
	out := make([]string, 0, len(sn.pages))
	for u := range sn.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Schemes returns the distinct page-schemes present, sorted — the view
// definition side of the materialization: which portions of the site the
// store actually holds.
func (sn *Snapshot) Schemes() []string {
	seen := make(map[string]bool)
	for _, p := range sn.pages {
		seen[p.Scheme] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// PagesOf returns the snapshot's pages of one scheme, sorted by URL.
func (sn *Snapshot) PagesOf(scheme string) []StoredPage {
	urls := make([]string, 0, len(sn.pages))
	for u, p := range sn.pages {
		if p.Scheme == scheme {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	out := make([]StoredPage, len(urls))
	for i, u := range urls {
		out[i] = sn.pages[u]
	}
	return out
}

// OldestAccess returns the earliest access date across the snapshot's pages
// — the freshness bound of anything computed from it: every page was
// verified against the site no earlier than this. ok is false for an empty
// snapshot.
func (sn *Snapshot) OldestAccess() (time.Time, bool) {
	var oldest time.Time
	found := false
	for _, p := range sn.pages {
		if !found || p.AccessDate.Before(oldest) {
			oldest = p.AccessDate
			found = true
		}
	}
	return oldest, found
}

// Bytes estimates the snapshot's storage footprint as the summed canonical
// encoding length of the stored tuples — the quantity a storage budget for
// materialized views is charged against.
func (sn *Snapshot) Bytes() int64 {
	var total int64
	for _, p := range sn.pages {
		total += int64(len(p.Tuple.Key()))
	}
	return total
}

// ErrNotMaterialized reports that a snapshot evaluation touched a URL the
// store does not hold — the materialization does not cover the navigation,
// so nothing sound can be computed from it locally.
type ErrNotMaterialized struct {
	URL    string
	Scheme string
}

// Error implements error.
func (e *ErrNotMaterialized) Error() string {
	return fmt.Sprintf("matview: page %s (%s) is not materialized", e.URL, e.Scheme)
}

// Source returns a nalg.Source evaluating purely against the snapshot: no
// network, no maintenance, no light connections. A URL the snapshot does not
// hold is an *ErrNotMaterialized error rather than a silently dangling link —
// a missing page means the local state cannot soundly answer for the site,
// and the caller must fall back to live navigation.
func (sn *Snapshot) Source() *SnapshotSource { return &SnapshotSource{sn: sn} }

// SnapshotSource implements nalg.Source over an immutable Snapshot. It is
// safe for concurrent use (the snapshot is read-only) and deterministic: the
// same snapshot always yields the same tuples.
type SnapshotSource struct {
	sn *Snapshot
}

// EntryPage implements nalg.Source.
func (s *SnapshotSource) EntryPage(scheme, url string) (nested.Tuple, error) {
	return s.lookup(scheme, url)
}

// FollowPages implements nalg.Source: every URL must be materialized.
func (s *SnapshotSource) FollowPages(scheme string, urls []string) ([]nested.Tuple, error) {
	out := make([]nested.Tuple, 0, len(urls))
	for _, u := range urls {
		t, err := s.lookup(scheme, u)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func (s *SnapshotSource) lookup(scheme, url string) (nested.Tuple, error) {
	p, ok := s.sn.pages[url]
	if !ok || p.Scheme != scheme {
		return nested.Tuple{}, &ErrNotMaterialized{URL: url, Scheme: scheme}
	}
	return p.Tuple, nil
}
