package matview

import (
	"testing"

	"ulixes/internal/sitegen"
	"ulixes/internal/stats"
	"ulixes/internal/view"
)

// partialFixture materializes only the professor portion of the site.
func partialFixture(t *testing.T) (*sitegen.University, *Store, *Engine) {
	t.Helper()
	u, ms, _, _ := fixtureParts(t)
	store, err := MaterializeSchemes(ms, u.Scheme, []string{
		sitegen.ProfListPage, sitegen.ProfPage,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(view.UniversityView(u.Scheme), store, stats.CollectInstance(u.Instance))
	return u, store, eng
}

func TestPartialMaterializationScope(t *testing.T) {
	u, store, _ := partialFixture(t)
	// Only the professor pages and the professor list are stored.
	if store.Len() != u.Params.Profs+1 {
		t.Errorf("stored pages = %d, want %d", store.Len(), u.Params.Profs+1)
	}
	if !store.Materialized(sitegen.ProfPage) || store.Materialized(sitegen.CoursePage) {
		t.Error("scope flags wrong")
	}
	if _, ok := store.Page(sitegen.UnivProfListURL); !ok {
		t.Error("professor list should be stored")
	}
	if _, ok := store.Page(sitegen.UnivSessionListURL); ok {
		t.Error("session list should not be stored")
	}
}

func TestPartialQueryInPortionUsesLightConnections(t *testing.T) {
	_, store, eng := partialFixture(t)
	store.ResetCounters()
	ans, err := eng.Query("SELECT p.PName, p.Email FROM Professor p WHERE p.Rank = 'Full'")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Downloads != 0 {
		t.Errorf("query inside the portion should not download: %d", ans.Downloads)
	}
	if ans.LightConnections == 0 {
		t.Error("pages in the portion are verified with light connections")
	}
}

func TestPartialQueryOutsidePortionFetchesLive(t *testing.T) {
	u, store, eng := partialFixture(t)
	store.ResetCounters()
	ans, err := eng.Query("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	fall := 0
	for _, s := range u.SessionOf {
		if u.Params.Sessions[s] == "Fall" {
			fall++
		}
	}
	if ans.Result.Len() != fall {
		t.Errorf("fall courses = %d, want %d", ans.Result.Len(), fall)
	}
	if ans.Downloads == 0 {
		t.Error("pages outside the portion must be downloaded live")
	}
	// Live pages are never stored.
	if _, ok := store.Page(sitegen.UnivSessionListURL); ok {
		t.Error("live pages must not enter the store")
	}
	// Running the same query again costs the same downloads: the portion
	// does not grow (no maintenance obligation outside it).
	store.ResetCounters()
	ans2, err := eng.Query("SELECT c.CName FROM Course c WHERE c.Session = 'Fall'")
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Downloads != ans.Downloads {
		t.Errorf("live downloads should repeat: %d vs %d", ans2.Downloads, ans.Downloads)
	}
}

func TestPartialMixedQuery(t *testing.T) {
	_, store, eng := partialFixture(t)
	store.ResetCounters()
	// Professors (materialized) joined with courses (live).
	ans, err := eng.Query(`SELECT p.PName, c.CName
		FROM Course c, CourseInstructor ci, Professor p
		WHERE c.CName = ci.CName AND ci.PName = p.PName AND c.Type = 'Graduate'`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.Len() == 0 {
		t.Error("mixed query should produce results")
	}
}

func TestPartialDeletedLivePage(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	store, err := MaterializeSchemes(ms, u.Scheme, []string{sitegen.ProfListPage, sitegen.ProfPage})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(view.UniversityView(u.Scheme), store, stats.CollectInstance(u.Instance))
	// Delete a course page: live fetches simply skip it (the link dangles).
	for _, url := range ms.URLs() {
		if scheme, _ := ms.SchemeOf(url); scheme == sitegen.CoursePage {
			ms.RemovePage(url)
			break
		}
	}
	if _, err := eng.Query("SELECT c.CName FROM Course c"); err != nil {
		t.Fatalf("dangling live page should be skipped, not fail: %v", err)
	}
}

func TestMaterializeSchemesUnknownScheme(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	if _, err := MaterializeSchemes(ms, u.Scheme, []string{"Ghost"}); err == nil {
		t.Error("unknown scheme should fail")
	}
}
