// Package matview implements §8 of the paper: materialized views over web
// sites with lazy incremental maintenance. The ADM representation of the
// site is materialized locally (one nested page-relation per page-scheme,
// each tuple carrying its access date); queries run on the local relations,
// but before a page's tuple is used, a "light connection" (HTTP HEAD)
// checks whether the page changed on the site — only changed pages are
// re-downloaded. Queries therefore cost C(E) light connections plus one
// download per actually-updated page, and answering queries maintains the
// view as a side effect.
package matview

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/hypertext"
	"ulixes/internal/nested"
	"ulixes/internal/site"
)

// Status is the per-evaluation flag attached to URLs by Algorithm 3:
// none (unvisited), checked (verified this evaluation), new (link appeared
// in a freshly downloaded page), missing (link disappeared from its page).
type Status int

// Status values (Function 2 / Algorithm 3).
const (
	StatusNone Status = iota
	StatusChecked
	StatusNew
	StatusMissing
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusChecked:
		return "checked"
	case StatusNew:
		return "new"
	case StatusMissing:
		return "missing"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// StoredPage is one materialized page: its scheme, wrapped tuple and the
// access date — the Last-Modified timestamp the site reported when the page
// was downloaded, so a light connection can compare server time against
// server time (If-Modified-Since semantics).
type StoredPage struct {
	Scheme     string
	Tuple      nested.Tuple
	AccessDate time.Time
}

// Counters tallies the maintenance traffic of the store.
type Counters struct {
	// LightConnections is the number of HEAD checks issued.
	LightConnections int
	// Downloads is the number of full page downloads.
	Downloads int
	// UpdatesApplied counts pages found changed and re-wrapped.
	UpdatesApplied int
	// DeletionsApplied counts pages found removed from the site.
	DeletionsApplied int
	// StaleServes counts checks answered from the stored copy without
	// confirmation because the origin's circuit breaker was open: lazy
	// maintenance degrades to trusting the materialization until the site
	// heals, instead of failing the query.
	StaleServes int
}

// Add folds another store's maintenance counters into c, for aggregating
// across stores or over sampling intervals. The statsexhaustive analyzer
// holds it to covering every field.
func (c *Counters) Add(o Counters) {
	c.LightConnections += o.LightConnections
	c.Downloads += o.Downloads
	c.UpdatesApplied += o.UpdatesApplied
	c.DeletionsApplied += o.DeletionsApplied
	c.StaleServes += o.StaleServes
}

// DefaultCheckWorkers bounds the concurrent URLCheck light connections a
// batched FollowPages issues.
const DefaultCheckWorkers = 8

// Store is the local materialization of a site's ADM representation. It is
// safe for concurrent use: FollowPages batches its URLCheck HEADs through a
// bounded worker pool, network calls run outside the store lock, and a
// per-URL singleflight keeps concurrent evaluation branches from issuing
// duplicate checks — so the measured light connections and downloads are
// identical whether a plan is evaluated sequentially or pipelined.
type Store struct {
	ws     *adm.Scheme
	server site.Server

	mu       sync.Mutex
	workers  int                      // guarded by mu
	pages    map[string]*StoredPage   // guarded by mu
	status   map[string]Status        // guarded by mu
	missing  map[string]bool          // CheckMissing: deferred deletion queue; guarded by mu
	checking map[string]chan struct{} // per-URL in-flight checks (singleflight); guarded by mu
	counters Counters                 // guarded by mu
	// scoped is non-nil when only a subset of the page-schemes is
	// materialized (§8: "materialize views over portions of the Web");
	// pages of other schemes are fetched live on every use. Written once
	// during construction and immutable afterwards, so reads are lock-free.
	scoped map[string]bool
	// liveSrc, when set, serves the live fetches of non-materialized
	// schemes (e.g. from a shared cross-query page store) instead of
	// direct server GETs; those accesses are then accounted by the source,
	// not by the store's Downloads counter. guarded by mu
	liveSrc site.PageSource
}

// SetLiveSource routes the live fetches of non-materialized schemes through
// a shared page source (a pagecache.Session or a Fetcher) instead of direct
// server GETs. Accesses through the source are counted by the source — the
// store's Downloads counter keeps covering only materialized-portion
// maintenance traffic.
func (s *Store) SetLiveSource(ps site.PageSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.liveSrc = ps
}

// SetWorkers bounds the concurrent network checks of batched FollowPages
// calls (minimum 1).
func (s *Store) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers = n
}

// Materialized reports whether pages of the scheme are held locally.
func (s *Store) Materialized(scheme string) bool {
	return s.scoped == nil || s.scoped[scheme]
}

// Materialize navigates the whole site once (a breadth-first crawl from
// the entry points), wraps every page and stores it locally with its
// Last-Modified date — the initial materialization step of §8. The returned
// store is ready to answer queries.
func Materialize(server site.Server, ws *adm.Scheme) (*Store, error) {
	return MaterializeSchemes(server, ws, nil)
}

// MaterializeSchemes materializes only the given page-schemes (§8 speaks of
// materializing "views over portions of the Web"); pages of other schemes
// are downloaded live whenever a query touches them, with no maintenance
// cost. A nil or empty scheme list materializes the whole site. The initial
// crawl still traverses every page (links must be followed to reach the
// portion of interest), but only the selected schemes are stored.
func MaterializeSchemes(server site.Server, ws *adm.Scheme, schemes []string) (*Store, error) {
	s := &Store{
		ws:       ws,
		server:   server,
		workers:  DefaultCheckWorkers,
		pages:    make(map[string]*StoredPage),
		status:   make(map[string]Status),
		missing:  make(map[string]bool),
		checking: make(map[string]chan struct{}),
	}
	if len(schemes) > 0 {
		s.scoped = make(map[string]bool, len(schemes))
		for _, name := range schemes {
			if ws.Page(name) == nil {
				return nil, fmt.Errorf("matview: unknown page-scheme %q", name)
			}
			s.scoped[name] = true
		}
	}
	type item struct{ scheme, url string }
	var queue []item
	seen := make(map[string]bool)
	for _, ep := range ws.Entry {
		queue = append(queue, item{ep.Scheme, ep.URL})
		seen[ep.URL] = true
	}
	links := ws.Links()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var t nested.Tuple
		var err error
		if s.Materialized(cur.scheme) {
			t, err = s.download(cur.url, cur.scheme)
		} else {
			t, _, err = s.liveFetch(cur.url, cur.scheme)
		}
		if err != nil {
			return nil, fmt.Errorf("matview: initial materialization of %s: %w", cur.url, err)
		}
		for _, ref := range links {
			if ref.Scheme != cur.scheme {
				continue
			}
			tgt, err := ws.LinkTarget(ref)
			if err != nil {
				return nil, err
			}
			for _, v := range adm.PathValues(t, ref.Path) {
				if u := v.String(); !seen[u] {
					seen[u] = true
					queue = append(queue, item{tgt, u})
				}
			}
		}
	}
	// The initial crawl is not an update pass.
	s.counters.UpdatesApplied = 0
	s.status = make(map[string]Status)
	return s, nil
}

// Len returns the number of materialized pages.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Page returns the stored page for a URL.
func (s *Store) Page(url string) (*StoredPage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[url]
	return p, ok
}

// Counters returns a snapshot of the maintenance counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ResetCounters zeroes the counters (between experiments).
func (s *Store) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = Counters{}
}

// BeginEvaluation resets all URL status flags to none, as Algorithm 3
// requires at the start of each query.
func (s *Store) BeginEvaluation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status = make(map[string]Status)
}

// StatusOf returns the current evaluation status of a URL.
func (s *Store) StatusOf(url string) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status[url]
}

// MissingQueue returns the URLs queued in CheckMissing.
func (s *Store) MissingQueue() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.missing))
	for u := range s.missing {
		out = append(out, u)
	}
	return out
}

// outlinks returns the set of link values of a tuple under the scheme's
// link attributes, with their target schemes.
func (s *Store) outlinks(scheme string, t nested.Tuple) map[string]string {
	out := make(map[string]string)
	for _, ref := range s.ws.Links() {
		if ref.Scheme != scheme {
			continue
		}
		tgt, err := s.ws.LinkTarget(ref)
		if err != nil {
			continue
		}
		for _, v := range adm.PathValues(t, ref.Path) {
			out[v.String()] = tgt
		}
	}
	return out
}

// download fetches and wraps the page, updating the store and diffing
// outlinks against the previous version (Function 2 lines 6–10): links that
// appear are marked new, links that disappear are marked missing. The
// network GET and the wrap run outside the store lock; only the state
// updates (counters, link diff, page map) take it.
func (s *Store) download(url, scheme string) (nested.Tuple, error) {
	p, err := s.server.Get(url) //lint:allow fetchgate matview counts its own Downloads (§8)
	if err != nil {
		return nested.Tuple{}, err
	}
	s.mu.Lock()
	s.counters.Downloads++
	s.mu.Unlock()
	ps := s.ws.Page(scheme)
	if ps == nil {
		return nested.Tuple{}, fmt.Errorf("matview: unknown page-scheme %q", scheme)
	}
	t, err := hypertext.WrapPage(ps, url, p.HTML) //lint:allow fetchgate matview wraps outside the fetcher
	if err != nil {
		return nested.Tuple{}, err
	}
	newLinks := s.outlinks(scheme, t)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.pages[url]; ok {

		oldLinks := s.outlinks(scheme, prev.Tuple)
		for u := range newLinks {
			if _, had := oldLinks[u]; !had {
				s.status[u] = StatusNew
			}
		}
		for u := range oldLinks {
			if _, has := newLinks[u]; !has {
				// The link disappeared: the page may have been deleted.
				// It is excluded from this evaluation and queued for the
				// deferred off-line check (§8: CheckMissing).
				s.status[u] = StatusMissing
				s.missing[u] = true
			}
		}
		s.counters.UpdatesApplied++
	} else {
		// Every link of a brand-new page is new to the view.
		for u := range newLinks {
			if s.status[u] == StatusNone {
				if _, stored := s.pages[u]; !stored {
					s.status[u] = StatusNew
				}
			}
		}
	}
	s.pages[url] = &StoredPage{Scheme: scheme, Tuple: t, AccessDate: p.LastModified}
	return t, nil
}

// liveFetch downloads and wraps a page without storing it, for schemes
// outside the materialized portion. With a live source installed the page
// comes from the shared store (and is accounted there).
func (s *Store) liveFetch(url, scheme string) (nested.Tuple, bool, error) {
	s.mu.Lock()
	src := s.liveSrc
	s.mu.Unlock()
	if src != nil {
		t, err := src.FetchCtx(context.Background(), scheme, url) //lint:allow noctxbg context-free Source surface of the store
		if err != nil {
			if isNotFound(err) {
				return nested.Tuple{}, false, nil
			}
			return nested.Tuple{}, false, err
		}
		return t, true, nil
	}
	p, err := s.server.Get(url) //lint:allow fetchgate matview counts its own Downloads (§8)
	if err != nil {
		if isNotFound(err) {
			return nested.Tuple{}, false, nil
		}
		return nested.Tuple{}, false, err
	}
	s.mu.Lock()
	s.counters.Downloads++
	s.mu.Unlock()
	ps := s.ws.Page(scheme)
	if ps == nil {
		return nested.Tuple{}, false, fmt.Errorf("matview: unknown page-scheme %q", scheme)
	}
	t, err := hypertext.WrapPage(ps, url, p.HTML) //lint:allow fetchgate matview wraps outside the fetcher
	if err != nil {
		return nested.Tuple{}, false, err
	}
	return t, true, nil
}

// URLCheck is Function 2 of the paper: it verifies whether the page at U
// has been updated on the site, refreshing the local copy if so, and
// returns the current tuple. exists=false reports that the page is gone
// from the site (the local copy is dropped and the deletion counted).
// Concurrent checks of the same URL are serialized, so the light-connection
// count stays what a sequential evaluation would measure.
func (s *Store) URLCheck(url, scheme string) (t nested.Tuple, exists bool, err error) {
	s.acquireCheck(url)
	defer s.releaseCheck(url)
	s.mu.Lock()
	st := s.status[url]
	s.mu.Unlock()
	return s.runCheck(url, scheme, st)
}

// acquireCheck claims the per-URL check slot, waiting for any in-flight
// check of the same URL to finish first.
func (s *Store) acquireCheck(url string) {
	for {
		s.mu.Lock()
		ch, busy := s.checking[url]
		if !busy {
			s.checking[url] = make(chan struct{})
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		<-ch
	}
}

func (s *Store) releaseCheck(url string) {
	s.mu.Lock()
	ch := s.checking[url]
	delete(s.checking, url)
	s.mu.Unlock()
	close(ch)
}

// runCheck performs Function 2 for one URL given its status snapshot. All
// network traffic (HEAD, GET) happens outside the store lock so checks of
// different URLs proceed in parallel.
func (s *Store) runCheck(url, scheme string, st Status) (nested.Tuple, bool, error) {
	if st == StatusNew {
		// A link we have never materialized: download directly (Function 2
		// line 1–2); no light connection is needed.
		t, err := s.download(url, scheme)
		if err != nil {
			if isNotFound(err) {
				// Appeared and disappeared between checks.
				s.mu.Lock()
				s.counters.DeletionsApplied++
				s.status[url] = StatusChecked
				s.mu.Unlock()
				return nested.Tuple{}, false, nil
			}
			return nested.Tuple{}, false, err
		}
		s.mu.Lock()
		s.status[url] = StatusChecked
		s.mu.Unlock()
		return t, true, nil
	}
	s.mu.Lock()
	stored, have := s.pages[url]
	s.mu.Unlock()
	// Light connection: an error flag and the modification date (§8).
	meta, err := s.server.Head(url) //lint:allow fetchgate light connection, counted below (§8)
	if !errors.Is(err, site.ErrBreakerOpen) {
		// A breaker fast-fail never reached the network, so it is not a
		// light connection.
		s.mu.Lock()
		s.counters.LightConnections++
		s.mu.Unlock()
	}
	if err != nil {
		if isNotFound(err) {
			s.mu.Lock()
			if have {
				delete(s.pages, url)
				s.counters.DeletionsApplied++
			}
			s.status[url] = StatusChecked
			s.mu.Unlock()
			return nested.Tuple{}, false, nil
		}
		if have && errors.Is(err, site.ErrBreakerOpen) {
			// The origin's breaker is open: skip confirmation and trust
			// the stored copy until the site heals. The URL stays
			// unchecked so the next evaluation retries the verification.
			s.mu.Lock()
			s.counters.StaleServes++
			s.mu.Unlock()
			return stored.Tuple, true, nil
		}
		return nested.Tuple{}, false, err
	}
	if !have || stored.AccessDate.Before(meta.LastModified) {
		t, err := s.download(url, scheme)
		if err != nil {
			if have && errors.Is(err, site.ErrBreakerOpen) {
				// Confirmed changed, but the refresh was fast-failed:
				// serve the stored (stale) copy rather than nothing.
				s.mu.Lock()
				s.counters.StaleServes++
				s.mu.Unlock()
				return stored.Tuple, true, nil
			}
			return nested.Tuple{}, false, err
		}
		s.mu.Lock()
		s.status[url] = StatusChecked
		s.mu.Unlock()
		return t, true, nil
	}
	s.mu.Lock()
	s.status[url] = StatusChecked
	s.mu.Unlock()
	return stored.Tuple, true, nil
}

// checkFollow is the per-URL step of a batched FollowPages: it applies the
// status shortcuts of Algorithm 3 and otherwise runs Function 2 once per
// URL per evaluation, no matter how many concurrent branches ask.
func (s *Store) checkFollow(url, scheme string) (nested.Tuple, bool, error) {
	for {
		s.mu.Lock()
		switch s.status[url] {
		case StatusMissing:
			// Deferred: checked periodically off-line, not during queries.
			s.missing[url] = true
			s.mu.Unlock()
			return nested.Tuple{}, false, nil
		case StatusChecked:
			p, ok := s.pages[url]
			s.mu.Unlock()
			if !ok {
				return nested.Tuple{}, false, nil
			}
			return p.Tuple, true, nil
		}
		ch, busy := s.checking[url]
		if busy {
			// Another branch is checking this URL right now: wait, then
			// re-read the status (it will be Checked).
			s.mu.Unlock()
			<-ch
			continue
		}
		s.checking[url] = make(chan struct{})
		st := s.status[url]
		s.mu.Unlock()

		t, exists, err := s.runCheck(url, scheme, st)
		s.releaseCheck(url)
		return t, exists, err
	}
}

func isNotFound(err error) bool {
	for e := err; e != nil; {
		if e == site.ErrNotFound {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// EntryPage implements nalg.Source for Algorithm 3: entry points are
// URL-checked before use (Algorithm 3 lines 3–5).
func (s *Store) EntryPage(scheme, url string) (nested.Tuple, error) {
	if !s.Materialized(scheme) {
		t, exists, err := s.liveFetch(url, scheme)
		if err != nil {
			return nested.Tuple{}, err
		}
		if !exists {
			return nested.Tuple{}, fmt.Errorf("matview: entry point %s no longer exists at %s", scheme, url)
		}
		return t, nil
	}
	t, exists, err := s.URLCheck(url, scheme)
	if err != nil {
		return nested.Tuple{}, err
	}
	if !exists {
		return nested.Tuple{}, fmt.Errorf("matview: entry point %s no longer exists at %s", scheme, url)
	}
	return t, nil
}

// FollowPages implements nalg.Source for Algorithm 3 (lines 6–12): each
// outgoing URL with status new or none is URL-checked; URLs flagged missing
// are queued in CheckMissing and excluded from the evaluation; deleted
// pages are dropped. The per-URL checks — one light connection each, plus a
// download when the page actually changed — are batched through a bounded
// worker pool, so a follow over many links overlaps its HEADs instead of
// paying one round trip after another. Results preserve input order.
func (s *Store) FollowPages(scheme string, urls []string) ([]nested.Tuple, error) {
	check := s.checkFollow
	if !s.Materialized(scheme) {
		check = func(u, sch string) (nested.Tuple, bool, error) {
			return s.liveFetch(u, sch)
		}
	}
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	if workers > len(urls) {
		workers = len(urls)
	}
	if workers <= 1 {
		var out []nested.Tuple
		for _, u := range urls {
			t, exists, err := check(u, scheme)
			if err != nil {
				return nil, err
			}
			if exists {
				out = append(out, t)
			}
		}
		return out, nil
	}
	results := make([]nested.Tuple, len(urls))
	exists := make([]bool, len(urls))
	jobs := make(chan int)
	done := make(chan struct{})
	var once sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t, ok, err := check(urls[i], scheme)
				if err != nil {
					once.Do(func() {
						firstErr = err
						close(done)
					})
					return
				}
				results[i], exists[i] = t, ok
			}
		}()
	}
producing:
	for i := range urls {
		select {
		case jobs <- i:
		case <-done:
			break producing
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var out []nested.Tuple
	for i, ok := range exists {
		if ok {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// ProcessMissing performs the deferred off-line check of CheckMissing URLs
// (§8): each queued URL is probed; pages that are indeed gone are removed
// from the view. It returns the number of deletions applied.
func (s *Store) ProcessMissing() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	deleted := 0
	for u := range s.missing {
		_, err := s.server.Head(u) //lint:allow fetchgate light connection, counted below (§8)
		s.counters.LightConnections++
		if err == nil {
			continue // still alive: some other page may still link to it
		}
		if !isNotFound(err) {
			return deleted, err
		}
		if _, ok := s.pages[u]; ok {
			delete(s.pages, u)
			s.counters.DeletionsApplied++
			deleted++
		}
	}
	s.missing = make(map[string]bool)
	return deleted, nil
}

// RefreshURL applies one push event to the materialization: the page at url
// is re-verified immediately — one light connection, plus a download iff the
// site reports it changed — instead of waiting for the next query or full
// Refresh pass to touch it. scheme may be empty when the page is already
// stored (the stored scheme is reused); it is required for pages not yet
// materialized (Added events). It reports whether the local row changed
// (re-wrapped, added or deleted). When the origin's breaker is open the
// stale row is kept and the deferral surfaces as a site.ErrBreakerOpen
// wrapped error, so callers know the verification did not happen.
func (s *Store) RefreshURL(url, scheme string) (changed bool, err error) {
	s.mu.Lock()
	p, had := s.pages[url]
	if had {
		scheme = p.Scheme
	}
	s.mu.Unlock()
	if scheme == "" {
		return false, fmt.Errorf("matview: RefreshURL(%s): unknown page-scheme", url)
	}
	if !s.Materialized(scheme) {
		return false, nil // live-fetched on use; nothing stored to maintain
	}
	s.acquireCheck(url)
	defer s.releaseCheck(url)
	s.mu.Lock()
	before := s.counters
	st := s.status[url]
	s.mu.Unlock()
	_, _, cerr := s.runCheck(url, scheme, st)
	s.mu.Lock()
	after := s.counters
	_, has := s.pages[url]
	s.mu.Unlock()
	if cerr != nil {
		return false, cerr
	}
	if after.StaleServes > before.StaleServes {
		return false, fmt.Errorf("matview: refresh of %s deferred: %w", url, site.ErrBreakerOpen)
	}
	return had != has || after.UpdatesApplied > before.UpdatesApplied, nil
}

// RemoveURL drops the materialized row for url in response to a push
// Removed event — no probe needed, the feed already observed the deletion.
// It reports whether a row was removed (and counts the deletion if so).
func (s *Store) RemoveURL(url string) bool {
	s.acquireCheck(url)
	defer s.releaseCheck(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[url]; !ok {
		return false
	}
	delete(s.pages, url)
	delete(s.missing, url)
	s.counters.DeletionsApplied++
	return true
}

// Refresh re-checks every materialized page (the periodic full-view
// consistency pass the paper mentions at the end of §8). It returns how
// many pages were updated or deleted, plus the sorted URLs that could not
// be verified: an unreachable page (any network failure other than a clean
// 404) no longer aborts the pass — the stale local row is kept, so the view
// stays answerable, and the URL is reported for the next refresh to retry.
func (s *Store) Refresh() (updated, deleted int, stale []string, err error) {
	s.mu.Lock()
	urls := make([]string, 0, len(s.pages))
	schemes := make(map[string]string, len(s.pages))
	for u, p := range s.pages {
		urls = append(urls, u)
		schemes[u] = p.Scheme
	}
	s.mu.Unlock()
	sort.Strings(urls)
	s.BeginEvaluation()
	for _, u := range urls {
		s.mu.Lock()
		before := s.counters
		st := s.status[u]
		s.mu.Unlock()
		_, exists, cerr := s.runCheck(u, schemes[u], st)
		s.mu.Lock()
		after := s.counters
		s.mu.Unlock()
		if cerr != nil {
			// Source unreachable: keep serving the stale row rather than
			// failing the whole pass ("Maintaining Consistency of Data on
			// the Web": a view must stay usable when sources misbehave).
			stale = append(stale, u)
			continue
		}
		if !exists {
			deleted++
			continue
		}
		if after.UpdatesApplied > before.UpdatesApplied {
			updated++
		}
	}
	return updated, deleted, stale, nil
}
