package matview

import (
	"errors"
	"testing"
	"time"

	"ulixes/internal/faults"
	"ulixes/internal/guard"
	"ulixes/internal/sitegen"
)

// TestSnapshotCopiesStoreState pins the iteration/lookup surface the
// view-answering layer consumes: page counts, sorted URL and scheme listings,
// per-scheme slices, the freshness bound and the byte footprint.
func TestSnapshotCopiesStoreState(t *testing.T) {
	u, _, store, _ := fixture(t)
	sn := store.Snapshot()
	if sn.Len() != store.Len() || sn.Len() != u.Instance.TotalPages() {
		t.Fatalf("snapshot holds %d pages, store %d, site %d", sn.Len(), store.Len(), u.Instance.TotalPages())
	}
	urls := sn.URLs()
	if len(urls) != sn.Len() {
		t.Fatalf("URLs lists %d entries, want %d", len(urls), sn.Len())
	}
	for i := 1; i < len(urls); i++ {
		if urls[i-1] >= urls[i] {
			t.Fatalf("URLs not sorted: %q before %q", urls[i-1], urls[i])
		}
	}
	total := 0
	for _, scheme := range sn.Schemes() {
		pages := sn.PagesOf(scheme)
		if len(pages) == 0 {
			t.Errorf("scheme %q listed but has no pages", scheme)
		}
		for _, p := range pages {
			if p.Scheme != scheme {
				t.Errorf("PagesOf(%q) returned a %q page", scheme, p.Scheme)
			}
		}
		total += len(pages)
	}
	if total != sn.Len() {
		t.Errorf("per-scheme pages sum to %d, want %d", total, sn.Len())
	}
	if _, ok := sn.Page(sitegen.UnivProfListURL); !ok {
		t.Error("prof list page missing from snapshot")
	}
	if _, ok := sn.OldestAccess(); !ok {
		t.Error("OldestAccess not found on a populated snapshot")
	}
	if sn.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want > 0", sn.Bytes())
	}
}

// TestSnapshotSourceServesLocally: the snapshot source answers navigations
// from stored tuples without touching the site, and errors (rather than
// silently skipping) on anything not materialized — the soundness hook the
// rewriter's live fallback depends on.
func TestSnapshotSourceServesLocally(t *testing.T) {
	_, ms, store, _ := fixture(t)
	stored, ok := store.Page(sitegen.UnivProfListURL)
	if !ok {
		t.Fatal("prof list not materialized")
	}
	gets := ms.Counters().Gets()
	src := store.Snapshot().Source()

	tup, err := src.EntryPage(sitegen.ProfListPage, sitegen.UnivProfListURL)
	if err != nil {
		t.Fatal(err)
	}
	if !tup.Equal(stored.Tuple) {
		t.Error("EntryPage returned a different tuple than the stored copy")
	}
	batch, err := src.FollowPages(sitegen.ProfListPage, []string{sitegen.UnivProfListURL})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || !batch[0].Equal(stored.Tuple) {
		t.Error("FollowPages returned a different tuple than the stored copy")
	}
	if got := ms.Counters().Gets(); got != gets {
		t.Errorf("snapshot reads cost %d GETs, want 0", got-gets)
	}

	// A URL the store does not hold is an explicit error.
	var notMat *ErrNotMaterialized
	if _, err := src.EntryPage(sitegen.ProfListPage, "http://univ.example.edu/nowhere"); !errors.As(err, &notMat) {
		t.Errorf("missing URL: err = %v, want *ErrNotMaterialized", err)
	}
	if _, err := src.FollowPages(sitegen.ProfListPage, []string{"http://univ.example.edu/nowhere"}); !errors.As(err, &notMat) {
		t.Errorf("missing URL in batch: err = %v, want *ErrNotMaterialized", err)
	}
	// So is a stored URL under the wrong page-scheme.
	if _, err := src.EntryPage("WrongScheme", sitegen.UnivProfListURL); !errors.As(err, &notMat) {
		t.Errorf("scheme mismatch: err = %v, want *ErrNotMaterialized", err)
	}
}

// TestRefreshReportsStaleRowsWhenOriginUnreachable: a refresh pass against a
// hard-down origin (no breaker involved) keeps every row and reports it in
// the 4-value stale list instead of failing the pass; a later pass against
// the healed origin comes back clean.
func TestRefreshReportsStaleRowsWhenOriginUnreachable(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	chaos := faults.New(ms, 11)
	store, err := Materialize(chaos, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	updated, deleted, stale, err := store.Refresh()
	if err != nil {
		t.Fatalf("refresh must not fail outright: %v", err)
	}
	if updated != 0 || deleted != 0 {
		t.Errorf("updated=%d deleted=%d, want 0/0", updated, deleted)
	}
	if len(stale) != u.Instance.TotalPages() {
		t.Errorf("%d stale rows, want every page (%d)", len(stale), u.Instance.TotalPages())
	}
	if store.Len() != u.Instance.TotalPages() {
		t.Errorf("store dropped to %d pages; stale rows must be kept", store.Len())
	}
	chaos.SetRules()
	if _, _, stale, err = store.Refresh(); err != nil || len(stale) != 0 {
		t.Errorf("healed refresh: stale=%v err=%v, want clean", stale, err)
	}
}

// TestRefreshStaleServesUnderTrippedBreaker: once the site-health guard's
// breaker is open, a refresh pass is answered entirely from the stored
// copies — counted as StaleServes, with no stale rows reported and no new
// network traffic — rather than burning a timeout per page against a host
// already known to be down.
func TestRefreshStaleServesUnderTrippedBreaker(t *testing.T) {
	u, ms, _, _ := fixtureParts(t)
	clock := func() time.Time { return time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC) }
	chaos := faults.New(ms, 7)
	g := guard.New(chaos, guard.Config{
		Clock:          clock,
		MinSamples:     3,
		ErrorThreshold: 0.6,
		OpenFor:        30 * time.Second,
	})
	store, err := Materialize(g, u.Scheme)
	if err != nil {
		t.Fatal(err)
	}

	// Two real failures trip the breaker (see TestStaleServeWhenBreakerOpen
	// for the EWMA arithmetic).
	chaos.SetRules(faults.Rule{Kind: faults.Transient, Rate: 1})
	store.BeginEvaluation()
	for i := 0; i < 2; i++ {
		if _, _, err := store.URLCheck(sitegen.UnivProfListURL, sitegen.ProfListPage); err == nil {
			t.Fatalf("check %d: expected a transient failure", i)
		}
	}
	if got := g.StateOf(guard.HostOf(sitegen.UnivProfListURL)); got != guard.Open {
		t.Fatalf("breaker state %v, want Open", got)
	}

	store.ResetCounters()
	updated, deleted, stale, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if updated != 0 || deleted != 0 || len(stale) != 0 {
		t.Errorf("updated=%d deleted=%d stale=%v, want an all-stale-served pass", updated, deleted, stale)
	}
	c := store.Counters()
	if c.StaleServes != u.Instance.TotalPages() {
		t.Errorf("StaleServes = %d, want one per page (%d)", c.StaleServes, u.Instance.TotalPages())
	}
	if c.LightConnections != 0 || c.Downloads != 0 {
		t.Errorf("counters %+v, want no network traffic under an open breaker", c)
	}
	if store.Len() != u.Instance.TotalPages() {
		t.Errorf("store dropped to %d pages", store.Len())
	}
}
