package lint_test

import (
	"go/ast"
	"go/types"
	"testing"

	"ulixes/internal/lint"
)

// useChain finds the def-use chain of the first use of a variable named
// varName inside a statement matching fragment.
func useChain(t *testing.T, pkg *lint.Package, du *lint.DefUse, fd *ast.FuncDecl, fragment, varName string) ([]ast.Node, bool) {
	t.Helper()
	pos := findStmtPos(t, pkg, fd, fragment)
	for id, defs := range du.Chains {
		if id.Name == varName && id.Pos() >= pos {
			stmtEnd := pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if s, ok := n.(ast.Stmt); ok && s.Pos() == pos {
					stmtEnd = s.End()
					return false
				}
				return true
			})
			if id.Pos() < stmtEnd {
				return defs, true
			}
		}
	}
	return nil, false
}

func TestDefUseKillOnBothBranches(t *testing.T) {
	pkg, fn := loadDataflowFixture(t)
	fd := fn("ifElse")
	du := lint.BuildDefUse(pkg, fd.Body)
	defs, ok := useChain(t, pkg, du, fd, "return x", "x")
	if !ok {
		t.Fatal("no chain recorded for use of x in return")
	}
	// x := 1 is killed by the assignments on both branches: exactly the two
	// branch defs reach the return.
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs for x at return, want 2 (both branch assigns)", len(defs))
	}
}

func TestDefUseLoopCarried(t *testing.T) {
	pkg, fn := loadDataflowFixture(t)
	fd := fn("loop")
	du := lint.BuildDefUse(pkg, fd.Body)
	// Inside the loop body, s is reached by its init and by the previous
	// iteration's assignment (via the back edge).
	defs, ok := useChain(t, pkg, du, fd, "s = s + i", "s")
	if !ok {
		t.Fatal("no chain recorded for use of s in loop body")
	}
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs for s in loop body, want 2 (init + back edge)", len(defs))
	}
	// After the loop, both still reach the return.
	defs, ok = useChain(t, pkg, du, fd, "return s", "s")
	if !ok {
		t.Fatal("no chain recorded for use of s at return")
	}
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs for s at return, want 2", len(defs))
	}
}

func TestDefUseParamIsExternal(t *testing.T) {
	pkg, fn := loadDataflowFixture(t)
	fd := fn("useParam")
	du := lint.BuildDefUse(pkg, fd.Body)
	defs, ok := useChain(t, pkg, du, fd, "q := p", "p")
	if !ok {
		t.Fatal("no chain recorded for use of p")
	}
	// A parameter's value comes from outside the body: nil chain.
	if defs != nil {
		t.Fatalf("param use has %d defs, want nil (external)", len(defs))
	}
	defs, ok = useChain(t, pkg, du, fd, "return q", "q")
	if !ok || len(defs) != 1 {
		t.Fatalf("use of q: got chain %v, want exactly 1 def", defs)
	}
}

// escClassOf finds a variable by name among the escape results.
func escClassOf(t *testing.T, pkg *lint.Package, esc map[*types.Var]*lint.EscapeInfo, name string) (lint.EscapeClass, bool) {
	t.Helper()
	for v, info := range esc {
		if v.Name() == name {
			return info.Class, true
		}
	}
	return 0, false
}

func escapesOf(t *testing.T, name string) (*lint.Package, map[*types.Var]*lint.EscapeInfo) {
	t.Helper()
	pkg, fn := loadDataflowFixture(t)
	fd := fn(name)
	return pkg, lint.Escapes(pkg, fd.Type, fd.Body)
}

func TestEscapeLocal(t *testing.T) {
	pkg, esc := escapesOf(t, "escLocal")
	// Plain locals never raised above local: either untracked or EscLocal.
	if c, ok := escClassOf(t, pkg, esc, "x"); ok && c != lint.EscLocal {
		t.Fatalf("x classified %v, want local", c)
	}
}

func TestEscapeReturned(t *testing.T) {
	pkg, esc := escapesOf(t, "escReturned")
	c, ok := escClassOf(t, pkg, esc, "p")
	if !ok || c != lint.EscEscaped {
		t.Fatalf("returned pointer p classified %v (tracked=%v), want escaped", c, ok)
	}
}

func TestEscapeStoredIntoLocalStructure(t *testing.T) {
	pkg, esc := escapesOf(t, "escStoredLocal")
	c, ok := escClassOf(t, pkg, esc, "x")
	if !ok || c != lint.EscStored {
		t.Fatalf("x stored into local box classified %v (tracked=%v), want stored", c, ok)
	}
}

func TestEscapeStoredIntoParam(t *testing.T) {
	pkg, esc := escapesOf(t, "escStoredIntoParam")
	c, ok := escClassOf(t, pkg, esc, "x")
	if !ok || c != lint.EscEscaped {
		t.Fatalf("x stored into param structure classified %v (tracked=%v), want escaped", c, ok)
	}
}

func TestEscapeGoroutineCapture(t *testing.T) {
	pkg, esc := escapesOf(t, "escGoroutine")
	c, ok := escClassOf(t, pkg, esc, "x")
	if !ok || c != lint.EscEscaped {
		t.Fatalf("goroutine-captured x classified %v (tracked=%v), want escaped", c, ok)
	}
}

func TestEscapeLocalClosureKeepsCaptureLocal(t *testing.T) {
	pkg, esc := escapesOf(t, "escLocalClosure")
	if c, ok := escClassOf(t, pkg, esc, "x"); ok && c != lint.EscLocal {
		t.Fatalf("locally-called closure capture x classified %v, want local", c)
	}
}
