package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pooledPathPkgs are the packages allowed to use sync.Pool on the query
// request path: the tuple/value layer and the wrapper, plus everything in
// requestPathPkgs. A pooled object that is returned dirty — without its
// buffers truncated or its fields cleared — leaks one request's data into
// the next and turns length-dependent bugs nondeterministic, so every
// (*sync.Pool).Put must be preceded by visible reset evidence in the same
// function: an assignment through the pooled variable (e.g. *b = (*b)[:0])
// or a Reset-style method call on it. Deliberate exceptions carry a
// //lint:allow poolreset directive.
var pooledPathPkgs = append([]string{
	"ulixes/internal/nested",
	"ulixes/internal/hypertext",
}, requestPathPkgs...)

// PoolReset enforces reset-before-Put for sync.Pool users on the request
// path.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc: "request-path packages pooling objects with sync.Pool must reset a\n" +
		"pooled object before (*sync.Pool).Put: truncate its buffers or clear\n" +
		"its fields in the same function (e.g. *b = (*b)[:0] or x.Reset()), so\n" +
		"no request's data leaks into the next request's pooled object\n" +
		"(deliberate exceptions carry //lint:allow poolreset)",
	Run: runPoolReset,
}

func runPoolReset(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, pooledPathPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, body := enclosingFunc(n)
			if body == nil {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				// Do not descend into nested function literals here; the
				// outer Inspect visits them as their own scope.
				if fl, ok := m.(*ast.FuncLit); ok && fl != fn {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok || !isPoolPut(pass.Pkg, call) || len(call.Args) != 1 {
					return true
				}
				obj := rootObject(pass.Pkg, call.Args[0])
				if obj == nil {
					// Putting a freshly built value (composite literal,
					// call result) cannot carry stale request data.
					return true
				}
				if !resetBefore(pass.Pkg, body, fn, obj, call.Pos()) {
					pass.Reportf(call.Pos(), "pooled object %q is not reset before Put; truncate or clear it (e.g. *%s = (*%s)[:0]) so pooled state cannot leak across requests", obj.Name(), obj.Name(), obj.Name())
				}
				return true
			})
			// Keep descending: nested function literals are analyzed as
			// their own scopes when the walk reaches them.
			return true
		})
	}
}

// enclosingFunc returns the function node and body when n opens a function
// scope (declaration or literal).
func enclosingFunc(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn, fn.Body
	case *ast.FuncLit:
		return fn, fn.Body
	}
	return nil, nil
}

// isPoolPut reports whether a call is (*sync.Pool).Put.
func isPoolPut(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	if obj == nil || obj.Pkg() == nil || !isMethod(obj) {
		return false
	}
	return obj.Pkg().Path() == "sync" && obj.Name() == "Put"
}

// rootObject resolves the variable at the root of an expression like x,
// &x, x.field or (*x), or nil when the expression is not rooted in a
// variable (fresh composite literals, call results, constants).
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				if _, ok := obj.(*types.Var); ok {
					return obj
				}
			}
			return nil
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// resetBefore reports whether the function body shows reset evidence for
// obj at a position before pos: an assignment whose left-hand side is
// rooted in obj, or a method call on obj whose name starts with "Reset" or
// "Clear".
func resetBefore(pkg *Package, body *ast.BlockStmt, fn ast.Node, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl != fn {
			return false
		}
		if n == nil || n.Pos() >= pos {
			return true
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootObject(pkg, lhs) == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if (hasPrefix(name, "Reset") || hasPrefix(name, "Clear")) && rootObject(pkg, sel.X) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}
