// Package lostcancel is a lint fixture: context cancel functions handled and
// dropped along various control-flow paths.
package lostcancel

import (
	"context"
	"time"
)

func work(ctx context.Context) error { return nil }

type server struct{ cancel context.CancelFunc }

// good: the canonical defer.
func deferred(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

// good: called on both branches.
func bothBranches(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(ctx)
	if fast {
		err := work(ctx)
		cancel()
		return err
	}
	cancel()
	return nil
}

// good: returned to the caller, which owns it now.
func handedOff(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel
}

// good: stored for a documented later call.
func stored(ctx context.Context, s *server) context.Context {
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	return ctx
}

// good: passed to a function that takes ownership.
func delegated(ctx context.Context, own func(context.CancelFunc)) error {
	ctx, cancel := context.WithCancel(ctx)
	own(cancel)
	return work(ctx)
}

// good: a closure holding the cancel decides when it runs.
func viaClosure(ctx context.Context) func() {
	ctx, cancel := context.WithCancel(ctx)
	_ = ctx
	return func() { cancel() }
}

// bad: the early-return path never cancels.
func earlyReturnLeak(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want `cancel function "cancel" is not called on every path`
	if fast {
		return work(ctx)
	}
	cancel()
	return nil
}

// bad: no path cancels at all.
func neverCanceled(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // want `cancel function "cancel" is not called on every path`
	_ = cancel
	return work(ctx)
}

// bad: a loop's break path skips the cancel.
func loopBreakLeak(ctx context.Context, items []int) error {
	for range items {
		ctx2, cancel := context.WithTimeout(ctx, time.Second) // want `cancel function "cancel" is not called on every path`
		if err := work(ctx2); err != nil {
			break
		}
		cancel()
	}
	return nil
}

// bad: discarding the cancel makes the context uncancelable.
func discarded(ctx context.Context) error {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want `the cancel function of context.WithTimeout is discarded`
	return work(ctx)
}

// good: an acknowledged exemption is suppressed.
func allowed(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) //lint:allow lostcancel fixture: deliberate leak
	_ = cancel
	return work(ctx)
}
