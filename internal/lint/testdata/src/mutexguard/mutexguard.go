// Package mutexguard is a lint fixture: "guarded by" annotated fields
// accessed with and without their mutex held.
package mutexguard

import "sync"

type Cache struct {
	mu sync.Mutex
	// guarded by mu
	entries map[string]int
	bytes   int // guarded by mu

	hits int // not annotated: unchecked
}

func use(...any) {}

// good: the canonical lock/access/unlock.
func (c *Cache) Get(k string) int {
	c.mu.Lock()
	v := c.entries[k]
	c.mu.Unlock()
	return v
}

// good: defer keeps the lock held to every return.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// good: the *Locked naming convention declares the caller holds the lock.
func (c *Cache) evictLocked(k string) {
	delete(c.entries, k)
	c.bytes--
}

// good: construction-time initialization of an object nothing else can see.
func NewCache() *Cache {
	c := &Cache{}
	c.entries = make(map[string]int)
	c.bytes = 0
	return c
}

// good: unannotated fields are not checked.
func (c *Cache) Hits() int { return c.hits }

// bad: no lock at all.
func (c *Cache) Peek(k string) int {
	return c.entries[k] // want `field "entries" \(guarded by mu\) accessed without holding the mutex`
}

// bad: the access happens after the unlock.
func (c *Cache) PutThenTouch(k string, v int) {
	c.mu.Lock()
	c.entries[k] = v
	c.mu.Unlock()
	c.bytes++ // want `field "bytes" \(guarded by mu\) accessed without holding the mutex`
}

// bad: one branch unlocks early, so the merge point is unprotected.
func (c *Cache) BranchyUnlock(flush bool, k string) {
	c.mu.Lock()
	if flush {
		c.mu.Unlock()
	}
	delete(c.entries, k) // want `field "entries" \(guarded by mu\) accessed without holding the mutex`
	if !flush {
		c.mu.Unlock()
	}
}

// bad: a goroutine body inherits no lock state from its creator.
func (c *Cache) Async(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.entries[k] = v // want `field "entries" \(guarded by mu\) accessed without holding the mutex`
	}()
}

// good: the goroutine takes the lock itself.
func (c *Cache) AsyncLocked(k string, v int) {
	go func() {
		c.mu.Lock()
		c.entries[k] = v
		c.mu.Unlock()
	}()
}

// good: an acknowledged lock-free read is suppressed.
func (c *Cache) Racy() int {
	return c.bytes //lint:allow mutexguard fixture: racy stat read is fine
}

// Cross-object annotation: the owner's mutex guards the children's fields,
// mirroring guard.hostState's "guarded by Guard.mu".

type Owner struct {
	mu sync.Mutex
	// guarded by mu
	hosts map[string]*child
}

type child struct {
	fails int // guarded by Owner.mu
}

// good: the owner's lock sanctions child-field access.
func (o *Owner) Fail(h string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch := o.hosts[h]
	ch.fails++
}

// bad: touching the child without the owner's lock.
func (o *Owner) PeekFails(ch *child) int {
	return ch.fails // want `field "fails" \(guarded by mu\) accessed without holding the mutex`
}
