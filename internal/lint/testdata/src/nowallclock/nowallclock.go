// Package nowallclock is the nowallclock analyzer fixture: ambient clock
// reads in a (simulated) cost-measured package.
package nowallclock

import "time"

func measure() time.Duration {
	start := time.Now() // want `wall-clock call time\.Now`
	work()
	return time.Since(start) // want `wall-clock call time\.Since`
}

func throttle() {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
}

func poll(done <-chan struct{}) {
	select {
	case <-time.After(time.Second): // want `wall-clock call time\.After`
	case <-done:
	}
}

// Pure time arithmetic and formatting do not read the clock.
func format(t time.Time, d time.Duration) string {
	return t.Add(d).Format(time.RFC3339)
}

// An injected clock is the sanctioned pattern.
type clock func() time.Time

func measureWith(now clock) time.Duration {
	start := now()
	work()
	return now().Sub(start)
}

// exempted documents an intentional read; the driver must suppress it.
func exempted() time.Time {
	//lint:allow nowallclock fixture for the comment-above form
	return time.Now()
}

func work() {}
