// Package statsexhaustive is a lint fixture: counter-struct merge functions
// that cover every field, miss some, or are exempted.
package statsexhaustive

import "time"

type ExecStats struct {
	Fetches   int
	CacheHits int
	Bytes     int64
	Wall      time.Duration
	Degraded  bool
}

// good: every field is aggregated.
func (s *ExecStats) Add(o ExecStats) {
	s.Fetches += o.Fetches
	s.CacheHits += o.CacheHits
	s.Bytes += o.Bytes
	s.Wall += o.Wall
	s.Degraded = s.Degraded || o.Degraded
}

type Counters struct {
	Hits   int
	Misses int
	Evicts int
}

// bad: Evicts is silently dropped from the merge.
func (c *Counters) Merge(o Counters) { // want `Merge does not aggregate field Evicts of Counters`
	c.Hits += o.Hits
	c.Misses += o.Misses
}

type SessionStats struct {
	Pages int
	Stale int
	Local int
}

// bad: two fields missing reports them together.
func (s *SessionStats) Add(o SessionStats) { // want `Add does not aggregate fields Stale, Local of SessionStats`
	s.Pages += o.Pages
}

type snapshot struct {
	Rows  int
	Bytes int
}

// good: the directive opts an arbitrary function in; struct-literal keys
// count as coverage.
//
//lint:exhaustive snapshot
func mergeSnapshots(a, b snapshot) snapshot {
	return snapshot{Rows: a.Rows + b.Rows, Bytes: a.Bytes + b.Bytes}
}

// bad: directive-marked function missing a field.
//
//lint:exhaustive snapshot
func partialSnapshot(a, b snapshot) snapshot { // want `partialSnapshot does not aggregate field Bytes of snapshot`
	return snapshot{Rows: a.Rows + b.Rows}
}

// bad: the directive must name a real type; the diagnostic lands on the
// directive line itself.
//
//lint:exhaustive missingType want `names unknown type "missingType"`
func badDirective() {}

type gauges struct {
	Depth int
	Peak  int
}

// good: an acknowledged partial merge is suppressed.
//
//lint:exhaustive gauges
//lint:allow statsexhaustive fixture: Peak is recomputed, not merged
func mergeGauges(a, b gauges) gauges {
	return gauges{Depth: a.Depth + b.Depth}
}

// good: a non-Add/Merge method on a stats struct is not auto-checked.
func (c *Counters) Reset() { c.Hits = 0 }
