// Package fetchgate is the fetchgate analyzer fixture: page accesses that
// bypass the counted site.Fetcher, plus the sanctioned patterns that must
// stay clean.
package fetchgate

import (
	"net/http"

	"ulixes/internal/adm"
	"ulixes/internal/hypertext"
	"ulixes/internal/site"
)

func rawHTTP(url string) error {
	resp, err := http.Get(url) // want `direct net/http client call http\.Get`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func rawHTTPHead(url string) {
	_, _ = http.Head(url) // want `direct net/http client call http\.Head`
}

func rawClient(c *http.Client, req *http.Request) {
	_, _ = c.Do(req) // want `direct net/http client call \(\*http\.Client\)\.Do`
}

func rawServerRead(srv site.Server, url string) {
	_, _ = srv.Get(url)  // want `direct page read Server\.Get`
	_, _ = srv.Head(url) // want `direct page read Server\.Head`
}

func rawMemSiteRead(ms *site.MemSite, url string) {
	_, _ = ms.Get(url) // want `direct page read MemSite\.Get`
}

func rawWrap(ps *adm.PageScheme, url, html string) {
	_, _ = hypertext.WrapPage(ps, url, html) // want `direct hypertext\.WrapPage call`
}

// counted is the sanctioned path: all reads flow through the fetcher.
func counted(f *site.Fetcher, scheme, url string) error {
	_, err := f.Fetch(scheme, url)
	return err
}

// exempted documents an intentional bypass; the driver must suppress it.
func exempted(srv site.Server, url string) {
	_, _ = srv.Get(url) //lint:allow fetchgate fixture for the exemption path
}

// serving a site is not a client call and must not be flagged.
func serve(ms *site.MemSite) http.Handler {
	return site.Handler(ms)
}
