// Package noprintln is the noprintln analyzer fixture: stdout/stderr writes
// from a library package.
package noprintln

import (
	"fmt"
	"io"
	"log"
	"os"
)

func chatty(x int) {
	fmt.Println("value:", x)   // want `fmt\.Println writes to stdout`
	fmt.Printf("value: %d", x) // want `fmt\.Printf writes to stdout`
	fmt.Print(x)               // want `fmt\.Print writes to stdout`
	log.Printf("value: %d", x) // want `log package use`
	println("debug", x)        // want `println builtin writes to stderr`
}

// Destination-explicit formatting is fine: the caller chose the stream.
func quiet(w io.Writer, x int) (string, error) {
	if _, err := fmt.Fprintf(w, "value: %d\n", x); err != nil {
		return "", fmt.Errorf("writing: %w", err)
	}
	return fmt.Sprintf("value: %d", x), nil
}

// Even writing to os.Stderr explicitly via Fprintln is the caller's choice.
func explicit(x int) {
	fmt.Fprintln(os.Stderr, "value:", x)
}
