// Package poolreset is a lint fixture: sync.Pool Put calls with and
// without reset evidence.
package poolreset

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type scratch struct {
	rows []int
}

func (s *scratch) Reset() { s.rows = s.rows[:0] }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// good: the canonical truncate-then-Put idiom.
func putBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// good: a Reset method call counts as reset evidence.
func putScratch(s *scratch) {
	s.Reset()
	scratchPool.Put(s)
}

// good: clearing a field through the pooled variable counts.
func putScratchFieldClear(s *scratch) {
	s.rows = nil
	scratchPool.Put(s)
}

// good: a freshly built value cannot carry stale state.
func putFresh() {
	scratchPool.Put(new(scratch))
}

// bad: the buffer goes back dirty.
func putDirty(b *[]byte) {
	bufPool.Put(b) // want `pooled object "b" is not reset before Put`
}

// bad: resetting after Put is a use-after-free of pooled state.
func putThenReset(s *scratch) {
	scratchPool.Put(s) // want `pooled object "s" is not reset before Put`
	s.Reset()
}

// bad: a reset inside a nested closure that has not run is not evidence.
func putResetInClosure(b *[]byte) {
	reset := func() { *b = (*b)[:0] }
	_ = reset
	bufPool.Put(b) // want `pooled object "b" is not reset before Put`
}

// good: an acknowledged exception is suppressed.
func putAllowed(b *[]byte) {
	bufPool.Put(b) //lint:allow poolreset fixture: deliberate dirty Put
}
