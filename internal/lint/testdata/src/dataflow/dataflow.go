// Package dataflow is a fixture for the CFG, def-use, and escape-lattice
// unit tests. The function bodies are shapes, not behavior.
package dataflow

func sink(...any) {}

func ifElse(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}

func earlyReturn(c bool) int {
	if c {
		return 1
	}
	sink(c)
	return 2
}

func deferred() {
	defer sink(1)
	defer sink(2)
	sink(3)
}

func fallthroughSwitch(n int) int {
	x := 0
	switch n {
	case 0:
		x = 1
		fallthrough
	case 1:
		x = x + 10
	default:
		x = -1
	}
	return x
}

func rangeLoop(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

func gotoLabel(n int) int {
	i := 0
again:
	i++
	if i < n {
		goto again
	}
	return i
}

func useParam(p int) int {
	q := p
	return q
}

type box struct{ v *int }

func escLocal() int {
	x := 42
	y := x
	return y
}

func escReturned() *int {
	x := 42
	p := &x
	return p
}

func escStoredLocal() int {
	x := 42
	b := box{}
	b.v = &x
	return *b.v
}

func escStoredIntoParam(b *box) {
	x := 42
	b.v = &x
}

func escGoroutine() {
	x := 42
	go func() { sink(x) }()
}

func escLocalClosure() int {
	x := 42
	f := func() int { return x }
	return f()
}
