// Package viewescape is a lint fixture: zero-copy views (lexer tokens,
// pooled buffers, TrustedTuple shared slices) used within and beyond their
// generation.
package viewescape

import "sync"

// The shapes mirror internal/hypertext and internal/nested: a Lexer whose
// Next hands out tokens aliasing a reused buffer, get/put pooled key
// buffers, and a TrustedTuple constructor sharing its slice arguments.

type Attr struct{ Key, Val string }

type Token struct {
	Kind  int
	Tag   string
	Attrs []Attr
}

type Lexer struct{ attrs []Attr }

func (l *Lexer) Next() (Token, bool, error) {
	l.attrs = l.attrs[:0]
	return Token{Attrs: l.attrs}, true, nil
}

var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getKeyBuf() *[]byte { return keyBufPool.Get().(*[]byte) }

func putKeyBuf(b *[]byte) {
	*b = (*b)[:0]
	keyBufPool.Put(b)
}

type Tuple struct{ names []string }

func TrustedTuple(names []string, vals []string) Tuple { return Tuple{names: names} }

func use(...any) {}

var sink []Attr

// ---- lexer token views ----------------------------------------------------

// good: a token is used freely within its generation.
func tokenWithinGeneration(l *Lexer) {
	tok, ok, _ := l.Next()
	if !ok {
		return
	}
	for _, a := range tok.Attrs {
		use(a.Key, a.Val) // element loads copy the Attr value: clean
	}
	use(tok.Tag) // Tag/Text project owned strings: clean
}

// good: laundering Attrs with a fresh copy ends the aliasing.
func tokenLaundered(l *Lexer) []Token {
	var out []Token
	for {
		tok, ok, _ := l.Next()
		if !ok {
			return out
		}
		tok.Attrs = append([]Attr(nil), tok.Attrs...)
		out = append(out, tok)
	}
}

// bad: the view is read after the next Next call reused its buffer.
func tokenUsedAcrossNext(l *Lexer) {
	tok, _, _ := l.Next()
	tok2, _, _ := l.Next()
	use(tok.Attrs) // want `zero-copy view "tok" is used after the next Next call`
	use(tok2.Attrs)
}

// bad: returning the attrs hands the caller a buffer Next will overwrite.
func tokenAttrsReturned(l *Lexer) []Attr {
	tok, _, _ := l.Next()
	return tok.Attrs // want `a zero-copy view is returned to the caller`
}

// bad: the un-laundered token is retained in a longer-lived slice.
func tokenRetained(l *Lexer) []Token {
	var out []Token
	for {
		tok, ok, _ := l.Next()
		if !ok {
			return out
		}
		out = append(out, tok) // want `a zero-copy view is appended into a longer-lived slice`
	}
}

// bad: storing the attrs into a heap structure outlives the generation.
func tokenStored(l *Lexer) {
	tok, _, _ := l.Next()
	sink = tok.Attrs // want `a zero-copy view is stored into a heap structure`
}

// bad: a goroutine can still read the view after the generation ends.
func tokenInGoroutine(l *Lexer) {
	tok, _, _ := l.Next()
	go func() {
		use(tok.Attrs) // want `zero-copy view "tok" is captured by a goroutine`
	}()
}

// bad: the view survives through an alias.
func tokenAliasAcrossNext(l *Lexer) {
	tok, _, _ := l.Next()
	attrs := tok.Attrs
	l.Next()
	use(attrs) // want `zero-copy view "attrs" is used after the next Next call`
}

// good: an acknowledged exemption is suppressed.
func tokenAllowed(l *Lexer) []Attr {
	tok, _, _ := l.Next()
	return tok.Attrs //lint:allow viewescape fixture: deliberate escape
}

// ---- pooled buffers -------------------------------------------------------

// good: the canonical borrow/extend/lookup/return cycle.
func pooledCycle(m map[string]int) int {
	b := getKeyBuf()
	*b = append(*b, "key"...)
	n := m[string(*b)] // string(...) copies: clean
	putKeyBuf(b)
	return n
}

// good: a deferred put keeps the buffer valid for the whole function.
func pooledDeferredPut(m map[string]int) int {
	b := getKeyBuf()
	defer putKeyBuf(b)
	*b = append(*b, "key"...)
	return m[string(*b)]
}

// bad: the buffer is read after it went back to the pool.
func pooledUseAfterPut() {
	b := getKeyBuf()
	*b = append(*b, 'k')
	putKeyBuf(b)
	use(*b) // want `zero-copy view "b" is used after Put returning it to the pool`
}

// bad: a derived view dies with its source buffer.
func pooledDerivedUseAfterPut() {
	b := getKeyBuf()
	k := append(*b, 'k')
	putKeyBuf(b)
	use(k) // want `zero-copy view "k" is used after Put returning it to the pool`
}

// bad: returning the pooled buffer leaks it out of the borrow scope.
func pooledReturned() *[]byte {
	b := getKeyBuf()
	return b // want `a zero-copy view is returned to the caller`
}

// ---- TrustedTuple shared slices -------------------------------------------

// good: building tuples from a shared names slice without mutating it.
func trustedShared(vals [][]string) []Tuple {
	names := []string{"a", "b"}
	var out []Tuple
	for _, v := range vals {
		out = append(out, TrustedTuple(names, v))
	}
	return out
}

// good: rebinding to a fresh slice unfreezes the variable.
func trustedRebound() Tuple {
	names := []string{"a"}
	t := TrustedTuple(names, []string{"1"})
	names = []string{"b"} // fresh backing array: not shared
	names[0] = "c"
	return t
}

// bad: writing an element corrupts tuples already built from the slice.
func trustedMutated() Tuple {
	names := []string{"a"}
	t := TrustedTuple(names, []string{"1"})
	names[0] = "b" // want `slice "names" was handed to TrustedTuple`
	return t
}

// bad: append may write into the shared backing array.
func trustedAppended() Tuple {
	names := make([]string, 1, 8)
	t := TrustedTuple(names, []string{"1"})
	names = append(names, "b") // want `slice "names" was handed to TrustedTuple`
	return t
}
