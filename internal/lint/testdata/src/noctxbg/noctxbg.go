// Package noctxbg is the noctxbg analyzer fixture: root-context minting in
// a (simulated) request-path package.
package noctxbg

import "context"

type page struct{}

type fetcher interface {
	fetch(ctx context.Context, url string) (page, error)
}

func fetchFresh(f fetcher, url string) (page, error) {
	return f.fetch(context.Background(), url) // want `context\.Background on the request path`
}

func fetchLater(f fetcher, url string) (page, error) {
	return f.fetch(context.TODO(), url) // want `context\.TODO on the request path`
}

// Threading the caller's context is the sanctioned pattern, including
// deriving cancellable children from it.
func fetchBounded(ctx context.Context, f fetcher, url string) (page, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return f.fetch(ctx, url)
}

// exempted documents a deliberate context-free compatibility shim; the
// driver must suppress it.
func exempted(f fetcher, url string) (page, error) {
	return f.fetch(context.Background(), url) //lint:allow noctxbg context-free API compatibility
}
