// Package chanhygiene is the chanhygiene analyzer fixture: unbounded
// goroutine fan-out and unguarded channel sends, plus the bounded patterns
// the evaluation packages actually use.
package chanhygiene

import "sync"

func fetch(string) {}

// Fan-out proportional to the input: flagged.
func launchPerItem(urls []string) {
	for _, u := range urls {
		go fetch(u) // want `unbounded goroutine launch`
	}
}

// A counted loop over len(data) is the same fan-out in disguise: flagged.
func launchPerIndex(urls []string) {
	for i := 0; i < len(urls); i++ {
		go fetch(urls[i]) // want `unbounded goroutine launch`
	}
}

// A semaphore bounds the fan-out: clean.
func launchWithSemaphore(urls []string, sem chan struct{}) {
	for _, u := range urls {
		sem <- struct{}{}
		go func(u string) {
			defer func() { <-sem }()
			fetch(u)
		}(u)
	}
}

// A fixed-size worker pool is the canonical bounded pattern: clean.
func workerPool(urls []string, workers int) {
	jobs := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				fetch(u)
			}
		}()
	}
	for _, u := range urls {
		jobs <- u
	}
	close(jobs)
	wg.Wait()
}

// An unguarded loop send on an unbuffered channel deadlocks when the
// consumer stops early: flagged.
func unguardedSend(items []int) <-chan int {
	ch := make(chan int)
	go func() {
		for _, v := range items {
			ch <- v // want `unguarded send on unbuffered channel "ch"`
		}
		close(ch)
	}()
	return ch
}

// The select-guarded form the fetcher uses: clean.
func guardedSend(items []int, done <-chan struct{}) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, v := range items {
			select {
			case ch <- v:
			case <-done:
				return
			}
		}
	}()
	return ch
}

// Sends on buffered channels are bounded by construction: clean.
func bufferedSend(items []int) <-chan int {
	ch := make(chan int, len(items))
	for _, v := range items {
		ch <- v
	}
	close(ch)
	return ch
}
