package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the value-flow half of the dataflow layer: a generic forward
// worklist solver over the CFG, reaching-definition def-use chains, and the
// escape lattice (local → stored → escaped) the flow-sensitive analyzers
// share.

// Fact is one analysis's abstract state at a program point. Facts are
// treated as immutable by the solver: Transfer and Join return fresh (or
// unchanged) values.
type Fact interface{}

// FlowClient defines one forward dataflow analysis over a CFG.
type FlowClient interface {
	// Entry is the fact at function entry.
	Entry() Fact
	// Transfer applies one CFG node (statement or control expression) to a
	// fact, returning the fact after the node.
	Transfer(f Fact, n ast.Node) Fact
	// Join merges the facts of two incoming edges.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b Fact) bool
}

// FlowResult carries the solved facts: In[b] holds at block entry, Out[b]
// after the block's last node.
type FlowResult struct {
	In, Out map[*Block]Fact
}

// Forward runs the client's analysis to fixpoint and returns the per-block
// facts. Unreachable blocks have nil facts. The solver is deterministic:
// blocks are processed in index order from a sorted worklist.
func (g *CFG) Forward(c FlowClient) *FlowResult {
	res := &FlowResult{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	res.In[g.Entry] = c.Entry()
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		sort.Slice(work, func(i, j int) bool { return work[i].Index < work[j].Index })
		b := work[0]
		work = work[1:]
		inWork[b] = false

		f := res.In[b]
		for _, n := range b.Nodes {
			f = c.Transfer(f, n)
		}
		res.Out[b] = f
		for _, s := range b.Succs {
			var next Fact
			if old, ok := res.In[s]; ok {
				next = c.Join(old, f)
				if c.Equal(old, next) {
					continue
				}
			} else {
				next = f
			}
			res.In[s] = next
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return res
}

// EachFact replays the transfer function inside every reachable block,
// calling visit with the fact holding immediately BEFORE each node. This is
// how analyzers inspect individual statements after solving.
func (g *CFG) EachFact(c FlowClient, res *FlowResult, visit func(f Fact, n ast.Node)) {
	for _, b := range g.Blocks {
		f, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			visit(f, n)
			f = c.Transfer(f, n)
		}
	}
}

// ---------------------------------------------------------------------------
// Def-use chains (reaching definitions)

// DefUse holds the def-use chains of one function body: for every use of a
// variable, the set of definitions that may reach it.
type DefUse struct {
	pkg *Package
	cfg *CFG
	// Chains maps each use identifier to the definition nodes that reach
	// it. A nil entry means the variable's value may come from outside the
	// body (parameter, captured variable, package-level state).
	Chains map[*ast.Ident][]ast.Node
	// Defs maps each variable to all its definition nodes in the body.
	Defs map[*types.Var][]ast.Node
}

// duFact maps variable → set of reaching def nodes. The special def node
// value nil marks "defined outside the body".
type duFact map[*types.Var]map[ast.Node]bool

func (f duFact) clone() duFact {
	out := make(duFact, len(f))
	for v, defs := range f {
		ds := make(map[ast.Node]bool, len(defs))
		for d := range defs {
			ds[d] = true
		}
		out[v] = ds
	}
	return out
}

type duClient struct{ pkg *Package }

func (c duClient) Entry() Fact { return duFact{} }

func (c duClient) Join(a, b Fact) Fact {
	fa, fb := a.(duFact), b.(duFact)
	out := fa.clone()
	for v, defs := range fb {
		ds := out[v]
		if ds == nil {
			ds = map[ast.Node]bool{}
			out[v] = ds
		}
		for d := range defs {
			ds[d] = true
		}
	}
	return out
}

func (c duClient) Equal(a, b Fact) bool {
	fa, fb := a.(duFact), b.(duFact)
	if len(fa) != len(fb) {
		return false
	}
	for v, da := range fa {
		db, ok := fb[v]
		if !ok || len(da) != len(db) {
			return false
		}
		for d := range da {
			if !db[d] {
				return false
			}
		}
	}
	return true
}

func (c duClient) Transfer(f Fact, n ast.Node) Fact {
	df := f.(duFact)
	vars := definedVars(c.pkg, n)
	if len(vars) == 0 {
		return df
	}
	out := df.clone()
	for _, v := range vars {
		out[v] = map[ast.Node]bool{n: true}
	}
	return out
}

// definedVars returns the variables a node (re)defines.
func definedVars(pkg *Package, n ast.Node) []*types.Var {
	var out []*types.Var
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			out = append(out, v)
		} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			out = append(out, v)
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			addIdent(lhs)
		}
	case *ast.RangeStmt:
		addIdent(s.Key)
		if s.Value != nil {
			addIdent(s.Value)
		}
	case *ast.IncDecStmt:
		addIdent(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						addIdent(name)
					}
				}
			}
		}
	case *ast.TypeSwitchStmt:
		// handled via its Assign statement placed in clause bodies
	}
	return out
}

// BuildDefUse computes the def-use chains of fn's body.
func BuildDefUse(pkg *Package, body *ast.BlockStmt) *DefUse {
	cfg := BuildCFG(body)
	client := duClient{pkg: pkg}
	res := cfg.Forward(client)
	du := &DefUse{
		pkg:    pkg,
		cfg:    cfg,
		Chains: map[*ast.Ident][]ast.Node{},
		Defs:   map[*types.Var][]ast.Node{},
	}
	// Collect all defs.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			for _, v := range definedVars(pkg, n) {
				du.Defs[v] = append(du.Defs[v], n)
			}
		}
	}
	// Walk every reachable node and link its use identifiers to the defs
	// reaching the node.
	cfg.EachFact(client, res, func(f Fact, n ast.Node) {
		df := f.(duFact)
		defined := map[*ast.Ident]bool{}
		// LHS identifiers of a define (:=) are defs, not uses.
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					defined[id] = true
				}
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			id, ok := m.(*ast.Ident)
			if !ok || defined[id] {
				return true
			}
			v, ok := pkg.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if defs, ok := df[v]; ok {
				nodes := make([]ast.Node, 0, len(defs))
				for d := range defs {
					nodes = append(nodes, d)
				}
				sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
				du.Chains[id] = nodes
			} else {
				du.Chains[id] = nil // from outside the body
			}
			return true
		})
	})
	return du
}

// ---------------------------------------------------------------------------
// Escape lattice

// EscapeClass classifies how far a local variable's value travels.
type EscapeClass int

const (
	// EscLocal values never leave the function's frame.
	EscLocal EscapeClass = iota
	// EscStored values are written into a heap structure reachable from a
	// local variable (field, slice element, map entry) but the structure
	// itself stays local as far as this function can see.
	EscStored
	// EscEscaped values leave the function: returned, assigned through a
	// parameter/receiver/global, sent on a channel, or captured by a
	// function literal that itself escapes (go/defer/stored).
	EscEscaped
)

func (c EscapeClass) String() string {
	switch c {
	case EscLocal:
		return "local"
	case EscStored:
		return "stored"
	default:
		return "escaped"
	}
}

// EscapeInfo is one variable's escape classification with the nodes that
// raised it above local.
type EscapeInfo struct {
	Class EscapeClass
	// Sites are the nodes where the variable was stored or escaped.
	Sites []ast.Node
}

// basicValued reports whether an expression's type is a basic value (int,
// bool, float, string): copying it cannot alias the source's memory.
func basicValued(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return basic
}

// Escapes computes the escape class of every local variable of a function
// body, intra-procedurally and flow-insensitively: stores build edges in a
// small alias graph (v stored into w), and a variable escapes when its
// value can reach a return, a channel send, a non-local store target, or an
// escaping closure. Passing a variable as a plain call argument does NOT
// escape it here — visible retention is the stores and returns this
// function performs; analyzers that distrust callees add their own rules.
func Escapes(pkg *Package, fnType *ast.FuncType, body *ast.BlockStmt) map[*types.Var]*EscapeInfo {
	out := map[*types.Var]*EscapeInfo{}
	get := func(v *types.Var) *EscapeInfo {
		e := out[v]
		if e == nil {
			e = &EscapeInfo{Class: EscLocal}
			out[v] = e
		}
		return e
	}
	// storedInto[v] = set of vars whose structures v was stored into.
	storedInto := map[*types.Var]map[*types.Var]bool{}
	raise := func(v *types.Var, c EscapeClass, site ast.Node) {
		e := get(v)
		if c > e.Class {
			e.Class = c
		}
		e.Sites = append(e.Sites, site)
	}
	// params marks parameters and receivers: storing into their structure
	// escapes the stored value.
	params := map[*types.Var]bool{}
	if fnType != nil && fnType.Params != nil {
		for _, f := range fnType.Params.List {
			for _, name := range f.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}

	rootVar := func(e ast.Expr) *types.Var {
		obj := rootObject(pkg, e)
		if v, ok := obj.(*types.Var); ok {
			return v
		}
		return nil
	}

	// escapingFuncLits are literals used in go/defer statements or stored;
	// their captured variables escape. Immediately-invoked or locally-
	// called literals keep captures local.
	escapingLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				escapingLits[fl] = true
			}
		case *ast.DeferStmt:
			if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				escapingLits[fl] = true
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if fl, ok := ast.Unparen(r).(*ast.FuncLit); ok {
					escapingLits[fl] = true
				}
			}
		}
		return true
	})

	litStack := []*ast.FuncLit{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, s)
			ast.Inspect(s.Body, walk)
			litStack = litStack[:len(litStack)-1]
			return false
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if basicValued(pkg, r) {
					// A basic-typed result (int, bool, string) is a value
					// copy: returning *b.v does not leak b.
					continue
				}
				if v := rootVar(r); v != nil {
					raise(v, EscEscaped, s)
				}
			}
		case *ast.SendStmt:
			if !basicValued(pkg, s.Value) {
				if v := rootVar(s.Value); v != nil {
					raise(v, EscEscaped, s)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				rv := (*types.Var)(nil)
				if rhs != nil {
					rv = rootVar(rhs)
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.Ident:
					// plain rebinding: no escape
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					lv := rootVar(lhs)
					if rv == nil {
						continue
					}
					switch {
					case lv == nil:
						// store through a global or complex expression
						raise(rv, EscEscaped, s)
					case params[lv] || get(lv).Class == EscEscaped:
						raise(rv, EscEscaped, s)
					default:
						raise(rv, EscStored, s)
						set := storedInto[rv]
						if set == nil {
							set = map[*types.Var]bool{}
							storedInto[rv] = set
						}
						set[lv] = true
					}
				}
			}
		case *ast.Ident:
			// A variable declared outside an escaping literal but used
			// inside it is captured and escapes with the closure.
			for _, lit := range litStack {
				if !escapingLits[lit] {
					continue
				}
				if v, ok := pkg.Info.Uses[s].(*types.Var); ok && !v.IsField() && v.Pos() < lit.Pos() {
					raise(v, EscEscaped, s)
					break
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	// Propagate: if v was stored into w and w later escapes, v escapes.
	for changed := true; changed; {
		changed = false
		for v, targets := range storedInto {
			if get(v).Class == EscEscaped {
				continue
			}
			for w := range targets {
				if params[w] || get(w).Class == EscEscaped {
					get(v).Class = EscEscaped
					changed = true
					break
				}
			}
		}
	}
	return out
}
