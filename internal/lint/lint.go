// Package lint is a small static-analysis framework for the engine's own
// invariants, in the spirit of golang.org/x/tools/go/analysis but built only
// on the standard library's go/ast and go/types (the repository carries no
// module dependencies). It ships ten analyzers:
//
//   - fetchgate: every page access must flow through the counted fetcher in
//     internal/site, so ExecStats page counts stay sound;
//   - nowallclock: no ambient wall-clock reads in the cost-measured packages;
//   - chanhygiene: no unbounded goroutine fan-out or unguarded channel sends
//     in the concurrent evaluation packages;
//   - noprintln: no writes to the process's stdout/stderr from library
//     packages;
//   - noctxbg: no context.Background/TODO in request-path packages, so
//     request deadlines and cancellation propagate to every page access;
//   - poolreset: sync.Pool users on the request path must reset pooled
//     objects before Put, so no request's data leaks into the next;
//   - viewescape: zero-copy views (lexer token attrs, pooled buffers,
//     TrustedTuple shared slices) must not outlive their generation —
//     flow-checked against the next Next/Put call, stores, and returns;
//   - lostcancel: every context cancel function on the request path is
//     called (or deferred, or handed off) on all paths to return;
//   - mutexguard: fields annotated "// guarded by mu" are only accessed
//     with the mutex held, flow-checked through Lock/Unlock/defer paths;
//   - statsexhaustive: Add/Merge methods on Stats/Counters structs mention
//     every field, so new counters can't be silently dropped from merges.
//
// The last four are flow-sensitive: they run on a per-function basic-block
// CFG (cfg.go) with a forward dataflow solver, def-use chains, and an
// escape lattice (dataflow.go) shared by all analyzers.
//
// Intentional exemptions are documented in the source with a
//
//	//lint:allow <analyzer> [reason]
//
// comment on the offending line or the line directly above it; the driver
// suppresses matching diagnostics, so every exemption is visible and
// greppable at the call site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools go/analysis shape.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow comments.
	Name string
	// Doc is the one-paragraph description shown by ulixes-vet -list.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass)
	// IncludeTests makes the analyzer visit _test.go files too. Analyzers
	// protecting runtime invariants of library code leave it false.
	IncludeTests bool
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Files are the syntax trees the analyzer should visit (test files
	// already filtered out unless the analyzer opted in).
	Files []*ast.File

	findings *[]Finding
}

// Reportf records a diagnostic at a position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzers returns the full analyzer suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FetchGate, NoWallClock, ChanHygiene, NoPrintln, NoCtxBackground,
		PoolReset, ViewEscape, LostCancel, MutexGuard, StatsExhaustive,
	}
}

// Run applies the analyzers to the packages and returns the surviving
// findings, sorted by position. Findings on lines carrying (or directly
// below) a matching //lint:allow comment are suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			files := pkg.Files
			if !a.IncludeTests {
				files = nil
				for _, f := range pkg.Files {
					if !pkg.TestFiles[f] {
						files = append(files, f)
					}
				}
			}
			var found []Finding
			pass := &Pass{Analyzer: a, Pkg: pkg, Files: files, findings: &found}
			a.Run(pass)
			for _, f := range found {
				if !allows.allowed(a.Name, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowRe matches the exemption directive: "lint:allow name1,name2 reason".
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,-]+)`)

// allowSet maps file → line → analyzer names exempted at that line.
type allowSet map[string]map[int][]string

func (s allowSet) allowed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line and on the line
	// directly below it (comment-above style).
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectAllows indexes every //lint:allow directive of a package.
func collectAllows(pkg *Package) allowSet {
	out := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
	return out
}

// fixturePackage reports whether a package path is a linttest fixture.
// Analyzers scoped to specific engine packages also fire inside fixtures so
// their behavior stays testable.
func fixturePackage(path string) bool {
	return strings.Contains(path, "internal/lint/testdata/")
}

// pathIsOneOf reports whether the package path matches one of the listed
// import paths exactly.
func pathIsOneOf(path string, list ...string) bool {
	for _, p := range list {
		if path == p {
			return true
		}
	}
	return false
}
