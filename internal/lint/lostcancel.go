package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cancelPathPkgs are the packages where a leaked cancel func leaks a
// goroutine (or an unbounded context subtree) per request: the request-path
// packages plus the query server.
var cancelPathPkgs = append([]string{
	"ulixes/cmd/ulixesd",
}, requestPathPkgs...)

// ctxCancelFuncs are the context constructors whose CancelFunc result must
// be called on every path.
var ctxCancelFuncs = map[string]bool{
	"WithCancel":   true,
	"WithTimeout":  true,
	"WithDeadline": true,
}

// LostCancel verifies that every context cancel function obtained on the
// request path is called (or deferred, or handed off) on all paths to every
// function exit. A dropped cancel leaks the context's timer goroutine and —
// for guard/hedged fetches and pipelined evaluation — the goroutines
// blocked on that context, unboundedly under load.
var LostCancel = &Analyzer{
	Name: "lostcancel",
	Doc: "the cancel function returned by context.WithCancel/WithTimeout/\n" +
		"WithDeadline must be called on every path in request-path packages\n" +
		"(call it, defer it, return it, or store it for a documented later\n" +
		"call); a lost cancel leaks the context's resources and any goroutine\n" +
		"hedged or pipelined work parked on it",
	Run: runLostCancel,
}

func runLostCancel(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, cancelPathPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			_, body := enclosingFunc(n)
			if body == nil {
				return true
			}
			checkLostCancel(pass, body)
			return true
		})
	}
}

// cancelFact maps each cancel variable to whether it has been handled
// (called, deferred, escaped) on the current path.
type cancelFact map[*types.Var]bool

func (f cancelFact) clone() cancelFact {
	out := make(cancelFact, len(f))
	for v, h := range f {
		out[v] = h
	}
	return out
}

type cancelClient struct {
	pass *Pass
	body *ast.BlockStmt
	// defs maps cancel vars to their WithCancel call position (report site).
	defs map[*types.Var]token.Pos
}

func (c *cancelClient) Entry() Fact { return cancelFact{} }

func (c *cancelClient) Join(a, b Fact) Fact {
	fa, fb := a.(cancelFact), b.(cancelFact)
	out := fa.clone()
	for v, h := range fb {
		if have, ok := out[v]; ok {
			out[v] = have && h // handled only when handled on both paths
		} else {
			out[v] = h
		}
	}
	// A var known on one path only: keep the known value (the other path
	// predates its definition).
	return out
}

func (c *cancelClient) Equal(a, b Fact) bool {
	fa, fb := a.(cancelFact), b.(cancelFact)
	if len(fa) != len(fb) {
		return false
	}
	for v, h := range fa {
		if hb, ok := fb[v]; !ok || hb != h {
			return false
		}
	}
	return true
}

func (c *cancelClient) Transfer(f Fact, n ast.Node) Fact {
	cf := f.(cancelFact)
	out := cf
	cloned := false
	mut := func() cancelFact {
		if !cloned {
			out = cf.clone()
			cloned = true
		}
		return out
	}

	// New cancel definitions: ctx, cancel := context.WithCancel(...)
	// (the discarded-cancel case, ctx, _ :=, is reported by a one-shot scan
	// in checkLostCancel — Transfer runs to fixpoint and must not report).
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isCtxCancelCall(c.pass.Pkg, call) {
			if len(as.Lhs) == 2 {
				if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					if v := identVar(c.pass.Pkg, id); v != nil {
						mut()[v] = false
						c.defs[v] = call.Pos()
					}
				}
			}
		}
	}

	// Handling evidence anywhere in the node: a call of the cancel var, a
	// defer of it, returning it, storing it, or passing it along. A
	// RangeStmt node carries its whole body, but the body statements live in
	// their own CFG blocks (a cancel() inside the body must not count as
	// handled at the head — the body may run zero times).
	scan := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		scan = ast.Node(rs.X)
	}
	ast.Inspect(scan, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			// Direct call: cancel()
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if v := identVar(c.pass.Pkg, id); v != nil {
					if _, tracked := cf[v]; tracked {
						mut()[v] = true
					}
				}
			}
			// Passed as an argument: the callee owns it now.
			for _, arg := range x.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v := identVar(c.pass.Pkg, id); v != nil {
						if _, tracked := cf[v]; tracked {
							mut()[v] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if v := identVar(c.pass.Pkg, id); v != nil {
						if _, tracked := cf[v]; tracked {
							mut()[v] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Stored (s.cancel = cancel; m[k] = cancel): handed off.
			for i, rhs := range x.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := identVar(c.pass.Pkg, id)
				if v == nil {
					continue
				}
				if _, tracked := cf[v]; !tracked {
					continue
				}
				if i < len(x.Lhs) {
					if _, isIdent := ast.Unparen(x.Lhs[i]).(*ast.Ident); !isIdent {
						mut()[v] = true
					}
				}
			}
		case *ast.FuncLit:
			// A closure that uses the cancel var owns a reference; the
			// closure's fate (go, defer, stored) decides when it runs.
			ast.Inspect(x.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					if v := identVar(c.pass.Pkg, id); v != nil {
						if _, tracked := cf[v]; tracked {
							mut()[v] = true
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return out
}

// checkLostCancel analyzes one function body.
func checkLostCancel(pass *Pass, body *ast.BlockStmt) {
	// Fast path: no cancel constructor in this body.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCtxCancelCall(pass.Pkg, call) {
			found = true
		}
		// Don't descend into nested literals: they are analyzed as their
		// own scope by the enclosing walk... except the constructor search
		// must still see them to skip cheaply; keep descending.
		return !found
	})
	if !found {
		return
	}

	// One-shot scan: a cancel func assigned to the blank identifier can
	// never be called. Nested literals are checked as their own scope.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCtxCancelCall(pass.Pkg, call) {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "the cancel function of context.%s is discarded; a context that can never be canceled leaks its resources", ctxCallName(pass.Pkg, call))
		}
		return true
	})

	cfg := BuildCFG(body)
	client := &cancelClient{pass: pass, body: body, defs: map[*types.Var]token.Pos{}}
	res := cfg.Forward(client)

	// Defers run at exit: a deferred cancel() handles every path that
	// reaches Exit after the defer was registered. The Transfer already
	// treats the defer's call expression as handling evidence (the
	// DeferStmt node contains the call), so nothing extra is needed here.

	// Report any cancel var that reaches Exit unhandled.
	exitFact, ok := res.In[cfg.Exit]
	if !ok {
		return
	}
	ef := exitFact.(cancelFact)
	reported := map[*types.Var]bool{}
	for v, handled := range ef {
		if !handled && !reported[v] {
			reported[v] = true
			pass.Reportf(client.defs[v], "cancel function %q is not called on every path to return; call it, defer it, or hand it off so the context's resources are released", v.Name())
		}
	}
}

// isCtxCancelCall reports whether call is context.WithCancel/Timeout/Deadline.
func isCtxCancelCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	if obj == nil || obj.Pkg() == nil || isMethod(obj) {
		return false
	}
	return obj.Pkg().Path() == "context" && ctxCancelFuncs[obj.Name()]
}

func ctxCallName(pkg *Package, call *ast.CallExpr) string {
	if obj := calleeObject(pkg, call); obj != nil {
		return obj.Name()
	}
	return "WithCancel"
}

// identVar resolves an identifier to its variable object.
func identVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}
