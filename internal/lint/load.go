package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked analysis unit: a package's sources
// (plus its in-package test files), or the external _test package of a
// directory.
type Package struct {
	// PkgPath is the import path ("ulixes/internal/nalg", with a "_test"
	// suffix for external test packages).
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	// TestFiles marks which syntax trees come from _test.go files.
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
	// Errors holds parse and type errors; analyzers still run on what was
	// loaded, like go vet does.
	Errors []error
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load lists the packages matching the patterns (relative to dir), compiles
// export data for their dependencies via the go tool, and type-checks every
// matched package from source — including in-package and external test
// files. It is the loading half of a go/analysis driver, implemented on the
// standard library alone.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		lp := p
		if lp.Export != "" {
			if _, ok := exports[lp.ImportPath]; !ok {
				exports[lp.ImportPath] = lp.Export
			}
			// Test variants "p [q.test]" also satisfy plain imports of p.
			if i := strings.IndexByte(lp.ImportPath, ' '); i > 0 {
				base := lp.ImportPath[:i]
				if _, ok := exports[base]; !ok {
					exports[base] = lp.Export
				}
			}
		}
		if lp.DepOnly || lp.Standard || lp.ForTest != "" ||
			strings.HasSuffix(lp.ImportPath, ".test") || lp.Dir == "" {
			continue
		}
		roots = append(roots, &lp)
	}
	if len(roots) == 0 {
		return nil, errors.New("lint: no packages matched")
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, r := range roots {
		if r.Name == "" {
			if r.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", r.ImportPath, r.Error.Err)
			}
			continue
		}
		// Unit 1: package sources + in-package test files.
		pkg := typecheckUnit(fset, imp, r.ImportPath, r.Dir,
			append(append([]string{}, r.GoFiles...), r.TestGoFiles...),
			len(r.GoFiles))
		pkgs = append(pkgs, pkg)
		// Unit 2: the external test package, if any.
		if len(r.XTestGoFiles) > 0 {
			pkgs = append(pkgs, typecheckUnit(fset, imp, r.ImportPath+"_test", r.Dir, r.XTestGoFiles, 0))
		}
	}
	return pkgs, nil
}

// typecheckUnit parses and type-checks one unit. The first nonTest files are
// regular sources; the rest are test files.
func typecheckUnit(fset *token.FileSet, imp types.Importer, path, dir string, files []string, nonTest int) *Package {
	pkg := &Package{
		PkgPath:   path,
		Fset:      fset,
		TestFiles: make(map[*ast.File]bool),
	}
	for i, name := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, af)
		pkg.TestFiles[af] = i >= nonTest
		if pkg.Name == "" {
			pkg.Name = af.Name.Name
		}
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Types = tpkg
	return pkg
}
