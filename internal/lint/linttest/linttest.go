// Package linttest is a tiny analysistest: it runs one analyzer over a
// fixture package under testdata/src and compares the diagnostics against
// `// want "regexp"` comments in the fixture sources.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ulixes/internal/lint"
)

// wantRe extracts the expectation regexps of one comment: one or more
// quoted or backquoted strings after "want".
var wantRe = regexp.MustCompile("want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<fixture> relative to the test's working directory,
// applies the analyzer, and reports mismatches between its findings and the
// fixture's want comments. The //lint:allow suppression runs exactly as in
// the real driver, so fixtures can assert exemptions too.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	pkgs, err := lint.Load(".", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", fixture, err)
	}
	var expects []*expectation
	for _, pkg := range pkgs {
		for _, err := range pkg.Errors {
			t.Errorf("fixture %q does not type-check: %v", fixture, err)
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, arg := range wantArgRe.FindAllString(m[1], -1) {
						pat, err := unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	findings := lint.Run(pkgs, []*lint.Analyzer{a})
	for _, f := range findings {
		if exp := match(expects, f); exp != nil {
			exp.hit = true
		} else {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	for _, exp := range expects {
		if !exp.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", exp.file, exp.line, exp.re)
		}
	}
}

func match(expects []*expectation, f lint.Finding) *expectation {
	for _, exp := range expects {
		if !exp.hit && exp.file == f.Pos.Filename && exp.line == f.Pos.Line && exp.re.MatchString(f.Message) {
			return exp
		}
	}
	return nil
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("unquoting %s: %v", s, err)
	}
	return out, nil
}
