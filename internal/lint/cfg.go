package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// This file is the control-flow half of the lint package's dataflow layer:
// a per-function basic-block CFG over go/ast, built with the standard
// library alone. Analyzers that need flow sensitivity (viewescape,
// lostcancel, mutexguard) run a forward dataflow pass over it via
// CFG.Forward (see dataflow.go) instead of re-implementing control flow
// with ad-hoc AST walks.
//
// The construction is deliberately statement-granular: each Block holds the
// ast.Nodes executed in order (plain statements, plus the condition
// expressions of if/for and the tag of switch), and edges follow Go's
// control constructs — if/else, for (init/cond/post/back edge), range,
// switch with fallthrough, type switch, select, labeled break/continue,
// goto, and early returns. Function literals are NOT inlined: a FuncLit is
// an opaque value in its enclosing function's CFG, and analyzers decide how
// to treat captures (see Escapes in dataflow.go).

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Comment labels the block's role for debugging ("for.head", "if.then").
	Comment string
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is a synthetic empty block every return (and the fall-off end of
	// the body) leads to.
	Exit *Block
	// Defers are the defer statements of the body in source order. Their
	// calls run at every exit; analyzers that care (lostcancel, mutexguard)
	// apply them when a path reaches Exit.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Comment: "exit"}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Fall off the end of the body.
	b.jump(b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// String renders the CFG for debugging and tests.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", blk.Index, blk.Comment)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

type labelInfo struct {
	target *Block // goto target (start of the labeled statement)
	// brk/cont are the break/continue targets while the labeled loop or
	// switch is being built.
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil while building unreachable code

	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo

	// fallthroughTo is the next case body while building switch clauses.
	fallthroughTo *Block
	// pendingLabel, when non-nil, adopts the break/continue targets of the
	// next loop or switch pushed (labeled-statement resolution).
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Comment: comment}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge from the current block to dst (no-op when unreachable).
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock makes dst the current block.
func (b *cfgBuilder) startBlock(dst *Block) { b.cur = dst }

// add appends a node to the current block, starting a fresh (unreachable)
// block when control cannot arrive here.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		head.Succs = append(head.Succs, then)
		b.startBlock(then)
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			head.Succs = append(head.Succs, els)
			b.startBlock(els)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			head.Succs = append(head.Succs, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, body, after)
		} else {
			head.Succs = append(head.Succs, body)
		}
		b.pushLoop(after, post, s)
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(post)
		if s.Post != nil {
			b.startBlock(post)
			b.stmt(s.Post)
			b.jump(head)
		}
		b.popLoop()
		b.startBlock(after)

	case *ast.RangeStmt:
		// The RangeStmt node sits in the loop head: per iteration it
		// (re)defines Key/Value and uses X, which is what iteration-
		// sensitive analyses need to see on the back edge.
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.jump(head)
		b.startBlock(head)
		b.add(s)
		head.Succs = append(head.Succs, body, after)
		b.pushLoop(after, head, s)
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(head)
		b.popLoop()
		b.startBlock(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The guard (x := y.(type)) re-defines x per clause; represent it
		// once in the head for def purposes.
		b.switchClauses(s.Body.List, s.Assign)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock("select.head")
			b.cur = head
		}
		after := b.newBlock("select.after")
		b.pushBreak(after)
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			head.Succs = append(head.Succs, blk)
			b.startBlock(blk)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			head.Succs = append(head.Succs, after)
		}
		b.popBreak()
		b.cur = nil
		b.startBlock(after)

	case *ast.LabeledStmt:
		// A labeled statement is a goto target; loops/switches under it
		// resolve labeled break/continue through b.labels.
		target := b.newBlock("label." + s.Label.Name)
		b.jump(target)
		b.startBlock(target)
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		li.target = target
		b.labeledStmt(s.Label.Name, s.Stmt)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	default:
		// Plain statements: assignments, declarations, expression
		// statements, go, send, incdec, empty.
		if s != nil {
			if _, ok := s.(*ast.EmptyStmt); !ok {
				b.add(s)
			}
		}
	}
}

// labeledStmt builds s with label resolution for break/continue.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	li := b.labels[label]
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Record the break/continue targets as the inner statement pushes
		// them: observe the loop's own stack entries via a callback-free
		// trick — build the statement, then fix the label entry inside
		// pushLoop/pushBreak using pendingLabel.
		b.pendingLabel = li
		b.stmt(s)
		b.pendingLabel = nil
	default:
		b.stmt(s)
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, _ ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreak(brk *Block) {
	b.breaks = append(b.breaks, brk)
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) popBreak() { b.breaks = b.breaks[:len(b.breaks)-1] }

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.brk != nil {
				b.jump(li.brk)
				return
			}
		}
		if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
			return
		}
		b.cur = nil
	case "continue":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.cont != nil {
				b.jump(li.cont)
				return
			}
		}
		if n := len(b.continues); n > 0 {
			b.jump(b.continues[n-1])
			return
		}
		b.cur = nil
	case "goto":
		if s.Label != nil {
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{}
				b.labels[s.Label.Name] = li
			}
			if li.target == nil {
				// Forward goto: create the target now; the LabeledStmt
				// will adopt it when reached.
				li.target = b.newBlock("label." + s.Label.Name)
			}
			b.jump(li.target)
			return
		}
		b.cur = nil
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
		b.cur = nil
	}
}

// switchClauses builds the clause bodies of a switch or type switch.
// guard, when non-nil, is the type-switch assign statement, represented at
// the top of each clause body (it defines the clause variable).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, guard ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.cur = head
	}
	after := b.newBlock("switch.after")
	b.pushBreak(after)

	// Pre-create the body blocks so fallthrough can target the next one.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock("case.body")
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		head.Succs = append(head.Succs, bodies[i])
		b.startBlock(bodies[i])
		for _, e := range cc.List {
			b.add(e)
		}
		if guard != nil {
			b.add(guard)
		}
		prevFall := b.fallthroughTo
		if i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = prevFall
		b.jump(after)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.popBreak()
	b.cur = nil
	b.startBlock(after)
}
