package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedPkgs are the packages whose shared state carries "guarded by"
// annotations: the cross-query page store, the site-health guard, the
// prepared-plan cache, the materialized-view store, the ADM layer, the
// view-answering layer (rewriter, workload recorder, selector), and the
// query server's aggregate counters.
var guardedPkgs = []string{
	"ulixes/internal/pagecache",
	"ulixes/internal/guard",
	"ulixes/internal/plancache",
	"ulixes/internal/matview",
	"ulixes/internal/adm",
	"ulixes/internal/vanswer",
	"ulixes/internal/workload",
	"ulixes/internal/vselect",
	"ulixes/internal/changefeed",
	"ulixes/internal/overload",
	"ulixes/internal/standing",
	"ulixes/cmd/ulixesd",
}

// guardedByRe extracts the mutex name from a field's doc or line comment:
// "guarded by mu" names a sibling field; "guarded by Guard.mu" names a
// mutex on another struct (the access then requires any held lock of that
// field name, the cross-object case).
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*\.)?([A-Za-z_][A-Za-z0-9_]*)`)

// MutexGuard enforces lock discipline on annotated fields: a field whose
// declaration carries a "// guarded by mu" comment may only be read or
// written while the named mutex is held, checked flow-sensitively through
// Lock/Unlock/defer-Unlock paths. Functions whose name ends in "Locked"
// declare the repo's caller-holds-the-lock convention and start in the
// held state.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: "fields annotated \"// guarded by mu\" must only be accessed with that\n" +
		"mutex held, flow-checked through Lock/Unlock and defer paths; helper\n" +
		"functions called with the lock held follow the *Locked naming\n" +
		"convention (deliberate lock-free access carries //lint:allow mutexguard)",
	Run: runMutexGuard,
}

// guardedField describes one annotated field.
type guardedField struct {
	// mutexField is the sibling mutex field name ("mu").
	mutexField string
	// crossType, when non-empty, names the struct owning the mutex for
	// cross-object annotations ("Guard.mu"): any held lock spelled
	// <var>.<mutexField> where <var> has that type satisfies the access.
	crossType string
}

func runMutexGuard(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, guardedPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, body := enclosingFunc(n)
			if body == nil {
				return true
			}
			if fd, ok := fn.(*ast.FuncDecl); ok {
				checkMutexGuard(pass, fd, body, guarded)
				return true
			}
			// Function literals inherit no lock state; analyze standalone
			// only when they are goroutine bodies etc. — the enclosing
			// FuncDecl pass treats literals opaquely, so analyze each
			// literal pessimistically (locks must be taken inside).
			if _, ok := fn.(*ast.FuncLit); ok {
				checkMutexGuard(pass, nil, body, guarded)
				return true
			}
			return true
		})
	}
}

// collectGuardedFields finds the annotated fields of a package's structs.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	out := map[*types.Var]guardedField{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				gf, ok := guardAnnotation(f)
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok {
						out[v] = gf
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(f *ast.Field) (guardedField, bool) {
	var texts []string
	if f.Doc != nil {
		texts = append(texts, f.Doc.Text())
	}
	if f.Comment != nil {
		texts = append(texts, f.Comment.Text())
	}
	for _, t := range texts {
		if m := guardedByRe.FindStringSubmatch(t); m != nil {
			return guardedField{
				mutexField: m[2],
				crossType:  strings.TrimSuffix(m[1], "."),
			}, true
		}
	}
	return guardedField{}, false
}

// lockFact is the set of held locks. Keys identify a lock as
// (root object, mutex field name); the root object is nil for package-level
// mutexes.
type lockKey struct {
	root  types.Object
	field string // "" when the mutex is the root object itself
}

type lockFact map[lockKey]bool

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

type lockClient struct {
	pass *Pass
}

func (c *lockClient) Entry() Fact { return lockFact{} }

func (c *lockClient) Join(a, b Fact) Fact {
	fa, fb := a.(lockFact), b.(lockFact)
	// Intersection: a lock is held after a join only when held on both
	// incoming paths.
	out := lockFact{}
	for k := range fa {
		if fb[k] {
			out[k] = true
		}
	}
	return out
}

func (c *lockClient) Equal(a, b Fact) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

func (c *lockClient) Transfer(f Fact, n ast.Node) Fact {
	lf := f.(lockFact)
	out := lf
	cloned := false
	mut := func() lockFact {
		if !cloned {
			out = lf.clone()
			cloned = true
		}
		return out
	}
	// A RangeStmt node carries its whole body, but the body statements live
	// in their own CFG blocks — only the range expression executes here.
	scan := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		scan = rs.X
	}
	ast.Inspect(scan, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // literals are their own scope
		}
		// A defer of Unlock does not release here; it releases at return,
		// after which no guarded access can occur. Skip the deferred call
		// so the lock stays held for the rest of the function.
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, ok := mutexKey(c.pass.Pkg, sel.X)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock":
			mut()[key] = true
		case "Unlock", "RUnlock":
			delete(mut(), key)
		}
		return true
	})
	return out
}

// mutexKey resolves the receiver expression of a Lock/Unlock call ("c.mu",
// "mu") to a lock key.
func mutexKey(pkg *Package, recv ast.Expr) (lockKey, bool) {
	switch x := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			return lockKey{}, false
		}
		return lockKey{root: obj}, true
	case *ast.SelectorExpr:
		root := rootObject(pkg, x.X)
		if root == nil {
			return lockKey{}, false
		}
		return lockKey{root: root, field: x.Sel.Name}, true
	}
	return lockKey{}, false
}

// checkMutexGuard flow-checks one function body.
func checkMutexGuard(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt, guarded map[*types.Var]guardedField) {
	// Does the body touch any guarded field at all?
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if fobj := selectedField(pass.Pkg, sel); fobj != nil {
				if _, ok := guarded[fobj]; ok {
					touches = true
				}
			}
		}
		return true
	})
	if !touches {
		return
	}

	// The *Locked suffix convention: the caller holds the lock, so every
	// guarded access in this function is sanctioned.
	if fd != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}

	cfg := BuildCFG(body)
	client := &lockClient{pass: pass}
	res := cfg.Forward(client)

	var fnType *ast.FuncType
	if fd != nil {
		fnType = fd.Type
	}
	esc := Escapes(pass.Pkg, fnType, body)

	reported := map[ast.Node]bool{}
	cfg.EachFact(client, res, func(f Fact, n ast.Node) {
		lf := f.(lockFact)
		// Within one statement, Lock() may precede the access (e.g.
		// "c.mu.Lock(); return c.stats" split across nodes is fine, but
		// "func() { c.mu.Lock(); x := c.stats; ... }" in one node list is
		// conservative). Walk the node; on seeing a Lock call, update a
		// local copy so accesses after it in the same statement pass.
		local := lf.clone()
		walk := n
		if rs, ok := n.(*ast.RangeStmt); ok {
			// The body's statements are checked in their own blocks; only
			// the range expression executes at this node.
			walk = ast.Node(rs.X)
		}
		ast.Inspect(walk, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if key, ok := mutexKey(pass.Pkg, sel.X); ok {
						switch sel.Sel.Name {
						case "Lock", "RLock", "TryLock":
							local[key] = true
						case "Unlock", "RUnlock":
							delete(local, key)
						}
					}
				}
			}
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fobj := selectedField(pass.Pkg, sel)
			if fobj == nil {
				return true
			}
			gf, ok := guarded[fobj]
			if !ok || reported[m] {
				return true
			}
			if guardSatisfied(pass.Pkg, body, sel, gf, local, esc) {
				return true
			}
			reported[m] = true
			pass.Reportf(sel.Sel.Pos(), "field %q (guarded by %s) accessed without holding the mutex; lock it, or mark the helper *Locked if the caller holds it", fobj.Name(), gf.mutexField)
			return true
		})
	})
}

// selectedField resolves a selector to the struct field object it reads or
// writes, or nil for method selections and package qualifiers.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// guardSatisfied reports whether an access to a guarded field is sanctioned
// by the current lock set.
func guardSatisfied(pkg *Package, body *ast.BlockStmt, sel *ast.SelectorExpr, gf guardedField, locks lockFact, esc map[*types.Var]*EscapeInfo) bool {
	root := rootObject(pkg, sel.X)
	if gf.crossType != "" {
		// Cross-object annotation ("guarded by Guard.mu"): any held lock
		// of that field name on a variable of the named type satisfies it.
		for k := range locks {
			if k.field != gf.mutexField || k.root == nil {
				continue
			}
			if named := namedTypeOf(k.root.Type()); named == gf.crossType {
				return true
			}
		}
		return false
	}
	// Sibling annotation: the access root's own mutex must be held.
	if root != nil && locks[lockKey{root: root, field: gf.mutexField}] {
		return true
	}
	// Construction-time initialization: an object built by this function
	// that never escapes — or escapes only by being returned, after all
	// statements ran — cannot be shared while the function accesses it, so
	// those accesses are lock-free by nature (the escape lattice's local
	// class, plus the return-only constructor pattern). Parameters,
	// receivers and captured variables are declared outside the body span
	// and never qualify.
	if v, ok := root.(*types.Var); ok && !v.IsField() && v.Pos() >= body.Pos() && v.Pos() < body.End() {
		info, tracked := esc[v]
		if !tracked || info.Class == EscLocal {
			return true
		}
		returnOnly := true
		for _, site := range info.Sites {
			if _, ok := site.(*ast.ReturnStmt); !ok {
				returnOnly = false
				break
			}
		}
		if returnOnly {
			return true
		}
	}
	return false
}

// namedTypeOf returns the name of a (possibly pointered) named type.
func namedTypeOf(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
}
