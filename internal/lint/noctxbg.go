package lint

import (
	"go/ast"
)

// requestPathPkgs are the packages on a query's request path, from the
// public API down to the fetch layer. Creating a fresh background context
// there severs the caller's deadline and cancellation: a hung fetch can
// outlive the request that asked for it, and graceful drains stop being
// bounded. Context must be threaded from the caller; the deliberate
// context-free compatibility shims carry a //lint:allow noctxbg directive.
var requestPathPkgs = []string{
	"ulixes",
	"ulixes/internal/changefeed",
	"ulixes/internal/engine",
	"ulixes/internal/faults",
	"ulixes/internal/guard",
	"ulixes/internal/matview",
	"ulixes/internal/nalg",
	"ulixes/internal/overload",
	"ulixes/internal/pagecache",
	"ulixes/internal/site",
	"ulixes/internal/standing",
}

// ctxRootFuncs are the context package entry points that mint a fresh,
// never-cancelled root context.
var ctxRootFuncs = map[string]bool{
	"Background": true,
	"TODO":       true,
}

// NoCtxBackground forbids minting root contexts in request-path packages,
// so request deadlines and disconnects propagate end to end.
var NoCtxBackground = &Analyzer{
	Name: "noctxbg",
	Doc: "request-path packages (the engine, the evaluators, the page stores\n" +
		"and the fetch layer) must not call context.Background or context.TODO;\n" +
		"thread the caller's context so deadlines and cancellation reach every\n" +
		"page access (documented shims carry //lint:allow noctxbg)",
	Run: runNoCtxBackground,
}

func runNoCtxBackground(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, requestPathPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Pkg, call)
			if obj == nil || obj.Pkg() == nil || isMethod(obj) {
				return true
			}
			if obj.Pkg().Path() == "context" && ctxRootFuncs[obj.Name()] {
				pass.Reportf(call.Pos(), "context.%s on the request path in %s severs the caller's deadline; thread ctx from the caller", obj.Name(), pass.Pkg.PkgPath)
			}
			return true
		})
	}
}
