package lint_test

import (
	"testing"

	"ulixes/internal/lint"
	"ulixes/internal/lint/linttest"
)

func TestFetchGate(t *testing.T)   { linttest.Run(t, lint.FetchGate, "fetchgate") }
func TestNoWallClock(t *testing.T) { linttest.Run(t, lint.NoWallClock, "nowallclock") }
func TestChanHygiene(t *testing.T) { linttest.Run(t, lint.ChanHygiene, "chanhygiene") }
func TestNoPrintln(t *testing.T)   { linttest.Run(t, lint.NoPrintln, "noprintln") }
func TestNoCtxBg(t *testing.T)     { linttest.Run(t, lint.NoCtxBackground, "noctxbg") }
func TestPoolReset(t *testing.T)   { linttest.Run(t, lint.PoolReset, "poolreset") }

func TestViewEscape(t *testing.T)      { linttest.Run(t, lint.ViewEscape, "viewescape") }
func TestLostCancel(t *testing.T)      { linttest.Run(t, lint.LostCancel, "lostcancel") }
func TestMutexGuard(t *testing.T)      { linttest.Run(t, lint.MutexGuard, "mutexguard") }
func TestStatsExhaustive(t *testing.T) { linttest.Run(t, lint.StatsExhaustive, "statsexhaustive") }

// TestRepoClean asserts the invariant the PR establishes: the repo's own
// packages produce no findings (intentional bypasses carry //lint:allow).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Errorf("%s: load error: %v", p.PkgPath, e)
		}
	}
	for _, f := range lint.Run(pkgs, lint.Analyzers()) {
		t.Errorf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
	}
}
