package lint_test

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
	"testing"

	"ulixes/internal/lint"
)

// loadDataflowFixture loads the dataflow fixture package once per test
// binary and returns it with a lookup for its function declarations.
func loadDataflowFixture(t *testing.T) (*lint.Package, func(name string) *ast.FuncDecl) {
	t.Helper()
	pkgs, err := lint.Load(".", "./testdata/src/dataflow")
	if err != nil {
		t.Fatalf("loading dataflow fixture: %v", err)
	}
	var pkg *lint.Package
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Fatalf("fixture does not type-check: %v", e)
		}
		if strings.HasSuffix(p.PkgPath, "dataflow") {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("dataflow fixture package not loaded")
	}
	fn := func(name string) *ast.FuncDecl {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
					return fd
				}
			}
		}
		t.Fatalf("fixture function %q not found", name)
		return nil
	}
	return pkg, fn
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *lint.CFG) map[*lint.Block]bool {
	seen := map[*lint.Block]bool{g.Entry: true}
	work := []*lint.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// blockContaining finds the block holding a node whose position range covers
// pos.
func blockContaining(g *lint.CFG, pos token.Pos) *lint.Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return b
			}
		}
	}
	return nil
}

// findStmtPos locates the first occurrence of a source fragment inside the
// function and returns a position within it.
func findStmtPos(t *testing.T, pkg *lint.Package, fd *ast.FuncDecl, fragment string) token.Pos {
	t.Helper()
	var found token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		if stmt, ok := n.(ast.Stmt); ok {
			if nodeText(pkg, stmt) == fragment {
				found = stmt.Pos()
				return false
			}
		}
		return true
	})
	if found == token.NoPos {
		t.Fatalf("statement %q not found in %s", fragment, fd.Name.Name)
	}
	return found
}

// nodeText renders a statement's source span for fragment matching.
func nodeText(pkg *lint.Package, n ast.Node) string {
	pos := pkg.Fset.Position(n.Pos())
	end := pkg.Fset.Position(n.End())
	if pos.Filename != end.Filename {
		return ""
	}
	src := fixtureSource(pos.Filename)
	if src == "" || end.Offset > len(src) {
		return ""
	}
	return src[pos.Offset:end.Offset]
}

var fixtureSources = map[string]string{}

func fixtureSource(filename string) string {
	if s, ok := fixtureSources[filename]; ok {
		return s
	}
	b, err := os.ReadFile(filename)
	if err != nil {
		return ""
	}
	fixtureSources[filename] = string(b)
	return fixtureSources[filename]
}

func TestCFGIfElseJoins(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("ifElse").Body)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g.String())
	}
	// Both arms must be present and converge: the exit's predecessor count
	// through the return is one, but the then/else blocks both appear.
	var thenb, elseb bool
	for b := range seen {
		switch b.Comment {
		case "if.then":
			thenb = true
		case "if.else":
			elseb = true
		}
	}
	if !thenb || !elseb {
		t.Fatalf("if/else arms missing from reachable set:\n%s", g.String())
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("loop").Body)
	if !hasBackEdge(g) {
		t.Fatalf("for loop has no back edge:\n%s", g.String())
	}
}

func TestCFGRangeBackEdge(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("rangeLoop").Body)
	if !hasBackEdge(g) {
		t.Fatalf("range loop has no back edge:\n%s", g.String())
	}
	// The RangeStmt node itself sits in the loop head with two successors
	// (body and after).
	var head *lint.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("RangeStmt not placed in any block:\n%s", g.String())
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body, after):\n%s", len(head.Succs), g.String())
	}
}

func hasBackEdge(g *lint.CFG) bool {
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				return true
			}
		}
	}
	return false
}

func TestCFGEarlyReturn(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("earlyReturn").Body)
	// Two returns: both must lead to Exit, so Exit has two predecessors.
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (early and final return):\n%s", preds, g.String())
	}
}

func TestCFGDefersCollected(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("deferred").Body)
	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(g.Defers))
	}
}

func TestCFGFallthrough(t *testing.T) {
	pkg, fn := loadDataflowFixture(t)
	fd := fn("fallthroughSwitch")
	g := lint.BuildCFG(fd.Body)
	case0 := blockContaining(g, findStmtPos(t, pkg, fd, "x = 1"))
	case1 := blockContaining(g, findStmtPos(t, pkg, fd, "x = x + 10"))
	if case0 == nil || case1 == nil {
		t.Fatalf("case bodies not found in CFG:\n%s", g.String())
	}
	// Fallthrough: case 0's block must have case 1's block as a successor.
	found := false
	for _, s := range case0.Succs {
		if s == case1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge b%d->b%d missing:\n%s", case0.Index, case1.Index, g.String())
	}
}

func TestCFGGoto(t *testing.T) {
	_, fn := loadDataflowFixture(t)
	g := lint.BuildCFG(fn("gotoLabel").Body)
	if !hasBackEdge(g) {
		t.Fatalf("goto loop has no back edge:\n%s", g.String())
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable through goto loop:\n%s", g.String())
	}
}
