package lint

import (
	"go/ast"
)

// measuredPkgs are the packages whose outputs feed the cost model and the
// experiment tables: reading the ambient wall clock there makes results
// depend on when they ran. Timing belongs to the callers that own the
// measurement (the engine's ExecStats).
var measuredPkgs = []string{
	"ulixes/internal/changefeed",
	"ulixes/internal/cost",
	"ulixes/internal/faults",
	"ulixes/internal/guard",
	"ulixes/internal/nalg",
	"ulixes/internal/overload",
	"ulixes/internal/pagecache",
	"ulixes/internal/rewrite",
	"ulixes/internal/standing",
}

// wallClockFuncs are the time package entry points that read or depend on
// the ambient clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// NoWallClock forbids ambient wall-clock reads in the cost-measured
// packages, so estimated-vs-measured comparisons stay deterministic.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "cost-measured packages (internal/cost, internal/faults, internal/nalg,\n" +
		"internal/rewrite) must not read the ambient wall clock; measurement\n" +
		"belongs to the engine and waiting to injectable sleepers",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, measuredPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Pkg, call)
			if obj == nil || obj.Pkg() == nil || isMethod(obj) {
				return true
			}
			if obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()] {
				pass.Reportf(call.Pos(), "wall-clock call time.%s in cost-measured package %s", obj.Name(), pass.Pkg.PkgPath)
			}
			return true
		})
	}
}
