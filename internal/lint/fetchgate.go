package lint

import (
	"go/ast"
	"go/types"
)

// sitePkg is allowed to touch the network and the raw page wrapper: its
// Fetcher is the counted access path of the cost model.
const sitePkg = "ulixes/internal/site"

// pagecachePkg is the shared cross-query page store — the other sanctioned
// access path: its GETs, HEADs and wraps are counted per query (Session)
// and globally (Stats), so the cost model stays sound.
const pagecachePkg = "ulixes/internal/pagecache"

// guardPkg is the per-host resilience layer (breakers, bulkheads, hedges).
// It sits beneath the counted access paths — the fetcher and the pagecache
// call the origin through it — so its raw Get/Head calls are sanctioned.
const guardPkg = "ulixes/internal/guard"

// hypertextPkg defines WrapPage, the HTML→tuple wrapper; calling it outside
// internal/site means a page was obtained without being counted.
const hypertextPkg = "ulixes/internal/hypertext"

// httpClientFuncs are the package-level net/http entry points that open a
// connection.
var httpClientFuncs = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// httpClientMethods are the net/http.Client methods that open a connection.
var httpClientMethods = map[string]bool{
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
}

// FetchGate enforces the cost model's soundness invariant: every page access
// flows through site.Fetcher, whose cache and counters are what make the
// measured page count equal the paper's cost function. It flags, outside
// internal/site:
//
//   - net/http client calls (http.Get, (*http.Client).Do, …);
//   - direct page reads on internal/site servers (Server/MemSite/HTTPServer
//     Get and Head);
//   - direct calls to hypertext.WrapPage (wrapping HTML into page tuples
//     without the fetch being counted).
var FetchGate = &Analyzer{
	Name: "fetchgate",
	Doc: "page accesses must flow through a counted access path — the fetcher\n" +
		"in internal/site or the shared store in internal/pagecache; direct\n" +
		"net/http client calls, Server/MemSite page reads, and raw\n" +
		"hypertext.WrapPage calls elsewhere make ExecStats page counts unsound",
	IncludeTests: true,
	Run:          runFetchGate,
}

func runFetchGate(pass *Pass) {
	if pass.Pkg.PkgPath == sitePkg || pass.Pkg.PkgPath == sitePkg+"_test" ||
		pass.Pkg.PkgPath == pagecachePkg || pass.Pkg.PkgPath == pagecachePkg+"_test" ||
		pass.Pkg.PkgPath == guardPkg || pass.Pkg.PkgPath == guardPkg+"_test" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Pkg, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "net/http":
				if isMethod(obj) {
					if httpClientMethods[obj.Name()] && recvNamed(obj) == "Client" {
						pass.Reportf(call.Pos(), "direct net/http client call (*http.Client).%s bypasses the counted site.Fetcher", obj.Name())
					}
				} else if httpClientFuncs[obj.Name()] {
					pass.Reportf(call.Pos(), "direct net/http client call http.%s bypasses the counted site.Fetcher", obj.Name())
				}
			case sitePkg:
				if isMethod(obj) && (obj.Name() == "Get" || obj.Name() == "Head") {
					pass.Reportf(call.Pos(), "direct page read %s.%s bypasses the counted site.Fetcher", recvNamed(obj), obj.Name())
				}
			case hypertextPkg:
				if pass.Pkg.PkgPath != hypertextPkg && pass.Pkg.PkgPath != hypertextPkg+"_test" && obj.Name() == "WrapPage" {
					pass.Reportf(call.Pos(), "direct hypertext.WrapPage call wraps a page that no counted fetch produced")
				}
			}
			return true
		})
	}
}

// calleeObject resolves the function or method object a call invokes, or nil
// for calls through function values and type conversions.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fn].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// isMethod reports whether a function object has a receiver.
func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// recvNamed returns the name of a method's receiver type, dereferencing
// pointers; empty for non-methods.
func recvNamed(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
