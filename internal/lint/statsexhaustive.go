package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// statsPkgs are the packages whose counter structs feed the paper's cost
// accounting (C(E) = page fetches + cache interactions): a field dropped
// from a merge silently under-reports cost.
var statsPkgs = []string{
	"ulixes/internal/engine",
	"ulixes/internal/pagecache",
	"ulixes/internal/matview",
	"ulixes/internal/plancache",
	"ulixes/internal/vanswer",
	"ulixes/internal/workload",
	"ulixes/internal/changefeed",
	"ulixes/internal/overload",
	"ulixes/internal/standing",
	"ulixes/cmd/ulixesd",
}

// statsTypeRe matches the counter struct names whose Add/Merge methods are
// checked automatically.
var statsTypeRe = regexp.MustCompile(`(Stats|Counters)$`)

// exhaustiveRe extracts the type name from a //lint:exhaustive directive.
var exhaustiveRe = regexp.MustCompile(`//lint:exhaustive\s+([A-Za-z_][A-Za-z0-9_]*)`)

// StatsExhaustive verifies that aggregation functions over counter structs
// mention every field: an Add/Merge method on a *Stats/*Counters struct (or
// any function carrying a "//lint:exhaustive TypeName" directive) must
// reference each field of the struct, so adding a counter without updating
// the merge path is caught at vet time instead of as silently wrong numbers.
var StatsExhaustive = &Analyzer{
	Name: "statsexhaustive",
	Doc: "Add/Merge methods on Stats/Counters structs (and functions marked\n" +
		"//lint:exhaustive TypeName) must mention every field of the struct;\n" +
		"a field that is deliberately not aggregated needs a\n" +
		"//lint:allow statsexhaustive exemption naming why",
	IncludeTests: true,
	Run:          runStatsExhaustive,
}

func runStatsExhaustive(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, statsPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st, name := exhaustiveTarget(pass, fd)
			if st == nil {
				continue
			}
			checkExhaustive(pass, fd, st, name)
		}
	}
}

// exhaustiveTarget decides whether a function is subject to the check and
// returns the struct type it must cover.
func exhaustiveTarget(pass *Pass, fd *ast.FuncDecl) (*types.Struct, string) {
	// Explicit directive wins: //lint:exhaustive TypeName.
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if m := exhaustiveRe.FindStringSubmatch(c.Text); m != nil {
				obj := pass.Pkg.Types.Scope().Lookup(m[1])
				if obj == nil {
					pass.Reportf(c.Pos(), "//lint:exhaustive names unknown type %q", m[1])
					return nil, ""
				}
				if st, ok := obj.Type().Underlying().(*types.Struct); ok {
					return st, m[1]
				}
				pass.Reportf(c.Pos(), "//lint:exhaustive target %q is not a struct", m[1])
				return nil, ""
			}
		}
	}
	// Auto-detection: Add/Merge methods on *Stats/*Counters receivers.
	name := fd.Name.Name
	if name != "Add" && name != "Merge" && name != "add" && name != "merge" {
		return nil, ""
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil, ""
	}
	rt := pass.Pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return nil, ""
	}
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || !statsTypeRe.MatchString(named.Obj().Name()) {
		return nil, ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	return st, named.Obj().Name()
}

// checkExhaustive reports each struct field never mentioned in the body.
func checkExhaustive(pass *Pass, fd *ast.FuncDecl, st *types.Struct, typeName string) {
	want := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && f.Pkg() != pass.Pkg.Types {
			continue // unreachable from here anyway
		}
		want[f] = true
	}
	if len(want) == 0 {
		return
	}
	// A field counts as covered when any identifier in the body resolves to
	// it: selector reads/writes (s.Fetches), struct-literal keys
	// (Stats{Fetches: n}), even a bare mention.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			if v, ok := obj.(*types.Var); ok {
				delete(want, v)
			}
		}
		return true
	})
	if len(want) == 0 {
		return
	}
	// Deterministic order: report in declaration order.
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		if want[st.Field(i)] {
			missing = append(missing, st.Field(i).Name())
		}
	}
	pass.Reportf(fd.Name.Pos(), "%s does not aggregate field%s %s of %s; merge %s or exempt with //lint:allow statsexhaustive <why>",
		fd.Name.Name, plural(len(missing)), strings.Join(missing, ", "), typeName, itThem(len(missing)))
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func itThem(n int) string {
	if n == 1 {
		return "it"
	}
	return "them"
}
