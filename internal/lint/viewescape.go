package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// viewPkgs are the packages whose hot paths hand out zero-copy views with
// generational validity: the lexer's token attrs alias a buffer reused by
// the next Next call, pooled key buffers are recycled by Put, and
// TrustedTuple wraps caller slices without copying.
var viewPkgs = []string{
	"ulixes/internal/hypertext",
	"ulixes/internal/nested",
}

// ViewEscape enforces the generational-validity contracts of the
// allocation-lean hot path, flow-sensitively:
//
//   - a Lexer token's Attrs slice is valid only until the next Next call on
//     the same lexer: it must not be used after that call, returned, or
//     stored into a heap structure without copying first;
//   - a pooled buffer (sync.Pool Get, getKeyBuf) must not be used after it
//     is Put back, nor escape the function that borrowed it;
//   - slices handed to TrustedTuple are shared with the tuple and must not
//     be mutated afterwards.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc: "zero-copy views (lexer token attrs, pooled buffers, TrustedTuple\n" +
		"shared slices) obey generational validity: no use after the next\n" +
		"Next/Put call, no storing into heap structures, no returning to\n" +
		"callers, no mutating a slice a TrustedTuple shares (copy first, or\n" +
		"document an exemption with //lint:allow viewescape)",
	Run: runViewEscape,
}

func runViewEscape(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, viewPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			_, body := enclosingFunc(n)
			if body == nil {
				return true
			}
			checkViewEscape(pass, body)
			return true
		})
	}
}

// viewState is one variable's view classification.
type viewState struct {
	// src identifies the view's source generation owner: the lexer
	// variable for token views, the buffer's own variable for pooled
	// buffers. Invalidation is keyed on it.
	src types.Object
	// token marks a lexer token (its Attrs field is the dirty part; Tag,
	// Text and Kind project clean values). Non-token views are wholly
	// dirty (pooled buffers and slices derived from either).
	token bool
	// stale marks a view whose generation has ended (the source's Next or
	// Put ran); any subsequent use is a violation.
	stale bool
	// staleBy names the invalidating call for the diagnostic.
	staleBy string
}

// viewFact maps variables to their view state, plus the set of slices
// frozen by TrustedTuple.
type viewFact struct {
	views  map[*types.Var]viewState
	frozen map[*types.Var]bool
}

func newViewFact() *viewFact {
	return &viewFact{views: map[*types.Var]viewState{}, frozen: map[*types.Var]bool{}}
}

func (f *viewFact) clone() *viewFact {
	out := newViewFact()
	for v, s := range f.views {
		out.views[v] = s
	}
	for v := range f.frozen {
		out.frozen[v] = true
	}
	return out
}

type viewClient struct {
	pass *Pass
}

func (c *viewClient) Entry() Fact { return newViewFact() }

func (c *viewClient) Join(a, b Fact) Fact {
	fa, fb := a.(*viewFact), b.(*viewFact)
	out := fa.clone()
	for v, sb := range fb.views {
		if sa, ok := out.views[v]; ok {
			// stale on either path → stale.
			if sb.stale && !sa.stale {
				out.views[v] = sb
			}
		} else {
			out.views[v] = sb
		}
	}
	for v := range fb.frozen {
		out.frozen[v] = true
	}
	return out
}

func (c *viewClient) Equal(a, b Fact) bool {
	fa, fb := a.(*viewFact), b.(*viewFact)
	if len(fa.views) != len(fb.views) || len(fa.frozen) != len(fb.frozen) {
		return false
	}
	for v, sa := range fa.views {
		sb, ok := fb.views[v]
		if !ok || sa != sb {
			return false
		}
	}
	for v := range fa.frozen {
		if !fb.frozen[v] {
			return false
		}
	}
	return true
}

func (c *viewClient) Transfer(f Fact, n ast.Node) Fact {
	vf := f.(*viewFact).clone()
	pkg := c.pass.Pkg

	// Invalidations and freezes from any call inside the node. A RangeStmt
	// node carries its whole body, but the body statements live in their own
	// CFG blocks — only the range expression executes "at" this node.
	scan := ast.Node(n)
	if rs, ok := n.(*ast.RangeStmt); ok {
		scan = rs.X
	}
	ast.Inspect(scan, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		// A deferred Put runs at return, after every use in the body; the
		// view stays valid for the rest of the function.
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isLexerNext(pkg, call):
			recv := callReceiverObject(pkg, call)
			if recv == nil {
				return true
			}
			for v, s := range vf.views {
				if s.src == recv && !s.stale {
					s.stale = true
					s.staleBy = "the next Next call"
					vf.views[v] = s
				}
			}
		case isPoolPutCall(pkg, call):
			if len(call.Args) >= 1 {
				if obj := rootObject(pkg, call.Args[0]); obj != nil {
					src := obj
					if s, ok := vf.views[obj.(*types.Var)]; ok {
						src = s.src
					}
					for v, s := range vf.views {
						if s.src == src && !s.stale {
							s.stale = true
							s.staleBy = "Put returning it to the pool"
							vf.views[v] = s
						}
					}
				}
			}
		case isTrustedTupleCall(pkg, call):
			for _, arg := range call.Args {
				if v := rootVarOf(pkg, arg); v != nil && isSliceVar(v) {
					vf.frozen[v] = true
				}
			}
		}
		return true
	})

	// Definitions: assignments create, launder, or propagate views.
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.transferAssign(vf, s)
	case *ast.RangeStmt:
		// for _, a := range view: elements of an Attr slice are value
		// copies — clean; clear any prior view state of key/value vars.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if id, ok := e.(*ast.Ident); ok {
				if v := identVar(c.pass.Pkg, id); v != nil {
					delete(vf.views, v)
					delete(vf.frozen, v)
				}
			}
		}
	}
	return vf
}

// transferAssign updates view state for one assignment.
func (c *viewClient) transferAssign(vf *viewFact, as *ast.AssignStmt) {
	pkg := c.pass.Pkg

	// tok.Attrs = <clean>: laundering the dirty component cleans the token.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr); ok && sel.Sel.Name == "Attrs" {
			if v := rootVarOf(pkg, sel.X); v != nil {
				if s, ok := vf.views[v]; ok && s.token && !s.stale {
					if w, _ := c.exprView(vf, as.Rhs[0]); w == nil {
						delete(vf.views, v)
						return
					}
				}
			}
		}
	}

	// Single call producing a view: tok, ok, err := l.Next() / b := getKeyBuf().
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if isLexerNext(pkg, call) {
				if recv := callReceiverObject(pkg, call); recv != nil && len(as.Lhs) >= 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if v := identVar(pkg, id); v != nil {
							vf.views[v] = viewState{src: recv, token: true}
						}
					}
				}
				// Remaining results (ok, err) are clean.
				for _, lhs := range as.Lhs[1:] {
					c.clearLHS(vf, lhs)
				}
				return
			}
			if isPoolGetCall(pkg, call) && len(as.Lhs) >= 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v := identVar(pkg, id); v != nil {
						vf.views[v] = viewState{src: v}
					}
				}
				return
			}
		}
	}

	// Tuple-call assignment (k, null, err := f(view)): only the results with
	// aliasable (slice/pointer) types can carry the view; a bool or error
	// result is clean however tainted the arguments were.
	var tupleTypes *types.Tuple
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if tv, ok := pkg.Info.Types[call]; ok {
				tupleTypes, _ = tv.Type.(*types.Tuple)
			}
		}
	}

	// General propagation: each LHS var inherits the RHS expression's view.
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // stores handled by the violation pass
		}
		v := identVar(pkg, id)
		if v == nil {
			continue
		}
		if rhs == nil {
			delete(vf.views, v)
			delete(vf.frozen, v)
			continue
		}
		src, token := c.exprView(vf, rhs)
		if src != nil && tupleTypes != nil && i < tupleTypes.Len() {
			switch tupleTypes.At(i).Type().Underlying().(type) {
			case *types.Slice, *types.Pointer:
				// aliasable result: keeps the view
			default:
				src = nil
			}
		}
		if src != nil {
			vf.views[v] = viewState{src: src, token: token}
			delete(vf.frozen, v)
		} else {
			// Rebinding to a clean value launders the variable —
			// including a frozen slice rebound to a fresh backing array.
			if rv := rootVarOf(pkg, rhs); rv == nil || !vf.frozen[rv] {
				delete(vf.frozen, v)
			} else {
				vf.frozen[v] = true // alias of a frozen slice stays frozen
			}
			delete(vf.views, v)
		}
	}
}

func (c *viewClient) clearLHS(vf *viewFact, lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if v := identVar(c.pass.Pkg, id); v != nil {
			delete(vf.views, v)
			delete(vf.frozen, v)
		}
	}
}

// exprView reports whether an expression evaluates to a (live or stale)
// view: the source generation owner and whether it is a token view. A nil
// src means the expression is clean.
func (c *viewClient) exprView(vf *viewFact, e ast.Expr) (src types.Object, token bool) {
	pkg := c.pass.Pkg
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := identVar(pkg, x); v != nil {
			if s, ok := vf.views[v]; ok {
				return s.src, s.token
			}
		}
	case *ast.SelectorExpr:
		if v := rootVarOf(pkg, x.X); v != nil {
			if s, ok := vf.views[v]; ok && s.token {
				if x.Sel.Name == "Attrs" {
					return s.src, false // the dirty slice itself
				}
				return nil, false // Tag/Text/Kind project clean values
			}
			if s, ok := vf.views[v]; ok && !s.token {
				return s.src, false
			}
		}
	case *ast.StarExpr:
		return c.exprView(vf, x.X)
	case *ast.UnaryExpr:
		return c.exprView(vf, x.X)
	case *ast.SliceExpr:
		return c.exprView(vf, x.X)
	case *ast.IndexExpr:
		// An element load copies the element value (Attr structs, bytes):
		// clean.
		return nil, false
	case *ast.CallExpr:
		return c.callView(vf, x)
	}
	return nil, false
}

// callView classifies a call expression's (first) result.
func (c *viewClient) callView(vf *viewFact, call *ast.CallExpr) (types.Object, bool) {
	pkg := c.pass.Pkg
	// Builtin append aliases only its first argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				if len(call.Args) > 0 {
					return c.exprView(vf, call.Args[0])
				}
				return nil, false
			default:
				return nil, false // len, cap, copy, make, new: clean
			}
		}
		// Conversions: string(x) copies; slice conversions alias.
		if tv, ok := pkg.Info.Types[id]; ok && tv.IsType() {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && len(call.Args) == 1 {
				return c.exprView(vf, call.Args[0])
			}
			return nil, false
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion through a parenthesized or selector type name.
		if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && len(call.Args) == 1 {
			return c.exprView(vf, call.Args[0])
		}
		return nil, false
	}
	// A function that receives a view and returns an aliasable (slice or
	// pointer) result is treated as deriving a view from it — the
	// append-style helper pattern (appendKey, appendJoinKey).
	aliasable := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			return true
		}
		return false
	}
	if tv, ok := pkg.Info.Types[call]; ok {
		resType := tv.Type
		if tup, ok := resType.(*types.Tuple); ok && tup.Len() > 0 {
			resType = tup.At(0).Type()
		}
		if !aliasable(resType) {
			return nil, false
		}
	}
	for _, arg := range call.Args {
		if src, token := c.exprView(vf, arg); src != nil {
			return src, token
		}
	}
	return nil, false
}

// checkViewEscape analyzes one function body.
func checkViewEscape(pass *Pass, body *ast.BlockStmt) {
	// Fast path: any view source present?
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isLexerNext(pass.Pkg, call) || isPoolGetCall(pass.Pkg, call) || isTrustedTupleCall(pass.Pkg, call) {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	cfg := BuildCFG(body)
	client := &viewClient{pass: pass}
	res := cfg.Forward(client)

	reported := map[ast.Node]bool{}
	report := func(n ast.Node, format string, args ...interface{}) {
		if !reported[n] {
			reported[n] = true
			pass.Reportf(n.Pos(), format, args...)
		}
	}

	cfg.EachFact(client, res, func(f Fact, n ast.Node) {
		vf := f.(*viewFact)
		checkViewNode(pass, client, vf, n, report)
	})
}

// checkViewNode reports the violations visible at one CFG node given the
// fact holding before it.
func checkViewNode(pass *Pass, client *viewClient, vf *viewFact, n ast.Node, report func(ast.Node, string, ...interface{})) {
	pkg := pass.Pkg

	// Defined-at-this-node identifiers are not uses.
	defined := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				defined[id] = true
			}
		}
	}
	walk := ast.Node(n)
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok {
				defined[id] = true
			}
		}
		// Only the range expression executes at this node; the body's
		// statements are checked in their own blocks with their own facts.
		walk = rs.X
	}

	ast.Inspect(walk, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			// A literal capturing a live view is only a violation when the
			// literal escapes the generation (go statement); plain local
			// closures are analyzed as their own scope and the capture is
			// visible to the enclosing generation checks.
			return false

		case *ast.Ident:
			if defined[x] {
				return true
			}
			v := identVar(pkg, x)
			if v == nil {
				return true
			}
			if s, ok := vf.views[v]; ok && s.stale {
				report(x, "zero-copy view %q is used after %s invalidated it; copy the data out before the generation ends", v.Name(), s.staleBy)
			}

		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if src, _ := client.exprView(vf, r); src != nil {
					report(r, "a zero-copy view is returned to the caller; it aliases a buffer that the next Next/Put call reuses — copy it first")
				}
			}

		case *ast.SendStmt:
			if src, _ := client.exprView(vf, x.Value); src != nil {
				report(x, "a zero-copy view is sent on a channel; the receiver outlives the view's generation — copy it first")
			}

		case *ast.GoStmt:
			// Captured views cross goroutine lifetimes.
			ast.Inspect(x.Call, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					if v := identVar(pkg, id); v != nil {
						if _, isView := vf.views[v]; isView {
							report(id, "zero-copy view %q is captured by a goroutine; its generation can end while the goroutine still runs — copy it first", v.Name())
						}
					}
				}
				return true
			})
			return false

		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				lu := ast.Unparen(lhs)
				// Mutating a frozen (TrustedTuple-shared) slice element.
				if ix, ok := lu.(*ast.IndexExpr); ok {
					if v := rootVarOf(pkg, ix.X); v != nil && vf.frozen[v] {
						report(lhs, "slice %q was handed to TrustedTuple and is shared with the tuple; writing %s[i] corrupts tuples already built from it", v.Name(), v.Name())
					}
				}
				if rhs == nil {
					continue
				}
				src, _ := client.exprView(vf, rhs)
				if src == nil {
					continue
				}
				switch l := lu.(type) {
				case *ast.Ident:
					// Plain rebinding of a local is handled by Transfer; a
					// package-level variable is heap storage.
					if v := identVar(pkg, l); v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						report(x, "a zero-copy view is stored into a heap structure; it aliases a buffer the next Next/Put call reuses — copy it first")
					}
				case *ast.StarExpr:
					// *b = ... : writing through the view itself is the
					// sanctioned buffer-extend pattern when both sides
					// belong to the same generation.
					if lv := rootVarOf(pkg, l.X); lv != nil {
						if s, ok := vf.views[lv]; ok && s.src == src {
							continue
						}
					}
					report(x, "a zero-copy view is stored through a pointer; it outlives its generation — copy it first")
				default:
					report(x, "a zero-copy view is stored into a heap structure; it aliases a buffer the next Next/Put call reuses — copy it first")
				}
			}

		case *ast.CallExpr:
			// append(dst, view) retains the view (a Token element carries its
			// aliasing Attrs header; a view slice as an element shares its
			// backing array). append(dst, view...) is different: a spread
			// copies the element VALUES into dst — that is the laundering
			// idiom append([]Attr(nil), tok.Attrs...) and is clean.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if obj, ok := pkg.Info.Uses[id].(*types.Builtin); ok && obj.Name() == "append" {
					args := x.Args[1:]
					if x.Ellipsis.IsValid() && len(args) > 0 {
						args = args[:len(args)-1]
					}
					for _, arg := range args {
						if src, _ := client.exprView(vf, arg); src != nil {
							report(arg, "a zero-copy view is appended into a longer-lived slice; copy it first (e.g. append a fresh copy of the attrs)")
						}
					}
				}
			}
			// Mutating a frozen slice via append(frozen, ...).
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if obj, ok := pkg.Info.Uses[id].(*types.Builtin); ok && obj.Name() == "append" && len(x.Args) > 0 {
					if v := rootVarOf(pkg, x.Args[0]); v != nil && vf.frozen[v] {
						report(x, "slice %q was handed to TrustedTuple and is shared with the tuple; appending may write into the shared backing array — rebind to a fresh slice instead", v.Name())
					}
				}
			}
		}
		return true
	})
}

// --- source recognizers ----------------------------------------------------

// callReceiverObject resolves the receiver expression of a method call
// ("l.Next()" → the object for l), or nil.
func callReceiverObject(pkg *Package, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootObject(pkg, sel.X)
}

// isLexerNext reports a call of the Next method on a *Lexer-named type: the
// generational token source.
func isLexerNext(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	if obj == nil || !isMethod(obj) || obj.Name() != "Next" {
		return false
	}
	return strings.Contains(recvNamed(obj), "Lexer")
}

// isPoolGetCall matches pooled-buffer borrows: (*sync.Pool).Get and the
// repo's getKeyBuf-style wrappers (unexported functions named get*Buf).
func isPoolGetCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Get" && isMethod(obj) {
		return true
	}
	name := obj.Name()
	return !isMethod(obj) && strings.HasPrefix(name, "get") && strings.HasSuffix(name, "Buf")
}

// isPoolPutCall matches pooled-buffer returns: (*sync.Pool).Put and
// put*Buf wrappers.
func isPoolPutCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Put" && isMethod(obj) {
		return true
	}
	name := obj.Name()
	return !isMethod(obj) && strings.HasPrefix(name, "put") && strings.HasSuffix(name, "Buf")
}

// isTrustedTupleCall matches the zero-copy tuple constructor.
func isTrustedTupleCall(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	return obj != nil && obj.Name() == "TrustedTuple" && !isMethod(obj)
}

// rootVarOf resolves an expression's root to a variable, or nil.
func rootVarOf(pkg *Package, e ast.Expr) *types.Var {
	if obj := rootObject(pkg, e); obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isSliceVar reports whether a variable has slice type.
func isSliceVar(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Slice)
	return ok
}
