package lint

import (
	"go/ast"
	"go/types"
)

// stdoutPrintFuncs are the fmt functions that write to the process's
// standard streams (as opposed to Fprint/Sprint, which take a destination).
var stdoutPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// NoPrintln keeps library packages silent: no fmt.Print*, no log package,
// no print/println builtins outside package main and tests. Library output
// belongs in return values; rendering belongs to the commands.
var NoPrintln = &Analyzer{
	Name: "noprintln",
	Doc: "library packages must not write to stdout/stderr: no fmt.Print*,\n" +
		"no log package, no print/println builtins (commands are exempt)",
	Run: runNoPrintln,
}

func runNoPrintln(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
						pass.Reportf(x.Pos(), "%s builtin writes to stderr from a library package", b.Name())
					}
				}
				obj := calleeObject(pass.Pkg, x)
				if obj == nil || obj.Pkg() == nil || isMethod(obj) {
					return true
				}
				if obj.Pkg().Path() == "fmt" && stdoutPrintFuncs[obj.Name()] {
					pass.Reportf(x.Pos(), "fmt.%s writes to stdout from a library package", obj.Name())
				}
			case *ast.SelectorExpr:
				// Any use of the standard log package (functions, Logger
				// constructors, package variables).
				if id, ok := x.X.(*ast.Ident); ok {
					if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "log" {
						pass.Reportf(x.Pos(), "log package use in a library package; return errors instead")
					}
				}
			}
			return true
		})
	}
}
