package lint

import (
	"go/ast"
	"go/types"
)

// concurrentPkgs are the packages running goroutine-heavy pipelined
// execution, where an unbounded fan-out or an unguarded send can turn a
// large site into a goroutine explosion or a deadlock.
var concurrentPkgs = []string{
	"ulixes/internal/faults",
	"ulixes/internal/guard",
	"ulixes/internal/nalg",
	"ulixes/internal/matview",
	"ulixes/internal/site",
}

// ChanHygiene flags two concurrency smells in the evaluation packages:
//
//   - a `go` statement inside a data-bounded loop (range, or a for whose
//     condition involves len) with no semaphore acquire or done-channel
//     guard in sight — fan-out proportional to data size;
//   - a send inside a loop on an unbuffered channel made in the same
//     function, outside any select — it blocks forever once the consumer
//     stops (the exact bug the fetcher's guarded send prevents).
//
// Bounded worker pools (`for w := 0; w < workers; w++ { go … }`) and
// select-guarded sends pass.
var ChanHygiene = &Analyzer{
	Name: "chanhygiene",
	Doc: "concurrent evaluation packages (internal/faults, internal/nalg,\n" +
		"internal/matview, internal/site) must bound goroutine fan-out with\n" +
		"worker pools or semaphores and guard loop sends on unbuffered\n" +
		"channels with select",
	Run: runChanHygiene,
}

func runChanHygiene(pass *Pass) {
	if !pathIsOneOf(pass.Pkg.PkgPath, concurrentPkgs...) && !fixturePackage(pass.Pkg.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFuncBody(pass, fn.Body)
				return false
			}
			return true
		})
	}
}

// checkFuncBody applies both rules to one function declaration. The
// semaphore and unbuffered-channel facts are computed over the whole
// declaration (closures capture the enclosing function's channels); the
// loop-nesting context resets at every function-literal boundary, since a
// literal runs in its own control flow.
func checkFuncBody(pass *Pass, body *ast.BlockStmt) {
	guarded := hasSemaphoreAcquire(pass, body)
	unbuffered := unbufferedChans(pass, body)

	var walk func(n ast.Node, loops []ast.Stmt, inSelect bool)
	walk = func(n ast.Node, loops []ast.Stmt, inSelect bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			walkChildren(x.Body, nil, false, walk)
			return
		case *ast.RangeStmt:
			walkChildren(x.Body, append(loops, ast.Stmt(x)), inSelect, walk)
			return
		case *ast.ForStmt:
			walkChildren(x.Body, append(loops, ast.Stmt(x)), inSelect, walk)
			return
		case *ast.SelectStmt:
			walkChildren(x.Body, loops, true, walk)
			return
		case *ast.GoStmt:
			if loop := dataBoundedLoop(pass, loops); loop != nil && !guarded {
				pass.Reportf(x.Pos(), "unbounded goroutine launch inside a data-bounded loop; use a worker pool or a semaphore")
			}
			// The goroutine body starts fresh control flow.
			walkChildren(x.Call, nil, false, walk)
			return
		case *ast.SendStmt:
			if len(loops) > 0 && !inSelect {
				if ch, ok := ast.Unparen(x.Chan).(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Uses[ch]; obj != nil && unbuffered[obj] {
						pass.Reportf(x.Pos(), "unguarded send on unbuffered channel %q inside a loop; wrap it in a select with a done channel", ch.Name)
					}
				}
			}
			return
		}
		walkChildren(n, loops, inSelect, walk)
	}
	walkChildren(body, nil, false, walk)
}

// walkChildren applies walk to the direct children of n, threading the loop
// stack and select flag.
func walkChildren(n ast.Node, loops []ast.Stmt, inSelect bool, walk func(ast.Node, []ast.Stmt, bool)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walk(c, loops, inSelect)
		return false
	})
}

// dataBoundedLoop returns the innermost loop whose trip count scales with
// data: any range loop, or a for loop whose condition mentions len(…).
func dataBoundedLoop(pass *Pass, loops []ast.Stmt) ast.Stmt {
	for i := len(loops) - 1; i >= 0; i-- {
		switch l := loops[i].(type) {
		case *ast.RangeStmt:
			return l
		case *ast.ForStmt:
			if l.Cond != nil && mentionsLen(pass, l.Cond) {
				return l
			}
		}
	}
	return nil
}

// mentionsLen reports whether an expression calls the len builtin.
func mentionsLen(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// hasSemaphoreAcquire reports whether the function body (including nested
// literals) contains a semaphore-style send of struct{}{}.
func hasSemaphoreAcquire(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			if t, ok := pass.Pkg.Info.Types[send.Value]; ok {
				if st, ok := t.Type.Underlying().(*types.Struct); ok && st.NumFields() == 0 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// unbufferedChans collects the objects of channels created in this body by
// a capacity-less make(chan T).
func unbufferedChans(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			if t, ok := pass.Pkg.Info.Types[call.Args[0]]; !ok || t.Type == nil {
				continue
			} else if _, isChan := t.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
			if lhs, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Pkg.Info.Defs[lhs]; obj != nil {
					out[obj] = true
				} else if obj := pass.Pkg.Info.Uses[lhs]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
