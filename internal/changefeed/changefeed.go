// Package changefeed upgrades the paper's §8 lazy view maintenance to push:
// a Monitor detects page mutations on a site.Server and emits a
// deterministic feed of (url, ChangeKind, Last-Modified) events to
// registered sinks — the cache invalidates exactly the affected entry, the
// materialized store re-wraps exactly the changed page, and standing queries
// re-answer exactly when their footprint is touched, instead of every
// consumer rediscovering the change behind its own TTL ("Maintaining
// Consistency of Data on the Web": push where the workload earns it, pull
// everywhere else).
//
// Two detection modes compose on one Monitor:
//
//   - hook mode (AttachMemSite): a co-located MemSite reports every mutation
//     through its OnMutate hook, for free — no network traffic at all. The
//     Last-Modified date comes from the site-side PeekMeta instrumentation.
//   - poll mode (Watch + Sweep/Run): for sites that only expose GET/HEAD,
//     the monitor sweeps its watched URLs with light connections on the
//     injectable clock. Each URL carries an adaptive cadence — halved toward
//     MinInterval when a check finds a change, doubled toward MaxInterval
//     when it does not — so hot pages are probed often and cold ones rarely.
//     A per-sweep HEAD budget bounds the traffic burst; due URLs beyond it
//     are deferred to the next sweep. Checks fast-failed by an open circuit
//     breaker (site.ErrBreakerOpen, surfaced through internal/guard) are
//     skipped without counting a light connection and retried next sweep.
//
// Events are deterministic: sweeps visit due URLs in sorted order, sinks run
// synchronously in registration order, and the only clock read is the
// injected one (the nowallclock lint enforces it).
package changefeed

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"ulixes/internal/site"
)

// ChangeKind aliases the site-level mutation classification, so sinks can be
// written against this package alone.
type ChangeKind = site.ChangeKind

// Event is one observed page mutation.
type Event struct {
	// URL is the mutated page.
	URL string
	// Scheme is the page-scheme of the page, when known ("" otherwise —
	// consumers must treat an unknown scheme conservatively).
	Scheme string
	// Kind classifies the mutation.
	Kind ChangeKind
	// LastModified is the page's new modification date (zero for removals).
	LastModified time.Time
}

// Sink consumes feed events. OnChange is called synchronously from the
// mutation hook or the sweeping goroutine; slow sinks delay the feed, not
// the site.
type Sink interface {
	OnChange(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// OnChange implements Sink.
func (f SinkFunc) OnChange(e Event) { f(e) }

// SweepSink is notified after every poll sweep, with the pass's report —
// the signal consumers use to advance freshness horizons.
type SweepSink interface {
	OnSweep(SweepReport)
}

// SweepFunc adapts a function to the SweepSink interface.
type SweepFunc func(SweepReport)

// OnSweep implements SweepSink.
func (f SweepFunc) OnSweep(r SweepReport) { f(r) }

// SweepReport summarizes one poll sweep.
type SweepReport struct {
	// Checked is how many watched URLs were verified this sweep.
	Checked int
	// Changed is how many of them had changed (events emitted).
	Changed int
	// Removed is how many were found gone from the site.
	Removed int
	// Deferred is how many due URLs the HEAD budget pushed to the next sweep.
	Deferred int
	// BreakerSkips is how many checks an open circuit breaker fast-failed.
	BreakerSkips int
	// Errors is how many checks failed for other reasons.
	Errors int
	// Clean reports that every due URL was actually verified: no error, no
	// breaker skip, no budget deferral. Only clean sweeps may advance a
	// consumer's freshness horizon.
	Clean bool
	// OldestVerified is the oldest per-URL verification instant across ALL
	// watched URLs after the sweep — the bound through which the whole
	// watched set is known consistent. Zero while any URL has never been
	// checked.
	OldestVerified time.Time
}

// Default adaptive-cadence bounds.
const (
	DefaultMinInterval = 10 * time.Second
	DefaultMaxInterval = 10 * time.Minute
)

// Config tunes a Monitor.
type Config struct {
	// Clock supplies the monitor's notion of time (nil means a deterministic
	// logical clock advancing one second per reading; servers inject
	// time.Now).
	Clock site.Clock
	// Budget caps the light connections one Sweep may issue (0 = unlimited).
	// Due URLs beyond the budget are deferred, most-overdue first.
	Budget int
	// MinInterval and MaxInterval bound the adaptive per-URL check cadence
	// (zero means the defaults).
	MinInterval time.Duration
	MaxInterval time.Duration
}

// Counters tallies the monitor's traffic and feed volume. The
// statsexhaustive analyzer holds Add to covering every field.
type Counters struct {
	// Heads is the light connections sweeps issued (hook-mode events cost
	// none).
	Heads int
	// Sweeps is the number of poll passes run; CleanSweeps how many verified
	// every due URL.
	Sweeps      int
	CleanSweeps int
	// Events is the total events emitted to sinks, split by kind below.
	Events    int
	Updates   int
	Additions int
	Removals  int
	Touches   int
	// Deferred is the due checks pushed to a later sweep by the budget.
	Deferred int
	// BreakerSkips is the checks fast-failed by an open circuit breaker;
	// Errors the checks failed for other reasons.
	BreakerSkips int
	Errors       int
}

// Add folds another monitor's counters into c.
func (c *Counters) Add(o Counters) {
	c.Heads += o.Heads
	c.Sweeps += o.Sweeps
	c.CleanSweeps += o.CleanSweeps
	c.Events += o.Events
	c.Updates += o.Updates
	c.Additions += o.Additions
	c.Removals += o.Removals
	c.Touches += o.Touches
	c.Deferred += o.Deferred
	c.BreakerSkips += o.BreakerSkips
	c.Errors += o.Errors
}

// watchState is the poll-mode bookkeeping for one URL.
type watchState struct {
	scheme      string
	lastMod     time.Time     // last observed Last-Modified
	interval    time.Duration // current adaptive cadence
	nextDue     time.Time     // next check no earlier than this
	lastChecked time.Time     // zero until first verification
}

// Monitor watches a server for page mutations and fans events out to sinks.
// It is safe for concurrent use.
type Monitor struct {
	server site.Server
	cfg    Config

	mu         sync.Mutex
	sinks      []Sink                 // guarded by mu
	sweepSinks []SweepSink            // guarded by mu
	watched    map[string]*watchState // guarded by mu
	schemes    map[string]string      // url → last known page-scheme; guarded by mu
	hooked     bool                   // AttachMemSite was called; guarded by mu
	sweeping   bool                   // a Sweep is in flight; guarded by mu
	counters   Counters               // guarded by mu
}

// New creates a monitor over a server. Poll-mode checks go through the given
// server — wrap it in a guard to make sweeps breaker-aware.
func New(server site.Server, cfg Config) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = site.LogicalClock()
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultMinInterval
	}
	if cfg.MaxInterval < cfg.MinInterval {
		cfg.MaxInterval = DefaultMaxInterval
	}
	if cfg.MaxInterval < cfg.MinInterval {
		cfg.MaxInterval = cfg.MinInterval
	}
	return &Monitor{
		server:  server,
		cfg:     cfg,
		watched: make(map[string]*watchState),
		schemes: make(map[string]string),
	}
}

// Subscribe registers a sink. Sinks are called synchronously, in
// registration order, for every event.
func (m *Monitor) Subscribe(s Sink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sinks = append(m.sinks, s)
}

// SubscribeSweep registers a sweep-report sink.
func (m *Monitor) SubscribeSweep(s SweepSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepSinks = append(m.sweepSinks, s)
}

// Counters returns a snapshot of the monitor's counters.
func (m *Monitor) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

func (m *Monitor) now() time.Time { return m.cfg.Clock() }

// AttachMemSite taps the site's mutation hook: every site-side mutation
// becomes one feed event, with the new Last-Modified date read back through
// the site's PeekMeta instrumentation — zero network traffic. Remote sites
// without hook access use Watch + Sweep instead.
func (m *Monitor) AttachMemSite(ms *site.MemSite) {
	m.mu.Lock()
	m.hooked = true
	m.mu.Unlock()
	ms.OnMutate(func(url string, kind site.ChangeKind) {
		ev := Event{URL: url, Kind: kind}
		if sch, ok := ms.SchemeOf(url); ok {
			ev.Scheme = sch
		}
		if meta, ok := ms.PeekMeta(url); ok {
			ev.LastModified = meta.LastModified
		}
		if ev.Scheme == "" {
			// A removed page no longer reports its scheme; fall back to what
			// the feed learned about the URL earlier.
			m.mu.Lock()
			ev.Scheme = m.schemes[url]
			m.mu.Unlock()
		}
		m.emit(ev)
	})
}

// Watch registers a URL for poll-mode sweeps. lastMod is the page's
// Last-Modified as currently held by the consumer (zero forces the first
// check to report a change); the first check comes due immediately.
func (m *Monitor) Watch(url, scheme string, lastMod time.Time) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.watched[url]; ok {
		return
	}
	m.watched[url] = &watchState{
		scheme:   scheme,
		lastMod:  lastMod,
		interval: m.cfg.MinInterval,
		nextDue:  now,
	}
	if scheme != "" {
		m.schemes[url] = scheme
	}
}

// Unwatch drops a URL from poll-mode sweeps.
func (m *Monitor) Unwatch(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.watched, url)
}

// Watched returns the number of URLs under poll-mode watch.
func (m *Monitor) Watched() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.watched)
}

// WatchMemSite registers every URL the site currently serves, seeding each
// watch with the page's current modification date (via PeekMeta — watching
// is instrumentation, not traffic). It is the standard poll-mode seeding for
// experiments and the daemon.
func (m *Monitor) WatchMemSite(ms *site.MemSite) {
	for _, url := range ms.URLs() {
		scheme, _ := ms.SchemeOf(url)
		var lastMod time.Time
		if meta, ok := ms.PeekMeta(url); ok {
			lastMod = meta.LastModified
		}
		m.Watch(url, scheme, lastMod)
	}
}

// VerifiedBound returns the instant through which everything the monitor
// covers is known verified against the live site, and whether such a bound
// exists. In hook mode every mutation is pushed as it happens, so the bound
// is simply "now"; in poll mode it is the oldest per-URL verification
// instant (no bound until every watched URL has been checked at least once).
// Consumers advance freshness horizons to this bound.
func (m *Monitor) VerifiedBound() (time.Time, bool) {
	m.mu.Lock()
	hooked := m.hooked
	var oldest time.Time
	ok := len(m.watched) > 0 || hooked
	for _, w := range m.watched {
		if w.lastChecked.IsZero() {
			ok = false
			break
		}
		if oldest.IsZero() || w.lastChecked.Before(oldest) {
			oldest = w.lastChecked
		}
	}
	m.mu.Unlock()
	if !ok {
		return time.Time{}, false
	}
	if hooked {
		return m.now(), true
	}
	return oldest, true
}

// emit fans one event out to the sinks, synchronously and in registration
// order. Counters are updated first so a sink reading them sees the event
// included.
func (m *Monitor) emit(ev Event) {
	m.mu.Lock()
	m.counters.Events++
	switch ev.Kind {
	case site.ChangeAdded:
		m.counters.Additions++
	case site.ChangeUpdated:
		m.counters.Updates++
	case site.ChangeRemoved:
		m.counters.Removals++
	case site.ChangeTouched:
		m.counters.Touches++
	}
	if ev.Scheme != "" {
		m.schemes[ev.URL] = ev.Scheme
	}
	sinks := append([]Sink(nil), m.sinks...)
	m.mu.Unlock()
	for _, s := range sinks {
		s.OnChange(ev)
	}
}

// head opens one light connection, threading the caller's context when the
// server supports it.
func (m *Monitor) head(ctx context.Context, url string) (site.Meta, error) {
	if cs, ok := m.server.(site.ContextHeadServer); ok {
		return cs.HeadContext(ctx, url)
	}
	return m.server.Head(url) //lint:allow fetchgate light connection, counted in Counters.Heads
}

// Sweep runs one poll pass at the injectable clock's current instant: every
// watched URL whose cadence has come due is checked with a light connection
// (up to Budget, most-overdue first, ties broken by URL so the pass is
// deterministic), changed pages emit events, and each URL's cadence adapts —
// halved after a change, doubled after a no-change check. The report says
// whether the pass was clean and how far the verified bound reaches.
func (m *Monitor) Sweep(ctx context.Context) SweepReport {
	m.mu.Lock()
	if m.sweeping {
		// One sweep at a time; an overlapping call reports an empty,
		// non-clean pass rather than double-checking URLs.
		m.mu.Unlock()
		return SweepReport{}
	}
	m.sweeping = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.sweeping = false
		m.mu.Unlock()
	}()

	now := m.now()
	type dueItem struct {
		url string
		ws  watchState
	}
	m.mu.Lock()
	due := make([]dueItem, 0, len(m.watched))
	for url, ws := range m.watched {
		if !ws.nextDue.After(now) {
			due = append(due, dueItem{url, *ws})
		}
	}
	m.mu.Unlock()
	sort.Slice(due, func(i, j int) bool {
		if !due[i].ws.nextDue.Equal(due[j].ws.nextDue) {
			return due[i].ws.nextDue.Before(due[j].ws.nextDue)
		}
		return due[i].url < due[j].url
	})

	var rep SweepReport
	checked := 0
	for _, d := range due {
		if m.cfg.Budget > 0 && checked >= m.cfg.Budget {
			rep.Deferred = len(due) - checked
			break
		}
		if ctx != nil && ctx.Err() != nil {
			rep.Deferred = len(due) - checked
			break
		}
		checked++
		meta, err := m.head(ctx, d.url)
		switch {
		case err == nil:
			m.mu.Lock()
			m.counters.Heads++
			ws, ok := m.watched[d.url]
			if !ok {
				m.mu.Unlock()
				continue
			}
			changed := meta.LastModified.After(ws.lastMod)
			if changed {
				ws.interval = ws.interval / 2
				if ws.interval < m.cfg.MinInterval {
					ws.interval = m.cfg.MinInterval
				}
			} else {
				ws.interval = ws.interval * 2
				if ws.interval > m.cfg.MaxInterval {
					ws.interval = m.cfg.MaxInterval
				}
			}
			ws.lastMod = meta.LastModified
			ws.lastChecked = now
			ws.nextDue = now.Add(ws.interval)
			scheme := ws.scheme
			m.mu.Unlock()
			rep.Checked++
			if changed {
				rep.Changed++
				m.emit(Event{URL: d.url, Scheme: scheme, Kind: site.ChangeUpdated, LastModified: meta.LastModified})
			}
		case errors.Is(err, site.ErrNotFound):
			// Confirmed gone: emit the removal and stop watching. A 404 is a
			// real light connection.
			m.mu.Lock()
			m.counters.Heads++
			scheme := ""
			if ws, ok := m.watched[d.url]; ok {
				scheme = ws.scheme
			}
			delete(m.watched, d.url)
			m.mu.Unlock()
			rep.Checked++
			rep.Removed++
			m.emit(Event{URL: d.url, Scheme: scheme, Kind: site.ChangeRemoved})
		case errors.Is(err, site.ErrBreakerOpen):
			// Fast-failed without touching the network: no light connection,
			// retry next sweep at the same cadence.
			rep.BreakerSkips++
			m.deferCheck(d.url, now)
		default:
			rep.Errors++
			m.deferCheck(d.url, now)
		}
	}
	rep.Clean = rep.Deferred == 0 && rep.BreakerSkips == 0 && rep.Errors == 0

	m.mu.Lock()
	oldest := time.Time{}
	complete := true
	for _, ws := range m.watched {
		if ws.lastChecked.IsZero() {
			complete = false
			break
		}
		if oldest.IsZero() || ws.lastChecked.Before(oldest) {
			oldest = ws.lastChecked
		}
	}
	if complete {
		rep.OldestVerified = oldest
	}
	m.counters.Sweeps++
	if rep.Clean {
		m.counters.CleanSweeps++
	}
	m.counters.Deferred += rep.Deferred
	m.counters.BreakerSkips += rep.BreakerSkips
	m.counters.Errors += rep.Errors
	sweepSinks := append([]SweepSink(nil), m.sweepSinks...)
	m.mu.Unlock()
	for _, s := range sweepSinks {
		s.OnSweep(rep)
	}
	return rep
}

// deferCheck pushes an unverified URL's next check one interval out without
// adapting the cadence.
func (m *Monitor) deferCheck(url string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ws, ok := m.watched[url]; ok {
		ws.nextDue = now.Add(ws.interval)
	}
}

// Run sweeps every `every` on the given sleeper until the context is
// cancelled, returning the context's error. The daemon runs it in a
// background goroutine; tests drive Sweep directly.
func (m *Monitor) Run(ctx context.Context, every time.Duration, slp site.Sleeper) error {
	if slp == nil {
		slp = site.StdSleeper()
	}
	for {
		if err := slp.Sleep(ctx, every); err != nil {
			return err
		}
		m.Sweep(ctx)
	}
}
