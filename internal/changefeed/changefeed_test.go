package changefeed

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"ulixes/internal/adm"
	"ulixes/internal/nested"
	"ulixes/internal/site"
	"ulixes/internal/sitegen"
)

// manualClock is a hand-advanced site.Clock for deterministic sweeps.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(1998, time.March, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testSite(t *testing.T) (*sitegen.University, *site.MemSite) {
	t.Helper()
	u, err := sitegen.GenerateUniversity(sitegen.UniversityParams{Courses: 6, Profs: 4, Depts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := site.NewMemSite(u.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, ms
}

// collector records every event a sink sees.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) OnChange(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func TestHookModeEmitsEveryMutation(t *testing.T) {
	u, ms := testSite(t)
	clk := newManualClock()
	m := New(ms, Config{Clock: clk.Now})
	var got collector
	m.Subscribe(&got)
	m.AttachMemSite(ms)

	profURL := "http://univ.example.edu/prof/0.html"
	tup, _ := u.Instance.Page(sitegen.ProfPage, profURL)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	newURL := "http://univ.example.edu/prof/999.html"
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With(adm.URLAttr, nested.LinkValue(newURL))); err != nil {
		t.Fatal(err)
	}
	ms.Touch(profURL)
	ms.RemovePage(newURL)

	events := got.all()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %v", len(events), events)
	}
	wantKinds := []ChangeKind{site.ChangeUpdated, site.ChangeAdded, site.ChangeTouched, site.ChangeRemoved}
	wantURLs := []string{profURL, newURL, profURL, newURL}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] || ev.URL != wantURLs[i] {
			t.Errorf("event %d = %v %s, want %v %s", i, ev.Kind, ev.URL, wantKinds[i], wantURLs[i])
		}
		if ev.Kind != site.ChangeRemoved {
			if ev.Scheme != sitegen.ProfPage {
				t.Errorf("event %d scheme = %q, want %q", i, ev.Scheme, sitegen.ProfPage)
			}
			if ev.LastModified.IsZero() {
				t.Errorf("event %d has no Last-Modified", i)
			}
		}
	}
	// The removal's scheme was learned from the earlier addition event.
	if rm := events[3]; rm.Scheme != sitegen.ProfPage {
		t.Errorf("removal scheme = %q, want %q (learned from the feed)", rm.Scheme, sitegen.ProfPage)
	}
	// Hook mode costs no network traffic at all.
	if ms.Counters().Heads() != 0 || ms.Counters().Gets() != 0 {
		t.Errorf("hook mode issued network traffic: %d heads, %d gets",
			ms.Counters().Heads(), ms.Counters().Gets())
	}
	c := m.Counters()
	if c.Events != 4 || c.Updates != 1 || c.Additions != 1 || c.Touches != 1 || c.Removals != 1 || c.Heads != 0 {
		t.Errorf("counters = %+v", c)
	}
	// Every change is pushed as it happens: the verified bound is "now".
	if at, ok := m.VerifiedBound(); !ok || !at.Equal(clk.Now()) {
		t.Errorf("VerifiedBound = %v %v, want now", at, ok)
	}
}

func TestPollSweepDetectsChangeAndAdapts(t *testing.T) {
	u, ms := testSite(t)
	clk := newManualClock()
	min, max := 10*time.Second, 80*time.Second
	m := New(ms, Config{Clock: clk.Now, MinInterval: min, MaxInterval: max})
	var got collector
	m.Subscribe(&got)
	m.WatchMemSite(ms)
	if m.Watched() != ms.Len() {
		t.Fatalf("Watched = %d, want %d", m.Watched(), ms.Len())
	}
	if _, ok := m.VerifiedBound(); ok {
		t.Fatal("VerifiedBound should not exist before the first full sweep")
	}

	// First sweep: everything due, nothing changed. Clean; bound = sweep time.
	t0 := clk.Now()
	rep := m.Sweep(context.Background())
	if !rep.Clean || rep.Checked != ms.Len() || rep.Changed != 0 {
		t.Fatalf("sweep 1 = %+v", rep)
	}
	if !rep.OldestVerified.Equal(t0) {
		t.Errorf("OldestVerified = %v, want %v", rep.OldestVerified, t0)
	}
	if at, ok := m.VerifiedBound(); !ok || !at.Equal(t0) {
		t.Errorf("VerifiedBound = %v %v, want %v", at, ok, t0)
	}

	// Mutate one page; everything comes due again after the doubled interval.
	profURL := "http://univ.example.edu/prof/0.html"
	tup, _ := u.Instance.Page(sitegen.ProfPage, profURL)
	if err := ms.UpdatePage(sitegen.ProfPage, tup.With("Rank", nested.TextValue("Emeritus"))); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * min)
	rep = m.Sweep(context.Background())
	if !rep.Clean || rep.Changed != 1 {
		t.Fatalf("sweep 2 = %+v", rep)
	}
	events := got.all()
	if len(events) != 1 || events[0].URL != profURL || events[0].Kind != site.ChangeUpdated ||
		events[0].Scheme != sitegen.ProfPage || events[0].LastModified.IsZero() {
		t.Fatalf("events = %v", events)
	}

	// Cadence adapted: the changed URL is due again after min; the unchanged
	// ones doubled to 4*min and must NOT be re-checked yet.
	clk.Advance(min)
	rep = m.Sweep(context.Background())
	if rep.Checked != 1 || rep.Changed != 0 {
		t.Fatalf("sweep 3 = %+v (only the hot URL should be due)", rep)
	}
	if heads := m.Counters().Heads; heads != ms.Len()*2+1 {
		t.Errorf("Heads = %d, want %d", heads, ms.Len()*2+1)
	}
}

func TestPollSweepBudgetDefers(t *testing.T) {
	_, ms := testSite(t)
	clk := newManualClock()
	m := New(ms, Config{Clock: clk.Now, Budget: 3, MinInterval: 10 * time.Second})
	m.WatchMemSite(ms)
	rep := m.Sweep(context.Background())
	if rep.Checked != 3 || rep.Deferred != ms.Len()-3 || rep.Clean {
		t.Fatalf("budgeted sweep = %+v", rep)
	}
	if _, ok := m.VerifiedBound(); ok {
		t.Error("a deferred sweep must not establish a verified bound")
	}
	// Deferred URLs stay due: the next sweeps drain them.
	for i := 0; i < 20; i++ {
		if m.Sweep(context.Background()).Deferred == 0 {
			break
		}
	}
	if _, ok := m.VerifiedBound(); !ok {
		t.Error("bound should exist once every URL has been checked")
	}
}

func TestPollSweepRemovesGonePages(t *testing.T) {
	_, ms := testSite(t)
	clk := newManualClock()
	m := New(ms, Config{Clock: clk.Now, MinInterval: 10 * time.Second})
	var got collector
	m.Subscribe(&got)
	m.WatchMemSite(ms)
	url := "http://univ.example.edu/course/0.html"
	ms.RemovePage(url)
	rep := m.Sweep(context.Background())
	if rep.Removed != 1 || !rep.Clean {
		t.Fatalf("sweep = %+v", rep)
	}
	var rm Event
	for _, e := range got.all() {
		if e.Kind == site.ChangeRemoved {
			rm = e
		}
	}
	if rm.URL != url || rm.Scheme != sitegen.CoursePage {
		t.Fatalf("removal event = %+v", rm)
	}
	if m.Watched() != ms.Len() {
		t.Errorf("Watched = %d after removal, want %d", m.Watched(), ms.Len())
	}
}

// breakerServer fast-fails every access, like a guard with an open breaker.
type breakerServer struct{ inner site.Server }

func (b breakerServer) Get(url string) (site.Page, error) {
	return site.Page{}, site.ErrBreakerOpen
}

func (b breakerServer) Head(url string) (site.Meta, error) {
	return site.Meta{}, site.ErrBreakerOpen
}

func TestPollSweepBreakerAware(t *testing.T) {
	_, ms := testSite(t)
	clk := newManualClock()
	m := New(breakerServer{ms}, Config{Clock: clk.Now, MinInterval: 10 * time.Second})
	m.WatchMemSite(ms)
	rep := m.Sweep(context.Background())
	if rep.BreakerSkips != ms.Len() || rep.Clean || rep.Checked != 0 {
		t.Fatalf("sweep under open breaker = %+v", rep)
	}
	// Fast-fails never reached the network: no light connections were spent.
	if c := m.Counters(); c.Heads != 0 || c.BreakerSkips != ms.Len() {
		t.Errorf("counters = %+v", c)
	}
	if _, ok := m.VerifiedBound(); ok {
		t.Error("no verified bound while the breaker blocks every check")
	}
}

// errServer fails every HEAD with a transient error.
type errServer struct{ inner site.Server }

func (e errServer) Get(url string) (site.Page, error) { return e.inner.Get(url) } //lint:allow fetchgate test double forwarding to the fake site

func (e errServer) Head(url string) (site.Meta, error) {
	return site.Meta{}, errors.New("boom")
}

func TestPollSweepErrorNotClean(t *testing.T) {
	_, ms := testSite(t)
	clk := newManualClock()
	m := New(errServer{ms}, Config{Clock: clk.Now, MinInterval: 10 * time.Second})
	m.Watch("http://univ.example.edu/prof/0.html", sitegen.ProfPage, time.Time{})
	rep := m.Sweep(context.Background())
	if rep.Errors != 1 || rep.Clean {
		t.Fatalf("sweep = %+v", rep)
	}
}

func TestSweepSinkAndRun(t *testing.T) {
	_, ms := testSite(t)
	clk := newManualClock()
	m := New(ms, Config{Clock: clk.Now, MinInterval: 10 * time.Second})
	m.WatchMemSite(ms)
	var reports []SweepReport
	m.SubscribeSweep(SweepFunc(func(r SweepReport) { reports = append(reports, r) }))

	ctx, cancel := context.WithCancel(context.Background())
	slp := &site.InstantSleeper{}
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx, time.Minute, slp) }()
	for {
		m.mu.Lock()
		n := m.counters.Sweeps
		m.mu.Unlock()
		if n >= 2 {
			break
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	if len(reports) < 2 {
		t.Fatalf("sweep sink saw %d reports, want >= 2", len(reports))
	}
	if !reports[0].Clean {
		t.Errorf("first report = %+v", reports[0])
	}
}

func TestCountersAdd(t *testing.T) {
	total := Counters{Heads: 1, Sweeps: 2}
	total.Add(Counters{
		Heads: 1, Sweeps: 1, CleanSweeps: 2, Events: 3, Updates: 4,
		Additions: 5, Removals: 6, Touches: 7, Deferred: 8, BreakerSkips: 9, Errors: 10,
	})
	want := Counters{
		Heads: 2, Sweeps: 3, CleanSweeps: 2, Events: 3, Updates: 4,
		Additions: 5, Removals: 6, Touches: 7, Deferred: 8, BreakerSkips: 9, Errors: 10,
	}
	if !reflect.DeepEqual(total, want) {
		t.Errorf("Add result mismatch:\n got %+v\nwant %+v", total, want)
	}
}
