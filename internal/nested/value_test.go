package nested

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		null bool
	}{
		{TextValue("x"), KindText, false},
		{ImageValue("logo.gif"), KindImage, false},
		{LinkValue("http://a/b"), KindLink, false},
		{ListValue{}, KindList, false},
		{Null, KindText, true},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v.Kind() = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v.IsNull() = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !ValueEqual(TextValue("a"), TextValue("a")) {
		t.Error("equal texts unequal")
	}
	if ValueEqual(TextValue("a"), TextValue("b")) {
		t.Error("different texts equal")
	}
	// Same payload, different kind: must differ.
	if ValueEqual(TextValue("u"), LinkValue("u")) {
		t.Error("text and link with same payload should differ")
	}
	if ValueEqual(TextValue("a"), Null) {
		t.Error("text equals null")
	}
	if !ValueEqual(Null, Null) {
		t.Error("null should equal null")
	}
	if !ValueEqual(nil, nil) {
		t.Error("nil should equal nil")
	}
	if ValueEqual(nil, TextValue("a")) {
		t.Error("nil equals text")
	}
}

func TestListValueSetSemantics(t *testing.T) {
	t1 := T("A", TextValue("x"))
	t2 := T("A", TextValue("y"))
	l1 := ListValue{t1, t2}
	l2 := ListValue{t2, t1}
	if !ValueEqual(l1, l2) {
		t.Error("lists should compare as sets (order-insensitive)")
	}
	l3 := ListValue{t1}
	if ValueEqual(l1, l3) {
		t.Error("lists of different length should differ")
	}
}

// TestValueKeyInjective checks that canonical keys don't collide across
// adjacent concatenations (the classic "ab"+"c" vs "a"+"bc" pitfall).
func TestValueKeyInjective(t *testing.T) {
	a := ListValue{T("A", TextValue("ab"), "B", TextValue("c"))}
	b := ListValue{T("A", TextValue("a"), "B", TextValue("bc"))}
	if ValueEqual(a, b) {
		t.Error("keys collide across value boundaries")
	}
}

func TestCompareValues(t *testing.T) {
	if CompareValues(Null, TextValue("a")) >= 0 {
		t.Error("null should sort first")
	}
	if CompareValues(TextValue("a"), Null) <= 0 {
		t.Error("non-null vs null should be positive")
	}
	if CompareValues(Null, Null) != 0 {
		t.Error("null vs null should be 0")
	}
	if CompareValues(TextValue("a"), TextValue("b")) >= 0 {
		t.Error("a < b expected")
	}
	if CompareValues(TextValue("b"), TextValue("a")) <= 0 {
		t.Error("b > a expected")
	}
	if CompareValues(TextValue("a"), TextValue("a")) != 0 {
		t.Error("a = a expected")
	}
	// Cross-kind ordering is by kind.
	if CompareValues(TextValue("z"), LinkValue("a")) >= 0 {
		t.Error("text should sort before link")
	}
}

func TestConformsTo(t *testing.T) {
	if !ConformsTo(TextValue("x"), Text()) {
		t.Error("text conforms to text")
	}
	if ConformsTo(TextValue("x"), Link("P")) {
		t.Error("text should not conform to link")
	}
	if !ConformsTo(LinkValue("u"), Link("P")) {
		t.Error("link conforms to link")
	}
	if !ConformsTo(ImageValue("i"), Image()) {
		t.Error("image conforms to image")
	}
	if !ConformsTo(Null, Text()) {
		t.Error("null conforms to any type")
	}
	if ConformsTo(nil, Text()) {
		t.Error("nil should not conform")
	}
	lt := List(Field{Name: "A", Type: Text()})
	if !ConformsTo(ListValue{T("A", TextValue("x"))}, lt) {
		t.Error("well-typed list should conform")
	}
	if ConformsTo(ListValue{T("B", TextValue("x"))}, lt) {
		t.Error("list with wrong element attrs should not conform")
	}
	if ConformsTo(TextValue("x"), lt) {
		t.Error("scalar should not conform to list")
	}
	if ConformsTo(ListValue{T("A", LinkValue("u"))}, lt) {
		t.Error("list with ill-typed element should not conform")
	}
}

func TestValueStrings(t *testing.T) {
	if Null.String() != "⊥" {
		t.Errorf("null string = %q", Null.String())
	}
	if got := (ListValue{T("A", TextValue("x"))}).String(); got != "[<A: x>]" {
		t.Errorf("list string = %q", got)
	}
	if got := ImageValue("p.gif").String(); got != "img:p.gif" {
		t.Errorf("image string = %q", got)
	}
}

// randomScalar generates a random scalar Value for property tests.
func randomScalar(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return TextValue(randomString(r))
	case 1:
		return ImageValue(randomString(r))
	case 2:
		return LinkValue(randomString(r))
	default:
		return Null
	}
}

func randomString(r *rand.Rand) string {
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// scalarPair is a quick.Generator producing pairs of random scalars.
type scalarPair struct{ A, B Value }

// Generate implements quick.Generator.
func (scalarPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(scalarPair{A: randomScalar(r), B: randomScalar(r)})
}

// Property: ValueEqual is consistent with key equality and is symmetric;
// CompareValues is antisymmetric and agrees with ValueEqual on zero.
func TestValueEqualProperties(t *testing.T) {
	prop := func(p scalarPair) bool {
		eqAB := ValueEqual(p.A, p.B)
		eqBA := ValueEqual(p.B, p.A)
		if eqAB != eqBA {
			return false
		}
		cAB := CompareValues(p.A, p.B)
		cBA := CompareValues(p.B, p.A)
		if cAB != -cBA {
			return false
		}
		return eqAB == (cAB == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: ValueEqual is reflexive for every generated scalar.
func TestValueEqualReflexive(t *testing.T) {
	prop := func(p scalarPair) bool {
		return ValueEqual(p.A, p.A) && ValueEqual(p.B, p.B)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
