package nested

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a nested relation: a set of tuples over a common tuple type.
// The paper assumes page-relations are in Partitioned Normal Form [27]; the
// operators below preserve set semantics (no duplicate tuples).
type Relation struct {
	typ    *TupleType
	tuples []Tuple
	index  map[string]bool // tuple keys, for set semantics
}

// NewRelation creates an empty relation with the given tuple type.
func NewRelation(tt *TupleType) *Relation {
	return &Relation{typ: tt, index: make(map[string]bool)}
}

// FromTuples creates a relation with the given type and inserts each tuple,
// validating it against the type.
func FromTuples(tt *TupleType, tuples ...Tuple) (*Relation, error) {
	r := NewRelation(tt)
	for _, t := range tuples {
		if err := t.CheckAgainst(tt); err != nil {
			return nil, err
		}
		r.Insert(t)
	}
	return r, nil
}

// Type returns the relation's tuple type. It may be nil for relations built
// by untyped operators.
func (r *Relation) Type() *TupleType { return r.typ }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying tuple slice. It must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert adds a tuple unless an equal tuple is already present. It reports
// whether the tuple was added. The duplicate check renders the canonical
// key into a pooled buffer and looks it up via string(buf), so only the
// first occurrence of a key pays a string allocation.
func (r *Relation) Insert(t Tuple) bool {
	b := getKeyBuf()
	*b = t.appendKey(*b)
	added := false
	if !r.index[string(*b)] {
		r.index[string(*b)] = true
		r.tuples = append(r.tuples, t)
		added = true
	}
	putKeyBuf(b)
	return added
}

// Contains reports whether an equal tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	b := getKeyBuf()
	*b = t.appendKey(*b)
	ok := r.index[string(*b)]
	putKeyBuf(b)
	return ok
}

// Names returns the attribute names: from the type if present, otherwise
// from the first tuple.
func (r *Relation) Names() []string {
	if r.typ != nil {
		return r.typ.Names()
	}
	if len(r.tuples) > 0 {
		return r.tuples[0].Names()
	}
	return nil
}

// Select returns the tuples satisfying the predicate.
func (r *Relation) Select(p Predicate) (*Relation, error) {
	out := NewRelation(r.typ)
	for _, t := range r.tuples {
		ok, err := p.Eval(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Insert(t)
		}
	}
	return out, nil
}

// Project returns the relation projected on the given attributes, with
// duplicates removed (set semantics).
func (r *Relation) Project(attrs []string) (*Relation, error) {
	var tt *TupleType
	if r.typ != nil {
		fields := make([]Field, len(attrs))
		for i, a := range attrs {
			f, ok := r.typ.Field(a)
			if !ok {
				return nil, fmt.Errorf("nested: projection on missing attribute %q", a)
			}
			fields[i] = f
		}
		var err error
		tt, err = NewTupleType(fields...)
		if err != nil {
			return nil, err
		}
	}
	out := NewRelation(tt)
	for _, t := range r.tuples {
		pt, err := t.Project(attrs)
		if err != nil {
			return nil, err
		}
		out.Insert(pt)
	}
	return out, nil
}

// Rename returns the relation with attributes renamed per the map.
func (r *Relation) Rename(m map[string]string) (*Relation, error) {
	var tt *TupleType
	if r.typ != nil {
		fields := make([]Field, len(r.typ.Fields))
		for i, f := range r.typ.Fields {
			if nn, ok := m[f.Name]; ok {
				f.Name = nn
			}
			fields[i] = f
		}
		var err error
		tt, err = NewTupleType(fields...)
		if err != nil {
			return nil, err
		}
	}
	out := NewRelation(tt)
	for _, t := range r.tuples {
		out.Insert(t.Rename(m))
	}
	return out, nil
}

// EqCond is an equi-join condition Left = Right, where Left names an
// attribute of the left operand and Right one of the right operand.
type EqCond struct {
	Left  string
	Right string
}

// String renders the condition.
func (c EqCond) String() string { return c.Left + "=" + c.Right }

// Join computes the equi-join of two relations on the given conditions.
// With no conditions it is the cartesian product. Attribute sets must be
// disjoint (the algebra qualifies attributes with aliases before joining).
// Join uses a hash join on the condition attributes.
func (r *Relation) Join(s *Relation, conds []EqCond) (*Relation, error) {
	var tt *TupleType
	if r.typ != nil && s.typ != nil {
		fields := append(append([]Field(nil), r.typ.Fields...), s.typ.Fields...)
		var err error
		tt, err = NewTupleType(fields...)
		if err != nil {
			return nil, err
		}
	}
	out := NewRelation(tt)
	if len(conds) == 0 {
		for _, t := range r.tuples {
			for _, u := range s.tuples {
				c, err := t.Concat(u)
				if err != nil {
					return nil, err
				}
				out.Insert(c)
			}
		}
		return out, nil
	}
	// Build side: hash the smaller relation on its condition attributes.
	buildLeft := r.Len() < s.Len()
	build, probe := s, r
	if buildLeft {
		build, probe = r, s
	}
	h := NewHashJoiner(conds, buildLeft)
	for _, t := range build.tuples {
		if err := h.Build(t); err != nil {
			return nil, err
		}
	}
	var buf []Tuple
	for _, t := range probe.tuples {
		joined, err := h.ProbeAppend(t, buf[:0])
		if err != nil {
			return nil, err
		}
		for _, c := range joined {
			out.Insert(c)
		}
		buf = joined
	}
	return out, nil
}

// appendJoinKey appends the join key of t over attrs to dst. hasNull
// reports that a condition attribute was null (such tuples never join).
func appendJoinKey(dst []byte, t Tuple, attrs []string) (key []byte, hasNull bool, err error) {
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			return dst, false, fmt.Errorf("nested: join on missing attribute %q", a)
		}
		if v.IsNull() {
			return dst, true, nil
		}
		dst = v.appendKey(dst)
		dst = append(dst, '|')
	}
	return dst, false, nil
}

// Unnest implements the unnest operator μ_A (written R ◦ A in the paper):
// each tuple is replaced by one tuple per element of its list attribute A,
// with the element's fields promoted to top level under names
// "A.field". Tuples whose A is null or empty produce no output, matching the
// semantics of navigation (there is nothing to navigate).
func (r *Relation) Unnest(attr string) (*Relation, error) {
	var tt *TupleType
	var elemFields []Field
	if r.typ != nil {
		f, ok := r.typ.Field(attr)
		if !ok {
			return nil, fmt.Errorf("nested: unnest on missing attribute %q", attr)
		}
		if f.Type.Kind != KindList {
			return nil, fmt.Errorf("nested: unnest on non-list attribute %q of type %s", attr, f.Type)
		}
		elemFields = f.Type.Elem
		fields := make([]Field, 0, len(r.typ.Fields)-1+len(elemFields))
		for _, g := range r.typ.Fields {
			if g.Name != attr {
				fields = append(fields, g)
			}
		}
		for _, g := range elemFields {
			g.Name = attr + "." + g.Name
			fields = append(fields, g)
		}
		var err error
		tt, err = NewTupleType(fields...)
		if err != nil {
			return nil, err
		}
	}
	out := NewRelation(tt)
	var u Unnester
	for _, t := range r.tuples {
		rows, err := u.Unnest(t, attr, nil)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			out.Insert(row)
		}
	}
	return out, nil
}

// Nest groups tuples by all attributes except those listed, collecting the
// listed attributes into a list attribute named as given. It is the inverse
// of Unnest on PNF relations and is used by the materialized-view store.
func (r *Relation) Nest(listName string, elemAttrs []string) (*Relation, error) {
	elemSet := make(map[string]bool, len(elemAttrs))
	for _, a := range elemAttrs {
		elemSet[a] = true
	}
	var groupAttrs []string
	for _, n := range r.Names() {
		if !elemSet[n] {
			groupAttrs = append(groupAttrs, n)
		}
	}
	type group struct {
		base Tuple
		list ListValue
	}
	var order []string
	groups := make(map[string]*group)
	for _, t := range r.tuples {
		base, err := t.Project(groupAttrs)
		if err != nil {
			return nil, err
		}
		elem, err := t.Project(elemAttrs)
		if err != nil {
			return nil, err
		}
		// Strip the "List." prefix convention if present.
		k := base.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{base: base}
			groups[k] = g
			order = append(order, k)
		}
		g.list = append(g.list, elem)
	}
	out := NewRelation(nil)
	for _, k := range order {
		g := groups[k]
		out.Insert(g.base.With(listName, g.list))
	}
	return out, nil
}

// Union returns the set union of two relations with the same attribute set.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if r.typ != nil && s.typ != nil && !r.typ.SameFieldSet(s.typ) {
		return nil, fmt.Errorf("nested: union of incompatible types %s and %s", r.typ, s.typ)
	}
	out := NewRelation(r.typ)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	for _, t := range s.tuples {
		out.Insert(t)
	}
	return out, nil
}

// Minus returns the set difference r − s.
func (r *Relation) Minus(s *Relation) *Relation {
	out := NewRelation(r.typ)
	for _, t := range r.tuples {
		if !s.Contains(t) {
			out.Insert(t)
		}
	}
	return out
}

// DistinctValues returns the distinct non-null values of an attribute, in
// first-seen order.
func (r *Relation) DistinctValues(attr string) ([]Value, error) {
	seen := make(map[string]bool)
	var out []Value
	for _, t := range r.tuples {
		v, ok := t.Get(attr)
		if !ok {
			return nil, fmt.Errorf("nested: missing attribute %q", attr)
		}
		if v.IsNull() {
			continue
		}
		k := ValueKey(v)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// Sorted returns the tuples ordered by their canonical keys, for
// deterministic display and golden tests.
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Equal reports whether two relations contain the same set of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// String renders the relation, one tuple per line, in canonical order.
func (r *Relation) String() string {
	var sb strings.Builder
	for _, t := range r.Sorted() {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
