package nested

import "sync"

// keyBufPool recycles the byte buffers used to render canonical tuple and
// value keys. Key construction dominates allocation in set-semantics
// operators (Insert dedup, hash joins, distinct), so buffers are pooled and
// reset to zero length before being returned.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func getKeyBuf() *[]byte { return keyBufPool.Get().(*[]byte) }

// putKeyBuf resets the buffer (keeping grown capacity) and returns it to
// the pool. Callers must not retain aliases of the buffer after Put.
func putKeyBuf(b *[]byte) {
	*b = (*b)[:0]
	keyBufPool.Put(b)
}
