package nested

import "testing"

func aliasBase(t *testing.T) Tuple {
	t.Helper()
	tup, err := NewTuple(
		[]string{"A", "B", "C"},
		[]Value{TextValue("a"), TextValue("b"), TextValue("c")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tup
}

// assertTuple checks a tuple's full contents against name/value pairs.
func assertTuple(t *testing.T, tup Tuple, want ...string) {
	t.Helper()
	if tup.Arity()*2 != len(want) {
		t.Fatalf("arity %d, want %d attrs", tup.Arity(), len(want)/2)
	}
	for i := 0; i < len(want); i += 2 {
		v, ok := tup.Get(want[i])
		if !ok {
			t.Fatalf("missing attribute %q in %v", want[i], tup)
		}
		if got := v.(TextValue); string(got) != want[i+1] {
			t.Errorf("%s = %q, want %q", want[i], got, want[i+1])
		}
	}
}

// TestWithOverrideDoesNotAliasOriginal: writing through the backing slices
// of a tuple returned by With (override branch) must never show through the
// original, even though the implementation may share the names slice of an
// immutable tuple.
func TestWithOverrideDoesNotAliasOriginal(t *testing.T) {
	orig := aliasBase(t)
	derived := orig.With("B", TextValue("B2"))

	// Clobber every backing cell of the derived tuple.
	for i := range derived.vals {
		derived.vals[i] = TextValue("junk")
	}
	assertTuple(t, orig, "A", "a", "B", "b", "C", "c")
}

// TestWithAddDoesNotAliasOriginal covers the append branch, including the
// spare-capacity hazard: two siblings derived from the same base must not
// see each other's added attribute, and appends through one must not leak
// into the other or the base.
func TestWithAddDoesNotAliasOriginal(t *testing.T) {
	orig := aliasBase(t)
	s1 := orig.With("D", TextValue("d1"))
	s2 := orig.With("D", TextValue("d2"))
	assertTuple(t, s1, "A", "a", "B", "b", "C", "c", "D", "d1")
	assertTuple(t, s2, "A", "a", "B", "b", "C", "c", "D", "d2")

	// Grow each sibling again; the grandchildren must stay independent even
	// if the siblings' backing arrays had spare capacity.
	g1 := s1.With("E", TextValue("e1"))
	g2 := s2.With("E", TextValue("e2"))
	for i := range g1.names {
		g1.names[i] = "X"
		g1.vals[i] = TextValue("junk")
	}
	assertTuple(t, orig, "A", "a", "B", "b", "C", "c")
	assertTuple(t, s1, "A", "a", "B", "b", "C", "c", "D", "d1")
	assertTuple(t, s2, "A", "a", "B", "b", "C", "c", "D", "d2")
	assertTuple(t, g2, "A", "a", "B", "b", "C", "c", "D", "d2", "E", "e2")
}

// TestWithoutDoesNotAliasOriginal: mutating the slices behind a Without
// result must leave the original intact, and removing from the middle must
// not shift values visible through the original.
func TestWithoutDoesNotAliasOriginal(t *testing.T) {
	orig := aliasBase(t)
	derived := orig.Without("B")
	assertTuple(t, derived, "A", "a", "C", "c")

	for i := range derived.names {
		derived.names[i] = "X"
		derived.vals[i] = TextValue("junk")
	}
	assertTuple(t, orig, "A", "a", "B", "b", "C", "c")

	// Removing an absent attribute returns the tuple itself; that is the
	// documented no-op, not an aliasing hazard, because tuples are
	// immutable by convention.
	same := orig.Without("Nope")
	assertTuple(t, same, "A", "a", "B", "b", "C", "c")
}

// TestWithoutThenWithSpareCapacity chains the two: Without leaves spare
// capacity at the end of its fresh slices, so a following With must still
// not write into a region another tuple can see.
func TestWithoutThenWithSpareCapacity(t *testing.T) {
	orig := aliasBase(t)
	shrunk := orig.Without("C")
	r1 := shrunk.With("D", TextValue("d1"))
	r2 := shrunk.With("D", TextValue("d2"))
	assertTuple(t, r1, "A", "a", "B", "b", "D", "d1")
	assertTuple(t, r2, "A", "a", "B", "b", "D", "d2")
	assertTuple(t, shrunk, "A", "a", "B", "b")
	assertTuple(t, orig, "A", "a", "B", "b", "C", "c")
}
