package nested

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindText:  "text",
		KindImage: "image",
		KindLink:  "link",
		KindList:  "list",
		Kind(99):  "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestTypeConstructorsAndString(t *testing.T) {
	if got := Text().String(); got != "text" {
		t.Errorf("Text().String() = %q", got)
	}
	if got := Image().String(); got != "image" {
		t.Errorf("Image().String() = %q", got)
	}
	if got := Link("ProfPage").String(); got != "link to ProfPage" {
		t.Errorf("Link().String() = %q", got)
	}
	lt := List(
		Field{Name: "ProfName", Type: Text()},
		Field{Name: "ToProf", Type: Link("ProfPage")},
	)
	want := "list of (ProfName: text, ToProf: link to ProfPage)"
	if got := lt.String(); got != want {
		t.Errorf("List().String() = %q, want %q", got, want)
	}
}

func TestTypeMono(t *testing.T) {
	for _, tt := range []Type{Text(), Image(), Link("P")} {
		if !tt.Mono() {
			t.Errorf("%s should be mono-valued", tt)
		}
	}
	if List().Mono() {
		t.Error("list type should be multi-valued")
	}
}

func TestTypeEqual(t *testing.T) {
	a := List(Field{Name: "A", Type: Text()}, Field{Name: "L", Type: Link("P")})
	b := List(Field{Name: "A", Type: Text()}, Field{Name: "L", Type: Link("P")})
	if !a.Equal(b) {
		t.Error("identical list types should be equal")
	}
	c := List(Field{Name: "A", Type: Text()}, Field{Name: "L", Type: Link("Q")})
	if a.Equal(c) {
		t.Error("list types with different link targets should differ")
	}
	d := List(Field{Name: "A", Type: Text()})
	if a.Equal(d) {
		t.Error("list types with different arity should differ")
	}
	if Text().Equal(Image()) {
		t.Error("text should not equal image")
	}
	e := List(Field{Name: "A", Type: Text(), Optional: true}, Field{Name: "L", Type: Link("P")})
	if a.Equal(e) {
		t.Error("optionality should be part of type equality")
	}
}

func TestNewTupleTypeValidation(t *testing.T) {
	if _, err := NewTupleType(Field{Name: "", Type: Text()}); err == nil {
		t.Error("empty field name should be rejected")
	}
	if _, err := NewTupleType(Field{Name: "A", Type: Text()}, Field{Name: "A", Type: Text()}); err == nil {
		t.Error("duplicate field name should be rejected")
	}
	tt, err := NewTupleType(Field{Name: "A", Type: Text()}, Field{Name: "B", Type: Link("P")})
	if err != nil {
		t.Fatalf("NewTupleType: %v", err)
	}
	if tt.Index("B") != 1 || tt.Index("C") != -1 {
		t.Error("Index lookup wrong")
	}
	f, ok := tt.Field("A")
	if !ok || f.Type.Kind != KindText {
		t.Error("Field lookup wrong")
	}
	if _, ok := tt.Field("missing"); ok {
		t.Error("Field on missing name should report false")
	}
}

func TestMustTupleTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTupleType should panic on invalid input")
		}
	}()
	MustTupleType(Field{Name: "A", Type: Text()}, Field{Name: "A", Type: Text()})
}

func TestTupleTypeEqualAndString(t *testing.T) {
	a := MustTupleType(Field{Name: "A", Type: Text()}, Field{Name: "B", Type: Text(), Optional: true})
	b := MustTupleType(Field{Name: "A", Type: Text()}, Field{Name: "B", Type: Text(), Optional: true})
	c := MustTupleType(Field{Name: "B", Type: Text(), Optional: true}, Field{Name: "A", Type: Text()})
	if !a.Equal(b) {
		t.Error("equal tuple types reported unequal")
	}
	if a.Equal(c) {
		t.Error("Equal should be order-sensitive")
	}
	if !a.SameFieldSet(c) {
		t.Error("SameFieldSet should be order-insensitive")
	}
	if a.Equal(nil) {
		t.Error("non-nil should not equal nil")
	}
	var nilTT *TupleType
	if !nilTT.Equal(nil) {
		t.Error("nil should equal nil")
	}
	if !strings.Contains(a.String(), "B?: text") {
		t.Errorf("String should mark optional fields: %s", a)
	}
	if got := a.Names(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Names() = %v", got)
	}
}

func TestSameFieldSetDifferentLengths(t *testing.T) {
	a := MustTupleType(Field{Name: "A", Type: Text()})
	b := MustTupleType(Field{Name: "A", Type: Text()}, Field{Name: "B", Type: Text()})
	if a.SameFieldSet(b) {
		t.Error("different arities should not have the same field set")
	}
	c := MustTupleType(Field{Name: "C", Type: Text()})
	if a.SameFieldSet(c) {
		t.Error("different names should not have the same field set")
	}
}
