package nested

// HashJoiner is an incremental hash equi-join. Unlike Relation.Join, which
// needs both inputs fully materialized, a HashJoiner separates the two
// phases so a streaming evaluator can hash the build side as its tuples
// arrive and probe with the other side's tuples as they arrive. The build
// side is chosen by the caller (typically the side with the smaller
// estimated cardinality when actual sizes are not yet known).
//
// With no conditions the join degenerates to the cartesian product: every
// build tuple matches every probe tuple. Tuples with a null value in any
// condition attribute never join, matching Relation.Join.
//
// A HashJoiner is not safe for concurrent use; callers serialize Build and
// Probe (Probe is only meaningful once the build side is exhausted).
type HashJoiner struct {
	conds      []EqCond
	buildLeft  bool
	buildAttrs []string
	probeAttrs []string
	table      map[string][]Tuple
	buildCount int
}

// NewHashJoiner creates a joiner for the given conditions. buildLeft
// selects which operand is hashed: true hashes the left (EqCond.Left)
// side, false the right. Probe results are always concatenated in
// left-then-right attribute order regardless of orientation.
func NewHashJoiner(conds []EqCond, buildLeft bool) *HashJoiner {
	buildAttrs := make([]string, len(conds))
	probeAttrs := make([]string, len(conds))
	for i, c := range conds {
		if buildLeft {
			buildAttrs[i] = c.Left
			probeAttrs[i] = c.Right
		} else {
			buildAttrs[i] = c.Right
			probeAttrs[i] = c.Left
		}
	}
	return &HashJoiner{
		conds:      conds,
		buildLeft:  buildLeft,
		buildAttrs: buildAttrs,
		probeAttrs: probeAttrs,
		table:      make(map[string][]Tuple),
	}
}

// BuildLeft reports which side is hashed.
func (h *HashJoiner) BuildLeft() bool { return h.buildLeft }

// BuildSize returns the number of tuples hashed so far.
func (h *HashJoiner) BuildSize() int { return h.buildCount }

// Build adds one build-side tuple to the hash table.
func (h *HashJoiner) Build(t Tuple) error {
	k, null, err := joinKey(t, h.buildAttrs)
	if err != nil {
		return err
	}
	if null {
		return nil // nulls never join
	}
	h.table[k] = append(h.table[k], t)
	h.buildCount++
	return nil
}

// Probe matches one probe-side tuple against the hash table, returning the
// joined tuples (left concatenated with right) in build-insertion order.
func (h *HashJoiner) Probe(t Tuple) ([]Tuple, error) {
	k, null, err := joinKey(t, h.probeAttrs)
	if err != nil {
		return nil, err
	}
	if null {
		return nil, nil
	}
	matches := h.table[k]
	if len(matches) == 0 {
		return nil, nil
	}
	out := make([]Tuple, 0, len(matches))
	for _, u := range matches {
		left, right := t, u
		if h.buildLeft {
			left, right = u, t
		}
		c, err := left.Concat(right)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
