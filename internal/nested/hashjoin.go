package nested

// HashJoiner is an incremental hash equi-join. Unlike Relation.Join, which
// needs both inputs fully materialized, a HashJoiner separates the two
// phases so a streaming evaluator can hash the build side as its tuples
// arrive and probe with the other side's tuples as they arrive. The build
// side is chosen by the caller (typically the side with the smaller
// estimated cardinality when actual sizes are not yet known).
//
// With no conditions the join degenerates to the cartesian product: every
// build tuple matches every probe tuple. Tuples with a null value in any
// condition attribute never join, matching Relation.Join.
//
// A HashJoiner is not safe for concurrent use; callers serialize Build and
// Probe (Probe is only meaningful once the build side is exhausted).
type HashJoiner struct {
	conds      []EqCond
	buildLeft  bool
	buildAttrs []string
	probeAttrs []string
	// table buckets rows by join key behind a pointer, so probe lookups
	// via string(buf) stay allocation-free and appends to a bucket do not
	// rewrite the map entry.
	table      map[string]*joinBucket
	buildCount int
	// names caches the concatenated (and disjointness-checked) output
	// names per (left names, right names) slice pair: tuples flowing
	// through a plan overwhelmingly share name arrays, so the result
	// tuples of a join can share one names slice too.
	names concatNames
}

type joinBucket struct {
	rows []Tuple
}

// NewHashJoiner creates a joiner for the given conditions. buildLeft
// selects which operand is hashed: true hashes the left (EqCond.Left)
// side, false the right. Probe results are always concatenated in
// left-then-right attribute order regardless of orientation.
func NewHashJoiner(conds []EqCond, buildLeft bool) *HashJoiner {
	buildAttrs := make([]string, len(conds))
	probeAttrs := make([]string, len(conds))
	for i, c := range conds {
		if buildLeft {
			buildAttrs[i] = c.Left
			probeAttrs[i] = c.Right
		} else {
			buildAttrs[i] = c.Right
			probeAttrs[i] = c.Left
		}
	}
	return &HashJoiner{
		conds:      conds,
		buildLeft:  buildLeft,
		buildAttrs: buildAttrs,
		probeAttrs: probeAttrs,
		table:      make(map[string]*joinBucket),
	}
}

// BuildLeft reports which side is hashed.
func (h *HashJoiner) BuildLeft() bool { return h.buildLeft }

// BuildSize returns the number of tuples hashed so far.
func (h *HashJoiner) BuildSize() int { return h.buildCount }

// Build adds one build-side tuple to the hash table.
func (h *HashJoiner) Build(t Tuple) error {
	kb := getKeyBuf()
	k, null, err := appendJoinKey(*kb, t, h.buildAttrs)
	*kb = k
	if err != nil || null {
		putKeyBuf(kb)
		return err // nulls never join
	}
	b, ok := h.table[string(k)]
	if !ok {
		b = &joinBucket{}
		h.table[string(k)] = b
	}
	b.rows = append(b.rows, t)
	h.buildCount++
	putKeyBuf(kb)
	return nil
}

// Probe matches one probe-side tuple against the hash table, returning the
// joined tuples (left concatenated with right) in build-insertion order.
func (h *HashJoiner) Probe(t Tuple) ([]Tuple, error) {
	return h.ProbeAppend(t, nil)
}

// ProbeAppend is Probe appending the joined tuples to dst, so a streaming
// caller can reuse one output buffer across a batch of probes.
func (h *HashJoiner) ProbeAppend(t Tuple, dst []Tuple) ([]Tuple, error) {
	kb := getKeyBuf()
	k, null, err := appendJoinKey(*kb, t, h.probeAttrs)
	*kb = k
	if err != nil || null {
		putKeyBuf(kb)
		return dst, err
	}
	b := h.table[string(k)]
	putKeyBuf(kb)
	if b == nil || len(b.rows) == 0 {
		return dst, nil
	}
	for _, u := range b.rows {
		left, right := t, u
		if h.buildLeft {
			left, right = u, t
		}
		names, err := h.names.concat(left.names, right.names)
		if err != nil {
			return dst, err
		}
		vals := make([]Value, 0, len(left.vals)+len(right.vals))
		vals = append(append(vals, left.vals...), right.vals...)
		dst = append(dst, Tuple{names: names, vals: vals})
	}
	return dst, nil
}
