package nested

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewTupleValidation(t *testing.T) {
	if _, err := NewTuple([]string{"A"}, nil); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewTuple([]string{"A", "A"}, []Value{TextValue("x"), TextValue("y")}); err == nil {
		t.Error("duplicate attribute should error")
	}
	if _, err := NewTuple([]string{""}, []Value{TextValue("x")}); err == nil {
		t.Error("empty attribute name should error")
	}
	if _, err := NewTuple([]string{"A"}, []Value{nil}); err == nil {
		t.Error("nil value should error")
	}
}

func TestTHelperPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd args":   func() { T("A") },
		"non-string": func() { T(3, TextValue("x")) },
		"non-value":  func() { T("A", "raw string") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTupleAccessors(t *testing.T) {
	tup := T("A", TextValue("x"), "B", LinkValue("u"))
	if tup.Arity() != 2 {
		t.Errorf("arity = %d", tup.Arity())
	}
	v, ok := tup.Get("B")
	if !ok || v.String() != "u" {
		t.Errorf("Get(B) = %v, %v", v, ok)
	}
	if _, ok := tup.Get("C"); ok {
		t.Error("Get on missing should report false")
	}
	if tup.At(0).String() != "x" {
		t.Error("At(0) wrong")
	}
	if tup.MustGet("A").String() != "x" {
		t.Error("MustGet wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet on missing attr should panic")
			}
		}()
		tup.MustGet("missing")
	}()
}

func TestTupleWithWithout(t *testing.T) {
	tup := T("A", TextValue("x"))
	t2 := tup.With("B", TextValue("y"))
	if t2.Arity() != 2 || tup.Arity() != 1 {
		t.Error("With should not mutate the receiver")
	}
	t3 := t2.With("A", TextValue("z"))
	if t3.MustGet("A").String() != "z" || t2.MustGet("A").String() != "x" {
		t.Error("With override wrong or mutated receiver")
	}
	t4 := t2.Without("A")
	if t4.Arity() != 1 || t2.Arity() != 2 {
		t.Error("Without wrong or mutated receiver")
	}
	if t5 := t2.Without("missing"); t5.Arity() != 2 {
		t.Error("Without on missing attribute should be identity")
	}
}

func TestTupleProjectRenameConcat(t *testing.T) {
	tup := T("A", TextValue("x"), "B", TextValue("y"), "C", TextValue("z"))
	p, err := tup.Project([]string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "<C: z, A: x>" {
		t.Errorf("project = %q", got)
	}
	if _, err := tup.Project([]string{"Z"}); err == nil {
		t.Error("project on missing attribute should error")
	}
	r := tup.Rename(map[string]string{"A": "AA"})
	if _, ok := r.Get("AA"); !ok {
		t.Error("rename failed")
	}
	if _, ok := r.Get("A"); ok {
		t.Error("old name should be gone")
	}
	c, err := T("X", TextValue("1")).Concat(T("Y", TextValue("2")))
	if err != nil || c.Arity() != 2 {
		t.Errorf("concat: %v %v", c, err)
	}
	if _, err := tup.Concat(tup); err == nil {
		t.Error("concat with overlapping attributes should error")
	}
}

func TestTupleKeyOrderInsensitive(t *testing.T) {
	a := T("A", TextValue("x"), "B", TextValue("y"))
	b := T("B", TextValue("y"), "A", TextValue("x"))
	if a.Key() != b.Key() {
		t.Error("key should be attribute-order insensitive")
	}
	if !a.Equal(b) {
		t.Error("tuples equal up to order should be Equal")
	}
	c := T("A", TextValue("y"), "B", TextValue("x"))
	if a.Equal(c) {
		t.Error("swapped values should differ")
	}
	d := T("A", TextValue("x"))
	if a.Equal(d) {
		t.Error("different arity should differ")
	}
}

func TestTupleCheckAgainst(t *testing.T) {
	tt := MustTupleType(
		Field{Name: "URL", Type: Link("Self")},
		Field{Name: "Name", Type: Text()},
		Field{Name: "Email", Type: Text(), Optional: true},
	)
	good := T("URL", LinkValue("u"), "Name", TextValue("n"), "Email", Null)
	if err := good.CheckAgainst(tt); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	badNull := T("URL", LinkValue("u"), "Name", Null, "Email", Null)
	if err := badNull.CheckAgainst(tt); err == nil {
		t.Error("null for non-optional attribute should be rejected")
	}
	badType := T("URL", TextValue("u"), "Name", TextValue("n"), "Email", Null)
	if err := badType.CheckAgainst(tt); err == nil {
		t.Error("text where link expected should be rejected")
	}
	missing := T("URL", LinkValue("u"), "Name", TextValue("n"), "Wrong", Null)
	if err := missing.CheckAgainst(tt); err == nil {
		t.Error("wrong attribute set should be rejected")
	}
	short := T("URL", LinkValue("u"))
	if err := short.CheckAgainst(tt); err == nil {
		t.Error("missing attributes should be rejected")
	}
}

func TestTupleString(t *testing.T) {
	tup := T("A", TextValue("x"), "L", ListValue{T("B", TextValue("y"))})
	want := "<A: x, L: [<B: y>]>"
	if got := tup.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// randomFlatTuple builds a random flat tuple over a fixed attribute pool.
type randomFlatTuple struct{ T Tuple }

// Generate implements quick.Generator.
func (randomFlatTuple) Generate(r *rand.Rand, _ int) reflect.Value {
	pool := []string{"A", "B", "C", "D", "E"}
	n := 1 + r.Intn(len(pool))
	names := append([]string(nil), pool[:n]...)
	// Shuffle names so attribute order varies.
	r.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = randomScalar(r)
	}
	return reflect.ValueOf(randomFlatTuple{T: MustTuple(names, vals)})
}

// Property: projecting a tuple on all of its attributes (in sorted order)
// yields an Equal tuple, and Key is stable under With+Without round trip.
func TestTupleProperties(t *testing.T) {
	prop := func(rt randomFlatTuple) bool {
		tup := rt.T
		names := append([]string(nil), tup.Names()...)
		p, err := tup.Project(names)
		if err != nil || !p.Equal(tup) {
			return false
		}
		// Adding then removing a fresh attribute restores equality.
		mod := tup.With("Z", TextValue("zz")).Without("Z")
		return mod.Equal(tup)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: tuple keys never collide for tuples with different value maps.
func TestTupleKeySeparatesValues(t *testing.T) {
	a := T("A", TextValue("x|B=y"), "B", TextValue("z"))
	b := T("A", TextValue("x"), "B", TextValue("y|z"))
	if a.Key() == b.Key() {
		t.Error("key collision across attribute boundaries")
	}
	if !strings.Contains(a.Key(), "A=") {
		t.Error("key should embed attribute names")
	}
}
