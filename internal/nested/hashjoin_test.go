package nested

import (
	"testing"
)

func TestHashJoinerBuildRight(t *testing.T) {
	h := NewHashJoiner([]EqCond{{Left: "B", Right: "C"}}, false)
	for _, tup := range []Tuple{
		textTuple("C", "x", "D", "p"),
		textTuple("C", "x", "D", "q"),
		textTuple("C", "z", "D", "r"),
	} {
		if err := h.Build(tup); err != nil {
			t.Fatal(err)
		}
	}
	if h.BuildSize() != 3 {
		t.Errorf("BuildSize = %d", h.BuildSize())
	}
	out, err := h.Probe(textTuple("A", "1", "B", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("probe produced %d tuples, want 2", len(out))
	}
	// Joined tuples are left ++ right regardless of build orientation.
	for _, j := range out {
		names := j.Names()
		if names[0] != "A" || names[len(names)-1] != "D" {
			t.Errorf("attribute order = %v, want left then right", names)
		}
	}
	if out[0].MustGet("D").String() != "p" || out[1].MustGet("D").String() != "q" {
		t.Error("matches should come in build insertion order")
	}
	none, err := h.Probe(textTuple("A", "9", "B", "w"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("probe of unmatched key produced %d tuples", len(none))
	}
}

func TestHashJoinerBuildLeft(t *testing.T) {
	h := NewHashJoiner([]EqCond{{Left: "B", Right: "C"}}, true)
	if !h.BuildLeft() {
		t.Fatal("BuildLeft should report orientation")
	}
	if err := h.Build(textTuple("A", "1", "B", "x")); err != nil {
		t.Fatal(err)
	}
	out, err := h.Probe(textTuple("C", "x", "D", "p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("probe produced %d tuples, want 1", len(out))
	}
	// Even with the left side as build input, output stays left ++ right.
	names := out[0].Names()
	if names[0] != "A" || names[len(names)-1] != "D" {
		t.Errorf("attribute order = %v, want left then right", names)
	}
}

func TestHashJoinerMultiColumnAndNulls(t *testing.T) {
	h := NewHashJoiner([]EqCond{{Left: "A", Right: "A2"}, {Left: "B", Right: "B2"}}, false)
	if err := h.Build(textTuple("A2", "1", "B2", "x")); err != nil {
		t.Fatal(err)
	}
	// Null join keys never match (SQL semantics) and are skipped at build.
	nullSide, _ := NewTuple([]string{"A2", "B2"}, []Value{Null, TextValue("x")})
	if err := h.Build(nullSide); err != nil {
		t.Fatal(err)
	}
	if h.BuildSize() != 1 {
		t.Errorf("BuildSize = %d (null-keyed tuples are never hashed)", h.BuildSize())
	}
	out, err := h.Probe(textTuple("A", "1", "B", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("probe produced %d tuples, want 1", len(out))
	}
	nullProbe, _ := NewTuple([]string{"A", "B"}, []Value{Null, TextValue("x")})
	out, err = h.Probe(nullProbe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Error("null probe key should not match")
	}
}

func TestHashJoinerMissingAttr(t *testing.T) {
	h := NewHashJoiner([]EqCond{{Left: "B", Right: "C"}}, false)
	if err := h.Build(textTuple("X", "1")); err == nil {
		t.Error("build without the join attribute should error")
	}
	if err := h.Build(textTuple("C", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Probe(textTuple("X", "1")); err == nil {
		t.Error("probe without the join attribute should error")
	}
}

func TestHashJoinerCartesian(t *testing.T) {
	h := NewHashJoiner(nil, false)
	for _, tup := range []Tuple{textTuple("C", "x"), textTuple("C", "y")} {
		if err := h.Build(tup); err != nil {
			t.Fatal(err)
		}
	}
	out, err := h.Probe(textTuple("A", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("cartesian probe produced %d tuples, want 2", len(out))
	}
}
