package nested

import (
	"fmt"
	"strings"
)

// Tuple is a nested tuple: an ordered list of named values. Tuples are
// immutable by convention; operators build new tuples rather than mutating.
type Tuple struct {
	names []string
	vals  []Value
}

// NewTuple builds a tuple from parallel name/value slices.
func NewTuple(names []string, vals []Value) (Tuple, error) {
	if len(names) != len(vals) {
		return Tuple{}, fmt.Errorf("nested: %d names but %d values", len(names), len(vals))
	}
	seen := make(map[string]bool, len(names))
	for i, n := range names {
		if n == "" {
			return Tuple{}, fmt.Errorf("nested: empty attribute name at position %d", i)
		}
		if seen[n] {
			return Tuple{}, fmt.Errorf("nested: duplicate attribute %q", n)
		}
		seen[n] = true
		if vals[i] == nil {
			return Tuple{}, fmt.Errorf("nested: nil value for attribute %q (use Null)", n)
		}
	}
	return Tuple{names: names, vals: vals}, nil
}

// TrustedTuple wraps parallel name/value slices into a tuple without
// validation or copying. The caller guarantees what NewTuple would check:
// equal lengths, unique non-empty names, no nil values — and that neither
// slice is mutated afterwards. It exists for hot paths (page wrapping,
// streaming operators) that build many tuples sharing one names slice, so
// the per-tuple cost is a single value-slice allocation.
func TrustedTuple(names []string, vals []Value) Tuple {
	return Tuple{names: names, vals: vals}
}

// MustTuple is NewTuple that panics on error.
func MustTuple(names []string, vals []Value) Tuple {
	t, err := NewTuple(names, vals)
	if err != nil {
		panic(err)
	}
	return t
}

// T builds a tuple from alternating name, value pairs:
// T("Name", TextValue("x"), "ToDept", LinkValue("u1")). It panics on
// malformed input; intended for generators and tests.
func T(pairs ...any) Tuple {
	if len(pairs)%2 != 0 {
		panic("nested.T: odd number of arguments")
	}
	names := make([]string, 0, len(pairs)/2)
	vals := make([]Value, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("nested.T: argument %d is not a string name", i))
		}
		val, ok := pairs[i+1].(Value)
		if !ok {
			panic(fmt.Sprintf("nested.T: argument %d is not a Value", i+1))
		}
		names = append(names, name)
		vals = append(vals, val)
	}
	return MustTuple(names, vals)
}

// Arity returns the number of attributes.
func (t Tuple) Arity() int { return len(t.names) }

// Names returns the attribute names in order. The slice must not be mutated.
func (t Tuple) Names() []string { return t.names }

// Get returns the value of the named attribute and whether it exists.
func (t Tuple) Get(name string) (Value, bool) {
	for i, n := range t.names {
		if n == name {
			return t.vals[i], true
		}
	}
	return nil, false
}

// MustGet returns the value of the named attribute, panicking if absent.
// Operators validate attribute existence against the schema before
// evaluation, so a miss here is a programming error.
func (t Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("nested: attribute %q not in tuple %v", name, t.names))
	}
	return v
}

// At returns the i-th value.
func (t Tuple) At(i int) Value { return t.vals[i] }

// With returns a copy of the tuple extended with (or overriding) the named
// attribute.
func (t Tuple) With(name string, v Value) Tuple {
	for i, n := range t.names {
		if n == name {
			vals := append(append([]Value(nil), t.vals[:i]...), v)
			vals = append(vals, t.vals[i+1:]...)
			return Tuple{names: t.names, vals: vals}
		}
	}
	names := append(append([]string(nil), t.names...), name)
	vals := append(append([]Value(nil), t.vals...), v)
	return Tuple{names: names, vals: vals}
}

// Without returns a copy of the tuple with the named attribute removed.
func (t Tuple) Without(name string) Tuple {
	for i, n := range t.names {
		if n == name {
			names := append(append([]string(nil), t.names[:i]...), t.names[i+1:]...)
			vals := append(append([]Value(nil), t.vals[:i]...), t.vals[i+1:]...)
			return Tuple{names: names, vals: vals}
		}
	}
	return t
}

// Project returns a tuple containing only the named attributes, in the given
// order.
func (t Tuple) Project(names []string) (Tuple, error) {
	vals := make([]Value, len(names))
	for i, n := range names {
		v, ok := t.Get(n)
		if !ok {
			return Tuple{}, fmt.Errorf("nested: project on missing attribute %q", n)
		}
		vals[i] = v
	}
	return Tuple{names: names, vals: vals}, nil
}

// Rename returns a copy of the tuple with attributes renamed per the map.
// Attributes absent from the map keep their names.
func (t Tuple) Rename(m map[string]string) Tuple {
	names := make([]string, len(t.names))
	for i, n := range t.names {
		if nn, ok := m[n]; ok {
			names[i] = nn
		} else {
			names[i] = n
		}
	}
	return Tuple{names: names, vals: t.vals}
}

// Concat returns the concatenation of two tuples. Attribute sets must be
// disjoint.
func (t Tuple) Concat(u Tuple) (Tuple, error) {
	names := append(append([]string(nil), t.names...), u.names...)
	vals := append(append([]Value(nil), t.vals...), u.vals...)
	return NewTuple(names, vals)
}

// Key returns a canonical string form of the tuple, independent of attribute
// order, usable as a map key for set semantics.
func (t Tuple) Key() string {
	b := getKeyBuf()
	*b = t.appendKey(*b)
	s := string(*b)
	putKeyBuf(b)
	return s
}

// appendKey appends the canonical form to dst and returns the extended
// slice, so callers holding a reusable buffer can perform map lookups via
// string(buf) without materializing the key.
func (t Tuple) appendKey(dst []byte) []byte {
	var stack [16]int
	var idx []int
	if len(t.names) <= len(stack) {
		idx = stack[:len(t.names)]
	} else {
		idx = make([]int, len(t.names))
	}
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by name: tuples are small.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && t.names[idx[j-1]] > t.names[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	for _, i := range idx {
		dst = append(dst, t.names[i]...)
		dst = append(dst, '=')
		dst = t.vals[i].appendKey(dst)
		dst = append(dst, '|')
	}
	return dst
}

// Equal reports whether two tuples have the same attributes with equal
// values, ignoring attribute order.
func (t Tuple) Equal(u Tuple) bool {
	if len(t.names) != len(u.names) {
		return false
	}
	return t.Key() == u.Key()
}

// String renders the tuple as "<A1: v1, ..., An: vn>".
func (t Tuple) String() string {
	parts := make([]string, len(t.names))
	for i, n := range t.names {
		parts[i] = n + ": " + t.vals[i].String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// CheckAgainst validates the tuple against a tuple type: every field must be
// present with a conforming value, nulls only for optional fields, and no
// extra attributes.
func (t Tuple) CheckAgainst(tt *TupleType) error {
	if len(t.names) != len(tt.Fields) {
		return fmt.Errorf("nested: tuple has %d attributes, type has %d", len(t.names), len(tt.Fields))
	}
	for _, f := range tt.Fields {
		v, ok := t.Get(f.Name)
		if !ok {
			return fmt.Errorf("nested: missing attribute %q", f.Name)
		}
		if v.IsNull() {
			if !f.Optional {
				return fmt.Errorf("nested: null value for non-optional attribute %q", f.Name)
			}
			continue
		}
		if !ConformsTo(v, f.Type) {
			return fmt.Errorf("nested: attribute %q: value %s does not conform to type %s", f.Name, v, f.Type)
		}
	}
	return nil
}
