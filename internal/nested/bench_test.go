package nested

import (
	"fmt"
	"testing"
)

func benchRelation(n int) *Relation {
	r := NewRelation(flatType("A", "B", "C"))
	for i := 0; i < n; i++ {
		r.Insert(textTuple(
			"A", fmt.Sprintf("a%d", i%50),
			"B", fmt.Sprintf("b%d", i),
			"C", fmt.Sprintf("c%d", i%10),
		))
	}
	return r
}

func BenchmarkSelect(b *testing.B) {
	r := benchRelation(1000)
	p := Eq("C", "c3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Select(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProjectDistinct(b *testing.B) {
	r := benchRelation(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Project([]string{"A", "C"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	l := benchRelation(1000)
	r, _ := benchRelation(500).Rename(map[string]string{"A": "A2", "B": "B2", "C": "C2"})
	conds := []EqCond{{Left: "A", Right: "A2"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Join(r, conds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnnest(b *testing.B) {
	tt := MustTupleType(
		Field{Name: "URL", Type: Link("P")},
		Field{Name: "L", Type: List(
			Field{Name: "A", Type: Text()},
			Field{Name: "To", Type: Link("Q")},
		)},
	)
	r := NewRelation(tt)
	for i := 0; i < 100; i++ {
		lv := make(ListValue, 20)
		for j := range lv {
			lv[j] = T("A", TextValue(fmt.Sprintf("a%d", j)), "To", LinkValue(fmt.Sprintf("u%d-%d", i, j)))
		}
		r.Insert(T("URL", LinkValue(fmt.Sprintf("p%d", i)), "L", lv))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Unnest("L"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	t := textTuple("A", "alpha", "B", "beta", "C", "gamma")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}
