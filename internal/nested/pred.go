package nested

import (
	"fmt"
	"strings"
)

// Predicate is a boolean condition on a tuple, used by selection.
type Predicate interface {
	// Eval reports whether the tuple satisfies the predicate.
	Eval(t Tuple) (bool, error)
	// Attrs appends the attribute names the predicate reads.
	Attrs(dst []string) []string
	// String renders the predicate in the paper's σ-subscript style.
	String() string
}

// CmpOp is a comparison operator for scalar predicates.
type CmpOp int

// Comparison operators. Conjunctive queries in the paper use only equality;
// the richer set is provided for the practical query language.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "≠"
	case OpLt:
		return "<"
	case OpLe:
		return "≤"
	case OpGt:
		return ">"
	case OpGe:
		return "≥"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// ConstPred compares an attribute against a constant: A op 'v'.
// Comparisons against null are false except A ≠ v, which is false too
// (three-valued logic collapsed to false, as usual for conjunctive queries).
type ConstPred struct {
	Attr string
	Op   CmpOp
	Val  Value
}

// Eval implements Predicate.
func (p ConstPred) Eval(t Tuple) (bool, error) {
	v, ok := t.Get(p.Attr)
	if !ok {
		return false, fmt.Errorf("nested: selection on missing attribute %q", p.Attr)
	}
	if v.IsNull() || p.Val.IsNull() {
		return false, nil
	}
	return cmpHolds(p.Op, CompareValues(v, p.Val)), nil
}

// Attrs implements Predicate.
func (p ConstPred) Attrs(dst []string) []string { return append(dst, p.Attr) }

// String implements Predicate.
func (p ConstPred) String() string {
	return fmt.Sprintf("%s%s'%s'", p.Attr, p.Op, p.Val)
}

// AttrPred compares two attributes of the same tuple: A op B.
type AttrPred struct {
	Left  string
	Op    CmpOp
	Right string
}

// Eval implements Predicate.
func (p AttrPred) Eval(t Tuple) (bool, error) {
	l, ok := t.Get(p.Left)
	if !ok {
		return false, fmt.Errorf("nested: selection on missing attribute %q", p.Left)
	}
	r, ok := t.Get(p.Right)
	if !ok {
		return false, fmt.Errorf("nested: selection on missing attribute %q", p.Right)
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	return cmpHolds(p.Op, CompareValues(l, r)), nil
}

// Attrs implements Predicate.
func (p AttrPred) Attrs(dst []string) []string { return append(dst, p.Left, p.Right) }

// String implements Predicate.
func (p AttrPred) String() string {
	return fmt.Sprintf("%s%s%s", p.Left, p.Op, p.Right)
}

// AndPred is the conjunction of sub-predicates. An empty conjunction is true.
type AndPred []Predicate

// Eval implements Predicate.
func (p AndPred) Eval(t Tuple) (bool, error) {
	for _, sub := range p {
		ok, err := sub.Eval(t)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Attrs implements Predicate.
func (p AndPred) Attrs(dst []string) []string {
	for _, sub := range p {
		dst = sub.Attrs(dst)
	}
	return dst
}

// String implements Predicate.
func (p AndPred) String() string {
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = sub.String()
	}
	return strings.Join(parts, ", ")
}

// And conjoins predicates, flattening nested conjunctions and dropping nils.
// And() with no arguments returns the empty (true) conjunction.
func And(preds ...Predicate) Predicate {
	var flat AndPred
	for _, p := range preds {
		switch q := p.(type) {
		case nil:
			continue
		case AndPred:
			flat = append(flat, q...)
		default:
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

// Eq builds the equality predicate A = 'v' for a text constant.
func Eq(attr, val string) Predicate {
	return ConstPred{Attr: attr, Op: OpEq, Val: TextValue(val)}
}
