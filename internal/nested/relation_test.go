package nested

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func flatType(names ...string) *TupleType {
	fields := make([]Field, len(names))
	for i, n := range names {
		fields[i] = Field{Name: n, Type: Text()}
	}
	return MustTupleType(fields...)
}

func textTuple(pairs ...string) Tuple {
	if len(pairs)%2 != 0 {
		panic("textTuple: odd pairs")
	}
	args := make([]any, 0, len(pairs))
	for i := 0; i < len(pairs); i += 2 {
		args = append(args, pairs[i], TextValue(pairs[i+1]))
	}
	return T(args...)
}

func TestRelationInsertSetSemantics(t *testing.T) {
	r := NewRelation(flatType("A"))
	if !r.Insert(textTuple("A", "x")) {
		t.Error("first insert should succeed")
	}
	if r.Insert(textTuple("A", "x")) {
		t.Error("duplicate insert should be rejected")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
	if !r.Contains(textTuple("A", "x")) {
		t.Error("Contains failed")
	}
}

func TestFromTuplesValidates(t *testing.T) {
	tt := flatType("A")
	if _, err := FromTuples(tt, T("A", LinkValue("u"))); err == nil {
		t.Error("ill-typed tuple should be rejected")
	}
	r, err := FromTuples(tt, textTuple("A", "x"), textTuple("A", "y"), textTuple("A", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2 (set semantics)", r.Len())
	}
}

func TestSelect(t *testing.T) {
	r, _ := FromTuples(flatType("A", "B"),
		textTuple("A", "x", "B", "1"),
		textTuple("A", "y", "B", "2"),
		textTuple("A", "x", "B", "3"),
	)
	s, err := r.Select(Eq("A", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("select len = %d", s.Len())
	}
	if _, err := r.Select(Eq("Z", "x")); err == nil {
		t.Error("selection on missing attribute should error")
	}
}

func TestSelectNullSemantics(t *testing.T) {
	tt := MustTupleType(Field{Name: "A", Type: Text(), Optional: true})
	r, _ := FromTuples(tt, T("A", Null))
	s, err := r.Select(Eq("A", "x"))
	if err != nil || s.Len() != 0 {
		t.Errorf("null should not satisfy equality: %v %v", s, err)
	}
	s2, err := r.Select(ConstPred{Attr: "A", Op: OpNe, Val: TextValue("x")})
	if err != nil || s2.Len() != 0 {
		t.Errorf("null should not satisfy ≠ either: %v %v", s2, err)
	}
}

func TestProject(t *testing.T) {
	r, _ := FromTuples(flatType("A", "B"),
		textTuple("A", "x", "B", "1"),
		textTuple("A", "x", "B", "2"),
	)
	p, err := r.Project([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("projection should deduplicate: len = %d", p.Len())
	}
	if p.Type() == nil || len(p.Type().Fields) != 1 {
		t.Error("projection should narrow the type")
	}
	if _, err := r.Project([]string{"Z"}); err == nil {
		t.Error("projection on missing attribute should error")
	}
}

func TestRename(t *testing.T) {
	r, _ := FromTuples(flatType("A"), textTuple("A", "x"))
	rn, err := r.Rename(map[string]string{"A": "B"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Type().Index("B") != 0 {
		t.Error("rename should rewrite the type")
	}
	if _, ok := rn.Tuples()[0].Get("B"); !ok {
		t.Error("rename should rewrite tuples")
	}
}

func TestJoinHash(t *testing.T) {
	l, _ := FromTuples(flatType("A", "B"),
		textTuple("A", "1", "B", "x"),
		textTuple("A", "2", "B", "y"),
	)
	r, _ := FromTuples(flatType("C", "D"),
		textTuple("C", "x", "D", "p"),
		textTuple("C", "x", "D", "q"),
		textTuple("C", "z", "D", "r"),
	)
	j, err := l.Join(r, []EqCond{{Left: "B", Right: "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Errorf("join len = %d, want 2", j.Len())
	}
	for _, tup := range j.Tuples() {
		if tup.MustGet("A").String() != "1" {
			t.Errorf("unexpected join tuple %v", tup)
		}
		if tup.Arity() != 4 {
			t.Errorf("join tuple arity = %d", tup.Arity())
		}
	}
}

func TestJoinSwappedBuildSide(t *testing.T) {
	// Left smaller than right: exercises the build/probe swap path; the
	// output attribute order must still be left-then-right.
	l, _ := FromTuples(flatType("A"), textTuple("A", "x"))
	r, _ := FromTuples(flatType("B", "C"),
		textTuple("B", "x", "C", "1"),
		textTuple("B", "x", "C", "2"),
		textTuple("B", "y", "C", "3"),
	)
	j, err := l.Join(r, []EqCond{{Left: "A", Right: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Errorf("join len = %d, want 2", j.Len())
	}
	names := j.Tuples()[0].Names()
	if names[0] != "A" || names[1] != "B" {
		t.Errorf("attribute order not preserved under swap: %v", names)
	}
}

func TestJoinCartesianAndNulls(t *testing.T) {
	l, _ := FromTuples(flatType("A"), textTuple("A", "1"), textTuple("A", "2"))
	r, _ := FromTuples(flatType("B"), textTuple("B", "x"))
	j, err := l.Join(r, nil)
	if err != nil || j.Len() != 2 {
		t.Errorf("cartesian product len = %d, err = %v", j.Len(), err)
	}
	// Nulls never join.
	tt := MustTupleType(Field{Name: "A", Type: Text(), Optional: true})
	ln, _ := FromTuples(tt, T("A", Null))
	rn, _ := FromTuples(MustTupleType(Field{Name: "B", Type: Text(), Optional: true}), T("B", Null))
	jn, err := ln.Join(rn, []EqCond{{Left: "A", Right: "B"}})
	if err != nil || jn.Len() != 0 {
		t.Errorf("null join should be empty: %v %v", jn, err)
	}
	if _, err := l.Join(r, []EqCond{{Left: "Z", Right: "B"}}); err == nil {
		t.Error("join on missing attribute should error")
	}
}

func profListType() *TupleType {
	return MustTupleType(
		Field{Name: "URL", Type: Link("ProfListPage")},
		Field{Name: "ProfList", Type: List(
			Field{Name: "ProfName", Type: Text()},
			Field{Name: "ToProf", Type: Link("ProfPage")},
		)},
	)
}

func TestUnnest(t *testing.T) {
	tt := profListType()
	r, err := FromTuples(tt, T(
		"URL", LinkValue("plp"),
		"ProfList", ListValue{
			T("ProfName", TextValue("Ada"), "ToProf", LinkValue("p1")),
			T("ProfName", TextValue("Bob"), "ToProf", LinkValue("p2")),
		},
	))
	if err != nil {
		t.Fatal(err)
	}
	u, err := r.Unnest("ProfList")
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("unnest len = %d", u.Len())
	}
	tup := u.Sorted()[0]
	if _, ok := tup.Get("ProfList.ProfName"); !ok {
		t.Errorf("promoted attribute missing: %v", tup.Names())
	}
	if _, ok := tup.Get("ProfList"); ok {
		t.Error("list attribute should be removed after unnest")
	}
	if u.Type().Index("ProfList.ToProf") < 0 {
		t.Error("unnest should compute the promoted type")
	}
}

func TestUnnestEmptyAndNull(t *testing.T) {
	tt := MustTupleType(
		Field{Name: "URL", Type: Link("P")},
		Field{Name: "L", Type: List(Field{Name: "A", Type: Text()}), Optional: true},
	)
	r, _ := FromTuples(tt,
		T("URL", LinkValue("u1"), "L", ListValue{}),
		T("URL", LinkValue("u2"), "L", Null),
		T("URL", LinkValue("u3"), "L", ListValue{T("A", TextValue("x"))}),
	)
	u, err := r.Unnest("L")
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 {
		t.Errorf("unnest of empty/null lists should drop tuples: len = %d", u.Len())
	}
}

func TestUnnestErrors(t *testing.T) {
	r, _ := FromTuples(flatType("A"), textTuple("A", "x"))
	if _, err := r.Unnest("A"); err == nil {
		t.Error("unnest of non-list attribute should error")
	}
	if _, err := r.Unnest("Z"); err == nil {
		t.Error("unnest of missing attribute should error")
	}
}

func TestNestInverseOfUnnest(t *testing.T) {
	tt := profListType()
	orig, _ := FromTuples(tt, T(
		"URL", LinkValue("plp"),
		"ProfList", ListValue{
			T("ProfName", TextValue("Ada"), "ToProf", LinkValue("p1")),
			T("ProfName", TextValue("Bob"), "ToProf", LinkValue("p2")),
		},
	))
	u, err := orig.Unnest("ProfList")
	if err != nil {
		t.Fatal(err)
	}
	n, err := u.Nest("ProfList", []string{"ProfList.ProfName", "ProfList.ToProf"})
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 1 {
		t.Fatalf("nest len = %d", n.Len())
	}
	lv, _ := n.Tuples()[0].Get("ProfList")
	if len(lv.(ListValue)) != 2 {
		t.Errorf("nest should regroup both elements: %v", lv)
	}
}

func TestUnionMinus(t *testing.T) {
	a, _ := FromTuples(flatType("A"), textTuple("A", "1"), textTuple("A", "2"))
	b, _ := FromTuples(flatType("A"), textTuple("A", "2"), textTuple("A", "3"))
	u, err := a.Union(b)
	if err != nil || u.Len() != 3 {
		t.Errorf("union len = %d, err = %v", u.Len(), err)
	}
	m := a.Minus(b)
	if m.Len() != 1 || !m.Contains(textTuple("A", "1")) {
		t.Errorf("minus = %v", m)
	}
	c, _ := FromTuples(flatType("B"), textTuple("B", "1"))
	if _, err := a.Union(c); err == nil {
		t.Error("union of incompatible types should error")
	}
}

func TestDistinctValues(t *testing.T) {
	tt := MustTupleType(Field{Name: "A", Type: Text(), Optional: true})
	r, _ := FromTuples(tt,
		T("A", TextValue("x")),
		T("A", TextValue("y")),
		T("A", Null),
	)
	r.Insert(T("A", TextValue("x"))) // duplicate, rejected anyway
	vals, err := r.DistinctValues("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Errorf("distinct = %v", vals)
	}
	if _, err := r.DistinctValues("Z"); err == nil {
		t.Error("missing attribute should error")
	}
}

func TestRelationEqualAndString(t *testing.T) {
	a, _ := FromTuples(flatType("A"), textTuple("A", "1"), textTuple("A", "2"))
	b, _ := FromTuples(flatType("A"), textTuple("A", "2"), textTuple("A", "1"))
	if !a.Equal(b) {
		t.Error("relations equal as sets should be Equal")
	}
	c, _ := FromTuples(flatType("A"), textTuple("A", "1"))
	if a.Equal(c) {
		t.Error("different cardinality should differ")
	}
	d, _ := FromTuples(flatType("A"), textTuple("A", "1"), textTuple("A", "3"))
	if a.Equal(d) {
		t.Error("different tuples should differ")
	}
	if a.String() != "<A: 1>\n<A: 2>\n" {
		t.Errorf("String() = %q", a.String())
	}
}

func TestNamesFallback(t *testing.T) {
	r := NewRelation(nil)
	if r.Names() != nil {
		t.Error("empty untyped relation should have nil names")
	}
	r.Insert(textTuple("A", "x"))
	if got := r.Names(); len(got) != 1 || got[0] != "A" {
		t.Errorf("Names() = %v", got)
	}
}

// relGen generates small random flat relations over attributes A, B.
type relGen struct{ R *Relation }

// Generate implements quick.Generator.
func (relGen) Generate(r *rand.Rand, _ int) reflect.Value {
	rel := NewRelation(flatType("A", "B"))
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		rel.Insert(textTuple("A", randomString(r), "B", randomString(r)))
	}
	return reflect.ValueOf(relGen{R: rel})
}

// Property: σ distributes over ∪, and π(σ(R)) ⊆ π(R).
func TestSelectUnionProperties(t *testing.T) {
	prop := func(g1, g2 relGen) bool {
		p := Eq("A", "abc")
		u, err := g1.R.Union(g2.R)
		if err != nil {
			return false
		}
		su, err := u.Select(p)
		if err != nil {
			return false
		}
		s1, _ := g1.R.Select(p)
		s2, _ := g2.R.Select(p)
		us, err := s1.Union(s2)
		if err != nil {
			return false
		}
		if !su.Equal(us) {
			return false
		}
		ps, _ := s1.Project([]string{"A"})
		pr, _ := g1.R.Project([]string{"A"})
		for _, tup := range ps.Tuples() {
			if !pr.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: join is commutative up to attribute order (same tuple count),
// and joining with self on all attributes is identity (Rule 4's algebraic
// basis: R ⋈ R = R).
func TestJoinProperties(t *testing.T) {
	prop := func(g relGen) bool {
		// Self-join on both attributes after renaming one side.
		ren, err := g.R.Rename(map[string]string{"A": "A2", "B": "B2"})
		if err != nil {
			return false
		}
		j, err := g.R.Join(ren, []EqCond{{Left: "A", Right: "A2"}, {Left: "B", Right: "B2"}})
		if err != nil {
			return false
		}
		// Every original tuple matches itself at least once.
		if j.Len() < g.R.Len() {
			return false
		}
		// Commutativity of cardinality.
		j2, err := ren.Join(g.R, []EqCond{{Left: "A2", Right: "A"}, {Left: "B2", Right: "B"}})
		if err != nil {
			return false
		}
		return j.Len() == j2.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Unnest(Nest(R)) = R for flat relations grouped on one attribute.
func TestNestUnnestRoundTrip(t *testing.T) {
	prop := func(g relGen) bool {
		n, err := g.R.Nest("L", []string{"B"})
		if err != nil {
			return false
		}
		u, err := n.Unnest("L")
		if err != nil {
			return false
		}
		back, err := u.Rename(map[string]string{"L.B": "B"})
		if err != nil {
			return false
		}
		return back.Equal(g.R)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPredicateStringsAndAttrs(t *testing.T) {
	p := And(Eq("Session", "Fall"), ConstPred{Attr: "Rank", Op: OpEq, Val: TextValue("Full")})
	if got := p.String(); got != "Session='Fall', Rank='Full'" {
		t.Errorf("And string = %q", got)
	}
	attrs := p.Attrs(nil)
	if len(attrs) != 2 || attrs[0] != "Session" || attrs[1] != "Rank" {
		t.Errorf("attrs = %v", attrs)
	}
	ap := AttrPred{Left: "A", Op: OpLt, Right: "B"}
	if ap.String() != "A<B" {
		t.Errorf("AttrPred string = %q", ap.String())
	}
	if got := ap.Attrs(nil); len(got) != 2 {
		t.Errorf("AttrPred attrs = %v", got)
	}
}

func TestAttrPredEval(t *testing.T) {
	tup := T("A", TextValue("1"), "B", TextValue("2"), "N", Null)
	cases := []struct {
		p    AttrPred
		want bool
	}{
		{AttrPred{Left: "A", Op: OpLt, Right: "B"}, true},
		{AttrPred{Left: "A", Op: OpEq, Right: "B"}, false},
		{AttrPred{Left: "B", Op: OpGe, Right: "A"}, true},
		{AttrPred{Left: "A", Op: OpNe, Right: "B"}, true},
		{AttrPred{Left: "A", Op: OpEq, Right: "N"}, false},
		{AttrPred{Left: "A", Op: OpLe, Right: "A"}, true},
		{AttrPred{Left: "A", Op: OpGt, Right: "B"}, false},
	}
	for _, c := range cases {
		got, err := c.p.Eval(tup)
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := (AttrPred{Left: "Z", Op: OpEq, Right: "A"}).Eval(tup); err == nil {
		t.Error("missing left attr should error")
	}
	if _, err := (AttrPred{Left: "A", Op: OpEq, Right: "Z"}).Eval(tup); err == nil {
		t.Error("missing right attr should error")
	}
}

func TestAndFlattening(t *testing.T) {
	inner := And(Eq("A", "1"), Eq("B", "2"))
	outer := And(inner, Eq("C", "3"), nil)
	ap, ok := outer.(AndPred)
	if !ok || len(ap) != 3 {
		t.Errorf("And should flatten: %#v", outer)
	}
	single := And(Eq("A", "1"))
	if _, ok := single.(ConstPred); !ok {
		t.Errorf("And of one predicate should unwrap: %#v", single)
	}
	empty := And()
	ok2, err := empty.Eval(T("A", TextValue("x")))
	if err != nil || !ok2 {
		t.Error("empty conjunction should be true")
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "=", OpNe: "≠", OpLt: "<", OpLe: "≤", OpGt: ">", OpGe: "≥", CmpOp(42): "CmpOp(42)"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestAndPredEvalErrorPropagation(t *testing.T) {
	p := And(Eq("A", "x"), Eq("Missing", "y"))
	tup := textTuple("A", "x")
	if _, err := p.Eval(tup); err == nil {
		t.Error("missing attribute inside conjunction should error")
	}
	// Short-circuit: first conjunct false, second would error — the
	// conjunction reports false without error.
	p2 := And(Eq("A", "not-x"), Eq("Missing", "y"))
	ok, err := p2.Eval(tup)
	if err != nil || ok {
		t.Errorf("short-circuit failed: %v %v", ok, err)
	}
}

func TestConstPredCmpOps(t *testing.T) {
	tup := textTuple("A", "m")
	cases := []struct {
		op   CmpOp
		val  string
		want bool
	}{
		{OpEq, "m", true}, {OpNe, "m", false}, {OpNe, "z", true},
		{OpLt, "z", true}, {OpLe, "m", true}, {OpGt, "a", true},
		{OpGe, "m", true}, {OpGe, "z", false},
	}
	for _, c := range cases {
		got, err := (ConstPred{Attr: "A", Op: c.op, Val: TextValue(c.val)}).Eval(tup)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("A %s %q = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}
