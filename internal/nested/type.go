// Package nested implements the nested-relational substrate underlying the
// Araneus data model: web types, nested tuples and relations in Partitioned
// Normal Form (PNF), and the classical nested-relational operators
// (selection, projection, join, unnest, nest) that the navigational algebra
// of Mecca, Mendelzon and Merialdo (EDBT 1998) is defined over.
package nested

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates web types. Following §3.1 of the paper, a web type is
// either a mono-valued base type (text, image, link) or a multi-valued list
// of tuples whose components are themselves web types.
type Kind int

const (
	// KindText is the base type of textual attributes.
	KindText Kind = iota
	// KindImage is the base type of image attributes; values carry the
	// image source reference.
	KindImage
	// KindLink is the type of hypertext links. A link value is a reference
	// (URL); anchors are modeled as independent text attributes (§3.1).
	KindLink
	// KindList is the multi-valued type "list of (A1:T1, ..., An:Tn)".
	KindList
)

// String reports the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindText:
		return "text"
	case KindImage:
		return "image"
	case KindLink:
		return "link"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type describes a web type: a base type, a link type (with its target
// page-scheme name), or a list-of-tuples type.
type Type struct {
	Kind Kind
	// Target is the name of the page-scheme a link points to.
	// Meaningful only when Kind == KindLink.
	Target string
	// Elem describes the component attributes of a list type.
	// Meaningful only when Kind == KindList.
	Elem []Field
}

// Field is a named, typed attribute of a tuple type or list element type.
// Optional fields may hold Null values (§3.1: "some attributes may be
// optional; in this case, they may generate null values").
type Field struct {
	Name     string
	Type     Type
	Optional bool
}

// Text returns the text base type.
func Text() Type { return Type{Kind: KindText} }

// Image returns the image base type.
func Image() Type { return Type{Kind: KindImage} }

// Link returns a link type pointing to the page-scheme named target.
func Link(target string) Type { return Type{Kind: KindLink, Target: target} }

// List returns a list-of-tuples type with the given element fields.
func List(elem ...Field) Type { return Type{Kind: KindList, Elem: elem} }

// Mono reports whether the type is mono-valued (text, image or link).
func (t Type) Mono() bool { return t.Kind != KindList }

// String renders the type in the paper's notation.
func (t Type) String() string {
	switch t.Kind {
	case KindLink:
		return "link to " + t.Target
	case KindList:
		parts := make([]string, len(t.Elem))
		for i, f := range t.Elem {
			parts[i] = f.Name + ": " + f.Type.String()
		}
		return "list of (" + strings.Join(parts, ", ") + ")"
	default:
		return t.Kind.String()
	}
}

// Equal reports deep structural equality of two types.
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind || t.Target != u.Target || len(t.Elem) != len(u.Elem) {
		return false
	}
	for i := range t.Elem {
		if t.Elem[i].Name != u.Elem[i].Name ||
			t.Elem[i].Optional != u.Elem[i].Optional ||
			!t.Elem[i].Type.Equal(u.Elem[i].Type) {
			return false
		}
	}
	return true
}

// TupleType is the row type of a nested relation: an ordered sequence of
// named fields. Field order is significant for display but not for equality
// of tuples, which is by-name.
type TupleType struct {
	Fields []Field
}

// NewTupleType builds a tuple type and validates that field names are
// non-empty and unique.
func NewTupleType(fields ...Field) (*TupleType, error) {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("nested: tuple type with empty field name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("nested: duplicate field %q in tuple type", f.Name)
		}
		seen[f.Name] = true
	}
	return &TupleType{Fields: fields}, nil
}

// MustTupleType is NewTupleType that panics on error; for statically known
// schemas in tests and generators.
func MustTupleType(fields ...Field) *TupleType {
	tt, err := NewTupleType(fields...)
	if err != nil {
		panic(err)
	}
	return tt
}

// Index returns the position of the named field, or -1.
func (tt *TupleType) Index(name string) int {
	for i, f := range tt.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the named field and whether it exists.
func (tt *TupleType) Field(name string) (Field, bool) {
	if i := tt.Index(name); i >= 0 {
		return tt.Fields[i], true
	}
	return Field{}, false
}

// Names returns the field names in declaration order.
func (tt *TupleType) Names() []string {
	names := make([]string, len(tt.Fields))
	for i, f := range tt.Fields {
		names[i] = f.Name
	}
	return names
}

// Equal reports whether two tuple types have the same fields in the same
// order with equal types.
func (tt *TupleType) Equal(other *TupleType) bool {
	if tt == nil || other == nil {
		return tt == other
	}
	if len(tt.Fields) != len(other.Fields) {
		return false
	}
	for i := range tt.Fields {
		if tt.Fields[i].Name != other.Fields[i].Name ||
			tt.Fields[i].Optional != other.Fields[i].Optional ||
			!tt.Fields[i].Type.Equal(other.Fields[i].Type) {
			return false
		}
	}
	return true
}

// String renders the tuple type as "(A1: T1, ..., An: Tn)".
func (tt *TupleType) String() string {
	parts := make([]string, len(tt.Fields))
	for i, f := range tt.Fields {
		opt := ""
		if f.Optional {
			opt = "?"
		}
		parts[i] = f.Name + opt + ": " + f.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SameFieldSet reports whether two tuple types have the same set of field
// names, ignoring order and types. Used to validate unions.
func (tt *TupleType) SameFieldSet(other *TupleType) bool {
	if len(tt.Fields) != len(other.Fields) {
		return false
	}
	a := append([]string(nil), tt.Names()...)
	b := append([]string(nil), other.Names()...)
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
