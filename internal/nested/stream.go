package nested

import (
	"fmt"
	"sync"
)

// This file holds streaming helpers for hot evaluation paths: operators
// that process tuples one batch at a time want to avoid re-deriving the
// output attribute names per tuple. All helpers exploit the same
// invariant: tuples flowing through one operator overwhelmingly share a
// single names slice (pages wrapped from one scheme, join outputs from one
// joiner), so name-level work can be cached per distinct input slice and
// the cached output slice shared — tuples are immutable by convention, so
// sharing is safe.

// sameNames reports whether two name slices are the same array (pointer
// identity) or element-wise equal. The pointer check makes the common case
// O(1); the content fallback keeps caches correct for equal-but-distinct
// arrays.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// concatNames caches the concatenation of a (left, right) names pair,
// validating disjointness once per distinct pair instead of once per
// output tuple.
type concatNames struct {
	left, right []string
	out         []string
}

func (c *concatNames) concat(left, right []string) ([]string, error) {
	if c.out != nil && sameNames(c.left, left) && sameNames(c.right, right) {
		return c.out, nil
	}
	out := make([]string, 0, len(left)+len(right))
	out = append(append(out, left...), right...)
	seen := make(map[string]bool, len(out))
	for i, n := range out {
		if n == "" {
			return nil, fmt.Errorf("nested: empty attribute name at position %d", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("nested: duplicate attribute %q", n)
		}
		seen[n] = true
	}
	c.left, c.right, c.out = left, right, out
	return out, nil
}

// Qualifier prefixes every attribute name of a tuple with "alias.",
// sharing the value slice with the input and caching the prefixed names
// for repeated name arrays. It replaces per-tuple Rename calls when pages
// of one scheme are qualified with a navigation alias. A Qualifier is safe
// for concurrent use (page fetches qualify concurrently).
type Qualifier struct {
	alias string

	mu  sync.Mutex
	in  []string
	out []string
}

// NewQualifier creates a qualifier for one alias.
func NewQualifier(alias string) *Qualifier { return &Qualifier{alias: alias} }

// Apply returns the tuple with every attribute renamed to "alias.name".
func (q *Qualifier) Apply(t Tuple) Tuple {
	q.mu.Lock()
	if !sameNames(q.in, t.names) {
		out := make([]string, len(t.names))
		for i, n := range t.names {
			out[i] = q.alias + "." + n
		}
		q.in, q.out = t.names, out
	}
	names := q.out
	q.mu.Unlock()
	return Tuple{names: names, vals: t.vals}
}

// Renamer applies a rename map to tuples, caching the renamed names slice
// for repeated name arrays (Tuple.Rename allocates names and consults the
// map per tuple).
type Renamer struct {
	m   map[string]string
	in  []string
	out []string
}

// NewRenamer creates a renamer for one rename map.
func NewRenamer(m map[string]string) *Renamer { return &Renamer{m: m} }

// Apply returns the tuple with attributes renamed per the map; attributes
// absent from the map keep their names.
func (r *Renamer) Apply(t Tuple) Tuple {
	if !sameNames(r.in, t.names) {
		out := make([]string, len(t.names))
		for i, n := range t.names {
			if nn, ok := r.m[n]; ok {
				out[i] = nn
			} else {
				out[i] = n
			}
		}
		r.in, r.out = t.names, out
	}
	return Tuple{names: r.out, vals: t.vals}
}

// Unnester expands list attributes tuple by tuple, sharing one output
// names slice across all rows produced while the input tuple shape and
// element shape stay the same. The zero value is ready to use; an
// Unnester is not safe for concurrent use.
type Unnester struct {
	attr      string
	inNames   []string
	elemNames []string
	keep      []int    // indices of input attributes other than attr
	rowNames  []string // kept names followed by "attr.field" names
	ok        bool     // rowNames passed the uniqueness check
}

// Unnest appends one row per element of t's list attribute attr to dst,
// with element fields promoted to "attr.field". Null lists produce no
// rows; a missing attribute or non-list value is an error, matching
// Relation.Unnest.
func (u *Unnester) Unnest(t Tuple, attr string, dst []Tuple) ([]Tuple, error) {
	ai := -1
	for i, n := range t.names {
		if n == attr {
			ai = i
			break
		}
	}
	if ai < 0 {
		return dst, fmt.Errorf("nested: unnest on missing attribute %q", attr)
	}
	v := t.vals[ai]
	if v.IsNull() {
		return dst, nil
	}
	lv, ok := v.(ListValue)
	if !ok {
		return dst, fmt.Errorf("nested: unnest on non-list value for %q", attr)
	}
	for _, elem := range lv {
		if u.attr != attr || !sameNames(u.inNames, t.names) || !sameNames(u.elemNames, elem.names) {
			u.reshape(t, attr, elem.names)
		}
		if !u.ok {
			// A prefixed element name collides with a kept attribute.
			// Fall back to the override semantics of Tuple.With.
			row := t.Without(attr)
			for i, n := range elem.names {
				row = row.With(attr+"."+n, elem.vals[i])
			}
			dst = append(dst, row)
			continue
		}
		vals := make([]Value, 0, len(u.rowNames))
		for _, i := range u.keep {
			vals = append(vals, t.vals[i])
		}
		vals = append(vals, elem.vals...)
		dst = append(dst, Tuple{names: u.rowNames, vals: vals})
	}
	return dst, nil
}

// reshape recomputes the cached projection for a new (input, element)
// shape. rowNames is always a fresh slice: rows already emitted share the
// previous one.
func (u *Unnester) reshape(t Tuple, attr string, elemNames []string) {
	u.attr = attr
	u.inNames = t.names
	u.elemNames = elemNames
	u.keep = u.keep[:0]
	rowNames := make([]string, 0, len(t.names)-1+len(elemNames))
	for i, n := range t.names {
		if n != attr {
			u.keep = append(u.keep, i)
			rowNames = append(rowNames, n)
		}
	}
	for _, n := range elemNames {
		rowNames = append(rowNames, attr+"."+n)
	}
	u.rowNames = rowNames
	seen := make(map[string]bool, len(rowNames))
	u.ok = true
	for _, n := range rowNames {
		if seen[n] {
			u.ok = false
			break
		}
		seen[n] = true
	}
}
