// Package overload is the server's survival layer: it decides, before any
// page is touched, whether a query may run now, wait briefly, or must be
// refused — and it tracks the process-wide memory the answering machinery
// pins so one subsystem cannot starve the rest.
//
// The admission Queue replaces a bare semaphore with a bounded FIFO whose
// waiters carry a maximum sojourn (CoDel-style: a request that waited past
// MaxWait is dropped even if a slot frees, so the p99 sojourn of *served*
// requests is bounded by construction rather than by luck). Admission is
// cost-aware: a caller passes the query's estimated page budget (from the
// prepared-plan cache's costed plan) and the queue refuses work whose
// estimate exceeds the capacity left by what is already running — the
// expensive sweep is turned away at the door instead of thrashing every
// in-flight query. Low-priority work gets only half the queue, so bursts of
// sheddable traffic cannot crowd out must-run queries.
//
// The Ledger is the shared byte ledger: each subsystem that retains memory
// on behalf of clients (page store HTML, standing-query delta rings, /watch
// stream buffers, materialized view rows) charges a named account, so
// /stats can show where the process's bytes actually are and backpressure
// (ring drop-oldest, slow-client write deadlines) has a number to act on.
//
// DeadlineBudget clamps per-query deadlines: a server default, a client
// request, and a hard maximum — the client can ask for less time than the
// default but never more than the max.
package overload

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"ulixes/internal/site"
)

// Admission errors. The server maps them to HTTP statuses: ErrQueueFull and
// ErrNoCapacity are retryable (429), ErrShed is degraded-mode refusal (503),
// ErrOverdue is a timeout in queue (503), ErrTooExpensive can never succeed
// under the configured capacity (422).
var (
	// ErrQueueFull means the bounded FIFO is at capacity: the system is
	// already carrying MaxQueue waiters on top of full slots.
	ErrQueueFull = errors.New("overload: admission queue full")
	// ErrShed means a low-priority request was refused to keep queue room
	// for must-run work.
	ErrShed = errors.New("overload: low-priority request shed")
	// ErrOverdue means the request waited longer than MaxWait without
	// being served; serving it now would only add a late answer to an
	// already-backlogged system.
	ErrOverdue = errors.New("overload: queue sojourn exceeded max-wait")
	// ErrNoCapacity means the query's estimated page budget does not fit
	// in the capacity left by in-flight work; it may fit later.
	ErrNoCapacity = errors.New("overload: estimated cost exceeds remaining capacity")
	// ErrTooExpensive means the query's estimated page budget exceeds the
	// total configured capacity: it can never be admitted as asked.
	ErrTooExpensive = errors.New("overload: estimated cost exceeds total capacity")
)

// Priority orders admission classes. Low-priority work is admitted only
// while the queue is under half full, mirroring ulixesd's existing
// shed-while-degraded policy at the new admission layer.
type Priority int

const (
	// Normal is the default class.
	Normal Priority = iota
	// Low marks sheddable work (batch, prefetch, dashboards).
	Low
)

// Timer starts a one-shot timer: it returns the firing channel and a stop
// function. Injectable so tests (and the deterministic experiment harness)
// control when waiters expire.
type Timer func(d time.Duration) (<-chan time.Time, func())

// stdTimer waits on a real timer; production default.
func stdTimer(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTimer(d) //lint:allow nowallclock queue max-wait is real waiting; tests inject a Timer
	return t.C, func() { t.Stop() }
}

// QueueConfig wires an admission queue.
type QueueConfig struct {
	// Slots is the number of queries allowed to run concurrently
	// (minimum 1).
	Slots int
	// MaxQueue bounds how many requests may wait for a slot. 0 means no
	// waiting at all — the pre-existing instant-429 behaviour.
	MaxQueue int
	// MaxWait bounds a waiter's sojourn: a request that has not been
	// granted a slot within MaxWait is dropped (ErrOverdue), and one that
	// is granted a slot after MaxWait has already passed is dropped too —
	// the CoDel rule that keeps served-request latency bounded. 0 means
	// waiters wait until their context ends.
	MaxWait time.Duration
	// CapacityPages, when > 0, is the page-access budget the admitted set
	// may collectively hold: a request whose estimated pages do not fit in
	// the remaining capacity is refused (ErrNoCapacity), and one whose
	// estimate exceeds CapacityPages outright can never run
	// (ErrTooExpensive). Estimates of 0 (unknown shape) always fit.
	CapacityPages float64
	// Clock measures sojourns. Nil defaults to the real clock — NOT the
	// logical test clock, which advances on every reading and would
	// fabricate sojourns.
	Clock site.Clock
	// Timer starts max-wait timers (nil = real timers).
	Timer Timer
}

// Counters tallies admission outcomes. The statsexhaustive analyzer holds
// Add to covering every field.
type Counters struct {
	// Admitted counts requests granted a slot (immediately or after
	// queueing).
	Admitted int
	// QueueFull counts normal-priority requests refused because the FIFO
	// was at MaxQueue.
	QueueFull int
	// ShedLowPriority counts low-priority requests refused because the
	// queue was half full or worse.
	ShedLowPriority int
	// SojournDropped counts waiters dropped for exceeding MaxWait —
	// whether the timer fired first or a slot arrived too late.
	SojournDropped int
	// Canceled counts waiters whose context ended while queued.
	Canceled int
	// CostRejected counts requests refused by the page-capacity gate
	// (ErrNoCapacity and ErrTooExpensive together).
	CostRejected int
	// PeakDepth is the deepest the wait queue has been.
	PeakDepth int
}

// Add folds another queue's counters into c. Peaks take the maximum; the
// rest sum.
func (c *Counters) Add(o Counters) {
	c.Admitted += o.Admitted
	c.QueueFull += o.QueueFull
	c.ShedLowPriority += o.ShedLowPriority
	c.SojournDropped += o.SojournDropped
	c.Canceled += o.Canceled
	c.CostRejected += o.CostRejected
	if o.PeakDepth > c.PeakDepth {
		c.PeakDepth = o.PeakDepth
	}
}

// Dropped is the total refused admissions of every kind — what /stats
// reports as queueDropped.
func (c Counters) Dropped() int {
	return c.QueueFull + c.ShedLowPriority + c.SojournDropped + c.CostRejected
}

// waiter is one queued request. The Queue's mu guards all fields after
// enqueue; ch is closed exactly once, under mu, when a slot is granted.
type waiter struct {
	ch      chan struct{}
	pages   float64
	enq     time.Time
	granted bool // guarded by Queue.mu
}

// Queue is the cost-aware bounded admission queue.
type Queue struct {
	cfg QueueConfig

	mu       sync.Mutex
	running  int       // guarded by mu
	waiters  []*waiter // guarded by mu
	inflight float64   // estimated pages held by admitted work; guarded by mu
	counters Counters  // guarded by mu
}

// NewQueue creates an admission queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Timer == nil {
		cfg.Timer = stdTimer
	}
	return &Queue{cfg: cfg}
}

// Counters returns a snapshot of the admission outcome tallies.
func (q *Queue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counters
}

// Depth returns the current number of waiters.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters)
}

// Running returns the number of admitted requests currently holding slots.
func (q *Queue) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// InflightPages returns the estimated page budget held by admitted work.
func (q *Queue) InflightPages() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// Acquire admits the request or refuses it. estPages is the query's
// estimated page-access budget (0 = unknown, always fits). On success the
// caller must Release the ticket when the query finishes. Acquire blocks at
// most MaxWait (or until ctx ends); an instant grant never blocks.
func (q *Queue) Acquire(ctx context.Context, pri Priority, estPages float64) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q.mu.Lock()
	if q.cfg.CapacityPages > 0 && estPages > 0 {
		if estPages > q.cfg.CapacityPages {
			q.counters.CostRejected++
			q.mu.Unlock()
			return nil, ErrTooExpensive
		}
		if q.inflight+estPages > q.cfg.CapacityPages {
			q.counters.CostRejected++
			q.mu.Unlock()
			return nil, ErrNoCapacity
		}
	}
	// Fast path: a free slot and nobody ahead of us.
	if q.running < q.cfg.Slots && len(q.waiters) == 0 {
		q.running++
		q.inflight += estPages
		q.counters.Admitted++
		q.mu.Unlock()
		return &Ticket{q: q, pages: estPages}, nil
	}
	limit := q.cfg.MaxQueue
	if pri == Low {
		limit = q.cfg.MaxQueue / 2
	}
	if len(q.waiters) >= limit {
		if pri == Low {
			q.counters.ShedLowPriority++
			q.mu.Unlock()
			return nil, ErrShed
		}
		q.counters.QueueFull++
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{}), pages: estPages, enq: q.cfg.Clock()}
	q.waiters = append(q.waiters, w)
	if d := len(q.waiters); d > q.counters.PeakDepth {
		q.counters.PeakDepth = d
	}
	q.mu.Unlock()

	var fire <-chan time.Time
	if q.cfg.MaxWait > 0 {
		c, stop := q.cfg.Timer(q.cfg.MaxWait)
		defer stop()
		fire = c
	}
	select {
	case <-w.ch:
		soj := q.cfg.Clock().Sub(w.enq)
		if q.cfg.MaxWait > 0 && soj > q.cfg.MaxWait {
			// The CoDel rule: a slot arrived, but too late. Hand it to the
			// next waiter instead of serving a request whose caller has
			// likely given up.
			q.abandon(w, func(c *Counters) *int { return &c.SojournDropped })
			return nil, ErrOverdue
		}
		return &Ticket{q: q, pages: estPages, sojourn: soj}, nil
	case <-fire:
		q.abandon(w, func(c *Counters) *int { return &c.SojournDropped })
		return nil, ErrOverdue
	case <-ctx.Done():
		q.abandon(w, func(c *Counters) *int { return &c.Canceled })
		return nil, ctx.Err()
	}
}

// abandon removes a waiter that will not run — still queued, or granted a
// slot it cannot use (timer raced the grant, or the grant came past
// MaxWait). A granted-then-abandoned waiter's slot goes to the next in line.
func (q *Queue) abandon(w *waiter, counter func(*Counters) *int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	*counter(&q.counters)++
	if w.granted {
		q.running--
		q.inflight -= w.pages
		q.grantLocked()
		return
	}
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// grantLocked hands free slots to waiters in FIFO order.
func (q *Queue) grantLocked() {
	for q.running < q.cfg.Slots && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.granted = true
		q.running++
		q.inflight += w.pages
		q.counters.Admitted++
		close(w.ch)
	}
}

// release returns a served request's slot and estimated pages.
func (q *Queue) release(pages float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running--
	q.inflight -= pages
	q.grantLocked()
}

// Ticket is an admitted request's slot. Release must be called exactly when
// the query finishes; it is idempotent.
type Ticket struct {
	q       *Queue
	pages   float64
	sojourn time.Duration
	once    sync.Once
}

// Release returns the slot, granting it to the next waiter.
func (t *Ticket) Release() {
	t.once.Do(func() { t.q.release(t.pages) })
}

// Sojourn reports how long this request waited for its slot (0 for an
// instant grant).
func (t *Ticket) Sojourn() time.Duration { return t.sojourn }

// DeadlineBudget clamps per-query deadlines: the server default applies
// when the client asks for nothing; a client request is honored up to Max.
type DeadlineBudget struct {
	// Default applies when the client requests no deadline (0 = none).
	Default time.Duration
	// Max caps any requested deadline (0 = no cap).
	Max time.Duration
}

// Resolve returns the effective deadline for a request that asked for
// requested (0 = didn't ask). Max is a hard ceiling: it applies even when
// neither the client nor Default asked for anything, so no query outlives
// it. A zero result means "no deadline".
func (b DeadlineBudget) Resolve(requested time.Duration) time.Duration {
	d := requested
	if d <= 0 {
		d = b.Default
	}
	if b.Max > 0 && (d <= 0 || d > b.Max) {
		d = b.Max
	}
	return d
}

// Account is one subsystem's entry in the shared byte ledger. Add is safe
// for concurrent use and satisfies the small ByteMeter interfaces the
// retaining subsystems (pagecache, standing) declare locally.
type Account struct {
	mu    sync.Mutex
	bytes int64 // guarded by mu
	peak  int64 // guarded by mu
}

// Add charges (or, negative, refunds) bytes to the account. The balance is
// clamped at zero so double refunds cannot drive it negative.
func (a *Account) Add(delta int64) {
	a.mu.Lock()
	a.bytes += delta
	if a.bytes < 0 {
		a.bytes = 0
	}
	if a.bytes > a.peak {
		a.peak = a.bytes
	}
	a.mu.Unlock()
}

// Bytes returns the current balance.
func (a *Account) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes
}

// Peak returns the highest balance ever held.
func (a *Account) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Usage is one ledger row in a Snapshot.
type Usage struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	Peak  int64  `json:"peak"`
}

// Ledger is the process-wide byte ledger: named accounts charged
// incrementally (Account.Add) plus gauges polled at snapshot time for
// subsystems that already know their own size (matview's measured extent
// bytes).
type Ledger struct {
	mu       sync.Mutex
	accounts map[string]*Account     // guarded by mu
	gauges   map[string]func() int64 // guarded by mu
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		accounts: make(map[string]*Account),
		gauges:   make(map[string]func() int64),
	}
}

// Account returns the named account, creating it on first use. Repeated
// calls with the same name return the same account.
func (l *Ledger) Account(name string) *Account {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[name]
	if a == nil {
		a = &Account{}
		l.accounts[name] = a
	}
	return a
}

// Gauge registers a polled byte source under name; fn is called at
// Snapshot/Total time and must be safe for concurrent use.
func (l *Ledger) Gauge(name string, fn func() int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gauges[name] = fn
}

// Snapshot returns every account and gauge, sorted by name. Gauges report
// their current reading as both Bytes and Peak.
func (l *Ledger) Snapshot() []Usage {
	l.mu.Lock()
	accounts := make(map[string]*Account, len(l.accounts))
	for n, a := range l.accounts {
		accounts[n] = a
	}
	gauges := make(map[string]func() int64, len(l.gauges))
	for n, fn := range l.gauges {
		gauges[n] = fn
	}
	l.mu.Unlock()

	out := make([]Usage, 0, len(accounts)+len(gauges))
	for n, a := range accounts {
		out = append(out, Usage{Name: n, Bytes: a.Bytes(), Peak: a.Peak()})
	}
	for n, fn := range gauges {
		b := fn()
		out = append(out, Usage{Name: n, Bytes: b, Peak: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Total sums every account and gauge.
func (l *Ledger) Total() int64 {
	var total int64
	for _, u := range l.Snapshot() {
		total += u.Bytes
	}
	return total
}
