package overload

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// manualClock is a hand-advanced clock safe for concurrent reads.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// manualTimer hands out one controllable timer channel per start.
type manualTimer struct {
	mu    sync.Mutex
	chans []chan time.Time
}

func (t *manualTimer) Start(d time.Duration) (<-chan time.Time, func()) {
	ch := make(chan time.Time, 1)
	t.mu.Lock()
	t.chans = append(t.chans, ch)
	t.mu.Unlock()
	return ch, func() {}
}

func (t *manualTimer) Fire(i int) {
	t.mu.Lock()
	ch := t.chans[i]
	t.mu.Unlock()
	ch <- time.Time{}
}

func TestQueueInstantGrantAndRelease(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 2})
	t1, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	t2, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := q.Running(); got != 2 {
		t.Fatalf("running = %d, want 2", got)
	}
	// Slots full, MaxQueue 0: the pre-existing instant-reject behaviour.
	if _, err := q.Acquire(context.Background(), Normal, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire err = %v, want ErrQueueFull", err)
	}
	t1.Release()
	t1.Release() // idempotent
	t2.Release()
	if got := q.Running(); got != 0 {
		t.Fatalf("running after release = %d, want 0", got)
	}
	c := q.Counters()
	if c.Admitted != 2 || c.QueueFull != 1 {
		t.Fatalf("counters = %+v, want Admitted 2 QueueFull 1", c)
	}
}

func TestQueueFIFOGrant(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 1, MaxQueue: 4})
	first, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	type result struct {
		idx int
		tk  *Ticket
		err error
	}
	results := make(chan result, 2)
	started := make(chan int, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			// Serialize enqueue order so FIFO is observable.
			started <- i
			tk, err := q.Acquire(context.Background(), Normal, 0)
			results <- result{i, tk, err}
		}()
		<-started
		waitForDepth(t, q, i+1)
	}
	first.Release()
	r1 := <-results
	if r1.err != nil {
		t.Fatalf("first waiter: %v", r1.err)
	}
	if r1.idx != 0 {
		t.Fatalf("grant order: waiter %d served first, want 0", r1.idx)
	}
	r1.tk.Release()
	r2 := <-results
	if r2.err != nil {
		t.Fatalf("second waiter: %v", r2.err)
	}
	r2.tk.Release()
}

func waitForDepth(t *testing.T, q *Queue, want int) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if q.Depth() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, q.Depth())
}

func TestQueueLowPriorityGetsHalfTheQueue(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 1, MaxQueue: 4})
	tk, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer tk.Release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Acquire(ctx, Normal, 0)
		}()
		waitForDepth(t, q, i+1)
	}
	// Depth 2 = half of MaxQueue 4: low priority is refused, normal queues.
	if _, err := q.Acquire(ctx, Low, 0); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority acquire err = %v, want ErrShed", err)
	}
	cancel()
	wg.Wait()
	c := q.Counters()
	if c.ShedLowPriority != 1 || c.Canceled != 2 || c.PeakDepth != 2 {
		t.Fatalf("counters = %+v, want ShedLowPriority 1 Canceled 2 PeakDepth 2", c)
	}
}

func TestQueueSojournTimerDrop(t *testing.T) {
	clk := newManualClock()
	tm := &manualTimer{}
	q := NewQueue(QueueConfig{Slots: 1, MaxQueue: 4, MaxWait: time.Second, Clock: clk.Now, Timer: tm.Start})
	tk, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := q.Acquire(context.Background(), Normal, 0)
		errs <- err
	}()
	waitForDepth(t, q, 1)
	tm.Fire(0)
	if err := <-errs; !errors.Is(err, ErrOverdue) {
		t.Fatalf("waiter err = %v, want ErrOverdue", err)
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("depth after drop = %d, want 0", got)
	}
	tk.Release()
	if got := q.Running(); got != 0 {
		t.Fatalf("running = %d, want 0", got)
	}
	if c := q.Counters(); c.SojournDropped != 1 {
		t.Fatalf("counters = %+v, want SojournDropped 1", c)
	}
}

func TestQueueLateGrantIsDropped(t *testing.T) {
	clk := newManualClock()
	tm := &manualTimer{}
	q := NewQueue(QueueConfig{Slots: 1, MaxQueue: 4, MaxWait: time.Second, Clock: clk.Now, Timer: tm.Start})
	tk, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := q.Acquire(context.Background(), Normal, 0)
		errs <- err
	}()
	waitForDepth(t, q, 1)
	// The slot frees only after the waiter's sojourn already exceeds
	// MaxWait: CoDel drops it even though a slot is in hand.
	clk.Advance(2 * time.Second)
	tk.Release()
	if err := <-errs; !errors.Is(err, ErrOverdue) {
		t.Fatalf("late waiter err = %v, want ErrOverdue", err)
	}
	// The abandoned grant's slot is free again.
	tk2, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire after late drop: %v", err)
	}
	tk2.Release()
	if c := q.Counters(); c.SojournDropped != 1 {
		t.Fatalf("counters = %+v, want SojournDropped 1", c)
	}
}

func TestQueueCostGate(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 8, MaxQueue: 8, CapacityPages: 100})
	if _, err := q.Acquire(context.Background(), Normal, 150); !errors.Is(err, ErrTooExpensive) {
		t.Fatalf("over-total acquire err = %v, want ErrTooExpensive", err)
	}
	tk, err := q.Acquire(context.Background(), Normal, 60)
	if err != nil {
		t.Fatalf("acquire 60: %v", err)
	}
	if _, err := q.Acquire(context.Background(), Normal, 50); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-remaining acquire err = %v, want ErrNoCapacity", err)
	}
	// Unknown shapes (estimate 0) always fit.
	tk0, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire unknown: %v", err)
	}
	tk0.Release()
	tk.Release()
	if got := q.InflightPages(); got != 0 {
		t.Fatalf("inflight pages after release = %v, want 0", got)
	}
	tk2, err := q.Acquire(context.Background(), Normal, 50)
	if err != nil {
		t.Fatalf("acquire 50 after release: %v", err)
	}
	tk2.Release()
	if c := q.Counters(); c.CostRejected != 2 {
		t.Fatalf("counters = %+v, want CostRejected 2", c)
	}
}

func TestQueueContextCancelWhileQueued(t *testing.T) {
	q := NewQueue(QueueConfig{Slots: 1, MaxQueue: 4})
	tk, err := q.Acquire(context.Background(), Normal, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer tk.Release()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, Normal, 0)
		errs <- err
	}()
	waitForDepth(t, q, 1)
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("depth after cancel = %d, want 0", got)
	}
	if c := q.Counters(); c.Canceled != 1 {
		t.Fatalf("counters = %+v, want Canceled 1", c)
	}
}

func TestDeadlineBudgetResolve(t *testing.T) {
	b := DeadlineBudget{Default: 5 * time.Second, Max: 30 * time.Second}
	cases := []struct {
		requested, want time.Duration
	}{
		{0, 5 * time.Second},               // server default
		{2 * time.Second, 2 * time.Second}, // client asks for less
		{time.Minute, 30 * time.Second},    // clamped to max
	}
	for _, c := range cases {
		if got := b.Resolve(c.requested); got != c.want {
			t.Errorf("Resolve(%v) = %v, want %v", c.requested, got, c.want)
		}
	}
	// No default: Max is still a hard ceiling on every query's lifetime.
	open := DeadlineBudget{Max: 10 * time.Second}
	if got := open.Resolve(0); got != 10*time.Second {
		t.Errorf("no-default Resolve(0) = %v, want 10s", got)
	}
	if got := open.Resolve(time.Minute); got != 10*time.Second {
		t.Errorf("no-default Resolve(1m) = %v, want 10s", got)
	}
	// Unbounded: requests pass through.
	if got := (DeadlineBudget{}).Resolve(time.Minute); got != time.Minute {
		t.Errorf("unbounded Resolve(1m) = %v, want 1m", got)
	}
}

func TestLedgerAccountsAndGauges(t *testing.T) {
	l := NewLedger()
	pages := l.Account("pagecache")
	pages.Add(100)
	pages.Add(50)
	pages.Add(-30)
	if got := pages.Bytes(); got != 120 {
		t.Fatalf("pagecache bytes = %d, want 120", got)
	}
	if got := pages.Peak(); got != 150 {
		t.Fatalf("pagecache peak = %d, want 150", got)
	}
	// A double refund clamps at zero instead of going negative.
	rings := l.Account("standingRings")
	rings.Add(10)
	rings.Add(-20)
	if got := rings.Bytes(); got != 0 {
		t.Fatalf("rings bytes = %d, want 0 (clamped)", got)
	}
	l.Gauge("matview", func() int64 { return 77 })
	if same := l.Account("pagecache"); same != pages {
		t.Fatal("Account is not idempotent per name")
	}
	snap := l.Snapshot()
	names := make([]string, len(snap))
	for i, u := range snap {
		names[i] = u.Name
	}
	want := []string{"matview", "pagecache", "standingRings"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot names = %v, want %v", names, want)
	}
	if got := l.Total(); got != 120+0+77 {
		t.Fatalf("total = %d, want 197", got)
	}
}

func TestCountersAddSumsAndPeaks(t *testing.T) {
	a := Counters{Admitted: 1, QueueFull: 2, ShedLowPriority: 3, SojournDropped: 4, Canceled: 5, CostRejected: 6, PeakDepth: 7}
	a.Add(Counters{Admitted: 10, QueueFull: 20, ShedLowPriority: 30, SojournDropped: 40, Canceled: 50, CostRejected: 60, PeakDepth: 3})
	want := Counters{Admitted: 11, QueueFull: 22, ShedLowPriority: 33, SojournDropped: 44, Canceled: 55, CostRejected: 66, PeakDepth: 7}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Add result = %+v, want %+v", a, want)
	}
	if got := want.Dropped(); got != 22+33+44+66 {
		t.Fatalf("Dropped = %d, want %d", got, 22+33+44+66)
	}
}
