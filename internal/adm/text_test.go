package adm

import (
	"strings"
	"testing"

	"ulixes/internal/nested"
)

const sampleSchemeText = `
# A miniature site scheme.
page ListPage {
  Title: text
  Logo?: image
  Items: list of {
    Name: text
    ToItem: link ItemPage
  }
}

page ItemPage {
  Name: text
  Desc?: text
  ToNext?: link ItemPage
  Tags: list of {
    Tag: text
    Subtags: list of {
      Sub: text
    }
  }
}

entry ListPage "http://x/list.html"

link-constraint via ListPage.Items.ToItem: Items.Name = Name

inclusion ItemPage.ToNext <= ListPage.Items.ToItem
`

func TestParseSchemeBasics(t *testing.T) {
	ws, err := ParseScheme(sampleSchemeText)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.PageNames()) != 2 {
		t.Fatalf("pages = %v", ws.PageNames())
	}
	item := ws.Page("ItemPage")
	tt := item.TupleType()
	f, ok := tt.Field("Desc")
	if !ok || !f.Optional {
		t.Error("Desc should be optional text")
	}
	f, ok = tt.Field("ToNext")
	if !ok || f.Type.Kind != nested.KindLink || f.Type.Target != "ItemPage" || !f.Optional {
		t.Errorf("ToNext = %+v", f)
	}
	// Nested list of list.
	ty, err := ws.ResolvePath("ItemPage", ParsePath("Tags.Subtags.Sub"))
	if err != nil || ty.Kind != nested.KindText {
		t.Errorf("nested path resolution: %v %v", ty, err)
	}
	if _, ok := ws.EntryPoint("ListPage"); !ok {
		t.Error("entry point missing")
	}
	if len(ws.LinkCs) != 1 || len(ws.InclCs) != 1 {
		t.Errorf("constraints = %d link, %d inclusion", len(ws.LinkCs), len(ws.InclCs))
	}
	if ws.LinkCs[0].Link.String() != "ListPage.Items.ToItem" || ws.LinkCs[0].TgtAttr != "Name" {
		t.Errorf("link constraint = %+v", ws.LinkCs[0])
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	ws, err := ParseScheme(sampleSchemeText)
	if err != nil {
		t.Fatal(err)
	}
	text := ws.Format()
	back, err := ParseScheme(text)
	if err != nil {
		t.Fatalf("re-parse of formatted scheme: %v\n%s", err, text)
	}
	if !ws.Equal(back) {
		t.Errorf("round trip changed the scheme:\n%s\nvs\n%s", text, back.Format())
	}
}

func TestParseSchemeUnicodeInclusion(t *testing.T) {
	src := strings.Replace(sampleSchemeText, "<=", "⊆", 1)
	ws, err := ParseScheme(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.InclCs) != 1 {
		t.Error("⊆ should parse as inclusion")
	}
}

func TestParseSchemeValidates(t *testing.T) {
	// Link to unknown page-scheme: structurally parseable, semantically
	// rejected by Validate.
	src := `page P { L: link Ghost }`
	if _, err := ParseScheme(src); err == nil {
		t.Error("dangling link target should be rejected")
	}
}

func TestParseSchemeErrors(t *testing.T) {
	cases := []string{
		`page`,
		`page P`,
		`page P {`,
		`page P { A }`,
		`page P { A: }`,
		`page P { A: banana }`,
		`page P { A: link }`,
		`page P { A: list {} }`,
		`page P { A: list of`,
		`entry`,
		`entry P`,
		`entry P 42`,
		`link-constraint P.L: A = B`,
		`link-constraint via L: A = B`,
		`link-constraint via P.L A = B`,
		`link-constraint via P.L: A B`,
		`inclusion A.L`,
		`inclusion A.L <= B`,
		`inclusion L <= B.M`,
		`banana P {}`,
		`page P { A: text } "stray`,
		`page P { A: text } @`,
	}
	for _, src := range cases {
		if _, err := ParseScheme(src); err == nil {
			t.Errorf("ParseScheme(%q) should fail", src)
		}
	}
}

func TestParseSchemeComments(t *testing.T) {
	src := "# leading comment\npage P { # inline\n A: text\n}\n# trailing"
	ws, err := ParseScheme(src)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Page("P") == nil {
		t.Error("page not parsed")
	}
}

func TestSchemeEqual(t *testing.T) {
	a, err := ParseScheme(sampleSchemeText)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScheme(sampleSchemeText)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("identical schemes unequal")
	}
	b.AddEntryPoint("ItemPage", "http://x/i/1")
	if a.Equal(b) {
		t.Error("extra entry point should differ")
	}
	c, _ := ParseScheme(sampleSchemeText)
	c.AddLinkConstraint(c.LinkCs[0])
	if a.Equal(c) {
		t.Error("extra constraint should differ")
	}
}
