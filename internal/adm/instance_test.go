package adm

import (
	"testing"

	"ulixes/internal/nested"
)

func miniInstance(t *testing.T) *Instance {
	t.Helper()
	s := miniScheme(t)
	in := NewInstance(s)
	mustAdd := func(scheme string, tup nested.Tuple) {
		t.Helper()
		if err := in.AddPage(scheme, tup); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("ListPage", nested.T(
		URLAttr, nested.LinkValue("http://x/list.html"),
		"Title", nested.TextValue("Items"),
		"Items", nested.ListValue{
			nested.T("Name", nested.TextValue("alpha"), "ToItem", nested.LinkValue("http://x/i/1")),
			nested.T("Name", nested.TextValue("beta"), "ToItem", nested.LinkValue("http://x/i/2")),
		},
	))
	mustAdd("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/i/1"),
		"Name", nested.TextValue("alpha"),
		"Desc", nested.TextValue("first"),
		"ToNext", nested.LinkValue("http://x/i/2"),
	))
	mustAdd("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/i/2"),
		"Name", nested.TextValue("beta"),
		"Desc", nested.Null,
		"ToNext", nested.Null,
	))
	return in
}

func TestInstanceValidateOK(t *testing.T) {
	if err := miniInstance(t).Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestAddPageValidates(t *testing.T) {
	in := NewInstance(miniScheme(t))
	if err := in.AddPage("Nope", nested.T(URLAttr, nested.LinkValue("u"))); err == nil {
		t.Error("unknown scheme should be rejected")
	}
	if err := in.AddPage("ItemPage", nested.T(URLAttr, nested.LinkValue("u"))); err == nil {
		t.Error("tuple missing attributes should be rejected")
	}
	if err := in.AddPage("ItemPage", nested.T(
		URLAttr, nested.Null,
		"Name", nested.TextValue("x"),
		"Desc", nested.Null,
		"ToNext", nested.Null,
	)); err == nil {
		t.Error("null URL should be rejected")
	}
}

func TestInstancePageLookup(t *testing.T) {
	in := miniInstance(t)
	tup, ok := in.Page("ItemPage", "http://x/i/1")
	if !ok || tup.MustGet("Name").String() != "alpha" {
		t.Errorf("page lookup failed: %v %v", tup, ok)
	}
	if _, ok := in.Page("ItemPage", "http://x/i/404"); ok {
		t.Error("lookup of absent page should fail")
	}
	if _, ok := in.Page("Nope", "u"); ok {
		t.Error("lookup in unknown scheme should fail")
	}
	if in.Relation("ItemPage").Len() != 2 {
		t.Error("relation cardinality wrong")
	}
	if in.TotalPages() != 3 {
		t.Errorf("TotalPages = %d", in.TotalPages())
	}
}

func TestPathValues(t *testing.T) {
	tup := nested.T(
		"A", nested.TextValue("x"),
		"L", nested.ListValue{
			nested.T("B", nested.TextValue("1"), "M", nested.ListValue{
				nested.T("C", nested.TextValue("c1")),
			}),
			nested.T("B", nested.TextValue("2"), "M", nested.ListValue{
				nested.T("C", nested.TextValue("c2")),
				nested.T("C", nested.TextValue("c3")),
			}),
		},
		"N", nested.Null,
	)
	if vs := PathValues(tup, ParsePath("A")); len(vs) != 1 || vs[0].String() != "x" {
		t.Errorf("PathValues(A) = %v", vs)
	}
	if vs := PathValues(tup, ParsePath("L.B")); len(vs) != 2 {
		t.Errorf("PathValues(L.B) = %v", vs)
	}
	if vs := PathValues(tup, ParsePath("L.M.C")); len(vs) != 3 {
		t.Errorf("PathValues(L.M.C) = %v", vs)
	}
	if vs := PathValues(tup, ParsePath("N.X")); vs != nil {
		t.Errorf("PathValues through null = %v", vs)
	}
	if vs := PathValues(tup, ParsePath("Missing")); vs != nil {
		t.Errorf("PathValues of missing attr = %v", vs)
	}
	if vs := PathValues(tup, nil); vs != nil {
		t.Errorf("PathValues of empty path = %v", vs)
	}
	if vs := PathValues(tup, ParsePath("A.X")); vs != nil {
		t.Errorf("PathValues through scalar = %v", vs)
	}
}

func TestValidateDetectsDuplicateURL(t *testing.T) {
	in := miniInstance(t)
	// Insert a ListPage with the URL of an ItemPage.
	if err := in.AddPage("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/list.html"),
		"Name", nested.TextValue("dup"),
		"Desc", nested.Null,
		"ToNext", nested.Null,
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		t.Error("duplicate URL across schemes should be rejected")
	}
}

func TestValidateDetectsEntryPointCardinality(t *testing.T) {
	s := miniScheme(t)
	in := NewInstance(s)
	// No ListPage at all: entry point has zero tuples.
	if err := in.Validate(); err == nil {
		t.Error("empty entry point should be rejected")
	}
}

func TestValidateDetectsWrongEntryURL(t *testing.T) {
	in := NewInstance(miniScheme(t))
	if err := in.AddPage("ListPage", nested.T(
		URLAttr, nested.LinkValue("http://x/other.html"),
		"Title", nested.TextValue("Items"),
		"Items", nested.ListValue{},
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		t.Error("entry page with mismatched URL should be rejected")
	}
}

func TestValidateDetectsDanglingLink(t *testing.T) {
	in := NewInstance(miniScheme(t))
	if err := in.AddPage("ListPage", nested.T(
		URLAttr, nested.LinkValue("http://x/list.html"),
		"Title", nested.TextValue("Items"),
		"Items", nested.ListValue{
			nested.T("Name", nested.TextValue("ghost"), "ToItem", nested.LinkValue("http://x/i/404")),
		},
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		t.Error("dangling link should be rejected")
	}
}

func TestValidateDetectsLinkConstraintViolation(t *testing.T) {
	in := NewInstance(miniScheme(t))
	// Anchor says "alpha" but the item page's Name is "beta".
	if err := in.AddPage("ListPage", nested.T(
		URLAttr, nested.LinkValue("http://x/list.html"),
		"Title", nested.TextValue("Items"),
		"Items", nested.ListValue{
			nested.T("Name", nested.TextValue("alpha"), "ToItem", nested.LinkValue("http://x/i/1")),
		},
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddPage("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/i/1"),
		"Name", nested.TextValue("beta"),
		"Desc", nested.Null,
		"ToNext", nested.Null,
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		t.Error("link constraint violation should be rejected")
	}
}

func TestValidateDetectsInclusionViolation(t *testing.T) {
	in := NewInstance(miniScheme(t))
	if err := in.AddPage("ListPage", nested.T(
		URLAttr, nested.LinkValue("http://x/list.html"),
		"Title", nested.TextValue("Items"),
		"Items", nested.ListValue{
			nested.T("Name", nested.TextValue("one"), "ToItem", nested.LinkValue("http://x/i/1")),
		},
	)); err != nil {
		t.Fatal(err)
	}
	// Item 1 links to item 2, which exists but is NOT in the list: the
	// inclusion ItemPage.ToNext ⊆ ListPage.Items.ToItem is violated.
	if err := in.AddPage("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/i/1"),
		"Name", nested.TextValue("one"),
		"Desc", nested.Null,
		"ToNext", nested.LinkValue("http://x/i/2"),
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddPage("ItemPage", nested.T(
		URLAttr, nested.LinkValue("http://x/i/2"),
		"Name", nested.TextValue("two"),
		"Desc", nested.Null,
		"ToNext", nested.Null,
	)); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		t.Error("inclusion violation should be rejected")
	}
}

func TestLinkAnchorPairsAnchorAboveList(t *testing.T) {
	// Anchor bound at page level, links inside a list: e.g.
	// SessionPage.Session = CoursePage.Session via CourseList.ToCourse.
	s := NewScheme()
	if err := s.AddPage(&PageScheme{Name: "S", Attrs: []nested.Field{
		{Name: "Session", Type: nested.Text()},
		{Name: "CourseList", Type: nested.List(
			nested.Field{Name: "ToCourse", Type: nested.Link("C")},
		)},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPage(&PageScheme{Name: "C", Attrs: []nested.Field{
		{Name: "Session", Type: nested.Text()},
	}}); err != nil {
		t.Fatal(err)
	}
	s.AddLinkConstraint(LinkConstraint{
		Link:    AttrRef{Scheme: "S", Path: ParsePath("CourseList.ToCourse")},
		SrcAttr: ParsePath("Session"),
		TgtAttr: "Session",
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInstance(s)
	if err := in.AddPage("S", nested.T(
		URLAttr, nested.LinkValue("s1"),
		"Session", nested.TextValue("Fall"),
		"CourseList", nested.ListValue{
			nested.T("ToCourse", nested.LinkValue("c1")),
			nested.T("ToCourse", nested.LinkValue("c2")),
		},
	)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"c1", "c2"} {
		if err := in.AddPage("C", nested.T(
			URLAttr, nested.LinkValue(c),
			"Session", nested.TextValue("Fall"),
		)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Validate(); err != nil {
		t.Errorf("page-level anchor constraint should validate: %v", err)
	}
	// Now break it.
	in2 := NewInstance(s)
	if err := in2.AddPage("S", nested.T(
		URLAttr, nested.LinkValue("s1"),
		"Session", nested.TextValue("Fall"),
		"CourseList", nested.ListValue{nested.T("ToCourse", nested.LinkValue("c1"))},
	)); err != nil {
		t.Fatal(err)
	}
	if err := in2.AddPage("C", nested.T(
		URLAttr, nested.LinkValue("c1"),
		"Session", nested.TextValue("Winter"),
	)); err != nil {
		t.Fatal(err)
	}
	if err := in2.Validate(); err == nil {
		t.Error("violated page-level anchor constraint should be rejected")
	}
}

func TestStripKind(t *testing.T) {
	if stripKind(nested.LinkValue("u")).String() != "u" {
		t.Error("link should strip to text")
	}
	if stripKind(nested.ImageValue("i")).String() != "i" {
		t.Error("image should strip to text")
	}
	if !stripKind(nested.Null).IsNull() {
		t.Error("null should stay null")
	}
	if stripKind(nil) == nil || !stripKind(nil).IsNull() {
		t.Error("nil should become null")
	}
	lv := nested.ListValue{}
	if stripKind(lv).Kind() != nested.KindList {
		t.Error("lists pass through")
	}
}

func TestLinkAnchorPairsExported(t *testing.T) {
	tup := nested.T(
		"Session", nested.TextValue("Fall"),
		"CourseList", nested.ListValue{
			nested.T("CName", nested.TextValue("c1"), "ToCourse", nested.LinkValue("u1")),
			nested.T("CName", nested.TextValue("c2"), "ToCourse", nested.LinkValue("u2")),
		},
	)
	// Sibling anchor inside the list.
	pairs, err := LinkAnchorPairs(tup, ParsePath("CourseList.ToCourse"), ParsePath("CourseList.CName"))
	if err != nil || len(pairs) != 2 {
		t.Fatalf("pairs = %v, err = %v", pairs, err)
	}
	if pairs[0][0].String() != "c1" || pairs[0][1].String() != "u1" {
		t.Errorf("pair = %v", pairs[0])
	}
	// Page-level anchor.
	pairs, err = LinkAnchorPairs(tup, ParsePath("CourseList.ToCourse"), ParsePath("Session"))
	if err != nil || len(pairs) != 2 || pairs[1][0].String() != "Fall" {
		t.Fatalf("page-level pairs = %v, err = %v", pairs, err)
	}
	// Null link at top level contributes nothing.
	tn := nested.T("L", nested.Null, "A", nested.TextValue("x"))
	pairs, err = LinkAnchorPairs(tn, ParsePath("L"), ParsePath("A"))
	if err != nil || len(pairs) != 0 {
		t.Errorf("null link pairs = %v, err = %v", pairs, err)
	}
	// Missing link attribute errors.
	if _, err := LinkAnchorPairs(tn, ParsePath("Ghost"), ParsePath("A")); err == nil {
		t.Error("missing link attr should error")
	}
	// A multi-valued anchor (several values in scope) errors; a list
	// attribute itself is one value and is ruled out by scheme validation
	// instead.
	multi := nested.T(
		"L", nested.LinkValue("u"),
		"M", nested.ListValue{
			nested.T("A", nested.TextValue("1")),
			nested.T("A", nested.TextValue("2")),
		},
	)
	if _, err := LinkAnchorPairs(multi, ParsePath("L"), ParsePath("M.A")); err == nil {
		t.Error("multi-valued anchor should error")
	}
}

func TestScalarEqualExported(t *testing.T) {
	if !ScalarEqual(nested.TextValue("u"), nested.LinkValue("u")) {
		t.Error("text and link with same payload should be scalar-equal")
	}
	if ScalarEqual(nested.TextValue("a"), nested.TextValue("b")) {
		t.Error("different payloads differ")
	}
	if !ScalarEqual(nested.Null, nested.Null) {
		t.Error("null equals null")
	}
}
