package adm

import (
	"fmt"

	"ulixes/internal/nested"
)

// Instance is an instance of a web scheme: one page-relation per
// page-scheme. It is the "ground truth" content of a site, used by the site
// simulator and by constraint checking; the query system itself never sees
// an instance directly — it can only fetch pages by URL.
type Instance struct {
	Scheme *Scheme
	rels   map[string]*nested.Relation
}

// NewInstance creates an empty instance of the scheme, with an empty
// page-relation for every page-scheme.
func NewInstance(s *Scheme) *Instance {
	inst := &Instance{Scheme: s, rels: make(map[string]*nested.Relation)}
	for _, name := range s.PageNames() {
		inst.rels[name] = nested.NewRelation(s.Page(name).TupleType())
	}
	return inst
}

// AddPage inserts a page tuple into the page-relation of the named scheme,
// validating it against the scheme's tuple type.
func (in *Instance) AddPage(scheme string, t nested.Tuple) error {
	ps := in.Scheme.Page(scheme)
	if ps == nil {
		return fmt.Errorf("adm: unknown page-scheme %q", scheme)
	}
	if err := t.CheckAgainst(ps.TupleType()); err != nil {
		return fmt.Errorf("adm: page of %q: %v", scheme, err)
	}
	u, _ := t.Get(URLAttr)
	if u.IsNull() {
		return fmt.Errorf("adm: page of %q with null URL", scheme)
	}
	in.rels[scheme].Insert(t)
	return nil
}

// Relation returns the page-relation of the named scheme, or nil.
func (in *Instance) Relation(scheme string) *nested.Relation { return in.rels[scheme] }

// Page returns the tuple of the page with the given URL in the named
// scheme's relation, if present.
func (in *Instance) Page(scheme, url string) (nested.Tuple, bool) {
	r := in.rels[scheme]
	if r == nil {
		return nested.Tuple{}, false
	}
	for _, t := range r.Tuples() {
		if u, _ := t.Get(URLAttr); !u.IsNull() && u.String() == url {
			return t, true
		}
	}
	return nested.Tuple{}, false
}

// PathValues returns every value reachable at the given path from a page
// tuple, descending through lists. Null intermediate values contribute
// nothing.
func PathValues(t nested.Tuple, path Path) []nested.Value {
	if len(path) == 0 {
		return nil
	}
	v, ok := t.Get(path[0])
	if !ok || v.IsNull() {
		return nil
	}
	if len(path) == 1 {
		return []nested.Value{v}
	}
	lv, ok := v.(nested.ListValue)
	if !ok {
		return nil
	}
	var out []nested.Value
	for _, elem := range lv {
		out = append(out, PathValues(elem, path[1:])...)
	}
	return out
}

// pageByURL builds a URL → tuple index for a page-relation.
func pageByURL(r *nested.Relation) map[string]nested.Tuple {
	idx := make(map[string]nested.Tuple, r.Len())
	for _, t := range r.Tuples() {
		if u, _ := t.Get(URLAttr); !u.IsNull() {
			idx[u.String()] = t
		}
	}
	return idx
}

// Validate checks the instance against the scheme: URL uniqueness (global
// key), entry-point singletons, dangling links, and every declared link and
// inclusion constraint.
func (in *Instance) Validate() error {
	byURL := make(map[string]string) // url -> scheme
	for _, name := range in.Scheme.PageNames() {
		for _, t := range in.rels[name].Tuples() {
			u, _ := t.Get(URLAttr)
			if prev, dup := byURL[u.String()]; dup {
				return fmt.Errorf("adm: URL %q appears in both %q and %q", u, prev, name)
			}
			byURL[u.String()] = name
		}
	}
	for _, ep := range in.Scheme.Entry {
		r := in.rels[ep.Scheme]
		if r.Len() != 1 {
			return fmt.Errorf("adm: entry point %q must have exactly one page, has %d", ep.Scheme, r.Len())
		}
		u, _ := r.Tuples()[0].Get(URLAttr)
		if u.String() != ep.URL {
			return fmt.Errorf("adm: entry point %q has URL %q, scheme declares %q", ep.Scheme, u, ep.URL)
		}
	}
	// Dangling links: every link value must be the URL of a page of the
	// link's target scheme.
	for _, ref := range in.Scheme.Links() {
		tgt, err := in.Scheme.LinkTarget(ref)
		if err != nil {
			return err
		}
		idx := pageByURL(in.rels[tgt])
		for _, t := range in.rels[ref.Scheme].Tuples() {
			for _, v := range PathValues(t, ref.Path) {
				if _, ok := idx[v.String()]; !ok {
					return fmt.Errorf("adm: dangling link %s = %q (no such %s page)", ref, v, tgt)
				}
			}
		}
	}
	for _, c := range in.Scheme.LinkCs {
		if err := in.checkLinkConstraint(c); err != nil {
			return err
		}
	}
	for _, c := range in.Scheme.InclCs {
		if err := in.checkInclusion(c); err != nil {
			return err
		}
	}
	return nil
}

// LinkAnchorPairs collects, for every occurrence of the link attribute in
// a page tuple, the pair (anchor value, link value). The anchor path must
// be in scope of the link: either at an ancestor level or in the same list
// element. It is used by constraint checking and by constraint discovery.
func LinkAnchorPairs(t nested.Tuple, link, anchor Path) ([][2]nested.Value, error) {
	return linkAnchorPairs(t, link, anchor)
}

// ScalarEqual compares two scalar values for constraint purposes: links and
// images compare equal to text with the same payload (an anchor is text
// even when the target attribute is typed differently).
func ScalarEqual(a, b nested.Value) bool {
	return nested.ValueEqual(stripKind(a), stripKind(b))
}

// linkAnchorPairs collects, for every occurrence of the link attribute in a
// page tuple, the pair (anchor value, link value). The anchor path must be
// in scope of the link: either at an ancestor level or in the same list
// element.
func linkAnchorPairs(t nested.Tuple, link, anchor Path) ([][2]nested.Value, error) {
	// Descend along the common prefix of the two paths.
	common := 0
	for common < len(link)-1 && common < len(anchor)-1 && link[common] == anchor[common] {
		common++
	}
	var walk func(tup nested.Tuple, lp, ap Path) ([][2]nested.Value, error)
	walk = func(tup nested.Tuple, lp, ap Path) ([][2]nested.Value, error) {
		if len(lp) == 1 {
			lv, ok := tup.Get(lp[0])
			if !ok {
				return nil, fmt.Errorf("adm: missing link attribute %q", lp[0])
			}
			if lv.IsNull() {
				return nil, nil
			}
			avs := PathValues(tup, ap)
			if len(avs) != 1 {
				return nil, fmt.Errorf("adm: anchor path %s is not single-valued in scope", ap)
			}
			return [][2]nested.Value{{avs[0], lv}}, nil
		}
		v, ok := tup.Get(lp[0])
		if !ok {
			return nil, fmt.Errorf("adm: missing attribute %q", lp[0])
		}
		if v.IsNull() {
			return nil, nil
		}
		lvl, ok := v.(nested.ListValue)
		if !ok {
			return nil, fmt.Errorf("adm: attribute %q is not a list", lp[0])
		}
		var out [][2]nested.Value
		for _, elem := range lvl {
			nextAnchor := ap
			if len(ap) > 1 && ap[0] == lp[0] {
				nextAnchor = ap[1:]
			} else {
				// Anchor bound at this level: evaluate it here and pair it
				// with every link below.
				avs := PathValues(tup, ap)
				if len(avs) != 1 {
					return nil, fmt.Errorf("adm: anchor path %s is not single-valued in scope", ap)
				}
				links := PathValues(elem, lp[1:])
				for _, l := range links {
					out = append(out, [2]nested.Value{avs[0], l})
				}
				continue
			}
			sub, err := walk(elem, lp[1:], nextAnchor)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	}
	_ = common
	return walk(t, link, anchor)
}

func (in *Instance) checkLinkConstraint(c LinkConstraint) error {
	tgt, err := in.Scheme.LinkTarget(c.Link)
	if err != nil {
		return err
	}
	idx := pageByURL(in.rels[tgt])
	for _, t := range in.rels[c.Link.Scheme].Tuples() {
		pairs, err := linkAnchorPairs(t, c.Link.Path, c.SrcAttr)
		if err != nil {
			return fmt.Errorf("adm: link constraint %s: %v", c, err)
		}
		for _, pr := range pairs {
			anchor, link := pr[0], pr[1]
			tgtTuple, ok := idx[link.String()]
			if !ok {
				return fmt.Errorf("adm: link constraint %s: dangling link %q", c, link)
			}
			tv, _ := tgtTuple.Get(c.TgtAttr)
			if !nested.ValueEqual(stripKind(anchor), stripKind(tv)) {
				return fmt.Errorf("adm: link constraint %s violated: %v ≠ %v (page %q)", c, anchor, tv, link)
			}
		}
	}
	return nil
}

// stripKind converts scalar values to text for cross-kind comparison:
// link constraints may equate an anchor (text) with, e.g., a name attribute.
func stripKind(v nested.Value) nested.Value {
	if v == nil || v.IsNull() {
		return nested.Null
	}
	switch x := v.(type) {
	case nested.TextValue:
		return x
	case nested.LinkValue:
		return nested.TextValue(x)
	case nested.ImageValue:
		return nested.TextValue(x)
	default:
		return v
	}
}

func (in *Instance) checkInclusion(c InclusionConstraint) error {
	super := make(map[string]bool)
	for _, t := range in.rels[c.Super.Scheme].Tuples() {
		for _, v := range PathValues(t, c.Super.Path) {
			super[v.String()] = true
		}
	}
	for _, t := range in.rels[c.Sub.Scheme].Tuples() {
		for _, v := range PathValues(t, c.Sub.Path) {
			if !super[v.String()] {
				return fmt.Errorf("adm: inclusion %s violated: %q not reachable via %s", c, v, c.Super)
			}
		}
	}
	return nil
}

// TotalPages returns the number of pages in the instance across all
// page-relations.
func (in *Instance) TotalPages() int {
	n := 0
	for _, name := range in.Scheme.PageNames() {
		n += in.rels[name].Len()
	}
	return n
}
