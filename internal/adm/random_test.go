package adm

import (
	"fmt"
	"math/rand"
	"testing"

	"ulixes/internal/nested"
)

// randScheme generates a random web scheme: a chain of page-schemes where
// each level's list links to the next, plus random scalar attributes. The
// shape guarantees reachability from the single entry point.
func randScheme(rng *rand.Rand) *Scheme {
	ws := NewScheme()
	depth := 2 + rng.Intn(3)
	names := make([]string, depth)
	for i := range names {
		names[i] = fmt.Sprintf("P%d", i)
	}
	for i := 0; i < depth; i++ {
		var attrs []nested.Field
		nScalar := 1 + rng.Intn(3)
		for a := 0; a < nScalar; a++ {
			f := nested.Field{Name: fmt.Sprintf("A%d", a), Type: nested.Text(), Optional: rng.Intn(3) == 0}
			if rng.Intn(4) == 0 {
				f.Type = nested.Image()
			}
			attrs = append(attrs, f)
		}
		if i < depth-1 {
			elem := []nested.Field{
				{Name: "Anchor", Type: nested.Text()},
				{Name: "Next", Type: nested.Link(names[i+1])},
			}
			if rng.Intn(2) == 0 {
				elem = append(elem, nested.Field{Name: "Note", Type: nested.Text(), Optional: true})
			}
			attrs = append(attrs, nested.Field{Name: "Kids", Type: nested.List(elem...)})
		}
		if err := ws.AddPage(&PageScheme{Name: names[i], Attrs: attrs}); err != nil {
			panic(err)
		}
	}
	ws.AddEntryPoint(names[0], "http://rand.example/p0")
	return ws
}

// randInstance populates a random scheme with random pages, wiring every
// Kids list to all pages of the next level (so constraints trivially hold).
func randInstance(rng *rand.Rand, ws *Scheme) *Instance {
	in := NewInstance(ws)
	names := ws.PageNames()
	counts := make([]int, len(names))
	counts[0] = 1
	for i := 1; i < len(names); i++ {
		counts[i] = 1 + rng.Intn(4)
	}
	urls := make([][]string, len(names))
	for i, n := range counts {
		urls[i] = make([]string, n)
		for j := 0; j < n; j++ {
			if i == 0 {
				urls[i][j] = "http://rand.example/p0"
			} else {
				urls[i][j] = fmt.Sprintf("http://rand.example/p%d/%d", i, j)
			}
		}
	}
	randText := func() nested.Value {
		if rng.Intn(8) == 0 {
			return nested.TextValue("")
		}
		b := make([]byte, 1+rng.Intn(6))
		for k := range b {
			b[k] = byte('a' + rng.Intn(26))
		}
		return nested.TextValue(string(b))
	}
	for i, name := range names {
		ps := ws.Page(name)
		for j := 0; j < counts[i]; j++ {
			t := nested.T(URLAttr, nested.LinkValue(urls[i][j]))
			for _, f := range ps.Attrs {
				switch f.Type.Kind {
				case nested.KindText:
					if f.Optional && rng.Intn(3) == 0 {
						t = t.With(f.Name, nested.Null)
					} else {
						t = t.With(f.Name, randText())
					}
				case nested.KindImage:
					t = t.With(f.Name, nested.ImageValue(fmt.Sprintf("img%d.gif", rng.Intn(9))))
				case nested.KindList:
					var lv nested.ListValue
					for _, u := range urls[i+1] {
						elem := nested.T("Anchor", randText(), "Next", nested.LinkValue(u))
						if _, hasNote := (&nested.TupleType{Fields: f.Type.Elem}).Field("Note"); hasNote {
							if rng.Intn(2) == 0 {
								elem = elem.With("Note", nested.Null)
							} else {
								elem = elem.With("Note", randText())
							}
						}
						lv = append(lv, elem)
					}
					t = t.With(f.Name, lv)
				}
			}
			if err := in.AddPage(name, t); err != nil {
				panic(err)
			}
		}
	}
	return in
}

// TestRandomSchemesFormatRoundTrip fuzzes the scheme text format.
func TestRandomSchemesFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		ws := randScheme(rng)
		back, err := ParseScheme(ws.Format())
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, ws.Format())
		}
		if !ws.Equal(back) {
			t.Fatalf("iteration %d: round trip changed scheme:\n%s", i, ws.Format())
		}
	}
}

// TestRandomInstancesValidate fuzzes instance validation on well-formed
// random instances.
func TestRandomInstancesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 30; i++ {
		ws := randScheme(rng)
		in := randInstance(rng, ws)
		if err := in.Validate(); err != nil {
			t.Fatalf("iteration %d: valid random instance rejected: %v", i, err)
		}
	}
}
